# Tier-1 gate for the repository (see README "Development"): everything a
# change must pass before merging. `make check` is the one-shot entry.

GO ?= go
FUZZTIME ?= 30s

.PHONY: check fmt vet build test race bench bench-json fuzz-smoke ledger-diff stream-check fabric-check scenario-check cover vuln

check: fmt vet build test race bench fuzz-smoke ledger-diff stream-check fabric-check scenario-check cover vuln

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the whole tree under the race detector. This is the gate for
# the parallel execution engine: the determinism suites (faultsim worker
# pool, Eq. 3 row kernels, strategy racing) and the mid-race cancellation
# stress test (TestRaceStrategiesCancelStress) all live in ./... and fail
# here on any data race.
race:
	$(GO) test -race ./...

# bench is a smoke run (fixed iteration count) of the end-to-end pipeline
# benchmarks, including the nil-observer telemetry fast path; use
# `go test -bench=. -benchmem` for real measurements.
bench:
	$(GO) test -run NONE -bench 'Integrate(Pipeline|NilObserver|WithObserver)$$' -benchtime 50x .

# bench-json records the parallel-speedup curve — the worker-pool faultsim
# and the row-parallel Eq. 3 kernel at widths 1/2/4/8, plus the adversarial
# scenario search that shards its evaluations over the same pool — as
# `go test -json` events in BENCH_parallel.json, the artifact behind the
# README's Performance table. Results are bit-identical at every width;
# only the ns/op column moves with the core count of the runner.
bench-json:
	$(GO) test -run NONE -bench '((Campaign|Separation)Parallel|AdversarialSearch)$$' -benchtime 3x -json . > BENCH_parallel.json
	$(GO) test -run NONE -bench 'BusPublish$$' -benchmem -json ./internal/obs > BENCH_bus.json
	$(GO) test -run NONE -bench 'FabricCampaign$$' -benchtime 3x -json ./internal/fabric > BENCH_fabric.json
	$(GO) test -run NONE -bench 'FabricTelemetry' -benchtime 3x -json ./internal/fabric > BENCH_telemetry.json
	$(GO) test -run NONE -bench '(ScenarioGen|IntegrateGenerated)$$' -benchtime 3x -json . > BENCH_scenarios.json

# scenario-check is the corpus acceptance gate: every committed scenario
# in testdata/corpus is regenerated from its seed (spec drift fails),
# run through Integrate plus a short fault campaign at Workers 1 and 4,
# and its decision ledger compared byte-for-byte against the committed
# golden, with the measured metrics held inside the recorded envelopes;
# a deliberate one-weight perturbation must be caught as the negative
# control. Under -race every corpus entry doubles as a race probe over
# the sharded generator and pipeline. Regenerate goldens deliberately
# with `go run ./cmd/scenariocheck -update` and commit the diff.
scenario-check:
	$(GO) run -race ./cmd/scenariocheck

# cover prints per-package statement coverage and enforces the floor on
# the scenario generator: internal/scengen below 85% fails the gate (it
# is the workload source every other suite leans on).
cover:
	@out="$$($(GO) test -count=1 -cover ./... )" || { echo "$$out"; exit 1; }; \
	echo "$$out" | grep 'coverage:'; \
	pct="$$(echo "$$out" | awk '$$2 == "repro/internal/scengen" { for (i = 1; i <= NF; i++) if ($$i ~ /%$$/) print substr($$i, 1, length($$i)-1) }')"; \
	if [ -z "$$pct" ]; then echo "cover: no coverage reported for internal/scengen"; exit 1; fi; \
	awk -v p="$$pct" 'BEGIN { if (p+0 < 85) { printf "cover: internal/scengen %.1f%% is below the 85%% floor\n", p; exit 1 } printf "cover: internal/scengen %.1f%% (floor 85%%)\n", p }'

# fabric-check certifies the distributed campaign fabric: the merged
# result of a sharded campaign must be reflect.DeepEqual-identical to a
# local Workers=1 run with 1 and 4 workers, with a worker killed while
# holding a lease (reassignment observed), under a chaos transport that
# drops/duplicates/delays frames, across a coordinator drain +
# frontier-checkpoint resume, with a lying worker quarantined off its
# first corrupt chunk, with unauthenticated/wrong-token dialers rejected
# before any campaign material crosses the wire, with flagless workers
# self-configuring over mutual TLS on real sockets, and with the
# fabric-sharded adversarial search matching the local search. Runs
# under -race so every scenario is also a data-race probe over the
# coordinator loop and worker sessions.
fabric-check:
	$(GO) run -race ./cmd/fabriccheck

# stream-check is the observability gate: it replays the whole event
# fabric in-process (pipeline spans, a watched campaign, an adversarial
# search, a robustness certification), validates every streamed event
# against the committed wire schema (docs/streaming/events.schema.json),
# exercises replay-from-sequence-number, and asserts the /dashboard
# document references no external URLs. The zero-alloc nil-bus publish
# contract is pinned separately by TestNilBusPublishZeroAlloc (test) and
# BenchmarkBusPublish (bench-json, with -benchmem).
stream-check:
	$(GO) run ./cmd/streamcheck

# ledger-diff is the decision-provenance determinism gate: two paperrepro
# runs with identical flags must produce byte-identical decision ledgers,
# and ledgerdiff must report zero divergence (it exits 1 otherwise). Any
# nondeterminism smuggled into the pipeline — map iteration, time, an
# unseeded RNG — fails here before it can corrupt a reproduction.
ledger-diff:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/paperrepro -only table1 -ledger $$tmp/a.jsonl >/dev/null 2>&1 && \
	$(GO) run ./cmd/paperrepro -only table1 -ledger $$tmp/b.jsonl >/dev/null 2>&1 && \
	$(GO) run ./cmd/ledgerdiff $$tmp/a.jsonl $$tmp/b.jsonl; \
	status=$$?; rm -rf $$tmp; exit $$status

# vuln scans the module with govulncheck when the tool is installed.
# Advisory, not blocking: findings are printed for review but do not fail
# the gate (the module is stdlib-only, so hits mean the Go toolchain
# itself needs updating), and a runner without the tool skips the scan.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || echo "vuln: findings above are advisory; gate not failed"; \
	else \
		echo "vuln: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# fuzz-smoke gives each native fuzz target a short budget (FUZZTIME,
# default 30s) — enough to catch shallow regressions in the decoder and
# the resilience layer without turning the gate into a fuzzing session.
fuzz-smoke:
	$(GO) test -run NONE -fuzz 'FuzzDecodeSystem$$' -fuzztime $(FUZZTIME) ./internal/spec
	$(GO) test -run NONE -fuzz 'FuzzIntegrate$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run NONE -fuzz 'FuzzFaultModel$$' -fuzztime $(FUZZTIME) ./internal/faultsim
