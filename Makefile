# Tier-1 gate for the repository (see README "Development"): everything a
# change must pass before merging. `make check` is the one-shot entry.

GO ?= go

.PHONY: check fmt vet build test race bench

check: fmt vet build test race bench

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench is a smoke run (fixed iteration count) of the end-to-end pipeline
# benchmarks, including the nil-observer telemetry fast path; use
# `go test -bench=. -benchmem` for real measurements.
bench:
	$(GO) test -run NONE -bench 'Integrate(Pipeline|NilObserver|WithObserver)$$' -benchtime 50x .
