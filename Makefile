# Tier-1 gate for the repository (see README "Development"): everything a
# change must pass before merging. `make check` is the one-shot entry.

GO ?= go
FUZZTIME ?= 30s

.PHONY: check fmt vet build test race bench fuzz-smoke

check: fmt vet build test race bench fuzz-smoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench is a smoke run (fixed iteration count) of the end-to-end pipeline
# benchmarks, including the nil-observer telemetry fast path; use
# `go test -bench=. -benchmem` for real measurements.
bench:
	$(GO) test -run NONE -bench 'Integrate(Pipeline|NilObserver|WithObserver)$$' -benchtime 50x .

# fuzz-smoke gives each native fuzz target a short budget (FUZZTIME,
# default 30s) — enough to catch shallow regressions in the decoder and
# the resilience layer without turning the gate into a fuzzing session.
fuzz-smoke:
	$(GO) test -run NONE -fuzz 'FuzzDecodeSystem$$' -fuzztime $(FUZZTIME) ./internal/spec
	$(GO) test -run NONE -fuzz 'FuzzIntegrate$$' -fuzztime $(FUZZTIME) .
