package depint

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (the §6 worked example) and one per extension experiment
// (E1–E15, indexed in DESIGN.md). Each benchmark regenerates its artifact
// on every iteration and reports the headline quantity via b.ReportMetric,
// so `go test -bench=. -benchmem` reproduces the paper's numbers alongside
// the cost of computing them.
//
// Run a single artifact with e.g. `go test -bench=Fig6 -benchmem`.

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/faultsim"
	"repro/internal/influence"
	"repro/internal/obs"
	"repro/internal/scengen"
	"repro/internal/sched"
)

func BenchmarkTable1Attributes(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		txt, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		n = strings.Count(txt, "\n")
	}
	b.ReportMetric(float64(n-2), "processes")
}

func BenchmarkFig1Hierarchy(b *testing.B) {
	var fcms int
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		fcms = r.FCMCount
	}
	b.ReportMetric(float64(fcms), "FCMs")
}

func BenchmarkFig2ClusterInfluence(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		v = r.CombinedOnN6
	}
	b.ReportMetric(v, "combined-influence")
}

func BenchmarkFig3InitialGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Replication(b *testing.B) {
	var nodes int
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		nodes = r.Nodes
	}
	b.ReportMetric(float64(nodes), "replicated-nodes")
}

func BenchmarkFig5InfluenceCombine(b *testing.B) {
	var r experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig5()
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := experiments.CheckFig5(r); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(r.V76, "v76")
	b.ReportMetric(r.V37, "v37")
}

func BenchmarkFig6ApproachA(b *testing.B) {
	var clusters int
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		clusters = len(r.Clusters)
	}
	b.ReportMetric(float64(clusters), "clusters")
}

func BenchmarkFig7ApproachB(b *testing.B) {
	want := "{p1a,p8} {p1b,p7} {p1c,p5} {p2a,p6} {p2b,p3b} {p3a,p4}"
	var got string
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		got = strings.Join(r.Clusters, " ")
	}
	if got != want {
		b.Fatalf("Fig. 7 clusters drifted:\n got %s\nwant %s", got, want)
	}
}

func BenchmarkFig8TimingGrouping(b *testing.B) {
	var clusters int
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		clusters = len(r.Clusters)
	}
	b.ReportMetric(float64(clusters), "clusters")
}

func BenchmarkE1InfluenceAlgebra(b *testing.B) {
	var eq2 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.E1()
		if err != nil {
			b.Fatal(err)
		}
		eq2 = r.Eq2
	}
	b.ReportMetric(eq2, "eq2")
}

func BenchmarkE2HeuristicContainment(b *testing.B) {
	var h1 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.E2([]int{12, 24}, 7)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Heuristic == "H1" && row.N == 24 {
				h1 = row.Contain
			}
		}
	}
	b.ReportMetric(h1, "H1-containment-n24")
}

func BenchmarkE3FaultInjection(b *testing.B) {
	var h1 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.E3(5000, 21)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Heuristic == "H1" {
				h1 = row.Escape
			}
		}
	}
	b.ReportMetric(h1, "H1-escape-rate")
}

func BenchmarkE4SeparationConvergence(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.E4(8)
		if err != nil {
			b.Fatal(err)
		}
		last = r.Rows[len(r.Rows)-1].Separation
	}
	b.ReportMetric(last, "separation-order8")
}

func BenchmarkE5IntegrationTradeoff(b *testing.B) {
	var floor int
	for i := 0; i < b.N; i++ {
		r, err := experiments.E5(2000, 31)
		if err != nil {
			b.Fatal(err)
		}
		floor = r.Floor
	}
	b.ReportMetric(float64(floor), "integration-floor")
}

func BenchmarkE6RetestCost(b *testing.B) {
	var savings float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.E6(4, 3, 4, 25, 5)
		if err != nil {
			b.Fatal(err)
		}
		savings = r.Model.Savings()
	}
	b.ReportMetric(savings, "R5-savings")
}

func BenchmarkE7Replication(b *testing.B) {
	var tmr float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.E7(10000, 3)
		if err != nil {
			b.Fatal(err)
		}
		tmr = r.Rows[2].TMRVal // p = 0.1
	}
	b.ReportMetric(tmr, "TMR-unavailability-p0.1")
}

func BenchmarkE8TaskContainment(b *testing.B) {
	var guarded int
	for i := 0; i < b.N; i++ {
		r, err := experiments.E8()
		if err != nil {
			b.Fatal(err)
		}
		guarded = r.GuardedTainted
	}
	b.ReportMetric(float64(guarded), "guarded-tainted")
}

func BenchmarkE9TimingFaults(b *testing.B) {
	var np int
	for i := 0; i < b.N; i++ {
		r, err := experiments.E9()
		if err != nil {
			b.Fatal(err)
		}
		np = r.NonPreemptiveVictims
	}
	b.ReportMetric(float64(np), "nonpreemptive-victims")
}

// BenchmarkIntegratePipeline measures the end-to-end public API on the
// worked example (not a paper artifact; a library-performance benchmark).
func BenchmarkIntegratePipeline(b *testing.B) {
	sys := PaperExample()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Integrate(sys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIntegrateNilObserver measures the pipeline with the observer
// option present but nil — the fast path WithObserver documents. Compare
// against BenchmarkIntegratePipeline: the two should be within noise.
func BenchmarkIntegrateNilObserver(b *testing.B) {
	sys := PaperExample()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Integrate(sys, WithObserver(nil)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIntegrateWithObserver measures the fully instrumented pipeline
// (spans, merge events, sched counters) to quantify telemetry overhead.
func BenchmarkIntegrateWithObserver(b *testing.B) {
	sys := PaperExample()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Integrate(sys, WithObserver(obs.New())); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	sched.Observe(nil)
}

// BenchmarkIntegrateSynthetic48 measures the pipeline on a 48-process
// synthetic suite, the scale point of experiment E2.
func BenchmarkIntegrateSynthetic48(b *testing.B) {
	sys, err := experiments.Synthesize(experiments.SynthConfig{
		Processes: 48, EdgesPerNode: 2.5, ReplicatedFraction: 0.25,
		Seed: 4242, HWNodes: 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Integrate(sys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10InfluenceEstimation(b *testing.B) {
	var agree float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.E10([]int{10000}, 13)
		if err != nil {
			b.Fatal(err)
		}
		agree = r.Rows[0].Agreement
	}
	b.ReportMetric(agree, "agreement-10k-trials")
}

func BenchmarkE11DilationRefinement(b *testing.B) {
	var ringAfter float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.E11()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Topology == "ring6" {
				ringAfter = row.After
			}
		}
	}
	b.ReportMetric(ringAfter, "ring6-dilation-after")
}

func BenchmarkE12HierarchyDepth(b *testing.B) {
	var deepCost float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.E12(200, 7)
		if err != nil {
			b.Fatal(err)
		}
		deepCost = r.Rows[len(r.Rows)-1].MeanRetest
	}
	b.ReportMetric(deepCost, "4level-retest-cost")
}

func BenchmarkE13CommFaults(b *testing.B) {
	var h1AllComm float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.E13(5000, 11)
		if err != nil {
			b.Fatal(err)
		}
		h1AllComm = r.Rows[len(r.Rows)-1].H1Escape
	}
	b.ReportMetric(h1AllComm, "H1-escape-all-comm")
}

func BenchmarkE14TopologySensitivity(b *testing.B) {
	var starH1 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.E14(24, 5)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Shape == "star" {
				starH1 = row.H1Contain
			}
		}
	}
	b.ReportMetric(starH1, "H1-containment-star")
}

// BenchmarkIntegrateScaling measures pipeline wall time across problem
// sizes (the engineering-scalability series).
func BenchmarkIntegrateScaling(b *testing.B) {
	for _, n := range []int{24, 48, 96} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			sys, err := experiments.Synthesize(experiments.SynthConfig{
				Processes: n, EdgesPerNode: 2.5, ReplicatedFraction: 0.25,
				Seed: uint64(n), HWNodes: n / 3,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Integrate(sys); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE15Availability(b *testing.B) {
	var tmr float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.E15(2e5, 7)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Module == "p1" {
				tmr = row.Simulated
			}
		}
	}
	b.ReportMetric(tmr, "p1-TMR-availability")
}

// BenchmarkCampaignParallel measures the worker-pool faultsim at widths
// 1, 2, 4 and 8 over the 48-process synthetic system. The results are
// bit-identical at every width (the determinism suite proves it), so the
// sub-benchmarks differ only in wall-clock: on an 8-core runner /8 should
// land at several times /1, while a single-core runner collapses them all
// to serial speed. `make bench-json` records the curve in
// BENCH_parallel.json.
func BenchmarkCampaignParallel(b *testing.B) {
	sys, err := experiments.Synthesize(experiments.SynthConfig{
		Processes: 48, EdgesPerNode: 2.5, ReplicatedFraction: 0.25,
		Seed: 4242, HWNodes: 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	res, err := Integrate(sys)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("%d", workers), func(b *testing.B) {
			var escape float64
			for i := 0; i < b.N; i++ {
				fi, err := faultsim.Run(faultsim.Campaign{
					Graph: res.Expanded, HWOf: res.HWOf(),
					Trials: 50000, Seed: 7, CriticalThreshold: 10,
					Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				escape = fi.EscapeRate()
			}
			b.ReportMetric(escape, "escape-rate")
		})
	}
}

// BenchmarkAdversarialSearch measures the worst-case scenario search —
// the new hot path layered on the worker pool: each hill-climb evaluation
// is a full campaign sharded across the given width, so the curve tracks
// BenchmarkCampaignParallel with the climb's bookkeeping on top. The
// found worst case is bit-identical at every width.
func BenchmarkAdversarialSearch(b *testing.B) {
	sys, err := experiments.Synthesize(experiments.SynthConfig{
		Processes: 48, EdgesPerNode: 2.5, ReplicatedFraction: 0.25,
		Seed: 4242, HWNodes: 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	res, err := Integrate(sys)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("%d", workers), func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				sr, err := faultsim.Search(faultsim.SearchConfig{
					Graph: res.Expanded, HWOf: res.HWOf(),
					Trials: 2000, Seed: 7, CriticalThreshold: 10,
					Workers: workers, MaxEvals: 12,
				})
				if err != nil {
					b.Fatal(err)
				}
				worst = sr.Best.Score
			}
			b.ReportMetric(worst, "worst-weighted-escape")
		})
	}
}

// BenchmarkSeparationParallel measures the row-parallel Eq. 3 kernel at
// the same widths over the expanded 48-process influence matrix.
func BenchmarkSeparationParallel(b *testing.B) {
	sys, err := experiments.Synthesize(experiments.SynthConfig{
		Processes: 48, EdgesPerNode: 2.5, ReplicatedFraction: 0.25,
		Seed: 4242, HWNodes: 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	res, err := Integrate(sys)
	if err != nil {
		b.Fatal(err)
	}
	p, _ := res.Expanded.Matrix()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := influence.SeparationMatrixWorkers(
					context.Background(), p, 0, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScenarioGen measures the corpus generator at the large preset
// (120 processes): the cost of producing a whole scenario — topology,
// sharded attribute synthesis, hierarchy — per family. The generator is
// the workload source for every other benchmark family, so its own cost
// must stay negligible next to the pipeline's.
func BenchmarkScenarioGen(b *testing.B) {
	for _, fam := range scengen.Families() {
		b.Run(string(fam), func(b *testing.B) {
			var edges int
			for i := 0; i < b.N; i++ {
				sc, err := scengen.Generate(scengen.Config{Family: fam, Processes: 120, Seed: 7})
				if err != nil {
					b.Fatal(err)
				}
				edges = len(sc.System.Influences)
			}
			b.ReportMetric(float64(edges), "edges")
		})
	}
}

// BenchmarkIntegrateGenerated runs the full pipeline on a generated
// medium scenario per family — the honest end-to-end workload numbers
// the worked example (8 processes) cannot provide.
func BenchmarkIntegrateGenerated(b *testing.B) {
	for _, fam := range scengen.Families() {
		sc, err := scengen.Generate(scengen.Config{Family: fam, Processes: 36, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(string(fam), func(b *testing.B) {
			var cross float64
			for i := 0; i < b.N; i++ {
				res, err := Integrate(sc.System.Clone())
				if err != nil {
					b.Fatal(err)
				}
				cross = res.Report.CrossInfluence
			}
			b.ReportMetric(cross, "cross-influence")
		})
	}
}
