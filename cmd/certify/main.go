// Command certify drives the framework's V&V workflow (rule R5): given a
// three-level FCM hierarchy and a sequence of modified FCMs, it prints the
// retest set of each modification and the cumulative recertification cost
// compared against naive whole-system retesting.
//
// Usage:
//
//	certify [-hier hierarchy.json] -modify kalman,blit,pid
//	certify -emit-example > hierarchy.json
//	certify -modify pid -trace out.json -log-level info
//
// With telemetry enabled the tool records one span per modification's
// retest step, carrying the retest-set size as attributes; -watch streams
// the span activity live as NDJSON on stderr (or at /events plus the
// /dashboard when -metrics-addr is set).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/spec"
	"repro/internal/verify"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "certify: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("certify", flag.ContinueOnError)
	fs.SetOutput(stdout)
	hierPath := fs.String("hier", "", "path to a hierarchy JSON (default: built-in example)")
	modify := fs.String("modify", "", "comma-separated FCM names to modify in order")
	emit := fs.Bool("emit-example", false, "write the built-in hierarchy example as JSON and exit")
	workers := cli.RegisterWorkers(fs)
	timeout := cli.RegisterTimeout(fs)
	obsFlags := cli.RegisterObsFlags(fs, os.Stderr)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cli.ApplyWorkers(*workers)
	ctx, stop := cli.RunContext(*timeout)
	defer stop()
	observer, oerr := obsFlags.Observer()
	if oerr != nil {
		return oerr
	}
	obsFlags.WatchContext(ctx)
	// Flush telemetry at exit; a failed trace write must fail the run.
	defer func() {
		if ferr := obsFlags.Finish(); ferr != nil && err == nil {
			err = ferr
		}
	}()

	if *emit {
		return spec.ExampleHierarchy().Encode(stdout)
	}

	hs := spec.ExampleHierarchy()
	var h *core.Hierarchy
	if *hierPath != "" {
		f, ferr := os.Open(*hierPath)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		hs, h, err = spec.DecodeHierarchy(f)
	} else {
		h, err = hs.Build()
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "hierarchy %s: %d FCMs\n", hs.Name, h.Len())
	for _, root := range h.Roots(core.ProcessLevel) {
		core.Walk(root, func(f *core.FCM, depth int) {
			fmt.Fprintf(stdout, "%s%s (%s)\n", strings.Repeat("  ", depth+1), f.Name(), f.Level())
		})
	}

	if *modify == "" {
		fmt.Fprintln(stdout, "\nno modifications requested (-modify a,b,c); initial certification only")
		c := verify.NewCertifier(h)
		c.CertifyAll()
		fmt.Fprintf(stdout, "initial certification: %d FCMs, %d interfaces\n",
			c.FCMsRetested, c.InterfacesRetested)
		return nil
	}

	mods := strings.Split(*modify, ",")
	for i := range mods {
		mods[i] = strings.TrimSpace(mods[i])
	}

	// Per-modification retest sets on a fresh certifier. Each step gets
	// its own telemetry span carrying the retest-set size.
	root := observer.StartSpan("certify", obs.String("hierarchy", hs.Name), obs.Int("modifications", len(mods)))
	defer root.End()
	c := verify.NewCertifier(h)
	c.CertifyAll()
	fmt.Fprintln(stdout, "\nper-modification retest sets (rule R5):")
	for _, m := range mods {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("cancelled before retest of %q: %w", m, err)
		}
		span := root.StartChild("retest", obs.String("modified", m))
		fcms, interfaces, err := h.RetestSet(m)
		if err != nil {
			return err
		}
		if err := c.Modify(m); err != nil {
			return err
		}
		if span != nil {
			span.SetAttr(obs.Int("fcms_retested", len(fcms)), obs.Int("interfaces_retested", len(interfaces)))
		}
		span.End()
		fmt.Fprintf(stdout, "  modify %-10s -> retest FCMs {%s}", m, strings.Join(fcms, ", "))
		if len(interfaces) > 0 {
			fmt.Fprintf(stdout, " and interfaces {%s}", strings.Join(interfaces, ", "))
		}
		fmt.Fprintln(stdout)
	}
	if stale := c.StaleSet(); len(stale) > 0 {
		fmt.Fprintf(stdout, "  WARNING: stale certifications remain: %v\n", stale)
	}

	// Cumulative cost model vs naive retesting.
	model, err := verify.CompareCosts(func() (*core.Hierarchy, error) { return hs.Build() }, mods)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\ncumulative cost over %d modifications:\n", model.Modifications)
	fmt.Fprintf(stdout, "  R5 (parent-only): %4d FCM retests, %4d interface retests\n",
		model.R5FCMs, model.R5Interfaces)
	fmt.Fprintf(stdout, "  naive (whole sys):%4d FCM retests, %4d interface retests\n",
		model.NaiveFCMs, model.NaiveInterfaces)
	fmt.Fprintf(stdout, "  savings: %.1f%%\n", model.Savings()*100)
	return nil
}
