package main

import (
	"strings"
	"testing"
)

func TestRunInitialCertificationOnly(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"11 FCMs", "initial certification: 11 FCMs, 5 interfaces"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunModificationSequence(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-modify", "kalman,blit"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"modify kalman", "retest FCMs {guidance, kalman}",
		"kalman<->waypoint", "savings:",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunEmitExample(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-emit-example"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"flight-control-hierarchy"`) {
		t.Errorf("emitted spec wrong:\n%s", out.String())
	}
}

func TestRunUnknownModification(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-modify", "ghost"}, &out); err == nil {
		t.Error("unknown FCM accepted")
	}
}
