// Fabriccheck is the `make fabric-check` gate: it certifies the
// distributed campaign fabric's core guarantee — the merged result of a
// sharded campaign is bit-identical (reflect.DeepEqual on the full
// faultsim.Result) to a local Workers=1 run — under every failure mode
// the protocol claims to survive:
//
//   - clean transport, 1 worker and 4 workers (and zero lease churn);
//   - a worker killed the moment it first holds a lease, with the
//     coordinator observed reassigning its chunks;
//   - a chaos transport dropping, duplicating and delaying frames in
//     both directions, with a short lease TTL forcing real expiries;
//   - the federated-telemetry relay on (bus + observer), with a worker
//     killed mid-campaign: the merge must stay bit-identical, and every
//     chunk must appear exactly once among the relayed evaluate spans,
//     each parented by a lease the coordinator actually granted over
//     that chunk;
//   - a coordinator drained mid-campaign (graceful ctx cancel) and
//     restarted from its frontier checkpoint, finishing with strictly
//     fewer fresh leases than a from-zero run;
//   - a lying worker corrupting every chunk it returns: deterministic
//     spot-checks quarantine it and the merge stays bit-identical;
//   - an unauthenticated (and a wrong-token) dialer, rejected by the
//     HMAC challenge-response before any campaign material — spec,
//     fingerprint, trials, leases — crosses the wire;
//   - flagless workers self-configuring from the shipped spec over
//     TLS 1.3 with mutual certificate verification plus the token gate,
//     on real TCP sockets;
//   - the fabric-sharded adversarial search, whose SearchResult must be
//     bit-identical to the local faultsim.Search at 1 and 4 workers.
//
// The Makefile runs it under -race, so every scenario doubles as a data
// race probe over the coordinator loop, worker sessions and chaos timers.
// Exits non-zero with a per-scenario report on any violation.
//
// Usage: go run -race ./cmd/fabriccheck [-trials 3200]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"time"

	"repro"
	"repro/internal/fabric"
	"repro/internal/faultsim"
	"repro/internal/graph"
	"repro/internal/obs"
)

var failures int

func fail(format string, args ...any) {
	failures++
	fmt.Fprintf(os.Stderr, "fabric-check: FAIL: "+format+"\n", args...)
}

func main() {
	trials := flag.Int("trials", 3200, "campaign trials per scenario")
	flag.Parse()

	sys := depint.PaperExample()
	res, err := depint.Integrate(sys)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fabric-check: integrate: %v\n", err)
		os.Exit(1)
	}
	c := faultsim.Campaign{
		Graph:             res.Expanded,
		HWOf:              res.HWOf(),
		Trials:            *trials,
		Seed:              1998,
		CriticalThreshold: 10,
		CommFaultFraction: 0.3,
	}
	local := c
	local.Workers = 1
	want, err := faultsim.Run(local)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fabric-check: local reference: %v\n", err)
		os.Exit(1)
	}

	cleanTopologies(c, want)
	killedWorker(c, want)
	chaosTransport(c, want)
	telemetryTrace(c, want)
	drainAndResume(c, want)
	lyingWorkerQuarantine(c, want)
	authReject(c, want)
	selfConfiguringTLS(c, want)
	searchIdentity(res.Expanded, res.HWOf(), *trials)

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "fabric-check: %d failure(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("fabric-check: OK")
}

// workerDefaults are the fast-cadence settings every scenario shares.
func workerDefaults(c faultsim.Campaign, dial fabric.Dialer, name string, seed uint64) fabric.WorkerConfig {
	return fabric.WorkerConfig{
		Campaign:         c,
		Dial:             dial,
		Name:             name,
		HeartbeatEvery:   25 * time.Millisecond,
		HandshakeTimeout: 250 * time.Millisecond,
		BackoffBase:      2 * time.Millisecond,
		BackoffMax:       50 * time.Millisecond,
		MaxReconnects:    200,
		Seed:             seed,
	}
}

// runFabric serves cfg while n workers (built by wcfg, run under wctx)
// compute, and returns the merged result. Worker errors are intentionally
// ignored: scenarios kill and drain workers on purpose.
func runFabric(ctx context.Context, cfg fabric.Config, n int,
	wcfg func(i int) fabric.WorkerConfig, wctx func(i int) context.Context,
) (faultsim.Result, fabric.Stats, error) {
	type out struct {
		res   faultsim.Result
		stats fabric.Stats
		err   error
	}
	ch := make(chan out, 1)
	go func() {
		res, stats, err := fabric.Serve(ctx, cfg)
		ch <- out{res, stats, err}
	}()
	stop, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		c := stop
		if wctx != nil {
			c = wctx(i)
		}
		wg.Add(1)
		go func(i int, c context.Context) {
			defer wg.Done()
			_ = fabric.RunWorker(c, wcfg(i))
		}(i, c)
	}
	o := <-ch
	cancel()
	wg.Wait()
	return o.res, o.stats, o.err
}

func cleanTopologies(c faultsim.Campaign, want faultsim.Result) {
	for _, n := range []int{1, 4} {
		pl := fabric.NewPipeListener()
		got, stats, err := runFabric(context.Background(),
			fabric.Config{Campaign: c, Listener: pl}, n,
			func(i int) fabric.WorkerConfig {
				return workerDefaults(c, pl.Dial(), fmt.Sprintf("w%d", i), uint64(i))
			}, nil)
		if err != nil {
			fail("%d workers: %v", n, err)
			continue
		}
		if !reflect.DeepEqual(got, want) {
			fail("%d workers: merged result differs from Workers=1", n)
		}
		if stats.WorkersSeen != n || stats.Duplicates != 0 || stats.LeasesExpired != 0 {
			fail("%d workers: unexpected churn on a clean transport: %+v", n, stats)
		}
		fmt.Printf("fabric-check: %d worker(s), clean transport: bit-identical (%d leases)\n",
			n, stats.LeasesGranted)
	}
}

func killedWorker(c faultsim.Campaign, want faultsim.Result) {
	bus := obs.NewBus(256)
	defer bus.Close()
	victimCtx, kill := context.WithCancel(context.Background())
	defer kill()
	sub := bus.Subscribe(0, 256)
	watcherDone := make(chan struct{})
	var once sync.Once
	go func() {
		defer close(watcherDone)
		for {
			ev, ok := sub.Next(nil)
			if !ok {
				return
			}
			if ev.Kind == "fabric_lease" && ev.Attrs["worker"] == "victim" && ev.Attrs["state"] == "grant" {
				once.Do(kill)
			}
		}
	}()

	pl := fabric.NewPipeListener()
	got, stats, err := runFabric(context.Background(),
		fabric.Config{Campaign: c, Listener: pl, Bus: bus, LeaseTTL: 2 * time.Second}, 4,
		func(i int) fabric.WorkerConfig {
			name := fmt.Sprintf("w%d", i)
			if i == 0 {
				name = "victim"
			}
			return workerDefaults(c, pl.Dial(), name, uint64(i))
		},
		func(i int) context.Context {
			if i == 0 {
				return victimCtx
			}
			return context.Background()
		})
	sub.Close()
	<-watcherDone
	if err != nil {
		fail("killed worker: %v", err)
		return
	}
	if !reflect.DeepEqual(got, want) {
		fail("killed worker: merged result differs from Workers=1")
	}
	if stats.WorkersLost == 0 || stats.Reassigned == 0 {
		fail("killed worker: no observed loss/reassignment (stats %+v) — victim never held a lease?", stats)
	}
	fmt.Printf("fabric-check: killed worker: bit-identical, %d chunk(s) reassigned after %d loss(es)\n",
		stats.Reassigned, stats.WorkersLost)
}

func chaosTransport(c faultsim.Campaign, want faultsim.Result) {
	chaos := fabric.ChaosConfig{
		Seed: 7, Drop: 0.05, Dup: 0.08, Delay: 0.15, MaxDelay: 10 * time.Millisecond,
	}
	pl := fabric.NewPipeListener()
	ln := fabric.ChaosListener(pl, chaos)
	dial := fabric.ChaosDialer(pl.Dial(), chaos)
	got, stats, err := runFabric(context.Background(),
		fabric.Config{Campaign: c, Listener: ln, LeaseTTL: 150 * time.Millisecond}, 3,
		func(i int) fabric.WorkerConfig {
			return workerDefaults(c, dial, fmt.Sprintf("w%d", i), uint64(i))
		}, nil)
	if err != nil {
		fail("chaos transport: %v", err)
		return
	}
	if !reflect.DeepEqual(got, want) {
		fail("chaos transport: merged result differs from Workers=1 (stats %+v)", stats)
	}
	fmt.Printf("fabric-check: chaos transport (drop/dup/delay): bit-identical (%d expired, %d reassigned, %d duplicates suppressed)\n",
		stats.LeasesExpired, stats.Reassigned, stats.Duplicates)
}

// telemetryTrace certifies the federated-telemetry leg: with a bus and
// observer attached, the coordinator propagates trace context on grants
// and absorbs the phase spans workers relay back on their result frames.
// Even with a worker killed mid-campaign (its chunks reassigned), the
// merge must stay bit-identical to Workers=1, every chunk must appear
// exactly once among the relayed evaluate spans, and every span's parent
// must be a lease the coordinator actually granted over that chunk.
func telemetryTrace(c faultsim.Campaign, want faultsim.Result) {
	bus := obs.NewBus(1 << 13)
	defer bus.Close()
	sub := bus.Subscribe(0, 1<<13)
	defer sub.Close()
	observer := obs.New(obs.WithBus(bus))

	victimCtx, kill := context.WithCancel(context.Background())
	defer kill()
	var once sync.Once
	watch := bus.Subscribe(0, 256)
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		for {
			ev, ok := watch.Next(nil)
			if !ok {
				return
			}
			if ev.Kind == "fabric_lease" && ev.Attrs["worker"] == "victim" && ev.Attrs["state"] == "grant" {
				once.Do(kill)
			}
		}
	}()

	pl := fabric.NewPipeListener()
	got, stats, err := runFabric(context.Background(),
		fabric.Config{Campaign: c, Listener: pl, Bus: bus, Observer: observer, LeaseTTL: 2 * time.Second}, 4,
		func(i int) fabric.WorkerConfig {
			name := fmt.Sprintf("w%d", i)
			if i == 0 {
				name = "victim"
			}
			return workerDefaults(c, pl.Dial(), name, uint64(i))
		},
		func(i int) context.Context {
			if i == 0 {
				return victimCtx
			}
			return context.Background()
		})
	watch.Close()
	<-watcherDone
	if err != nil {
		fail("telemetry: %v", err)
		return
	}
	if !reflect.DeepEqual(got, want) {
		fail("telemetry: merged result differs from Workers=1 with relay on (stats %+v)", stats)
	}

	// Granted leases, from the event stream: lease id -> chunk index.
	leaseChunk := map[uint64]int{}
	for {
		ev, ok := sub.TryNext()
		if !ok {
			break
		}
		if ev.Kind != "fabric_lease" || ev.Attrs["state"] != "grant" {
			continue
		}
		lease, ok1 := attrInt(ev.Attrs["lease"])
		begin, ok2 := attrInt(ev.Attrs["begin"])
		if ok1 && ok2 {
			leaseChunk[uint64(lease)] = faultsim.ChunkIndex(begin)
		}
	}

	spans := observer.RemoteSpans()
	if len(spans) == 0 {
		fail("telemetry: no remote spans relayed")
		return
	}
	total := faultsim.NumChunks(c.Trials)
	evalSeen := make(map[int]int, total)
	ids := map[uint64]bool{}
	for _, rs := range spans {
		if rs.ID == 0 || ids[rs.ID] {
			fail("telemetry: duplicate or zero span id %d (chunk %d, %s)", rs.ID, rs.Chunk, rs.Name)
			return
		}
		ids[rs.ID] = true
		chunk, granted := leaseChunk[rs.Parent]
		if !granted {
			fail("telemetry: span %s/chunk %d has parent %d, which is not a granted lease", rs.Name, rs.Chunk, rs.Parent)
			return
		}
		if chunk != rs.Chunk {
			fail("telemetry: span parent lease %d was granted chunk %d, span claims chunk %d", rs.Parent, chunk, rs.Chunk)
			return
		}
		if rs.Name == "evaluate" {
			evalSeen[rs.Chunk]++
		}
	}
	for i := 0; i < total; i++ {
		if evalSeen[i] != 1 {
			fail("telemetry: chunk %d appears %d time(s) among evaluate spans, want exactly 1", i, evalSeen[i])
			return
		}
	}
	fmt.Printf("fabric-check: federated telemetry: bit-identical with relay on, %d remote spans, each of %d chunks traced exactly once (%d reassigned after kill)\n",
		len(spans), total, stats.Reassigned)
}

// attrInt coerces the numeric types bus attrs carry in practice.
func attrInt(v any) (int, bool) {
	switch n := v.(type) {
	case int:
		return n, true
	case int64:
		return int(n), true
	case float64:
		return int(n), true
	}
	return 0, false
}

// lyingWorkerQuarantine certifies the untrusted-worker defence: one of
// four workers corrupts every result chunk it returns. Deterministic
// spot-checks must catch it on its first divergent chunk, quarantine it
// (with local fallback covering its chunks), and the final merge must
// still be bit-identical to the local reference.
func lyingWorkerQuarantine(c faultsim.Campaign, want faultsim.Result) {
	pl := fabric.NewPipeListener()
	got, stats, err := runFabric(context.Background(),
		fabric.Config{Campaign: c, Listener: pl, SpotCheck: 0.25, LeaseTTL: 2 * time.Second}, 4,
		func(i int) fabric.WorkerConfig {
			name := fmt.Sprintf("w%d", i)
			dial := pl.Dial()
			if i == 0 {
				name = "liar"
				dial = fabric.CorruptDialer(dial, 7, 1)
			}
			return workerDefaults(c, dial, name, uint64(i))
		}, nil)
	if err != nil {
		fail("lying worker: %v", err)
		return
	}
	if !reflect.DeepEqual(got, want) {
		fail("lying worker: merged result differs from Workers=1 — corrupt bytes reached the merge (stats %+v)", stats)
	}
	if stats.Quarantined != 1 {
		fail("lying worker: Quarantined = %d, want 1 (stats %+v)", stats.Quarantined, stats)
	}
	fmt.Printf("fabric-check: lying worker: quarantined after %d spot-check(s), merge bit-identical\n",
		stats.Quarantined)
}

// authReject certifies the token gate at the protocol level: a dialer
// with the wrong token (and one with none) must be rejected before any
// campaign material — fingerprint, trials, spec, lease — crosses the
// wire, while a correct-token run stays bit-identical.
func authReject(c faultsim.Campaign, want faultsim.Result) {
	const token = "fabric-check-secret"
	pl := fabric.NewPipeListener()
	serveCtx, stop := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := fabric.Serve(serveCtx, fabric.Config{
			Campaign: c, Listener: pl, AuthToken: token, LeaseTTL: 2 * time.Second,
		})
		done <- err
	}()

	// Raw probe: say hello without the token and record every frame the
	// coordinator sends before rejecting us.
	probe := func(mac string) bool {
		conn, err := pl.Dial()(context.Background())
		if err != nil {
			fail("auth: probe dial: %v", err)
			return false
		}
		defer conn.Close()
		if err := conn.Send(&fabric.Frame{Type: fabric.TypeHello, Proto: fabric.Proto, Worker: "probe", Nonce: "00"}); err != nil {
			fail("auth: probe hello: %v", err)
			return false
		}
		for {
			f, err := conn.Recv()
			if err != nil {
				fail("auth: probe recv: %v", err)
				return false
			}
			if f.Fingerprint != "" || f.Spec != nil || f.Trials != 0 || f.Lease != 0 {
				fail("auth: campaign material sent pre-auth in %q frame: %+v", f.Type, f)
				return false
			}
			switch f.Type {
			case fabric.TypeChallenge:
				if err := conn.Send(&fabric.Frame{Type: fabric.TypeAuth, MAC: mac}); err != nil {
					fail("auth: probe auth frame: %v", err)
					return false
				}
			case fabric.TypeReject:
				return true
			default:
				fail("auth: unexpected pre-auth frame %q", f.Type)
				return false
			}
		}
	}
	if probe("") && probe("deadbeef") {
		fmt.Println("fabric-check: auth: unauthenticated and wrong-token dialers rejected, zero campaign material pre-auth")
	}

	// Wrong-token worker: terminal ErrRejected, no retry storm.
	bad := workerDefaults(c, pl.Dial(), "intruder", 99)
	bad.AuthToken = "wrong-" + token
	if err := fabric.RunWorker(context.Background(), bad); !errors.Is(err, fabric.ErrRejected) {
		fail("auth: wrong-token worker returned %v, want ErrRejected", err)
	}

	// Correct token: the campaign completes bit-identically.
	ok := workerDefaults(c, pl.Dial(), "legit", 1)
	ok.AuthToken = token
	wdone := make(chan error, 1)
	go func() { wdone <- fabric.RunWorker(context.Background(), ok) }()
	err := <-done
	stop()
	if werr := <-wdone; werr != nil {
		fail("auth: correct-token worker: %v", werr)
	}
	if err != nil {
		fail("auth: Serve: %v", err)
		return
	}
	fmt.Println("fabric-check: auth: correct-token campaign completed")
}

// selfConfiguringTLS runs the full trust-domain-crossing configuration:
// TLS 1.3 with mutual certificate verification, the shared-token
// handshake, and flagless workers that self-configure from the shipped
// spec — over real TCP sockets, end to end.
func selfConfiguringTLS(c faultsim.Campaign, want faultsim.Result) {
	dir, err := os.MkdirTemp("", "fabriccheck-tls")
	if err != nil {
		fail("tls: %v", err)
		return
	}
	defer os.RemoveAll(dir)
	certs, err := fabric.WriteEphemeralCerts(dir)
	if err != nil {
		fail("tls: %v", err)
		return
	}
	ln, err := fabric.ListenTLS("127.0.0.1:0", certs.ServerCertFile, certs.ServerKeyFile, certs.CAFile)
	if err != nil {
		fail("tls: listen: %v", err)
		return
	}
	dial, err := fabric.DialTLS(ln.Addr(), certs.ClientCertFile, certs.ClientKeyFile, certs.CAFile)
	if err != nil {
		fail("tls: dial: %v", err)
		return
	}
	got, stats, err := runFabric(context.Background(),
		fabric.Config{Campaign: c, Listener: ln, AuthToken: "sesame", SpotCheck: 0.1, LeaseTTL: 2 * time.Second}, 2,
		func(i int) fabric.WorkerConfig {
			w := workerDefaults(faultsim.Campaign{}, dial, fmt.Sprintf("w%d", i), uint64(i))
			w.AuthToken = "sesame"
			return w
		}, nil)
	if err != nil {
		fail("tls: %v", err)
		return
	}
	if !reflect.DeepEqual(got, want) {
		fail("tls: flagless result differs from Workers=1 (stats %+v)", stats)
	}
	if stats.WorkersSeen != 2 {
		fail("tls: WorkersSeen = %d, want 2", stats.WorkersSeen)
	}
	fmt.Printf("fabric-check: TLS + token + flagless self-configuration over TCP: bit-identical (%d leases)\n",
		stats.LeasesGranted)
}

// searchIdentity certifies the fabric-sharded adversarial search: the
// SearchResult from ServeSearch over 1 and 4 flagless workers must be
// reflect.DeepEqual-identical to the local faultsim.Search — same best
// scenario, same scores, same evaluation trail.
func searchIdentity(g *graph.Graph, hwOf map[string]string, trials int) {
	scfg := faultsim.SearchConfig{
		Graph:             g,
		HWOf:              hwOf,
		Trials:            trials / 4,
		Seed:              1998,
		MaxEvals:          6,
		CriticalThreshold: 10,
	}
	want, err := faultsim.Search(scfg)
	if err != nil {
		fail("search: local reference: %v", err)
		return
	}
	for _, n := range []int{1, 4} {
		pl := fabric.NewPipeListener()
		type out struct {
			res   faultsim.SearchResult
			stats fabric.Stats
			err   error
		}
		ch := make(chan out, 1)
		go func() {
			res, stats, err := fabric.ServeSearch(context.Background(), fabric.Config{
				Listener: pl, SpotCheck: 0.1, LeaseTTL: 2 * time.Second, Label: "search",
			}, scfg)
			ch <- out{res, stats, err}
		}()
		wctx, wcancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_ = fabric.RunWorker(wctx, workerDefaults(faultsim.Campaign{}, pl.Dial(), fmt.Sprintf("w%d", i), uint64(i)))
			}(i)
		}
		o := <-ch
		wcancel()
		wg.Wait()
		if o.err != nil {
			fail("search: %d workers: %v", n, o.err)
			continue
		}
		if !reflect.DeepEqual(o.res, want) {
			fail("search: %d workers: fabric-sharded SearchResult differs from local Search", n)
			continue
		}
		fmt.Printf("fabric-check: fabric-sharded search, %d worker(s): bit-identical to local Search (%d evaluations, best %s)\n",
			n, len(o.res.Evaluations), o.res.Best.Scenario)
	}
}

func drainAndResume(c faultsim.Campaign, want faultsim.Result) {
	dir, err := os.MkdirTemp("", "fabriccheck")
	if err != nil {
		fail("drain/resume: %v", err)
		return
	}
	defer os.RemoveAll(dir)
	c.CheckpointPath = filepath.Join(dir, "frontier.ckpt")
	c.Resume = true

	// Phase 1: cancel the coordinator after a few merged chunks; the
	// frontier checkpoint must survive the drain.
	bus := obs.NewBus(256)
	serveCtx, drain := context.WithCancel(context.Background())
	sub := bus.Subscribe(0, 256)
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		results := 0
		for {
			ev, ok := sub.Next(nil)
			if !ok {
				return
			}
			if ev.Kind == "fabric_lease" && ev.Attrs["state"] == "result" {
				if results++; results == 5 {
					drain()
				}
			}
		}
	}()
	pl := fabric.NewPipeListener()
	_, first, err := runFabric(serveCtx,
		fabric.Config{Campaign: c, Listener: pl, Bus: bus}, 2,
		func(i int) fabric.WorkerConfig {
			return workerDefaults(c, pl.Dial(), fmt.Sprintf("w%d", i), uint64(i))
		}, nil)
	drain()
	sub.Close()
	bus.Close()
	<-watcherDone
	if !errors.Is(err, context.Canceled) {
		fail("drain/resume: drained Serve returned %v, want context.Canceled", err)
		return
	}

	// Phase 2: a fresh coordinator resumes from the frontier and must
	// still match the local reference — with fewer leases than a cold run.
	pl2 := fabric.NewPipeListener()
	got, second, err := runFabric(context.Background(),
		fabric.Config{Campaign: c, Listener: pl2}, 2,
		func(i int) fabric.WorkerConfig {
			return workerDefaults(c, pl2.Dial(), fmt.Sprintf("r%d", i), uint64(i))
		}, nil)
	if err != nil {
		fail("drain/resume: resumed Serve: %v", err)
		return
	}
	if !reflect.DeepEqual(got, want) {
		fail("drain/resume: resumed result differs from Workers=1")
	}
	if total := faultsim.NumChunks(c.Trials); second.LeasesGranted >= total {
		fail("drain/resume: resumed run granted %d leases for %d chunks — checkpoint ignored", second.LeasesGranted, total)
	}
	fmt.Printf("fabric-check: drain + checkpoint resume: bit-identical (%d leases before drain, %d after resume)\n",
		first.LeasesGranted, second.LeasesGranted)
}
