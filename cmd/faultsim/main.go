// Command faultsim runs seeded Monte-Carlo fault-injection campaigns over
// an integrated system, comparing the containment achieved by the
// condensation strategies.
//
// Usage:
//
//	faultsim [-spec system.json] [-trials N] [-seed S] [-timeout 2m]
//	         [-fault-model single|correlated|burst|transient] [-burst K]
//	         [-persist P] [-search N] [-strategy name]
//	         [-checkpoint path] [-checkpoint-every N] [-resume] [-resume-strict]
//	         [-workers N]
//	         [-serve addr | -connect addr] [-worker-name id] [-lease-ttl 5s]
//	         [-tls-cert cert.pem] [-tls-key key.pem] [-tls-ca ca.pem]
//	         [-auth-token secret] [-spot-check 0.05]
//	         [-trace out.json] [-log-level info] [-metrics-addr :9090]
//	         [-watch] [-ledger run.jsonl] [-flight-record dir/]
//
// -strategy restricts the run to one condensation strategy by name (for
// example "H1" or "criticality"); by default every strategy runs.
//
// -serve and -connect distribute a single-strategy campaign over TCP.
// The coordinator (`faultsim -serve :7000 -strategy H1`) shards the trial
// grid into lease-bound chunks across every connected worker, reassigns
// chunks whose leases expire, and merges results in grid order — the
// merged result is bit-identical to a local run at any worker count.
// Workers (`faultsim -connect host:7000 -strategy H1`) launched with the
// same spec/trials/seed/model flags are cross-checked by fingerprint;
// workers launched with no -strategy at all are flagless — they adopt the
// campaign spec the coordinator ships and verify it against its claimed
// fingerprint before computing. -checkpoint composes with -serve (the
// coordinator persists its merge frontier and resumes crash-safe);
// workers hold no durable state. See docs/fabric/protocol.md.
//
// The fabric hardens against untrusted networks and workers:
// -tls-cert/-tls-key/-tls-ca wrap every connection in TLS 1.3 (the
// coordinator requires and verifies client certificates when -tls-ca is
// given; workers verify the coordinator likewise); -auth-token adds an
// HMAC challenge-response on top, and no campaign material crosses the
// wire to a peer that has not proven possession of the token.
// -spot-check makes the coordinator deterministically re-compute that
// fraction of worker-returned chunks locally; a worker whose bytes
// diverge is quarantined (its name barred, its chunks recomputed), and if
// every worker is quarantined the coordinator degrades to pure-local
// execution — the merged result is bit-identical throughout.
//
// -serve -search N shards the adversarial search itself over the fabric:
// one long-lived worker set evaluates every candidate scenario's campaign
// (workers must be flagless, since each evaluation is a different
// campaign), and the SearchResult is bit-identical to the local -search.
//
// -resume-strict (default true) fails a resume on a truncated or corrupt
// checkpoint/journal with a typed diagnosis naming the file and offset;
// -resume-strict=false logs the damage and restarts that campaign from
// zero instead.
//
// -ledger writes a decision-provenance ledger covering every strategy's
// integration (merges, placements) plus one campaign-summary record per
// strategy and, with -search, the adversarial evaluation log — diffable
// across runs with the ledgerdiff tool.
//
// -fault-model selects how each trial's initial fault set is drawn:
// "single" (the paper's model, default), "correlated" (every FCM on one
// HW node faults together), "burst" (-burst simultaneous faults) or
// "transient" (faults recover with probability 1 - -persist before
// propagating). -search N additionally hill-climbs over adversarial
// scenarios (seed node × model × burst size, at most N evaluations of
// -trials trials each) and reports the worst-case criticality-weighted
// escape rate per strategy.
//
// With telemetry enabled each strategy's campaign records a span with
// checkpoint events every 10% of trials (running escape-rate estimates)
// and feeds trial counters into the metrics registry.
//
// -watch streams live NDJSON progress events (campaign checkpoints with
// CI half-widths, search evaluations, stage transitions) to stderr.
// Combined with -metrics-addr the stream is served over HTTP instead:
// /events (NDJSON/SSE with replay), /progress (JSON snapshot) and a live
// /dashboard alongside the usual /metrics.
//
// With any telemetry consumer active, a -serve coordinator federates
// observability across the fabric: grant frames carry the run's trace
// context, workers relay per-chunk phase spans and liveness events back
// on the frames they were sending anyway, and the coordinator rebases
// remote timestamps onto its own clock (RTT-midpoint estimation),
// attributes chunk latency per worker and flags stragglers. The merged
// multi-process timeline lands in -trace Chrome-trace output and the
// /dashboard fabric board. See docs/observability/federation.md.
//
// -flight-record dir/ writes a self-contained post-mortem bundle at
// exit: the trace (local + relayed remote spans), the merged Chrome
// trace, metrics and progress snapshots, a bounded event tail, build
// identity, and the decision ledger when -ledger is active.
//
// -workers shards each campaign's trials across a worker pool (default
// GOMAXPROCS). Campaign results — and checkpoints — are bit-identical at
// every worker count, so -workers composes freely with -resume.
//
// With -checkpoint the per-strategy campaign state (RNG position and
// running counters) is persisted atomically to <path>.<strategy> as the
// campaign runs, and on SIGINT/SIGTERM or -timeout expiry; rerunning with
// -resume continues each campaign from its checkpoint and produces results
// bit-identical to an uninterrupted run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/internal/cli"
	"repro/internal/fabric"
	"repro/internal/faultsim"
	"repro/internal/obs"
	"repro/internal/spec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "faultsim: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("faultsim", flag.ContinueOnError)
	fs.SetOutput(stdout)
	specPath := fs.String("spec", "", "path to a system specification JSON (default: paper example)")
	trials := fs.Int("trials", 50000, "injection trials per strategy")
	seed := fs.Uint64("seed", 7, "campaign seed")
	comm := fs.Float64("comm", 0, "fraction of trials injecting communication faults (0..1)")
	modelName := fs.String("fault-model", "single", "fault model: single, correlated, burst or transient")
	burst := fs.Int("burst", 2, "simultaneous initial faults for -fault-model burst")
	persist := fs.Float64("persist", 0.5, "probability a fault is permanent for -fault-model transient")
	search := fs.Int("search", 0, "run an adversarial scenario search with at most N evaluations (0 = off)")
	ckpt := fs.String("checkpoint", "", "persist campaign state to <path>.<strategy> for crash-safe resume")
	ckptEvery := fs.Int("checkpoint-every", 0, "trials between checkpoint writes (default trials/10)")
	resume := fs.Bool("resume", false, "resume campaigns from their -checkpoint files when present")
	resumeStrict := fs.Bool("resume-strict", true, "fail on a corrupt checkpoint/journal instead of restarting from zero")
	strategyName := fs.String("strategy", "", "run only the named condensation strategy (required by -serve/-connect)")
	serveAddr := fs.String("serve", "", "coordinate a distributed campaign: listen on addr for -connect workers")
	connectAddr := fs.String("connect", "", "join a distributed campaign: dial the coordinator at addr")
	workerName := fs.String("worker-name", "", "worker identity reported to the coordinator (with -connect)")
	leaseTTL := fs.Duration("lease-ttl", 0, "coordinator lease TTL before an unacknowledged chunk is reassigned (default 5s)")
	tlsCert := fs.String("tls-cert", "", "PEM certificate presented to fabric peers (requires -tls-key)")
	tlsKey := fs.String("tls-key", "", "PEM private key for -tls-cert")
	tlsCA := fs.String("tls-ca", "", "PEM CA bundle: the coordinator requires and verifies client certificates against it; workers verify the coordinator against it")
	authToken := fs.String("auth-token", "", "shared fabric secret: peers prove possession via an HMAC challenge-response before any campaign material crosses the wire")
	spotCheck := fs.Float64("spot-check", 0.05, "fraction of fabric chunks the coordinator recomputes locally to catch lying workers (0 disables, with -serve)")
	workers := cli.RegisterWorkers(fs)
	timeout := cli.RegisterTimeout(fs)
	obsFlags := cli.RegisterObsFlags(fs, os.Stderr)
	ledFlag := cli.RegisterLedger(fs, "faultsim")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resume && *ckpt == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	strategies := []depint.Strategy{
		depint.H1, depint.H1PairAll, depint.H2, depint.H3,
		depint.Criticality, depint.TimingOrder,
	}
	if *strategyName != "" {
		s, err := strategyByName(*strategyName)
		if err != nil {
			return err
		}
		strategies = []depint.Strategy{s}
	}
	if *serveAddr != "" && *connectAddr != "" {
		return fmt.Errorf("-serve and -connect are mutually exclusive")
	}
	// The fabric shards exactly one campaign (or one search) at a time,
	// so the coordinator needs a single named strategy. Workers do not:
	// -connect without -strategy joins as a flagless worker that
	// self-configures from the spec the coordinator ships.
	if *serveAddr != "" && *strategyName == "" {
		return fmt.Errorf("-serve requires -strategy (one campaign per fabric)")
	}
	if *connectAddr != "" && *search > 0 {
		return fmt.Errorf("-search is coordinator-side; workers just compute the leases they are granted")
	}
	if (*tlsCert == "") != (*tlsKey == "") {
		return fmt.Errorf("-tls-cert and -tls-key must be set together")
	}
	if *connectAddr != "" && *ckpt != "" {
		return fmt.Errorf("-checkpoint is coordinator state; workers hold none")
	}
	model, err := faultsim.ModelByName(*modelName, *burst, *persist)
	if err != nil {
		return err
	}
	ctx, stop := cli.RunContext(*timeout)
	defer stop()
	observer, err := obsFlags.Observer()
	if err != nil {
		return err
	}
	obsFlags.WatchContext(ctx)
	// Flush telemetry at exit; a failed trace write must fail the run.
	defer func() {
		if ferr := obsFlags.Finish(); ferr != nil && err == nil {
			err = ferr
		}
	}()
	// One ledger spans all strategies: each strategy's integration and
	// campaign records ride along with its strategy name in Rule/Detail.
	led := ledFlag.Ledger()
	defer func() {
		if ferr := ledFlag.Finish(os.Stderr); ferr != nil && err == nil {
			err = ferr
		}
	}()
	// The ledger lands in the flight bundle too: its Finish (deferred
	// later, so run first) writes the file before the bundle copies it.
	obsFlags.FlightFile("ledger.jsonl", ledFlag.Path())

	sys := depint.PaperExample()
	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			return err
		}
		defer f.Close()
		sys, err = spec.Decode(f)
		if err != nil {
			return err
		}
	}

	// fabricListen/fabricDial pick the transport: plain TCP, or TLS when
	// cert material is supplied (the trust-domain-crossing deployment).
	fabricListen := func(addr string) (fabric.Listener, error) {
		if *tlsCert != "" {
			return fabric.ListenTLS(addr, *tlsCert, *tlsKey, *tlsCA)
		}
		return fabric.ListenTCP(addr)
	}
	fabricDial := func(addr string) (fabric.Dialer, error) {
		if *tlsCert != "" || *tlsCA != "" {
			return fabric.DialTLS(addr, *tlsCert, *tlsKey, *tlsCA)
		}
		return fabric.DialTCP(addr), nil
	}

	// Worker mode: compute leased chunks until the fabric completes or
	// drains. No table: results live at the coordinator. With -strategy
	// the worker integrates the same system the coordinator did and the
	// handshake cross-checks campaign fingerprints; without it the worker
	// is flagless — it adopts the spec the coordinator ships (after
	// verifying it against its claimed fingerprint).
	if *connectAddr != "" {
		dial, err := fabricDial(*connectAddr)
		if err != nil {
			return err
		}
		wcfg := fabric.WorkerConfig{
			Dial:      dial,
			Name:      *workerName,
			Bus:       obsFlags.Bus(),
			AuthToken: *authToken,
		}
		if *strategyName == "" {
			fmt.Fprintf(stdout, "fabric worker: joining %s flagless (campaign spec ships over the wire)\n",
				*connectAddr)
		} else {
			s := strategies[0]
			res, err := depint.IntegrateContext(ctx, sys, depint.WithStrategy(s),
				depint.WithWorkers(*workers), depint.WithObserver(observer),
				depint.WithLedger(led))
			if err != nil {
				return err
			}
			wcfg.Campaign = faultsim.Campaign{
				Graph:             res.Expanded,
				HWOf:              res.HWOf(),
				Trials:            *trials,
				Seed:              *seed,
				CriticalThreshold: 10,
				CommFaultFraction: *comm,
				Model:             model,
				Label:             s.String(),
				Ctx:               ctx,
			}
			fmt.Fprintf(stdout, "fabric worker: joining %s  strategy=%s trials=%d fingerprint=%s\n",
				*connectAddr, s, *trials, wcfg.Campaign.Fingerprint())
		}
		if err := fabric.RunWorker(ctx, wcfg); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "fabric worker: campaign complete")
		return nil
	}

	fmt.Fprintf(stdout, "fault injection: system=%s trials=%d seed=%d comm-fraction=%g model=%s\n\n",
		sys.Name, *trials, *seed, *comm, model.Name())
	fmt.Fprintln(stdout, "strategy      escape-rate  mean-affected  mean-crit-loss  cross-transmissions")
	for _, s := range strategies {
		res, err := depint.IntegrateContext(ctx, sys, depint.WithStrategy(s),
			depint.WithWorkers(*workers), depint.WithObserver(observer),
			depint.WithLedger(led))
		if err != nil {
			if ctx.Err() != nil {
				return err
			}
			fmt.Fprintf(stdout, "%-12s  FAILED: %v\n", s, err)
			continue
		}
		// -serve -search shards the adversarial search itself over the
		// fabric: each candidate scenario's campaign becomes one epoch on
		// the shared worker set. The baseline table is skipped — the
		// search result is the deliverable.
		if *serveAddr != "" && *search > 0 {
			ln, lerr := fabricListen(*serveAddr)
			if lerr != nil {
				return lerr
			}
			fmt.Fprintf(stdout, "fabric search coordinator: %s on %s  max-evals=%d trials=%d\n",
				s, ln.Addr(), *search, *trials)
			sspan := observer.StartSpan("adversarial_search",
				obs.String("strategy", s.String()), obs.Int("max_evals", *search))
			sr, fstats, serr := fabric.ServeSearch(ctx, fabric.Config{
				Listener:  ln,
				LeaseTTL:  *leaseTTL,
				AuthToken: *authToken,
				SpotCheck: *spotCheck,
				Bus:       obsFlags.Bus(),
				Observer:  observer,
				Label:     s.String(),
			}, faultsim.SearchConfig{
				Graph:             res.Expanded,
				HWOf:              res.HWOf(),
				Trials:            *trials,
				Seed:              *seed,
				MaxEvals:          *search,
				CriticalThreshold: 10,
				Span:              sspan,
				Metrics:           observer.Metrics(),
				Bus:               obsFlags.Bus(),
				Ledger:            led,
				Ctx:               ctx,
			})
			sspan.End()
			if serr != nil {
				return serr
			}
			fmt.Fprintf(stdout, "%-12s  worst case: %s  weighted-escape=%.4f  (%d evaluations)\n",
				s, sr.Best.Scenario, sr.Best.Score, len(sr.Evaluations))
			fmt.Fprintf(stdout, "  fabric: workers=%d lost=%d quarantined=%d  leases granted=%d expired=%d reassigned=%d duplicates=%d local-chunks=%d\n",
				fstats.WorkersSeen, fstats.WorkersLost, fstats.Quarantined,
				fstats.LeasesGranted, fstats.LeasesExpired, fstats.Reassigned,
				fstats.Duplicates, fstats.LocalChunks)
			continue
		}
		span := observer.StartSpan("campaign",
			obs.String("strategy", s.String()), obs.Int("trials", *trials))
		campaign := faultsim.Campaign{
			Graph:             res.Expanded,
			HWOf:              res.HWOf(),
			Trials:            *trials,
			Seed:              *seed,
			CriticalThreshold: 10,
			CommFaultFraction: *comm,
			Model:             model,
			Workers:           *workers,
			Span:              span,
			Metrics:           observer.Metrics(),
			Bus:               obsFlags.Bus(),
			Label:             s.String(),
			Ledger:            led,
			Ctx:               ctx,
		}
		if *ckpt != "" {
			campaign.CheckpointPath = fmt.Sprintf("%s.%s", *ckpt, s)
			campaign.CheckpointEvery = *ckptEvery
			campaign.Resume = *resume
			campaign.LaxResume = !*resumeStrict
		}
		var fi faultsim.Result
		var fstats fabric.Stats
		if *serveAddr != "" {
			ln, lerr := fabricListen(*serveAddr)
			if lerr != nil {
				span.End()
				return lerr
			}
			fmt.Fprintf(stdout, "fabric coordinator: %s on %s  fingerprint=%s\n",
				s, ln.Addr(), campaign.Fingerprint())
			fi, fstats, err = fabric.Serve(ctx, fabric.Config{
				Campaign:  campaign,
				Listener:  ln,
				LeaseTTL:  *leaseTTL,
				AuthToken: *authToken,
				SpotCheck: *spotCheck,
				Bus:       obsFlags.Bus(),
				Observer:  observer,
				Label:     s.String(),
			})
		} else {
			fi, err = faultsim.Run(campaign)
		}
		span.End()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%-12s  %11.4f  %13.3f  %14.3f  %19d\n",
			s, fi.EscapeRate(), fi.MeanAffected(), fi.MeanCriticalityLoss(),
			fi.CrossNodeTransmissions)
		if *serveAddr != "" {
			fmt.Fprintf(stdout, "  fabric: workers=%d lost=%d quarantined=%d  leases granted=%d expired=%d reassigned=%d duplicates=%d local-chunks=%d\n",
				fstats.WorkersSeen, fstats.WorkersLost, fstats.Quarantined,
				fstats.LeasesGranted, fstats.LeasesExpired, fstats.Reassigned,
				fstats.Duplicates, fstats.LocalChunks)
		}
		if *search > 0 {
			span := observer.StartSpan("adversarial_search",
				obs.String("strategy", s.String()), obs.Int("max_evals", *search))
			sr, err := faultsim.Search(faultsim.SearchConfig{
				Graph:             res.Expanded,
				HWOf:              res.HWOf(),
				Trials:            *trials,
				Seed:              *seed,
				Workers:           *workers,
				MaxEvals:          *search,
				CriticalThreshold: 10,
				Span:              span,
				Metrics:           observer.Metrics(),
				Bus:               obsFlags.Bus(),
				Ledger:            led,
				Ctx:               ctx,
			})
			span.End()
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "  worst case: %s  weighted-escape=%.4f  (%d evaluations)\n",
				sr.Best.Scenario, sr.Best.Score, len(sr.Evaluations))
		}
	}
	return nil
}

// strategyByName resolves a -strategy flag value against every strategy's
// canonical String() name, case-insensitively.
func strategyByName(name string) (depint.Strategy, error) {
	all := []depint.Strategy{
		depint.H1, depint.H1PairAll, depint.H2, depint.H2SourceTarget,
		depint.H3, depint.Criticality, depint.TimingOrder,
		depint.SeparationGuided,
	}
	names := make([]string, 0, len(all))
	for _, s := range all {
		if strings.EqualFold(name, s.String()) {
			return s, nil
		}
		names = append(names, s.String())
	}
	return 0, fmt.Errorf("unknown -strategy %q (one of %s)", name, strings.Join(names, ", "))
}
