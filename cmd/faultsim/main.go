// Command faultsim runs seeded Monte-Carlo fault-injection campaigns over
// an integrated system, comparing the containment achieved by the
// condensation strategies.
//
// Usage:
//
//	faultsim [-spec system.json] [-trials N] [-seed S] [-timeout 2m]
//	         [-fault-model single|correlated|burst|transient] [-burst K]
//	         [-persist P] [-search N] [-strategy name]
//	         [-checkpoint path] [-checkpoint-every N] [-resume] [-resume-strict]
//	         [-workers N]
//	         [-serve addr | -connect addr] [-worker-name id] [-lease-ttl 5s]
//	         [-trace out.json] [-log-level info] [-metrics-addr :9090]
//	         [-watch] [-ledger run.jsonl]
//
// -strategy restricts the run to one condensation strategy by name (for
// example "H1" or "criticality"); by default every strategy runs.
//
// -serve and -connect distribute a single-strategy campaign over TCP.
// The coordinator (`faultsim -serve :7000 -strategy H1`) shards the trial
// grid into lease-bound chunks across every connected worker, reassigns
// chunks whose leases expire, and merges results in grid order — the
// merged result is bit-identical to a local run at any worker count.
// Workers (`faultsim -connect host:7000 -strategy H1`) must be launched
// with the same spec/trials/seed/model flags: the handshake compares
// campaign fingerprints and rejects any divergence. -checkpoint composes
// with -serve (the coordinator persists its merge frontier and resumes
// crash-safe); workers hold no durable state. See docs/fabric/protocol.md.
//
// -resume-strict (default true) fails a resume on a truncated or corrupt
// checkpoint/journal with a typed diagnosis naming the file and offset;
// -resume-strict=false logs the damage and restarts that campaign from
// zero instead.
//
// -ledger writes a decision-provenance ledger covering every strategy's
// integration (merges, placements) plus one campaign-summary record per
// strategy and, with -search, the adversarial evaluation log — diffable
// across runs with the ledgerdiff tool.
//
// -fault-model selects how each trial's initial fault set is drawn:
// "single" (the paper's model, default), "correlated" (every FCM on one
// HW node faults together), "burst" (-burst simultaneous faults) or
// "transient" (faults recover with probability 1 - -persist before
// propagating). -search N additionally hill-climbs over adversarial
// scenarios (seed node × model × burst size, at most N evaluations of
// -trials trials each) and reports the worst-case criticality-weighted
// escape rate per strategy.
//
// With telemetry enabled each strategy's campaign records a span with
// checkpoint events every 10% of trials (running escape-rate estimates)
// and feeds trial counters into the metrics registry.
//
// -watch streams live NDJSON progress events (campaign checkpoints with
// CI half-widths, search evaluations, stage transitions) to stderr.
// Combined with -metrics-addr the stream is served over HTTP instead:
// /events (NDJSON/SSE with replay), /progress (JSON snapshot) and a live
// /dashboard alongside the usual /metrics.
//
// -workers shards each campaign's trials across a worker pool (default
// GOMAXPROCS). Campaign results — and checkpoints — are bit-identical at
// every worker count, so -workers composes freely with -resume.
//
// With -checkpoint the per-strategy campaign state (RNG position and
// running counters) is persisted atomically to <path>.<strategy> as the
// campaign runs, and on SIGINT/SIGTERM or -timeout expiry; rerunning with
// -resume continues each campaign from its checkpoint and produces results
// bit-identical to an uninterrupted run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/internal/cli"
	"repro/internal/fabric"
	"repro/internal/faultsim"
	"repro/internal/obs"
	"repro/internal/spec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "faultsim: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("faultsim", flag.ContinueOnError)
	fs.SetOutput(stdout)
	specPath := fs.String("spec", "", "path to a system specification JSON (default: paper example)")
	trials := fs.Int("trials", 50000, "injection trials per strategy")
	seed := fs.Uint64("seed", 7, "campaign seed")
	comm := fs.Float64("comm", 0, "fraction of trials injecting communication faults (0..1)")
	modelName := fs.String("fault-model", "single", "fault model: single, correlated, burst or transient")
	burst := fs.Int("burst", 2, "simultaneous initial faults for -fault-model burst")
	persist := fs.Float64("persist", 0.5, "probability a fault is permanent for -fault-model transient")
	search := fs.Int("search", 0, "run an adversarial scenario search with at most N evaluations (0 = off)")
	ckpt := fs.String("checkpoint", "", "persist campaign state to <path>.<strategy> for crash-safe resume")
	ckptEvery := fs.Int("checkpoint-every", 0, "trials between checkpoint writes (default trials/10)")
	resume := fs.Bool("resume", false, "resume campaigns from their -checkpoint files when present")
	resumeStrict := fs.Bool("resume-strict", true, "fail on a corrupt checkpoint/journal instead of restarting from zero")
	strategyName := fs.String("strategy", "", "run only the named condensation strategy (required by -serve/-connect)")
	serveAddr := fs.String("serve", "", "coordinate a distributed campaign: listen on addr for -connect workers")
	connectAddr := fs.String("connect", "", "join a distributed campaign: dial the coordinator at addr")
	workerName := fs.String("worker-name", "", "worker identity reported to the coordinator (with -connect)")
	leaseTTL := fs.Duration("lease-ttl", 0, "coordinator lease TTL before an unacknowledged chunk is reassigned (default 5s)")
	workers := cli.RegisterWorkers(fs)
	timeout := cli.RegisterTimeout(fs)
	obsFlags := cli.RegisterObsFlags(fs, os.Stderr)
	ledFlag := cli.RegisterLedger(fs, "faultsim")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resume && *ckpt == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	strategies := []depint.Strategy{
		depint.H1, depint.H1PairAll, depint.H2, depint.H3,
		depint.Criticality, depint.TimingOrder,
	}
	if *strategyName != "" {
		s, err := strategyByName(*strategyName)
		if err != nil {
			return err
		}
		strategies = []depint.Strategy{s}
	}
	if *serveAddr != "" && *connectAddr != "" {
		return fmt.Errorf("-serve and -connect are mutually exclusive")
	}
	if *serveAddr != "" || *connectAddr != "" {
		// The fabric shards exactly one campaign; coordinator and workers
		// must agree on which, so a single named strategy is required.
		if *strategyName == "" {
			return fmt.Errorf("-serve/-connect require -strategy (one campaign per fabric)")
		}
		if *search > 0 {
			return fmt.Errorf("-search does not compose with -serve/-connect")
		}
	}
	if *connectAddr != "" && *ckpt != "" {
		return fmt.Errorf("-checkpoint is coordinator state; workers hold none")
	}
	model, err := faultsim.ModelByName(*modelName, *burst, *persist)
	if err != nil {
		return err
	}
	ctx, stop := cli.RunContext(*timeout)
	defer stop()
	observer, err := obsFlags.Observer()
	if err != nil {
		return err
	}
	obsFlags.WatchContext(ctx)
	// Flush telemetry at exit; a failed trace write must fail the run.
	defer func() {
		if ferr := obsFlags.Finish(); ferr != nil && err == nil {
			err = ferr
		}
	}()
	// One ledger spans all strategies: each strategy's integration and
	// campaign records ride along with its strategy name in Rule/Detail.
	led := ledFlag.Ledger()
	defer func() {
		if ferr := ledFlag.Finish(os.Stderr); ferr != nil && err == nil {
			err = ferr
		}
	}()

	sys := depint.PaperExample()
	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			return err
		}
		defer f.Close()
		sys, err = spec.Decode(f)
		if err != nil {
			return err
		}
	}

	// Worker mode: integrate the same system the coordinator did, so the
	// campaign fingerprint matches, then compute leased chunks until the
	// fabric completes or drains. No table: results live at the coordinator.
	if *connectAddr != "" {
		s := strategies[0]
		res, err := depint.IntegrateContext(ctx, sys, depint.WithStrategy(s),
			depint.WithWorkers(*workers), depint.WithObserver(observer),
			depint.WithLedger(led))
		if err != nil {
			return err
		}
		campaign := faultsim.Campaign{
			Graph:             res.Expanded,
			HWOf:              res.HWOf(),
			Trials:            *trials,
			Seed:              *seed,
			CriticalThreshold: 10,
			CommFaultFraction: *comm,
			Model:             model,
			Label:             s.String(),
			Ctx:               ctx,
		}
		fmt.Fprintf(stdout, "fabric worker: joining %s  strategy=%s trials=%d fingerprint=%s\n",
			*connectAddr, s, *trials, campaign.Fingerprint())
		if err := fabric.RunWorker(ctx, fabric.WorkerConfig{
			Campaign: campaign,
			Dial:     fabric.DialTCP(*connectAddr),
			Name:     *workerName,
			Bus:      obsFlags.Bus(),
		}); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "fabric worker: campaign complete")
		return nil
	}

	fmt.Fprintf(stdout, "fault injection: system=%s trials=%d seed=%d comm-fraction=%g model=%s\n\n",
		sys.Name, *trials, *seed, *comm, model.Name())
	fmt.Fprintln(stdout, "strategy      escape-rate  mean-affected  mean-crit-loss  cross-transmissions")
	for _, s := range strategies {
		res, err := depint.IntegrateContext(ctx, sys, depint.WithStrategy(s),
			depint.WithWorkers(*workers), depint.WithObserver(observer),
			depint.WithLedger(led))
		if err != nil {
			if ctx.Err() != nil {
				return err
			}
			fmt.Fprintf(stdout, "%-12s  FAILED: %v\n", s, err)
			continue
		}
		span := observer.StartSpan("campaign",
			obs.String("strategy", s.String()), obs.Int("trials", *trials))
		campaign := faultsim.Campaign{
			Graph:             res.Expanded,
			HWOf:              res.HWOf(),
			Trials:            *trials,
			Seed:              *seed,
			CriticalThreshold: 10,
			CommFaultFraction: *comm,
			Model:             model,
			Workers:           *workers,
			Span:              span,
			Metrics:           observer.Metrics(),
			Bus:               obsFlags.Bus(),
			Label:             s.String(),
			Ledger:            led,
			Ctx:               ctx,
		}
		if *ckpt != "" {
			campaign.CheckpointPath = fmt.Sprintf("%s.%s", *ckpt, s)
			campaign.CheckpointEvery = *ckptEvery
			campaign.Resume = *resume
			campaign.LaxResume = !*resumeStrict
		}
		var fi faultsim.Result
		var fstats fabric.Stats
		if *serveAddr != "" {
			ln, lerr := fabric.ListenTCP(*serveAddr)
			if lerr != nil {
				span.End()
				return lerr
			}
			fmt.Fprintf(stdout, "fabric coordinator: %s on %s  fingerprint=%s\n",
				s, ln.Addr(), campaign.Fingerprint())
			fi, fstats, err = fabric.Serve(ctx, fabric.Config{
				Campaign: campaign,
				Listener: ln,
				LeaseTTL: *leaseTTL,
				Bus:      obsFlags.Bus(),
				Label:    s.String(),
			})
		} else {
			fi, err = faultsim.Run(campaign)
		}
		span.End()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%-12s  %11.4f  %13.3f  %14.3f  %19d\n",
			s, fi.EscapeRate(), fi.MeanAffected(), fi.MeanCriticalityLoss(),
			fi.CrossNodeTransmissions)
		if *serveAddr != "" {
			fmt.Fprintf(stdout, "  fabric: workers=%d lost=%d  leases granted=%d expired=%d reassigned=%d duplicates=%d\n",
				fstats.WorkersSeen, fstats.WorkersLost, fstats.LeasesGranted,
				fstats.LeasesExpired, fstats.Reassigned, fstats.Duplicates)
		}
		if *search > 0 {
			span := observer.StartSpan("adversarial_search",
				obs.String("strategy", s.String()), obs.Int("max_evals", *search))
			sr, err := faultsim.Search(faultsim.SearchConfig{
				Graph:             res.Expanded,
				HWOf:              res.HWOf(),
				Trials:            *trials,
				Seed:              *seed,
				Workers:           *workers,
				MaxEvals:          *search,
				CriticalThreshold: 10,
				Span:              span,
				Metrics:           observer.Metrics(),
				Bus:               obsFlags.Bus(),
				Ledger:            led,
				Ctx:               ctx,
			})
			span.End()
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "  worst case: %s  weighted-escape=%.4f  (%d evaluations)\n",
				sr.Best.Scenario, sr.Best.Score, len(sr.Evaluations))
		}
	}
	return nil
}

// strategyByName resolves a -strategy flag value against every strategy's
// canonical String() name, case-insensitively.
func strategyByName(name string) (depint.Strategy, error) {
	all := []depint.Strategy{
		depint.H1, depint.H1PairAll, depint.H2, depint.H2SourceTarget,
		depint.H3, depint.Criticality, depint.TimingOrder,
		depint.SeparationGuided,
	}
	names := make([]string, 0, len(all))
	for _, s := range all {
		if strings.EqualFold(name, s.String()) {
			return s, nil
		}
		names = append(names, s.String())
	}
	return 0, fmt.Errorf("unknown -strategy %q (one of %s)", name, strings.Join(names, ", "))
}
