// Command faultsim runs seeded Monte-Carlo fault-injection campaigns over
// an integrated system, comparing the containment achieved by the
// condensation strategies.
//
// Usage:
//
//	faultsim [-spec system.json] [-trials N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/faultsim"
	"repro/internal/spec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "faultsim: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("faultsim", flag.ContinueOnError)
	fs.SetOutput(stdout)
	specPath := fs.String("spec", "", "path to a system specification JSON (default: paper example)")
	trials := fs.Int("trials", 50000, "injection trials per strategy")
	seed := fs.Uint64("seed", 7, "campaign seed")
	comm := fs.Float64("comm", 0, "fraction of trials injecting communication faults (0..1)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sys := depint.PaperExample()
	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			return err
		}
		defer f.Close()
		sys, err = spec.Decode(f)
		if err != nil {
			return err
		}
	}

	fmt.Fprintf(stdout, "fault injection: system=%s trials=%d seed=%d comm-fraction=%g\n\n",
		sys.Name, *trials, *seed, *comm)
	fmt.Fprintln(stdout, "strategy      escape-rate  mean-affected  mean-crit-loss  cross-transmissions")
	for _, s := range []depint.Strategy{
		depint.H1, depint.H1PairAll, depint.H2, depint.H3,
		depint.Criticality, depint.TimingOrder,
	} {
		res, err := depint.Integrate(sys, depint.WithStrategy(s))
		if err != nil {
			fmt.Fprintf(stdout, "%-12s  FAILED: %v\n", s, err)
			continue
		}
		fi, err := faultsim.Run(faultsim.Campaign{
			Graph:             res.Expanded,
			HWOf:              res.HWOf(),
			Trials:            *trials,
			Seed:              *seed,
			CriticalThreshold: 10,
			CommFaultFraction: *comm,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%-12s  %11.4f  %13.3f  %14.3f  %19d\n",
			s, fi.EscapeRate(), fi.MeanAffected(), fi.MeanCriticalityLoss(),
			fi.CrossNodeTransmissions)
	}
	return nil
}
