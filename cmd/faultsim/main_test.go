package main

import (
	"strings"
	"testing"
)

func TestRunComparesStrategies(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-trials", "2000"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"H1", "criticality", "escape-rate"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunCommFaultFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-trials", "1000", "-comm", "0.5"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "comm-fraction=0.5") {
		t.Errorf("output missing comm fraction:\n%s", out.String())
	}
}

func TestRunBadSpecPath(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-spec", "/nope.json"}, &out); err == nil {
		t.Error("missing spec accepted")
	}
}

func TestRunFaultModelFlag(t *testing.T) {
	for _, args := range [][]string{
		{"-trials", "500", "-fault-model", "correlated"},
		{"-trials", "500", "-fault-model", "burst", "-burst", "3"},
		{"-trials", "500", "-fault-model", "transient", "-persist", "0.25"},
	} {
		var out strings.Builder
		if err := run(args, &out); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		if !strings.Contains(out.String(), "model="+args[3]) {
			t.Errorf("%v: output missing model name:\n%s", args, out.String())
		}
	}
}

func TestRunBadFaultModel(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fault-model", "cosmic-ray"}, &out); err == nil {
		t.Error("unknown fault model accepted")
	}
	if err := run([]string{"-fault-model", "transient", "-persist", "1.5"}, &out); err == nil {
		t.Error("out-of-range persistence accepted")
	}
}

func TestRunAdversarialSearchFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-trials", "300", "-search", "8"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "worst case:") ||
		!strings.Contains(out.String(), "weighted-escape=") {
		t.Errorf("output missing adversarial search summary:\n%s", out.String())
	}
}
