package main

import (
	"strings"
	"testing"
)

func TestRunComparesStrategies(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-trials", "2000"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"H1", "criticality", "escape-rate"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunCommFaultFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-trials", "1000", "-comm", "0.5"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "comm-fraction=0.5") {
		t.Errorf("output missing comm fraction:\n%s", out.String())
	}
}

func TestRunBadSpecPath(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-spec", "/nope.json"}, &out); err == nil {
		t.Error("missing spec accepted")
	}
}
