// Command fcmtool runs the dependability-driven integration pipeline on a
// system specification and prints the resulting mapping and goodness
// report.
//
// Usage:
//
//	fcmtool [-spec system.json] [-strategy h1|h1pair|h2|h2st|h3|crit|timing|sep]
//	        [-approach importance|lex|fcr] [-refine N] [-compare]
//	        [-dot initial|expanded|condensed] [-emit-example] [-v]
//
// With -emit-example the tool writes the paper's worked example as JSON to
// stdout (a starting point for custom specifications) and exits.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/internal/graph"
	"repro/internal/spec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "fcmtool: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fcmtool", flag.ContinueOnError)
	fs.SetOutput(stdout)
	specPath := fs.String("spec", "", "path to a system specification JSON (default: built-in paper example)")
	strategy := fs.String("strategy", "h1", "condensation strategy: h1, h1pair, h2, h2st, h3, crit, timing, sep")
	approach := fs.String("approach", "importance", "assignment approach: importance, lex, fcr")
	emit := fs.Bool("emit-example", false, "write the built-in paper example as JSON and exit")
	verbose := fs.Bool("v", false, "print the reduction trace")
	refine := fs.Int("refine", 0, "dilation-refinement move budget (0 disables)")
	compare := fs.Bool("compare", false, "run every strategy and print the comparison table")
	dot := fs.String("dot", "", "write the influence graph in Graphviz DOT to stdout: initial, expanded, condensed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *emit {
		return depint.PaperExample().Encode(stdout)
	}

	sys := depint.PaperExample()
	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			return err
		}
		defer f.Close()
		sys, err = spec.Decode(f)
		if err != nil {
			return err
		}
	}

	strategies := map[string]depint.Strategy{
		"h1": depint.H1, "h1pair": depint.H1PairAll, "h2": depint.H2,
		"h3": depint.H3, "crit": depint.Criticality, "timing": depint.TimingOrder,
		"sep": depint.SeparationGuided, "h2st": depint.H2SourceTarget,
	}
	s, ok := strategies[strings.ToLower(*strategy)]
	if !ok {
		return fmt.Errorf("unknown strategy %q", *strategy)
	}
	approaches := map[string]depint.Approach{
		"importance": depint.ByImportance, "lex": depint.Lexicographic,
		"fcr": depint.FCRAware,
	}
	a, ok := approaches[strings.ToLower(*approach)]
	if !ok {
		return fmt.Errorf("unknown approach %q", *approach)
	}

	if *compare {
		cmp, err := depint.CompareStrategies(sys, depint.CompareConfig{
			InjectTrials: 20000, Seed: 7,
			Options: []depint.Option{depint.WithApproach(a)},
		})
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, cmp.Table())
		if best := cmp.Best(); best != nil {
			fmt.Fprintf(stdout, "\nbest containment: %s (%.3f)\n",
				best.Strategy, best.Result.Report.Containment)
		}
		return nil
	}

	opts := []depint.Option{depint.WithStrategy(s), depint.WithApproach(a)}
	if *refine != 0 {
		opts = append(opts, depint.WithRefinement(*refine))
	}
	res, err := depint.Integrate(sys, opts...)
	if err != nil {
		return err
	}
	if *dot != "" {
		var target *graph.Graph
		switch strings.ToLower(*dot) {
		case "initial":
			target = res.Initial
		case "expanded":
			target = res.Expanded
		case "condensed":
			target = res.Condensed
		default:
			return fmt.Errorf("unknown -dot target %q", *dot)
		}
		return target.WriteDOT(stdout, sys.Name)
	}
	if !*verbose {
		// Trim the trace from the dossier for the terse view.
		res.Trace = nil
	}
	fmt.Fprint(stdout, res.Summary())
	return nil
}
