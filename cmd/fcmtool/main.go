// Command fcmtool runs the dependability-driven integration pipeline on a
// system specification and prints the resulting mapping and goodness
// report.
//
// Usage:
//
//	fcmtool [-spec system.json] [-gen family:size:seed]
//	        [-strategy h1|h1pair|h2|h2st|h3|crit|timing|sep]
//	        [-fallback h2,h3] [-race-strategies] [-workers N]
//	        [-approach importance|lex|fcr] [-refine N] [-compare] [-json]
//	        [-perturb 0.01,0.05,0.1] [-perturb-samples N] [-perturb-trials N]
//	        [-dot initial|expanded|condensed] [-emit-example] [-v]
//	        [-trace out.json] [-log-level debug] [-metrics-addr :9090]
//	        [-watch] [-ledger run.jsonl] [-explain p1,p8]
//	        [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-profile-dir prof/]
//
// -ledger appends every pipeline decision — partition criticalities,
// Eq. (4) merges with their mutual-influence scores, replica-separation
// edges, fallback degradations, placements with the alternatives they
// beat, and the final metrics — to a JSON Lines ledger for later
// explanation (-explain, ledgerdiff -report) and run-to-run regression
// diffing (ledgerdiff). -explain A,B answers "why did/didn't A and B end
// up on the same HW node?" from that ledger without needing -ledger.
//
// -perturb certifies the robustness of the integration: the listed ±ε
// relative bands are applied to every criticality and influence weight,
// the pipeline is re-run over the perturbation ensemble, and the tool
// prints the placement-stability fraction per ε, the worst-case drift of
// the containment metrics, and the most sensitive spec parameters.
//
// -fallback names strategies tried in order when -strategy fails;
// -race-strategies runs the whole chain concurrently instead, first
// acceptable result winning. -workers sizes the worker pools of the
// parallel stages (0 = GOMAXPROCS) without changing a single output bit.
//
// -gen generates a scenario from the seeded corpus generator instead of
// reading one: "family" is ladder, mesh, layered or sensor-voter, "size"
// is small, medium, large or a process count, and the same seed always
// reproduces the same system byte-for-byte (see internal/scengen). It
// conflicts with -spec.
//
// With -emit-example the tool writes the paper's worked example — or,
// combined with -gen, the generated scenario — as JSON to
// stdout (a starting point for custom specifications) and exits. The
// telemetry flags record one span per pipeline stage plus every merge
// decision of the condenser; -watch streams that activity live as NDJSON
// on stderr (or at /events plus the /dashboard when -metrics-addr is
// set); see the README's Observability section.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/cli"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/scengen"
	"repro/internal/spec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "fcmtool: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("fcmtool", flag.ContinueOnError)
	fs.SetOutput(stdout)
	specPath := fs.String("spec", "", "path to a system specification JSON (default: built-in paper example)")
	gen := fs.String("gen", "", "generate the scenario family:size:seed (e.g. ladder:small:7) instead of reading a spec")
	strategy := fs.String("strategy", "h1", "condensation strategy: h1, h1pair, h2, h2st, h3, crit, timing, sep")
	fallback := fs.String("fallback", "", "comma-separated fallback strategies tried (or raced) after -strategy")
	approach := fs.String("approach", "importance", "assignment approach: importance, lex, fcr")
	emit := fs.Bool("emit-example", false, "write the built-in paper example as JSON and exit")
	verbose := fs.Bool("v", false, "print the reduction trace")
	refine := fs.Int("refine", 0, "dilation-refinement move budget (0 disables)")
	compare := fs.Bool("compare", false, "run every strategy and print the comparison table")
	dot := fs.String("dot", "", "write the influence graph in Graphviz DOT to stdout: initial, expanded, condensed")
	jsonOut := fs.Bool("json", false, "emit the integration result as JSON (includes telemetry when enabled)")
	race := fs.Bool("race-strategies", false, "race the -strategy/fallback heuristics concurrently; first acceptable result wins")
	explain := fs.String("explain", "", "explain why two processes were (not) colocated, e.g. -explain p1,p8")
	ledFlag := cli.RegisterLedger(fs, "fcmtool")
	perturb := fs.String("perturb", "", "comma-separated relative perturbation half-widths; certify placement stability and print the certificate")
	perturbSamples := fs.Int("perturb-samples", 20, "perturbation-ensemble size per epsilon for -perturb")
	perturbTrials := fs.Int("perturb-trials", 2000, "fault-injection trials per -perturb evaluation")
	workers := cli.RegisterWorkers(fs)
	timeout := cli.RegisterTimeout(fs)
	obsFlags := cli.RegisterObsFlags(fs, os.Stderr)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := cli.RunContext(*timeout)
	defer stop()

	sys := depint.PaperExample()
	if *gen != "" {
		if *specPath != "" {
			return fmt.Errorf("-gen and -spec are mutually exclusive")
		}
		cfg, err := scengen.Parse(*gen)
		if err != nil {
			return err
		}
		cfg.Workers = *workers
		sc, err := scengen.Generate(cfg)
		if err != nil {
			return err
		}
		sys = sc.System
	}
	if *emit {
		return sys.Encode(stdout)
	}

	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			return err
		}
		defer f.Close()
		sys, err = spec.Decode(f)
		if err != nil {
			return err
		}
	}

	strategies := map[string]depint.Strategy{
		"h1": depint.H1, "h1pair": depint.H1PairAll, "h2": depint.H2,
		"h3": depint.H3, "crit": depint.Criticality, "timing": depint.TimingOrder,
		"sep": depint.SeparationGuided, "h2st": depint.H2SourceTarget,
	}
	s, ok := strategies[strings.ToLower(*strategy)]
	if !ok {
		return fmt.Errorf("unknown strategy %q", *strategy)
	}
	var fallbacks []depint.Strategy
	if *fallback != "" {
		for _, name := range strings.Split(*fallback, ",") {
			fb, ok := strategies[strings.ToLower(strings.TrimSpace(name))]
			if !ok {
				return fmt.Errorf("unknown -fallback strategy %q", name)
			}
			fallbacks = append(fallbacks, fb)
		}
	}
	if *race && len(fallbacks) == 0 {
		return fmt.Errorf("-race-strategies needs a -fallback chain to race against")
	}
	approaches := map[string]depint.Approach{
		"importance": depint.ByImportance, "lex": depint.Lexicographic,
		"fcr": depint.FCRAware,
	}
	a, ok := approaches[strings.ToLower(*approach)]
	if !ok {
		return fmt.Errorf("unknown approach %q", *approach)
	}

	observer, err := obsFlags.Observer()
	if err != nil {
		return err
	}
	obsFlags.WatchContext(ctx)
	// Flush telemetry at exit; a failed trace write must fail the run.
	defer func() {
		if ferr := obsFlags.Finish(); ferr != nil && err == nil {
			err = ferr
		}
	}()
	// The decision ledger: -ledger persists it, -explain only needs it in
	// memory for the duration of the run.
	led := ledFlag.Ledger()
	if *explain != "" && led == nil {
		led = depint.NewLedger("fcmtool")
	}
	defer func() {
		if ferr := ledFlag.Finish(os.Stderr); ferr != nil && err == nil {
			err = ferr
		}
	}()
	// The ledger lands in the flight bundle too: its Finish (deferred
	// later, so run first) writes the file before the bundle copies it.
	obsFlags.FlightFile("ledger.jsonl", ledFlag.Path())

	if *compare {
		compareOpts := []depint.Option{depint.WithApproach(a),
			depint.WithWorkers(*workers), depint.WithObserver(observer)}
		if *timeout > 0 {
			compareOpts = append(compareOpts, depint.WithTimeout(*timeout))
		}
		cmp, err := depint.CompareStrategies(sys, depint.CompareConfig{
			InjectTrials: 20000, Seed: 7,
			Options: compareOpts,
		})
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, cmp.Table())
		if best := cmp.Best(); best != nil {
			fmt.Fprintf(stdout, "\nbest containment: %s (%.3f)\n",
				best.Strategy, best.Result.Report.Containment)
		}
		return nil
	}

	opts := []depint.Option{depint.WithStrategy(s), depint.WithApproach(a),
		depint.WithWorkers(*workers)}
	if len(fallbacks) > 0 {
		opts = append(opts, depint.WithFallback(fallbacks...))
	}
	if *race {
		opts = append(opts, depint.WithRaceStrategies())
	}
	if *refine != 0 {
		opts = append(opts, depint.WithRefinement(*refine))
	}
	if observer != nil {
		opts = append(opts, depint.WithObserver(observer))
	}
	if led != nil {
		opts = append(opts, depint.WithLedger(led))
	}
	res, err := depint.IntegrateContext(ctx, sys, opts...)
	if err != nil {
		return err
	}
	if *explain != "" {
		pair := strings.Split(*explain, ",")
		if len(pair) != 2 {
			return fmt.Errorf("-explain wants two comma-separated names, got %q", *explain)
		}
		exp, err := depint.ExplainPair(led, strings.TrimSpace(pair[0]), strings.TrimSpace(pair[1]))
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, exp.String())
		return nil
	}
	if *perturb != "" && (*dot != "" || *jsonOut) {
		return fmt.Errorf("-perturb prints a text certificate; it cannot combine with -dot or -json")
	}
	if *dot != "" {
		var target *graph.Graph
		switch strings.ToLower(*dot) {
		case "initial":
			target = res.Initial
		case "expanded":
			target = res.Expanded
		case "condensed":
			target = res.Condensed
		default:
			return fmt.Errorf("unknown -dot target %q", *dot)
		}
		return target.WriteDOT(stdout, sys.Name)
	}
	if *jsonOut {
		return writeResultJSON(stdout, res, observer)
	}
	if !*verbose {
		// Trim the trace from the dossier for the terse view.
		res.Trace = nil
	}
	fmt.Fprint(stdout, res.Summary())
	if *perturb != "" {
		eps := []float64{0}
		for _, tok := range strings.Split(*perturb, ",") {
			e, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				return fmt.Errorf("bad -perturb value %q: %w", tok, err)
			}
			eps = append(eps, e)
		}
		cert, err := depint.CertifyRobustness(sys, depint.RobustnessConfig{
			Epsilons: eps,
			Samples:  *perturbSamples,
			Trials:   *perturbTrials,
			Seed:     7,
			Options:  opts,
			Ctx:      ctx,
		})
		if err != nil {
			return err
		}
		writeCertificate(stdout, cert)
	}
	return nil
}

// writeCertificate renders the robustness certificate as a terminal table.
func writeCertificate(w io.Writer, cert *depint.Certificate) {
	fmt.Fprintf(w, "\nRobustness certificate (samples=%d, seed=%d, %d evaluations)\n",
		cert.Samples, cert.Seed, cert.Evaluations)
	fmt.Fprintf(w, "baseline: escape-rate=%.4f cross-influence=%.3f\n",
		cert.Baseline.EscapeRate, cert.Baseline.CrossInfluence)
	fmt.Fprintln(w, "epsilon  stable-fraction  worst-escape-delta  worst-influence-delta  errors")
	for _, l := range cert.Levels {
		fmt.Fprintf(w, "%7.3f  %15.3f  %18.4f  %21.4f  %6d\n",
			l.Epsilon, l.StableFraction, l.WorstEscapeDelta, l.WorstInfluenceDelta, l.Errors)
	}
	if len(cert.Sensitivities) > 0 {
		fmt.Fprintln(w, "most sensitive parameters:")
		for i, s := range cert.Sensitivities {
			if i >= 5 {
				break
			}
			flag := ""
			if s.Flipped {
				flag = "  [placement flips]"
			}
			fmt.Fprintf(w, "  %-24s escape-delta=%.4f%s\n", s.Parameter, s.EscapeDelta, flag)
		}
	}
}

// resultSchemaVersion identifies the -json output shape; bumped whenever a
// field changes meaning so downstream CI can reject surprises.
const resultSchemaVersion = 1

// resultJSON is the -json output shape: the machine-readable core of the
// Result plus, when telemetry is on, the same Trace export -trace writes.
type resultJSON struct {
	SchemaVersion int                  `json:"schema_version"`
	System        string               `json:"system"`
	Strategy      string               `json:"strategy"`
	Approach      string               `json:"approach"`
	Assignment    depint.Assignment    `json:"assignment"`
	Report        depint.Report        `json:"report"`
	Trace         []depint.Step        `json:"reduction_trace,omitempty"`
	Reliability   metrics.SystemReport `json:"reliability"`
	Telemetry     *obs.Trace           `json:"telemetry,omitempty"`
}

func writeResultJSON(w io.Writer, res *depint.Result, observer *obs.Observer) error {
	out := resultJSON{
		SchemaVersion: resultSchemaVersion,
		System:        res.System.Name,
		Strategy:      res.Strategy.String(),
		Approach:      res.ApproachUsed.String(),
		Assignment:    res.Assignment,
		Report:        res.Report,
		Trace:         res.Trace,
		Reliability:   res.Reliability,
	}
	if observer != nil {
		t := observer.Export()
		out.Telemetry = &t
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
