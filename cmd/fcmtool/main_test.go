package main

import (
	"strings"
	"testing"
)

func TestRunDefaultDossier(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"icdcs98-worked-example", "mapping (HW node <- members):",
		"constraints satisfied:    true",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunVerboseIncludesTrace(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-v"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "p1a + p2a (mutual 1.2)") {
		t.Errorf("verbose output missing trace:\n%s", out.String())
	}
}

func TestRunEmitExampleRoundTrips(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-emit-example"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"hw_nodes": 6`) {
		t.Errorf("emitted spec missing hw_nodes:\n%s", out.String())
	}
}

func TestRunStrategyAndApproachSelection(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-strategy", "crit", "-approach", "lex"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "p1a, p8") {
		t.Errorf("criticality clusters missing:\n%s", out.String())
	}
}

func TestRunDOTOutput(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-dot", "condensed"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "digraph") {
		t.Errorf("missing DOT output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-strategy", "bogus"}, &out); err == nil {
		t.Error("unknown strategy accepted")
	}
	if err := run([]string{"-approach", "bogus"}, &out); err == nil {
		t.Error("unknown approach accepted")
	}
	if err := run([]string{"-dot", "bogus"}, &out); err == nil {
		t.Error("unknown dot target accepted")
	}
	if err := run([]string{"-spec", "/nonexistent.json"}, &out); err == nil {
		t.Error("missing spec file accepted")
	}
	if err := run([]string{"-gen", "bogus:small:1"}, &out); err == nil {
		t.Error("unknown -gen family accepted")
	}
	if err := run([]string{"-gen", "mesh:small:1", "-spec", "x.json"}, &out); err == nil {
		t.Error("-gen with -spec accepted")
	}
}

func TestRunGeneratedScenario(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-gen", "ladder:small:7"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `system "ladder-n12-s7"`) {
		t.Errorf("dossier missing generated system name:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "constraints satisfied:    true") {
		t.Errorf("generated scenario violated constraints:\n%s", out.String())
	}

	// -emit-example with -gen emits the generated spec; the emitted JSON
	// must be byte-stable across invocations and worker counts.
	var emit1, emit4 strings.Builder
	if err := run([]string{"-gen", "sensor-voter:16:3", "-emit-example", "-workers", "1"}, &emit1); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-gen", "sensor-voter:16:3", "-emit-example", "-workers", "4"}, &emit4); err != nil {
		t.Fatal(err)
	}
	if emit1.String() != emit4.String() {
		t.Error("-gen emission differs between -workers 1 and 4")
	}
	if !strings.Contains(emit1.String(), `"g00-vote"`) {
		t.Errorf("emitted scenario missing voter process:\n%.200s", emit1.String())
	}
}

func TestRunPerturbCertificate(t *testing.T) {
	var out strings.Builder
	args := []string{"-perturb", "0.05", "-perturb-samples", "3", "-perturb-trials", "100"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Robustness certificate", "stable-fraction", "0.000", "0.050",
		"most sensitive parameters:",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("certificate output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunPerturbErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-perturb", "nope"}, &out); err == nil {
		t.Error("unparseable -perturb accepted")
	}
	if err := run([]string{"-perturb", "0.05", "-json"}, &out); err == nil {
		t.Error("-perturb with -json accepted")
	}
	if err := run([]string{"-perturb", "0.05", "-dot", "initial"}, &out); err == nil {
		t.Error("-perturb with -dot accepted")
	}
}
