// Command ledgerdiff compares two decision-provenance ledgers (written by
// fcmtool -ledger, faultsim -ledger or paperrepro -ledger) and reports how
// the runs diverged: the first decision where they disagree, every cluster
// whose placement moved, and every final metric that regressed beyond the
// threshold. It exits 1 when the runs diverged, so a CI job can gate on
//
//	paperrepro -ledger old.jsonl
//	...change something...
//	paperrepro -ledger new.jsonl
//	ledgerdiff old.jsonl new.jsonl
//
// With -report it instead renders a single ledger as a human-readable
// report (Markdown, or self-contained HTML with -html).
//
// Usage:
//
//	ledgerdiff [-threshold 0.01] old.jsonl new.jsonl
//	ledgerdiff -report run.jsonl [-html]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/ledger"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ledgerdiff: %v\n", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run returns the process exit code: 0 for no divergence (or a rendered
// report), 1 for a divergent diff. Usage and I/O failures return an error
// (exit code 2).
func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("ledgerdiff", flag.ContinueOnError)
	fs.SetOutput(stdout)
	threshold := fs.Float64("threshold", 0, "relative metric-regression threshold (default 0.01)")
	report := fs.String("report", "", "render this ledger as a report instead of diffing")
	html := fs.Bool("html", false, "with -report: emit self-contained HTML instead of Markdown")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	if *report != "" {
		if fs.NArg() != 0 {
			return 2, fmt.Errorf("-report takes no positional arguments")
		}
		l, err := ledger.ReadFile(*report)
		if err != nil {
			return 2, err
		}
		if *html {
			return 0, ledger.WriteHTML(stdout, l)
		}
		return 0, ledger.WriteMarkdown(stdout, l)
	}

	if fs.NArg() != 2 {
		return 2, fmt.Errorf("want two ledger files (old new), got %d arguments", fs.NArg())
	}
	oldL, err := ledger.ReadFile(fs.Arg(0))
	if err != nil {
		return 2, err
	}
	newL, err := ledger.ReadFile(fs.Arg(1))
	if err != nil {
		return 2, err
	}
	d, err := ledger.Diff(oldL, newL, ledger.DiffConfig{MetricThreshold: *threshold})
	if err != nil {
		return 2, err
	}
	fmt.Fprint(stdout, d.String())
	if d.Divergent() {
		return 1, nil
	}
	return 0, nil
}
