// Command paperrepro regenerates every table and figure of the worked
// example of "A Framework for Dependability Driven Software Integration"
// (ICDCS 1998) and runs the quantitative extension experiments E1–E15
// indexed in DESIGN.md.
//
// Usage:
//
//	paperrepro            # everything
//	paperrepro -only fig6 # one artifact: table1, fig1..fig8, e1..e15
//	paperrepro -trials N  # Monte-Carlo trial count (default 20000)
//	paperrepro -seed S    # campaign seed (default 1998)
//
// The telemetry flags (-trace, -log-level, -metrics-addr) record one span
// per regenerated artifact, so -trace exposes where reproduction time goes;
// -watch streams live NDJSON progress to stderr (or, with -metrics-addr,
// serves it at /events next to the live /dashboard).
// -ledger <file> additionally writes a decision-provenance ledger: the
// worked example's integration decisions, a small injection campaign, and
// one content-hash record per regenerated artifact. Two runs with the same
// flags produce byte-identical ledgers (asserted by `make ledger-diff`).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/faultsim"
	"repro/internal/ledger"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "paperrepro: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("paperrepro", flag.ContinueOnError)
	fs.SetOutput(stdout)
	only := fs.String("only", "", "regenerate a single artifact (table1, fig1..fig8, e1..e15)")
	trials := fs.Int("trials", 20000, "Monte-Carlo trials for injection experiments")
	seed := fs.Uint64("seed", 1998, "seed for randomized experiments")
	workers := cli.RegisterWorkers(fs)
	timeout := cli.RegisterTimeout(fs)
	obsFlags := cli.RegisterObsFlags(fs, os.Stderr)
	ledFlag := cli.RegisterLedger(fs, "paperrepro")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cli.ApplyWorkers(*workers)
	ctx, stop := cli.RunContext(*timeout)
	defer stop()
	observer, err := obsFlags.Observer()
	if err != nil {
		return err
	}
	obsFlags.WatchContext(ctx)
	// Flush telemetry at exit; a failed trace write must fail the run.
	defer func() {
		if ferr := obsFlags.Finish(); ferr != nil && err == nil {
			err = ferr
		}
	}()
	// -ledger records the worked example's full decision trail (one
	// Integrate run plus a small injection campaign) and then one artifact
	// record per regenerated table/figure, carrying the content hash: two
	// runs of paperrepro -ledger must produce byte-identical ledgers, which
	// is exactly what `make ledger-diff` asserts.
	led := ledFlag.Ledger()
	defer func() {
		if ferr := ledFlag.Finish(os.Stderr); ferr != nil && err == nil {
			err = ferr
		}
	}()
	if led != nil {
		sys := depint.PaperExample()
		res, err := depint.IntegrateContext(ctx, sys,
			depint.WithWorkers(*workers), depint.WithLedger(led))
		if err != nil {
			return err
		}
		if _, err := faultsim.Run(faultsim.Campaign{
			Graph:             res.Expanded,
			HWOf:              res.HWOf(),
			Trials:            2000,
			Seed:              *seed,
			CriticalThreshold: 10,
			Workers:           *workers,
			Bus:               obsFlags.Bus(),
			Label:             "ledger-campaign",
			Ledger:            led,
			Ctx:               ctx,
		}); err != nil {
			return err
		}
	}

	type artifact struct {
		name string
		run  func() (string, error)
	}
	artifacts := []artifact{
		{"table1", experiments.Table1},
		{"fig1", func() (string, error) { r, err := experiments.Fig1(); return r.Text, err }},
		{"fig2", func() (string, error) { r, err := experiments.Fig2(); return r.Text, err }},
		{"fig3", experiments.Fig3},
		{"fig4", func() (string, error) { r, err := experiments.Fig4(); return r.Text, err }},
		{"fig5", func() (string, error) {
			r, err := experiments.Fig5()
			if err != nil {
				return "", err
			}
			if err := experiments.CheckFig5(r); err != nil {
				return "", err
			}
			return r.Text, nil
		}},
		{"fig6", func() (string, error) { r, err := experiments.Fig6(); return r.Text, err }},
		{"fig7", func() (string, error) { r, err := experiments.Fig7(); return r.Text, err }},
		{"fig8", func() (string, error) { r, err := experiments.Fig8(); return r.Text, err }},
		{"e1", func() (string, error) { r, err := experiments.E1(); return r.Text, err }},
		{"e2", func() (string, error) {
			r, err := experiments.E2([]int{12, 24, 48}, *seed)
			return r.Text, err
		}},
		{"e3", func() (string, error) {
			r, err := experiments.E3(*trials, *seed)
			return r.Text, err
		}},
		{"e4", func() (string, error) { r, err := experiments.E4(8); return r.Text, err }},
		{"e5", func() (string, error) {
			r, err := experiments.E5(*trials/2, *seed)
			return r.Text, err
		}},
		{"e6", func() (string, error) { r, err := experiments.E6(4, 3, 4, 25, *seed); return r.Text, err }},
		{"e7", func() (string, error) { r, err := experiments.E7(*trials, *seed); return r.Text, err }},
		{"e8", func() (string, error) { r, err := experiments.E8(); return r.Text, err }},
		{"e9", func() (string, error) { r, err := experiments.E9(); return r.Text, err }},
		{"e10", func() (string, error) {
			r, err := experiments.E10([]int{500, 2000, 10000, 50000}, *seed)
			return r.Text, err
		}},
		{"e11", func() (string, error) { r, err := experiments.E11(); return r.Text, err }},
		{"e12", func() (string, error) { r, err := experiments.E12(200, *seed); return r.Text, err }},
		{"e13", func() (string, error) { r, err := experiments.E13(*trials, *seed); return r.Text, err }},
		{"e14", func() (string, error) { r, err := experiments.E14(24, *seed); return r.Text, err }},
		{"e15", func() (string, error) { r, err := experiments.E15(5e5, *seed); return r.Text, err }},
	}

	root := observer.StartSpan("paperrepro", obs.Int("trials", *trials))
	defer root.End()
	ran := 0
	for _, a := range artifacts {
		if *only != "" && !strings.EqualFold(*only, a.name) {
			continue
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("cancelled before %s: %w", a.name, err)
		}
		span := root.StartChild(a.name)
		text, err := a.run()
		span.End()
		if err != nil {
			return fmt.Errorf("%s: %w", a.name, err)
		}
		fmt.Fprintf(stdout, "==== %s %s\n%s\n", strings.ToUpper(a.name),
			strings.Repeat("=", 66-len(a.name)), text)
		led.Append(ledger.Record{
			Kind: ledger.KindArtifact, Stage: "paperrepro", A: a.name,
			Detail: "content " + ledger.Fingerprint(text),
		})
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("unknown artifact %q", *only)
	}
	return nil
}
