package main

import (
	"strings"
	"testing"
)

func TestRunSingleArtifact(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-only", "fig7"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "{p1a,p8}") {
		t.Errorf("fig7 output wrong:\n%s", out.String())
	}
}

func TestRunTable1(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-only", "table1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "p1        15   3    0   20   5") {
		t.Errorf("table1 output wrong:\n%s", out.String())
	}
}

func TestRunUnknownArtifact(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-only", "fig99"}, &out); err == nil {
		t.Error("unknown artifact accepted")
	}
}

func TestRunAllArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("full artifact regeneration is slow")
	}
	var out strings.Builder
	if err := run([]string{"-trials", "4000"}, &out); err != nil {
		t.Fatal(err)
	}
	// Every section header present.
	for _, want := range []string{
		"==== TABLE1", "==== FIG1", "==== FIG5", "==== FIG8",
		"==== E1 ", "==== E5 ", "==== E10", "==== E15",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing section %q", want)
		}
	}
	// The two exact values appear somewhere in the full dump.
	for _, want := range []string{"0.76", "0.37"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing golden value %q", want)
		}
	}
}
