package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scengen"
)

// TestScenarioCheck drives the gate end to end in a temp corpus: -update
// builds it, a clean check passes, a tampered golden fails, and the
// ledger of every corpus family is byte-identical at Workers 1 and 4
// (the determinism satellite, exercised under -race by `make race`).
func TestScenarioCheck(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	args := []string{"-corpus", dir, "-trials", "64", "-fuzz-decode-dir", "", "-fuzz-integrate-dir", ""}

	if code := run(append([]string{"-update"}, args...), &out, &errOut); code != 0 {
		t.Fatalf("update exited %d: %s", code, errOut.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatal(err)
	}
	specs, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	goldens, _ := filepath.Glob(filepath.Join(dir, "*.golden.jsonl"))
	if len(specs) != 13 || len(goldens) != 12 { // 12 specs + manifest
		t.Fatalf("corpus has %d json, %d goldens; want 13, 12", len(specs), len(goldens))
	}

	t.Run("clean check passes", func(t *testing.T) {
		out.Reset()
		errOut.Reset()
		if code := run(args, &out, &errOut); code != 0 {
			t.Fatalf("check exited %d: %s", code, errOut.String())
		}
		if !strings.Contains(out.String(), "scenario-check: OK (12 scenarios + perturbation control)") {
			t.Fatalf("missing OK line in:\n%s", out.String())
		}
		if !strings.Contains(out.String(), "perturbation caught") {
			t.Fatalf("negative control did not report in:\n%s", out.String())
		}
	})

	t.Run("tampered golden fails", func(t *testing.T) {
		target := goldens[0]
		orig, err := os.ReadFile(target)
		if err != nil {
			t.Fatal(err)
		}
		// Flip one merge score digit: a decision change, not just noise.
		tampered := bytes.Replace(orig, []byte(`"score":`), []byte(`"score":9`), 1)
		if bytes.Equal(tampered, orig) {
			t.Fatal("golden has no score field to tamper with")
		}
		if err := os.WriteFile(target, tampered, 0o644); err != nil {
			t.Fatal(err)
		}
		defer os.WriteFile(target, orig, 0o644)
		out.Reset()
		errOut.Reset()
		if code := run(args, &out, &errOut); code != 1 {
			t.Fatalf("check with tampered golden exited %d, want 1\n%s", code, errOut.String())
		}
		if !strings.Contains(errOut.String(), "ledger differs from golden") {
			t.Fatalf("missing mismatch diagnosis in:\n%s", errOut.String())
		}
	})

	t.Run("missing corpus explains itself", func(t *testing.T) {
		out.Reset()
		errOut.Reset()
		if code := run([]string{"-corpus", filepath.Join(dir, "nope")}, &out, &errOut); code != 1 {
			t.Fatalf("exit %d, want 1", code)
		}
		if !strings.Contains(errOut.String(), "-update") {
			t.Fatalf("error does not point at -update:\n%s", errOut.String())
		}
	})

	t.Run("ledger worker invariance", func(t *testing.T) {
		m := &manifest{Trials: 64, CampaignSeed: 1998, CriticalThreshold: 10}
		for _, fam := range scengen.Families() {
			cfg := scengen.Config{Family: fam, Processes: 12, Seed: 5}
			sc, err := scengen.Generate(cfg)
			if err != nil {
				t.Fatalf("%s: %v", fam, err)
			}
			one, _, err := runScenario(cfg, sc.System.Clone(), m, 1)
			if err != nil {
				t.Fatalf("%s workers=1: %v", fam, err)
			}
			four, _, err := runScenario(cfg, sc.System.Clone(), m, 4)
			if err != nil {
				t.Fatalf("%s workers=4: %v", fam, err)
			}
			if !bytes.Equal(one, four) {
				t.Fatalf("%s: ledger differs between Workers=1 and Workers=4", fam)
			}
		}
	})
}

func TestWriteFuzzSeeds(t *testing.T) {
	decode := filepath.Join(t.TempDir(), "decode")
	integrate := filepath.Join(t.TempDir(), "integrate")
	var out bytes.Buffer
	if err := writeFuzzSeeds(decode, integrate, &out); err != nil {
		t.Fatal(err)
	}
	for _, dir := range []string{decode, integrate} {
		files, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(files) != len(scengen.Families()) {
			t.Fatalf("%s: %d seeds, want %d", dir, len(files), len(scengen.Families()))
		}
		for _, f := range files {
			raw, err := os.ReadFile(filepath.Join(dir, f.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if !strings.HasPrefix(string(raw), "go test fuzz v1\nstring(\"") {
				t.Fatalf("%s/%s: not a fuzz corpus file:\n%.80s", dir, f.Name(), raw)
			}
		}
	}
}
