// Streamcheck is the `make stream-check` gate: it runs the full
// observability fabric in-process — an Integrate of the paper's worked
// example, a fault-injection campaign, a distributed fabric campaign (plus
// a second one whose lone worker lies, to exercise quarantine and local
// fallback, and a third with an artificially slow worker, to exercise the
// federated-telemetry kinds: relayed remote spans, clock estimates and
// straggler detection), an adversarial search and a small robustness
// certification, all publishing onto one obs.Bus — and then verifies the
// streaming contract end to end:
//
//   - every event, JSON-encoded exactly as /events and -watch emit it,
//     validates against the committed schema
//     (docs/streaming/events.schema.json);
//   - every kind in the schema's enum was actually observed, so the
//     schema cannot silently drift ahead of (or behind) the code;
//   - sequence numbers are strictly increasing and replay from a
//     mid-stream sequence number returns exactly the suffix;
//   - the /dashboard document is self-contained: no external URLs,
//     imports or script sources.
//
// Exits non-zero with a per-check report on any violation.
//
// Usage: go run ./cmd/streamcheck [-schema docs/streaming/events.schema.json] [-trials 2000]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/fabric"
	"repro/internal/faultsim"
	"repro/internal/obs"
)

func main() {
	schemaPath := flag.String("schema", "docs/streaming/events.schema.json",
		"JSON Schema the event stream must validate against")
	trials := flag.Int("trials", 2000, "fault-injection trials for the probe campaign")
	flag.Parse()

	schema, err := loadSchema(*schemaPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stream-check: %v\n", err)
		os.Exit(1)
	}

	events, bus, err := produce(*trials)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stream-check: producing events: %v\n", err)
		os.Exit(1)
	}

	failures := 0
	fail := func(format string, args ...any) {
		failures++
		fmt.Fprintf(os.Stderr, "stream-check: FAIL: "+format+"\n", args...)
	}

	// 1. Schema validation of the wire encoding of every event.
	for _, ev := range events {
		line, err := json.Marshal(ev)
		if err != nil {
			fail("event seq=%d does not JSON-encode: %v", ev.Seq, err)
			continue
		}
		var doc any
		if err := json.Unmarshal(line, &doc); err != nil {
			fail("event seq=%d round-trip: %v", ev.Seq, err)
			continue
		}
		if err := validate(schema, doc, "$"); err != nil {
			fail("event seq=%d violates schema: %v\n  %s", ev.Seq, err, line)
		}
	}
	fmt.Printf("stream-check: %d events validated against %s\n", len(events), *schemaPath)

	// 2. Enum coverage: every kind the schema admits must have occurred.
	seen := map[string]bool{}
	for _, ev := range events {
		seen[ev.Kind] = true
	}
	for _, kind := range schemaKinds(schema) {
		if !seen[kind] {
			fail("schema kind %q never observed — enum drifted ahead of the code", kind)
		}
	}

	// 3. Monotone sequence numbers.
	var last uint64
	for _, ev := range events {
		if ev.Seq <= last {
			fail("sequence not strictly increasing: %d after %d", ev.Seq, last)
			break
		}
		last = ev.Seq
	}

	// 4. Replay from mid-stream returns exactly the retained suffix.
	mid := events[len(events)/2].Seq
	sub := bus.Subscribe(mid, len(events)+1)
	want := last - mid + 1
	var got uint64
	next := mid
	for {
		ev, ok := sub.TryNext()
		if !ok {
			break
		}
		if ev.Seq != next {
			fail("replay from %d: got seq %d, want %d", mid, ev.Seq, next)
			break
		}
		next++
		got++
	}
	sub.Close()
	if got != want {
		fail("replay from %d returned %d events, want %d", mid, got, want)
	} else {
		fmt.Printf("stream-check: replay from seq %d returned the exact %d-event suffix\n", mid, want)
	}

	// 5. Dashboard self-containment.
	for _, marker := range []string{"http://", "https://", "//cdn", "@import", "src=\"/", "integrity="} {
		if strings.Contains(obs.DashboardHTML, marker) {
			fail("dashboard contains external reference %q", marker)
		}
	}
	if !strings.Contains(obs.DashboardHTML, "EventSource") {
		fail("dashboard lost its /events wiring")
	}
	for _, marker := range []string{"straggler", "clock_offset_us", "latency_p50_ms", "latency_p95_ms"} {
		if !strings.Contains(obs.DashboardHTML, marker) {
			fail("dashboard lost its fabric telemetry column %q", marker)
		}
	}
	fmt.Println("stream-check: dashboard is self-contained")

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "stream-check: %d failure(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("stream-check: OK")
}

// produce runs every event source against one bus and returns the full
// ordered stream (the subscriber's buffer is sized to lose nothing) plus
// the bus, whose replay ring also retains everything for the replay check.
func produce(trials int) ([]obs.BusEvent, *obs.Bus, error) {
	const bufCap = 1 << 14
	bus := obs.NewBus(bufCap)
	sub := bus.Subscribe(0, bufCap)
	defer sub.Close()
	observer := obs.New(obs.WithBus(bus))

	sys := depint.PaperExample()
	res, err := depint.Integrate(sys, depint.WithObserver(observer))
	if err != nil {
		return nil, nil, fmt.Errorf("integrate: %w", err)
	}

	if _, err := faultsim.Run(faultsim.Campaign{
		Graph:   res.Expanded,
		HWOf:    res.HWOf(),
		Trials:  trials,
		Seed:    7,
		Workers: 2,
		Bus:     bus,
		Label:   "stream-check",
	}); err != nil {
		return nil, nil, fmt.Errorf("campaign: %w", err)
	}

	// A small distributed campaign over the in-process transport feeds
	// the fabric_* kinds: worker liveness, lease churn, terminal summary.
	fc := faultsim.Campaign{
		Graph: res.Expanded, HWOf: res.HWOf(),
		Trials: 512, Seed: 11, Label: "fabric-check",
	}
	pl := fabric.NewPipeListener()
	serveDone := make(chan error, 1)
	go func() {
		_, _, err := fabric.Serve(context.Background(), fabric.Config{
			Campaign: fc, Listener: pl, Bus: bus,
		})
		serveDone <- err
	}()
	wctx, wcancel := context.WithCancel(context.Background())
	var wwg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wwg.Add(1)
		go func(i int) {
			defer wwg.Done()
			_ = fabric.RunWorker(wctx, fabric.WorkerConfig{
				Campaign: fc, Dial: pl.Dial(), Name: fmt.Sprintf("fw%d", i),
				HeartbeatEvery: 20 * time.Millisecond,
				BackoffBase:    2 * time.Millisecond, MaxReconnects: 100,
			})
		}(i)
	}
	fabricErr := <-serveDone
	wcancel()
	wwg.Wait()
	if fabricErr != nil {
		return nil, nil, fmt.Errorf("fabric: %w", fabricErr)
	}

	// A second, adversarial fabric run feeds fabric_quarantine: its only
	// worker corrupts every chunk, so the first spot-check quarantines it
	// and the coordinator finishes the campaign locally.
	qc := faultsim.Campaign{
		Graph: res.Expanded, HWOf: res.HWOf(),
		Trials: 256, Seed: 13, Label: "fabric-quarantine-check",
	}
	pl2 := fabric.NewPipeListener()
	qDone := make(chan error, 1)
	go func() {
		_, _, err := fabric.Serve(context.Background(), fabric.Config{
			Campaign: qc, Listener: pl2, Bus: bus, SpotCheck: 0.25,
		})
		qDone <- err
	}()
	qctx, qcancel := context.WithCancel(context.Background())
	qwDone := make(chan struct{})
	go func() {
		defer close(qwDone)
		_ = fabric.RunWorker(qctx, fabric.WorkerConfig{
			Campaign: qc, Dial: fabric.CorruptDialer(pl2.Dial(), 13, 1), Name: "liar",
			HeartbeatEvery: 20 * time.Millisecond,
			BackoffBase:    2 * time.Millisecond, MaxReconnects: 100,
		})
	}()
	if err := <-qDone; err != nil {
		qcancel()
		<-qwDone
		return nil, nil, fmt.Errorf("quarantine fabric: %w", err)
	}
	qcancel()
	<-qwDone

	// A third fabric run feeds the federated-telemetry kinds: the
	// coordinator has both Bus and Observer, so grant frames carry trace
	// context and workers relay phase spans (fabric_span) and clock echoes
	// (fabric_clock) back. One worker's transport delays every result by
	// far more than the fleet's chunk time, so its latency p95 trips the
	// straggler detector (fabric_straggler) at the lowered thresholds.
	tc := faultsim.Campaign{
		Graph: res.Expanded, HWOf: res.HWOf(),
		Trials: 2048, Seed: 17, Label: "fabric-telemetry-check",
	}
	pl3 := fabric.NewPipeListener()
	tDone := make(chan error, 1)
	go func() {
		_, _, err := fabric.Serve(context.Background(), fabric.Config{
			Campaign: tc, Listener: pl3, Bus: bus, Observer: observer,
			LeaseTTL:        2 * time.Second,
			StragglerFactor: 2, StragglerMin: 2,
		})
		tDone <- err
	}()
	tctx, tcancel := context.WithCancel(context.Background())
	var twg sync.WaitGroup
	for i := 0; i < 3; i++ {
		twg.Add(1)
		go func(i int) {
			defer twg.Done()
			dial := pl3.Dial()
			if i == 0 {
				dial = slowDialer(dial, 25*time.Millisecond)
			}
			_ = fabric.RunWorker(tctx, fabric.WorkerConfig{
				Campaign: tc, Dial: dial, Name: fmt.Sprintf("tw%d", i),
				HeartbeatEvery: 20 * time.Millisecond,
				BackoffBase:    2 * time.Millisecond, MaxReconnects: 100,
			})
		}(i)
	}
	tErr := <-tDone
	tcancel()
	twg.Wait()
	if tErr != nil {
		return nil, nil, fmt.Errorf("telemetry fabric: %w", tErr)
	}
	if len(observer.RemoteSpans()) == 0 {
		return nil, nil, fmt.Errorf("telemetry fabric relayed no remote spans")
	}

	if _, err := faultsim.Search(faultsim.SearchConfig{
		Graph: res.Expanded, HWOf: res.HWOf(),
		Trials: 200, Seed: 5, MaxEvals: 4, Bus: bus,
	}); err != nil {
		return nil, nil, fmt.Errorf("search: %w", err)
	}

	if _, err := depint.CertifyRobustness(sys, depint.RobustnessConfig{
		Epsilons: []float64{0, 0.05}, Samples: 3, Trials: 200,
		SkipSensitivity: true,
		Options:         []depint.Option{depint.WithObserver(observer)},
	}); err != nil {
		return nil, nil, fmt.Errorf("certify: %w", err)
	}

	var events []obs.BusEvent
	for {
		ev, ok := sub.TryNext()
		if !ok {
			break
		}
		events = append(events, ev)
	}
	if sub.Dropped() != 0 || bus.Dropped() != 0 {
		return nil, nil, fmt.Errorf("collector dropped events (%d sub / %d bus): raise cap",
			sub.Dropped(), bus.Dropped())
	}
	if len(events) == 0 {
		return nil, nil, fmt.Errorf("no events produced")
	}
	return events, bus, nil
}

// slowConn delays every result send, inflating the worker's observed
// chunk latency (leased→resulted on the coordinator clock) without
// touching protocol correctness.
type slowConn struct {
	fabric.Conn
	delay time.Duration
}

func (c slowConn) Send(f *fabric.Frame) error {
	if f.Type == fabric.TypeResult {
		time.Sleep(c.delay)
	}
	return c.Conn.Send(f)
}

// slowDialer wraps every connection d opens in a slowConn.
func slowDialer(d fabric.Dialer, delay time.Duration) fabric.Dialer {
	return func(ctx context.Context) (fabric.Conn, error) {
		c, err := d(ctx)
		if err != nil {
			return nil, err
		}
		return slowConn{Conn: c, delay: delay}, nil
	}
}

// loadSchema reads and minimally sanity-checks the committed schema.
func loadSchema(path string) (map[string]any, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var schema map[string]any
	if err := json.Unmarshal(raw, &schema); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if schema["type"] != "object" {
		return nil, fmt.Errorf("%s: root type must be object", path)
	}
	return schema, nil
}

// schemaKinds extracts the kind enum from the schema.
func schemaKinds(schema map[string]any) []string {
	props, _ := schema["properties"].(map[string]any)
	kind, _ := props["kind"].(map[string]any)
	enum, _ := kind["enum"].([]any)
	out := make([]string, 0, len(enum))
	for _, v := range enum {
		if s, ok := v.(string); ok {
			out = append(out, s)
		}
	}
	return out
}

// validate is a purpose-sized JSON Schema checker covering the subset the
// committed schema uses: type, required, properties, additionalProperties
// (boolean form), enum and minimum. Numbers are integers when integral.
func validate(schema map[string]any, doc any, path string) error {
	if t, ok := schema["type"].(string); ok {
		if err := checkType(t, doc, path); err != nil {
			return err
		}
	}
	if enum, ok := schema["enum"].([]any); ok {
		found := false
		for _, v := range enum {
			if v == doc {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("%s: %v not in enum", path, doc)
		}
	}
	if min, ok := schema["minimum"].(float64); ok {
		if n, isNum := doc.(float64); isNum && n < min {
			return fmt.Errorf("%s: %v below minimum %v", path, n, min)
		}
	}
	obj, isObj := doc.(map[string]any)
	if !isObj {
		return nil
	}
	if req, ok := schema["required"].([]any); ok {
		for _, r := range req {
			key, _ := r.(string)
			if _, present := obj[key]; !present {
				return fmt.Errorf("%s: missing required property %q", path, key)
			}
		}
	}
	props, _ := schema["properties"].(map[string]any)
	for key, val := range obj {
		sub, known := props[key].(map[string]any)
		if !known {
			if ap, ok := schema["additionalProperties"].(bool); ok && !ap {
				return fmt.Errorf("%s: unexpected property %q", path, key)
			}
			continue
		}
		if err := validate(sub, val, path+"."+key); err != nil {
			return err
		}
	}
	return nil
}

// checkType implements the JSON Schema primitive types the schema uses.
func checkType(t string, doc any, path string) error {
	ok := false
	switch t {
	case "object":
		_, ok = doc.(map[string]any)
	case "string":
		_, ok = doc.(string)
	case "number":
		_, ok = doc.(float64)
	case "integer":
		n, isNum := doc.(float64)
		ok = isNum && n == math.Trunc(n)
	case "boolean":
		_, ok = doc.(bool)
	}
	if !ok {
		return fmt.Errorf("%s: %v is not a %s", path, doc, t)
	}
	return nil
}
