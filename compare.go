package depint

import (
	"fmt"
	"sort"
	"strings"
)

// StrategyOutcome summarises one strategy's run in a comparison.
type StrategyOutcome struct {
	Strategy Strategy
	// Err is non-nil when the strategy could not produce a feasible
	// integration for the system.
	Err error
	// Result is nil when Err is non-nil.
	Result *Result
	// Escape is the fault-injection escape rate (present when injection
	// was requested).
	Escape float64
}

// Comparison holds the outcomes of running several strategies on one
// system.
type Comparison struct {
	Outcomes []StrategyOutcome
}

// Best returns the successful outcome with the highest containment,
// breaking ties by lower criticality concentration. Nil when every
// strategy failed.
func (c Comparison) Best() *StrategyOutcome {
	var best *StrategyOutcome
	for i := range c.Outcomes {
		o := &c.Outcomes[i]
		if o.Err != nil {
			continue
		}
		if best == nil ||
			o.Result.Report.Containment > best.Result.Report.Containment ||
			(o.Result.Report.Containment == best.Result.Report.Containment &&
				o.Result.Report.MaxNodeCriticality < best.Result.Report.MaxNodeCriticality) {
			best = o
		}
	}
	return best
}

// Table renders the comparison as fixed-width text.
func (c Comparison) Table() string {
	var b strings.Builder
	b.WriteString("strategy          containment  max-crit  crit-pairs  comm-cost  escape\n")
	for _, o := range c.Outcomes {
		if o.Err != nil {
			fmt.Fprintf(&b, "%-16s  failed: %v\n", o.Strategy, o.Err)
			continue
		}
		r := o.Result.Report
		escape := "-"
		if o.Escape > 0 {
			escape = fmt.Sprintf("%.4f", o.Escape)
		}
		fmt.Fprintf(&b, "%-16s  %11.3f  %8.1f  %10d  %9.3f  %s\n",
			o.Strategy, r.Containment, r.MaxNodeCriticality,
			r.CriticalPairsColocated, r.CommCost, escape)
	}
	return b.String()
}

// CompareConfig parameterises CompareStrategies.
type CompareConfig struct {
	// Strategies to run; empty means all of them.
	Strategies []Strategy
	// InjectTrials, when positive, runs a fault-injection campaign per
	// successful strategy and records the escape rate.
	InjectTrials int
	// Seed drives the injection campaigns.
	Seed uint64
	// Options are applied to every Integrate call (WithStrategy is set by
	// the comparison itself).
	Options []Option
}

// CompareStrategies integrates one system under several condensation
// strategies and collects the §5.3 goodness reports side by side — the
// "ascertaining and quantifying trade-offs involved in the integration
// process" the paper's introduction promises.
func CompareStrategies(sys *System, cfg CompareConfig) (Comparison, error) {
	if sys == nil {
		return Comparison{}, ErrNilSystem
	}
	strategies := cfg.Strategies
	if len(strategies) == 0 {
		strategies = []Strategy{
			H1, H1PairAll, H2, H2SourceTarget, H3,
			Criticality, TimingOrder, SeparationGuided,
		}
	}
	sort.Slice(strategies, func(i, j int) bool { return strategies[i] < strategies[j] })
	var cmp Comparison
	for _, s := range strategies {
		opts := append(append([]Option(nil), cfg.Options...), WithStrategy(s))
		out := StrategyOutcome{Strategy: s}
		res, err := Integrate(sys, opts...)
		if err != nil {
			out.Err = err
			cmp.Outcomes = append(cmp.Outcomes, out)
			continue
		}
		out.Result = res
		if cfg.InjectTrials > 0 {
			inj, ierr := res.InjectFaults(cfg.InjectTrials, cfg.Seed)
			if ierr != nil {
				return cmp, fmt.Errorf("depint: compare: %w", ierr)
			}
			out.Escape = inj.EscapeRate()
		}
		cmp.Outcomes = append(cmp.Outcomes, out)
	}
	return cmp, nil
}
