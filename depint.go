// Package depint is the public facade of the dependability-driven software
// integration framework (reproduction of Suri, Ghosh, Marlowe, ICDCS 1998).
//
// The framework takes a set of software functions with dependability
// attributes (criticality, fault-tolerance degree, timing constraints) and
// an influence graph quantifying how faults propagate between them, and
// produces an allocation onto a hardware platform that contains faults,
// separates replicas and critical functions, and satisfies timing
// constraints.
//
// The pipeline stages mirror the paper:
//
//  1. Partition   — the system specification names the process-level FCMs.
//  2. Influence   — the directed influence graph (Eq. 1–2) between FCMs.
//  3. Replicate   — fault-tolerance expansion (FT = k ⇒ k replicas linked
//     by weight-0 edges that forbid colocation).
//  4. Condense    — graph reduction to the HW node count using heuristic
//     H1, H2 or H3, criticality pairing, or timing ordering.
//  5. Map         — cluster-to-processor assignment (Approach A or B).
//  6. Evaluate    — the §5.3 goodness report: constraints, containment,
//     criticality dispersion, communication dilation.
//
// A minimal use:
//
//	sys := depint.PaperExample()
//	res, err := depint.Integrate(sys)
//	if err != nil { ... }
//	fmt.Println(res.Assignment, res.Report.Containment)
package depint

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/attrs"
	"repro/internal/cluster"
	"repro/internal/faultsim"
	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/influence"
	"repro/internal/ledger"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/stage"
)

// Re-exported spec types: callers describe systems with these.
type (
	// System is a complete integration problem specification.
	System = spec.System
	// Process is one process-level FCM with Table-1 style attributes.
	Process = spec.Process
	// Influence is one directed influence edge.
	Influence = spec.Influence
	// Assignment maps SW clusters to HW node names.
	Assignment = mapping.Assignment
	// Report is the §5.3 goodness report for a mapping.
	Report = mapping.Report
	// Step is one recorded combination step of the reduction trace.
	Step = cluster.Step
)

// PaperExample returns the reconstructed ICDCS'98 worked example
// (Table 1 + Fig. 3).
func PaperExample() *System { return spec.PaperExample() }

// FlightControl returns the flight-control integration example from the
// paper's introduction.
func FlightControl() *System { return spec.FlightControl() }

// BrakeByWire returns an automotive brake-by-wire example system.
func BrakeByWire() *System { return spec.BrakeByWire() }

// IndustrialControl returns a process-automation example system with a
// TMR safety interlock.
func IndustrialControl() *System { return spec.IndustrialControl() }

// Strategy selects the condensation heuristic for stage 4.
type Strategy int

// Condensation strategies.
const (
	// H1 combines the pair with the highest mutual influence repeatedly
	// (§5.4 H1; §6.1 "Approach A").
	H1 Strategy = iota + 1
	// H1PairAll is the H1 variation pairing all nodes per round.
	H1PairAll
	// H2 recursively bisects the graph along minimum cuts (§5.4 H2).
	H2
	// H3 grows spheres of influence around the most important nodes
	// (§5.4 H3).
	H3
	// Criticality pairs the most critical node with the least critical
	// (§6.2 "Approach B").
	Criticality
	// TimingOrder groups nodes adjacent in timing order (Fig. 8).
	TimingOrder
	// SeparationGuided combines the pair with the lowest Eq. (3)
	// separation — H1's transitive-coupling variant (§4.2.4 ablation).
	SeparationGuided
	// H2SourceTarget is the H2 variation cutting along minimum s–t cuts
	// between the two most important nodes of each part.
	H2SourceTarget
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case H1:
		return "H1"
	case H1PairAll:
		return "H1-pair-all"
	case H2:
		return "H2-min-cut"
	case H3:
		return "H3-spheres"
	case Criticality:
		return "criticality"
	case TimingOrder:
		return "timing-order"
	case SeparationGuided:
		return "separation"
	case H2SourceTarget:
		return "H2-source-target"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Approach selects the cluster-to-processor assignment heuristic (§5.4).
type Approach int

// Assignment approaches.
const (
	// ByImportance is Approach A: most important node placed first.
	ByImportance Approach = iota + 1
	// Lexicographic is Approach B: attributes in decreasing importance,
	// criticality first.
	Lexicographic
	// FCRAware orders by criticality and keeps critical clusters in
	// distinct hardware fault containment regions (§5.3's criticality
	// criterion at region granularity).
	FCRAware
)

// String returns the approach name.
func (a Approach) String() string {
	switch a {
	case ByImportance:
		return "importance"
	case Lexicographic:
		return "lexicographic"
	case FCRAware:
		return "fcr-aware"
	default:
		return fmt.Sprintf("Approach(%d)", int(a))
	}
}

// options collects pipeline configuration.
type options struct {
	strategy          Strategy
	approach          Approach
	platform          *hw.Platform
	weights           attrs.Weights
	lexKinds          []attrs.Kind
	requirements      mapping.Requirements
	criticalThreshold float64
	separationOrder   int
	refineMoves       int
	observer          *obs.Observer
	fallback          []Strategy
	timeout           time.Duration
	attemptTimeout    time.Duration
	weightsSet        bool
	workers           int
	race              bool
	ledger            *ledger.Ledger
}

// Option configures Integrate.
type Option func(*options)

// WithStrategy selects the condensation heuristic (default H1).
func WithStrategy(s Strategy) Option { return func(o *options) { o.strategy = s } }

// WithApproach selects the assignment approach (default ByImportance).
func WithApproach(a Approach) Option { return func(o *options) { o.approach = a } }

// WithPlatform supplies a custom hardware platform; by default a complete
// (strongly connected) platform with the system's HWNodes processors is
// built.
func WithPlatform(p *hw.Platform) Option { return func(o *options) { o.platform = p } }

// WithWeights overrides the importance weights.
func WithWeights(w attrs.Weights) Option {
	return func(o *options) { o.weights, o.weightsSet = w, true }
}

// WithLexicographicKinds orders the attribute kinds for Approach B.
func WithLexicographicKinds(kinds ...attrs.Kind) Option {
	return func(o *options) { o.lexKinds = kinds }
}

// WithRequirements declares per-process HW resource requirements.
func WithRequirements(req map[string][]string) Option {
	return func(o *options) { o.requirements = req }
}

// WithCriticalThreshold sets the criticality at or above which a process
// counts as critical in the goodness report (default 10).
func WithCriticalThreshold(t float64) Option {
	return func(o *options) { o.criticalThreshold = t }
}

// WithSeparationOrder sets the truncation order of the Eq. (3) separation
// series (default influence.DefaultMaxOrder).
func WithSeparationOrder(k int) Option { return func(o *options) { o.separationOrder = k } }

// WithRefinement enables the post-assignment dilation refinement pass
// (§6: "dilation of the mapping may be considered to address
// performance") with the given move budget; 0 disables it (the default),
// a negative budget uses the refiner's default.
func WithRefinement(maxMoves int) Option { return func(o *options) { o.refineMoves = maxMoves } }

// WithObserver installs a telemetry observer on the run: Integrate records
// one span per pipeline stage (partition, influence, replicate, condense,
// map, evaluate), the condenser logs every merge decision with its mutual
// influence, and the feasibility oracle counts calls and latencies into
// the observer's metrics registry (a process-global installation — see
// sched.Observe). An observer built with obs.WithBus additionally streams
// every span start/end and event live over the observability fabric, where
// obs.Serve exposes them as /events, /progress and the /dashboard. A nil
// observer (the default) keeps the pipeline on its uninstrumented fast
// path.
func WithObserver(o *obs.Observer) Option { return func(opt *options) { opt.observer = o } }

// WithLedger installs a decision-provenance ledger on the run: Integrate
// records every pipeline decision — the partitioned FCMs, the replica
// expansion and its separation edges, every condensation merge with its
// rule and Eq. (4) mutual influence, every cluster placement with the
// cost it was chosen at and the alternatives it beat, fallback
// degradations and race outcomes, and a final metrics snapshot — into l,
// stamped with the run's config/spec fingerprint. Records carry no
// timestamps, so two runs of the same specification under the same
// configuration produce identical ledgers (see ledger.Diff). Under
// WithRaceStrategies only the winning contender's records are spliced in,
// so the ledger always matches the published result — but which strategy
// wins a race may vary run to run. A nil ledger (the default) records
// nothing.
func WithLedger(l *ledger.Ledger) Option { return func(o *options) { o.ledger = l } }

// WithFallback installs a graceful-degradation chain after the selected
// strategy: when condensation or mapping under the current strategy fails,
// times out (see WithAttemptTimeout), or yields an infeasible mapping, the
// pipeline retries with the next strategy in the chain on a fresh copy of
// the replicated graph. Every abandoned strategy is recorded in
// Result.Degradations and as a "degrade" telemetry event. Cancellation of
// the caller's context is never retried — it aborts the whole run.
func WithFallback(next ...Strategy) Option {
	return func(o *options) { o.fallback = append(o.fallback, next...) }
}

// WithWorkers sizes the worker pools of the pipeline's parallel stages:
// the Eq. (3) separation sweeps (the influence stage and the
// SeparationGuided condensation heuristic) shard their row kernels over
// this many goroutines. 0 (the default) means GOMAXPROCS; 1 forces fully
// serial execution. Results are bit-identical for every value.
func WithWorkers(n int) Option { return func(o *options) { o.workers = n } }

// WithRaceStrategies switches the WithFallback chain from serial retry to
// a portfolio race: every strategy in the chain runs concurrently on its
// own clone of the replicated graph, the first acceptable (error-free)
// result wins, and the rest are cancelled and recorded in
// Result.Degradations — losers carry the reason "lost race to <winner>"
// when they were merely outpaced, or their own failure when they broke
// independently. With no fallback chain the option is a no-op. The winning
// Result is always one a serial run of that same strategy would have
// produced; which strategy wins may vary run to run (that is the point of
// racing).
func WithRaceStrategies() Option { return func(o *options) { o.race = true } }

// WithTimeout bounds the whole integration run: the context handed to
// IntegrateContext is wrapped with this deadline. Expiry surfaces as a
// *StageError wrapping context.DeadlineExceeded from whichever stage the
// pipeline was in. Zero (the default) means no deadline beyond the
// caller's context.
func WithTimeout(d time.Duration) Option { return func(o *options) { o.timeout = d } }

// WithAttemptTimeout bounds each strategy attempt of the condense+map
// phase separately. When an attempt exceeds the budget it is abandoned
// and — if WithFallback configured further strategies — the next one is
// tried with a fresh budget; without a fallback the deadline error is
// returned. Zero (the default) means attempts share the run's deadline.
func WithAttemptTimeout(d time.Duration) Option { return func(o *options) { o.attemptTimeout = d } }

// Result is the complete output of an integration run.
type Result struct {
	// System echoes the input specification.
	System *System
	// Initial is the process-level influence graph (Fig. 3).
	Initial *graph.Graph
	// Expanded is the replicated graph (Fig. 4).
	Expanded *graph.Graph
	// Condensed is the reduced cluster graph (Figs. 5–8).
	Condensed *graph.Graph
	// Trace records the combination steps of the reduction.
	Trace []Step
	// Assignment maps clusters to HW nodes.
	Assignment Assignment
	// Report is the §5.3 goodness evaluation.
	Report Report
	// Separation holds the Eq. (3) separation matrix over the initial
	// process graph, indexed by SeparationIndex.
	Separation      [][]float64
	SeparationIndex []string
	// Reliability is the analytic dependability summary.
	Reliability metrics.SystemReport
	// RefinementMoves counts dilation-refinement moves applied (0 when
	// refinement was disabled or unnecessary).
	RefinementMoves int
	// Degradations records every strategy the fallback chain gave up on
	// before Strategy succeeded (empty on a first-try success).
	Degradations []Degradation
	// Strategy and ApproachUsed echo the configuration; with a fallback
	// chain, Strategy is the strategy that actually produced the mapping.
	Strategy     Strategy
	ApproachUsed Approach
}

// ErrNilSystem is returned when Integrate receives a nil specification.
var ErrNilSystem = errors.New("depint: nil system")

// StageError is the structured error every pipeline failure is classified
// into: the stage it escaped from, the heuristic or rule involved, the
// offending node when known, and the cause (errors.Is/As see through it).
// A StageError born from a recovered panic wraps ErrPanic and carries the
// goroutine stack.
type StageError = stage.Error

// Taxonomy sentinels, re-exported for callers routing on errors.Is.
var (
	// ErrPanic marks a StageError produced by the panic firewall at a
	// stage boundary — library callers never see a raw panic.
	ErrPanic = stage.ErrPanic
	// ErrFallbackExhausted marks a run whose every fallback strategy
	// failed; the last strategy's error is joined alongside.
	ErrFallbackExhausted = stage.ErrExhausted
)

// Degradation records one abandoned strategy of a fallback chain.
type Degradation struct {
	// Stage is the pipeline stage the strategy failed in ("condense" or
	// "map").
	Stage string
	// Strategy is the heuristic given up on.
	Strategy Strategy
	// Reason is the rendered failure that triggered the fallback.
	Reason string
}

// String renders "H2-min-cut failed in condense: …".
func (d Degradation) String() string {
	return fmt.Sprintf("%s failed in %s: %s", d.Strategy, d.Stage, d.Reason)
}

// Integrate runs the full pipeline on a system specification with no
// deadline (beyond WithTimeout, when given).
func Integrate(sys *System, opts ...Option) (*Result, error) {
	return IntegrateContext(context.Background(), sys, opts...)
}

// runStage executes fn as one pipeline stage: a cooperative cancellation
// check first, then the body behind the panic firewall. Failures are
// classified into *StageError and recorded on the stage's telemetry span;
// a recovered panic additionally lands its stack there as a "panic" event.
func runStage(ctx context.Context, sp *obs.Span, name string, fn func() error) error {
	defer sp.End()
	if p := sp.Profiler(); p != nil {
		p.StageStart(name)
		defer p.StageEnd(name)
	}
	if err := stage.Check(ctx, name); err != nil {
		sp.SetAttr(obs.String("error", err.Error()))
		return err
	}
	err := stage.Run(name, fn)
	if err != nil {
		sp.SetAttr(obs.String("error", err.Error()))
		var se *stage.Error
		if errors.As(err, &se) && len(se.Stack) > 0 {
			sp.Event("panic", obs.String("stage", se.Stage), obs.String("stack", string(se.Stack)))
		}
	}
	return err
}

// stageOf extracts the stage name a classified error escaped from.
func stageOf(err error, fallback string) string {
	var se *stage.Error
	if errors.As(err, &se) && se.Stage != "" {
		return se.Stage
	}
	return fallback
}

// IntegrateContext runs the full pipeline under a context: the deadline or
// cancellation of ctx propagates into the condensation heuristics, the
// Eq. (3) separation series, the mapping refiner and every stage boundary,
// so a cancelled run returns promptly with a *StageError wrapping
// ctx.Err() — never a partial result and never a panic.
func IntegrateContext(ctx context.Context, sys *System, opts ...Option) (*Result, error) {
	if sys == nil {
		return nil, ErrNilSystem
	}
	if ctx == nil {
		ctx = context.Background()
	}
	o := options{
		strategy:          H1,
		approach:          ByImportance,
		criticalThreshold: 10,
	}
	for _, opt := range opts {
		opt(&o)
	}
	if !o.weightsSet {
		w, err := attrs.DefaultWeights()
		if err != nil {
			return nil, err
		}
		o.weights = w
	}
	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}

	// Provenance: stamp the run identity (what is being integrated, under
	// which configuration) before the first decision is recorded.
	if o.ledger != nil {
		o.ledger.MergeHeader(ledger.Header{
			System:      sys.Name,
			Strategy:    o.strategy.String(),
			Approach:    o.approach.String(),
			HWNodes:     sys.HWNodes,
			Fingerprint: runFingerprint(sys, &o),
		})
	}

	// Telemetry: one root span with a child per pipeline stage. Every span
	// handle below is nil — and every span call a no-op — when no observer
	// is installed, keeping the default path uninstrumented.
	var root *obs.Span
	if o.observer != nil {
		sched.Observe(o.observer.Metrics())
		root = o.observer.StartSpan("integrate",
			obs.String("system", sys.Name),
			obs.String("strategy", o.strategy.String()),
			obs.String("approach", o.approach.String()),
			obs.Int("hw_nodes", sys.HWNodes))
	}
	defer root.End()

	// Stage 1: partition — the specification names the process-level FCMs.
	sp := root.StartChild("partition")
	if err := runStage(ctx, sp, "partition", func() error {
		if err := sys.Validate(); err != nil {
			return err
		}
		sp.SetAttr(obs.Int("processes", len(sys.Processes)))
		return nil
	}); err != nil {
		return nil, err
	}
	if o.ledger != nil {
		for _, p := range sys.Processes {
			o.ledger.Append(ledger.Record{
				Kind: ledger.KindPartition, Stage: "partition", A: p.Name,
				Score:  p.Criticality,
				Detail: fmt.Sprintf("ft %d, window [%g, %g], ct %g", p.FT, p.EST, p.TCD, p.CT),
			})
		}
	}

	// Stage 2: influence — the directed influence graph plus the Eq. (3)
	// separation analysis over it.
	res := &Result{
		System:       sys,
		Strategy:     o.strategy,
		ApproachUsed: o.approach,
	}
	sp = root.StartChild("influence")
	if err := runStage(ctx, sp, "influence", func() error {
		initial, err := sys.Graph()
		if err != nil {
			return err
		}
		res.Initial = initial
		p, idx := initial.Matrix()
		sep, err := influence.SeparationMatrixWorkers(ctx, p, o.separationOrder, o.workers)
		if err != nil {
			return fmt.Errorf("separation: %w", err)
		}
		res.Separation, res.SeparationIndex = sep, idx
		sp.SetAttr(obs.Int("nodes", initial.NumNodes()), obs.Int("edges", len(initial.Edges())))
		return nil
	}); err != nil {
		return nil, err
	}
	if o.ledger != nil {
		o.ledger.Append(ledger.Record{
			Kind: ledger.KindInfluence, Stage: "influence",
			Detail: fmt.Sprintf("%d nodes, %d influence edges, Eq.3 separation analysed",
				res.Initial.NumNodes(), len(res.Initial.Edges())),
		})
	}

	// Stage 3: replication expansion.
	var exp *cluster.Expansion
	sp = root.StartChild("replicate")
	if err := runStage(ctx, sp, "replicate", func() error {
		var err error
		exp, err = cluster.Expand(res.Initial, sys.Jobs())
		if err != nil {
			return err
		}
		res.Expanded = exp.Graph.Clone()
		sp.SetAttr(obs.Int("replicas", exp.Graph.NumNodes()))
		return nil
	}); err != nil {
		return nil, err
	}
	if o.ledger != nil {
		// One replicate record per base process (spec order), then the
		// weight-0 separation edges (graph order, one per pair).
		for _, p := range sys.Processes {
			o.ledger.Append(ledger.Record{
				Kind: ledger.KindReplicate, Stage: "replicate",
				A: p.Name, Members: exp.ReplicasOf[p.Name],
				Detail: fmt.Sprintf("ft %d", p.FT),
			})
		}
		for _, e := range res.Expanded.Edges() {
			if e.Replica && e.From < e.To {
				o.ledger.Append(ledger.Record{
					Kind: ledger.KindReplicaEdge, Stage: "replicate",
					A: e.From, B: e.To, Detail: "colocation forbidden",
				})
			}
		}
	}

	// The HW platform and resource requirements are strategy-independent;
	// build them once, before the condense+map attempts.
	platform := o.platform
	if platform == nil {
		var err error
		platform, err = hw.Complete(sys.HWNodes)
		if err != nil {
			return nil, stage.Wrapf("map", "", "", err, "platform")
		}
		// The paper's HW model: homogeneous processors "with access to
		// equivalent sets of resources" — the default platform offers
		// every resource the specification mentions, on every node.
		for _, nodeName := range platform.Nodes() {
			node, nerr := platform.Node(nodeName)
			if nerr != nil {
				return nil, stage.Wrapf("map", "", nodeName, nerr, "platform")
			}
			for _, p := range sys.Processes {
				for _, res := range p.Resources {
					node.Resources[res] = true
				}
			}
		}
	}
	req := o.requirements
	if req == nil {
		req = requirementsFromSpec(sys, exp)
	}

	// Stages 4+5: condensation and mapping, under the heuristic fallback
	// chain. Each attempt runs on its own copy of the replicated graph
	// (the sole attempt of a chain-free run uses it directly), under its
	// own deadline when WithAttemptTimeout is set. A failed attempt is
	// recorded as a degradation and the next strategy tried; cancellation
	// of the run's context aborts immediately instead of degrading.
	chain := append([]Strategy{o.strategy}, o.fallback...)
	var lastErr error
	if o.race && len(chain) > 1 {
		var fatal error
		lastErr, fatal = raceAttempts(ctx, &o, root, res, sys, exp, platform, req, chain)
		if fatal != nil {
			// The run itself is cancelled or out of time: no fallback.
			return nil, fatal
		}
	} else {
		lastErr = serialAttempts(ctx, &o, root, res, sys, exp, platform, req, chain)
		if lastErr != nil && ctx.Err() != nil {
			return nil, lastErr
		}
	}
	if lastErr != nil {
		if len(chain) > 1 {
			return nil, &StageError{
				Stage: stageOf(lastErr, "condense"),
				Rule:  chain[len(chain)-1].String(),
				Err:   errors.Join(ErrFallbackExhausted, lastErr),
			}
		}
		return nil, lastErr
	}

	// Stage 6: evaluation.
	sp = root.StartChild("evaluate")
	if err := runStage(ctx, sp, "evaluate", func() error {
		res.Report = mapping.Evaluate(res.Expanded, res.Assignment, platform, mapping.EvalConfig{
			CriticalThreshold: o.criticalThreshold,
			Requirements:      req,
		})

		// Analytic reliability (intrinsic fault probability defaults to a
		// uniform placeholder; see Reliability option on faultsim for the
		// measured path).
		mods := make([]metrics.ModuleSpec, 0, len(sys.Processes))
		for _, proc := range sys.Processes {
			mods = append(mods, metrics.ModuleSpec{
				Name:      proc.Name,
				FaultProb: 0.1,
				Replicas:  proc.FT,
				Majority:  proc.FT >= 3,
			})
		}
		var err error
		res.Reliability, err = metrics.SystemReliability(mods)
		if err != nil {
			return fmt.Errorf("reliability: %w", err)
		}
		sp.SetAttr(
			obs.Float("containment", res.Report.Containment),
			obs.Bool("constraints_ok", res.Report.ConstraintsOK))
		return nil
	}); err != nil {
		return nil, err
	}
	if o.ledger != nil {
		ok := 0.0
		if res.Report.ConstraintsOK {
			ok = 1
		}
		o.ledger.Append(ledger.Record{
			Kind: ledger.KindMetrics, Stage: "evaluate",
			Values: map[string]float64{
				"containment":               res.Report.Containment,
				"cross_influence":           res.Report.CrossInfluence,
				"internal_influence":        res.Report.InternalInfluence,
				"comm_cost":                 res.Report.CommCost,
				"max_node_criticality":      res.Report.MaxNodeCriticality,
				"critical_pairs_colocated":  float64(res.Report.CriticalPairsColocated),
				"critical_pairs_shared_fcr": float64(res.Report.CriticalPairsSharedFCR),
				"constraints_ok":            ok,
				"system_reliability":        res.Reliability.SystemReliability,
				"refinement_moves":          float64(res.RefinementMoves),
			},
		})
	}
	return res, nil
}

// runFingerprint hashes everything that determines the run's decisions:
// the specification and the configuration knobs that steer condensation,
// mapping and refinement. Two ledgers sharing a fingerprint are expected
// to be decision-identical (the contract ledger.Diff checks).
func runFingerprint(sys *System, o *options) string {
	chain := make([]string, 0, 1+len(o.fallback))
	for _, s := range append([]Strategy{o.strategy}, o.fallback...) {
		chain = append(chain, s.String())
	}
	return ledger.Fingerprint(struct {
		System            *System  `json:"system"`
		Chain             []string `json:"chain"`
		Approach          string   `json:"approach"`
		CriticalThreshold float64  `json:"critical_threshold"`
		SeparationOrder   int      `json:"separation_order"`
		RefineMoves       int      `json:"refine_moves"`
		Race              bool     `json:"race"`
	}{sys, chain, o.approach.String(), o.criticalThreshold, o.separationOrder, o.refineMoves, o.race})
}

// integrateAttempt runs the condense and map stages for one strategy of
// the fallback chain, writing Condensed/Trace/Assignment/RefinementMoves
// into res on success. work is the graph the condenser may mutate; led is
// the provenance ledger decisions are appended to (nil = none; race mode
// hands each contender a scratch ledger so records never interleave).
func integrateAttempt(ctx context.Context, o *options, root *obs.Span, res *Result,
	sys *System, exp *cluster.Expansion, platform *hw.Platform, req mapping.Requirements,
	strat Strategy, work *graph.Graph, attempt int, led *ledger.Ledger) error {

	// Stage 4: condensation.
	sp := root.StartChild("condense",
		obs.String("strategy", strat.String()), obs.Int("attempt", attempt))
	cond := cluster.NewCondenser(work, exp.Jobs)
	cond.SetContext(ctx)
	cond.SetWorkers(o.workers)
	cond.SetLedger(led, attempt+1)
	cond.Observe(sp, o.observer.Metrics())
	target := sys.HWNodes
	if err := runStage(ctx, sp, "condense", func() error {
		var err error
		switch strat {
		case H1:
			err = cond.ReduceByInfluence(target)
		case H1PairAll:
			err = cond.ReduceByInfluencePairAll(target)
		case H2:
			err = cond.ReduceByMinCut(target)
		case H3:
			err = cond.ReduceBySpheres(target, o.weights)
		case Criticality:
			err = cond.ReduceByCriticality(target)
		case TimingOrder:
			err = cond.ReduceByTiming(target)
		case SeparationGuided:
			err = cond.ReduceBySeparation(target, o.separationOrder)
		case H2SourceTarget:
			err = cond.ReduceByMinCutST(target, o.weights)
		default:
			err = fmt.Errorf("depint: unknown strategy %d", int(strat))
		}
		if err != nil {
			return stage.Wrap("condense", strat.String(), "", err)
		}
		sp.SetAttr(obs.Int("clusters", cond.G.NumNodes()), obs.Int("merges", len(cond.Trace)))
		return nil
	}); err != nil {
		return err
	}

	// Stage 5: mapping.
	sp = root.StartChild("map",
		obs.String("approach", o.approach.String()), obs.Int("attempt", attempt))
	return runStage(ctx, sp, "map", func() error {
		var asg Assignment
		var decisions []mapping.Decision
		var err error
		switch o.approach {
		case ByImportance:
			asg, decisions, err = mapping.AssignByImportanceDetailed(cond.G, platform, o.weights, req)
		case Lexicographic:
			asg, decisions, err = mapping.AssignLexicographicDetailed(cond.G, platform, o.lexKinds, req)
		case FCRAware:
			asg, decisions, err = mapping.AssignCriticalityAwareDetailed(cond.G, platform, req, o.criticalThreshold)
		default:
			err = fmt.Errorf("depint: unknown approach %d", int(o.approach))
		}
		if err != nil {
			return stage.Wrap("map", o.approach.String(), "", err)
		}
		if led != nil {
			for _, d := range decisions {
				alts := make([]ledger.Alternative, len(d.Alternatives))
				for i, a := range d.Alternatives {
					alts[i] = ledger.Alternative{Node: a.Node, Cost: a.Cost}
				}
				led.Append(ledger.Record{
					Kind: ledger.KindPlace, Stage: "map", Rule: o.approach.String(),
					A: d.Cluster, Node: d.Node, Cost: d.Cost,
					Alternatives: alts, Attempt: attempt + 1,
				})
			}
		}
		moves := 0
		// Optional dilation-refinement pass over the assignment.
		if o.refineMoves != 0 {
			budget := o.refineMoves
			if budget < 0 {
				budget = 0 // refiner default
			}
			asg, moves, err = mapping.RefineCtx(ctx, asg, exp.Graph, platform, req, budget)
			if err != nil {
				return stage.Wrap("map", "refine", "", err)
			}
			if led != nil && moves > 0 {
				led.Append(ledger.Record{
					Kind: ledger.KindRefine, Stage: "map", Rule: "dilation-refine",
					Detail:  fmt.Sprintf("%d moves applied after initial placement", moves),
					Attempt: attempt + 1,
				})
			}
		}
		res.Condensed = cond.G
		res.Trace = cond.Trace
		res.Assignment = asg
		res.RefinementMoves = moves
		sp.SetAttr(obs.Int("refinement_moves", moves))
		return nil
	})
}

// requirementsFromSpec expands per-process resource requirements onto
// replica names.
func requirementsFromSpec(sys *System, exp *cluster.Expansion) mapping.Requirements {
	req := mapping.Requirements{}
	for _, p := range sys.Processes {
		if len(p.Resources) == 0 {
			continue
		}
		for _, rep := range exp.ReplicasOf[p.Name] {
			req[rep] = append([]string(nil), p.Resources...)
		}
	}
	return req
}

// HWOf flattens the assignment into a base-replica → HW-node map, the form
// the fault-injection campaign consumes.
func (r *Result) HWOf() map[string]string {
	out := map[string]string{}
	for clusterID, node := range r.Assignment {
		for _, m := range graph.Members(clusterID) {
			out[m] = node
		}
	}
	return out
}

// InjectFaults runs a seeded Monte-Carlo fault-injection campaign over the
// integrated system's expanded graph and mapping (experiment E3's
// machinery), returning propagation and containment statistics.
func (r *Result) InjectFaults(trials int, seed uint64) (faultsim.Result, error) {
	return faultsim.Run(faultsim.Campaign{
		Graph:             r.Expanded,
		HWOf:              r.HWOf(),
		Trials:            trials,
		Seed:              seed,
		CriticalThreshold: 10,
	})
}

// SeparationOf returns the Eq. (3) separation between two processes of the
// initial graph.
func (r *Result) SeparationOf(a, b string) (float64, error) {
	ia, ib := -1, -1
	for i, id := range r.SeparationIndex {
		if id == a {
			ia = i
		}
		if id == b {
			ib = i
		}
	}
	if ia < 0 || ib < 0 {
		return 0, fmt.Errorf("depint: unknown process in separation query: %q/%q", a, b)
	}
	return r.Separation[ia][ib], nil
}
