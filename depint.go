// Package depint is the public facade of the dependability-driven software
// integration framework (reproduction of Suri, Ghosh, Marlowe, ICDCS 1998).
//
// The framework takes a set of software functions with dependability
// attributes (criticality, fault-tolerance degree, timing constraints) and
// an influence graph quantifying how faults propagate between them, and
// produces an allocation onto a hardware platform that contains faults,
// separates replicas and critical functions, and satisfies timing
// constraints.
//
// The pipeline stages mirror the paper:
//
//  1. Partition   — the system specification names the process-level FCMs.
//  2. Influence   — the directed influence graph (Eq. 1–2) between FCMs.
//  3. Replicate   — fault-tolerance expansion (FT = k ⇒ k replicas linked
//     by weight-0 edges that forbid colocation).
//  4. Condense    — graph reduction to the HW node count using heuristic
//     H1, H2 or H3, criticality pairing, or timing ordering.
//  5. Map         — cluster-to-processor assignment (Approach A or B).
//  6. Evaluate    — the §5.3 goodness report: constraints, containment,
//     criticality dispersion, communication dilation.
//
// A minimal use:
//
//	sys := depint.PaperExample()
//	res, err := depint.Integrate(sys)
//	if err != nil { ... }
//	fmt.Println(res.Assignment, res.Report.Containment)
package depint

import (
	"errors"
	"fmt"

	"repro/internal/attrs"
	"repro/internal/cluster"
	"repro/internal/faultsim"
	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/influence"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/spec"
)

// Re-exported spec types: callers describe systems with these.
type (
	// System is a complete integration problem specification.
	System = spec.System
	// Process is one process-level FCM with Table-1 style attributes.
	Process = spec.Process
	// Influence is one directed influence edge.
	Influence = spec.Influence
	// Assignment maps SW clusters to HW node names.
	Assignment = mapping.Assignment
	// Report is the §5.3 goodness report for a mapping.
	Report = mapping.Report
	// Step is one recorded combination step of the reduction trace.
	Step = cluster.Step
)

// PaperExample returns the reconstructed ICDCS'98 worked example
// (Table 1 + Fig. 3).
func PaperExample() *System { return spec.PaperExample() }

// FlightControl returns the flight-control integration example from the
// paper's introduction.
func FlightControl() *System { return spec.FlightControl() }

// BrakeByWire returns an automotive brake-by-wire example system.
func BrakeByWire() *System { return spec.BrakeByWire() }

// IndustrialControl returns a process-automation example system with a
// TMR safety interlock.
func IndustrialControl() *System { return spec.IndustrialControl() }

// Strategy selects the condensation heuristic for stage 4.
type Strategy int

// Condensation strategies.
const (
	// H1 combines the pair with the highest mutual influence repeatedly
	// (§5.4 H1; §6.1 "Approach A").
	H1 Strategy = iota + 1
	// H1PairAll is the H1 variation pairing all nodes per round.
	H1PairAll
	// H2 recursively bisects the graph along minimum cuts (§5.4 H2).
	H2
	// H3 grows spheres of influence around the most important nodes
	// (§5.4 H3).
	H3
	// Criticality pairs the most critical node with the least critical
	// (§6.2 "Approach B").
	Criticality
	// TimingOrder groups nodes adjacent in timing order (Fig. 8).
	TimingOrder
	// SeparationGuided combines the pair with the lowest Eq. (3)
	// separation — H1's transitive-coupling variant (§4.2.4 ablation).
	SeparationGuided
	// H2SourceTarget is the H2 variation cutting along minimum s–t cuts
	// between the two most important nodes of each part.
	H2SourceTarget
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case H1:
		return "H1"
	case H1PairAll:
		return "H1-pair-all"
	case H2:
		return "H2-min-cut"
	case H3:
		return "H3-spheres"
	case Criticality:
		return "criticality"
	case TimingOrder:
		return "timing-order"
	case SeparationGuided:
		return "separation"
	case H2SourceTarget:
		return "H2-source-target"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Approach selects the cluster-to-processor assignment heuristic (§5.4).
type Approach int

// Assignment approaches.
const (
	// ByImportance is Approach A: most important node placed first.
	ByImportance Approach = iota + 1
	// Lexicographic is Approach B: attributes in decreasing importance,
	// criticality first.
	Lexicographic
	// FCRAware orders by criticality and keeps critical clusters in
	// distinct hardware fault containment regions (§5.3's criticality
	// criterion at region granularity).
	FCRAware
)

// String returns the approach name.
func (a Approach) String() string {
	switch a {
	case ByImportance:
		return "importance"
	case Lexicographic:
		return "lexicographic"
	case FCRAware:
		return "fcr-aware"
	default:
		return fmt.Sprintf("Approach(%d)", int(a))
	}
}

// options collects pipeline configuration.
type options struct {
	strategy          Strategy
	approach          Approach
	platform          *hw.Platform
	weights           attrs.Weights
	lexKinds          []attrs.Kind
	requirements      mapping.Requirements
	criticalThreshold float64
	separationOrder   int
	refineMoves       int
	observer          *obs.Observer
}

// Option configures Integrate.
type Option func(*options)

// WithStrategy selects the condensation heuristic (default H1).
func WithStrategy(s Strategy) Option { return func(o *options) { o.strategy = s } }

// WithApproach selects the assignment approach (default ByImportance).
func WithApproach(a Approach) Option { return func(o *options) { o.approach = a } }

// WithPlatform supplies a custom hardware platform; by default a complete
// (strongly connected) platform with the system's HWNodes processors is
// built.
func WithPlatform(p *hw.Platform) Option { return func(o *options) { o.platform = p } }

// WithWeights overrides the importance weights.
func WithWeights(w attrs.Weights) Option { return func(o *options) { o.weights = w } }

// WithLexicographicKinds orders the attribute kinds for Approach B.
func WithLexicographicKinds(kinds ...attrs.Kind) Option {
	return func(o *options) { o.lexKinds = kinds }
}

// WithRequirements declares per-process HW resource requirements.
func WithRequirements(req map[string][]string) Option {
	return func(o *options) { o.requirements = req }
}

// WithCriticalThreshold sets the criticality at or above which a process
// counts as critical in the goodness report (default 10).
func WithCriticalThreshold(t float64) Option {
	return func(o *options) { o.criticalThreshold = t }
}

// WithSeparationOrder sets the truncation order of the Eq. (3) separation
// series (default influence.DefaultMaxOrder).
func WithSeparationOrder(k int) Option { return func(o *options) { o.separationOrder = k } }

// WithRefinement enables the post-assignment dilation refinement pass
// (§6: "dilation of the mapping may be considered to address
// performance") with the given move budget; 0 disables it (the default),
// a negative budget uses the refiner's default.
func WithRefinement(maxMoves int) Option { return func(o *options) { o.refineMoves = maxMoves } }

// WithObserver installs a telemetry observer on the run: Integrate records
// one span per pipeline stage (partition, influence, replicate, condense,
// map, evaluate), the condenser logs every merge decision with its mutual
// influence, and the feasibility oracle counts calls and latencies into
// the observer's metrics registry (a process-global installation — see
// sched.Observe). A nil observer (the default) keeps the pipeline on its
// uninstrumented fast path.
func WithObserver(o *obs.Observer) Option { return func(opt *options) { opt.observer = o } }

// Result is the complete output of an integration run.
type Result struct {
	// System echoes the input specification.
	System *System
	// Initial is the process-level influence graph (Fig. 3).
	Initial *graph.Graph
	// Expanded is the replicated graph (Fig. 4).
	Expanded *graph.Graph
	// Condensed is the reduced cluster graph (Figs. 5–8).
	Condensed *graph.Graph
	// Trace records the combination steps of the reduction.
	Trace []Step
	// Assignment maps clusters to HW nodes.
	Assignment Assignment
	// Report is the §5.3 goodness evaluation.
	Report Report
	// Separation holds the Eq. (3) separation matrix over the initial
	// process graph, indexed by SeparationIndex.
	Separation      [][]float64
	SeparationIndex []string
	// Reliability is the analytic dependability summary.
	Reliability metrics.SystemReport
	// RefinementMoves counts dilation-refinement moves applied (0 when
	// refinement was disabled or unnecessary).
	RefinementMoves int
	// Strategy and ApproachUsed echo the configuration.
	Strategy     Strategy
	ApproachUsed Approach
}

// ErrNilSystem is returned when Integrate receives a nil specification.
var ErrNilSystem = errors.New("depint: nil system")

// Integrate runs the full pipeline on a system specification.
func Integrate(sys *System, opts ...Option) (*Result, error) {
	if sys == nil {
		return nil, ErrNilSystem
	}
	o := options{
		strategy:          H1,
		approach:          ByImportance,
		weights:           attrs.DefaultWeights(),
		criticalThreshold: 10,
	}
	for _, opt := range opts {
		opt(&o)
	}

	// Telemetry: one root span with a child per pipeline stage. Every span
	// handle below is nil — and every span call a no-op — when no observer
	// is installed, keeping the default path uninstrumented.
	var root *obs.Span
	if o.observer != nil {
		sched.Observe(o.observer.Metrics())
		root = o.observer.StartSpan("integrate",
			obs.String("system", sys.Name),
			obs.String("strategy", o.strategy.String()),
			obs.String("approach", o.approach.String()),
			obs.Int("hw_nodes", sys.HWNodes))
	}
	defer root.End()

	// Stage 1: partition — the specification names the process-level FCMs.
	stage := root.StartChild("partition")
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("depint: %w", err)
	}
	if stage != nil {
		stage.SetAttr(obs.Int("processes", len(sys.Processes)))
	}
	stage.End()

	// Stage 2: influence — the directed influence graph plus the Eq. (3)
	// separation analysis over it.
	stage = root.StartChild("influence")
	initial, err := sys.Graph()
	if err != nil {
		return nil, fmt.Errorf("depint: %w", err)
	}
	res := &Result{
		System:       sys,
		Initial:      initial,
		Strategy:     o.strategy,
		ApproachUsed: o.approach,
	}
	p, idx := initial.Matrix()
	sep, err := influence.SeparationMatrix(p, o.separationOrder)
	if err != nil {
		return nil, fmt.Errorf("depint: separation: %w", err)
	}
	res.Separation, res.SeparationIndex = sep, idx
	if stage != nil {
		stage.SetAttr(obs.Int("nodes", initial.NumNodes()), obs.Int("edges", len(initial.Edges())))
	}
	stage.End()

	// Stage 3: replication expansion.
	stage = root.StartChild("replicate")
	exp, err := cluster.Expand(initial, sys.Jobs())
	if err != nil {
		return nil, fmt.Errorf("depint: %w", err)
	}
	res.Expanded = exp.Graph.Clone()
	if stage != nil {
		stage.SetAttr(obs.Int("replicas", exp.Graph.NumNodes()))
	}
	stage.End()

	// Stage 4: condensation.
	stage = root.StartChild("condense", obs.String("strategy", o.strategy.String()))
	cond := cluster.NewCondenser(exp.Graph, exp.Jobs)
	cond.Observe(stage, o.observer.Metrics())
	target := sys.HWNodes
	switch o.strategy {
	case H1:
		err = cond.ReduceByInfluence(target)
	case H1PairAll:
		err = cond.ReduceByInfluencePairAll(target)
	case H2:
		err = cond.ReduceByMinCut(target)
	case H3:
		err = cond.ReduceBySpheres(target, o.weights)
	case Criticality:
		err = cond.ReduceByCriticality(target)
	case TimingOrder:
		err = cond.ReduceByTiming(target)
	case SeparationGuided:
		err = cond.ReduceBySeparation(target, o.separationOrder)
	case H2SourceTarget:
		err = cond.ReduceByMinCutST(target, o.weights)
	default:
		err = fmt.Errorf("depint: unknown strategy %d", int(o.strategy))
	}
	if err != nil {
		return nil, fmt.Errorf("depint: condense (%s): %w", o.strategy, err)
	}
	res.Condensed = cond.G
	res.Trace = cond.Trace
	if stage != nil {
		stage.SetAttr(obs.Int("clusters", cond.G.NumNodes()), obs.Int("merges", len(cond.Trace)))
	}
	stage.End()

	// Stage 5: mapping.
	stage = root.StartChild("map", obs.String("approach", o.approach.String()))
	platform := o.platform
	if platform == nil {
		platform, err = hw.Complete(sys.HWNodes)
		if err != nil {
			return nil, fmt.Errorf("depint: platform: %w", err)
		}
		// The paper's HW model: homogeneous processors "with access to
		// equivalent sets of resources" — the default platform offers
		// every resource the specification mentions, on every node.
		for _, nodeName := range platform.Nodes() {
			node, nerr := platform.Node(nodeName)
			if nerr != nil {
				return nil, fmt.Errorf("depint: platform: %w", nerr)
			}
			for _, p := range sys.Processes {
				for _, res := range p.Resources {
					node.Resources[res] = true
				}
			}
		}
	}
	req := o.requirements
	if req == nil {
		req = requirementsFromSpec(sys, exp)
	}
	switch o.approach {
	case ByImportance:
		res.Assignment, err = mapping.AssignByImportance(cond.G, platform, o.weights, req)
	case Lexicographic:
		res.Assignment, err = mapping.AssignLexicographic(cond.G, platform, o.lexKinds, req)
	case FCRAware:
		res.Assignment, err = mapping.AssignCriticalityAware(cond.G, platform, req, o.criticalThreshold)
	default:
		err = fmt.Errorf("depint: unknown approach %d", int(o.approach))
	}
	if err != nil {
		return nil, fmt.Errorf("depint: map: %w", err)
	}

	// Optional dilation-refinement pass over the assignment.
	if o.refineMoves != 0 {
		budget := o.refineMoves
		if budget < 0 {
			budget = 0 // refiner default
		}
		refined, moves, rerr := mapping.Refine(res.Assignment, res.Expanded, platform, req, budget)
		if rerr != nil {
			return nil, fmt.Errorf("depint: refine: %w", rerr)
		}
		res.Assignment = refined
		res.RefinementMoves = moves
	}
	if stage != nil {
		stage.SetAttr(obs.Int("refinement_moves", res.RefinementMoves))
	}
	stage.End()

	// Stage 6: evaluation.
	stage = root.StartChild("evaluate")
	res.Report = mapping.Evaluate(res.Expanded, res.Assignment, platform, mapping.EvalConfig{
		CriticalThreshold: o.criticalThreshold,
		Requirements:      req,
	})

	// Analytic reliability (intrinsic fault probability defaults to a
	// uniform placeholder; see Reliability option on faultsim for the
	// measured path).
	mods := make([]metrics.ModuleSpec, 0, len(sys.Processes))
	for _, proc := range sys.Processes {
		mods = append(mods, metrics.ModuleSpec{
			Name:      proc.Name,
			FaultProb: 0.1,
			Replicas:  proc.FT,
			Majority:  proc.FT >= 3,
		})
	}
	res.Reliability, err = metrics.SystemReliability(mods)
	if err != nil {
		return nil, fmt.Errorf("depint: reliability: %w", err)
	}
	if stage != nil {
		stage.SetAttr(
			obs.Float("containment", res.Report.Containment),
			obs.Bool("constraints_ok", res.Report.ConstraintsOK))
	}
	stage.End()
	return res, nil
}

// requirementsFromSpec expands per-process resource requirements onto
// replica names.
func requirementsFromSpec(sys *System, exp *cluster.Expansion) mapping.Requirements {
	req := mapping.Requirements{}
	for _, p := range sys.Processes {
		if len(p.Resources) == 0 {
			continue
		}
		for _, rep := range exp.ReplicasOf[p.Name] {
			req[rep] = append([]string(nil), p.Resources...)
		}
	}
	return req
}

// HWOf flattens the assignment into a base-replica → HW-node map, the form
// the fault-injection campaign consumes.
func (r *Result) HWOf() map[string]string {
	out := map[string]string{}
	for clusterID, node := range r.Assignment {
		for _, m := range graph.Members(clusterID) {
			out[m] = node
		}
	}
	return out
}

// InjectFaults runs a seeded Monte-Carlo fault-injection campaign over the
// integrated system's expanded graph and mapping (experiment E3's
// machinery), returning propagation and containment statistics.
func (r *Result) InjectFaults(trials int, seed uint64) (faultsim.Result, error) {
	return faultsim.Run(faultsim.Campaign{
		Graph:             r.Expanded,
		HWOf:              r.HWOf(),
		Trials:            trials,
		Seed:              seed,
		CriticalThreshold: 10,
	})
}

// SeparationOf returns the Eq. (3) separation between two processes of the
// initial graph.
func (r *Result) SeparationOf(a, b string) (float64, error) {
	ia, ib := -1, -1
	for i, id := range r.SeparationIndex {
		if id == a {
			ia = i
		}
		if id == b {
			ib = i
		}
	}
	if ia < 0 || ib < 0 {
		return 0, fmt.Errorf("depint: unknown process in separation query: %q/%q", a, b)
	}
	return r.Separation[ia][ib], nil
}
