package depint

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/attrs"
	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/sched"
)

func TestIntegrateDefaultsOnPaperExample(t *testing.T) {
	res, err := Integrate(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != H1 || res.ApproachUsed != ByImportance {
		t.Errorf("defaults: strategy=%s approach=%d", res.Strategy, res.ApproachUsed)
	}
	if res.Initial.NumNodes() != 8 || res.Expanded.NumNodes() != 12 {
		t.Errorf("graph sizes: initial=%d expanded=%d",
			res.Initial.NumNodes(), res.Expanded.NumNodes())
	}
	if res.Condensed.NumNodes() != 6 {
		t.Errorf("condensed nodes = %d, want 6", res.Condensed.NumNodes())
	}
	if len(res.Assignment) != 6 {
		t.Errorf("assignment size = %d", len(res.Assignment))
	}
	if !res.Report.ConstraintsOK {
		t.Errorf("violations: %v", res.Report.Violations)
	}
	if len(res.Trace) == 0 {
		t.Error("empty reduction trace")
	}
	// The Fig. 6 clusters appear.
	got := strings.Join(res.Condensed.Nodes(), " ")
	want := "p1c p3b {p1a,p2a} {p1b,p2b} {p3a,p4,p5} {p6,p7,p8}"
	if got != want {
		t.Errorf("clusters:\n got %s\nwant %s", got, want)
	}
	// Reliability: p1 TMR at r=0.9 → 0.972 module reliability.
	if r := res.Reliability.ModuleReliability["p1"]; r < 0.97 || r > 0.975 {
		t.Errorf("p1 reliability = %g", r)
	}
}

func TestIntegrateNilAndInvalid(t *testing.T) {
	if _, err := Integrate(nil); !errors.Is(err, ErrNilSystem) {
		t.Errorf("err = %v, want ErrNilSystem", err)
	}
	bad := &System{Name: "empty", HWNodes: 1}
	if _, err := Integrate(bad); err == nil {
		t.Error("invalid system accepted")
	}
}

func TestIntegrateAllStrategies(t *testing.T) {
	for _, s := range []Strategy{H1, H1PairAll, H2, H3, Criticality, TimingOrder} {
		t.Run(s.String(), func(t *testing.T) {
			res, err := Integrate(PaperExample(), WithStrategy(s))
			if err != nil {
				t.Fatal(err)
			}
			if got := res.Condensed.NumNodes(); got > 6 {
				t.Errorf("condensed nodes = %d, want <= 6", got)
			}
			if !res.Report.ConstraintsOK {
				t.Errorf("violations: %v", res.Report.Violations)
			}
			// Replica separation invariant under every strategy.
			hwOf := res.HWOf()
			for _, pair := range [][2]string{{"p1a", "p1b"}, {"p1b", "p1c"}, {"p2a", "p2b"}, {"p3a", "p3b"}} {
				if hwOf[pair[0]] == hwOf[pair[1]] {
					t.Errorf("%s and %s colocated under %s", pair[0], pair[1], s)
				}
			}
		})
	}
}

func TestIntegrateCriticalityMatchesFig7(t *testing.T) {
	res, err := Integrate(PaperExample(), WithStrategy(Criticality))
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(res.Condensed.Nodes(), " ")
	want := "{p1a,p8} {p1b,p7} {p1c,p5} {p2a,p6} {p2b,p3b} {p3a,p4}"
	if got != want {
		t.Errorf("Fig. 7 clusters:\n got %s\nwant %s", got, want)
	}
}

func TestIntegrateApproachB(t *testing.T) {
	res, err := Integrate(PaperExample(),
		WithApproach(Lexicographic),
		WithLexicographicKinds(attrs.Criticality, attrs.Deadline))
	if err != nil {
		t.Fatal(err)
	}
	if res.ApproachUsed != Lexicographic {
		t.Error("approach not recorded")
	}
	if !res.Report.ConstraintsOK {
		t.Errorf("violations: %v", res.Report.Violations)
	}
}

func TestIntegrateCustomPlatform(t *testing.T) {
	ring, err := hw.Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Integrate(PaperExample(), WithPlatform(ring))
	if err != nil {
		t.Fatal(err)
	}
	// Dilation on a ring exceeds the complete-graph dilation for the same
	// partition (distances >= 1).
	complete, err := Integrate(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.CommCost < complete.Report.CommCost {
		t.Errorf("ring comm cost %g below complete-graph cost %g",
			res.Report.CommCost, complete.Report.CommCost)
	}
}

func TestIntegrateFlightControlWithResources(t *testing.T) {
	res, err := Integrate(FlightControl())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.ConstraintsOK {
		t.Errorf("violations: %v", res.Report.Violations)
	}
	_ = res
}

func TestResultHWOfCoversAllReplicas(t *testing.T) {
	res, err := Integrate(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	hwOf := res.HWOf()
	if len(hwOf) != 12 {
		t.Errorf("HWOf size = %d, want 12", len(hwOf))
	}
	for base, node := range hwOf {
		if node == "" {
			t.Errorf("%s unassigned", base)
		}
	}
}

func TestResultInjectFaults(t *testing.T) {
	res, err := Integrate(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	fi, err := res.InjectFaults(2000, 99)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Trials != 2000 {
		t.Errorf("trials = %d", fi.Trials)
	}
	if rate := fi.EscapeRate(); rate <= 0 || rate >= 1 {
		t.Errorf("escape rate = %g, want in (0,1)", rate)
	}
}

func TestResultHWOfConsistentWithAssignment(t *testing.T) {
	res, err := Integrate(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	hwOf := res.HWOf()
	// Every member of every assigned cluster must map to that cluster's
	// node, and nothing else may appear in the flattened view.
	want := 0
	for clusterID, node := range res.Assignment {
		for _, m := range graph.Members(clusterID) {
			want++
			if hwOf[m] != node {
				t.Errorf("HWOf[%s] = %q, want %q (cluster %s)", m, hwOf[m], node, clusterID)
			}
		}
	}
	if len(hwOf) != want {
		t.Errorf("HWOf has %d entries, assignment members total %d", len(hwOf), want)
	}
	// Replica separation must be visible in the flattened map: p1a/p1b/p1c
	// live on three distinct nodes.
	seen := map[string]string{}
	for _, rep := range []string{"p1a", "p1b", "p1c"} {
		node, ok := hwOf[rep]
		if !ok {
			t.Fatalf("replica %s missing from HWOf", rep)
		}
		if prev, dup := seen[node]; dup {
			t.Errorf("replicas %s and %s share node %s", prev, rep, node)
		}
		seen[node] = rep
	}
}

func TestResultInjectFaultsDeterministicBySeed(t *testing.T) {
	res, err := Integrate(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	a, err := res.InjectFaults(1500, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.InjectFaults(1500, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.TrialsWithEscape != b.TrialsWithEscape || a.CrossNodeTransmissions != b.CrossNodeTransmissions {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
	c, err := res.InjectFaults(1500, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a.TrialsWithEscape == c.TrialsWithEscape && a.CrossNodeTransmissions == c.CrossNodeTransmissions {
		t.Error("different seeds produced identical campaign statistics")
	}
}

func TestResultInjectFaultsRejectsBadTrials(t *testing.T) {
	res, err := Integrate(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	for _, trials := range []int{0, -5} {
		if _, err := res.InjectFaults(trials, 7); err == nil {
			t.Errorf("trials=%d accepted", trials)
		}
	}
}

func TestSeparationQueries(t *testing.T) {
	res, err := Integrate(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	// p1 -> p2 has direct influence 0.7, so separation < 0.3 is impossible
	// upward; exact: 1 - (0.7 + transitive terms) <= 0.3.
	s, err := res.SeparationOf("p1", "p2")
	if err != nil {
		t.Fatal(err)
	}
	if s > 0.3 {
		t.Errorf("separation(p1,p2) = %g, want <= 0.3", s)
	}
	// p7 reaches p4 only through the long weak path p7→p8→p6→p1→p2→p3→p4,
	// so its separation from p4 is near (but below) 1 and far above the
	// strongly coupled (p1,p2) pair's.
	s2, err := res.SeparationOf("p7", "p4")
	if err != nil {
		t.Fatal(err)
	}
	if s2 >= 1 || s2 < 0.99 {
		t.Errorf("separation(p7,p4) = %g, want in [0.99,1)", s2)
	}
	if s2 <= s {
		t.Errorf("weakly coupled pair separation %g not above strongly coupled %g", s2, s)
	}
	if _, err := res.SeparationOf("p1", "zz"); err == nil {
		t.Error("unknown process accepted")
	}
}

func TestSeparationOfEdgeCases(t *testing.T) {
	res, err := Integrate(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	// Unknown on either side (and both sides) must error.
	for _, q := range [][2]string{{"zz", "p1"}, {"p1", "zz"}, {"zz", "yy"}} {
		if _, err := res.SeparationOf(q[0], q[1]); err == nil {
			t.Errorf("SeparationOf(%q,%q) accepted unknown process", q[0], q[1])
		}
	}
	// Self-queries resolve to the matrix diagonal, not an error.
	s, err := res.SeparationOf("p1", "p1")
	if err != nil {
		t.Fatalf("self separation: %v", err)
	}
	if s < 0 || s > 1 {
		t.Errorf("separation(p1,p1) = %g, want in [0,1]", s)
	}
	// Every pairwise value sits in [0,1].
	for _, a := range res.SeparationIndex {
		for _, b := range res.SeparationIndex {
			v, err := res.SeparationOf(a, b)
			if err != nil {
				t.Fatalf("SeparationOf(%s,%s): %v", a, b, err)
			}
			if v < 0 || v > 1 {
				t.Errorf("separation(%s,%s) = %g out of [0,1]", a, b, v)
			}
		}
	}
}

func TestIntegrateWithObserverRecordsStages(t *testing.T) {
	defer sched.Observe(nil) // uninstall the process-global instruments

	o := obs.New()
	if _, err := Integrate(PaperExample(), WithObserver(o)); err != nil {
		t.Fatal(err)
	}
	roots := o.Roots()
	if len(roots) != 1 || roots[0].Name() != "integrate" {
		t.Fatalf("roots = %v, want single integrate span", roots)
	}
	want := []string{"partition", "influence", "replicate", "condense", "map", "evaluate"}
	children := roots[0].Children()
	if len(children) != len(want) {
		t.Fatalf("got %d stage spans, want %d", len(children), len(want))
	}
	var condense *obs.Span
	for i, c := range children {
		if c.Name() != want[i] {
			t.Errorf("stage %d = %q, want %q", i, c.Name(), want[i])
		}
		if c.Name() == "condense" {
			condense = c
		}
	}
	// The worked example condenses via six H1 merges; one has the paper's
	// 0.76 mutual influence (Fig. 5).
	merges, saw76 := 0, false
	for _, ev := range condense.Events() {
		if ev.Name != "merge" {
			continue
		}
		merges++
		for _, a := range ev.Attrs {
			if a.Key == "mutual" && a.Value == 0.76 {
				saw76 = true
			}
		}
	}
	if merges != 6 {
		t.Errorf("condense recorded %d merges, want 6", merges)
	}
	if !saw76 {
		t.Error("no merge event carries the Fig. 5 mutual influence 0.76")
	}
	// The feasibility oracle's counters were installed and ticked.
	snap := o.Metrics().Snapshot()
	calls := int64(-1)
	for _, c := range snap.Counters {
		if c.Name == "sched_feasible_calls_total" {
			calls = c.Value
		}
	}
	if calls <= 0 {
		t.Errorf("sched_feasible_calls_total = %d, want > 0", calls)
	}
}

func TestIntegrateNilObserverIsNoop(t *testing.T) {
	res, err := Integrate(PaperExample(), WithObserver(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignment) == 0 {
		t.Error("nil-observer run produced no assignment")
	}
}

func TestSeparationOrderOption(t *testing.T) {
	r1, err := Integrate(PaperExample(), WithSeparationOrder(1))
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Integrate(PaperExample(), WithSeparationOrder(8))
	if err != nil {
		t.Fatal(err)
	}
	// Higher order accounts for more transitive paths: separation can only
	// shrink or stay.
	s1, err := r1.SeparationOf("p1", "p5")
	if err != nil {
		t.Fatal(err)
	}
	s8, err := r8.SeparationOf("p1", "p5")
	if err != nil {
		t.Fatal(err)
	}
	if s8 > s1 {
		t.Errorf("order-8 separation %g above order-1 %g", s8, s1)
	}
	// p1 has no direct edge to p5; at order 1 they are fully separated,
	// at order >= 2 the p1->p2->p3->p5 path bites.
	if s1 != 1 {
		t.Errorf("order-1 separation(p1,p5) = %g, want 1", s1)
	}
	if s8 >= 1 {
		t.Errorf("order-8 separation(p1,p5) = %g, want < 1", s8)
	}
}

func TestWithRequirementsConflict(t *testing.T) {
	// Demand a resource no default platform node offers.
	_, err := Integrate(PaperExample(), WithRequirements(map[string][]string{
		"p4": {"quantum-accelerator"},
	}))
	if err == nil {
		t.Error("unsatisfiable requirement accepted")
	}
}

func TestStrategyString(t *testing.T) {
	names := map[Strategy]string{
		H1: "H1", H1PairAll: "H1-pair-all", H2: "H2-min-cut",
		H3: "H3-spheres", Criticality: "criticality", TimingOrder: "timing-order",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
	if Strategy(99).String() != "Strategy(99)" {
		t.Error("unknown strategy string")
	}
}

func TestIntegrateUnknownStrategyAndApproach(t *testing.T) {
	if _, err := Integrate(PaperExample(), WithStrategy(Strategy(99))); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := Integrate(PaperExample(), WithApproach(Approach(99))); err == nil {
		t.Error("unknown approach accepted")
	}
}

func TestIntegrateSeparationGuidedStrategy(t *testing.T) {
	res, err := Integrate(PaperExample(), WithStrategy(SeparationGuided))
	if err != nil {
		t.Fatal(err)
	}
	if res.Condensed.NumNodes() != 6 {
		t.Errorf("condensed nodes = %d, want 6", res.Condensed.NumNodes())
	}
	if !res.Report.ConstraintsOK {
		t.Errorf("violations: %v", res.Report.Violations)
	}
	if SeparationGuided.String() != "separation" {
		t.Errorf("strategy name = %q", SeparationGuided)
	}
	// Replica separation invariant.
	hwOf := res.HWOf()
	if hwOf["p1a"] == hwOf["p1b"] || hwOf["p3a"] == hwOf["p3b"] {
		t.Error("replicas colocated under separation-guided reduction")
	}
}

func TestIntegrateWithRefinementOnRing(t *testing.T) {
	ring, err := hw.Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Integrate(PaperExample(), WithPlatform(ring))
	if err != nil {
		t.Fatal(err)
	}
	ring2, err := hw.Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Integrate(PaperExample(), WithPlatform(ring2), WithRefinement(-1))
	if err != nil {
		t.Fatal(err)
	}
	if refined.Report.CommCost > plain.Report.CommCost {
		t.Errorf("refined comm cost %g above unrefined %g",
			refined.Report.CommCost, plain.Report.CommCost)
	}
	if !refined.Report.ConstraintsOK {
		t.Errorf("violations after refinement: %v", refined.Report.Violations)
	}
}

func TestSummaryRendersDossier(t *testing.T) {
	res, err := Integrate(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary()
	for _, want := range []string{
		"system \"icdcs98-worked-example\"",
		"strategy H1",
		"reduction trace:",
		"p1a + p2a (mutual 1.2)",
		"mapping (HW node <- members):",
		"constraints satisfied:    true",
		"influence cycles",
		"two-hop feedback 0.350",
		"weakest:",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary missing %q:\n%s", want, s)
		}
	}
}

func TestMappingTableSorted(t *testing.T) {
	res, err := Integrate(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	rows := res.MappingTable()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Node >= rows[i].Node {
			t.Errorf("rows not sorted: %v", rows)
		}
	}
	total := 0
	for _, r := range rows {
		total += len(r.Members)
	}
	if total != 12 {
		t.Errorf("total members = %d, want 12", total)
	}
}

func TestIntegrateBrakeByWireAllStrategies(t *testing.T) {
	for _, s := range []Strategy{H1, H2, H3, Criticality, TimingOrder, SeparationGuided} {
		t.Run(s.String(), func(t *testing.T) {
			res, err := Integrate(BrakeByWire(), WithStrategy(s))
			if err != nil {
				t.Fatalf("brake-by-wire under %s: %v", s, err)
			}
			if !res.Report.ConstraintsOK {
				t.Errorf("violations: %v", res.Report.Violations)
			}
			hwOf := res.HWOf()
			for _, pair := range [][2]string{
				{"pedal-sensora", "pedal-sensorb"},
				{"stability-ctla", "stability-ctlb"},
			} {
				if hwOf[pair[0]] == hwOf[pair[1]] {
					t.Errorf("replicas %v colocated", pair)
				}
			}
		})
	}
}

func TestIntegrateIndustrialControlTMRSeparation(t *testing.T) {
	res, err := Integrate(IndustrialControl())
	if err != nil {
		t.Fatal(err)
	}
	hwOf := res.HWOf()
	nodes := map[string]bool{}
	for _, rep := range []string{"safety-interlocka", "safety-interlockb", "safety-interlockc"} {
		n := hwOf[rep]
		if n == "" {
			t.Fatalf("%s unassigned", rep)
		}
		if nodes[n] {
			t.Errorf("TMR replicas share node %s", n)
		}
		nodes[n] = true
	}
	// The TMR module dominates the reliability report.
	if r := res.Reliability.ModuleReliability["safety-interlock"]; r < 0.97 {
		t.Errorf("safety interlock reliability = %g", r)
	}
}

func TestIntegrateH2SourceTarget(t *testing.T) {
	res, err := Integrate(PaperExample(), WithStrategy(H2SourceTarget))
	if err != nil {
		t.Fatal(err)
	}
	if res.Condensed.NumNodes() != 6 || !res.Report.ConstraintsOK {
		t.Errorf("nodes=%d ok=%v violations=%v",
			res.Condensed.NumNodes(), res.Report.ConstraintsOK, res.Report.Violations)
	}
	if H2SourceTarget.String() != "H2-source-target" {
		t.Error("strategy name wrong")
	}
}

func TestCompareStrategiesAll(t *testing.T) {
	cmp, err := CompareStrategies(PaperExample(), CompareConfig{InjectTrials: 3000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Outcomes) != 8 {
		t.Fatalf("outcomes = %d, want 8", len(cmp.Outcomes))
	}
	ok := 0
	for _, o := range cmp.Outcomes {
		if o.Err == nil {
			ok++
			if o.Escape <= 0 || o.Escape >= 1 {
				t.Errorf("%s escape = %g", o.Strategy, o.Escape)
			}
		}
	}
	if ok < 6 {
		t.Errorf("only %d strategies succeeded", ok)
	}
	best := cmp.Best()
	if best == nil {
		t.Fatal("no best outcome")
	}
	// H1 should be the containment winner on the worked example.
	if best.Strategy != H1 {
		t.Errorf("best = %s (containment %.3f), expected H1",
			best.Strategy, best.Result.Report.Containment)
	}
	tbl := cmp.Table()
	for _, want := range []string{"strategy", "H1", "criticality", "0."} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}

func TestCompareStrategiesNilAndSubset(t *testing.T) {
	if _, err := CompareStrategies(nil, CompareConfig{}); !errors.Is(err, ErrNilSystem) {
		t.Errorf("err = %v", err)
	}
	cmp, err := CompareStrategies(PaperExample(), CompareConfig{
		Strategies: []Strategy{Criticality},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Outcomes) != 1 || cmp.Outcomes[0].Strategy != Criticality {
		t.Errorf("outcomes = %+v", cmp.Outcomes)
	}
	if cmp.Outcomes[0].Escape != 0 {
		t.Error("escape recorded without injection")
	}
}

func TestComparisonBestAllFailed(t *testing.T) {
	cmp := Comparison{Outcomes: []StrategyOutcome{{Strategy: H1, Err: ErrNilSystem}}}
	if cmp.Best() != nil {
		t.Error("Best over failures should be nil")
	}
	if !strings.Contains(cmp.Table(), "failed") {
		t.Error("table missing failure row")
	}
}

func TestIntegrateFCRAwareApproach(t *testing.T) {
	// Platform with 3 cabinets of 2 nodes each: FCR-aware placement keeps
	// the p1 replicas (critical, C=15) in distinct cabinets.
	p := hw.NewPlatform()
	for i := 1; i <= 6; i++ {
		name := "n" + string(rune('0'+i))
		fcr := "cab" + string(rune('0'+(i+1)/2))
		if err := p.AddNode(hw.Node{Name: name, FCR: fcr}); err != nil {
			t.Fatal(err)
		}
	}
	names := p.Nodes()
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			if err := p.Link(names[i], names[j], 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := Integrate(PaperExample(), WithPlatform(p), WithApproach(FCRAware))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.ConstraintsOK {
		t.Fatalf("violations: %v", res.Report.Violations)
	}
	hwOf := res.HWOf()
	fcrOf := func(base string) string {
		node, err := p.Node(hwOf[base])
		if err != nil {
			t.Fatal(err)
		}
		return node.FCR
	}
	fcrs := map[string]bool{}
	for _, rep := range []string{"p1a", "p1b", "p1c"} {
		f := fcrOf(rep)
		if fcrs[f] {
			t.Errorf("p1 replicas share FCR %s", f)
		}
		fcrs[f] = true
	}
	if res.Report.CriticalPairsSharedFCR > res.Report.CriticalPairsColocated+3 {
		t.Errorf("shared-FCR pairs = %d vs colocated %d",
			res.Report.CriticalPairsSharedFCR, res.Report.CriticalPairsColocated)
	}
}

func TestMeasureInfluenceClosesLoop(t *testing.T) {
	m, err := MeasureInfluence(PaperExample(), 50000, 17)
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanAbsError > 0.03 {
		t.Errorf("mean abs error = %g", m.MeanAbsError)
	}
	if len(m.System.Influences) != len(PaperExample().Influences) {
		t.Errorf("measured edges = %d, want %d",
			len(m.System.Influences), len(PaperExample().Influences))
	}
	// The measured system integrates and yields the same cluster count and
	// similar containment.
	truth, err := Integrate(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	meas, err := Integrate(m.System)
	if err != nil {
		t.Fatal(err)
	}
	if meas.Condensed.NumNodes() != truth.Condensed.NumNodes() {
		t.Errorf("cluster counts differ: %d vs %d",
			meas.Condensed.NumNodes(), truth.Condensed.NumNodes())
	}
	if d := meas.Report.Containment - truth.Report.Containment; d > 0.1 || d < -0.1 {
		t.Errorf("containment drifted: %g vs %g",
			meas.Report.Containment, truth.Report.Containment)
	}
}

func TestMeasureInfluenceValidation(t *testing.T) {
	if _, err := MeasureInfluence(nil, 100, 1); !errors.Is(err, ErrNilSystem) {
		t.Errorf("err = %v", err)
	}
	if _, err := MeasureInfluence(PaperExample(), 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestFacadeHierarchyWorkflow(t *testing.T) {
	h := NewHierarchy()
	if _, err := h.AddProcess("nav", attrs.Set{}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddTask("nav", "guidance", attrs.Set{}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddProcedure("guidance", "kalman", attrs.Set{}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddProcedure("guidance", "waypoint", attrs.Set{}, true); err != nil {
		t.Fatal(err)
	}
	// R2 through the facade.
	if _, err := h.Group("t2", []string{"kalman"}); !errors.Is(err, ErrRuleR2) {
		t.Errorf("err = %v, want ErrRuleR2", err)
	}
	c := NewCertifier(h)
	c.CertifyAll()
	if err := c.RegisterCheck("kalman", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if failures := c.ModifyAndVerify("kalman"); len(failures) != 0 {
		t.Errorf("failures: %v", failures)
	}
	if err := c.Status("kalman"); err != nil {
		t.Errorf("status: %v", err)
	}
}

func TestAnalyzeTradeoffPaperExample(t *testing.T) {
	res, err := AnalyzeTradeoff(PaperExample(), TradeoffConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 12 {
		t.Fatalf("levels = %d, want 12 (replicas down to 1)", len(res.Levels))
	}
	// Floor matches E5's finding (3 or 4).
	if res.Floor < 3 || res.Floor > 4 {
		t.Errorf("floor = %d", res.Floor)
	}
	// Recommendation lies between the floor and the fully-split level.
	if res.Recommended < res.Floor || res.Recommended > 12 {
		t.Errorf("recommended = %d", res.Recommended)
	}
	// Containment grows monotonically with integration over feasible rows.
	var prev float64 = -1
	for _, l := range res.Levels {
		if !l.Feasible {
			continue
		}
		if l.Containment < prev-1e-9 {
			t.Errorf("containment fell at target %d: %g -> %g", l.Target, prev, l.Containment)
		}
		prev = l.Containment
	}
	tbl := res.Table()
	for _, want := range []string{"target", "floor=", "recommended="} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q", want)
		}
	}
	// The caller's spec is untouched.
	if PaperExample().HWNodes != 6 {
		t.Error("sweep mutated the canonical example")
	}
}

func TestAnalyzeTradeoffValidation(t *testing.T) {
	if _, err := AnalyzeTradeoff(nil, TradeoffConfig{}); !errors.Is(err, ErrNilSystem) {
		t.Errorf("err = %v", err)
	}
	bad := &System{Name: "x", HWNodes: 1}
	if _, err := AnalyzeTradeoff(bad, TradeoffConfig{}); err == nil {
		t.Error("invalid system accepted")
	}
}

func TestAnalyzeTradeoffBounds(t *testing.T) {
	res, err := AnalyzeTradeoff(PaperExample(), TradeoffConfig{MaxTarget: 8, MinTarget: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 4 {
		t.Errorf("levels = %d, want 4", len(res.Levels))
	}
	if res.Levels[0].Target != 8 || res.Levels[3].Target != 5 {
		t.Errorf("sweep bounds wrong: %+v", res.Levels)
	}
}
