package depint_test

import (
	"fmt"
	"log"

	"repro"
)

// Example demonstrates the minimal integration pipeline on the paper's
// worked example: Table 1's processes reduce onto six processors under
// heuristic H1.
func Example() {
	res, err := depint.Integrate(depint.PaperExample())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("clusters:", res.Condensed.NumNodes())
	fmt.Printf("containment: %.3f\n", res.Report.Containment)
	fmt.Println("constraints ok:", res.Report.ConstraintsOK)
	// Output:
	// clusters: 6
	// containment: 0.391
	// constraints ok: true
}

// ExampleIntegrate_criticality reproduces Fig. 7: the criticality-driven
// reduction pairs the most critical process with the least critical one,
// resolving the replica conflict exactly as the paper narrates.
func ExampleIntegrate_criticality() {
	res, err := depint.Integrate(depint.PaperExample(),
		depint.WithStrategy(depint.Criticality))
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range res.Condensed.Nodes() {
		fmt.Println(c)
	}
	// Output:
	// {p1a,p8}
	// {p1b,p7}
	// {p1c,p5}
	// {p2a,p6}
	// {p2b,p3b}
	// {p3a,p4}
}

// ExampleResult_InjectFaults measures containment empirically with seeded
// Monte-Carlo fault injection.
func ExampleResult_InjectFaults() {
	res, err := depint.Integrate(depint.BrakeByWire())
	if err != nil {
		log.Fatal(err)
	}
	inj, err := res.InjectFaults(20000, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("trials:", inj.Trials)
	fmt.Println("escape rate in (0,1):", inj.EscapeRate() > 0 && inj.EscapeRate() < 1)
	// Output:
	// trials: 20000
	// escape rate in (0,1): true
}

// ExampleAnalyzeTradeoff answers the paper's closing question for the
// worked example: sweeping integration levels finds the feasibility floor
// and recommends the knee of the containment curve — which coincides with
// the paper's own six-processor choice.
func ExampleAnalyzeTradeoff() {
	res, err := depint.AnalyzeTradeoff(depint.PaperExample(), depint.TradeoffConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("floor:", res.Floor)
	fmt.Println("recommended:", res.Recommended)
	// Output:
	// floor: 4
	// recommended: 6
}

// ExampleCompareStrategies shows the tradeoff space across condensation
// heuristics: the influence-driven H1 wins containment on the worked
// example.
func ExampleCompareStrategies() {
	cmp, err := depint.CompareStrategies(depint.PaperExample(), depint.CompareConfig{
		Strategies: []depint.Strategy{depint.H1, depint.Criticality},
	})
	if err != nil {
		log.Fatal(err)
	}
	best := cmp.Best()
	fmt.Println("best:", best.Strategy)
	fmt.Printf("containment: %.3f\n", best.Result.Report.Containment)
	// Output:
	// best: H1
	// containment: 0.391
}
