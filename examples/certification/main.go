// Certification walks a software-evolution scenario through the
// framework's V&V discipline: an avionics hierarchy is certified, modules
// are modified release by release, and rule R5 bounds what must be
// retested each time ("Whenever a FCM is modified, its parent FCM, and
// only its parent, also needs to be tested, including the interfaces with
// its siblings").
//
// It also demonstrates the rules' teeth: a cross-task reuse attempt is
// rejected (R2), resolved by cloning the stateless procedure, and a
// cross-process merge is rejected until the parents integrate (R4).
//
// Run with: go run ./examples/certification
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/attrs"
	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/verify"
)

func main() {
	hs := spec.ExampleHierarchy()
	h, err := hs.Build()
	if err != nil {
		log.Fatal(err)
	}
	cert := verify.NewCertifier(h)
	cert.CertifyAll()
	fmt.Printf("initial certification of %q: %d FCMs, %d sibling interfaces\n\n",
		hs.Name, cert.FCMsRetested, cert.InterfacesRetested)

	// Release 1: the Kalman filter is tuned.
	fcms, interfaces, err := h.RetestSet("kalman")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("release 1: modify kalman")
	fmt.Printf("  retest FCMs: %s\n", strings.Join(fcms, ", "))
	fmt.Printf("  retest interfaces: %s\n", strings.Join(interfaces, ", "))
	if err := cert.Modify("kalman"); err != nil {
		log.Fatal(err)
	}

	// Release 2: display wants to reuse the waypoint procedure. R2 forbids
	// sharing; the supported route is cloning with separate compilation.
	fmt.Println("\nrelease 2: display wants to reuse 'waypoint'")
	if _, err := h.Group("shared", []string{"waypoint"}); err != nil {
		fmt.Printf("  direct reuse rejected: %v\n", err)
	}
	clone, err := h.CloneProcedure("waypoint", "render", "waypoint#render")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  resolved by cloning: %s under %s\n", clone.Name(), clone.Parent().Name())
	if err := cert.Modify("waypoint#render"); err != nil {
		log.Fatal(err)
	}

	// Release 3: guidance and render need to merge. Their parents differ,
	// so R4 forces the processes to integrate first.
	fmt.Println("\nrelease 3: merge 'guidance' with 'render'")
	if _, err := h.Merge("gr", []string{"guidance", "render"}); err != nil {
		fmt.Printf("  direct merge rejected: %v\n", err)
	}
	merged, err := h.MergeAcross("nav+disp", "gr", []string{"guidance", "render"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  resolved by integrating parents first: %s now under %s\n",
		merged.Name(), merged.Parent().Name())
	if err := h.Validate(); err != nil {
		log.Fatal(err)
	}

	// The combined process carries the most stringent attributes.
	nd, err := h.Lookup("nav+disp")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  combined process criticality: %g (max of members)\n",
		nd.Attrs().Value(attrs.Criticality))

	// Cumulative cost of the whole campaign vs naive full retests.
	model, err := verify.CompareCosts(
		func() (*core.Hierarchy, error) { return spec.ExampleHierarchy().Build() },
		[]string{"kalman", "pid", "blit", "kalman", "layout"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfive further modifications, R5 vs naive retesting:\n")
	fmt.Printf("  R5:    %d FCM + %d interface retests\n", model.R5FCMs, model.R5Interfaces)
	fmt.Printf("  naive: %d FCM + %d interface retests\n", model.NaiveFCMs, model.NaiveInterfaces)
	fmt.Printf("  saved: %.0f%%\n", model.Savings()*100)
}
