// Faultinjection compares the fault containment achieved by each
// condensation heuristic, on the paper's worked example and on a larger
// synthetic avionics suite, using seeded Monte-Carlo injection.
//
// This is the measurement loop the paper marks as its continuing work:
// "developing techniques to determine and measure actual parameters such
// as 'influence' across FCMs is crucial for the techniques to be applied
// to real systems."
//
// Run with: go run ./examples/faultinjection
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/experiments"
	"repro/internal/faultsim"
	"repro/internal/obs"
)

func main() {
	const trials = 30000

	fmt.Println("== worked example (8 processes, 12 replicas, 6 HW nodes) ==")
	compare(depint.PaperExample(), trials)

	synth, err := experiments.Synthesize(experiments.SynthConfig{
		Processes:          36,
		EdgesPerNode:       2.5,
		ReplicatedFraction: 0.25,
		Seed:               2024,
		HWNodes:            12,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== synthetic suite (%d processes, %d replicas, %d HW nodes) ==\n",
		len(synth.Processes), synth.TotalReplicas(), synth.HWNodes)
	compare(synth, trials)

	fmt.Println("\nreading the table: escape-rate is the fraction of injected faults")
	fmt.Println("that reached an FCM on a different processor; the influence-driven")
	fmt.Println("heuristics (H1/H2/H3) should sit below the criticality-driven and")
	fmt.Println("timing-driven reductions, which optimise for different goals.")

	fmt.Println("\n== campaign progress: H1 on the worked example, observed ==")
	observed(depint.PaperExample(), trials)

	fmt.Println("\n== correlated vs independent faults: H1 on the worked example ==")
	correlated(depint.PaperExample(), trials)
}

// correlated contrasts the paper's single-fault model with the
// common-mode model on the p1..p8 example: when every FCM colocated with
// the seed faults together, the single-fault containment argument of
// Eq. (1)-(4) no longer bounds the damage — the whole seed node's
// criticality is lost up front and more mass escapes across HW
// boundaries.
func correlated(sys *depint.System, trials int) {
	res, err := depint.Integrate(sys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fault model   escape-rate  mean-affected  escaped-crit/trial")
	for _, m := range []faultsim.FaultModel{faultsim.SingleFault(), faultsim.Correlated()} {
		inj, err := faultsim.Run(faultsim.Campaign{
			Graph:             res.Expanded,
			HWOf:              res.HWOf(),
			Trials:            trials,
			Seed:              7,
			CriticalThreshold: 10,
			Model:             m,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s  %11.4f  %13.3f  %18.3f\n",
			m.Name(), inj.EscapeRate(), inj.MeanAffected(), inj.CriticalityWeightedEscapeRate())
	}
	fmt.Println("\nthe correlated row injects every FCM sharing the seed's processor at")
	fmt.Println("once (a power-supply or hypervisor failure), so more criticality-")
	fmt.Println("weighted fault mass escapes the node than under independent faults.")
}

// observed runs one instrumented campaign and prints the telemetry
// checkpoints emitted every 10% of trials, showing the running escape-rate
// estimator converge toward its final value.
func observed(sys *depint.System, trials int) {
	o := obs.New()
	res, err := depint.Integrate(sys, depint.WithObserver(o))
	if err != nil {
		log.Fatal(err)
	}
	span := o.StartSpan("campaign")
	inj, err := faultsim.Run(faultsim.Campaign{
		Graph:             res.Expanded,
		HWOf:              res.HWOf(),
		Trials:            trials,
		Seed:              7,
		CriticalThreshold: 10,
		Span:              span,
		Metrics:           o.Metrics(),
	})
	span.End()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  trials  escape-rate  mean-affected   (running estimates)")
	for _, ev := range span.Events() {
		if ev.Name != "checkpoint" {
			continue
		}
		attrs := map[string]any{}
		for _, a := range ev.Attrs {
			attrs[a.Key] = a.Value
		}
		fmt.Printf("  %6d  %11.4f  %13.4f\n",
			attrs["trials_done"], attrs["escape_rate"], attrs["mean_affected"])
	}
	fmt.Printf("   final  %11.4f  %13.4f\n", inj.EscapeRate(), inj.MeanAffected())
}

func compare(sys *depint.System, trials int) {
	fmt.Println("strategy      escape-rate  cross-transmissions  mean-crit-loss")
	for _, s := range []depint.Strategy{
		depint.H1, depint.H1PairAll, depint.H2, depint.H3,
		depint.Criticality, depint.TimingOrder,
	} {
		res, err := depint.Integrate(sys, depint.WithStrategy(s))
		if err != nil {
			fmt.Printf("%-12s  unable to integrate: %v\n", s, err)
			continue
		}
		inj, err := res.InjectFaults(trials, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s  %11.4f  %19d  %14.2f\n",
			s, inj.EscapeRate(), inj.CrossNodeTransmissions, inj.MeanCriticalityLoss())
	}
}
