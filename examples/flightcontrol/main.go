// Flightcontrol reproduces the paper's motivating scenario: "the
// integration for flight control SW involves display, sensor, collision
// avoidance, and navigation SW onto a shared platform" (the AIMS-style
// integrated modular avionics of the Boeing 777 the paper cites).
//
// It compares the influence-driven (Approach A) and criticality-driven
// (Approach B) integrations of the same avionics suite, printing the
// mapping and the §5.3 goodness report for each, then verifies at runtime
// — with the discrete-event execution simulator — that a timing fault in
// the display partition cannot take down collision avoidance under the
// preemptive (budget-enforcing) policy the integration assumes.
//
// Run with: go run ./examples/flightcontrol
package main

import (
	"fmt"
	"log"
	"math"
	"sort"
	"strings"

	"repro"
	"repro/internal/exec"
	"repro/internal/graph"
)

func main() {
	sys := depint.FlightControl()

	for _, cfg := range []struct {
		label    string
		strategy depint.Strategy
	}{
		{"Approach A (influence-driven, H1)", depint.H1},
		{"Approach B (criticality-driven)", depint.Criticality},
	} {
		res, err := depint.Integrate(sys,
			depint.WithStrategy(cfg.strategy),
			depint.WithCriticalThreshold(12))
		if err != nil {
			log.Fatalf("%s: %v", cfg.label, err)
		}
		fmt.Printf("=== %s ===\n", cfg.label)
		printMapping(res)
		fmt.Printf("containment %.3f | max node criticality %.0f | critical pairs colocated %d\n\n",
			res.Report.Containment, res.Report.MaxNodeCriticality,
			res.Report.CriticalPairsColocated)
	}

	// Runtime check: the display partition hosts a runaway task; collision
	// avoidance shares the platform. Under the preemptive, budget-enforced
	// policy the framework assumes, the runaway is killed and the critical
	// task meets its deadline.
	fmt.Println("=== runtime timing-fault drill (display partition runs away) ===")
	tasks := []exec.Task{
		{Name: "display-render", Process: "display", Processor: "cpu0",
			Release: 0, Deadline: 40, Budget: 8, Demand: math.Inf(1)},
		{Name: "ca-detect", Process: "collision-avoidance", Processor: "cpu0",
			Release: 2, Deadline: 30, Budget: 6, SendsTo: []string{"ca-resolve"}},
		{Name: "ca-resolve", Process: "collision-avoidance", Processor: "cpu0",
			Release: 10, Deadline: 50, Budget: 6, WaitsFor: []string{"ca-detect"}},
	}
	for _, policy := range []exec.Policy{exec.NonPreemptive, exec.Preemptive} {
		rep, err := exec.Run(exec.Config{Policy: policy, Tasks: tasks, Horizon: 500})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s misses: %v\n", policy, rep.Misses())
		if policy == exec.Preemptive {
			fmt.Print(rep.Gantt(48))
		}
	}
}

func printMapping(res *depint.Result) {
	type row struct{ node, members string }
	rows := make([]row, 0, len(res.Assignment))
	for clusterID, node := range res.Assignment {
		rows = append(rows, row{node, strings.Join(graph.Members(clusterID), ", ")})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].node < rows[j].node })
	for _, r := range rows {
		fmt.Printf("  %-5s <- %s\n", r.node, r.members)
	}
}
