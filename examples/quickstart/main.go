// Quickstart: integrate a small mixed-criticality system onto a shared
// platform in a dozen lines.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Describe the system: three functions of mixed criticality, the
	// critical one duplex-replicated, with influence edges quantifying
	// fault propagation between them (Eq. 2 values).
	sys := &depint.System{
		Name: "quickstart",
		Processes: []depint.Process{
			{Name: "control", Criticality: 12, FT: 2, EST: 0, TCD: 50, CT: 10},
			{Name: "sensing", Criticality: 8, FT: 1, EST: 0, TCD: 40, CT: 8},
			{Name: "logging", Criticality: 1, FT: 1, EST: 10, TCD: 100, CT: 15},
		},
		Influences: []depint.Influence{
			{From: "sensing", To: "control", Weight: 0.5, Factors: []string{"message-passing"}},
			{From: "control", To: "logging", Weight: 0.2, Factors: []string{"shared-memory"}},
		},
		HWNodes: 3,
	}

	// Run the whole pipeline: replicate, condense (H1), map, evaluate.
	res, err := depint.Integrate(sys)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("clusters and their processors:")
	for _, clusterID := range res.Condensed.Nodes() {
		fmt.Printf("  %-22s -> %s\n", clusterID, res.Assignment[clusterID])
	}
	fmt.Printf("\ncontainment: %.2f of total influence stays on-node\n", res.Report.Containment)
	fmt.Printf("constraints satisfied: %v\n", res.Report.ConstraintsOK)

	// Quantify: inject 10k faults and watch how many cross HW boundaries.
	inj, err := res.InjectFaults(10000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault injection: %.1f%% of faults escaped their HW node\n",
		inj.EscapeRate()*100)
}
