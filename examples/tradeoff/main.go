// Tradeoff investigates the paper's closing question — "Is there a limit
// to the level of integration one should design for?" — by sweeping the
// number of target HW nodes downward and watching three quantities:
//
//   - containment (cross-node influence): improves with more integration;
//   - schedulability: eventually breaks (timing windows overfill);
//   - replica separation: sets a hard floor (FT=3 needs >= 3 nodes).
//
// Run with: go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/experiments"
	"repro/internal/hw"
)

func main() {
	fmt.Println("== integration-level sweep on the worked example ==")
	r, err := experiments.E5(10000, 1998)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(r.Text)
	fmt.Printf("integration floor found at %d HW nodes\n\n", r.Floor)

	// The same sweep through the public analyzer, with its knee-based
	// recommendation (the "later study" the paper defers).
	fmt.Println("== public tradeoff analyzer ==")
	ta, err := depint.AnalyzeTradeoff(depint.PaperExample(), depint.TradeoffConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ta.Table())
	fmt.Println()

	// The same sweep through the public API, on the flight-control suite,
	// including the HW-resource complication the paper mentions: the
	// framebuffer exists on a single processor.
	fmt.Println("== flight-control suite, framebuffer on one processor only ==")
	sys := depint.FlightControl()
	for nodes := 7; nodes >= 2; nodes-- {
		sys.HWNodes = nodes
		platform, err := hw.Complete(nodes)
		if err != nil {
			log.Fatal(err)
		}
		// The framebuffer exists on hw1 only, the radio on hw2 only.
		fb, err := platform.Node("hw1")
		if err != nil {
			log.Fatal(err)
		}
		fb.Resources["framebuffer"] = true
		radio, err := platform.Node("hw2")
		if err != nil {
			log.Fatal(err)
		}
		radio.Resources["radio"] = true

		res, err := depint.Integrate(sys, depint.WithPlatform(platform))
		if err != nil {
			fmt.Printf("  %d nodes: infeasible — %v\n", nodes, err)
			continue
		}
		fmt.Printf("  %d nodes: OK   containment %.3f, comm cost %.2f\n",
			nodes, res.Report.Containment, res.Report.CommCost)
	}
	fmt.Println("\nthe sweep shows the tradeoff: every removed processor buys")
	fmt.Println("containment until replica separation, timing windows, or a")
	fmt.Println("singleton resource make the next integration step impossible.")
}
