package depint

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/spec"
)

// FuzzIntegrate drives the whole pipeline with decoder-accepted systems
// and arbitrary strategy/approach selectors. The contract under test is
// the resilience layer's: Integrate never panics — every failure comes
// back as an error — and a success carries a complete result. Inputs are
// capped small and the run deadlined so the fuzzer spends its budget on
// shapes, not on giant instances.
func FuzzIntegrate(f *testing.F) {
	var seed bytes.Buffer
	if err := PaperExample().Encode(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String(), uint8(0), uint8(0), uint8(0))
	f.Add(seed.String(), uint8(2), uint8(1), uint8(1)) // H2 + Lexicographic, serial
	f.Add(seed.String(), uint8(4), uint8(2), uint8(4)) // Criticality + FCRAware, 4 workers
	f.Add(seed.String(), uint8(200), uint8(200), uint8(255))
	f.Add(`{"name":"x","processes":[{"name":"a","criticality":1,"ft":1,"est":0,"tcd":10,"ct":5},`+
		`{"name":"b","criticality":5,"ft":2,"est":0,"tcd":10,"ct":5}],`+
		`"influences":[{"from":"a","to":"b","weight":0.5}],"hw_nodes":2}`, uint8(1), uint8(0), uint8(7))

	f.Fuzz(func(t *testing.T, data string, strat, approach, workers uint8) {
		sys, err := spec.Decode(strings.NewReader(data))
		if err != nil {
			return
		}
		// Keep instances small: the fuzzer should explore shapes, not
		// spend the budget condensing big graphs.
		if len(sys.Processes) > 32 || len(sys.Influences) > 128 {
			return
		}
		replicas := 0
		for _, p := range sys.Processes {
			replicas += p.FT
		}
		if replicas > 64 {
			return
		}
		// Worker counts are fuzzed across the full byte range: the influence
		// stage must clamp oversized pools and produce the same bits at any
		// width (TestWithWorkersBitIdentical proves equality; here the claim
		// is no panic and no incomplete success at odd widths).
		res, err := Integrate(sys,
			WithStrategy(Strategy(strat)),
			WithApproach(Approach(approach)),
			WithWorkers(int(workers)),
			WithTimeout(2*time.Second))
		if err != nil {
			return // classified failure is fine; a panic is the bug
		}
		if res == nil || res.Assignment == nil || res.Condensed == nil {
			t.Fatalf("success with incomplete result: %+v", res)
		}
		for _, id := range res.Condensed.Nodes() {
			if res.Assignment[id] == "" {
				t.Fatalf("cluster %q has no HW node in a successful result", id)
			}
		}
	})
}
