package depint

import (
	"repro/internal/core"
	"repro/internal/verify"
)

// The composition-rules half of the framework (§3–§4): building the FCM
// hierarchy, composing under rules R1–R5, and running the certification
// workflow. These aliases export the internal implementations as part of
// the public API.
type (
	// Hierarchy is a forest of FCM trees with the composition rules
	// enforced structurally.
	Hierarchy = core.Hierarchy
	// FCM is one fault containment module.
	FCM = core.FCM
	// Certifier tracks certification state and applies R5's
	// parent-only recertification.
	Certifier = verify.Certifier
	// Check is an executable verification test attached to an FCM or a
	// sibling interface.
	Check = verify.Check
)

// Hierarchy levels (Fig. 1).
const (
	ProcedureLevel = core.ProcedureLevel
	TaskLevel      = core.TaskLevel
	ProcessLevel   = core.ProcessLevel
)

// Rule-violation errors, re-exported so callers can errors.Is against
// them without reaching into internal packages.
var (
	ErrRuleR1       = core.ErrRuleR1
	ErrRuleR2       = core.ErrRuleR2
	ErrRuleR3       = core.ErrRuleR3
	ErrRuleR4       = core.ErrRuleR4
	ErrNotStateless = core.ErrNotStateless
	ErrStaleCert    = verify.ErrStale
	ErrNotCertified = verify.ErrNotCertified
	ErrCheckFailed  = verify.ErrCheckFailed
)

// NewHierarchy returns an empty FCM hierarchy.
func NewHierarchy() *Hierarchy { return core.NewHierarchy() }

// NewCertifier builds a certification ledger over a hierarchy.
func NewCertifier(h *Hierarchy) *Certifier { return verify.NewCertifier(h) }
