// Package attrs implements the FCM attribute system of the dependability-
// driven integration framework (Suri, Ghosh, Marlowe — ICDCS 1998, §4.3).
//
// Every fault containment module (FCM) carries a set of attributes such as
// criticality, fault-tolerance degree, timing constraints and throughput.
// When FCMs are integrated, their attributes combine: the resulting FCM
// usually takes the most stringent component value (max criticality, min
// deadline) or an aggregate (sum of throughputs). Each node also has an
// importance value, a weighted sum of its attribute values with predefined
// static relative weights (§5.1).
package attrs

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/stage"
)

// Kind identifies a standard attribute of an FCM.
type Kind int

// Standard attribute kinds. The set mirrors the attributes the paper uses
// in its worked example (Table 1) plus those it names in passing
// (throughput, communication rate, security, memory).
const (
	// Criticality is the application-assigned importance of the module.
	// Combination: max (most stringent).
	Criticality Kind = iota + 1
	// FaultTolerance is the required replication degree (FT); FT=3 means
	// TMR. Combination: max.
	FaultTolerance
	// EarliestStart (EST) is the earliest start time of the module's
	// single-shot job. Combination: min (the merged job may begin when the
	// earliest constituent may).
	EarliestStart
	// Deadline (TCD, task completion deadline). Combination: min.
	Deadline
	// ComputeTime (CT) is the worst-case computation time.
	// Combination: sum.
	ComputeTime
	// Throughput is the required processing throughput. Combination: sum.
	Throughput
	// CommRate is the required communication rate. Combination: sum.
	CommRate
	// Security is the information-security level. Combination: max.
	Security
	// Memory is the memory footprint. Combination: sum.
	Memory
	numKinds = iota // internal sentinel: count of defined kinds
)

// String returns the conventional short name of the attribute kind.
func (k Kind) String() string {
	switch k {
	case Criticality:
		return "C"
	case FaultTolerance:
		return "FT"
	case EarliestStart:
		return "EST"
	case Deadline:
		return "TCD"
	case ComputeTime:
		return "CT"
	case Throughput:
		return "TP"
	case CommRate:
		return "CR"
	case Security:
		return "SEC"
	case Memory:
		return "MEM"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Valid reports whether k is one of the defined attribute kinds.
func (k Kind) Valid() bool { return k >= Criticality && int(k) <= numKinds }

// Policy is the combination policy applied to an attribute when two FCMs
// are integrated (§4.3: "the resulting FCM will usually have the most
// stringent component values … or an aggregate").
type Policy int

// Combination policies.
const (
	// Max takes the larger value (e.g. criticality).
	Max Policy = iota + 1
	// Min takes the smaller value (e.g. deadline).
	Min
	// Sum aggregates (e.g. throughput, compute time).
	Sum
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Max:
		return "max"
	case Min:
		return "min"
	case Sum:
		return "sum"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// PolicyFor returns the canonical combination policy for a standard kind.
func PolicyFor(k Kind) Policy {
	switch k {
	case Criticality, FaultTolerance, Security:
		return Max
	case EarliestStart, Deadline:
		return Min
	case ComputeTime, Throughput, CommRate, Memory:
		return Sum
	default:
		return Max
	}
}

// Combine applies policy p to two attribute values.
func (p Policy) Combine(a, b float64) float64 {
	switch p {
	case Max:
		return math.Max(a, b)
	case Min:
		return math.Min(a, b)
	case Sum:
		return a + b
	default:
		return math.Max(a, b)
	}
}

// Set is an attribute map for one FCM. The zero value is an empty set,
// ready to use.
type Set struct {
	vals map[Kind]float64
}

// New returns a Set populated from pairs of (Kind, value).
func New(pairs map[Kind]float64) Set {
	s := Set{vals: make(map[Kind]float64, len(pairs))}
	for k, v := range pairs {
		s.vals[k] = v
	}
	return s
}

// Timing builds the Table-1 style attribute set ⟨C, FT, EST, TCD, CT⟩.
func Timing(criticality float64, ft int, est, tcd, ct float64) Set {
	return New(map[Kind]float64{
		Criticality:    criticality,
		FaultTolerance: float64(ft),
		EarliestStart:  est,
		Deadline:       tcd,
		ComputeTime:    ct,
	})
}

// Get returns the value of kind k and whether it is present.
func (s Set) Get(k Kind) (float64, bool) {
	v, ok := s.vals[k]
	return v, ok
}

// Value returns the value of kind k, or 0 if absent.
func (s Set) Value(k Kind) float64 { return s.vals[k] }

// Has reports whether kind k is present.
func (s Set) Has(k Kind) bool {
	_, ok := s.vals[k]
	return ok
}

// Set assigns value v to kind k, returning a new Set; the receiver is not
// modified (attribute sets are treated as values at module boundaries).
func (s Set) Set(k Kind, v float64) Set {
	out := s.Clone()
	if out.vals == nil {
		out.vals = make(map[Kind]float64, 1)
	}
	out.vals[k] = v
	return out
}

// Clone returns a deep copy of the set.
func (s Set) Clone() Set {
	if s.vals == nil {
		return Set{}
	}
	out := Set{vals: make(map[Kind]float64, len(s.vals))}
	for k, v := range s.vals {
		out.vals[k] = v
	}
	return out
}

// Len returns the number of attributes present.
func (s Set) Len() int { return len(s.vals) }

// Kinds returns the kinds present, sorted for deterministic iteration.
func (s Set) Kinds() []Kind {
	ks := make([]Kind, 0, len(s.vals))
	for k := range s.vals {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// Combine merges two attribute sets under the canonical per-kind policies.
// A kind present in only one operand is carried through unchanged: combining
// with "no constraint" leaves the constraint in force.
func Combine(a, b Set) Set {
	return CombineWith(a, b, PolicyFor)
}

// CombineWith merges two attribute sets using policyOf to select the policy
// for each kind.
func CombineWith(a, b Set, policyOf func(Kind) Policy) Set {
	out := Set{vals: make(map[Kind]float64, len(a.vals)+len(b.vals))}
	for k, v := range a.vals {
		out.vals[k] = v
	}
	for k, v := range b.vals {
		if prev, ok := out.vals[k]; ok {
			out.vals[k] = policyOf(k).Combine(prev, v)
		} else {
			out.vals[k] = v
		}
	}
	return out
}

// CombineAll folds Combine over a list of sets. An empty list yields the
// zero Set.
func CombineAll(sets ...Set) Set {
	var out Set
	for i, s := range sets {
		if i == 0 {
			out = s.Clone()
			continue
		}
		out = Combine(out, s)
	}
	return out
}

// Equal reports whether two sets hold identical kinds and values.
func (s Set) Equal(o Set) bool {
	if len(s.vals) != len(o.vals) {
		return false
	}
	for k, v := range s.vals {
		ov, ok := o.vals[k]
		if !ok || ov != v {
			return false
		}
	}
	return true
}

// String renders the set as "C=15 FT=3 EST=0 TCD=20 CT=5" in kind order.
func (s Set) String() string {
	ks := s.Kinds()
	parts := make([]string, 0, len(ks))
	for _, k := range ks {
		parts = append(parts, fmt.Sprintf("%s=%g", k, s.vals[k]))
	}
	return strings.Join(parts, " ")
}

// ErrNegativeWeight is returned by NewWeights for a negative weight.
var ErrNegativeWeight = errors.New("attrs: importance weight must be non-negative")

// Weights holds the predefined static relative weights used to compute
// node importance (§5.1: "The importance I_i of node N_i is a weighted sum
// of its attribute values, using predefined static relative weights").
type Weights struct {
	w map[Kind]float64
}

// NewWeights validates and wraps a weight table.
func NewWeights(w map[Kind]float64) (Weights, error) {
	out := Weights{w: make(map[Kind]float64, len(w))}
	for k, v := range w {
		if v < 0 {
			return Weights{}, fmt.Errorf("%w: %s=%g", ErrNegativeWeight, k, v)
		}
		out.w[k] = v
	}
	return out, nil
}

// DefaultWeights returns the weight table used throughout the reproduction:
// criticality dominates, fault tolerance and deadline-tightness contribute.
// (The paper leaves the weights application-defined.) The error path is
// unreachable for the literal weights but reported through the stage
// taxonomy rather than panicking, so hardened callers stay panic-free.
func DefaultWeights() (Weights, error) {
	w, err := NewWeights(map[Kind]float64{
		Criticality:    1.0,
		FaultTolerance: 0.5,
		Throughput:     0.1,
		Security:       0.25,
	})
	if err != nil {
		return Weights{}, stage.Wrap("map", "default-weights", "", err)
	}
	return w, nil
}

// Importance computes I_i = Σ_k w_k · v_k over the kinds present in s.
// Kinds without a weight contribute nothing.
func (ws Weights) Importance(s Set) float64 {
	var sum float64
	for k, v := range s.vals {
		sum += ws.w[k] * v
	}
	return sum
}

// Weight returns the weight assigned to kind k (0 if none).
func (ws Weights) Weight(k Kind) float64 { return ws.w[k] }
