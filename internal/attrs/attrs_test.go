package attrs

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{Criticality, "C"},
		{FaultTolerance, "FT"},
		{EarliestStart, "EST"},
		{Deadline, "TCD"},
		{ComputeTime, "CT"},
		{Throughput, "TP"},
		{CommRate, "CR"},
		{Security, "SEC"},
		{Memory, "MEM"},
		{Kind(99), "Kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(tt.kind), got, tt.want)
		}
	}
}

func TestKindValid(t *testing.T) {
	for k := Criticality; k <= Memory; k++ {
		if !k.Valid() {
			t.Errorf("kind %s should be valid", k)
		}
	}
	if Kind(0).Valid() {
		t.Error("Kind(0) should be invalid")
	}
	if Kind(100).Valid() {
		t.Error("Kind(100) should be invalid")
	}
}

func TestPolicyFor(t *testing.T) {
	tests := []struct {
		kind Kind
		want Policy
	}{
		{Criticality, Max},
		{FaultTolerance, Max},
		{Security, Max},
		{EarliestStart, Min},
		{Deadline, Min},
		{ComputeTime, Sum},
		{Throughput, Sum},
		{CommRate, Sum},
		{Memory, Sum},
	}
	for _, tt := range tests {
		if got := PolicyFor(tt.kind); got != tt.want {
			t.Errorf("PolicyFor(%s) = %s, want %s", tt.kind, got, tt.want)
		}
	}
}

func TestPolicyCombine(t *testing.T) {
	tests := []struct {
		policy Policy
		a, b   float64
		want   float64
	}{
		{Max, 3, 7, 7},
		{Max, 7, 3, 7},
		{Min, 3, 7, 3},
		{Sum, 3, 7, 10},
		{Policy(0), 3, 7, 7}, // unknown policy defaults to max
	}
	for _, tt := range tests {
		if got := tt.policy.Combine(tt.a, tt.b); got != tt.want {
			t.Errorf("%s.Combine(%g,%g) = %g, want %g", tt.policy, tt.a, tt.b, got, tt.want)
		}
	}
}

func TestPolicyString(t *testing.T) {
	if Max.String() != "max" || Min.String() != "min" || Sum.String() != "sum" {
		t.Error("policy names wrong")
	}
	if Policy(42).String() != "Policy(42)" {
		t.Errorf("unknown policy string: %s", Policy(42))
	}
}

func TestZeroValueSet(t *testing.T) {
	var s Set
	if s.Len() != 0 {
		t.Errorf("zero set Len = %d, want 0", s.Len())
	}
	if s.Has(Criticality) {
		t.Error("zero set should not have Criticality")
	}
	if v := s.Value(Criticality); v != 0 {
		t.Errorf("zero set Value = %g, want 0", v)
	}
	// Setting on a zero set must work (zero value is useful).
	s2 := s.Set(Criticality, 5)
	if v := s2.Value(Criticality); v != 5 {
		t.Errorf("after Set, Value = %g, want 5", v)
	}
	if s.Has(Criticality) {
		t.Error("Set must not mutate the receiver")
	}
}

func TestTimingConstructor(t *testing.T) {
	s := Timing(15, 3, 0, 20, 5)
	checks := map[Kind]float64{
		Criticality:    15,
		FaultTolerance: 3,
		EarliestStart:  0,
		Deadline:       20,
		ComputeTime:    5,
	}
	for k, want := range checks {
		got, ok := s.Get(k)
		if !ok || got != want {
			t.Errorf("Timing() %s = %g (present=%v), want %g", k, got, ok, want)
		}
	}
	if s.Len() != 5 {
		t.Errorf("Timing() Len = %d, want 5", s.Len())
	}
}

func TestCombineStandardPolicies(t *testing.T) {
	a := Timing(15, 3, 0, 20, 5)
	b := Timing(10, 2, 8, 16, 5)
	c := Combine(a, b)

	tests := []struct {
		kind Kind
		want float64
	}{
		{Criticality, 15},   // max
		{FaultTolerance, 3}, // max
		{EarliestStart, 0},  // min
		{Deadline, 16},      // min
		{ComputeTime, 10},   // sum
	}
	for _, tt := range tests {
		if got := c.Value(tt.kind); got != tt.want {
			t.Errorf("Combine %s = %g, want %g", tt.kind, got, tt.want)
		}
	}
}

func TestCombineDisjointKindsCarriedThrough(t *testing.T) {
	a := New(map[Kind]float64{Criticality: 5})
	b := New(map[Kind]float64{Memory: 128})
	c := Combine(a, b)
	if c.Value(Criticality) != 5 || c.Value(Memory) != 128 {
		t.Errorf("disjoint combine lost values: %s", c)
	}
	if c.Len() != 2 {
		t.Errorf("combined Len = %d, want 2", c.Len())
	}
}

func TestCombineAll(t *testing.T) {
	sets := []Set{
		Timing(15, 3, 0, 20, 5),
		Timing(10, 2, 8, 16, 5),
		Timing(3, 1, 0, 10, 3),
	}
	c := CombineAll(sets...)
	if got := c.Value(Criticality); got != 15 {
		t.Errorf("C = %g, want 15", got)
	}
	if got := c.Value(Deadline); got != 10 {
		t.Errorf("TCD = %g, want 10", got)
	}
	if got := c.Value(ComputeTime); got != 13 {
		t.Errorf("CT = %g, want 13", got)
	}

	if empty := CombineAll(); empty.Len() != 0 {
		t.Errorf("CombineAll() = %s, want empty", empty)
	}

	one := CombineAll(sets[0])
	if !one.Equal(sets[0]) {
		t.Errorf("CombineAll(x) = %s, want %s", one, sets[0])
	}
}

func TestCombineAllDoesNotAliasInput(t *testing.T) {
	a := Timing(15, 3, 0, 20, 5)
	out := CombineAll(a)
	_ = out.Set(Criticality, 99) // Set copies, but guard Clone in CombineAll too
	mutated := CombineAll(a)
	mutated.vals[Criticality] = 99
	if a.Value(Criticality) != 15 {
		t.Error("CombineAll aliased its input set")
	}
}

func TestCombineCommutative(t *testing.T) {
	f := func(c1, c2, d1, d2 float64) bool {
		a := New(map[Kind]float64{Criticality: c1, Deadline: d1})
		b := New(map[Kind]float64{Criticality: c2, Deadline: d2})
		return Combine(a, b).Equal(Combine(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCombineAssociativeForMaxMin(t *testing.T) {
	// Sum is trivially associative for exact halves; restrict to max/min
	// kinds plus small integers to avoid float-rounding noise on Sum.
	f := func(a8, b8, c8 int8) bool {
		mk := func(v int8) Set {
			return New(map[Kind]float64{
				Criticality: float64(v),
				Deadline:    float64(v) * 2,
				ComputeTime: float64(v),
			})
		}
		a, b, c := mk(a8), mk(b8), mk(c8)
		l := Combine(Combine(a, b), c)
		r := Combine(a, Combine(b, c))
		return l.Equal(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCombineIdempotentForStringency(t *testing.T) {
	// Combining a set with itself must leave max/min kinds unchanged and
	// double Sum kinds.
	s := Timing(15, 3, 0, 20, 5)
	c := Combine(s, s)
	if c.Value(Criticality) != 15 || c.Value(Deadline) != 20 {
		t.Errorf("self-combine changed stringency kinds: %s", c)
	}
	if c.Value(ComputeTime) != 10 {
		t.Errorf("self-combine CT = %g, want 10", c.Value(ComputeTime))
	}
}

func TestKindsSorted(t *testing.T) {
	s := Timing(15, 3, 0, 20, 5)
	ks := s.Kinds()
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			t.Fatalf("Kinds() not sorted: %v", ks)
		}
	}
}

func TestSetString(t *testing.T) {
	s := New(map[Kind]float64{Criticality: 15, FaultTolerance: 3})
	if got := s.String(); got != "C=15 FT=3" {
		t.Errorf("String() = %q, want %q", got, "C=15 FT=3")
	}
	var empty Set
	if got := empty.String(); got != "" {
		t.Errorf("empty String() = %q, want empty", got)
	}
}

func TestEqual(t *testing.T) {
	a := Timing(15, 3, 0, 20, 5)
	b := Timing(15, 3, 0, 20, 5)
	c := Timing(15, 3, 0, 20, 6)
	if !a.Equal(b) {
		t.Error("identical sets not Equal")
	}
	if a.Equal(c) {
		t.Error("different sets Equal")
	}
	d := New(map[Kind]float64{Criticality: 15})
	if a.Equal(d) {
		t.Error("different-size sets Equal")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Timing(15, 3, 0, 20, 5)
	b := a.Clone()
	b.vals[Criticality] = 1
	if a.Value(Criticality) != 15 {
		t.Error("Clone shares storage with original")
	}
	var zero Set
	zc := zero.Clone()
	if zc.Len() != 0 {
		t.Error("Clone of zero set not empty")
	}
}

func TestNewWeightsRejectsNegative(t *testing.T) {
	_, err := NewWeights(map[Kind]float64{Criticality: -1})
	if err == nil {
		t.Fatal("NewWeights accepted a negative weight")
	}
}

func TestImportanceWeightedSum(t *testing.T) {
	w, err := NewWeights(map[Kind]float64{Criticality: 1, FaultTolerance: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	s := Timing(10, 2, 0, 20, 5)
	// 1*10 + 0.5*2 = 11; EST/TCD/CT have no weight.
	if got := w.Importance(s); got != 11 {
		t.Errorf("Importance = %g, want 11", got)
	}
}

func TestDefaultWeightsOrderCriticalityFirst(t *testing.T) {
	w, err := DefaultWeights()
	if err != nil {
		t.Fatal(err)
	}
	hi := Timing(15, 3, 0, 20, 5)
	lo := Timing(1, 1, 12, 20, 3)
	if w.Importance(hi) <= w.Importance(lo) {
		t.Errorf("importance ordering broken: hi=%g lo=%g",
			w.Importance(hi), w.Importance(lo))
	}
	if w.Weight(Criticality) != 1.0 {
		t.Errorf("default criticality weight = %g, want 1", w.Weight(Criticality))
	}
}

func TestImportanceMonotoneInCriticality(t *testing.T) {
	w, err := DefaultWeights()
	if err != nil {
		t.Fatal(err)
	}
	f := func(c1, c2 uint8) bool {
		a := New(map[Kind]float64{Criticality: float64(c1)})
		b := New(map[Kind]float64{Criticality: float64(c2)})
		if c1 <= c2 {
			return w.Importance(a) <= w.Importance(b)
		}
		return w.Importance(a) >= w.Importance(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCombinePreservesStringencyProperty(t *testing.T) {
	// Property: combined criticality >= each component; combined deadline
	// <= each component.
	f := func(c1, c2 uint8, d1, d2 uint8) bool {
		a := New(map[Kind]float64{Criticality: float64(c1), Deadline: float64(d1)})
		b := New(map[Kind]float64{Criticality: float64(c2), Deadline: float64(d2)})
		c := Combine(a, b)
		return c.Value(Criticality) >= math.Max(0, float64(max8(c1, c2))-0.5) &&
			c.Value(Criticality) == math.Max(float64(c1), float64(c2)) &&
			c.Value(Deadline) == math.Min(float64(d1), float64(d2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func max8(a, b uint8) uint8 {
	if a > b {
		return a
	}
	return b
}
