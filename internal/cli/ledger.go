package cli

import (
	"flag"
	"fmt"
	"io"

	"repro/internal/ledger"
)

// LedgerFlag owns the shared -ledger flag: the path the run's decision
// ledger is written to as JSON Lines.
type LedgerFlag struct {
	path string
	tool string
	led  *ledger.Ledger
}

// RegisterLedger binds -ledger onto fs. tool names the command in the
// ledger header.
func RegisterLedger(fs *flag.FlagSet, tool string) *LedgerFlag {
	f := &LedgerFlag{tool: tool}
	fs.StringVar(&f.path, "ledger", "", "write the run's decision-provenance ledger (JSON Lines) to this file")
	return f
}

// Enabled reports whether -ledger was given.
func (f *LedgerFlag) Enabled() bool { return f != nil && f.path != "" }

// Path returns the -ledger destination, or "" when the flag was off.
// Tools use it to attach the written ledger to a flight-recorder bundle.
func (f *LedgerFlag) Path() string {
	if f == nil {
		return ""
	}
	return f.path
}

// Ledger lazily constructs the run ledger, or returns nil when the flag
// was not given — the nil *Ledger absorbs every recording call.
func (f *LedgerFlag) Ledger() *ledger.Ledger {
	if !f.Enabled() {
		return nil
	}
	if f.led == nil {
		f.led = ledger.New(ledger.Header{Tool: f.tool})
	}
	return f.led
}

// Finish writes the ledger to the -ledger path, confirming on errw. Safe
// to call when the flag was off or the ledger never constructed.
func (f *LedgerFlag) Finish(errw io.Writer) error {
	if !f.Enabled() || f.led == nil {
		return nil
	}
	if err := f.led.WriteFile(f.path); err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	if errw != nil {
		fmt.Fprintf(errw, "ledger: wrote %s (%d records)\n", f.path, f.led.Len())
	}
	return nil
}
