// Package cli holds helpers shared by the command-line tools under cmd/.
//
// Its centerpiece is the telemetry flag trio every tool exposes:
//
//	-trace <file>       write a JSON trace (span tree + Chrome events +
//	                    metrics snapshot) at exit
//	-log-level <level>  mirror pipeline events to stderr via log/slog
//	                    (debug, info, warn, error)
//	-metrics-addr <a>   serve the observability endpoints on a for the
//	                    lifetime of the run: /metrics, /metrics.json,
//	                    /events (NDJSON/SSE stream), /progress, the live
//	                    /dashboard, /healthz and /buildinfo
//	-watch              stream NDJSON progress events to stderr (with
//	                    -metrics-addr the stream is served over HTTP
//	                    instead, and the dashboard is the front door)
//	-flight-record <d>  write a self-contained flight-recorder bundle into
//	                    directory d at exit: trace, merged Chrome trace,
//	                    metrics, progress, event tail, buildinfo, plus any
//	                    attached artifacts such as the decision ledger
//
// plus the pprof trio -cpuprofile, -memprofile and -profile-dir (the last
// writes one CPU profile per pipeline stage, keyed to the stage span
// names). An Observer is only constructed when at least one flag is given,
// so the default invocation of every tool stays on the uninstrumented fast
// path.
package cli

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	"repro/internal/obs"
)

// ObsFlags owns the shared telemetry flags and the observer lifecycle they
// configure. Register with RegisterObsFlags, read Observer after parsing,
// and defer Finish.
type ObsFlags struct {
	tracePath   string
	logLevel    string
	metricsAddr string
	cpuProfile  string
	memProfile  string
	profileDir  string
	watch       bool
	flightDir   string

	errw      io.Writer
	observer  *obs.Observer
	server    *obs.MetricsServer
	profiler  *obs.Profiler
	bus       *obs.Bus
	tracker   *obs.Tracker
	flight    *obs.FlightRecorder
	watchSub  *obs.Subscriber
	watchDone chan struct{}
}

// RegisterObsFlags binds -trace, -log-level and -metrics-addr onto fs.
// Diagnostics (the metrics listen address, trace-write confirmations) go to
// errw; pass nil for os.Stderr.
func RegisterObsFlags(fs *flag.FlagSet, errw io.Writer) *ObsFlags {
	if errw == nil {
		errw = os.Stderr
	}
	f := &ObsFlags{errw: errw}
	fs.StringVar(&f.tracePath, "trace", "", "write a JSON telemetry trace (spans, events, metrics) to this file at exit")
	fs.StringVar(&f.logLevel, "log-level", "", "mirror telemetry to stderr at this level: debug, info, warn, error")
	fs.StringVar(&f.metricsAddr, "metrics-addr", "", "serve Prometheus metrics on this address (e.g. :9090) during the run")
	fs.StringVar(&f.cpuProfile, "cpuprofile", "", "write a whole-run CPU profile to this file")
	fs.StringVar(&f.memProfile, "memprofile", "", "write a heap profile to this file at exit")
	fs.StringVar(&f.profileDir, "profile-dir", "", "write one CPU profile per pipeline stage into this directory (excludes -cpuprofile)")
	fs.BoolVar(&f.watch, "watch", false, "stream NDJSON progress events to stderr (served over HTTP instead when -metrics-addr is set)")
	fs.StringVar(&f.flightDir, "flight-record", "", "write a self-contained flight-recorder bundle (trace, metrics, progress, event tail, buildinfo) into this directory at exit")
	return f
}

// Enabled reports whether any telemetry flag was set.
func (f *ObsFlags) Enabled() bool {
	return f != nil && (f.tracePath != "" || f.logLevel != "" || f.metricsAddr != "" ||
		f.cpuProfile != "" || f.memProfile != "" || f.profileDir != "" || f.watch ||
		f.flightDir != "")
}

// Bus returns the streaming event bus, non-nil once Observer has run with
// -watch or -metrics-addr set. Tools pass it into bus-aware components
// (faultsim.Campaign, faultsim.SearchConfig) for richer progress events;
// span-level activity reaches it automatically via the observer.
func (f *ObsFlags) Bus() *obs.Bus {
	if f == nil {
		return nil
	}
	return f.bus
}

// Observer lazily constructs the observer the flags describe. It returns
// (nil, nil) when no telemetry flag was given — the fast path — and starts
// the metrics server as a side effect when -metrics-addr was set.
func (f *ObsFlags) Observer() (*obs.Observer, error) {
	if !f.Enabled() {
		return nil, nil
	}
	if f.observer != nil {
		return f.observer, nil
	}
	var opts []obs.Option
	if f.logLevel != "" {
		var lvl slog.Level
		if err := lvl.UnmarshalText([]byte(f.logLevel)); err != nil {
			return nil, fmt.Errorf("bad -log-level %q: %w", f.logLevel, err)
		}
		h := slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})
		opts = append(opts, obs.WithLogger(slog.New(h)))
	}
	if f.cpuProfile != "" || f.memProfile != "" || f.profileDir != "" {
		p, err := obs.NewProfiler(f.cpuProfile, f.memProfile, f.profileDir)
		if err != nil {
			return nil, err
		}
		if err := p.Start(); err != nil {
			return nil, err
		}
		f.profiler = p
		opts = append(opts, obs.WithProfiler(p))
	}
	if f.watch || f.metricsAddr != "" || f.flightDir != "" {
		// -flight-record needs the bus and tracker too: the bundle's
		// event tail and progress snapshot come from them.
		f.bus = obs.NewBus(0)
		f.tracker = obs.NewTracker(f.bus)
		opts = append(opts, obs.WithBus(f.bus))
	}
	f.observer = obs.New(opts...)
	if f.flightDir != "" {
		f.flight = obs.NewFlightRecorder(f.observer, f.bus, f.tracker, 0)
	}
	if f.metricsAddr != "" {
		srv, err := obs.Serve(f.metricsAddr, obs.ServerConfig{
			Registry: f.observer.Metrics(),
			Bus:      f.bus,
			Progress: f.tracker,
		})
		if err != nil {
			return nil, fmt.Errorf("metrics server: %w", err)
		}
		f.server = srv
		fmt.Fprintf(f.errw, "metrics: serving on http://%s/metrics (live dashboard at /dashboard)\n", srv.Addr())
	} else if f.watch {
		// No HTTP surface: tail the bus onto stderr as NDJSON. Mirrored
		// span events (kind "event") are skipped — the high-volume raw
		// feed belongs to /events; stderr gets the progress skeleton.
		f.watchSub = f.bus.Subscribe(0, 1024)
		f.watchDone = make(chan struct{})
		go func(sub *obs.Subscriber, w io.Writer) {
			defer close(f.watchDone)
			enc := json.NewEncoder(w)
			for {
				ev, ok := sub.Next(nil)
				if !ok {
					return
				}
				if ev.Kind == "event" {
					continue
				}
				_ = enc.Encode(ev)
			}
		}(f.watchSub, f.errw)
	}
	return f.observer, nil
}

// FlightFile registers an external artifact (e.g. the decision ledger)
// for inclusion in the flight-recorder bundle under the given name. No-op
// unless -flight-record is active; call it after the artifact's path is
// known — the file is read at Finish time.
func (f *ObsFlags) FlightFile(name, path string) {
	if f == nil || f.flight == nil || path == "" {
		return
	}
	f.flight.AttachFile(name, path)
}

// WatchContext ties the metrics server's lifetime to ctx: when the run's
// context dies (-timeout deadline, SIGINT/SIGTERM), the server is closed so
// the process can exit instead of leaving the listener's goroutine serving
// forever. No-op when -metrics-addr was not given. Call after Observer and
// pass the context from RunContext; Finish remains the normal-exit path and
// is safe to run afterwards (Close is idempotent).
func (f *ObsFlags) WatchContext(ctx context.Context) {
	if f == nil || f.server == nil {
		return
	}
	srv := f.server
	go func() {
		<-ctx.Done()
		_ = srv.Close()
	}()
}

// Finish flushes the telemetry the run accumulated: the trace file is
// written (when -trace was given) and the metrics server shut down. Safe to
// call when telemetry is off, and safe to defer before Observer.
func (f *ObsFlags) Finish() error {
	if f == nil {
		return nil
	}
	var firstErr error
	if f.profiler != nil {
		if err := f.profiler.Stop(); err != nil {
			firstErr = err
		}
		f.profiler = nil
	}
	if f.watchSub != nil {
		f.watchSub.Close()
		<-f.watchDone
		f.watchSub = nil
	}
	if f.server != nil {
		if err := f.server.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		f.server = nil
	}
	if f.observer != nil && f.tracePath != "" {
		file, err := os.Create(f.tracePath)
		if err != nil {
			return err
		}
		if err := f.observer.WriteTrace(file); err != nil {
			file.Close()
			return err
		}
		if err := file.Close(); err != nil {
			return err
		}
		fmt.Fprintf(f.errw, "trace: wrote %s\n", f.tracePath)
	}
	if f.flight != nil {
		man, err := f.flight.Write(f.flightDir)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			fmt.Fprintf(f.errw, "flight: wrote %s (%d files, %d events, %d remote spans)\n",
				f.flightDir, len(man.Files), man.Events, man.RemoteSpans)
		}
		f.flight = nil
	}
	return firstErr
}
