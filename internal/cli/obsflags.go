// Package cli holds helpers shared by the command-line tools under cmd/.
//
// Its centerpiece is the telemetry flag trio every tool exposes:
//
//	-trace <file>       write a JSON trace (span tree + Chrome events +
//	                    metrics snapshot) at exit
//	-log-level <level>  mirror pipeline events to stderr via log/slog
//	                    (debug, info, warn, error)
//	-metrics-addr <a>   serve the Prometheus/JSON metrics endpoint on a
//	                    for the lifetime of the run
//
// plus the pprof trio -cpuprofile, -memprofile and -profile-dir (the last
// writes one CPU profile per pipeline stage, keyed to the stage span
// names). An Observer is only constructed when at least one flag is given,
// so the default invocation of every tool stays on the uninstrumented fast
// path.
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	"repro/internal/obs"
)

// ObsFlags owns the shared telemetry flags and the observer lifecycle they
// configure. Register with RegisterObsFlags, read Observer after parsing,
// and defer Finish.
type ObsFlags struct {
	tracePath   string
	logLevel    string
	metricsAddr string
	cpuProfile  string
	memProfile  string
	profileDir  string

	errw     io.Writer
	observer *obs.Observer
	server   *obs.MetricsServer
	profiler *obs.Profiler
}

// RegisterObsFlags binds -trace, -log-level and -metrics-addr onto fs.
// Diagnostics (the metrics listen address, trace-write confirmations) go to
// errw; pass nil for os.Stderr.
func RegisterObsFlags(fs *flag.FlagSet, errw io.Writer) *ObsFlags {
	if errw == nil {
		errw = os.Stderr
	}
	f := &ObsFlags{errw: errw}
	fs.StringVar(&f.tracePath, "trace", "", "write a JSON telemetry trace (spans, events, metrics) to this file at exit")
	fs.StringVar(&f.logLevel, "log-level", "", "mirror telemetry to stderr at this level: debug, info, warn, error")
	fs.StringVar(&f.metricsAddr, "metrics-addr", "", "serve Prometheus metrics on this address (e.g. :9090) during the run")
	fs.StringVar(&f.cpuProfile, "cpuprofile", "", "write a whole-run CPU profile to this file")
	fs.StringVar(&f.memProfile, "memprofile", "", "write a heap profile to this file at exit")
	fs.StringVar(&f.profileDir, "profile-dir", "", "write one CPU profile per pipeline stage into this directory (excludes -cpuprofile)")
	return f
}

// Enabled reports whether any telemetry flag was set.
func (f *ObsFlags) Enabled() bool {
	return f != nil && (f.tracePath != "" || f.logLevel != "" || f.metricsAddr != "" ||
		f.cpuProfile != "" || f.memProfile != "" || f.profileDir != "")
}

// Observer lazily constructs the observer the flags describe. It returns
// (nil, nil) when no telemetry flag was given — the fast path — and starts
// the metrics server as a side effect when -metrics-addr was set.
func (f *ObsFlags) Observer() (*obs.Observer, error) {
	if !f.Enabled() {
		return nil, nil
	}
	if f.observer != nil {
		return f.observer, nil
	}
	var opts []obs.Option
	if f.logLevel != "" {
		var lvl slog.Level
		if err := lvl.UnmarshalText([]byte(f.logLevel)); err != nil {
			return nil, fmt.Errorf("bad -log-level %q: %w", f.logLevel, err)
		}
		h := slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})
		opts = append(opts, obs.WithLogger(slog.New(h)))
	}
	if f.cpuProfile != "" || f.memProfile != "" || f.profileDir != "" {
		p, err := obs.NewProfiler(f.cpuProfile, f.memProfile, f.profileDir)
		if err != nil {
			return nil, err
		}
		if err := p.Start(); err != nil {
			return nil, err
		}
		f.profiler = p
		opts = append(opts, obs.WithProfiler(p))
	}
	f.observer = obs.New(opts...)
	if f.metricsAddr != "" {
		srv, err := f.observer.Metrics().Serve(f.metricsAddr)
		if err != nil {
			return nil, fmt.Errorf("metrics server: %w", err)
		}
		f.server = srv
		fmt.Fprintf(f.errw, "metrics: serving on http://%s/metrics\n", srv.Addr())
	}
	return f.observer, nil
}

// WatchContext ties the metrics server's lifetime to ctx: when the run's
// context dies (-timeout deadline, SIGINT/SIGTERM), the server is closed so
// the process can exit instead of leaving the listener's goroutine serving
// forever. No-op when -metrics-addr was not given. Call after Observer and
// pass the context from RunContext; Finish remains the normal-exit path and
// is safe to run afterwards (Close is idempotent).
func (f *ObsFlags) WatchContext(ctx context.Context) {
	if f == nil || f.server == nil {
		return
	}
	srv := f.server
	go func() {
		<-ctx.Done()
		_ = srv.Close()
	}()
}

// Finish flushes the telemetry the run accumulated: the trace file is
// written (when -trace was given) and the metrics server shut down. Safe to
// call when telemetry is off, and safe to defer before Observer.
func (f *ObsFlags) Finish() error {
	if f == nil {
		return nil
	}
	var firstErr error
	if f.profiler != nil {
		if err := f.profiler.Stop(); err != nil {
			firstErr = err
		}
		f.profiler = nil
	}
	if f.server != nil {
		if err := f.server.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		f.server = nil
	}
	if f.observer != nil && f.tracePath != "" {
		file, err := os.Create(f.tracePath)
		if err != nil {
			return err
		}
		if err := f.observer.WriteTrace(file); err != nil {
			file.Close()
			return err
		}
		if err := file.Close(); err != nil {
			return err
		}
		fmt.Fprintf(f.errw, "trace: wrote %s\n", f.tracePath)
	}
	return firstErr
}
