package cli

import (
	"context"
	"flag"
	"os/signal"
	"syscall"
	"time"
)

// RegisterTimeout binds the shared -timeout flag onto fs. Zero (the
// default) means no deadline.
func RegisterTimeout(fs *flag.FlagSet) *time.Duration {
	return fs.Duration("timeout", 0,
		"overall deadline for the run (e.g. 30s, 2m); 0 disables")
}

// RunContext builds the root context of a CLI run: it carries the -timeout
// deadline when one was given, and is cancelled on SIGINT/SIGTERM so
// long-running work (an Eq. 3 sweep, a fault campaign) shuts down
// cooperatively — checkpointing campaigns persist their state on the way
// out instead of losing the run. The returned stop function releases the
// signal handler; defer it.
func RunContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	return ctx, func() {
		cancel()
		stop()
	}
}
