package cli

import (
	"flag"
	"runtime"
)

// RegisterWorkers binds the shared -workers flag onto fs. Zero (the
// default) sizes worker pools to GOMAXPROCS. The parallel stages are
// deterministic by construction — faultsim campaigns, Eq. 3 separation
// matrices and everything derived from them produce bit-identical output
// at every worker count — so this flag trades wall-clock for cores, never
// results.
func RegisterWorkers(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0,
		"worker goroutines for parallel stages (0 = GOMAXPROCS); results are identical at any count")
}

// ApplyWorkers applies -workers process-wide by setting GOMAXPROCS, the
// default every parallel stage sizes its pool from. Tools that plumb the
// count into each call explicitly (fcmtool, faultsim) don't need this;
// tools whose fan-out happens inside library code they don't parameterize
// (paperrepro's experiment suite, certify) use it so -workers still
// governs the whole run. No-op when n <= 0.
func ApplyWorkers(n int) {
	if n > 0 {
		runtime.GOMAXPROCS(n)
	}
}
