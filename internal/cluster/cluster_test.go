package cluster

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/attrs"
	"repro/internal/graph"
	"repro/internal/spec"
)

// expandPaper builds the replicated worked-example graph (Fig. 4).
func expandPaper(t *testing.T) *Expansion {
	t.Helper()
	sys := spec.PaperExample()
	g, err := sys.Graph()
	if err != nil {
		t.Fatal(err)
	}
	exp, err := Expand(g, sys.Jobs())
	if err != nil {
		t.Fatal(err)
	}
	return exp
}

func TestExpandFig4(t *testing.T) {
	exp := expandPaper(t)
	// 8 processes with FT 3,2,2,1,1,1,1,1 expand to 12 nodes.
	if got := exp.Graph.NumNodes(); got != 12 {
		t.Errorf("expanded nodes = %d, want 12", got)
	}
	// p1 replicates thrice.
	reps := exp.ReplicasOf["p1"]
	if len(reps) != 3 || reps[0] != "p1a" || reps[2] != "p1c" {
		t.Errorf("p1 replicas = %v", reps)
	}
	// Replicas are linked pairwise with weight-0 replica edges.
	if !exp.Graph.AreReplicas("p1a", "p1b") || !exp.Graph.AreReplicas("p1a", "p1c") ||
		!exp.Graph.AreReplicas("p1b", "p1c") {
		t.Error("p1 replicas not pairwise linked")
	}
	// FT=1 nodes keep their name.
	if exp.ReplicasOf["p4"][0] != "p4" {
		t.Errorf("p4 replicas = %v", exp.ReplicasOf["p4"])
	}
	// Edges are replicated: p1->p2 (0.7) becomes 3x2 = 6 edges.
	count := 0
	for _, a := range exp.ReplicasOf["p1"] {
		for _, b := range exp.ReplicasOf["p2"] {
			if exp.Graph.Influence(a, b) == 0.7 {
				count++
			}
		}
	}
	if count != 6 {
		t.Errorf("replicated p1->p2 edges = %d, want 6", count)
	}
	// BaseOf inverts ReplicasOf.
	if exp.BaseOf["p1c"] != "p1" || exp.BaseOf["p4"] != "p4" {
		t.Errorf("BaseOf = %v", exp.BaseOf)
	}
	// Jobs cover all 12 replicas.
	if len(exp.Jobs) != 12 {
		t.Errorf("jobs = %d, want 12", len(exp.Jobs))
	}
}

func TestExpandAttributesCopied(t *testing.T) {
	exp := expandPaper(t)
	a := exp.Graph.Attrs("p1b")
	if a.Value(attrs.Criticality) != 15 || a.Value(attrs.ComputeTime) != 5 {
		t.Errorf("p1b attrs = %s", a)
	}
}

func TestCanCombineRules(t *testing.T) {
	exp := expandPaper(t)
	c := exp.Condenser()
	if ok, why := c.CanCombine("p1a", "p1b"); ok {
		t.Error("replicas combinable")
	} else if !strings.Contains(why, "replica") {
		t.Errorf("reason = %q", why)
	}
	if ok, _ := c.CanCombine("p1a", "p2a"); !ok {
		t.Error("p1a+p2a should combine")
	}
	if ok, why := c.CanCombine("p1a", "p1a"); ok || why != "same node" {
		t.Errorf("self combine: %v %q", ok, why)
	}
	if ok, why := c.CanCombine("p1a", "zz"); ok || why != "unknown node" {
		t.Errorf("unknown combine: %v %q", ok, why)
	}
	// The narrative timing conflict: p2 cannot join a {p4,p7} cluster.
	id, err := c.Combine("p4", "p7", "test")
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := c.CanCombine(id, "p2a"); ok {
		t.Error("{p4,p7}+p2a should be infeasible")
	} else if !strings.Contains(why, "timing infeasible") {
		t.Errorf("reason = %q", why)
	}
}

func TestReduceByInfluenceFig6(t *testing.T) {
	// The full Approach-A reduction of §6.1: 12 replicated nodes to 6 HW
	// nodes by repeated highest-mutual-influence combination.
	exp := expandPaper(t)
	c := exp.Condenser()
	if err := c.ReduceByInfluence(6); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(c.G.Nodes(), " ")
	want := "p1c p3b {p1a,p2a} {p1b,p2b} {p3a,p4,p5} {p6,p7,p8}"
	if got != want {
		t.Errorf("final clusters:\n got: %s\nwant: %s", got, want)
	}
	// Trace: the first merge is the highest-mutual pair (p1a,p2a) at 1.2;
	// the second is (p1b,p2b).
	if len(c.Trace) < 2 {
		t.Fatalf("trace too short: %v", c.Trace)
	}
	if c.Trace[0].A != "p1a" || c.Trace[0].B != "p2a" || math.Abs(c.Trace[0].Mutual-1.2) > 1e-12 {
		t.Errorf("first step = %+v", c.Trace[0])
	}
	if c.Trace[1].A != "p1b" || c.Trace[1].B != "p2b" {
		t.Errorf("second step = %+v", c.Trace[1])
	}
	// Replica sets are split across distinct clusters.
	for _, reps := range [][]string{
		{"p1a", "p1b", "p1c"},
		{"p2a", "p2b"},
		{"p3a", "p3b"},
	} {
		owner := map[string]string{}
		for _, node := range c.G.Nodes() {
			for _, m := range graph.Members(node) {
				owner[m] = node
			}
		}
		for i := range reps {
			for j := i + 1; j < len(reps); j++ {
				if owner[reps[i]] == owner[reps[j]] {
					t.Errorf("replicas %s and %s share cluster %s",
						reps[i], reps[j], owner[reps[i]])
				}
			}
		}
	}
}

func TestReduceByInfluenceEq4Arithmetic(t *testing.T) {
	// During the Fig. 6 reduction, the cluster {p3a,p4} influences p5 with
	// 1-(1-0.7)(1-0.2) = 0.76, Fig. 5's surviving value.
	exp := expandPaper(t)
	c := exp.Condenser()
	id, err := c.Combine("p3a", "p4", "test")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.G.Influence(id, "p5"); math.Abs(got-0.76) > 1e-12 {
		t.Errorf("{p3a,p4}->p5 = %g, want 0.76", got)
	}
}

func TestReduceByInfluenceTargets(t *testing.T) {
	exp := expandPaper(t)
	c := exp.Condenser()
	if err := c.ReduceByInfluence(0); !errors.Is(err, ErrBadTarget) {
		t.Errorf("target 0 err = %v", err)
	}
	if err := c.ReduceByInfluence(99); !errors.Is(err, ErrBadTarget) {
		t.Errorf("target 99 err = %v", err)
	}
	// Reducing to the replica-count floor (3: p1 has three replicas) can
	// fail feasibly — at minimum the three p1 replicas stay apart.
	err := c.ReduceByInfluence(2)
	if !errors.Is(err, ErrCannotReduce) {
		t.Errorf("reduction below replica floor: err = %v, want ErrCannotReduce", err)
	}
}

func TestReduceByInfluencePairAll(t *testing.T) {
	exp := expandPaper(t)
	c := exp.Condenser()
	if err := c.ReduceByInfluencePairAll(6); err != nil {
		t.Fatal(err)
	}
	if got := c.G.NumNodes(); got != 6 {
		t.Errorf("nodes = %d, want 6", got)
	}
	// All steps labelled with the variant rule.
	for _, s := range c.Trace {
		if s.Rule != "H1-pair-all" {
			t.Errorf("step rule = %q", s.Rule)
		}
	}
}

func TestReduceByMinCutH2(t *testing.T) {
	exp := expandPaper(t)
	c := exp.Condenser()
	if err := c.ReduceByMinCut(6); err != nil {
		t.Fatal(err)
	}
	if got := c.G.NumNodes(); got != 6 {
		t.Errorf("nodes = %d, want 6", got)
	}
	// Feasibility invariants hold after repair.
	for _, node := range c.G.Nodes() {
		if !c.groupFeasible([]string{node}) {
			t.Errorf("cluster %s infeasible", node)
		}
	}
}

func TestReduceBySpheresH3(t *testing.T) {
	exp := expandPaper(t)
	c := exp.Condenser()
	if err := c.ReduceBySpheres(6, defaultWeights(t)); err != nil {
		t.Fatal(err)
	}
	if got := c.G.NumNodes(); got != 6 {
		t.Errorf("nodes = %d, want 6", got)
	}
	// The three p1 replicas are the most important nodes; each must seed
	// its own sphere, so they end in distinct clusters.
	owner := map[string]string{}
	for _, node := range c.G.Nodes() {
		for _, m := range graph.Members(node) {
			owner[m] = node
		}
	}
	if owner["p1a"] == owner["p1b"] || owner["p1b"] == owner["p1c"] || owner["p1a"] == owner["p1c"] {
		t.Errorf("p1 replicas share spheres: %v %v %v", owner["p1a"], owner["p1b"], owner["p1c"])
	}
}

func TestReduceByCriticalityFig7(t *testing.T) {
	// §6.2 Approach B: the exact pairs of Fig. 7, including the p3a/p3b
	// replica-conflict resolution: {p1a,p8} {p1b,p7} {p1c,p5} {p2a,p6}
	// {p2b,p3b} {p3a,p4}.
	exp := expandPaper(t)
	c := exp.Condenser()
	if err := c.ReduceByCriticality(6); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(c.G.Nodes(), " ")
	want := "{p1a,p8} {p1b,p7} {p1c,p5} {p2a,p6} {p2b,p3b} {p3a,p4}"
	if got != want {
		t.Errorf("Fig. 7 clusters:\n got: %s\nwant: %s", got, want)
	}
}

func TestReduceByCriticalitySecondStage(t *testing.T) {
	// "In the next stage, the sets of processes can be ordered based on a
	// summary criticality … until a desired number of nodes is obtained."
	exp := expandPaper(t)
	c := exp.Condenser()
	err := c.ReduceByCriticality(3)
	// Reaching 3 requires putting two replicas of some module together or
	// may succeed: p1a,p1b,p1c must stay separate, so 3 is the floor.
	if err != nil {
		// Acceptable only if feasibility genuinely blocks below 6.
		if !errors.Is(err, ErrCannotReduce) {
			t.Fatalf("unexpected error: %v", err)
		}
		t.Logf("second stage stopped at %d nodes: %v", c.G.NumNodes(), err)
		return
	}
	if got := c.G.NumNodes(); got != 3 {
		t.Errorf("nodes = %d, want 3", got)
	}
}

func TestReduceByTimingFig8(t *testing.T) {
	exp := expandPaper(t)
	c := exp.Condenser()
	if err := c.ReduceByTiming(0); err != nil {
		t.Fatal(err)
	}
	n := c.G.NumNodes()
	// Timing-only grouping reaches at most 6 and at least 3 nodes (the p1
	// replica floor); our greedy first-fit lands at 3 — tighter than the
	// criticality-constrained Fig. 7 result, which is the figure's point.
	if n < 3 || n > 6 {
		t.Errorf("timing grouping nodes = %d, want within [3,6]", n)
	}
	// Every cluster feasible; replicas separated.
	for _, node := range c.G.Nodes() {
		if !c.groupFeasible([]string{node}) {
			t.Errorf("cluster %s infeasible", node)
		}
	}
	owner := map[string]string{}
	for _, node := range c.G.Nodes() {
		for _, m := range graph.Members(node) {
			owner[m] = node
		}
	}
	if owner["p1a"] == owner["p1b"] || owner["p3a"] == owner["p3b"] || owner["p2a"] == owner["p2b"] {
		t.Error("timing grouping put replicas together")
	}
}

func TestReduceByTimingMaxGroups(t *testing.T) {
	exp := expandPaper(t)
	c := exp.Condenser()
	// 2 groups is below the p1 replica floor of 3.
	if err := c.ReduceByTiming(2); !errors.Is(err, ErrCannotReduce) {
		t.Errorf("err = %v, want ErrCannotReduce", err)
	}
}

func TestPartitionAndJobsOf(t *testing.T) {
	exp := expandPaper(t)
	c := exp.Condenser()
	id, err := c.Combine("p1a", "p2a", "test")
	if err != nil {
		t.Fatal(err)
	}
	jobs := c.JobsOf(id)
	if len(jobs) != 2 {
		t.Errorf("cluster jobs = %d, want 2", len(jobs))
	}
	part := c.Partition()
	if len(part) != 11 {
		t.Errorf("partition groups = %d, want 11", len(part))
	}
	// The combined group lists both members.
	found := false
	for _, grp := range part {
		if len(grp) == 2 && grp[0] == "p1a" && grp[1] == "p2a" {
			found = true
		}
	}
	if !found {
		t.Errorf("partition missing combined group: %v", part)
	}
}

func TestCombineRejectsInfeasible(t *testing.T) {
	exp := expandPaper(t)
	c := exp.Condenser()
	if _, err := c.Combine("p1a", "p1b", "test"); err == nil {
		t.Error("replica combine accepted")
	}
}

func TestStepString(t *testing.T) {
	s := Step{A: "a", B: "b", Mutual: 0.5, Result: "{a,b}", Rule: "H1"}
	if got := s.String(); got != "H1: a + b (mutual 0.5) -> {a,b}" {
		t.Errorf("Step.String = %q", got)
	}
}

func TestCrossWeightDropsAsReductionProceeds(t *testing.T) {
	// Containment property: H1's final partition contains at least as much
	// influence internally as a random-ish (name-ordered) partition into
	// the same group sizes. Weak but meaningful sanity check on "combining
	// nodes with high mutual influence creates FCRs in HW".
	sys := spec.PaperExample()
	g, err := sys.Graph()
	if err != nil {
		t.Fatal(err)
	}
	exp, err := Expand(g, sys.Jobs())
	if err != nil {
		t.Fatal(err)
	}
	full := exp.Graph.Clone()
	c := NewCondenser(exp.Graph, exp.Jobs)
	if err := c.ReduceByInfluence(6); err != nil {
		t.Fatal(err)
	}
	h1Cross := full.CrossWeight(c.Partition())
	// Name-ordered split into 6 groups of 2.
	var naive [][]string
	nodes := full.Nodes()
	for i := 0; i < len(nodes); i += 2 {
		end := i + 2
		if end > len(nodes) {
			end = len(nodes)
		}
		naive = append(naive, nodes[i:end])
	}
	naiveCross := full.CrossWeight(naive)
	if h1Cross > naiveCross {
		t.Errorf("H1 cross influence %g worse than naive %g", h1Cross, naiveCross)
	}
}

func TestReduceByMinCutSTVariant(t *testing.T) {
	exp := expandPaper(t)
	c := exp.Condenser()
	if err := c.ReduceByMinCutST(6, defaultWeights(t)); err != nil {
		t.Fatal(err)
	}
	if got := c.G.NumNodes(); got != 6 {
		t.Errorf("nodes = %d, want 6", got)
	}
	// Feasibility invariants hold after repair; replicas separated.
	for _, node := range c.G.Nodes() {
		if !c.groupFeasible([]string{node}) {
			t.Errorf("cluster %s infeasible", node)
		}
	}
	owner := map[string]string{}
	for _, node := range c.G.Nodes() {
		for _, m := range graph.Members(node) {
			owner[m] = node
		}
	}
	if owner["p1a"] == owner["p1b"] || owner["p1b"] == owner["p1c"] {
		t.Error("p1 replicas colocated under H2-st")
	}
	for _, s := range c.Trace {
		if s.Rule != "H2-st" {
			t.Errorf("rule = %q", s.Rule)
		}
	}
}

func TestReduceByMinCutSTBadTarget(t *testing.T) {
	exp := expandPaper(t)
	c := exp.Condenser()
	if err := c.ReduceByMinCutST(0, defaultWeights(t)); !errors.Is(err, ErrBadTarget) {
		t.Errorf("err = %v, want ErrBadTarget", err)
	}
}

func defaultWeights(t *testing.T) attrs.Weights {
	t.Helper()
	w, err := attrs.DefaultWeights()
	if err != nil {
		t.Fatal(err)
	}
	return w
}
