// Package cluster implements the SW-graph condensation machinery of the
// integration framework (ICDCS 1998 §5.2, §5.4, §6): replication expansion,
// the reduction heuristics H1–H3, the criticality-driven pairing of §6.2
// (Approach B), and the timing-ordered grouping of Fig. 8.
//
// The problem being solved (§5.4): "Given a graph with directed weighted
// edges, group the nodes into sets such that the sum of weights between the
// sets is minimized" — subject to the feasibility constraints (replicas must
// separate, every group must be schedulable on one processor).
package cluster

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/attrs"
	"repro/internal/graph"
	"repro/internal/influence"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/stage"
)

// Errors returned by reduction operations.
var (
	// ErrCannotReduce means no feasible merge exists but the node count is
	// still above target — the integration-level limit the paper asks
	// about ("Is there a limit to the level of integration one should
	// design for?").
	ErrCannotReduce = errors.New("cluster: no feasible combination can reduce the graph further")
	// ErrBadTarget marks a target node count below 1 or above the current
	// node count.
	ErrBadTarget = errors.New("cluster: invalid target node count")
	// ErrUnknownNode marks references to nodes not in the working graph.
	ErrUnknownNode = errors.New("cluster: unknown node")
)

// Step records one combination step of a reduction trace.
type Step struct {
	// A and B are the node (or cluster) ids combined.
	A, B string
	// Mutual is the mutual influence between them at combination time.
	Mutual float64
	// Result is the id of the combined node.
	Result string
	// Rule names the heuristic step, e.g. "H1", "criticality-pair".
	Rule string
}

// String renders the step for traces.
func (s Step) String() string {
	return fmt.Sprintf("%s: %s + %s (mutual %.3g) -> %s", s.Rule, s.A, s.B, s.Mutual, s.Result)
}

// Condenser reduces a software influence graph to a target number of
// cluster nodes while enforcing the framework's feasibility constraints:
// replicas never share a cluster, and every cluster's job set must be
// schedulable on one processor.
type Condenser struct {
	// G is the working graph, mutated by reductions.
	G *graph.Graph
	// jobs maps each base node id to its scheduling job.
	jobs map[string]sched.Job
	// Trace accumulates the combination steps in order.
	Trace []Step
	// span receives one event per merge / backtrack; metrics count the
	// candidate pairs examined and their feasibility verdicts. Both are
	// nil (and cost one pointer check) unless Observe installs them.
	span    *obs.Span
	metrics *condMetrics
	// ctx, when set via SetContext, is polled cooperatively at the head
	// of every reduction loop so a deadline or cancellation aborts the
	// condensation promptly instead of after the full O(n²·sched) sweep.
	ctx context.Context
	// workers, when set via SetWorkers, sizes the goroutine pool of the
	// separation sweeps inside ReduceBySeparation (0 = GOMAXPROCS).
	workers int
	// led, when set via SetLedger, receives one provenance record per
	// merge and backtrack, stamped with ledAttempt. Nil (the default)
	// records nothing.
	led        *ledger.Ledger
	ledAttempt int
}

// SetContext installs a cancellation context on the condenser. All Reduce*
// loops poll it and return a stage-classified error wrapping ctx.Err()
// when it fires. A nil context (the default) disables the checks.
func (c *Condenser) SetContext(ctx context.Context) { c.ctx = ctx }

// SetWorkers sizes the worker pool used by the Eq. 3 separation sweeps
// (ReduceBySeparation). 0 or negative means GOMAXPROCS. The reduction is
// bit-identical for every value; only wall-clock time changes.
func (c *Condenser) SetWorkers(n int) { c.workers = n }

// SetLedger installs a decision-provenance ledger on the condenser: every
// Combine appends a merge record (rule, operands, Eq. 4 mutual influence,
// resulting cluster) and every backtrack a backtrack record, stamped with
// the given fallback-attempt number. A nil ledger records nothing.
func (c *Condenser) SetLedger(l *ledger.Ledger, attempt int) {
	c.led, c.ledAttempt = l, attempt
}

// checkCtx is the cooperative cancellation check-point of the reduction
// hot loops.
func (c *Condenser) checkCtx() error {
	return stage.Check(c.ctx, "condense")
}

// condMetrics caches the condenser's instrument handles.
type condMetrics struct {
	pairsConsidered  *obs.Counter
	pairsFeasible    *obs.Counter
	rejectedReplica  *obs.Counter
	rejectedTiming   *obs.Counter
	merges           *obs.Counter
	backtracks       *obs.Counter
	mergeMutual      *obs.Histogram
	clusterSizeAfter *obs.Gauge
}

// Observe installs telemetry on the condenser: merge and backtrack events
// are appended to span, candidate-pair counters to reg. Either may be nil.
func (c *Condenser) Observe(span *obs.Span, reg *obs.Registry) {
	c.span = span
	if reg == nil {
		c.metrics = nil
		return
	}
	c.metrics = &condMetrics{
		pairsConsidered:  reg.Counter("cluster_candidate_pairs_total", "candidate pairs examined by CanCombine"),
		pairsFeasible:    reg.Counter("cluster_feasible_pairs_total", "candidate pairs passing replica and timing checks"),
		rejectedReplica:  reg.Counter("cluster_rejected_replica_total", "pairs rejected for replica separation"),
		rejectedTiming:   reg.Counter("cluster_rejected_timing_total", "pairs rejected as timing infeasible"),
		merges:           reg.Counter("cluster_merges_total", "combination steps applied"),
		backtracks:       reg.Counter("cluster_backtracks_total", "criticality-pairing backtracks"),
		mergeMutual:      reg.Histogram("cluster_merge_mutual_influence", "mutual influence of applied merges", nil),
		clusterSizeAfter: reg.Gauge("cluster_nodes_current", "working-graph node count"),
	}
}

// NewCondenser wraps a graph (typically the output of Expand) and the jobs
// of its base nodes. The graph is used directly, not copied: clone before
// constructing if the original must survive.
func NewCondenser(g *graph.Graph, jobs []sched.Job) *Condenser {
	jm := make(map[string]sched.Job, len(jobs))
	for _, j := range jobs {
		jm[j.Name] = j
	}
	return &Condenser{G: g, jobs: jm}
}

// JobsOf returns the scheduling jobs of the base members of node id
// (id may be a plain node or a cluster id).
func (c *Condenser) JobsOf(id string) []sched.Job {
	members := graph.Members(id)
	out := make([]sched.Job, 0, len(members))
	for _, m := range members {
		if j, ok := c.jobs[m]; ok {
			out = append(out, j)
		}
	}
	return out
}

// CanCombine reports whether nodes a and b may be combined, and if not,
// why: replicas must stay apart (§5.2), and the union of their jobs must be
// schedulable on one processor (§6). Verdicts are counted when the
// condenser is observed.
func (c *Condenser) CanCombine(a, b string) (bool, string) {
	if m := c.metrics; m != nil {
		m.pairsConsidered.Inc()
	}
	if !c.G.HasNode(a) || !c.G.HasNode(b) {
		return false, "unknown node"
	}
	if a == b {
		return false, "same node"
	}
	if c.G.AreReplicas(a, b) {
		if m := c.metrics; m != nil {
			m.rejectedReplica.Inc()
		}
		return false, "replicas of one module"
	}
	jobs := append(c.JobsOf(a), c.JobsOf(b)...)
	ok, witness, err := sched.Feasible(jobs)
	if err != nil {
		return false, err.Error()
	}
	if !ok {
		if m := c.metrics; m != nil {
			m.rejectedTiming.Inc()
		}
		return false, "timing infeasible: " + witness
	}
	if m := c.metrics; m != nil {
		m.pairsFeasible.Inc()
	}
	return true, ""
}

// Combine merges two nodes (after a CanCombine check) using the Eq. (4)
// influence combination, records the step under the given rule label, and
// returns the new cluster id.
func (c *Condenser) Combine(a, b, rule string) (string, error) {
	if ok, why := c.CanCombine(a, b); !ok {
		return "", fmt.Errorf("cluster: cannot combine %q and %q: %s", a, b, why)
	}
	mutual := c.G.MutualInfluence(a, b)
	id, err := c.G.Contract([]string{a, b}, influence.MustCombine)
	if err != nil {
		return "", fmt.Errorf("cluster: contract: %w", err)
	}
	c.Trace = append(c.Trace, Step{A: a, B: b, Mutual: mutual, Result: id, Rule: rule})
	c.led.Append(ledger.Record{
		Kind: ledger.KindMerge, Stage: "condense", Rule: rule,
		A: a, B: b, Score: mutual, Result: id, Attempt: c.ledAttempt,
	})
	if c.span != nil {
		c.span.Event("merge",
			obs.String("rule", rule),
			obs.String("a", a),
			obs.String("b", b),
			obs.Float("mutual", mutual),
			obs.String("result", id),
			obs.Int("nodes_left", c.G.NumNodes()))
	}
	if m := c.metrics; m != nil {
		m.merges.Inc()
		m.mergeMutual.Observe(mutual)
		m.clusterSizeAfter.Set(float64(c.G.NumNodes()))
	}
	return id, nil
}

// backtrack books one undone pairing decision of the criticality search
// (§6.2's conflict resolution) as an event and a counter tick.
func (c *Condenser) backtrack(hi, lo string) {
	c.led.Append(ledger.Record{
		Kind: ledger.KindBacktrack, Stage: "condense", Rule: "criticality-pair",
		A: hi, B: lo, Detail: "pairing conflict, partner choice undone",
		Attempt: c.ledAttempt,
	})
	if c.span != nil {
		c.span.Event("backtrack",
			obs.String("high", hi),
			obs.String("low", lo),
			obs.String("why", "pairing conflict, partner choice undone"))
	}
	if m := c.metrics; m != nil {
		m.backtracks.Inc()
	}
}

// Partition returns the current node groups as member lists, sorted.
func (c *Condenser) Partition() [][]string {
	nodes := c.G.Nodes()
	out := make([][]string, 0, len(nodes))
	for _, id := range nodes {
		out = append(out, graph.Members(id))
	}
	return out
}

// checkTarget validates a reduction target against the current graph.
func (c *Condenser) checkTarget(target int) error {
	n := c.G.NumNodes()
	if target < 1 || target > n {
		return fmt.Errorf("%w: target %d with %d nodes", ErrBadTarget, target, n)
	}
	return nil
}

// criticalityOf reads a node's criticality attribute.
func (c *Condenser) criticalityOf(id string) float64 {
	return c.G.Attrs(id).Value(attrs.Criticality)
}
