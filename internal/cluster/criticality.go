package cluster

import (
	"fmt"
	"sort"
)

// ReduceByCriticality implements §6.2 (Approach B): "the objective is to
// separate critical processes, so that the same faults affect a minimal
// number of such processes."
//
// Per round:
//
//  1. List processes in descending order of criticality.
//  2. Combine the most critical process with the least critical process,
//     the second most critical with the second least, and so on.
//  3. If a high-criticality process cannot be combined with a
//     low-criticality one due to conflicts (timing infeasibility, or the
//     two are replicas), it is combined "with the process preceding p_l on
//     the criticality list" — implemented as backtracking over partner
//     choices, which reproduces the paper's p3a/p3b conflict resolution
//     exactly.
//  4. In subsequent rounds the clusters are ordered by summary criticality
//     (the max, which is what the attribute combination produces) and the
//     steps repeat until the desired number of nodes is reached.
//
// Rounds stop mid-way once the target count is hit; a round that makes no
// progress returns ErrCannotReduce.
func (c *Condenser) ReduceByCriticality(target int) error {
	if err := c.checkTarget(target); err != nil {
		return err
	}
	for c.G.NumNodes() > target {
		if err := c.checkCtx(); err != nil {
			return err
		}
		pairs, ok := c.pairRound()
		if !ok || len(pairs) == 0 {
			// Distinguish "cancelled mid-search" from "genuinely stuck".
			if err := c.checkCtx(); err != nil {
				return err
			}
			return fmt.Errorf("%w: %d nodes remain, target %d",
				ErrCannotReduce, c.G.NumNodes(), target)
		}
		for _, p := range pairs {
			if c.G.NumNodes() <= target {
				break
			}
			if _, err := c.Combine(p[0], p[1], "criticality-pair"); err != nil {
				return err
			}
		}
	}
	return nil
}

// pairRound computes one round of most-with-least pairing over the current
// nodes, with backtracking on conflicts. It returns the chosen pairs in
// pairing order. Odd node counts leave the median node unpaired.
func (c *Condenser) pairRound() ([][2]string, bool) {
	nodes := c.G.Nodes()
	// Descending criticality, name tie-break (gives the paper's ordering).
	sort.Slice(nodes, func(i, j int) bool {
		ci, cj := c.criticalityOf(nodes[i]), c.criticalityOf(nodes[j])
		if ci != cj {
			return ci > cj
		}
		return nodes[i] < nodes[j]
	})

	// The search prefers solutions with as few unpaired nodes as possible:
	// it first attempts a perfect pairing (one singleton when the count is
	// odd), then relaxes by two singletons at a time. This reproduces the
	// paper's conflict resolution, where the p2b+p4 pairing is undone so
	// that p3a and p3b both find partners.
	n := len(nodes)
	for singletons := n % 2; singletons <= n; singletons += 2 {
		used := make([]bool, n)
		var pairs [][2]string
		// budget bounds each backtracking attempt; large graphs fall back
		// to the next relaxation level instead of searching exhaustively.
		budget := 100000

		var solve func(hi, single int) bool
		solve = func(hi, single int) bool {
			for hi < n && used[hi] {
				hi++
			}
			if hi >= n {
				return true
			}
			if budget <= 0 {
				return false
			}
			if c.ctx != nil && budget%256 == 0 && c.ctx.Err() != nil {
				budget = 0 // drain the search; the caller reports ctx.Err()
				return false
			}
			budget--
			used[hi] = true
			// Partner candidates: least critical first (from the end of
			// the descending list upward).
			for lo := n - 1; lo > hi; lo-- {
				if used[lo] {
					continue
				}
				if ok, _ := c.CanCombine(nodes[hi], nodes[lo]); !ok {
					continue
				}
				used[lo] = true
				pairs = append(pairs, [2]string{nodes[hi], nodes[lo]})
				if solve(hi+1, single) {
					return true
				}
				// The paper's conflict resolution: a later process found no
				// partner, so this tentative pairing is undone and p_hi tries
				// "the process preceding p_l on the criticality list".
				c.backtrack(nodes[hi], nodes[lo])
				pairs = pairs[:len(pairs)-1]
				used[lo] = false
			}
			// Leave hi unpaired if the singleton allowance permits.
			if single > 0 && solve(hi+1, single-1) {
				return true
			}
			used[hi] = false
			return false
		}
		if solve(0, singletons) {
			return pairs, true
		}
	}
	return nil, false
}
