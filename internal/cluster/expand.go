package cluster

import (
	"fmt"

	"repro/internal/attrs"
	"repro/internal/graph"
	"repro/internal/sched"
)

// Expansion is the result of replicating a SW graph per fault-tolerance
// requirements (§5.4, Fig. 4).
type Expansion struct {
	// Graph is the replicated influence graph.
	Graph *graph.Graph
	// ReplicasOf maps each original node id to its replica ids (a node
	// with FT=1 maps to itself).
	ReplicasOf map[string][]string
	// BaseOf maps each replica id back to its original node id.
	BaseOf map[string]string
	// Jobs are the scheduling jobs of all replica nodes.
	Jobs []sched.Job
}

// replicaName derives the i-th replica id of base ("p1" -> "p1a").
func replicaName(base string, i, ft int) string {
	if ft <= 1 {
		return base
	}
	if i < 26 {
		return fmt.Sprintf("%s%c", base, 'a'+i)
	}
	return fmt.Sprintf("%s_r%d", base, i+1)
}

// Expand performs the paper's replication expansion: each node with
// fault-tolerance degree FT ≥ 2 becomes FT replica nodes with identical
// attributes; replicas are linked pairwise by weight-0 replica edges; and
// every influence edge of the original node is duplicated to/from every
// replica ("edges with neighbors are also replicated"). Jobs for replicas
// copy the base node's timing from the supplied job table.
//
// The input graph is not modified.
func Expand(g *graph.Graph, jobs []sched.Job) (*Expansion, error) {
	jm := make(map[string]sched.Job, len(jobs))
	for _, j := range jobs {
		jm[j.Name] = j
	}
	out := &Expansion{
		Graph:      graph.New(),
		ReplicasOf: make(map[string][]string, g.NumNodes()),
		BaseOf:     map[string]string{},
	}
	for _, id := range g.Nodes() {
		a := g.Attrs(id)
		ft := int(a.Value(attrs.FaultTolerance))
		if ft < 1 {
			ft = 1
		}
		names := make([]string, 0, ft)
		for i := 0; i < ft; i++ {
			name := replicaName(id, i, ft)
			if err := out.Graph.AddNode(name, a.Clone()); err != nil {
				return nil, fmt.Errorf("cluster: expand: %w", err)
			}
			names = append(names, name)
			out.BaseOf[name] = id
			if j, ok := jm[id]; ok {
				j.Name = name
				out.Jobs = append(out.Jobs, j)
			}
		}
		out.ReplicasOf[id] = names
		for i := range names {
			for k := i + 1; k < len(names); k++ {
				if err := out.Graph.AddReplicaEdge(names[i], names[k]); err != nil {
					return nil, fmt.Errorf("cluster: expand: %w", err)
				}
			}
		}
	}
	for _, e := range g.Edges() {
		if e.Replica {
			continue
		}
		for _, from := range out.ReplicasOf[e.From] {
			for _, to := range out.ReplicasOf[e.To] {
				if err := out.Graph.SetEdge(from, to, e.Weight, e.Factors...); err != nil {
					return nil, fmt.Errorf("cluster: expand: %w", err)
				}
			}
		}
	}
	return out, nil
}

// Condenser builds a Condenser over the expanded graph and its jobs.
func (e *Expansion) Condenser() *Condenser {
	return NewCondenser(e.Graph, e.Jobs)
}
