package cluster

import (
	"fmt"
	"sort"

	"repro/internal/attrs"
	"repro/internal/graph"
	"repro/internal/sched"
)

// ReduceByInfluence implements heuristic H1 (§5.4): "Combine the two nodes
// with the highest value of mutual influence … Repeat for the next higher
// value of mutual influence, and continue this process until the required
// number of nodes is obtained." Combinations that violate feasibility
// (replica separation, timing) are skipped; if only zero-influence pairs
// remain, the feasible pair with the smallest combined job count is used so
// the target can still be reached.
func (c *Condenser) ReduceByInfluence(target int) error {
	if err := c.checkTarget(target); err != nil {
		return err
	}
	for c.G.NumNodes() > target {
		if err := c.checkCtx(); err != nil {
			return err
		}
		a, b, found := c.bestFeasiblePair()
		if !found {
			// Distinguish "cancelled mid-sweep" from "genuinely stuck".
			if err := c.checkCtx(); err != nil {
				return err
			}
			return fmt.Errorf("%w: %d nodes remain, target %d",
				ErrCannotReduce, c.G.NumNodes(), target)
		}
		if _, err := c.Combine(a, b, "H1"); err != nil {
			return err
		}
	}
	return nil
}

// bestFeasiblePair returns the feasible pair with the highest mutual
// influence; ties break lexicographically. Pairs with zero mutual
// influence are considered last (preferring small clusters), so reduction
// can always proceed when any feasible pair exists.
func (c *Condenser) bestFeasiblePair() (string, string, bool) {
	nodes := c.G.Nodes()
	bestA, bestB := "", ""
	bestMutual := -1.0
	bestSize := 0
	for i, a := range nodes {
		if c.ctx != nil && c.ctx.Err() != nil {
			return "", "", false // caller re-checks and reports the cancellation
		}
		for _, b := range nodes[i+1:] {
			m := c.G.MutualInfluence(a, b)
			size := len(graph.Members(a)) + len(graph.Members(b))
			better := false
			switch {
			case m > bestMutual:
				better = true
			case m == bestMutual && bestMutual > 0:
				// equal positive influence: lexicographic
				better = false // nodes are already in sorted order
			case m == bestMutual && bestMutual == 0 && size < bestSize:
				better = true
			}
			if !better {
				continue
			}
			if ok, _ := c.CanCombine(a, b); !ok {
				continue
			}
			bestA, bestB, bestMutual, bestSize = a, b, m, size
		}
	}
	return bestA, bestB, bestA != ""
}

// ReduceByInfluencePairAll implements the H1 variation: "pair all nodes
// based on influence values and then … repeat the process as needed." Each
// round greedily selects disjoint feasible pairs in descending mutual
// influence and combines them all, stopping mid-round when the target is
// reached.
func (c *Condenser) ReduceByInfluencePairAll(target int) error {
	if err := c.checkTarget(target); err != nil {
		return err
	}
	for c.G.NumNodes() > target {
		if err := c.checkCtx(); err != nil {
			return err
		}
		type pair struct {
			a, b   string
			mutual float64
		}
		nodes := c.G.Nodes()
		var pairs []pair
		for i, a := range nodes {
			for _, b := range nodes[i+1:] {
				pairs = append(pairs, pair{a, b, c.G.MutualInfluence(a, b)})
			}
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].mutual != pairs[j].mutual {
				return pairs[i].mutual > pairs[j].mutual
			}
			if pairs[i].a != pairs[j].a {
				return pairs[i].a < pairs[j].a
			}
			return pairs[i].b < pairs[j].b
		})
		used := map[string]bool{}
		progressed := false
		for _, p := range pairs {
			if c.G.NumNodes() <= target {
				break
			}
			if used[p.a] || used[p.b] {
				continue
			}
			if ok, _ := c.CanCombine(p.a, p.b); !ok {
				continue
			}
			if _, err := c.Combine(p.a, p.b, "H1-pair-all"); err != nil {
				return err
			}
			used[p.a], used[p.b] = true, true
			progressed = true
		}
		if !progressed {
			return fmt.Errorf("%w: %d nodes remain, target %d",
				ErrCannotReduce, c.G.NumNodes(), target)
		}
	}
	return nil
}

// ReduceByMinCut implements heuristic H2 (§5.4): "Find the min-cut of the
// graph. Divide the graph into two parts along the cut. Find the min-cut in
// each half and repeat the process, until the requisite number of
// components has been generated." The variant used here cuts the part with
// the most nodes next (one of the paper's listed variations). The resulting
// parts are then materialised as cluster nodes; parts that violate
// feasibility are repaired by moving nodes to other parts (or the reduction
// fails with ErrCannotReduce).
func (c *Condenser) ReduceByMinCut(target int) error {
	if err := c.checkTarget(target); err != nil {
		return err
	}
	parts := [][]string{c.G.Nodes()}
	for len(parts) < target {
		if err := c.checkCtx(); err != nil {
			return err
		}
		// Cut the largest part next.
		idx := -1
		for i, p := range parts {
			if len(p) < 2 {
				continue
			}
			if idx == -1 || len(p) > len(parts[idx]) {
				idx = i
			}
		}
		if idx == -1 {
			break // all parts are singletons
		}
		sub := induced(c.G, parts[idx])
		cut, err := sub.GlobalMinCut()
		if err != nil {
			return fmt.Errorf("cluster: H2 cut: %w", err)
		}
		parts[idx] = cut.S
		parts = append(parts, cut.T)
	}
	parts = c.repairPartition(parts)
	if parts == nil {
		if err := c.checkCtx(); err != nil {
			return err
		}
		return fmt.Errorf("%w: H2 partition cannot satisfy feasibility", ErrCannotReduce)
	}
	return c.materialise(parts, "H2")
}

// ReduceByMinCutST implements the other H2 variation the paper lists:
// "cut the graph using source and target nodes". Each bisection step picks
// the two highest-importance nodes of the largest part as s and t (they
// are the nodes one most wants separated — critical modules on distinct
// processors) and splits along the minimum s–t cut.
func (c *Condenser) ReduceByMinCutST(target int, w attrs.Weights) error {
	if err := c.checkTarget(target); err != nil {
		return err
	}
	parts := [][]string{c.G.Nodes()}
	for len(parts) < target {
		if err := c.checkCtx(); err != nil {
			return err
		}
		idx := -1
		for i, p := range parts {
			if len(p) < 2 {
				continue
			}
			if idx == -1 || len(p) > len(parts[idx]) {
				idx = i
			}
		}
		if idx == -1 {
			break
		}
		sub := induced(c.G, parts[idx])
		// s and t: the two most important nodes of the part.
		members := append([]string(nil), parts[idx]...)
		sort.Slice(members, func(i, j int) bool {
			ii := w.Importance(c.G.Attrs(members[i]))
			ij := w.Importance(c.G.Attrs(members[j]))
			if ii != ij {
				return ii > ij
			}
			return members[i] < members[j]
		})
		cut, err := sub.MinCutST(members[0], members[1])
		if err != nil {
			return fmt.Errorf("cluster: H2-st cut: %w", err)
		}
		parts[idx] = cut.S
		parts = append(parts, cut.T)
	}
	parts = c.repairPartition(parts)
	if parts == nil {
		if err := c.checkCtx(); err != nil {
			return err
		}
		return fmt.Errorf("%w: H2-st partition cannot satisfy feasibility", ErrCannotReduce)
	}
	return c.materialise(parts, "H2-st")
}

// induced builds the subgraph of g on the given node set.
func induced(g *graph.Graph, ids []string) *graph.Graph {
	in := make(map[string]bool, len(ids))
	for _, id := range ids {
		in[id] = true
	}
	sub := graph.New()
	for _, id := range ids {
		// Construction over an existing graph: errors impossible for
		// distinct known ids, but keep the checks.
		if err := sub.AddNode(id, g.Attrs(id).Clone()); err != nil {
			continue
		}
	}
	for _, e := range g.Edges() {
		if !in[e.From] || !in[e.To] {
			continue
		}
		if e.Replica {
			_ = sub.AddReplicaEdge(e.From, e.To)
		} else {
			_ = sub.SetEdge(e.From, e.To, e.Weight, e.Factors...)
		}
	}
	return sub
}

// groupFeasible reports whether a group of current node ids could form one
// cluster.
func (c *Condenser) groupFeasible(group []string) bool {
	for i, a := range group {
		for _, b := range group[i+1:] {
			if c.G.AreReplicas(a, b) {
				return false
			}
		}
	}
	var all []string
	for _, id := range group {
		all = append(all, graph.Members(id)...)
	}
	return schedFeasibleFor(c, all)
}

// schedFeasibleFor checks schedulability of the union of the base members'
// jobs.
func schedFeasibleFor(c *Condenser, baseMembers []string) bool {
	jobs := make([]sched.Job, 0, len(baseMembers))
	for _, m := range baseMembers {
		if j, ok := c.jobs[m]; ok {
			jobs = append(jobs, j)
		}
	}
	return sched.FeasibleSet(jobs)
}

// materialise merges each multi-node part into one cluster node.
func (c *Condenser) materialise(parts [][]string, rule string) error {
	for _, p := range parts {
		if err := c.checkCtx(); err != nil {
			return err
		}
		if len(p) < 2 {
			continue
		}
		sort.Strings(p)
		cur := p[0]
		for _, next := range p[1:] {
			id, err := c.Combine(cur, next, rule)
			if err != nil {
				return err
			}
			cur = id
		}
	}
	return nil
}

// repairPartition moves nodes out of infeasible groups into feasible ones.
// Returns nil if the partition cannot be repaired.
func (c *Condenser) repairPartition(parts [][]string) [][]string {
	const maxPasses = 16
	for pass := 0; pass < maxPasses; pass++ {
		if c.ctx != nil && c.ctx.Err() != nil {
			return nil // callers re-check and report the cancellation
		}
		fixed := true
		for gi := range parts {
			if c.groupFeasible(parts[gi]) {
				continue
			}
			fixed = false
			// Move the node whose removal best helps: try each member,
			// prefer moving the one with the least mutual influence to the
			// rest of its group.
			moved := false
			order := c.evictionOrder(parts[gi])
			for _, victim := range order {
				for gj := range parts {
					if gi == gj {
						continue
					}
					candidate := append(append([]string(nil), parts[gj]...), victim)
					if !c.groupFeasible(candidate) {
						continue
					}
					parts[gj] = candidate
					parts[gi] = remove(parts[gi], victim)
					moved = true
					break
				}
				if moved {
					break
				}
			}
			if !moved {
				return nil
			}
		}
		if fixed {
			return parts
		}
	}
	return nil
}

// evictionOrder sorts group members by ascending mutual influence with the
// rest of the group, so the least-coupled node moves first.
func (c *Condenser) evictionOrder(group []string) []string {
	type scored struct {
		id   string
		bond float64
	}
	out := make([]scored, 0, len(group))
	for _, id := range group {
		bond := 0.0
		for _, other := range group {
			if other != id {
				bond += c.G.MutualInfluence(id, other)
			}
		}
		out = append(out, scored{id, bond})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].bond != out[j].bond {
			return out[i].bond < out[j].bond
		}
		return out[i].id < out[j].id
	})
	ids := make([]string, len(out))
	for i, s := range out {
		ids[i] = s.id
	}
	return ids
}

func remove(xs []string, x string) []string {
	out := xs[:0]
	for _, v := range xs {
		if v != x {
			out = append(out, v)
		}
	}
	return out
}

// ReduceBySpheres implements heuristic H3 (§5.4): "Start with the most
// important node … For n HW nodes, identify the n most important SW nodes,
// and define their 'spheres of influence'. Map each group onto a different
// HW node." The n most important nodes seed the groups; every other node
// joins the feasible seed group with which it has the highest mutual
// influence (ties and zero influence fall to the least-loaded feasible
// group).
func (c *Condenser) ReduceBySpheres(target int, w attrs.Weights) error {
	if err := c.checkTarget(target); err != nil {
		return err
	}
	nodes := c.G.Nodes()
	type ranked struct {
		id         string
		importance float64
	}
	rs := make([]ranked, 0, len(nodes))
	for _, id := range nodes {
		rs = append(rs, ranked{id, w.Importance(c.G.Attrs(id))})
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].importance != rs[j].importance {
			return rs[i].importance > rs[j].importance
		}
		return rs[i].id < rs[j].id
	})
	groups := make([][]string, target)
	for i := 0; i < target; i++ {
		groups[i] = []string{rs[i].id}
	}
	for _, r := range rs[target:] {
		if err := c.checkCtx(); err != nil {
			return err
		}
		bestG, bestScore := -1, -1.0
		bestLoad := 0
		for gi, grp := range groups {
			candidate := append(append([]string(nil), grp...), r.id)
			if !c.groupFeasible(candidate) {
				continue
			}
			score := 0.0
			for _, member := range grp {
				score += c.G.MutualInfluence(r.id, member)
			}
			if bestG == -1 || score > bestScore ||
				(score == bestScore && len(grp) < bestLoad) {
				bestG, bestScore, bestLoad = gi, score, len(grp)
			}
		}
		if bestG == -1 {
			return fmt.Errorf("%w: H3 cannot place %q", ErrCannotReduce, r.id)
		}
		groups[bestG] = append(groups[bestG], r.id)
	}
	return c.materialise(groups, "H3")
}
