package cluster

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/attrs"
	"repro/internal/graph"
	"repro/internal/sched"
)

// randomSystem builds a seeded random influence graph with loose timing so
// that feasibility rarely blocks merges, plus its job table.
func randomSystem(seed uint64, n int) (*graph.Graph, []sched.Job) {
	rng := rand.New(rand.NewPCG(seed, seed^0xbeef))
	g := graph.New()
	jobs := make([]sched.Job, 0, n)
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		name := string(rune('a' + i))
		names = append(names, name)
		ft := 1
		if rng.IntN(4) == 0 {
			ft = 2
		}
		a := attrs.Timing(1+rng.Float64()*10, ft, 0, 1000, 1+rng.Float64()*3)
		if err := g.AddNode(name, a); err != nil {
			panic(err)
		}
		jobs = append(jobs, sched.Job{Name: name, EST: 0, TCD: 1000, CT: a.Value(attrs.ComputeTime)})
	}
	for i := 0; i < n*2; i++ {
		a, b := names[rng.IntN(n)], names[rng.IntN(n)]
		if a == b {
			continue
		}
		_ = g.SetEdge(a, b, 0.05+rng.Float64()*0.8)
	}
	return g, jobs
}

func totalWeight(g *graph.Graph) float64 {
	t := 0.0
	for _, e := range g.Edges() {
		if !e.Replica {
			t += e.Weight
		}
	}
	return t
}

// TestContractNeverIncreasesPairwiseInfluence checks the Eq. (4) bound:
// after any contraction, each remaining edge weight stays a probability
// and the combined influence on a neighbour is at least the max of its
// components (checked via CrossWeight monotonicity of the partition).
func TestContractNeverIncreasesPairwiseInfluence(t *testing.T) {
	f := func(seed uint16) bool {
		g, jobs := randomSystem(uint64(seed), 8)
		full := g.Clone()
		c := NewCondenser(g, jobs)
		// Merge any three feasible pairs.
		for step := 0; step < 3; step++ {
			a, b, ok := c.bestFeasiblePair()
			if !ok {
				break
			}
			before := full.CrossWeight(c.Partition())
			if _, err := c.Combine(a, b, "prop"); err != nil {
				return false
			}
			after := full.CrossWeight(c.Partition())
			// Each merge can only internalise influence.
			if after > before+1e-9 {
				return false
			}
			// All remaining edges are probabilities.
			for _, e := range c.G.Edges() {
				if !e.Replica && (e.Weight < 0 || e.Weight > 1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestReductionPreservesBaseMembers checks no base node is ever lost or
// duplicated by any heuristic.
func TestReductionPreservesBaseMembers(t *testing.T) {
	heuristics := []struct {
		name   string
		reduce func(c *Condenser, target int) error
	}{
		{"H1", func(c *Condenser, tgt int) error { return c.ReduceByInfluence(tgt) }},
		{"H1pair", func(c *Condenser, tgt int) error { return c.ReduceByInfluencePairAll(tgt) }},
		{"H2", func(c *Condenser, tgt int) error { return c.ReduceByMinCut(tgt) }},
		{"H3", func(c *Condenser, tgt int) error { return c.ReduceBySpheres(tgt, defaultWeights(t)) }},
		{"crit", func(c *Condenser, tgt int) error { return c.ReduceByCriticality(tgt) }},
		{"sep", func(c *Condenser, tgt int) error { return c.ReduceBySeparation(tgt, 4) }},
	}
	for _, h := range heuristics {
		t.Run(h.name, func(t *testing.T) {
			f := func(seed uint16) bool {
				g, jobs := randomSystem(uint64(seed)+7, 9)
				exp, err := Expand(g, jobs)
				if err != nil {
					return false
				}
				want := map[string]bool{}
				for _, n := range exp.Graph.Nodes() {
					want[n] = true
				}
				c := NewCondenser(exp.Graph, exp.Jobs)
				target := 4
				if err := h.reduce(c, target); err != nil {
					return true // infeasible reductions are acceptable
				}
				got := map[string]bool{}
				for _, grp := range c.Partition() {
					for _, m := range grp {
						if got[m] {
							return false // duplicated
						}
						got[m] = true
					}
				}
				if len(got) != len(want) {
					return false
				}
				for n := range want {
					if !got[n] {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestExpandEdgeCounts checks the combinatorics of replication: each
// original edge u→v becomes FT(u)×FT(v) edges, and replica links number
// Σ FT(FT−1).
func TestExpandEdgeCounts(t *testing.T) {
	f := func(seed uint16) bool {
		g, jobs := randomSystem(uint64(seed)+99, 7)
		exp, err := Expand(g, jobs)
		if err != nil {
			return false
		}
		ftOf := func(id string) int {
			ft := int(g.Attrs(id).Value(attrs.FaultTolerance))
			if ft < 1 {
				ft = 1
			}
			return ft
		}
		wantWeighted := 0
		for _, e := range g.Edges() {
			wantWeighted += ftOf(e.From) * ftOf(e.To)
		}
		wantReplica := 0
		for _, id := range g.Nodes() {
			ft := ftOf(id)
			wantReplica += ft * (ft - 1) // directed pairs
		}
		gotWeighted, gotReplica := 0, 0
		for _, e := range exp.Graph.Edges() {
			if e.Replica {
				gotReplica++
			} else {
				gotWeighted++
			}
		}
		return gotWeighted == wantWeighted && gotReplica == wantReplica
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestTotalWeightConservedByExpansion checks expansion multiplies but
// never loses influence mass.
func TestTotalWeightConservedByExpansion(t *testing.T) {
	f := func(seed uint16) bool {
		g, jobs := randomSystem(uint64(seed)+3, 6)
		exp, err := Expand(g, jobs)
		if err != nil {
			return false
		}
		return totalWeight(exp.Graph) >= totalWeight(g)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestH1Deterministic checks the same seed yields byte-identical traces.
func TestH1Deterministic(t *testing.T) {
	run := func() []Step {
		g, jobs := randomSystem(42, 10)
		exp, err := Expand(g, jobs)
		if err != nil {
			t.Fatal(err)
		}
		c := NewCondenser(exp.Graph, exp.Jobs)
		if err := c.ReduceByInfluence(5); err != nil {
			t.Fatal(err)
		}
		return c.Trace
	}
	t1, t2 := run(), run()
	if len(t1) != len(t2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] && !(t1[i].A == t2[i].A && t1[i].B == t2[i].B &&
			t1[i].Result == t2[i].Result && math.Abs(t1[i].Mutual-t2[i].Mutual) < 1e-12) {
			t.Errorf("step %d differs: %v vs %v", i, t1[i], t2[i])
		}
	}
}
