package cluster

import (
	"fmt"

	"repro/internal/influence"
)

// ReduceBySeparation is the transitive-coupling variant of H1: instead of
// combining the pair with the highest *direct* mutual influence, it
// combines the feasible pair with the lowest mutual *separation* (Eq. 3),
// which also accounts for influence routed through intermediate FCMs
// ("it is also possible to increase separation by reducing the influence
// between other FCMs through which the two interact", §4.2.4).
//
// order is the truncation order of the separation series
// (influence.DefaultMaxOrder when < 1). This heuristic is the ablation
// DESIGN.md §6 calls out against H1's direct-influence criterion.
func (c *Condenser) ReduceBySeparation(target, order int) error {
	if err := c.checkTarget(target); err != nil {
		return err
	}
	for c.G.NumNodes() > target {
		if err := c.checkCtx(); err != nil {
			return err
		}
		p, ids := c.G.Matrix()
		sep, err := influence.SeparationMatrixWorkers(c.ctx, p, order, c.workers)
		if err != nil {
			return fmt.Errorf("cluster: separation: %w", err)
		}
		// Mutual coupling of a pair: (1−sep(i,j)) + (1−sep(j,i)), the
		// separation analogue of mutual influence. Pick the most coupled
		// feasible pair; ties break by id order (ids are sorted).
		bestI, bestJ := -1, -1
		bestCoupling := -1.0
		for i := range ids {
			for j := i + 1; j < len(ids); j++ {
				coupling := (1 - sep[i][j]) + (1 - sep[j][i])
				if coupling <= bestCoupling {
					continue
				}
				if ok, _ := c.CanCombine(ids[i], ids[j]); !ok {
					continue
				}
				bestI, bestJ, bestCoupling = i, j, coupling
			}
		}
		if bestI < 0 {
			return fmt.Errorf("%w: %d nodes remain, target %d",
				ErrCannotReduce, c.G.NumNodes(), target)
		}
		if _, err := c.Combine(ids[bestI], ids[bestJ], "separation"); err != nil {
			return err
		}
	}
	return nil
}
