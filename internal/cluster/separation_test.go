package cluster

import (
	"errors"
	"testing"

	"repro/internal/attrs"
	"repro/internal/graph"
	"repro/internal/sched"
)

func TestReduceBySeparationPaperExample(t *testing.T) {
	exp := expandPaper(t)
	c := exp.Condenser()
	if err := c.ReduceBySeparation(6, 0); err != nil {
		t.Fatal(err)
	}
	if got := c.G.NumNodes(); got != 6 {
		t.Errorf("nodes = %d, want 6", got)
	}
	// Replica separation still holds.
	owner := map[string]string{}
	for _, node := range c.G.Nodes() {
		for _, m := range graph.Members(node) {
			owner[m] = node
		}
	}
	for _, pair := range [][2]string{{"p1a", "p1b"}, {"p1b", "p1c"}, {"p2a", "p2b"}, {"p3a", "p3b"}} {
		if owner[pair[0]] == owner[pair[1]] {
			t.Errorf("replicas %v share a cluster", pair)
		}
	}
	for _, s := range c.Trace {
		if s.Rule != "separation" {
			t.Errorf("trace rule = %q", s.Rule)
		}
	}
}

func TestReduceBySeparationSeesTransitiveCoupling(t *testing.T) {
	// a->m 0.8, m->b 0.8 and a weak direct pair (c,d) at 0.3. Direct
	// mutual influence ranks (c,d)=0.3 above (a,b)=0; separation at order
	// >= 2 ranks (a,b) coupling 1-sep = 0.64 above 0.3. The first merge
	// differs between the two criteria — exactly the ablation's point.
	g := graph.New()
	loose := attrs.Timing(1, 1, 0, 100, 1)
	for _, n := range []string{"a", "m", "b", "c", "d"} {
		if err := g.AddNode(n, loose); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetEdge("a", "m", 0.8); err != nil {
		t.Fatal(err)
	}
	if err := g.SetEdge("m", "b", 0.8); err != nil {
		t.Fatal(err)
	}
	if err := g.SetEdge("c", "d", 0.3); err != nil {
		t.Fatal(err)
	}
	jobs := []sched.Job{
		{Name: "a", EST: 0, TCD: 100, CT: 1},
		{Name: "m", EST: 0, TCD: 100, CT: 1},
		{Name: "b", EST: 0, TCD: 100, CT: 1},
		{Name: "c", EST: 0, TCD: 100, CT: 1},
		{Name: "d", EST: 0, TCD: 100, CT: 1},
	}

	cSep := NewCondenser(g.Clone(), jobs)
	if err := cSep.ReduceBySeparation(4, 4); err != nil {
		t.Fatal(err)
	}
	first := cSep.Trace[0]
	// The most coupled pair by separation is (a,m) or (m,b) (direct 0.8);
	// then (a,b) via transitivity outranks (c,d). Verify the separation
	// criterion put a/m/b interactions ahead of (c,d).
	if (first.A == "c" && first.B == "d") || (first.A == "d" && first.B == "c") {
		t.Errorf("separation criterion chose the weak direct pair first: %+v", first)
	}

	// Reduce further: with target 3, separation groups the chain before
	// touching (c,d).
	cSep2 := NewCondenser(g.Clone(), jobs)
	if err := cSep2.ReduceBySeparation(3, 4); err != nil {
		t.Fatal(err)
	}
	for _, s := range cSep2.Trace {
		if (s.A == "c" && s.B == "d") || (s.A == "d" && s.B == "c") {
			t.Errorf("chain not exhausted before weak pair: %v", cSep2.Trace)
		}
	}
}

func TestReduceBySeparationErrors(t *testing.T) {
	exp := expandPaper(t)
	c := exp.Condenser()
	if err := c.ReduceBySeparation(0, 0); !errors.Is(err, ErrBadTarget) {
		t.Errorf("err = %v, want ErrBadTarget", err)
	}
	if err := c.ReduceBySeparation(2, 0); !errors.Is(err, ErrCannotReduce) {
		t.Errorf("err = %v, want ErrCannotReduce", err)
	}
}

func TestSeparationVsH1OnPaperExample(t *testing.T) {
	// Ablation check: both criteria produce valid 6-cluster partitions;
	// their containment is comparable (within a factor) on this example.
	exp1 := expandPaper(t)
	full := exp1.Graph.Clone()
	h1 := exp1.Condenser()
	if err := h1.ReduceByInfluence(6); err != nil {
		t.Fatal(err)
	}
	exp2 := expandPaper(t)
	sep := exp2.Condenser()
	if err := sep.ReduceBySeparation(6, 0); err != nil {
		t.Fatal(err)
	}
	h1Cross := full.CrossWeight(h1.Partition())
	sepCross := full.CrossWeight(sep.Partition())
	if sepCross > 2*h1Cross {
		t.Errorf("separation-guided cross %g far above H1 %g", sepCross, h1Cross)
	}
}
