package cluster

import (
	"fmt"
	"sort"
)

// ReduceByTiming implements the Fig. 8 technique of §6.2, used "in some
// applications [where] the criticality of all processes might be similar …
// other attributes (such as timing) can be used to generate the mapping":
//
//	"Compute an ordered list of SW nodes. Place the nodes which should
//	preferably be mapped onto the same node adjacent to each other. Next,
//	map SW nodes onto a HW node starting at the top of the list
//	maintaining their compliance to the specified constraints."
//
// Nodes are ordered by (EST, TCD, name) so jobs with compatible windows sit
// adjacent; each node joins the first existing group that remains feasible
// (first-fit), opening a new group otherwise. maxGroups of 0 means
// unlimited; a positive maxGroups fails with ErrCannotReduce if a node fits
// no group and the group budget is exhausted.
func (c *Condenser) ReduceByTiming(maxGroups int) error {
	nodes := c.G.Nodes()
	type key struct {
		est, tcd float64
	}
	keys := make(map[string]key, len(nodes))
	for _, id := range nodes {
		jobs := c.JobsOf(id)
		if len(jobs) == 0 {
			keys[id] = key{}
			continue
		}
		k := key{est: jobs[0].EST, tcd: jobs[0].TCD}
		for _, j := range jobs[1:] {
			if j.EST < k.est {
				k.est = j.EST
			}
			if j.TCD < k.tcd {
				k.tcd = j.TCD
			}
		}
		keys[id] = k
	}
	sort.Slice(nodes, func(i, j int) bool {
		a, b := keys[nodes[i]], keys[nodes[j]]
		if a.est != b.est {
			return a.est < b.est
		}
		if a.tcd != b.tcd {
			return a.tcd < b.tcd
		}
		return nodes[i] < nodes[j]
	})

	var groups [][]string
	for _, id := range nodes {
		if err := c.checkCtx(); err != nil {
			return err
		}
		placed := false
		for gi := range groups {
			candidate := append(append([]string(nil), groups[gi]...), id)
			if c.groupFeasible(candidate) {
				groups[gi] = candidate
				placed = true
				break
			}
		}
		if placed {
			continue
		}
		if maxGroups > 0 && len(groups) >= maxGroups {
			return fmt.Errorf("%w: %q fits no group within %d groups",
				ErrCannotReduce, id, maxGroups)
		}
		groups = append(groups, []string{id})
	}
	return c.materialise(groups, "timing-order")
}
