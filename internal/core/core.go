// Package core implements the fault-containment-module (FCM) hierarchy and
// the rules of composition that are the primary contribution of the
// dependability-driven integration framework (ICDCS 1998 §3–§4).
//
// Software is partitioned into a three-level hierarchy of FCMs —
// procedures, tasks and processes (Fig. 1) — and composed under five rules:
//
//	R1  Any number of FCMs at one level can be integrated to form an FCM at
//	    the next higher level (the layered integration DAG).
//	R2  The integration DAG is a tree. Function reuse across FCMs requires
//	    separate compilation (cloning) of the shared function per caller.
//	R3  Future integration by merging: an FCM can be merged only with its
//	    siblings.
//	R4  If children of different parents are integrated, their parents must
//	    be integrated.
//	R5  Whenever an FCM is modified, its parent FCM — and only its parent —
//	    also needs to be tested, including the interfaces with its siblings.
//
// Two composition modes exist: merging (boundaries between constituents
// disappear) and grouping (constituents keep their mutual interfaces inside
// a new parent). Merging is primarily horizontal; grouping is usually
// vertical.
package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/attrs"
	"repro/internal/influence"
)

// Level aliases the FCM hierarchy level shared with the influence metrics.
type Level = influence.Level

// Hierarchy levels re-exported for callers of this package.
const (
	ProcedureLevel = influence.ProcedureLevel
	TaskLevel      = influence.TaskLevel
	ProcessLevel   = influence.ProcessLevel
)

// Rule-violation and structural errors.
var (
	// ErrRuleR1 marks a parent/child level mismatch: a child must sit
	// exactly one level below its parent.
	ErrRuleR1 = errors.New("core: R1 violation: child must be exactly one level below parent")
	// ErrRuleR2 marks an attempt to give an FCM two parents (the
	// integration DAG must be a tree). Clone the module instead.
	ErrRuleR2 = errors.New("core: R2 violation: FCM already has a parent (integration DAG must be a tree; clone instead)")
	// ErrRuleR3 marks an attempt to merge non-siblings.
	ErrRuleR3 = errors.New("core: R3 violation: FCMs can only be merged with siblings")
	// ErrRuleR4 marks an attempt to integrate children of different
	// parents without integrating the parents.
	ErrRuleR4 = errors.New("core: R4 violation: integrating children of different parents requires integrating the parents")
	// ErrDuplicateName marks a name collision; task names are unique and
	// static ("only one instance of a given task can be live at any time").
	ErrDuplicateName = errors.New("core: duplicate FCM name")
	// ErrUnknownFCM marks a lookup of a name not in the hierarchy.
	ErrUnknownFCM = errors.New("core: unknown FCM")
	// ErrNotStateless marks an attempt to clone a procedure with state;
	// only stateless procedures "may be freely replicated" (§2).
	ErrNotStateless = errors.New("core: only stateless procedures may be cloned")
	// ErrLevel marks an operation applied at the wrong hierarchy level.
	ErrLevel = errors.New("core: operation not defined at this FCM level")
)

// FCM is one fault containment module in the hierarchy.
type FCM struct {
	name      string
	level     Level
	attrs     attrs.Set
	parent    *FCM
	children  map[string]*FCM
	stateless bool // meaningful at procedure level only
	modified  bool
	// mergedFrom records the names merged into this FCM, for audit trails.
	mergedFrom []string
}

// Name returns the FCM's unique name.
func (f *FCM) Name() string { return f.name }

// Level returns the FCM's hierarchy level.
func (f *FCM) Level() Level { return f.level }

// Attrs returns the FCM's attribute set.
func (f *FCM) Attrs() attrs.Set { return f.attrs }

// SetAttrs replaces the FCM's attribute set.
func (f *FCM) SetAttrs(a attrs.Set) { f.attrs = a }

// Parent returns the FCM's parent, or nil for a root.
func (f *FCM) Parent() *FCM { return f.parent }

// Stateless reports whether the FCM is a stateless procedure.
func (f *FCM) Stateless() bool { return f.stateless }

// Modified reports whether the FCM has been marked modified since the last
// certification.
func (f *FCM) Modified() bool { return f.modified }

// MergedFrom lists the names of FCMs previously merged into this one.
func (f *FCM) MergedFrom() []string {
	return append([]string(nil), f.mergedFrom...)
}

// Children returns the FCM's children sorted by name.
func (f *FCM) Children() []*FCM {
	out := make([]*FCM, 0, len(f.children))
	for _, c := range f.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Siblings returns the FCM's siblings (same parent, excluding itself),
// sorted by name. A root FCM's siblings are the other roots at its level.
func (f *FCM) Siblings(h *Hierarchy) []*FCM {
	var pool []*FCM
	if f.parent != nil {
		pool = f.parent.Children()
	} else if h != nil {
		pool = h.Roots(f.level)
	}
	out := make([]*FCM, 0, len(pool))
	for _, s := range pool {
		if s != f {
			out = append(out, s)
		}
	}
	return out
}

// Hierarchy is a forest of FCM trees with a global unique-name index.
// The zero value is not usable; call NewHierarchy.
type Hierarchy struct {
	index map[string]*FCM
}

// NewHierarchy returns an empty hierarchy.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{index: make(map[string]*FCM)}
}

// Lookup returns the FCM with the given name.
func (h *Hierarchy) Lookup(name string) (*FCM, error) {
	f, ok := h.index[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownFCM, name)
	}
	return f, nil
}

// Len returns the number of FCMs in the hierarchy.
func (h *Hierarchy) Len() int { return len(h.index) }

// Roots returns the parentless FCMs at the given level, sorted by name.
// Pass 0 for roots at every level.
func (h *Hierarchy) Roots(level Level) []*FCM {
	var out []*FCM
	for _, f := range h.index {
		if f.parent == nil && (level == 0 || f.level == level) {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// All returns every FCM, sorted by name.
func (h *Hierarchy) All() []*FCM {
	out := make([]*FCM, 0, len(h.index))
	for _, f := range h.index {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (h *Hierarchy) newFCM(name string, level Level, a attrs.Set, stateless bool) (*FCM, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: empty name", ErrUnknownFCM)
	}
	if !level.Valid() {
		return nil, fmt.Errorf("%w: level %d", ErrLevel, int(level))
	}
	if _, ok := h.index[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateName, name)
	}
	f := &FCM{
		name:      name,
		level:     level,
		attrs:     a,
		children:  make(map[string]*FCM),
		stateless: stateless,
	}
	h.index[name] = f
	return f, nil
}

// AddProcess creates a top-level process FCM.
func (h *Hierarchy) AddProcess(name string, a attrs.Set) (*FCM, error) {
	return h.newFCM(name, ProcessLevel, a, false)
}

// AddTask creates a task FCM inside the named process.
func (h *Hierarchy) AddTask(process, name string, a attrs.Set) (*FCM, error) {
	p, err := h.Lookup(process)
	if err != nil {
		return nil, err
	}
	if p.level != ProcessLevel {
		return nil, fmt.Errorf("%w: %q is a %s, not a process", ErrRuleR1, process, p.level)
	}
	t, err := h.newFCM(name, TaskLevel, a, false)
	if err != nil {
		return nil, err
	}
	t.parent = p
	p.children[name] = t
	return t, nil
}

// AddProcedure creates a procedure FCM inside the named task. Stateless
// procedures (no static variables, results independent of invocation
// order) may later be cloned per R2's reuse rule.
func (h *Hierarchy) AddProcedure(task, name string, a attrs.Set, stateless bool) (*FCM, error) {
	t, err := h.Lookup(task)
	if err != nil {
		return nil, err
	}
	if t.level != TaskLevel {
		return nil, fmt.Errorf("%w: %q is a %s, not a task", ErrRuleR1, task, t.level)
	}
	p, err := h.newFCM(name, ProcedureLevel, a, stateless)
	if err != nil {
		return nil, err
	}
	p.parent = t
	t.children[name] = p
	return p, nil
}

// AddFree creates a parentless FCM at an arbitrary level, for bottom-up
// construction with Group.
func (h *Hierarchy) AddFree(name string, level Level, a attrs.Set, stateless bool) (*FCM, error) {
	if stateless && level != ProcedureLevel {
		return nil, fmt.Errorf("%w: statelessness applies to procedures", ErrLevel)
	}
	return h.newFCM(name, level, a, stateless)
}

// Group performs vertical integration (R1): it creates a new FCM named
// parentName at the level above the members and attaches every member as a
// child. Members must all be parentless (R2: no FCM may acquire a second
// parent) and at the same level. The parent's attributes are the standard
// combination of the members' attributes.
func (h *Hierarchy) Group(parentName string, memberNames []string) (*FCM, error) {
	if len(memberNames) == 0 {
		return nil, fmt.Errorf("%w: grouping needs at least one member", ErrUnknownFCM)
	}
	members := make([]*FCM, 0, len(memberNames))
	for _, n := range memberNames {
		m, err := h.Lookup(n)
		if err != nil {
			return nil, err
		}
		members = append(members, m)
	}
	lvl := members[0].level
	for _, m := range members {
		if m.level != lvl {
			return nil, fmt.Errorf("%w: %q is %s, %q is %s",
				ErrRuleR1, members[0].name, lvl, m.name, m.level)
		}
		if m.parent != nil {
			return nil, fmt.Errorf("%w: %q is already a child of %q",
				ErrRuleR2, m.name, m.parent.name)
		}
	}
	if lvl == ProcessLevel {
		return nil, fmt.Errorf("%w: processes are the top level", ErrLevel)
	}
	sets := make([]attrs.Set, 0, len(members))
	for _, m := range members {
		sets = append(sets, m.attrs)
	}
	parent, err := h.newFCM(parentName, lvl+1, attrs.CombineAll(sets...), false)
	if err != nil {
		return nil, err
	}
	for _, m := range members {
		m.parent = parent
		parent.children[m.name] = m
	}
	return parent, nil
}

// Merge performs horizontal integration by merging (R3): the named sibling
// FCMs collapse into a single FCM whose boundaries subsume them all. The
// result keeps mergedName, takes the combined attributes, and adopts the
// union of children. Non-siblings are rejected with ErrRuleR3 (or ErrRuleR4
// when they are children of different parents, pointing at the remedy).
func (h *Hierarchy) Merge(mergedName string, memberNames []string) (*FCM, error) {
	if len(memberNames) < 2 {
		return nil, fmt.Errorf("%w: merging needs at least two members", ErrUnknownFCM)
	}
	members := make([]*FCM, 0, len(memberNames))
	for _, n := range memberNames {
		m, err := h.Lookup(n)
		if err != nil {
			return nil, err
		}
		members = append(members, m)
	}
	first := members[0]
	for _, m := range members[1:] {
		if m.level != first.level {
			return nil, fmt.Errorf("%w: %q (%s) and %q (%s) are at different levels",
				ErrRuleR3, first.name, first.level, m.name, m.level)
		}
		if m.parent != first.parent {
			// Children of different parents: R4 names the remedy.
			return nil, fmt.Errorf("%w: %q (parent %s) and %q (parent %s)",
				ErrRuleR4, first.name, parentName(first), m.name, parentName(m))
		}
	}
	// Stateful procedures cannot be merged blindly with others; the merged
	// module would break the "results independent of invocation order"
	// model. The paper merges only when "two FCMs have common
	// functionality"; we require procedure merges to be stateless.
	if first.level == ProcedureLevel {
		for _, m := range members {
			if !m.stateless {
				return nil, fmt.Errorf("%w: %q", ErrNotStateless, m.name)
			}
		}
	}

	sets := make([]attrs.Set, 0, len(members))
	var mergedFrom []string
	for _, m := range members {
		sets = append(sets, m.attrs)
		mergedFrom = append(mergedFrom, m.name)
		mergedFrom = append(mergedFrom, m.mergedFrom...)
	}
	sort.Strings(mergedFrom)

	parent := first.parent
	// Detach and delete members.
	children := make(map[string]*FCM)
	for _, m := range members {
		for cn, c := range m.children {
			children[cn] = c
		}
		if m.parent != nil {
			delete(m.parent.children, m.name)
		}
		delete(h.index, m.name)
	}
	merged, err := h.newFCM(mergedName, first.level, attrs.CombineAll(sets...), first.level == ProcedureLevel)
	if err != nil {
		// Restore is not attempted: merged-name collisions are caller bugs
		// surfaced before any detach in the common case (name pre-checked
		// below). Re-index members to keep the hierarchy consistent.
		for _, m := range members {
			h.index[m.name] = m
			if m.parent != nil {
				m.parent.children[m.name] = m
			}
		}
		return nil, err
	}
	merged.mergedFrom = mergedFrom
	merged.children = children
	for _, c := range children {
		c.parent = merged
	}
	if parent != nil {
		merged.parent = parent
		parent.children[mergedName] = merged
		// R5: the parent of a modified (here: merged) FCM must be retested.
		parent.modified = true
	}
	merged.modified = true
	return merged, nil
}

func parentName(f *FCM) string {
	if f.parent == nil {
		return "<root>"
	}
	return f.parent.name
}

// MergeAcross integrates children of different parents by first merging
// the parents (R4) and then merging the children. parentMergedName and
// childMergedName name the two resulting FCMs.
func (h *Hierarchy) MergeAcross(parentMergedName, childMergedName string, childNames []string) (*FCM, error) {
	if len(childNames) < 2 {
		return nil, fmt.Errorf("%w: merging needs at least two members", ErrUnknownFCM)
	}
	parents := make([]string, 0, 2)
	seen := map[string]bool{}
	for _, n := range childNames {
		c, err := h.Lookup(n)
		if err != nil {
			return nil, err
		}
		if c.parent == nil {
			return nil, fmt.Errorf("%w: %q has no parent to integrate", ErrRuleR4, n)
		}
		if !seen[c.parent.name] {
			seen[c.parent.name] = true
			parents = append(parents, c.parent.name)
		}
	}
	if len(parents) > 1 {
		if _, err := h.Merge(parentMergedName, parents); err != nil {
			return nil, err
		}
	}
	return h.Merge(childMergedName, childNames)
}

// CloneProcedure implements R2's reuse rule: "the function must be
// separately compiled with each FCM caller … a source-to-source
// transformation can readily clone the relevant (stateless) procedures."
// It copies the named stateless procedure into the target task under
// cloneName and returns the clone.
func (h *Hierarchy) CloneProcedure(procName, targetTask, cloneName string) (*FCM, error) {
	p, err := h.Lookup(procName)
	if err != nil {
		return nil, err
	}
	if p.level != ProcedureLevel {
		return nil, fmt.Errorf("%w: %q is a %s", ErrLevel, procName, p.level)
	}
	if !p.stateless {
		return nil, fmt.Errorf("%w: %q", ErrNotStateless, procName)
	}
	return h.AddProcedure(targetTask, cloneName, p.attrs.Clone(), true)
}

// ConvertProcessesToTasks implements §3.2's communication rule: "If two
// process level FCMs need to communicate, they are converted into two (or
// more) task level FCMs within the same process." The two processes are
// demoted to tasks inside a freshly created process. The demoted processes
// must currently be leaves or contain only procedure children is NOT
// required by the paper; their task children are flattened into the new
// process alongside them would break R1, so instead each former process
// must have only procedure children (or none).
func (h *Hierarchy) ConvertProcessesToTasks(newProcess string, processNames []string) (*FCM, error) {
	if len(processNames) < 2 {
		return nil, fmt.Errorf("%w: conversion needs at least two processes", ErrUnknownFCM)
	}
	procs := make([]*FCM, 0, len(processNames))
	for _, n := range processNames {
		p, err := h.Lookup(n)
		if err != nil {
			return nil, err
		}
		if p.level != ProcessLevel {
			return nil, fmt.Errorf("%w: %q is a %s, not a process", ErrLevel, n, p.level)
		}
		for _, c := range p.children {
			if c.level != ProcedureLevel {
				return nil, fmt.Errorf("%w: %q still contains task %q; merge or flatten first",
					ErrRuleR1, n, c.name)
			}
		}
		procs = append(procs, p)
	}
	sets := make([]attrs.Set, 0, len(procs))
	for _, p := range procs {
		sets = append(sets, p.attrs)
	}
	np, err := h.newFCM(newProcess, ProcessLevel, attrs.CombineAll(sets...), false)
	if err != nil {
		return nil, err
	}
	for _, p := range procs {
		p.level = TaskLevel
		p.parent = np
		np.children[p.name] = p
	}
	return np, nil
}

// MarkModified records a modification to the named FCM and, per R5,
// propagates the retest obligation to its parent (and only its parent).
func (h *Hierarchy) MarkModified(name string) error {
	f, err := h.Lookup(name)
	if err != nil {
		return err
	}
	f.modified = true
	if f.parent != nil {
		f.parent.modified = true
	}
	return nil
}

// RetestSet returns, per R5, the FCMs that need (re)testing after the
// named FCM was modified: the FCM itself, its parent, and — because the
// parent's test "includ[es] the interfaces with its siblings" — the
// interfaces to each sibling. Interfaces are reported as "a<->b" strings;
// FCMs as names. The grandparent is NOT in the set: that is the point of
// the rule.
func (h *Hierarchy) RetestSet(name string) (fcms []string, interfaces []string, err error) {
	f, err := h.Lookup(name)
	if err != nil {
		return nil, nil, err
	}
	fcms = []string{f.name}
	if f.parent != nil {
		fcms = append(fcms, f.parent.name)
	}
	for _, s := range f.Siblings(h) {
		a, b := f.name, s.name
		if b < a {
			a, b = b, a
		}
		interfaces = append(interfaces, a+"<->"+b)
	}
	sort.Strings(fcms)
	sort.Strings(interfaces)
	return fcms, interfaces, nil
}

// ClearModified resets all modification marks (e.g. after a certification
// pass).
func (h *Hierarchy) ClearModified() {
	for _, f := range h.index {
		f.modified = false
	}
}

// ModifiedFCMs returns the names of all FCMs currently marked modified,
// sorted.
func (h *Hierarchy) ModifiedFCMs() []string {
	var out []string
	for _, f := range h.index {
		if f.modified {
			out = append(out, f.name)
		}
	}
	sort.Strings(out)
	return out
}

// Validate checks the structural invariants of the whole hierarchy:
// R1 (levels step by one), R2 (tree: each FCM reachable from exactly one
// root path, parent/child links consistent), unique names (guaranteed by
// the index), and stateless marks only on procedures.
func (h *Hierarchy) Validate() error {
	for name, f := range h.index {
		if f.name != name {
			return fmt.Errorf("core: index corruption: %q vs %q", name, f.name)
		}
		if f.stateless && f.level != ProcedureLevel {
			return fmt.Errorf("%w: %q is stateless but a %s", ErrLevel, name, f.level)
		}
		if f.parent != nil {
			if f.parent.level != f.level+1 {
				return fmt.Errorf("%w: %q (%s) under %q (%s)",
					ErrRuleR1, f.name, f.level, f.parent.name, f.parent.level)
			}
			if got, ok := f.parent.children[f.name]; !ok || got != f {
				return fmt.Errorf("%w: %q not registered under parent %q",
					ErrRuleR2, f.name, f.parent.name)
			}
		}
		for cn, c := range f.children {
			if c.parent != f {
				return fmt.Errorf("%w: child %q of %q has parent %q",
					ErrRuleR2, cn, f.name, parentName(c))
			}
		}
	}
	return nil
}

// RollUp recomputes every non-leaf FCM's attributes bottom-up from its
// children, per §4.3's combination rules ("When SW FCMs are integrated,
// their associated attributes also need to be combined") — used after
// child attributes change, so parents always carry the most stringent /
// aggregate values. An FCM with no children keeps its own attributes; a
// parent's own attributes are replaced by the combination of its
// children's (the paper's model: a composite FCM is exactly its parts).
func (h *Hierarchy) RollUp() {
	var rec func(f *FCM) attrs.Set
	rec = func(f *FCM) attrs.Set {
		children := f.Children()
		if len(children) == 0 {
			return f.attrs
		}
		sets := make([]attrs.Set, 0, len(children))
		for _, c := range children {
			sets = append(sets, rec(c))
		}
		f.attrs = attrs.CombineAll(sets...)
		return f.attrs
	}
	for _, f := range h.Roots(0) {
		rec(f)
	}
}

// Walk visits every FCM reachable from the given root in depth-first,
// name-sorted order, calling fn with the FCM and its depth (root = 0).
func Walk(root *FCM, fn func(f *FCM, depth int)) {
	var rec func(f *FCM, d int)
	rec = func(f *FCM, d int) {
		fn(f, d)
		for _, c := range f.Children() {
			rec(c, d+1)
		}
	}
	rec(root, 0)
}
