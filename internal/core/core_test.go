package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/attrs"
)

// buildFlight builds a small flight-control style hierarchy:
//
//	nav (process)
//	  guidance (task)
//	    kalman (procedure, stateless)
//	    waypoint (procedure, stateless)
//	  autopilot (task)
//	    pid (procedure, stateless)
//	display (process)
//	  render (task)
//	    blit (procedure, stateful)
func buildFlight(t *testing.T) *Hierarchy {
	t.Helper()
	h := NewHierarchy()
	steps := []func() error{
		func() error { _, err := h.AddProcess("nav", attrs.Timing(10, 2, 0, 20, 5)); return err },
		func() error { _, err := h.AddTask("nav", "guidance", attrs.Set{}); return err },
		func() error { _, err := h.AddProcedure("guidance", "kalman", attrs.Set{}, true); return err },
		func() error { _, err := h.AddProcedure("guidance", "waypoint", attrs.Set{}, true); return err },
		func() error { _, err := h.AddTask("nav", "autopilot", attrs.Set{}); return err },
		func() error { _, err := h.AddProcedure("autopilot", "pid", attrs.Set{}, true); return err },
		func() error { _, err := h.AddProcess("display", attrs.Timing(4, 1, 0, 30, 3)); return err },
		func() error { _, err := h.AddTask("display", "render", attrs.Set{}); return err },
		func() error { _, err := h.AddProcedure("render", "blit", attrs.Set{}, false); return err },
	}
	for i, s := range steps {
		if err := s(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	return h
}

func TestHierarchyConstruction(t *testing.T) {
	h := buildFlight(t)
	if h.Len() != 9 {
		t.Errorf("Len = %d, want 9", h.Len())
	}
	nav, err := h.Lookup("nav")
	if err != nil {
		t.Fatal(err)
	}
	if nav.Level() != ProcessLevel {
		t.Errorf("nav level = %s", nav.Level())
	}
	kids := nav.Children()
	if len(kids) != 2 || kids[0].Name() != "autopilot" || kids[1].Name() != "guidance" {
		t.Errorf("nav children = %v", names(kids))
	}
	k, err := h.Lookup("kalman")
	if err != nil {
		t.Fatal(err)
	}
	if k.Parent().Name() != "guidance" || !k.Stateless() {
		t.Errorf("kalman parent=%s stateless=%v", k.Parent().Name(), k.Stateless())
	}
}

func names(fs []*FCM) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Name()
	}
	return out
}

func TestDuplicateName(t *testing.T) {
	h := buildFlight(t)
	if _, err := h.AddProcess("nav", attrs.Set{}); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("err = %v, want ErrDuplicateName", err)
	}
	// Task names are globally unique too ("tasks have unique static
	// names").
	if _, err := h.AddTask("display", "guidance", attrs.Set{}); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("err = %v, want ErrDuplicateName", err)
	}
}

func TestRuleR1LevelMismatch(t *testing.T) {
	h := buildFlight(t)
	// Adding a task under a task violates R1.
	if _, err := h.AddTask("guidance", "subtask", attrs.Set{}); !errors.Is(err, ErrRuleR1) {
		t.Errorf("err = %v, want ErrRuleR1", err)
	}
	// Adding a procedure under a process violates R1.
	if _, err := h.AddProcedure("nav", "direct", attrs.Set{}, true); !errors.Is(err, ErrRuleR1) {
		t.Errorf("err = %v, want ErrRuleR1", err)
	}
}

func TestLookupUnknown(t *testing.T) {
	h := NewHierarchy()
	if _, err := h.Lookup("ghost"); !errors.Is(err, ErrUnknownFCM) {
		t.Errorf("err = %v, want ErrUnknownFCM", err)
	}
}

func TestGroupBottomUp(t *testing.T) {
	h := NewHierarchy()
	for _, n := range []string{"f1", "f2", "f3"} {
		if _, err := h.AddFree(n, ProcedureLevel, attrs.Set{}, true); err != nil {
			t.Fatal(err)
		}
	}
	task, err := h.Group("t1", []string{"f1", "f2", "f3"})
	if err != nil {
		t.Fatal(err)
	}
	if task.Level() != TaskLevel || len(task.Children()) != 3 {
		t.Errorf("group result: level=%s children=%d", task.Level(), len(task.Children()))
	}
	proc, err := h.Group("p1", []string{"t1"})
	if err != nil {
		t.Fatal(err)
	}
	if proc.Level() != ProcessLevel {
		t.Errorf("process level = %s", proc.Level())
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

func TestGroupAttributesCombine(t *testing.T) {
	h := NewHierarchy()
	if _, err := h.AddFree("a", TaskLevel, attrs.Timing(15, 3, 0, 20, 5), false); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddFree("b", TaskLevel, attrs.Timing(10, 2, 8, 16, 5), false); err != nil {
		t.Fatal(err)
	}
	p, err := h.Group("proc", []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	a := p.Attrs()
	if a.Value(attrs.Criticality) != 15 || a.Value(attrs.Deadline) != 16 || a.Value(attrs.ComputeTime) != 10 {
		t.Errorf("grouped attrs = %s", a)
	}
}

func TestGroupRejectsSecondParentR2(t *testing.T) {
	h := buildFlight(t)
	// kalman already belongs to guidance.
	if _, err := h.Group("t2", []string{"kalman"}); !errors.Is(err, ErrRuleR2) {
		t.Errorf("err = %v, want ErrRuleR2", err)
	}
}

func TestGroupRejectsMixedLevels(t *testing.T) {
	h := NewHierarchy()
	if _, err := h.AddFree("p", ProcedureLevel, attrs.Set{}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddFree("t", TaskLevel, attrs.Set{}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Group("x", []string{"p", "t"}); !errors.Is(err, ErrRuleR1) {
		t.Errorf("err = %v, want ErrRuleR1", err)
	}
}

func TestGroupRejectsProcessLevel(t *testing.T) {
	h := buildFlight(t)
	if _, err := h.Group("super", []string{"nav", "display"}); !errors.Is(err, ErrLevel) {
		t.Errorf("err = %v, want ErrLevel", err)
	}
}

func TestGroupEmptyAndUnknown(t *testing.T) {
	h := NewHierarchy()
	if _, err := h.Group("x", nil); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := h.Group("x", []string{"ghost"}); !errors.Is(err, ErrUnknownFCM) {
		t.Errorf("err = %v", err)
	}
}

func TestMergeSiblings(t *testing.T) {
	h := buildFlight(t)
	merged, err := h.Merge("kw", []string{"kalman", "waypoint"})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Level() != ProcedureLevel {
		t.Errorf("merged level = %s", merged.Level())
	}
	if merged.Parent().Name() != "guidance" {
		t.Errorf("merged parent = %s", merged.Parent().Name())
	}
	if _, err := h.Lookup("kalman"); !errors.Is(err, ErrUnknownFCM) {
		t.Error("kalman still present after merge")
	}
	from := merged.MergedFrom()
	if len(from) != 2 || from[0] != "kalman" || from[1] != "waypoint" {
		t.Errorf("MergedFrom = %v", from)
	}
	// R5: the parent is marked modified by the merge.
	g, err := h.Lookup("guidance")
	if err != nil {
		t.Fatal(err)
	}
	if !g.Modified() {
		t.Error("parent not marked modified after child merge")
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

func TestMergeTasksAdoptsChildren(t *testing.T) {
	h := buildFlight(t)
	merged, err := h.Merge("gct", []string{"guidance", "autopilot"})
	if err != nil {
		t.Fatal(err)
	}
	kids := names(merged.Children())
	want := []string{"kalman", "pid", "waypoint"}
	if strings.Join(kids, ",") != strings.Join(want, ",") {
		t.Errorf("merged children = %v, want %v", kids, want)
	}
	k, err := h.Lookup("kalman")
	if err != nil {
		t.Fatal(err)
	}
	if k.Parent().Name() != "gct" {
		t.Errorf("kalman parent = %s", k.Parent().Name())
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

func TestMergeRejectsNonSiblingsR3R4(t *testing.T) {
	h := buildFlight(t)
	// Different levels: R3.
	if _, err := h.Merge("x", []string{"guidance", "kalman"}); !errors.Is(err, ErrRuleR3) {
		t.Errorf("err = %v, want ErrRuleR3", err)
	}
	// Same level, different parents: R4 names the remedy.
	if _, err := h.Merge("x", []string{"guidance", "render"}); !errors.Is(err, ErrRuleR4) {
		t.Errorf("err = %v, want ErrRuleR4", err)
	}
}

func TestMergeRejectsStatefulProcedures(t *testing.T) {
	h := buildFlight(t)
	if _, err := h.AddProcedure("render", "shade", attrs.Set{}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Merge("x", []string{"blit", "shade"}); !errors.Is(err, ErrNotStateless) {
		t.Errorf("err = %v, want ErrNotStateless", err)
	}
}

func TestMergeNameCollisionRestores(t *testing.T) {
	h := buildFlight(t)
	// "nav" is taken; merge must fail and leave the hierarchy valid.
	if _, err := h.Merge("nav", []string{"kalman", "waypoint"}); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("err = %v, want ErrDuplicateName", err)
	}
	if _, err := h.Lookup("kalman"); err != nil {
		t.Error("kalman lost after failed merge")
	}
	if err := h.Validate(); err != nil {
		t.Errorf("hierarchy invalid after failed merge: %v", err)
	}
}

func TestMergeTooFew(t *testing.T) {
	h := buildFlight(t)
	if _, err := h.Merge("x", []string{"kalman"}); err == nil {
		t.Error("single-member merge accepted")
	}
}

func TestMergeAcrossIntegratesParentsR4(t *testing.T) {
	h := buildFlight(t)
	// guidance (under nav) and render (under display) are children of
	// different parents; MergeAcross must merge nav+display first.
	merged, err := h.MergeAcross("navdisp", "gr", []string{"guidance", "render"})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Parent().Name() != "navdisp" {
		t.Errorf("merged child parent = %s", merged.Parent().Name())
	}
	if _, err := h.Lookup("nav"); !errors.Is(err, ErrUnknownFCM) {
		t.Error("nav still exists after parent integration")
	}
	nd, err := h.Lookup("navdisp")
	if err != nil {
		t.Fatal(err)
	}
	if nd.Level() != ProcessLevel {
		t.Errorf("navdisp level = %s", nd.Level())
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

func TestMergeAcrossSameParentDegeneratesToMerge(t *testing.T) {
	h := buildFlight(t)
	merged, err := h.MergeAcross("unused", "kw", []string{"kalman", "waypoint"})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Name() != "kw" {
		t.Errorf("merged name = %s", merged.Name())
	}
	if _, err := h.Lookup("unused"); !errors.Is(err, ErrUnknownFCM) {
		t.Error("unnecessary parent merge happened")
	}
}

func TestMergeAcrossRootless(t *testing.T) {
	h := NewHierarchy()
	if _, err := h.AddFree("a", TaskLevel, attrs.Set{}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddFree("b", TaskLevel, attrs.Set{}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := h.MergeAcross("p", "m", []string{"a", "b"}); !errors.Is(err, ErrRuleR4) {
		t.Errorf("err = %v, want ErrRuleR4", err)
	}
}

func TestCloneProcedure(t *testing.T) {
	h := buildFlight(t)
	clone, err := h.CloneProcedure("kalman", "render", "kalman#render")
	if err != nil {
		t.Fatal(err)
	}
	if clone.Parent().Name() != "render" || !clone.Stateless() {
		t.Errorf("clone parent=%s stateless=%v", clone.Parent().Name(), clone.Stateless())
	}
	// The original is untouched (R2: separate compilation per caller).
	orig, err := h.Lookup("kalman")
	if err != nil {
		t.Fatal(err)
	}
	if orig.Parent().Name() != "guidance" {
		t.Error("original moved by clone")
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

func TestCloneRejectsStateful(t *testing.T) {
	h := buildFlight(t)
	if _, err := h.CloneProcedure("blit", "guidance", "blit2"); !errors.Is(err, ErrNotStateless) {
		t.Errorf("err = %v, want ErrNotStateless", err)
	}
	if _, err := h.CloneProcedure("guidance", "render", "g2"); !errors.Is(err, ErrLevel) {
		t.Errorf("err = %v, want ErrLevel", err)
	}
}

func TestConvertProcessesToTasks(t *testing.T) {
	h := NewHierarchy()
	if _, err := h.AddProcess("sensorIO", attrs.Timing(8, 1, 0, 10, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddProcess("filter", attrs.Timing(9, 1, 0, 12, 3)); err != nil {
		t.Fatal(err)
	}
	np, err := h.ConvertProcessesToTasks("sensing", []string{"sensorIO", "filter"})
	if err != nil {
		t.Fatal(err)
	}
	if np.Level() != ProcessLevel {
		t.Errorf("new process level = %s", np.Level())
	}
	s, err := h.Lookup("sensorIO")
	if err != nil {
		t.Fatal(err)
	}
	if s.Level() != TaskLevel || s.Parent().Name() != "sensing" {
		t.Errorf("demoted: level=%s parent=%s", s.Level(), s.Parent().Name())
	}
	// Attributes combined: C = max(8,9) = 9, CT = 2+3 = 5.
	if np.Attrs().Value(attrs.Criticality) != 9 || np.Attrs().Value(attrs.ComputeTime) != 5 {
		t.Errorf("combined attrs = %s", np.Attrs())
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

func TestConvertRejectsProcessWithTasks(t *testing.T) {
	h := buildFlight(t)
	if _, err := h.ConvertProcessesToTasks("x", []string{"nav", "display"}); !errors.Is(err, ErrRuleR1) {
		t.Errorf("err = %v, want ErrRuleR1", err)
	}
}

func TestMarkModifiedPropagatesToParentOnly(t *testing.T) {
	h := buildFlight(t)
	if err := h.MarkModified("kalman"); err != nil {
		t.Fatal(err)
	}
	mods := h.ModifiedFCMs()
	want := "guidance,kalman"
	if strings.Join(mods, ",") != want {
		t.Errorf("modified = %v, want %s", mods, want)
	}
	// R5: grandparent nav is NOT in the retest set.
	nav, err := h.Lookup("nav")
	if err != nil {
		t.Fatal(err)
	}
	if nav.Modified() {
		t.Error("R5 violated: grandparent marked modified")
	}
	h.ClearModified()
	if len(h.ModifiedFCMs()) != 0 {
		t.Error("ClearModified left marks")
	}
}

func TestRetestSet(t *testing.T) {
	h := buildFlight(t)
	fcms, ifaces, err := h.RetestSet("kalman")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(fcms, ",") != "guidance,kalman" {
		t.Errorf("retest fcms = %v", fcms)
	}
	if len(ifaces) != 1 || ifaces[0] != "kalman<->waypoint" {
		t.Errorf("retest interfaces = %v", ifaces)
	}
	// Root FCM: no parent; siblings are other roots at the level.
	fcms, ifaces, err = h.RetestSet("nav")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(fcms, ",") != "nav" {
		t.Errorf("root retest fcms = %v", fcms)
	}
	if len(ifaces) != 1 || ifaces[0] != "display<->nav" {
		t.Errorf("root retest interfaces = %v", ifaces)
	}
	if _, _, err := h.RetestSet("ghost"); !errors.Is(err, ErrUnknownFCM) {
		t.Errorf("err = %v", err)
	}
}

func TestWalkDepthFirst(t *testing.T) {
	h := buildFlight(t)
	nav, err := h.Lookup("nav")
	if err != nil {
		t.Fatal(err)
	}
	var visited []string
	var depths []int
	Walk(nav, func(f *FCM, d int) {
		visited = append(visited, f.Name())
		depths = append(depths, d)
	})
	want := []string{"nav", "autopilot", "pid", "guidance", "kalman", "waypoint"}
	if strings.Join(visited, ",") != strings.Join(want, ",") {
		t.Errorf("walk order = %v, want %v", visited, want)
	}
	if depths[0] != 0 || depths[2] != 2 {
		t.Errorf("depths = %v", depths)
	}
}

func TestRootsFiltering(t *testing.T) {
	h := buildFlight(t)
	procs := h.Roots(ProcessLevel)
	if len(procs) != 2 || procs[0].Name() != "display" || procs[1].Name() != "nav" {
		t.Errorf("process roots = %v", names(procs))
	}
	if got := h.Roots(TaskLevel); len(got) != 0 {
		t.Errorf("task roots = %v, want none", names(got))
	}
	all := h.Roots(0)
	if len(all) != 2 {
		t.Errorf("all roots = %v", names(all))
	}
}

func TestAddFreeStatelessOnlyProcedures(t *testing.T) {
	h := NewHierarchy()
	if _, err := h.AddFree("t", TaskLevel, attrs.Set{}, true); !errors.Is(err, ErrLevel) {
		t.Errorf("err = %v, want ErrLevel", err)
	}
	if _, err := h.AddFree("", TaskLevel, attrs.Set{}, false); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := h.AddFree("x", Level(42), attrs.Set{}, false); !errors.Is(err, ErrLevel) {
		t.Errorf("err = %v, want ErrLevel", err)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	h := buildFlight(t)
	k, err := h.Lookup("kalman")
	if err != nil {
		t.Fatal(err)
	}
	// Simulate corruption: stateless flag on a task.
	g, err := h.Lookup("guidance")
	if err != nil {
		t.Fatal(err)
	}
	g.stateless = true
	if err := h.Validate(); err == nil {
		t.Error("Validate missed stateless task")
	}
	g.stateless = false
	_ = k
	// Level corruption on a stateful procedure.
	b, err := h.Lookup("blit")
	if err != nil {
		t.Fatal(err)
	}
	b.level = TaskLevel
	if err := h.Validate(); !errors.Is(err, ErrRuleR1) {
		t.Errorf("Validate err = %v, want ErrRuleR1", err)
	}
}

func TestRollUpRecomputesParents(t *testing.T) {
	h := NewHierarchy()
	if _, err := h.AddProcess("p", attrs.Set{}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddTask("p", "t", attrs.Set{}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddProcedure("t", "f1", attrs.Timing(5, 1, 0, 30, 4), true); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddProcedure("t", "f2", attrs.Timing(9, 1, 0, 20, 3), true); err != nil {
		t.Fatal(err)
	}
	h.RollUp()
	tt, err := h.Lookup("t")
	if err != nil {
		t.Fatal(err)
	}
	if tt.Attrs().Value(attrs.Criticality) != 9 || tt.Attrs().Value(attrs.ComputeTime) != 7 ||
		tt.Attrs().Value(attrs.Deadline) != 20 {
		t.Errorf("task attrs = %s", tt.Attrs())
	}
	p, err := h.Lookup("p")
	if err != nil {
		t.Fatal(err)
	}
	if p.Attrs().Value(attrs.Criticality) != 9 {
		t.Errorf("process attrs = %s", p.Attrs())
	}
	// A child modification re-rolls.
	f1, err := h.Lookup("f1")
	if err != nil {
		t.Fatal(err)
	}
	f1.SetAttrs(attrs.Timing(20, 1, 0, 30, 4))
	h.RollUp()
	p, err = h.Lookup("p")
	if err != nil {
		t.Fatal(err)
	}
	if p.Attrs().Value(attrs.Criticality) != 20 {
		t.Errorf("process attrs after child change = %s", p.Attrs())
	}
}
