// Package estimate implements the measurement pipeline the paper defers
// to continuing work: "developing techniques to determine and measure
// actual parameters such as 'influence' across FCMs is crucial for the
// techniques to be applied to real systems" (§7), via the estimation paths
// it sketches in §4.2.1:
//
//   - p_i1 (occurrence) "can be measured from previous usage of that FCM.
//     If the FCM has not been used previously, an equivalent probability
//     can be derived by extensive testing";
//   - p_i2 (transmission) "depends on both communication medium and data
//     volume";
//   - p_i3 (manifestation) "can be determined by injecting faults into the
//     target FCM".
//
// The pipeline: run a seeded fault-injection campaign against the true
// system, record per-edge transmission counts, rebuild an *estimated*
// influence graph from those counts, and integrate using the estimate.
// Comparing the resulting mapping against the one computed from ground
// truth quantifies how much estimation error the framework tolerates —
// experiment E10.
package estimate

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/faultsim"
	"repro/internal/graph"
)

// Errors returned by the estimator.
var (
	ErrNoData     = errors.New("estimate: campaign produced no edge observations")
	ErrBadCeiling = errors.New("estimate: minimum trials per edge must be positive")
)

// EdgeEstimate is one measured influence value.
type EdgeEstimate struct {
	From, To string
	// True is the ground-truth edge weight (0 if the edge was absent).
	True float64
	// Estimated is the measured transmission frequency.
	Estimated float64
	// Observations is the number of trials in which the source was faulty
	// (the estimate's denominator).
	Observations int
}

// AbsError returns |Estimated − True|.
func (e EdgeEstimate) AbsError() float64 { return math.Abs(e.Estimated - e.True) }

// ConfidenceInterval returns the Wilson score interval for the edge's
// transmission probability at the given z value (1.96 for 95%). With no
// observations the interval is the vacuous [0, 1].
func (e EdgeEstimate) ConfidenceInterval(z float64) (lo, hi float64) {
	n := float64(e.Observations)
	if n <= 0 || z <= 0 {
		return 0, 1
	}
	p := e.Estimated
	denom := 1 + z*z/n
	center := (p + z*z/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z*z/(4*n*n))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Result is a complete estimation run.
type Result struct {
	// Graph is the estimated influence graph: same nodes and attributes
	// as the truth, edge weights replaced by measured frequencies. Edges
	// with fewer than MinObservations observations keep no edge (the
	// estimator cannot distinguish them from zero).
	Graph *graph.Graph
	// Edges lists every (from,to) pair with either a true edge or a
	// non-zero estimate, sorted by (From,To).
	Edges []EdgeEstimate
	// MeanAbsError averages |Estimated − True| over true edges.
	MeanAbsError float64
	// MaxAbsError is the worst per-edge error over true edges.
	MaxAbsError float64
	// Trials echoes the campaign size.
	Trials int
}

// Config parameterises an estimation run.
type Config struct {
	// Truth is the ground-truth influence graph faults propagate over.
	Truth *graph.Graph
	// Trials is the number of injection trials.
	Trials int
	// Seed drives the campaign.
	Seed uint64
	// MinObservations is the minimum number of faulty-source observations
	// before an edge estimate is trusted (default 10).
	MinObservations int
}

// Run executes the campaign and builds the estimated graph.
func Run(cfg Config) (*Result, error) {
	if cfg.MinObservations == 0 {
		cfg.MinObservations = 10
	}
	if cfg.MinObservations < 0 {
		return nil, ErrBadCeiling
	}
	campaign, err := faultsim.Run(faultsim.Campaign{
		Graph:  cfg.Truth,
		Trials: cfg.Trials,
		Seed:   cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("estimate: %w", err)
	}
	if len(campaign.EdgeTrials) == 0 {
		return nil, ErrNoData
	}

	est := graph.New()
	for _, id := range cfg.Truth.Nodes() {
		if err := est.AddNode(id, cfg.Truth.Attrs(id).Clone()); err != nil {
			return nil, fmt.Errorf("estimate: %w", err)
		}
	}
	res := &Result{Graph: est, Trials: cfg.Trials}

	trueEdges := 0
	var sumErr float64
	for _, e := range cfg.Truth.Edges() {
		if e.Replica {
			// Replica structure is design knowledge, not a measurement.
			if _, ok := est.EdgeBetween(e.From, e.To); !ok {
				if err := est.AddReplicaEdge(e.From, e.To); err != nil {
					return nil, fmt.Errorf("estimate: %w", err)
				}
			}
			continue
		}
		key := e.From + ">" + e.To
		obs := campaign.EdgeTrials[key]
		measured := 0.0
		if obs >= cfg.MinObservations {
			measured = float64(campaign.TransmissionCount[key]) / float64(obs)
		}
		ee := EdgeEstimate{
			From: e.From, To: e.To,
			True: e.Weight, Estimated: measured, Observations: obs,
		}
		res.Edges = append(res.Edges, ee)
		trueEdges++
		sumErr += ee.AbsError()
		if ee.AbsError() > res.MaxAbsError {
			res.MaxAbsError = ee.AbsError()
		}
		if measured > 0 {
			if err := est.SetEdge(e.From, e.To, clamp01(measured), e.Factors...); err != nil {
				return nil, fmt.Errorf("estimate: %w", err)
			}
		}
	}
	if trueEdges > 0 {
		res.MeanAbsError = sumErr / float64(trueEdges)
	}
	return res, nil
}

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	}
	return v
}

// AdaptiveConfig parameterises RunAdaptive.
type AdaptiveConfig struct {
	// Truth is the ground-truth influence graph.
	Truth *graph.Graph
	// TargetWidth is the 95% Wilson-interval width at which an edge counts
	// as measured precisely enough (default 0.1).
	TargetWidth float64
	// BatchTrials is the campaign size per round (default 2000).
	BatchTrials int
	// MaxTrials caps the total effort (default 200000).
	MaxTrials int
	Seed      uint64
}

// RunAdaptive grows the fault-injection campaign in batches until every
// observed edge's 95% confidence interval is narrower than TargetWidth or
// the trial cap is reached — answering the practitioner's question the
// paper leaves open: *how much* testing is "extensive testing" (§4.2.1)?
// It returns the final estimation result and the total trials spent.
func RunAdaptive(cfg AdaptiveConfig) (*Result, int, error) {
	if cfg.TargetWidth <= 0 {
		cfg.TargetWidth = 0.1
	}
	if cfg.BatchTrials <= 0 {
		cfg.BatchTrials = 2000
	}
	if cfg.MaxTrials <= 0 {
		cfg.MaxTrials = 200000
	}
	trials := 0
	for {
		trials += cfg.BatchTrials
		if trials > cfg.MaxTrials {
			trials = cfg.MaxTrials
		}
		// Campaigns are cheap to rerun from scratch with a larger count;
		// rerunning keeps every batch internally consistent under one
		// seed (the PCG stream is deterministic in the trial index).
		res, err := Run(Config{Truth: cfg.Truth, Trials: trials, Seed: cfg.Seed})
		if err != nil {
			return nil, trials, err
		}
		allTight := true
		for _, e := range res.Edges {
			lo, hi := e.ConfidenceInterval(1.96)
			if hi-lo > cfg.TargetWidth {
				allTight = false
				break
			}
		}
		if allTight || trials >= cfg.MaxTrials {
			return res, trials, nil
		}
	}
}

// Agreement compares two partitions of the same base nodes (e.g. the
// clustering computed from ground truth vs. from an estimated graph) and
// returns the Rand index: the fraction of node pairs on which the two
// partitions agree (both together or both apart). 1 means identical
// groupings.
func Agreement(a, b [][]string) (float64, error) {
	groupA := groupOf(a)
	groupB := groupOf(b)
	if len(groupA) != len(groupB) {
		return 0, fmt.Errorf("estimate: partitions cover %d vs %d nodes", len(groupA), len(groupB))
	}
	var nodes []string
	for n := range groupA {
		if _, ok := groupB[n]; !ok {
			return 0, fmt.Errorf("estimate: node %q only in one partition", n)
		}
		nodes = append(nodes, n)
	}
	if len(nodes) < 2 {
		return 1, nil
	}
	agree, total := 0, 0
	for i := range nodes {
		for j := i + 1; j < len(nodes); j++ {
			total++
			sameA := groupA[nodes[i]] == groupA[nodes[j]]
			sameB := groupB[nodes[i]] == groupB[nodes[j]]
			if sameA == sameB {
				agree++
			}
		}
	}
	return float64(agree) / float64(total), nil
}

func groupOf(parts [][]string) map[string]int {
	out := map[string]int{}
	for gi, grp := range parts {
		for _, n := range grp {
			out[n] = gi
		}
	}
	return out
}
