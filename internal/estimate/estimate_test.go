package estimate

import (
	"errors"
	"math"
	"testing"

	"repro/internal/attrs"
	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/spec"
)

func paperGraph(t *testing.T) *graph.Graph {
	t.Helper()
	sys := spec.PaperExample()
	g, err := sys.Graph()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunRecoversEdgeWeights(t *testing.T) {
	g := paperGraph(t)
	res, err := Run(Config{Truth: g, Trials: 60000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanAbsError > 0.03 {
		t.Errorf("mean abs error = %g, want < 0.03 at 60k trials", res.MeanAbsError)
	}
	if res.MaxAbsError > 0.12 {
		t.Errorf("max abs error = %g, want < 0.12", res.MaxAbsError)
	}
	// Every true edge observed.
	if len(res.Edges) != g.NumEdges() {
		t.Errorf("edges measured = %d, want %d", len(res.Edges), g.NumEdges())
	}
	for _, e := range res.Edges {
		if e.Observations == 0 {
			t.Errorf("edge %s->%s never observed", e.From, e.To)
		}
	}
	// Estimated graph has the same nodes and attributes.
	if res.Graph.NumNodes() != g.NumNodes() {
		t.Errorf("estimated nodes = %d", res.Graph.NumNodes())
	}
	if res.Graph.Attrs("p1").Value(attrs.Criticality) != 15 {
		t.Error("attributes not carried into estimated graph")
	}
}

func TestRunErrorAccountingExact(t *testing.T) {
	// Single certain edge: the estimate must be exactly 1.
	g := graph.New()
	for _, n := range []string{"a", "b"} {
		if err := g.AddNode(n, attrs.Set{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetEdge("a", "b", 1); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Truth: g, Trials: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanAbsError != 0 || res.Edges[0].Estimated != 1 {
		t.Errorf("certain edge: %+v", res.Edges[0])
	}
}

func TestRunPreservesReplicaStructure(t *testing.T) {
	sys := spec.PaperExample()
	g, err := sys.Graph()
	if err != nil {
		t.Fatal(err)
	}
	exp, err := cluster.Expand(g, sys.Jobs())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Truth: exp.Graph, Trials: 5000, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Graph.AreReplicas("p1a", "p1b") {
		t.Error("replica edges lost in estimation")
	}
}

func TestRunMinObservationsGate(t *testing.T) {
	// A near-unreachable edge gets too few observations and is dropped.
	g := graph.New()
	for _, n := range []string{"a", "b", "c"} {
		if err := g.AddNode(n, attrs.Set{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetEdge("a", "b", 0.01); err != nil {
		t.Fatal(err)
	}
	if err := g.SetEdge("b", "c", 0.5); err != nil {
		t.Fatal(err)
	}
	// b is faulty only when injected there (1/3 of trials) or when a's
	// weak edge fires; with a huge MinObservations b->c is dropped.
	res, err := Run(Config{Truth: g, Trials: 100, Seed: 5, MinObservations: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Graph.EdgeBetween("b", "c"); ok {
		t.Error("undersampled edge kept")
	}
}

func TestRunValidation(t *testing.T) {
	g := paperGraph(t)
	if _, err := Run(Config{Truth: g, Trials: 0}); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := Run(Config{Truth: g, Trials: 10, MinObservations: -1}); !errors.Is(err, ErrBadCeiling) {
		t.Errorf("err = %v, want ErrBadCeiling", err)
	}
	// A graph with nodes but no edges yields no observations.
	empty := graph.New()
	if err := empty.AddNode("x", attrs.Set{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Config{Truth: empty, Trials: 10}); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v, want ErrNoData", err)
	}
}

func TestEstimatedGraphDrivesSameReduction(t *testing.T) {
	// E10's core claim: at realistic campaign sizes, integrating from the
	// estimated graph reproduces (nearly) the ground-truth clustering.
	sys := spec.PaperExample()
	truth, err := sys.Graph()
	if err != nil {
		t.Fatal(err)
	}
	expT, err := cluster.Expand(truth, sys.Jobs())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Truth: expT.Graph.Clone(), Trials: 60000, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}

	reduce := func(g *graph.Graph) [][]string {
		c := cluster.NewCondenser(g, expT.Jobs)
		if err := c.ReduceByInfluence(6); err != nil {
			t.Fatal(err)
		}
		return c.Partition()
	}
	fullTruth := expT.Graph.Clone()
	truthParts := reduce(expT.Graph)
	estParts := reduce(res.Graph)
	agree, err := Agreement(truthParts, estParts)
	if err != nil {
		t.Fatal(err)
	}
	// Replica pairs with exactly tied mutual influence (p3a/p3b vs p4) can
	// swap under estimation noise — a symmetric outcome the Rand index
	// penalises — so require high but not perfect agreement…
	if agree < 0.85 {
		t.Errorf("partition agreement = %g, want >= 0.85", agree)
	}
	// …and require genuine quality equivalence: the estimated partition's
	// containment (measured on the TRUE graph) matches the ground-truth
	// partition's within 5%.
	truthCross := fullTruth.CrossWeight(truthParts)
	estCross := fullTruth.CrossWeight(estParts)
	if math.Abs(estCross-truthCross) > 0.05*truthCross {
		t.Errorf("estimated-graph partition cross influence %g vs truth %g",
			estCross, truthCross)
	}
}

func TestAgreement(t *testing.T) {
	a := [][]string{{"x", "y"}, {"z"}}
	same := [][]string{{"y", "x"}, {"z"}}
	got, err := Agreement(a, same)
	if err != nil || got != 1 {
		t.Errorf("identical partitions agreement = %g, %v", got, err)
	}
	allApart := [][]string{{"x"}, {"y"}, {"z"}}
	got, err = Agreement(a, allApart)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs: (x,y) disagree; (x,z),(y,z) agree -> 2/3.
	if math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("agreement = %g, want 2/3", got)
	}
	if _, err := Agreement(a, [][]string{{"x"}}); err == nil {
		t.Error("coverage mismatch accepted")
	}
	if _, err := Agreement(a, [][]string{{"x"}, {"y"}, {"w"}}); err == nil {
		t.Error("node mismatch accepted")
	}
	one, err := Agreement([][]string{{"only"}}, [][]string{{"only"}})
	if err != nil || one != 1 {
		t.Errorf("single-node agreement = %g, %v", one, err)
	}
}

func TestEdgeEstimateAbsError(t *testing.T) {
	e := EdgeEstimate{True: 0.7, Estimated: 0.65}
	if math.Abs(e.AbsError()-0.05) > 1e-12 {
		t.Errorf("AbsError = %g", e.AbsError())
	}
}

func TestConfidenceIntervalProperties(t *testing.T) {
	// Vacuous cases.
	lo, hi := (EdgeEstimate{}).ConfidenceInterval(1.96)
	if lo != 0 || hi != 1 {
		t.Errorf("no-observation interval = [%g,%g]", lo, hi)
	}
	// Known case: 30/100 at z=1.96 -> Wilson interval ≈ [0.218, 0.397].
	e := EdgeEstimate{Estimated: 0.3, Observations: 100}
	lo, hi = e.ConfidenceInterval(1.96)
	if math.Abs(lo-0.2189) > 0.005 || math.Abs(hi-0.3970) > 0.005 {
		t.Errorf("interval = [%g,%g], want ~[0.219, 0.397]", lo, hi)
	}
	// More observations tighten the interval.
	wide := EdgeEstimate{Estimated: 0.3, Observations: 50}
	narrow := EdgeEstimate{Estimated: 0.3, Observations: 5000}
	wl, wh := wide.ConfidenceInterval(1.96)
	nl, nh := narrow.ConfidenceInterval(1.96)
	if nh-nl >= wh-wl {
		t.Errorf("interval did not shrink: wide %g narrow %g", wh-wl, nh-nl)
	}
	// Bounds clamp to [0,1].
	edge := EdgeEstimate{Estimated: 0.01, Observations: 10}
	lo, hi = edge.ConfidenceInterval(1.96)
	if lo < 0 || hi > 1 {
		t.Errorf("interval out of range: [%g,%g]", lo, hi)
	}
}

func TestConfidenceIntervalsCoverTruth(t *testing.T) {
	// At 95% intervals over the 13 paper edges, expect (almost) all to
	// cover the true weight at realistic trial counts.
	g := paperGraph(t)
	res, err := Run(Config{Truth: g, Trials: 20000, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	misses := 0
	for _, e := range res.Edges {
		lo, hi := e.ConfidenceInterval(1.96)
		if e.True < lo || e.True > hi {
			misses++
		}
	}
	if misses > 1 { // one 5% miss among 13 edges is within expectation
		t.Errorf("%d of %d intervals missed the true value", misses, len(res.Edges))
	}
}

func TestRunAdaptiveStopsWhenTight(t *testing.T) {
	g := paperGraph(t)
	res, trials, err := RunAdaptive(AdaptiveConfig{
		Truth: g, TargetWidth: 0.08, BatchTrials: 2000, MaxTrials: 100000, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	if trials <= 0 || trials > 100000 {
		t.Fatalf("trials = %d", trials)
	}
	// Every interval meets the target (unless we hit the cap, which this
	// workload should not).
	for _, e := range res.Edges {
		lo, hi := e.ConfidenceInterval(1.96)
		if hi-lo > 0.08+1e-9 {
			t.Errorf("edge %s->%s interval width %g above target", e.From, e.To, hi-lo)
		}
	}
	// A looser target needs no more trials than a tighter one.
	_, looseTrials, err := RunAdaptive(AdaptiveConfig{
		Truth: g, TargetWidth: 0.25, BatchTrials: 2000, MaxTrials: 100000, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	if looseTrials > trials {
		t.Errorf("loose target took %d trials vs %d for tight", looseTrials, trials)
	}
}

func TestRunAdaptiveHonoursCap(t *testing.T) {
	g := paperGraph(t)
	// Impossible precision: must stop at the cap.
	_, trials, err := RunAdaptive(AdaptiveConfig{
		Truth: g, TargetWidth: 0.0001, BatchTrials: 3000, MaxTrials: 9000, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if trials != 9000 {
		t.Errorf("trials = %d, want capped 9000", trials)
	}
}
