// Package exec is a discrete-event multiprocessor execution simulator for
// the framework's system model (ICDCS 1998 §2): processes consisting of
// single-threaded tasks that communicate through messages and shared
// memory, scheduled on homogeneous processors under a preemptive or
// non-preemptive policy.
//
// It makes the paper's task-level fault classes executable:
//
//   - shared-memory corruption (f3): a faulty task's writes taint a region,
//     and later readers of the region become tainted;
//   - message errors (f4): a tainted sender's messages taint the receiver,
//     unless the receiver guards its inputs (recovery-block acceptance);
//   - timing faults (f5): a task overrunning its budget starves its
//     processor under non-preemptive scheduling, while a preemptive
//     runtime kills it at budget exhaustion (§3.4.3 / §4.2.3).
package exec

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
)

// Policy selects the per-processor scheduling policy.
type Policy int

// Scheduling policies (mirroring internal/sched).
const (
	// Preemptive runs the ready task with the earliest deadline and
	// enforces execution budgets.
	Preemptive Policy = iota + 1
	// NonPreemptive never interrupts a running task.
	NonPreemptive
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Preemptive:
		return "preemptive"
	case NonPreemptive:
		return "non-preemptive"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Task is one schedulable single-threaded task.
type Task struct {
	// Name is the unique task name ("tasks have unique static names").
	Name string
	// Process is the owning process FCM.
	Process string
	// Processor assigns the task to a processor.
	Processor string
	// Release, Deadline, Budget are the timing triple (EST, TCD, CT).
	Release  float64
	Deadline float64
	Budget   float64
	// Demand is the true computation need; 0 means Budget. Demand >
	// Budget models a timing fault (infinite loop: +Inf).
	Demand float64
	// Reads and Writes name shared-memory regions accessed at start and
	// completion respectively.
	Reads  []string
	Writes []string
	// SendsTo names tasks that receive a message at this task's
	// completion.
	SendsTo []string
	// SendLatency delays message arrival after completion (communication
	// cost; 0 = instantaneous).
	SendLatency float64
	// WaitsFor names tasks whose message must arrive before this task can
	// start (in addition to its release time).
	WaitsFor []string
	// CorruptsOutputs marks an injected value fault: the task's writes and
	// messages are erroneous even though it completes.
	CorruptsOutputs bool
	// Guarded models a recovery-block/acceptance-test input guard: tainted
	// messages and reads are detected and discarded rather than absorbed.
	Guarded bool
}

func (t Task) demand() float64 {
	if t.Demand > 0 {
		return t.Demand
	}
	return t.Budget
}

// Config configures a simulation run.
type Config struct {
	// Policy is the default scheduling policy for every processor.
	Policy Policy
	// PolicyOf optionally overrides the policy per processor — mixed
	// platforms where a legacy partition stays non-preemptive while the
	// rest enforce budgets.
	PolicyOf map[string]Policy
	Tasks    []Task
	Horizon  float64 // 0 = default
	// Span, when set, receives the scheduler event stream (start, finish,
	// preempt, abort, taint, message) with simulated timestamps, mirroring
	// the textual Trace in structured form.
	Span *obs.Span
}

// Outcome describes one task's simulated fate.
type Outcome struct {
	Task     string
	Process  string
	Started  bool
	Start    float64
	Finished bool
	Finish   float64
	// Missed is true when the task finished late or never finished.
	Missed bool
	// Aborted is true when the preemptive runtime killed the task at
	// budget exhaustion.
	Aborted bool
	// Tainted is true when the task absorbed erroneous data (via message
	// or shared memory) or was configured to corrupt its outputs.
	Tainted bool
}

// Report is the result of a run.
type Report struct {
	Policy   Policy
	Outcomes map[string]*Outcome
	// Trace lists events in time order, for debugging and golden tests.
	Trace []string
	// Makespan is the completion time of the last event.
	Makespan float64
}

// Misses returns the names of tasks that missed deadlines, sorted.
func (r *Report) Misses() []string {
	var out []string
	for name, o := range r.Outcomes {
		if o.Missed {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Tainted returns the names of tasks that absorbed or produced erroneous
// data, sorted.
func (r *Report) Tainted() []string {
	var out []string
	for name, o := range r.Outcomes {
		if o.Tainted {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Errors returned by Run.
var (
	ErrBadTask       = errors.New("exec: invalid task")
	ErrDuplicateTask = errors.New("exec: duplicate task name")
	ErrUnknownTask   = errors.New("exec: reference to unknown task")
)

const defaultHorizon = 1e6

type taskState struct {
	task      Task
	remaining float64
	budget    float64
	started   bool
	start     float64
	finished  bool
	finish    float64
	aborted   bool
	tainted   bool
	msgsIn    map[string]bool // sender -> arrived
	taintsIn  bool            // a tainted message arrived (and absorbed)
}

type region struct {
	lastWrite float64
	tainted   bool
	written   bool
}

// Run executes the configured task set and returns the report.
func Run(cfg Config) (*Report, error) {
	horizon := cfg.Horizon
	if horizon <= 0 {
		horizon = defaultHorizon
	}
	if cfg.Policy != Preemptive && cfg.Policy != NonPreemptive {
		return nil, fmt.Errorf("exec: unknown policy %d", int(cfg.Policy))
	}
	for proc, p := range cfg.PolicyOf {
		if p != Preemptive && p != NonPreemptive {
			return nil, fmt.Errorf("exec: unknown policy %d for processor %q", int(p), proc)
		}
	}
	policyFor := func(proc string) Policy {
		if p, ok := cfg.PolicyOf[proc]; ok {
			return p
		}
		return cfg.Policy
	}
	states := map[string]*taskState{}
	var order []string
	for _, t := range cfg.Tasks {
		if t.Name == "" || t.Processor == "" {
			return nil, fmt.Errorf("%w: %+v", ErrBadTask, t)
		}
		if t.Budget < 0 || t.Deadline < t.Release {
			return nil, fmt.Errorf("%w: %s", ErrBadTask, t.Name)
		}
		if _, dup := states[t.Name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateTask, t.Name)
		}
		if t.demand() == 0 {
			// Zero-work tasks would otherwise be skipped as "nothing
			// remaining" and reported as misses.
			return nil, fmt.Errorf("%w: %s has no work (budget/demand 0)", ErrBadTask, t.Name)
		}
		states[t.Name] = &taskState{
			task:      t,
			remaining: t.demand(),
			budget:    t.Budget,
			msgsIn:    map[string]bool{},
		}
		order = append(order, t.Name)
	}
	sort.Strings(order)
	for _, name := range order {
		st := states[name]
		for _, dep := range append(append([]string{}, st.task.WaitsFor...), st.task.SendsTo...) {
			if _, ok := states[dep]; !ok {
				return nil, fmt.Errorf("%w: %s references %q", ErrUnknownTask, name, dep)
			}
		}
	}

	regions := map[string]*region{}
	processors := map[string]bool{}
	for _, st := range states {
		processors[st.task.Processor] = true
	}
	procList := make([]string, 0, len(processors))
	for p := range processors {
		procList = append(procList, p)
	}
	sort.Strings(procList)

	rep := &Report{Policy: cfg.Policy, Outcomes: map[string]*Outcome{}}
	logf := func(t float64, format string, args ...any) {
		rep.Trace = append(rep.Trace, fmt.Sprintf("[%8.3f] %s", t, fmt.Sprintf(format, args...)))
	}
	// emit mirrors scheduler decisions onto the observer span with the
	// simulated clock attached; no-op when unobserved.
	emit := func(t float64, name string, attrs ...obs.Attr) {
		if cfg.Span == nil {
			return
		}
		cfg.Span.Event(name, append(attrs, obs.Float("sim_time", t))...)
	}

	running := map[string]*taskState{} // processor -> running task (non-preemptive continuity)
	type delivery struct {
		at       float64
		from, to string
		tainted  bool
	}
	var pending []delivery
	now := 0.0

	ready := func(st *taskState, t float64) bool {
		if st.finished || st.aborted || st.task.Release > t {
			return false
		}
		for _, dep := range st.task.WaitsFor {
			if !st.msgsIn[dep] {
				return false
			}
		}
		return true
	}

	// onStart applies read-time taint.
	onStart := func(st *taskState, t float64) {
		st.started = true
		st.start = t
		taint := st.taintsIn
		for _, r := range st.task.Reads {
			if reg := regions[r]; reg != nil && reg.written && reg.tainted {
				if st.task.Guarded {
					logf(t, "%s: guarded read discarded tainted region %s", st.task.Name, r)
					emit(t, "guard", obs.String("task", st.task.Name), obs.String("region", r))
				} else {
					taint = true
					logf(t, "%s: read tainted region %s", st.task.Name, r)
					emit(t, "taint", obs.String("task", st.task.Name),
						obs.String("via", "shared-memory"), obs.String("region", r))
				}
			}
		}
		if taint {
			st.tainted = true
		}
		logf(t, "%s started on %s", st.task.Name, st.task.Processor)
		emit(t, "task-start", obs.String("task", st.task.Name),
			obs.String("processor", st.task.Processor))
	}

	// deliver hands a message to its receiver, applying guard semantics.
	deliver := func(rcv *taskState, from string, corrupt bool, t float64) {
		rcv.msgsIn[from] = true
		switch {
		case corrupt && rcv.task.Guarded:
			logf(t, "message %s->%s: tainted, discarded by guard", from, rcv.task.Name)
			emit(t, "guard", obs.String("task", rcv.task.Name), obs.String("from", from))
		case corrupt:
			rcv.taintsIn = true
			logf(t, "message %s->%s: tainted", from, rcv.task.Name)
			emit(t, "taint", obs.String("task", rcv.task.Name),
				obs.String("via", "message"), obs.String("from", from))
		default:
			logf(t, "message %s->%s", from, rcv.task.Name)
			emit(t, "message", obs.String("from", from), obs.String("to", rcv.task.Name))
		}
	}

	// onFinish applies writes and message sends.
	onFinish := func(st *taskState, t float64) {
		st.finished = true
		st.finish = t
		corrupt := st.tainted || st.task.CorruptsOutputs
		if st.task.CorruptsOutputs {
			st.tainted = true
		}
		for _, w := range st.task.Writes {
			reg := regions[w]
			if reg == nil {
				reg = &region{}
				regions[w] = reg
			}
			reg.written = true
			reg.lastWrite = t
			reg.tainted = corrupt
			if corrupt {
				logf(t, "%s wrote corrupt data to region %s", st.task.Name, w)
				emit(t, "taint", obs.String("task", st.task.Name),
					obs.String("via", "corrupt-write"), obs.String("region", w))
			}
		}
		for _, dst := range st.task.SendsTo {
			if st.task.SendLatency > 0 {
				pending = append(pending, delivery{
					at: t + st.task.SendLatency, from: st.task.Name, to: dst, tainted: corrupt,
				})
				logf(t, "message %s->%s in transit (latency %g)", st.task.Name, dst, st.task.SendLatency)
				continue
			}
			deliver(states[dst], st.task.Name, corrupt, t)
		}
		logf(t, "%s finished", st.task.Name)
		emit(t, "task-finish", obs.String("task", st.task.Name),
			obs.Bool("tainted", st.tainted),
			obs.Bool("missed", t > st.task.Deadline+1e-12))
	}

	for now < horizon {
		// Flush deliveries due now.
		rest := pending[:0]
		for _, d := range pending {
			if d.at <= now+1e-12 {
				deliver(states[d.to], d.from, d.tainted, d.at)
			} else {
				rest = append(rest, d)
			}
		}
		pending = rest
		// Pick what runs on each processor at `now`, then advance to the
		// next boundary event.
		type dispatch struct {
			proc string
			st   *taskState
		}
		var dispatches []dispatch
		nextEvent := math.Inf(1)
		anyUnfinished := false

		for _, proc := range procList {
			policy := policyFor(proc)
			var pick *taskState
			if policy == NonPreemptive {
				if cur := running[proc]; cur != nil && !cur.finished && !cur.aborted {
					pick = cur
				}
			}
			if pick == nil {
				for _, name := range order {
					st := states[name]
					if st.task.Processor != proc || !ready(st, now) {
						continue
					}
					if policy == Preemptive && (st.budget <= 1e-12 || now >= st.task.Deadline) {
						st.aborted = true
						logf(now, "%s aborted (budget/deadline enforcement)", st.task.Name)
						emit(now, "abort", obs.String("task", st.task.Name),
							obs.String("reason", "budget/deadline enforcement"))
						continue
					}
					if pick == nil || st.task.Deadline < pick.task.Deadline ||
						(st.task.Deadline == pick.task.Deadline && st.task.Name < pick.task.Name) {
						pick = st
					}
				}
			}
			if pick != nil {
				if prev := running[proc]; prev != nil && prev != pick &&
					!prev.finished && !prev.aborted && prev.started {
					logf(now, "%s preempted by %s on %s", prev.task.Name, pick.task.Name, proc)
					emit(now, "preempt", obs.String("task", prev.task.Name),
						obs.String("by", pick.task.Name), obs.String("processor", proc))
				}
				dispatches = append(dispatches, dispatch{proc, pick})
				running[proc] = pick
				if !pick.started {
					onStart(pick, now)
				}
				step := pick.remaining
				if policyFor(proc) == Preemptive {
					step = math.Min(step, pick.budget)
					step = math.Min(step, pick.task.Deadline-now)
				}
				nextEvent = math.Min(nextEvent, now+step)
			}
		}
		// Pending deliveries are wake-up events too.
		for _, d := range pending {
			nextEvent = math.Min(nextEvent, d.at)
		}
		// Future releases and message-unblocked tasks appear at release
		// times or at completions (already covered). Account releases:
		for _, name := range order {
			st := states[name]
			if st.finished || st.aborted {
				continue
			}
			anyUnfinished = true
			if st.task.Release > now {
				nextEvent = math.Min(nextEvent, st.task.Release)
			}
		}
		if !anyUnfinished {
			break
		}
		if len(dispatches) == 0 {
			if math.IsInf(nextEvent, 1) {
				break // deadlock: tasks waiting for messages that never come
			}
			now = nextEvent
			continue
		}
		if math.IsInf(nextEvent, 1) || nextEvent > horizon {
			now = horizon
			break
		}
		if nextEvent <= now {
			// A zero-length step (deadline boundary): force abort handling
			// on the next loop by nudging time.
			nextEvent = now
		}
		delta := nextEvent - now
		for _, d := range dispatches {
			d.st.remaining -= delta
			d.st.budget -= delta
			if d.st.remaining <= 1e-12 {
				d.st.remaining = 0
				onFinish(d.st, nextEvent)
				running[d.proc] = nil
			} else if policyFor(d.proc) == Preemptive && d.st.budget <= 1e-12 {
				d.st.aborted = true
				logf(nextEvent, "%s aborted (budget exhausted)", d.st.task.Name)
				emit(nextEvent, "abort", obs.String("task", d.st.task.Name),
					obs.String("reason", "budget exhausted"))
				running[d.proc] = nil
			}
		}
		if delta == 0 {
			// Guarantee progress: abort any dispatched task pinned at its
			// deadline with remaining work.
			for _, d := range dispatches {
				if !d.st.finished && !d.st.aborted && now >= d.st.task.Deadline {
					d.st.aborted = true
					logf(now, "%s aborted (deadline reached)", d.st.task.Name)
					emit(now, "abort", obs.String("task", d.st.task.Name),
						obs.String("reason", "deadline reached"))
					running[d.proc] = nil
				}
			}
		}
		now = nextEvent
	}

	rep.Makespan = now
	for _, name := range order {
		st := states[name]
		missed := !st.finished || st.finish > st.task.Deadline+1e-12
		rep.Outcomes[name] = &Outcome{
			Task:     name,
			Process:  st.task.Process,
			Started:  st.started,
			Start:    st.start,
			Finished: st.finished,
			Finish:   st.finish,
			Missed:   missed,
			Aborted:  st.aborted,
			Tainted:  st.tainted,
		}
	}
	return rep, nil
}
