package exec

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestRunValidation(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr error
	}{
		{"no policy", Config{Tasks: []Task{{Name: "a", Processor: "p", Deadline: 1, Budget: 1}}}, nil},
		{"empty name", Config{Policy: Preemptive, Tasks: []Task{{Processor: "p", Deadline: 1, Budget: 1}}}, ErrBadTask},
		{"no processor", Config{Policy: Preemptive, Tasks: []Task{{Name: "a", Deadline: 1, Budget: 1}}}, ErrBadTask},
		{"deadline before release", Config{Policy: Preemptive, Tasks: []Task{{Name: "a", Processor: "p", Release: 5, Deadline: 1, Budget: 1}}}, ErrBadTask},
		{"dup", Config{Policy: Preemptive, Tasks: []Task{
			{Name: "a", Processor: "p", Deadline: 1, Budget: 1},
			{Name: "a", Processor: "p", Deadline: 1, Budget: 1},
		}}, ErrDuplicateTask},
		{"unknown dep", Config{Policy: Preemptive, Tasks: []Task{
			{Name: "a", Processor: "p", Deadline: 1, Budget: 1, SendsTo: []string{"zz"}},
		}}, ErrUnknownTask},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Run(tt.cfg)
			if tt.wantErr == nil {
				if err == nil {
					t.Error("expected some error for policy 0")
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestSimpleCompletion(t *testing.T) {
	rep, err := Run(Config{
		Policy: Preemptive,
		Tasks: []Task{
			{Name: "t1", Process: "P", Processor: "cpu0", Release: 0, Deadline: 10, Budget: 4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	o := rep.Outcomes["t1"]
	if !o.Finished || o.Finish != 4 || o.Missed {
		t.Errorf("outcome: %+v", o)
	}
	if rep.Makespan != 4 {
		t.Errorf("makespan = %g", rep.Makespan)
	}
}

func TestTwoProcessorsRunInParallel(t *testing.T) {
	rep, err := Run(Config{
		Policy: NonPreemptive,
		Tasks: []Task{
			{Name: "a", Processor: "cpu0", Deadline: 10, Budget: 5},
			{Name: "b", Processor: "cpu1", Deadline: 10, Budget: 5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcomes["a"].Finish != 5 || rep.Outcomes["b"].Finish != 5 {
		t.Errorf("parallel finishes: a=%g b=%g",
			rep.Outcomes["a"].Finish, rep.Outcomes["b"].Finish)
	}
}

func TestEDFPreemption(t *testing.T) {
	rep, err := Run(Config{
		Policy: Preemptive,
		Tasks: []Task{
			{Name: "long", Processor: "cpu0", Release: 0, Deadline: 20, Budget: 8},
			{Name: "urgent", Processor: "cpu0", Release: 2, Deadline: 6, Budget: 3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcomes["urgent"].Finish != 5 {
		t.Errorf("urgent finish = %g, want 5", rep.Outcomes["urgent"].Finish)
	}
	if rep.Outcomes["long"].Finish != 11 {
		t.Errorf("long finish = %g, want 11", rep.Outcomes["long"].Finish)
	}
	if len(rep.Misses()) != 0 {
		t.Errorf("misses: %v", rep.Misses())
	}
}

func TestTimingFaultContainmentByPolicy(t *testing.T) {
	// E9: the §3.4.3 claim, end to end. A stuck task (infinite loop) on a
	// shared processor.
	tasks := func() []Task {
		return []Task{
			{Name: "stuck", Process: "P1", Processor: "cpu0", Release: 0, Deadline: 10, Budget: 3, Demand: math.Inf(1)},
			{Name: "v1", Process: "P2", Processor: "cpu0", Release: 1, Deadline: 8, Budget: 2},
			{Name: "v2", Process: "P2", Processor: "cpu0", Release: 2, Deadline: 12, Budget: 3},
		}
	}
	np, err := Run(Config{Policy: NonPreemptive, Tasks: tasks(), Horizon: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(np.Misses()); got != 3 {
		t.Errorf("non-preemptive misses = %v, want all 3", np.Misses())
	}
	p, err := Run(Config{Policy: Preemptive, Tasks: tasks(), Horizon: 100})
	if err != nil {
		t.Fatal(err)
	}
	missed := map[string]bool{}
	for _, m := range p.Misses() {
		missed[m] = true
	}
	if missed["v1"] || missed["v2"] {
		t.Errorf("preemptive victims: %v", p.Misses())
	}
	if !missed["stuck"] {
		t.Error("faulty task should still miss")
	}
	if !p.Outcomes["stuck"].Aborted {
		t.Error("stuck task not aborted by budget enforcement")
	}
}

func TestMessagePrecedence(t *testing.T) {
	rep, err := Run(Config{
		Policy: Preemptive,
		Tasks: []Task{
			{Name: "producer", Processor: "cpu0", Deadline: 10, Budget: 3, SendsTo: []string{"consumer"}},
			{Name: "consumer", Processor: "cpu1", Deadline: 20, Budget: 2, WaitsFor: []string{"producer"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Outcomes["consumer"]
	if c.Start != 3 || c.Finish != 5 {
		t.Errorf("consumer start=%g finish=%g, want 3, 5", c.Start, c.Finish)
	}
}

func TestMessageDeadlockTerminates(t *testing.T) {
	rep, err := Run(Config{
		Policy: Preemptive,
		Tasks: []Task{
			{Name: "waiter", Processor: "cpu0", Deadline: 10, Budget: 1, WaitsFor: []string{"never"}},
			{Name: "never", Processor: "cpu1", Deadline: 10, Budget: 1, WaitsFor: []string{"waiter"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Misses()) != 2 {
		t.Errorf("deadlocked tasks should miss: %v", rep.Misses())
	}
}

func TestSharedMemoryTaintPropagation(t *testing.T) {
	// f3: a corrupt write taints later readers of the region.
	rep, err := Run(Config{
		Policy: Preemptive,
		Tasks: []Task{
			{Name: "w", Processor: "cpu0", Deadline: 10, Budget: 2,
				Writes: []string{"shm"}, CorruptsOutputs: true, SendsTo: []string{"r"}},
			{Name: "r", Processor: "cpu0", Deadline: 20, Budget: 2,
				Reads: []string{"shm"}, WaitsFor: []string{"w"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Outcomes["r"].Tainted {
		t.Error("reader not tainted by corrupt shared memory")
	}
	got := rep.Tainted()
	if strings.Join(got, ",") != "r,w" {
		t.Errorf("tainted = %v", got)
	}
}

func TestGuardedReaderContainsTaint(t *testing.T) {
	// The recovery-block guard (E8): same scenario, guarded reader.
	rep, err := Run(Config{
		Policy: Preemptive,
		Tasks: []Task{
			{Name: "w", Processor: "cpu0", Deadline: 10, Budget: 2,
				Writes: []string{"shm"}, CorruptsOutputs: true, SendsTo: []string{"r"}},
			{Name: "r", Processor: "cpu0", Deadline: 20, Budget: 2,
				Reads: []string{"shm"}, WaitsFor: []string{"w"}, Guarded: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcomes["r"].Tainted {
		t.Error("guarded reader absorbed taint")
	}
}

func TestSpanEventStream(t *testing.T) {
	// One scenario exercising preemption, corrupt shared memory and a
	// guarded reader; the installed span must stream the scheduler events.
	o := obs.New()
	span := o.StartSpan("exec")
	_, err := Run(Config{
		Policy: Preemptive,
		Span:   span,
		Tasks: []Task{
			{Name: "long", Processor: "cpu0", Release: 0, Deadline: 20, Budget: 8,
				Writes: []string{"shm"}, CorruptsOutputs: true},
			{Name: "urgent", Processor: "cpu0", Release: 2, Deadline: 6, Budget: 3},
			{Name: "reader", Processor: "cpu0", Release: 12, Deadline: 30, Budget: 2,
				Reads: []string{"shm"}, Guarded: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	span.End()
	counts := map[string]int{}
	for _, ev := range span.Events() {
		counts[ev.Name]++
	}
	for _, want := range []string{"task-start", "task-finish", "preempt", "taint", "guard"} {
		if counts[want] == 0 {
			t.Errorf("no %q event in span stream; got %v", want, counts)
		}
	}
	if counts["task-start"] != 3 || counts["task-finish"] != 3 {
		t.Errorf("start/finish counts = %v, want 3 each", counts)
	}
	// Every event carries the simulation timestamp.
	for _, ev := range span.Events() {
		found := false
		for _, a := range ev.Attrs {
			if a.Key == "sim_time" {
				found = true
			}
		}
		if !found {
			t.Fatalf("event %q lacks sim_time attr", ev.Name)
		}
	}
}

func TestMessageTaintChain(t *testing.T) {
	// f4: taint travels along a 3-task message chain; guarding the middle
	// task cuts the chain.
	mk := func(guardMid bool) *Report {
		rep, err := Run(Config{
			Policy: Preemptive,
			Tasks: []Task{
				{Name: "a", Processor: "cpu0", Deadline: 10, Budget: 1,
					CorruptsOutputs: true, SendsTo: []string{"b"}},
				{Name: "b", Processor: "cpu0", Deadline: 20, Budget: 1,
					WaitsFor: []string{"a"}, SendsTo: []string{"c"}, Guarded: guardMid},
				{Name: "c", Processor: "cpu0", Deadline: 30, Budget: 1,
					WaitsFor: []string{"b"}},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	unguarded := mk(false)
	if got := strings.Join(unguarded.Tainted(), ","); got != "a,b,c" {
		t.Errorf("unguarded chain tainted = %q, want a,b,c", got)
	}
	guarded := mk(true)
	if got := strings.Join(guarded.Tainted(), ","); got != "a" {
		t.Errorf("guarded chain tainted = %q, want only a", got)
	}
}

func TestCleanWriteClearsRegionTaint(t *testing.T) {
	// A clean overwrite after the corrupt one restores the region.
	rep, err := Run(Config{
		Policy: Preemptive,
		Tasks: []Task{
			{Name: "bad", Processor: "cpu0", Deadline: 10, Budget: 1,
				Writes: []string{"shm"}, CorruptsOutputs: true},
			{Name: "fix", Processor: "cpu0", Release: 2, Deadline: 10, Budget: 1,
				Writes: []string{"shm"}},
			{Name: "late", Processor: "cpu1", Release: 5, Deadline: 20, Budget: 1,
				Reads: []string{"shm"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcomes["late"].Tainted {
		t.Error("late reader tainted despite clean overwrite")
	}
}

func TestNonPreemptiveRunsToCompletion(t *testing.T) {
	// Once started, a non-preemptive task finishes even if an
	// earlier-deadline task releases mid-run.
	rep, err := Run(Config{
		Policy: NonPreemptive,
		Tasks: []Task{
			{Name: "first", Processor: "cpu0", Release: 0, Deadline: 30, Budget: 10},
			{Name: "urgent", Processor: "cpu0", Release: 1, Deadline: 5, Budget: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcomes["first"].Finish != 10 {
		t.Errorf("first finish = %g, want 10 (no preemption)", rep.Outcomes["first"].Finish)
	}
	if !rep.Outcomes["urgent"].Missed {
		t.Error("urgent should miss under non-preemptive scheduling")
	}
}

func TestTraceContainsKeyEvents(t *testing.T) {
	rep, err := Run(Config{
		Policy: Preemptive,
		Tasks: []Task{
			{Name: "a", Processor: "cpu0", Deadline: 10, Budget: 1, SendsTo: []string{"b"}},
			{Name: "b", Processor: "cpu0", Deadline: 20, Budget: 1, WaitsFor: []string{"a"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(rep.Trace, "\n")
	for _, want := range []string{"a started", "message a->b", "b finished"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing %q:\n%s", want, joined)
		}
	}
}

func TestPolicyString(t *testing.T) {
	if Preemptive.String() != "preemptive" || NonPreemptive.String() != "non-preemptive" {
		t.Error("policy names wrong")
	}
	if Policy(7).String() != "Policy(7)" {
		t.Error("unknown policy name wrong")
	}
}

func TestRunRejectsZeroWorkTask(t *testing.T) {
	_, err := Run(Config{
		Policy: Preemptive,
		Tasks:  []Task{{Name: "idle", Processor: "p", Deadline: 5, Budget: 0}},
	})
	if !errors.Is(err, ErrBadTask) {
		t.Errorf("err = %v, want ErrBadTask", err)
	}
}

func TestPerProcessorPolicies(t *testing.T) {
	// cpu0 stays non-preemptive (legacy partition): its stuck task starves
	// the colocated victim. cpu1 is preemptive: its stuck task is killed
	// and the victim survives.
	tasks := []Task{
		{Name: "stuck0", Processor: "cpu0", Deadline: 10, Budget: 2, Demand: math.Inf(1)},
		{Name: "victim0", Processor: "cpu0", Release: 1, Deadline: 30, Budget: 2},
		{Name: "stuck1", Processor: "cpu1", Deadline: 10, Budget: 2, Demand: math.Inf(1)},
		{Name: "victim1", Processor: "cpu1", Release: 1, Deadline: 30, Budget: 2},
	}
	rep, err := Run(Config{
		Policy:   Preemptive,
		PolicyOf: map[string]Policy{"cpu0": NonPreemptive},
		Tasks:    tasks,
		Horizon:  1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	missed := map[string]bool{}
	for _, m := range rep.Misses() {
		missed[m] = true
	}
	if !missed["victim0"] {
		t.Error("non-preemptive cpu0 victim should miss")
	}
	if missed["victim1"] {
		t.Error("preemptive cpu1 victim should survive")
	}
}

func TestPolicyOfValidation(t *testing.T) {
	_, err := Run(Config{
		Policy:   Preemptive,
		PolicyOf: map[string]Policy{"cpu0": Policy(42)},
		Tasks:    []Task{{Name: "a", Processor: "cpu0", Deadline: 5, Budget: 1}},
	})
	if err == nil {
		t.Error("bad per-processor policy accepted")
	}
}

func TestMessageLatencyDelaysConsumer(t *testing.T) {
	rep, err := Run(Config{
		Policy: Preemptive,
		Tasks: []Task{
			{Name: "producer", Processor: "cpu0", Deadline: 10, Budget: 3,
				SendsTo: []string{"consumer"}, SendLatency: 4},
			{Name: "consumer", Processor: "cpu1", Deadline: 20, Budget: 2,
				WaitsFor: []string{"producer"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Outcomes["consumer"]
	// Producer finishes at 3; message arrives at 7; consumer runs [7,9].
	if c.Start != 7 || c.Finish != 9 {
		t.Errorf("consumer start=%g finish=%g, want 7, 9", c.Start, c.Finish)
	}
	joined := strings.Join(rep.Trace, "\n")
	if !strings.Contains(joined, "in transit") {
		t.Errorf("trace missing transit event:\n%s", joined)
	}
}

func TestMessageLatencyCarriesTaint(t *testing.T) {
	rep, err := Run(Config{
		Policy: Preemptive,
		Tasks: []Task{
			{Name: "bad", Processor: "cpu0", Deadline: 10, Budget: 1,
				CorruptsOutputs: true, SendsTo: []string{"victim"}, SendLatency: 2},
			{Name: "victim", Processor: "cpu1", Deadline: 20, Budget: 1,
				WaitsFor: []string{"bad"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Outcomes["victim"].Tainted {
		t.Error("taint lost in transit")
	}
}

func TestGanttRendering(t *testing.T) {
	rep, err := Run(Config{
		Policy: Preemptive,
		Tasks: []Task{
			{Name: "a", Processor: "cpu0", Deadline: 10, Budget: 4},
			{Name: "b", Processor: "cpu1", Release: 2, Deadline: 4, Budget: 3}, // must miss
		},
		Horizon: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := rep.Gantt(40)
	for _, want := range []string{"cpu0:", "cpu1:", "a ", "#", "X"} {
		if !strings.Contains(g, want) {
			t.Errorf("gantt missing %q:\n%s", want, g)
		}
	}
	if !strings.Contains(g, "gantt [0,") {
		t.Errorf("missing header:\n%s", g)
	}
}

func TestGanttNeverStartedTask(t *testing.T) {
	rep, err := Run(Config{
		Policy: Preemptive,
		Tasks: []Task{
			{Name: "waiter", Processor: "cpu0", Deadline: 5, Budget: 1, WaitsFor: []string{"never"}},
			{Name: "never", Processor: "cpu1", Deadline: 5, Budget: 1, WaitsFor: []string{"waiter"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := rep.Gantt(0)
	if !strings.Contains(g, "(never started)") {
		t.Errorf("gantt missing unstarted marker:\n%s", g)
	}
}
