package exec

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Gantt renders an ASCII timeline of the run: one row per task, grouped
// by processor, with '#' for execution between start and finish, '.' for
// released-but-waiting time, and 'X' marking a missed deadline. width
// columns cover [0, makespan] (default 60).
//
// The rendering approximates preempted tasks as busy across [start,
// finish] — the simulator does not retain per-slice history — which is
// sufficient for eyeballing orderings and misses.
func (r *Report) Gantt(width int) string {
	if width <= 0 {
		width = 60
	}
	span := r.Makespan
	for _, o := range r.Outcomes {
		if o.Finished && o.Finish > span {
			span = o.Finish
		}
		if o.Task != "" && o.Missed {
			// Deadline markers can sit past the makespan.
			continue
		}
	}
	if span <= 0 {
		span = 1
	}
	col := func(t float64) int {
		c := int(t / span * float64(width))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	type row struct {
		proc, task string
		o          *Outcome
	}
	var rows []row
	for name, o := range r.Outcomes {
		rows = append(rows, row{proc: procOf(r, name), task: name, o: o})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].proc != rows[j].proc {
			return rows[i].proc < rows[j].proc
		}
		return rows[i].task < rows[j].task
	})
	var b strings.Builder
	fmt.Fprintf(&b, "gantt [0, %.4g] (%d cols)\n", span, width)
	lastProc := ""
	for _, rw := range rows {
		if rw.proc != lastProc {
			fmt.Fprintf(&b, "%s:\n", rw.proc)
			lastProc = rw.proc
		}
		line := make([]byte, width)
		for i := range line {
			line[i] = ' '
		}
		o := rw.o
		if o.Started {
			end := o.Finish
			if !o.Finished || math.IsInf(end, 1) {
				end = span
			}
			for i := col(o.Start); i <= col(end); i++ {
				line[i] = '#'
			}
		}
		mark := " "
		if o.Missed {
			mark = "X"
		}
		fmt.Fprintf(&b, "  %-12s |%s| %s\n", rw.task, string(line), mark)
	}
	return b.String()
}

// procOf finds the processor of a task from the outcome's process field is
// not enough; the Report does not retain the task table, so the processor
// is recovered from the trace's "started on" events.
func procOf(r *Report, task string) string {
	needle := task + " started on "
	for _, line := range r.Trace {
		if idx := strings.Index(line, needle); idx >= 0 {
			return strings.TrimSpace(line[idx+len(needle):])
		}
	}
	return "(never started)"
}
