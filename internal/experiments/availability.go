package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/faultsim"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/spec"
)

// E15Row is one availability measurement.
type E15Row struct {
	Module    string
	Replicas  int
	Simulated float64
	Analytic  float64
}

// E15Result carries the availability study.
type E15Result struct {
	NodeAvailability float64
	Rows             []E15Row
	Text             string
}

// E15 runs the continuous-time availability simulation over the worked
// example's H1 mapping: HW nodes fail and repair (MTTF 1000, MTTR 50),
// and each module is in service while enough replicas survive. The
// simulated availabilities are checked against the analytic k-of-n values
// with per-node availability a = MTTF/(MTTF+MTTR) — the "quantification
// of the goodness of dependable system integration" promised in the
// paper's abstract, over time rather than per mission.
func E15(horizon float64, seed uint64) (E15Result, error) {
	if horizon <= 0 {
		horizon = 5e5
	}
	sys := spec.PaperExample()
	g, err := sys.Graph()
	if err != nil {
		return E15Result{}, err
	}
	exp, err := cluster.Expand(g, sys.Jobs())
	if err != nil {
		return E15Result{}, err
	}
	c := cluster.NewCondenser(exp.Graph, exp.Jobs)
	if err := c.ReduceByInfluence(sys.HWNodes); err != nil {
		return E15Result{}, err
	}
	hwOf := map[string]string{}
	for _, id := range c.G.Nodes() {
		for _, m := range graph.Members(id) {
			hwOf[m] = id
		}
	}

	const mttf, mttr = 1000.0, 50.0
	camp := faultsim.AvailabilityCampaign{
		HWOf:             hwOf,
		ReplicasOf:       exp.ReplicasOf,
		MTTF:             mttf,
		MTTR:             mttr,
		MajorityRequired: true,
		Horizon:          horizon,
		Seed:             seed,
	}
	r, err := faultsim.RunAvailability(camp)
	if err != nil {
		return E15Result{}, err
	}
	a, err := faultsim.AnalyticNodeAvailability(mttf, mttr)
	if err != nil {
		return E15Result{}, err
	}

	res := E15Result{NodeAvailability: r.NodeAvailability}
	var b strings.Builder
	b.WriteString("E15: continuous-time availability over the H1 mapping\n")
	fmt.Fprintf(&b, "  MTTF=%g MTTR=%g horizon=%g; per-node availability: simulated %.4f, analytic %.4f\n",
		mttf, mttr, horizon, r.NodeAvailability, a)
	b.WriteString("  module  replicas  simulated  analytic(k-of-n)\n")
	for _, p := range sys.Processes {
		reps := exp.ReplicasOf[p.Name]
		need := len(reps)/2 + 1
		analytic, err := metrics.KOfN(need, len(reps), a)
		if err != nil {
			return res, err
		}
		row := E15Row{
			Module:    p.Name,
			Replicas:  len(reps),
			Simulated: r.ModuleAvailability[p.Name],
			Analytic:  analytic,
		}
		res.Rows = append(res.Rows, row)
		fmt.Fprintf(&b, "  %-6s  %8d  %9.4f  %16.4f\n",
			row.Module, row.Replicas, row.Simulated, row.Analytic)
	}
	res.Text = b.String()
	return res, nil
}
