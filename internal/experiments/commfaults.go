package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/faultsim"
	"repro/internal/graph"
	"repro/internal/spec"
)

// E13Row is one communication-fault measurement.
type E13Row struct {
	CommFraction float64
	H1Escape     float64
	CritEscape   float64
}

// E13Result carries the communication-fault sweep.
type E13Result struct {
	Rows []E13Row
	Text string
}

// E13 exercises the second half of the paper's fault model ("faults occur
// in single FCMs, or in communication between a pair of FCMs"): the
// fraction of faults injected into communication edges is swept from 0 to
// 1, and containment compared between the influence-driven (H1) and
// criticality-driven mappings. Expected shape: escape rates rise with the
// communication-fault share (a corrupted message starts life on an edge,
// which crosses a boundary more often than a node fault does), and H1
// stays below the criticality-driven mapping throughout, because H1
// colocates exactly the heavily communicating pairs.
func E13(trials int, seed uint64) (E13Result, error) {
	if trials <= 0 {
		trials = 20000
	}
	sys := spec.PaperExample()
	g, err := sys.Graph()
	if err != nil {
		return E13Result{}, err
	}
	exp, err := cluster.Expand(g, sys.Jobs())
	if err != nil {
		return E13Result{}, err
	}
	full := exp.Graph

	mkHW := func(reduce func(c *cluster.Condenser) error) (map[string]string, error) {
		c := cluster.NewCondenser(full.Clone(), exp.Jobs)
		if err := reduce(c); err != nil {
			return nil, err
		}
		hwOf := map[string]string{}
		for _, id := range c.G.Nodes() {
			for _, m := range graph.Members(id) {
				hwOf[m] = id
			}
		}
		return hwOf, nil
	}
	h1HW, err := mkHW(func(c *cluster.Condenser) error { return c.ReduceByInfluence(6) })
	if err != nil {
		return E13Result{}, err
	}
	critHW, err := mkHW(func(c *cluster.Condenser) error { return c.ReduceByCriticality(6) })
	if err != nil {
		return E13Result{}, err
	}

	var res E13Result
	var b strings.Builder
	b.WriteString("E13: communication faults (paper fault model, second clause)\n")
	fmt.Fprintf(&b, "  trials=%d seed=%d\n", trials, seed)
	b.WriteString("  comm-fraction  H1-escape  criticality-escape\n")
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
		run := func(hwOf map[string]string) (float64, error) {
			r, err := faultsim.Run(faultsim.Campaign{
				Graph: full, HWOf: hwOf, Trials: trials, Seed: seed,
				CommFaultFraction: frac,
			})
			if err != nil {
				return 0, err
			}
			return r.EscapeRate(), nil
		}
		h1, err := run(h1HW)
		if err != nil {
			return res, err
		}
		crit, err := run(critHW)
		if err != nil {
			return res, err
		}
		row := E13Row{CommFraction: frac, H1Escape: h1, CritEscape: crit}
		res.Rows = append(res.Rows, row)
		fmt.Fprintf(&b, "  %13.2f  %9.4f  %18.4f\n", frac, h1, crit)
	}
	res.Text = b.String()
	return res, nil
}
