package experiments

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"repro/internal/hierarchy"
)

// E12Row is one hierarchy-depth measurement.
type E12Row struct {
	Scheme string
	Depth  int
	// TotalFCMs is the structural overhead (all FCMs for the same leaves).
	TotalFCMs int
	// Leaves is the number of leaf procedures (held constant).
	Leaves int
	// MeanRetest is the mean per-modification retest cost (FCMs +
	// interfaces) under rule R5'.
	MeanRetest float64
}

// E12Result carries the depth ablation.
type E12Result struct {
	Rows []E12Row
	Text string
}

// E12 ablates the paper's deliberate three-level choice: the same 64 leaf
// procedures arranged in 2-, 3- and 4-level hierarchies, measuring the R5
// retest cost of random leaf modifications against the structural
// overhead. Deeper schemes localise retests (fewer siblings per parent)
// at the price of more intermediate FCMs — the tradeoff that makes three
// levels a sensible default.
func E12(mods int, seed uint64) (E12Result, error) {
	if mods <= 0 {
		mods = 200
	}
	type shape struct {
		name      string
		scheme    hierarchy.Scheme
		branching []int
	}
	two, err := hierarchy.NewScheme("procedure", "process")
	if err != nil {
		return E12Result{}, err
	}
	three, err := hierarchy.ThreeLevel()
	if err != nil {
		return E12Result{}, err
	}
	four, err := hierarchy.WithObjects()
	if err != nil {
		return E12Result{}, err
	}
	shapes := []shape{
		// 64 leaves in every shape.
		{"2-level (64 per process)", two, []int{64}},
		{"3-level (8x8)", three, []int{8, 8}},
		{"4-level (4x4x4)", four, []int{4, 4, 4}},
	}
	var res E12Result
	var b strings.Builder
	b.WriteString("E12: hierarchy-depth ablation (64 leaf procedures, R5 retest cost)\n")
	fmt.Fprintf(&b, "  modifications per shape: %d\n", mods)
	b.WriteString("  scheme                     depth  total-FCMs  mean-retest-cost\n")
	for _, sh := range shapes {
		tree, leaves, err := hierarchy.BuildUniform(sh.scheme, sh.branching)
		if err != nil {
			return res, fmt.Errorf("experiments: E12 %s: %w", sh.name, err)
		}
		rng := rand.New(rand.NewPCG(seed, seed^uint64(sh.scheme.Depth())))
		total := 0
		for i := 0; i < mods; i++ {
			leaf := leaves[rng.IntN(len(leaves))]
			fcms, interfaces, err := tree.RetestSet(leaf)
			if err != nil {
				return res, err
			}
			total += len(fcms) + len(interfaces)
			tree.ClearModified()
		}
		row := E12Row{
			Scheme:     sh.name,
			Depth:      sh.scheme.Depth(),
			TotalFCMs:  tree.Len(),
			Leaves:     len(leaves),
			MeanRetest: float64(total) / float64(mods),
		}
		res.Rows = append(res.Rows, row)
		fmt.Fprintf(&b, "  %-25s  %5d  %10d  %16.2f\n",
			row.Scheme, row.Depth, row.TotalFCMs, row.MeanRetest)
	}
	res.Text = b.String()
	return res, nil
}
