package experiments

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestTable1(t *testing.T) {
	txt, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"p1 ", "p8 ", "C  FT  EST  TCD  CT"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Table1 missing %q:\n%s", want, txt)
		}
	}
	if got := strings.Count(txt, "\n"); got != 10 {
		t.Errorf("Table1 lines = %d, want 10", got)
	}
}

func TestFig1(t *testing.T) {
	r, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if r.FCMCount != 10 { // 9 built + 1 clone
		t.Errorf("FCM count = %d, want 10", r.FCMCount)
	}
	if !errors.Is(r.RuleR2Err, core.ErrRuleR2) {
		t.Errorf("R2 rejection = %v", r.RuleR2Err)
	}
	if !strings.Contains(r.Text, "f1#T3") {
		t.Errorf("Fig1 text missing clone:\n%s", r.Text)
	}
}

func TestFig2(t *testing.T) {
	r, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.CombinedOnN6-0.37) > 1e-12 {
		t.Errorf("combined influence on n6 = %g, want 0.37", r.CombinedOnN6)
	}
}

func TestFig3(t *testing.T) {
	txt, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt, "nodes=8 directed influence edges=13") {
		t.Errorf("Fig3 summary wrong:\n%s", txt)
	}
}

func TestFig4(t *testing.T) {
	r, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes != 12 {
		t.Errorf("nodes = %d, want 12", r.Nodes)
	}
	// Replica links: p1 (3 pairs) + p2 (1) + p3 (1) = 5 pairs = 10
	// directed edges.
	if r.ReplicaEdges != 10 {
		t.Errorf("replica edges = %d, want 10", r.ReplicaEdges)
	}
}

func TestFig5GoldenValues(t *testing.T) {
	r, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFig5(r); err != nil {
		t.Error(err)
	}
}

func TestFig6Clusters(t *testing.T) {
	r, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(r.Clusters, " ")
	want := "p1c p3b {p1a,p2a} {p1b,p2b} {p3a,p4,p5} {p6,p7,p8}"
	if got != want {
		t.Errorf("clusters = %s, want %s", got, want)
	}
	if len(r.Trace) != 6 {
		t.Errorf("trace steps = %d, want 6 (12 nodes -> 6)", len(r.Trace))
	}
}

func TestFig7Clusters(t *testing.T) {
	r, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(r.Clusters, " ")
	want := "{p1a,p8} {p1b,p7} {p1c,p5} {p2a,p6} {p2b,p3b} {p3a,p4}"
	if got != want {
		t.Errorf("clusters = %s, want %s", got, want)
	}
}

func TestFig8Clusters(t *testing.T) {
	r, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Clusters) < 3 || len(r.Clusters) > 6 {
		t.Errorf("cluster count = %d, want 3..6", len(r.Clusters))
	}
}

func TestE1Algebra(t *testing.T) {
	r, err := E1()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Eq1-0.05) > 1e-12 || math.Abs(r.Eq2-0.76) > 1e-12 || math.Abs(r.Eq4-0.37) > 1e-12 {
		t.Errorf("E1 = %+v", r)
	}
}

func TestE2HeuristicsBeatRandom(t *testing.T) {
	r, err := E2([]int{12, 24}, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Per size: H1 containment >= random containment.
	byKey := map[string]E2Row{}
	for _, row := range r.Rows {
		byKey[row.Heuristic+"@"+itoa(row.N)] = row
	}
	for _, n := range []int{12, 24} {
		h1 := byKey["H1@"+itoa(n)]
		rnd := byKey["random@"+itoa(n)]
		if h1.Err != "" {
			t.Fatalf("H1 failed at n=%d: %s", n, h1.Err)
		}
		if rnd.Err != "" {
			t.Logf("random failed at n=%d (acceptable): %s", n, rnd.Err)
			continue
		}
		if h1.Contain < rnd.Contain {
			t.Errorf("n=%d: H1 containment %g below random %g", n, h1.Contain, rnd.Contain)
		}
	}
}

func itoa(n int) string {
	return strings.TrimSpace(strings.ReplaceAll(strings.Repeat(" ", 0)+fmtInt(n), " ", ""))
}

func fmtInt(n int) string {
	if n == 0 {
		return "0"
	}
	digits := []byte{}
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestE3InfluenceDrivenContainsBest(t *testing.T) {
	r, err := E3(8000, 21)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]E3Row{}
	for _, row := range r.Rows {
		byName[row.Heuristic] = row
	}
	h1, rnd := byName["H1"], byName["random"]
	if h1.Escape > rnd.Escape {
		t.Errorf("H1 escape %g above random %g", h1.Escape, rnd.Escape)
	}
	for _, row := range r.Rows {
		if row.Escape <= 0 || row.Escape >= 1 {
			t.Errorf("%s escape = %g, want in (0,1)", row.Heuristic, row.Escape)
		}
	}
}

func TestE4Converges(t *testing.T) {
	r, err := E4(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Order 1: no direct edge p1->p5, separation 1.
	if r.Rows[0].Separation != 1 {
		t.Errorf("order-1 separation = %g, want 1", r.Rows[0].Separation)
	}
	// Separation is monotone non-increasing in the order (terms are
	// non-negative), even though deltas oscillate with period 2 (the graph
	// has 2-cycles, so even-length paths carry extra mass).
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Separation > r.Rows[i-1].Separation+1e-12 {
			t.Errorf("separation rose at order %d: %g -> %g",
				r.Rows[i].Order, r.Rows[i-1].Separation, r.Rows[i].Separation)
		}
	}
	// Overall geometric decay: the first mass arrives at order 3 (the
	// shortest p1→p2→p3→p5 path); the order-8 delta is well below it.
	if r.Rows[2].Delta == 0 {
		t.Error("order-3 term should be the first non-zero one")
	}
	if r.Rows[7].Delta > r.Rows[2].Delta/4 {
		t.Errorf("series not decaying: delta(3)=%g delta(8)=%g",
			r.Rows[2].Delta, r.Rows[7].Delta)
	}
	if last := r.Rows[len(r.Rows)-1].Delta; last > 0.01 {
		t.Errorf("series not converged by order 8: delta %g", last)
	}
}

func TestE5FindsIntegrationFloor(t *testing.T) {
	r, err := E5(2000, 31)
	if err != nil {
		t.Fatal(err)
	}
	// Floor: p1's three replicas force at least 3 nodes; H1's greedy merge
	// order dead-ends at 4 on this workload (timing windows block the
	// last consolidation) — the concrete instance of the paper's
	// integration-level limit.
	if r.Floor < 3 || r.Floor > 4 {
		t.Errorf("integration floor = %d, want 3 or 4", r.Floor)
	}
	// Cross influence decreases monotonically as targets shrink (more
	// integration = more containment), over feasible rows.
	var prev float64 = math.Inf(1)
	for _, row := range r.Rows {
		if !row.Feasible {
			continue
		}
		if row.Cross > prev+1e-9 {
			t.Errorf("cross influence rose at target %d: %g -> %g", row.Target, prev, row.Cross)
		}
		prev = row.Cross
	}
	// Targets 1 and 2 must be infeasible.
	for _, row := range r.Rows {
		if row.Target < 3 && row.Feasible {
			t.Errorf("target %d reported feasible", row.Target)
		}
	}
}

func TestE6R5SavesSubstantially(t *testing.T) {
	r, err := E6(4, 3, 4, 25, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s := r.Model.Savings(); s < 0.5 {
		t.Errorf("R5 savings = %g, want > 0.5 on a 61-FCM hierarchy", s)
	}
}

func TestE7ShapesHold(t *testing.T) {
	r, err := E7(20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.TMRVal >= row.Simplex {
			t.Errorf("p=%g: TMR %g not below simplex %g", row.FailureProb, row.TMRVal, row.Simplex)
		}
		if row.Duplex >= row.Simplex {
			t.Errorf("p=%g: duplex %g not below simplex %g", row.FailureProb, row.Duplex, row.Simplex)
		}
		if math.Abs(row.TMRVal-row.TMRAnalytic) > 0.02 {
			t.Errorf("p=%g: measured TMR %g far from analytic %g",
				row.FailureProb, row.TMRVal, row.TMRAnalytic)
		}
	}
}

func TestE8GuardCutsPropagation(t *testing.T) {
	r, err := E8()
	if err != nil {
		t.Fatal(err)
	}
	if r.UnguardedTainted != 4 {
		t.Errorf("unguarded tainted = %d, want 4 (whole pipeline)", r.UnguardedTainted)
	}
	if r.GuardedTainted != 1 {
		t.Errorf("guarded tainted = %d, want 1 (source only)", r.GuardedTainted)
	}
	if r.RBContainment != 1 {
		t.Errorf("recovery-block containment = %g, want 1", r.RBContainment)
	}
}

func TestE9PreemptionContainsTimingFault(t *testing.T) {
	r, err := E9()
	if err != nil {
		t.Fatal(err)
	}
	if r.NonPreemptiveVictims != 5 {
		t.Errorf("non-preemptive victims = %d, want 5", r.NonPreemptiveVictims)
	}
	if r.PreemptiveVictims != 0 {
		t.Errorf("preemptive victims = %d, want 0", r.PreemptiveVictims)
	}
}

func TestSynthesizeValidity(t *testing.T) {
	sys, err := Synthesize(SynthConfig{Processes: 20, EdgesPerNode: 2, ReplicatedFraction: 0.3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Processes) != 20 {
		t.Errorf("processes = %d", len(sys.Processes))
	}
	if err := sys.Validate(); err != nil {
		t.Errorf("synthesized system invalid: %v", err)
	}
	// Deterministic under seed.
	sys2, err := Synthesize(SynthConfig{Processes: 20, EdgesPerNode: 2, ReplicatedFraction: 0.3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	a, b := sys.Processes[7], sys2.Processes[7]
	if a.Name != b.Name || a.Criticality != b.Criticality || a.EST != b.EST ||
		a.TCD != b.TCD || a.CT != b.CT || a.FT != b.FT {
		t.Error("generator not deterministic")
	}
	if _, err := Synthesize(SynthConfig{Processes: 1}); err == nil {
		t.Error("tiny config accepted")
	}
}

func TestFeasibilityProbe(t *testing.T) {
	sys, err := Synthesize(SynthConfig{Processes: 12, EdgesPerNode: 2, ReplicatedFraction: 0.2, Seed: 4, HWNodes: 6})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := FeasibilityProbe(sys, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("12 -> 6 should be feasible on a loose synthetic workload")
	}
	ok, err = FeasibilityProbe(sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("reduction to one node should be blocked by replicas")
	}
}

func TestSeparationCheckHelper(t *testing.T) {
	s1, err := SeparationCheck(1)
	if err != nil {
		t.Fatal(err)
	}
	s8, err := SeparationCheck(8)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != 1 || s8 >= s1 {
		t.Errorf("separation order sweep: s1=%g s8=%g", s1, s8)
	}
}

func TestE10EstimationImprovesWithTrials(t *testing.T) {
	r, err := E10([]int{500, 50000}, 13)
	if err != nil {
		t.Fatal(err)
	}
	small, large := r.Rows[0], r.Rows[1]
	if large.MeanAbsError >= small.MeanAbsError {
		t.Errorf("more trials did not reduce error: %g -> %g",
			small.MeanAbsError, large.MeanAbsError)
	}
	if large.Agreement < 0.85 {
		t.Errorf("agreement at 50k trials = %g, want >= 0.85", large.Agreement)
	}
	// The estimated partition's containment cost stays close to truth's.
	if large.CrossEst > large.CrossTrue*1.1 {
		t.Errorf("estimated partition cross %g vs true %g",
			large.CrossEst, large.CrossTrue)
	}
}

func TestE11RefinementHelpsOnSparseTopologies(t *testing.T) {
	r, err := E11()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]E11Row{}
	for _, row := range r.Rows {
		byName[row.Topology] = row
	}
	// Complete platform: all distances 1, nothing to improve.
	if c := byName["complete6"]; c.After != c.Before {
		t.Errorf("complete topology changed: %+v", c)
	}
	// Sparse topologies: refinement must not hurt, and dilation before >=
	// after with at least one of ring/mesh strictly improved.
	improved := false
	for _, name := range []string{"ring6", "mesh2x3"} {
		row := byName[name]
		if row.After > row.Before {
			t.Errorf("%s: refinement hurt: %g -> %g", name, row.Before, row.After)
		}
		if row.After < row.Before {
			improved = true
		}
	}
	if !improved {
		t.Error("refinement improved neither sparse topology")
	}
}

func TestE12DeeperSchemesLocaliseRetests(t *testing.T) {
	r, err := E12(200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// All shapes hold leaves constant.
	for _, row := range r.Rows {
		if row.Leaves != 64 {
			t.Errorf("%s leaves = %d", row.Scheme, row.Leaves)
		}
	}
	// Mean retest cost strictly decreases with depth (fewer siblings per
	// parent); structural overhead strictly increases.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].MeanRetest >= r.Rows[i-1].MeanRetest {
			t.Errorf("retest cost not decreasing: %s %.2f -> %s %.2f",
				r.Rows[i-1].Scheme, r.Rows[i-1].MeanRetest,
				r.Rows[i].Scheme, r.Rows[i].MeanRetest)
		}
		if r.Rows[i].TotalFCMs <= r.Rows[i-1].TotalFCMs {
			t.Errorf("overhead not increasing: %d -> %d",
				r.Rows[i-1].TotalFCMs, r.Rows[i].TotalFCMs)
		}
	}
	// Exact expectations: 2-level retest = leaf + process + 63 interfaces
	// = 65; 3-level = leaf + task + 7 interfaces = 9; 4-level = 5.
	want := []float64{65, 9, 5}
	for i, w := range want {
		if r.Rows[i].MeanRetest != w {
			t.Errorf("%s mean retest = %g, want %g", r.Rows[i].Scheme, r.Rows[i].MeanRetest, w)
		}
	}
}

func TestE13CommFaultShape(t *testing.T) {
	r, err := E13(10000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.H1Escape > row.CritEscape {
			t.Errorf("comm=%g: H1 escape %g above criticality %g",
				row.CommFraction, row.H1Escape, row.CritEscape)
		}
	}
}

func TestSynthesizeShapedValid(t *testing.T) {
	for _, shape := range []Shape{ShapeRandom, ShapePipeline, ShapeLayered, ShapeStar} {
		t.Run(shape.String(), func(t *testing.T) {
			sys, err := SynthesizeShaped(shape, 20, 3, 8)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.Validate(); err != nil {
				t.Errorf("invalid: %v", err)
			}
			if len(sys.Influences) == 0 {
				t.Error("no influence edges generated")
			}
		})
	}
	if _, err := SynthesizeShaped(ShapeRandom, 2, 1, 1); err == nil {
		t.Error("tiny n accepted")
	}
	if _, err := SynthesizeShaped(Shape(99), 20, 1, 8); err == nil {
		t.Error("unknown shape accepted")
	}
}

func TestE14H1DominatesAcrossTopologies(t *testing.T) {
	r, err := E14(24, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.H1Contain < row.RandContain {
			t.Errorf("%s: H1 %g below random %g", row.Shape, row.H1Contain, row.RandContain)
		}
		if row.H1Contain < row.CritContain-0.05 {
			t.Errorf("%s: H1 %g well below criticality %g", row.Shape, row.H1Contain, row.CritContain)
		}
	}
}

func TestE15SimulatedMatchesAnalytic(t *testing.T) {
	r, err := E15(5e5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if math.Abs(row.Simulated-row.Analytic) > 0.02 {
			t.Errorf("%s: simulated %g vs analytic %g",
				row.Module, row.Simulated, row.Analytic)
		}
	}
	// TMR p1 has higher availability than any simplex module.
	byName := map[string]E15Row{}
	for _, row := range r.Rows {
		byName[row.Module] = row
	}
	if byName["p1"].Simulated <= byName["p4"].Simulated {
		t.Errorf("TMR p1 %g not above simplex p4 %g",
			byName["p1"].Simulated, byName["p4"].Simulated)
	}
}
