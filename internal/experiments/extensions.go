package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strings"

	"repro/internal/attrs"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/faultsim"
	"repro/internal/ftsw"
	"repro/internal/graph"
	"repro/internal/influence"
	"repro/internal/metrics"
	"repro/internal/spec"
	"repro/internal/verify"
)

// E1Result verifies the probability algebra of Eqs. (1)–(4).
type E1Result struct {
	Eq1  float64 // 0.5·0.4·0.25
	Eq2  float64 // combine(0.7, 0.2)
	Eq4  float64 // cluster combine(0.3, 0.1)
	Text string
}

// E1 exercises the influence algebra on the paper's own numbers.
func E1() (E1Result, error) {
	f := influence.Factor{Name: "demo", POccur: 0.5, PTransmit: 0.4, PManifest: 0.25}
	eq2, err := influence.Combine([]float64{0.7, 0.2})
	if err != nil {
		return E1Result{}, err
	}
	eq4, err := influence.ClusterInfluence([]float64{0.3, 0.1})
	if err != nil {
		return E1Result{}, err
	}
	r := E1Result{Eq1: f.P(), Eq2: eq2, Eq4: eq4}
	r.Text = fmt.Sprintf(
		"E1: influence algebra\n  Eq.(1) p=p1*p2*p3: 0.5*0.4*0.25 = %.4g\n"+
			"  Eq.(2) 1-(1-0.7)(1-0.2) = %.4g (Fig. 5's 0.76)\n"+
			"  Eq.(4) 1-(1-0.3)(1-0.1) = %.4g (Fig. 5's 0.37)\n",
		r.Eq1, r.Eq2, r.Eq4)
	return r, nil
}

// E2Row is one heuristic-comparison measurement.
type E2Row struct {
	N         int
	Heuristic string
	Cross     float64 // residual cross-node influence (lower = better)
	Contain   float64 // contained fraction
	Err       string  // non-empty when the heuristic failed
}

// E2Result carries the comparison table.
type E2Result struct {
	Rows []E2Row
	Text string
}

// E2 compares the condensation heuristics on synthetic graphs of growing
// size, measuring the §5.3 containment metric. Expected shape: H1 and H2
// contain clearly more influence than a random feasible partition; H3
// tracks them.
func E2(sizes []int, seed uint64) (E2Result, error) {
	if len(sizes) == 0 {
		sizes = []int{12, 24, 48}
	}
	dw, err := attrs.DefaultWeights()
	if err != nil {
		return E2Result{}, err
	}
	var res E2Result
	var b strings.Builder
	b.WriteString("E2: heuristic containment comparison (synthetic workloads)\n")
	b.WriteString("   n  heuristic     cross-influence  contained\n")
	for _, n := range sizes {
		sys, err := Synthesize(SynthConfig{
			Processes: n, EdgesPerNode: 2.5, ReplicatedFraction: 0.25,
			Seed: seed + uint64(n), HWNodes: maxInt(2, n/3),
		})
		if err != nil {
			return res, err
		}
		g, err := sys.Graph()
		if err != nil {
			return res, err
		}
		exp, err := cluster.Expand(g, sys.Jobs())
		if err != nil {
			return res, err
		}
		full := exp.Graph
		total := 0.0
		for _, e := range full.Edges() {
			if !e.Replica {
				total += e.Weight
			}
		}
		run := func(name string, reduce func(c *cluster.Condenser) error) {
			c := cluster.NewCondenser(full.Clone(), exp.Jobs)
			row := E2Row{N: n, Heuristic: name}
			if err := reduce(c); err != nil {
				row.Err = err.Error()
			} else {
				row.Cross = full.CrossWeight(c.Partition())
				if total > 0 {
					row.Contain = 1 - row.Cross/total
				}
			}
			res.Rows = append(res.Rows, row)
			if row.Err != "" {
				fmt.Fprintf(&b, "%4d  %-12s  FAILED: %s\n", n, name, row.Err)
			} else {
				fmt.Fprintf(&b, "%4d  %-12s  %15.3f  %9.3f\n", n, name, row.Cross, row.Contain)
			}
		}
		target := sys.HWNodes
		run("H1", func(c *cluster.Condenser) error { return c.ReduceByInfluence(target) })
		run("H1-pair-all", func(c *cluster.Condenser) error { return c.ReduceByInfluencePairAll(target) })
		run("H2-min-cut", func(c *cluster.Condenser) error { return c.ReduceByMinCut(target) })
		run("H3-spheres", func(c *cluster.Condenser) error { return c.ReduceBySpheres(target, dw) })
		run("criticality", func(c *cluster.Condenser) error { return c.ReduceByCriticality(target) })
		run("random", func(c *cluster.Condenser) error { return randomReduce(c, target, seed+uint64(n)) })
	}
	res.Text = b.String()
	return res, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// randomReduce is the baseline: merge uniformly random feasible pairs.
func randomReduce(c *cluster.Condenser, target int, seed uint64) error {
	rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
	for c.G.NumNodes() > target {
		nodes := c.G.Nodes()
		merged := false
		// Up to n² random probes, then a deterministic sweep.
		for try := 0; try < len(nodes)*len(nodes); try++ {
			a := nodes[rng.IntN(len(nodes))]
			b := nodes[rng.IntN(len(nodes))]
			if a == b {
				continue
			}
			if ok, _ := c.CanCombine(a, b); !ok {
				continue
			}
			if _, err := c.Combine(a, b, "random"); err != nil {
				return err
			}
			merged = true
			break
		}
		if !merged {
			for i, a := range nodes {
				for _, b := range nodes[i+1:] {
					if ok, _ := c.CanCombine(a, b); ok {
						if _, err := c.Combine(a, b, "random"); err != nil {
							return err
						}
						merged = true
						break
					}
				}
				if merged {
					break
				}
			}
		}
		if !merged {
			return cluster.ErrCannotReduce
		}
	}
	return nil
}

// E3Row is one fault-injection measurement.
type E3Row struct {
	Heuristic string
	Escape    float64 // fraction of trials crossing a HW boundary
	CritLoss  float64 // mean criticality affected per trial
}

// E3Result carries the injection comparison.
type E3Result struct {
	Rows []E3Row
	Text string
}

// E3 injects faults into the worked example under each reduction strategy
// and measures containment empirically. Expected shape: influence-driven
// H1 yields the lowest escape rate; criticality-driven Approach B yields
// the lowest criticality-weighted loss per escape; random is worst.
func E3(trials int, seed uint64) (E3Result, error) {
	if trials <= 0 {
		trials = 20000
	}
	sys := spec.PaperExample()
	g, err := sys.Graph()
	if err != nil {
		return E3Result{}, err
	}
	exp, err := cluster.Expand(g, sys.Jobs())
	if err != nil {
		return E3Result{}, err
	}
	full := exp.Graph
	dw, err := attrs.DefaultWeights()
	if err != nil {
		return E3Result{}, err
	}

	var res E3Result
	var b strings.Builder
	b.WriteString("E3: fault injection over mappings of the worked example\n")
	fmt.Fprintf(&b, "  trials=%d seed=%d\n", trials, seed)
	b.WriteString("  heuristic     escape-rate  mean-criticality-loss\n")
	strategies := []struct {
		name   string
		reduce func(c *cluster.Condenser) error
	}{
		{"H1", func(c *cluster.Condenser) error { return c.ReduceByInfluence(6) }},
		{"H2-min-cut", func(c *cluster.Condenser) error { return c.ReduceByMinCut(6) }},
		{"H3-spheres", func(c *cluster.Condenser) error { return c.ReduceBySpheres(6, dw) }},
		{"criticality", func(c *cluster.Condenser) error { return c.ReduceByCriticality(6) }},
		{"random", func(c *cluster.Condenser) error { return randomReduce(c, 6, seed) }},
	}
	for _, s := range strategies {
		c := cluster.NewCondenser(full.Clone(), exp.Jobs)
		if err := s.reduce(c); err != nil {
			return res, fmt.Errorf("experiments: E3 %s: %w", s.name, err)
		}
		hwOf := map[string]string{}
		for _, id := range c.G.Nodes() {
			for _, m := range graph.Members(id) {
				hwOf[m] = id
			}
		}
		r, err := faultsim.Run(faultsim.Campaign{
			Graph: full, HWOf: hwOf, Trials: trials, Seed: seed,
			CriticalThreshold: 10,
		})
		if err != nil {
			return res, err
		}
		row := E3Row{Heuristic: s.name, Escape: r.EscapeRate(), CritLoss: r.MeanCriticalityLoss()}
		res.Rows = append(res.Rows, row)
		fmt.Fprintf(&b, "  %-12s  %11.4f  %21.3f\n", row.Heuristic, row.Escape, row.CritLoss)
	}
	res.Text = b.String()
	return res, nil
}

// E4Row is one truncation-order measurement.
type E4Row struct {
	Order      int
	Separation float64
	Delta      float64 // |change| vs previous order
}

// E4Result carries the convergence curve.
type E4Result struct {
	Pair [2]string
	Rows []E4Row
	Text string
}

// E4 sweeps the Eq. (3) truncation order for a transitively coupled pair
// of the worked example, showing geometric convergence ("higher-order
// terms are likely to be small enough to be neglected").
func E4(maxOrder int) (E4Result, error) {
	if maxOrder < 2 {
		maxOrder = 8
	}
	sys := spec.PaperExample()
	g, err := sys.Graph()
	if err != nil {
		return E4Result{}, err
	}
	p, ids := g.Matrix()
	idx := map[string]int{}
	for i, id := range ids {
		idx[id] = i
	}
	from, to := "p1", "p5" // no direct edge; coupled via p2->p3->p5
	res := E4Result{Pair: [2]string{from, to}}
	var b strings.Builder
	fmt.Fprintf(&b, "E4: separation-series convergence for (%s,%s)\n", from, to)
	b.WriteString("  order  separation      delta\n")
	prev := math.NaN()
	for k := 1; k <= maxOrder; k++ {
		s, err := influence.Separation(p, idx[from], idx[to], k)
		if err != nil {
			return res, err
		}
		row := E4Row{Order: k, Separation: s}
		if !math.IsNaN(prev) {
			row.Delta = math.Abs(s - prev)
		}
		prev = s
		res.Rows = append(res.Rows, row)
		fmt.Fprintf(&b, "  %5d  %10.6f  %9.6f\n", row.Order, row.Separation, row.Delta)
	}
	res.Text = b.String()
	return res, nil
}

// E5Row is one integration-level measurement.
type E5Row struct {
	Target   int
	Feasible bool
	Cross    float64
	Escape   float64
}

// E5Result carries the tradeoff sweep.
type E5Result struct {
	Rows []E5Row
	// Floor is the smallest feasible target reached.
	Floor int
	Text  string
}

// E5 answers the paper's closing question — "Is there a limit to the level
// of integration one should design for?" — by sweeping the HW-node target
// downward on the worked example. Containment improves monotonically until
// the replica/timing constraints make further integration infeasible.
func E5(trials int, seed uint64) (E5Result, error) {
	if trials <= 0 {
		trials = 10000
	}
	sys := spec.PaperExample()
	g, err := sys.Graph()
	if err != nil {
		return E5Result{}, err
	}
	exp, err := cluster.Expand(g, sys.Jobs())
	if err != nil {
		return E5Result{}, err
	}
	full := exp.Graph
	res := E5Result{Floor: full.NumNodes()}
	var b strings.Builder
	b.WriteString("E5: integration-level tradeoff (H1, worked example)\n")
	b.WriteString("  target  feasible  cross-influence  escape-rate\n")
	for target := full.NumNodes(); target >= 1; target-- {
		c := cluster.NewCondenser(full.Clone(), exp.Jobs)
		row := E5Row{Target: target}
		if err := c.ReduceByInfluence(target); err != nil {
			row.Feasible = false
			res.Rows = append(res.Rows, row)
			fmt.Fprintf(&b, "  %6d  %8v  %15s  %11s\n", target, false, "-", "-")
			continue
		}
		row.Feasible = true
		if target < res.Floor {
			res.Floor = target
		}
		row.Cross = full.CrossWeight(c.Partition())
		hwOf := map[string]string{}
		for _, id := range c.G.Nodes() {
			for _, m := range graph.Members(id) {
				hwOf[m] = id
			}
		}
		r, err := faultsim.Run(faultsim.Campaign{
			Graph: full, HWOf: hwOf, Trials: trials, Seed: seed,
		})
		if err != nil {
			return res, err
		}
		row.Escape = r.EscapeRate()
		res.Rows = append(res.Rows, row)
		fmt.Fprintf(&b, "  %6d  %8v  %15.3f  %11.4f\n", target, true, row.Cross, row.Escape)
	}
	res.Text = b.String()
	return res, nil
}

// E6Result carries the recertification-cost comparison.
type E6Result struct {
	Model verify.CostModel
	Text  string
}

// E6 compares R5's parent-only retesting against whole-system retesting
// over a modification sequence on a mid-sized hierarchy.
func E6(processes, tasksPer, procsPer, mods int, seed uint64) (E6Result, error) {
	if processes <= 0 {
		processes, tasksPer, procsPer, mods = 4, 3, 4, 25
	}
	var procedures []string
	build := func() (*core.Hierarchy, error) {
		h := core.NewHierarchy()
		procedures = procedures[:0]
		for p := 0; p < processes; p++ {
			pname := fmt.Sprintf("P%d", p)
			if _, err := h.AddProcess(pname, attrs.Set{}); err != nil {
				return nil, err
			}
			for t := 0; t < tasksPer; t++ {
				tname := fmt.Sprintf("P%dT%d", p, t)
				if _, err := h.AddTask(pname, tname, attrs.Set{}); err != nil {
					return nil, err
				}
				for f := 0; f < procsPer; f++ {
					fname := fmt.Sprintf("P%dT%df%d", p, t, f)
					if _, err := h.AddProcedure(tname, fname, attrs.Set{}, true); err != nil {
						return nil, err
					}
					procedures = append(procedures, fname)
				}
			}
		}
		return h, nil
	}
	// Probe build to enumerate procedures for the modification sequence.
	if _, err := build(); err != nil {
		return E6Result{}, err
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x5555))
	sequence := make([]string, 0, mods)
	for i := 0; i < mods; i++ {
		sequence = append(sequence, procedures[rng.IntN(len(procedures))])
	}
	model, err := verify.CompareCosts(build, sequence)
	if err != nil {
		return E6Result{}, err
	}
	var b strings.Builder
	b.WriteString("E6: recertification cost, R5 (parent-only) vs naive (whole system)\n")
	fmt.Fprintf(&b, "  hierarchy: %d processes x %d tasks x %d procedures; %d modifications\n",
		processes, tasksPer, procsPer, mods)
	fmt.Fprintf(&b, "  R5:    %5d FCM retests, %5d interface retests\n", model.R5FCMs, model.R5Interfaces)
	fmt.Fprintf(&b, "  naive: %5d FCM retests, %5d interface retests\n", model.NaiveFCMs, model.NaiveInterfaces)
	fmt.Fprintf(&b, "  savings: %.1f%%\n", model.Savings()*100)
	return E6Result{Model: model, Text: b.String()}, nil
}

// E7Row is one replication measurement.
type E7Row struct {
	FailureProb float64
	Simplex     float64
	Duplex      float64 // 1-of-2 standby
	TMRVal      float64 // 2-of-3 majority
	TMRAnalytic float64
}

// E7Result carries the replication sweep.
type E7Result struct {
	Rows []E7Row
	Text string
}

// E7 sweeps the per-node failure probability and measures module
// unavailability for simplex/duplex/TMR deployments, against the analytic
// k-of-n values. Shape: TMR < simplex for p < 0.5; duplex standby best.
func E7(trials int, seed uint64) (E7Result, error) {
	if trials <= 0 {
		trials = 30000
	}
	var res E7Result
	var b strings.Builder
	b.WriteString("E7: replication effectiveness under HW node failures\n")
	b.WriteString("  p-fail  simplex  duplex(1of2)  TMR(2of3)  TMR-analytic\n")
	for _, p := range []float64{0.02, 0.05, 0.1, 0.2, 0.3} {
		c := faultsim.HWFaultCampaign{
			HWOf: map[string]string{
				"s": "h1", "da": "h2", "db": "h3",
				"ta": "h4", "tb": "h5", "tc": "h6",
			},
			ReplicasOf: map[string][]string{
				"simplex": {"s"}, "duplex": {"da", "db"}, "tmr": {"ta", "tb", "tc"},
			},
			FailureProb: p, MajorityRequired: true,
			Trials: trials, Seed: seed,
		}
		// Majority semantics apply per module replica count: 1-of-1,
		// 2-of-2? For duplex standby we want 1-of-2 — run a second
		// campaign with standby semantics for the duplex module.
		rMaj, err := faultsim.RunHW(c)
		if err != nil {
			return res, err
		}
		c2 := c
		c2.MajorityRequired = false
		rStandby, err := faultsim.RunHW(c2)
		if err != nil {
			return res, err
		}
		analytic, err := metrics.TMR(1 - p)
		if err != nil {
			return res, err
		}
		row := E7Row{
			FailureProb: p,
			Simplex:     rMaj.Unavailability("simplex"),
			Duplex:      rStandby.Unavailability("duplex"),
			TMRVal:      rMaj.Unavailability("tmr"),
			TMRAnalytic: 1 - analytic,
		}
		res.Rows = append(res.Rows, row)
		fmt.Fprintf(&b, "  %6.2f  %7.4f  %12.4f  %9.4f  %12.4f\n",
			row.FailureProb, row.Simplex, row.Duplex, row.TMRVal, row.TMRAnalytic)
	}
	res.Text = b.String()
	return res, nil
}

// E8Result carries the task-level containment measurement.
type E8Result struct {
	UnguardedTainted int
	GuardedTainted   int
	RBContainment    float64
	Text             string
}

// E8 measures task-level containment: a corrupting producer feeds a
// pipeline of consumers through messages and shared memory; recovery-block
// guards (acceptance tests) cut fault propagation. A recovery block over
// faulty variants demonstrates the mechanism's containment rate directly.
func E8() (E8Result, error) {
	pipeline := func(guarded bool) (int, error) {
		tasks := []exec.Task{
			{Name: "sensor", Process: "IO", Processor: "cpu0", Deadline: 10, Budget: 2,
				Writes: []string{"frame"}, SendsTo: []string{"filter"}, CorruptsOutputs: true},
			{Name: "filter", Process: "DSP", Processor: "cpu0", Deadline: 20, Budget: 2,
				Reads: []string{"frame"}, WaitsFor: []string{"sensor"},
				SendsTo: []string{"fuse"}, Guarded: guarded},
			{Name: "fuse", Process: "DSP", Processor: "cpu1", Deadline: 30, Budget: 2,
				WaitsFor: []string{"filter"}, SendsTo: []string{"display"}},
			{Name: "display", Process: "UI", Processor: "cpu1", Deadline: 40, Budget: 2,
				WaitsFor: []string{"fuse"}},
		}
		rep, err := exec.Run(exec.Config{Policy: exec.Preemptive, Tasks: tasks})
		if err != nil {
			return 0, err
		}
		return len(rep.Tainted()), nil
	}
	unguarded, err := pipeline(false)
	if err != nil {
		return E8Result{}, err
	}
	guarded, err := pipeline(true)
	if err != nil {
		return E8Result{}, err
	}

	// Direct recovery-block measurement: primary wrong on 1 input in 4.
	primary := func(in int) (int, error) {
		if in%4 == 0 {
			return -1, nil
		}
		return in * in, nil
	}
	backup := func(in int) (int, error) { return in * in, nil }
	accept := func(in, out int) bool { return out >= 0 }
	rb, err := ftsw.NewRecoveryBlock(accept, primary, backup)
	if err != nil {
		return E8Result{}, err
	}
	stats := ftsw.MeasureRecoveryBlock(rb, 1000,
		func(i int) (int, bool) { return i, i%4 == 0 },
		func(in, out int) bool { return out == in*in })

	res := E8Result{
		UnguardedTainted: unguarded,
		GuardedTainted:   guarded,
		RBContainment:    stats.ContainmentRate(),
	}
	res.Text = fmt.Sprintf(
		"E8: task-level containment mechanisms\n"+
			"  message/shared-memory pipeline: %d of 4 tasks tainted unguarded, %d with a guard after the source\n"+
			"  recovery block over faulty primary: containment rate %.3f (%d recoveries in %d calls)\n",
		res.UnguardedTainted, res.GuardedTainted, res.RBContainment, rb.Recoveries, stats.Calls)
	return res, nil
}

// E9Result carries the scheduling-policy comparison.
type E9Result struct {
	NonPreemptiveVictims int
	PreemptiveVictims    int
	Text                 string
}

// E9 demonstrates §3.4.3 / §4.2.3: an infinite-loop task under
// non-preemptive scheduling takes every colocated task down; preemptive
// budget enforcement contains the fault to its source.
func E9() (E9Result, error) {
	mk := func() []exec.Task {
		tasks := []exec.Task{{
			Name: "stuck", Process: "BAD", Processor: "cpu0",
			Deadline: 10, Budget: 2, Demand: math.Inf(1),
		}}
		for i := 0; i < 5; i++ {
			tasks = append(tasks, exec.Task{
				Name: fmt.Sprintf("victim%d", i), Process: "OK", Processor: "cpu0",
				Release: float64(i), Deadline: 30 + float64(i)*5, Budget: 2,
			})
		}
		return tasks
	}
	count := func(policy exec.Policy) (int, error) {
		rep, err := exec.Run(exec.Config{Policy: policy, Tasks: mk(), Horizon: 1000})
		if err != nil {
			return 0, err
		}
		victims := 0
		for _, m := range rep.Misses() {
			if strings.HasPrefix(m, "victim") {
				victims++
			}
		}
		return victims, nil
	}
	np, err := count(exec.NonPreemptive)
	if err != nil {
		return E9Result{}, err
	}
	p, err := count(exec.Preemptive)
	if err != nil {
		return E9Result{}, err
	}
	res := E9Result{NonPreemptiveVictims: np, PreemptiveVictims: p}
	res.Text = fmt.Sprintf(
		"E9: timing-fault transmission by scheduling policy\n"+
			"  infinite-loop task + 5 victims on one processor\n"+
			"  non-preemptive: %d victims missed deadlines\n"+
			"  preemptive (budget enforcement): %d victims missed\n",
		np, p)
	return res, nil
}

// SeparationCheck exposes Eq. (3) on the worked example for tests: returns
// separation(p1,p5) at the given order.
func SeparationCheck(order int) (float64, error) {
	sys := spec.PaperExample()
	g, err := sys.Graph()
	if err != nil {
		return 0, err
	}
	p, ids := g.Matrix()
	idx := map[string]int{}
	for i, id := range ids {
		idx[id] = i
	}
	return influence.Separation(p, idx["p1"], idx["p5"], order)
}

// FeasibilityProbe reports whether a synthetic system can be reduced to
// the given target under H1 — helper for tradeoff tests.
func FeasibilityProbe(sys *spec.System, target int) (bool, error) {
	g, err := sys.Graph()
	if err != nil {
		return false, err
	}
	exp, err := cluster.Expand(g, sys.Jobs())
	if err != nil {
		return false, err
	}
	c := exp.Condenser()
	if err := c.ReduceByInfluence(target); err != nil {
		return false, nil
	}
	return true, nil
}
