package experiments

import (
	"fmt"
	"strings"

	"repro/internal/attrs"
	"repro/internal/cluster"
	"repro/internal/estimate"
	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/mapping"
	"repro/internal/spec"
)

// E10Row is one estimation-fidelity measurement.
type E10Row struct {
	Trials       int
	MeanAbsError float64
	MaxAbsError  float64
	// Agreement is the Rand index between the H1 partitions computed from
	// the true and the estimated graphs.
	Agreement float64
	// CrossTrue / CrossEst are the containment costs (cross influence on
	// the TRUE graph) of the two partitions.
	CrossTrue, CrossEst float64
}

// E10Result carries the estimation sweep.
type E10Result struct {
	Rows []E10Row
	Text string
}

// E10 is the paper's deferred measurement study: how many fault-injection
// trials are needed before the *estimated* influence graph drives the same
// integration decisions as ground truth? (§4.2.1's estimation paths,
// §7's "focus of our continuing work".)
func E10(trialCounts []int, seed uint64) (E10Result, error) {
	if len(trialCounts) == 0 {
		trialCounts = []int{500, 2000, 10000, 50000}
	}
	sys := spec.PaperExample()
	g, err := sys.Graph()
	if err != nil {
		return E10Result{}, err
	}
	exp, err := cluster.Expand(g, sys.Jobs())
	if err != nil {
		return E10Result{}, err
	}
	truth := exp.Graph

	reduce := func(base *graph.Graph) ([][]string, error) {
		c := cluster.NewCondenser(base.Clone(), exp.Jobs)
		if err := c.ReduceByInfluence(sys.HWNodes); err != nil {
			return nil, err
		}
		return c.Partition(), nil
	}
	truthParts, err := reduce(truth)
	if err != nil {
		return E10Result{}, err
	}
	crossTrue := truth.CrossWeight(truthParts)

	var res E10Result
	var b strings.Builder
	b.WriteString("E10: estimating influence by fault injection (paper's continuing work)\n")
	b.WriteString("  trials  mean|err|  max|err|  partition-agreement  cross(true)  cross(est)\n")
	for _, trials := range trialCounts {
		est, err := estimate.Run(estimate.Config{Truth: truth, Trials: trials, Seed: seed})
		if err != nil {
			return res, err
		}
		estParts, err := reduce(est.Graph)
		if err != nil {
			return res, err
		}
		agree, err := estimate.Agreement(truthParts, estParts)
		if err != nil {
			return res, err
		}
		row := E10Row{
			Trials:       trials,
			MeanAbsError: est.MeanAbsError,
			MaxAbsError:  est.MaxAbsError,
			Agreement:    agree,
			CrossTrue:    crossTrue,
			CrossEst:     truth.CrossWeight(estParts),
		}
		res.Rows = append(res.Rows, row)
		fmt.Fprintf(&b, "  %6d  %9.4f  %8.4f  %19.3f  %11.3f  %10.3f\n",
			row.Trials, row.MeanAbsError, row.MaxAbsError, row.Agreement,
			row.CrossTrue, row.CrossEst)
	}
	res.Text = b.String()
	return res, nil
}

// E11Row is one refinement measurement.
type E11Row struct {
	Topology string
	Before   float64 // dilation before refinement
	After    float64
	Moves    int
}

// E11Result carries the dilation-refinement ablation.
type E11Result struct {
	Rows []E11Row
	Text string
}

// E11 ablates the §6 dilation concern: on a complete platform refinement
// has nothing to do; on sparse topologies (ring, mesh) the local-search
// pass reduces communication cost.
func E11() (E11Result, error) {
	sys := spec.PaperExample()
	g, err := sys.Graph()
	if err != nil {
		return E11Result{}, err
	}
	exp, err := cluster.Expand(g, sys.Jobs())
	if err != nil {
		return E11Result{}, err
	}
	full := exp.Graph.Clone()
	c := cluster.NewCondenser(exp.Graph, exp.Jobs)
	if err := c.ReduceByInfluence(sys.HWNodes); err != nil {
		return E11Result{}, err
	}

	var res E11Result
	var b strings.Builder
	b.WriteString("E11: dilation refinement across platform topologies\n")
	b.WriteString("  topology  dilation-before  dilation-after  moves\n")
	platforms := []struct {
		name  string
		build func() (*hw.Platform, error)
	}{
		{"complete6", func() (*hw.Platform, error) { return hw.Complete(6) }},
		{"ring6", func() (*hw.Platform, error) { return hw.Ring(6) }},
		{"mesh2x3", func() (*hw.Platform, error) { return hw.Mesh(2, 3) }},
	}
	for _, pt := range platforms {
		p, err := pt.build()
		if err != nil {
			return res, err
		}
		asg, err := mapping.AssignLexicographic(c.G, p, []attrs.Kind{attrs.Criticality}, nil)
		if err != nil {
			return res, err
		}
		before := clusterDilation(asg, full, p)
		refined, moves, err := mapping.Refine(asg, full, p, nil, 0)
		if err != nil {
			return res, err
		}
		after := clusterDilation(refined, full, p)
		row := E11Row{Topology: pt.name, Before: before, After: after, Moves: moves}
		res.Rows = append(res.Rows, row)
		fmt.Fprintf(&b, "  %-9s %16.3f  %14.3f  %5d\n", row.Topology, row.Before, row.After, row.Moves)
	}
	res.Text = b.String()
	return res, nil
}

// clusterDilation measures Σ w(u→v)·distance over base edges whose member
// clusters sit on different HW nodes.
func clusterDilation(asg mapping.Assignment, base *graph.Graph, p *hw.Platform) float64 {
	hwOf := map[string]string{}
	for clusterID, node := range asg {
		for _, m := range graph.Members(clusterID) {
			hwOf[m] = node
		}
	}
	total := 0.0
	for _, e := range base.Edges() {
		if e.Replica {
			continue
		}
		na, nb := hwOf[e.From], hwOf[e.To]
		if na == "" || nb == "" || na == nb {
			continue
		}
		d, ok := p.Distance(na, nb)
		if !ok {
			d = float64(p.NumNodes())
		}
		total += e.Weight * d
	}
	return total
}
