// Package experiments regenerates every table and figure of the paper's
// worked example (Table 1, Figs. 1–8) and runs the quantitative extension
// experiments (E1–E15) indexed in DESIGN.md. Each artifact has one entry
// point returning both structured values (asserted by tests and printed by
// benches) and formatted text (printed by cmd/paperrepro).
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/attrs"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/influence"
	"repro/internal/spec"
)

// Table1 renders the reconstructed attribute table of the eight processes.
func Table1() (string, error) {
	sys := spec.PaperExample()
	if err := sys.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Table 1: attributes of SW modules (reconstruction)\n")
	b.WriteString("Process    C  FT  EST  TCD  CT\n")
	for _, p := range sys.Processes {
		fmt.Fprintf(&b, "%-8s %3g  %2d  %3g  %3g  %2g\n",
			p.Name, p.Criticality, p.FT, p.EST, p.TCD, p.CT)
	}
	return b.String(), nil
}

// Fig1Result carries the hierarchy demonstration.
type Fig1Result struct {
	Levels    []string
	FCMCount  int
	RuleR2Err error // the expected rejection proving the tree constraint
	Text      string
}

// Fig1 builds a three-level FCM hierarchy (the figure's structure) and
// demonstrates the level isolation and the tree constraint.
func Fig1() (Fig1Result, error) {
	h := core.NewHierarchy()
	build := []func() error{
		func() error { _, err := h.AddProcess("P1", attrs.Set{}); return err },
		func() error { _, err := h.AddTask("P1", "T1", attrs.Set{}); return err },
		func() error { _, err := h.AddTask("P1", "T2", attrs.Set{}); return err },
		func() error { _, err := h.AddProcedure("T1", "f1", attrs.Set{}, true); return err },
		func() error { _, err := h.AddProcedure("T1", "f2", attrs.Set{}, true); return err },
		func() error { _, err := h.AddProcedure("T2", "f3", attrs.Set{}, true); return err },
		func() error { _, err := h.AddProcess("P2", attrs.Set{}); return err },
		func() error { _, err := h.AddTask("P2", "T3", attrs.Set{}); return err },
		func() error { _, err := h.AddProcedure("T3", "f4", attrs.Set{}, true); return err },
	}
	for _, s := range build {
		if err := s(); err != nil {
			return Fig1Result{}, err
		}
	}
	if err := h.Validate(); err != nil {
		return Fig1Result{}, err
	}
	// R2: attaching f1 (child of T1) under T3 must fail — the tree
	// constraint. The supported route is cloning.
	_, r2err := h.Group("T9", []string{"f1"})
	if _, err := h.CloneProcedure("f1", "T3", "f1#T3"); err != nil {
		return Fig1Result{}, err
	}

	var b strings.Builder
	b.WriteString("Fig. 1: the FCM hierarchy (processes / tasks / procedures)\n")
	for _, root := range h.Roots(core.ProcessLevel) {
		core.Walk(root, func(f *core.FCM, depth int) {
			fmt.Fprintf(&b, "%s%s (%s)\n", strings.Repeat("  ", depth), f.Name(), f.Level())
		})
	}
	fmt.Fprintf(&b, "R2 enforcement: grouping an already-parented FCM -> %v\n", r2err)
	b.WriteString("reuse via clone: f1 cloned into T3 as f1#T3 (separate compilation per caller)\n")
	return Fig1Result{
		Levels:    []string{"process", "task", "procedure"},
		FCMCount:  h.Len(),
		RuleR2Err: r2err,
		Text:      b.String(),
	}, nil
}

// Fig2Result carries the node-combination illustration.
type Fig2Result struct {
	CombinedOnN6 float64 // influence of cluster {1..4} on node 6
	Text         string
}

// Fig2 reproduces the combining-SW-nodes illustration: nodes 1–7, nodes
// 1–4 combined; internal influences disappear and the influences of the
// members on common neighbour 6 combine per Eq. (4).
func Fig2() (Fig2Result, error) {
	g := graph.New()
	for i := 1; i <= 7; i++ {
		if err := g.AddNode(fmt.Sprintf("n%d", i), attrs.Set{}); err != nil {
			return Fig2Result{}, err
		}
	}
	edges := []struct {
		from, to string
		w        float64
	}{
		{"n1", "n2", 0.4}, {"n2", "n3", 0.3}, {"n3", "n4", 0.2},
		{"n2", "n6", 0.3}, {"n4", "n6", 0.1}, {"n4", "n5", 0.25},
		{"n7", "n1", 0.15},
	}
	for _, e := range edges {
		if err := g.SetEdge(e.from, e.to, e.w); err != nil {
			return Fig2Result{}, err
		}
	}
	before := g.String()
	id, err := g.Contract([]string{"n1", "n2", "n3", "n4"}, influence.MustCombine)
	if err != nil {
		return Fig2Result{}, err
	}
	var b strings.Builder
	b.WriteString("Fig. 2: combining SW nodes 1-4 of a 7-node graph\n")
	b.WriteString("before:\n" + indent(before))
	b.WriteString("after contracting {n1..n4}:\n" + indent(g.String()))
	fmt.Fprintf(&b, "combined influence on n6: 1-(1-0.3)(1-0.1) = %.4g\n", g.Influence(id, "n6"))
	return Fig2Result{CombinedOnN6: g.Influence(id, "n6"), Text: b.String()}, nil
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

// Fig3 renders the initial SW influence graph of the worked example.
func Fig3() (string, error) {
	sys := spec.PaperExample()
	g, err := sys.Graph()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Fig. 3: initial SW nodes and influences\n")
	b.WriteString(indent(g.String()))
	fmt.Fprintf(&b, "nodes=%d directed influence edges=%d\n", g.NumNodes(), g.NumEdges())
	return b.String(), nil
}

// Fig4Result carries the replication expansion.
type Fig4Result struct {
	Nodes        int
	ReplicaEdges int
	Text         string
}

// Fig4 performs the replication expansion (p1×3, p2×2, p3×2 ⇒ 12 nodes).
func Fig4() (Fig4Result, error) {
	sys := spec.PaperExample()
	g, err := sys.Graph()
	if err != nil {
		return Fig4Result{}, err
	}
	exp, err := cluster.Expand(g, sys.Jobs())
	if err != nil {
		return Fig4Result{}, err
	}
	replicaEdges := 0
	for _, e := range exp.Graph.Edges() {
		if e.Replica {
			replicaEdges++
		}
	}
	var b strings.Builder
	b.WriteString("Fig. 4: replicated SW graph (influence-0 links join replicas)\n")
	names := make([]string, 0, len(exp.ReplicasOf))
	for base := range exp.ReplicasOf {
		names = append(names, base)
	}
	sort.Strings(names)
	for _, base := range names {
		fmt.Fprintf(&b, "  %s -> %s\n", base, strings.Join(exp.ReplicasOf[base], ", "))
	}
	fmt.Fprintf(&b, "total nodes=%d (was 8), replica links=%d (directed)\n",
		exp.Graph.NumNodes(), replicaEdges)
	return Fig4Result{
		Nodes:        exp.Graph.NumNodes(),
		ReplicaEdges: replicaEdges,
		Text:         b.String(),
	}, nil
}

// Fig5Result carries the two surviving computed values.
type Fig5Result struct {
	V76  float64 // {p1,p2,p3,p4} -> p5
	V37  float64 // {p5,p7,p8} -> p6
	Text string
}

// Fig5 reproduces the influence-combination arithmetic of Fig. 5: on the
// pre-replication graph, contracting {p1..p4} yields influence 0.76 on p5,
// then contracting {p5,p7,p8} yields influence 0.37 on p6 — the two values
// that survive in the paper's figure.
func Fig5() (Fig5Result, error) {
	sys := spec.PaperExample()
	g, err := sys.Graph()
	if err != nil {
		return Fig5Result{}, err
	}
	left, err := g.Contract([]string{"p1", "p2", "p3", "p4"}, influence.MustCombine)
	if err != nil {
		return Fig5Result{}, err
	}
	v76 := g.Influence(left, "p5")
	right, err := g.Contract([]string{"p5", "p7", "p8"}, influence.MustCombine)
	if err != nil {
		return Fig5Result{}, err
	}
	v37 := g.Influence(right, "p6")
	var b strings.Builder
	b.WriteString("Fig. 5: using influence to combine SW nodes\n")
	fmt.Fprintf(&b, "  {p1,p2,p3,p4} -> p5: 1-(1-0.7)(1-0.2) = %.4g   (paper: 0.76)\n", v76)
	fmt.Fprintf(&b, "  {p5,p7,p8}    -> p6: 1-(1-0.1)(1-0.3) = %.4g   (paper: 0.37)\n", v37)
	b.WriteString(indent(g.String()))
	return Fig5Result{V76: v76, V37: v37, Text: b.String()}, nil
}

// Fig6Result carries the Approach-A reduction.
type Fig6Result struct {
	Clusters []string
	Trace    []cluster.Step
	Text     string
}

// Fig6 runs the full §6.1 reduction: replicated graph to 6 clusters by H1.
func Fig6() (Fig6Result, error) {
	sys := spec.PaperExample()
	g, err := sys.Graph()
	if err != nil {
		return Fig6Result{}, err
	}
	exp, err := cluster.Expand(g, sys.Jobs())
	if err != nil {
		return Fig6Result{}, err
	}
	c := exp.Condenser()
	if err := c.ReduceByInfluence(sys.HWNodes); err != nil {
		return Fig6Result{}, err
	}
	var b strings.Builder
	b.WriteString("Fig. 6: reducing the SW graph to 6 HW nodes by influence (Approach A / H1)\n")
	for _, s := range c.Trace {
		fmt.Fprintf(&b, "  %s\n", s)
	}
	fmt.Fprintf(&b, "final clusters: %s\n", strings.Join(c.G.Nodes(), "  "))
	return Fig6Result{Clusters: c.G.Nodes(), Trace: c.Trace, Text: b.String()}, nil
}

// Fig7Result carries the Approach-B reduction.
type Fig7Result struct {
	Clusters []string
	Text     string
}

// Fig7 runs the §6.2 criticality-driven pairing, reproducing the exact
// groups of the paper's figure, including the p3a/p3b conflict resolution.
func Fig7() (Fig7Result, error) {
	sys := spec.PaperExample()
	g, err := sys.Graph()
	if err != nil {
		return Fig7Result{}, err
	}
	exp, err := cluster.Expand(g, sys.Jobs())
	if err != nil {
		return Fig7Result{}, err
	}
	c := exp.Condenser()
	if err := c.ReduceByCriticality(sys.HWNodes); err != nil {
		return Fig7Result{}, err
	}
	var b strings.Builder
	b.WriteString("Fig. 7: factoring criticality into integration (Approach B)\n")
	for _, s := range c.Trace {
		fmt.Fprintf(&b, "  %s\n", s)
	}
	fmt.Fprintf(&b, "final clusters: %s\n", strings.Join(c.G.Nodes(), "  "))
	b.WriteString("  (paper: {p1a,8} {p1b,7} {p1c,5} {p2a,6} {p2b,3b} {p3a,4})\n")
	return Fig7Result{Clusters: c.G.Nodes(), Text: b.String()}, nil
}

// Fig8Result carries the timing-ordered reduction.
type Fig8Result struct {
	Clusters []string
	Text     string
}

// Fig8 runs the timing-ordered grouping technique.
func Fig8() (Fig8Result, error) {
	sys := spec.PaperExample()
	g, err := sys.Graph()
	if err != nil {
		return Fig8Result{}, err
	}
	exp, err := cluster.Expand(g, sys.Jobs())
	if err != nil {
		return Fig8Result{}, err
	}
	c := exp.Condenser()
	if err := c.ReduceByTiming(0); err != nil {
		return Fig8Result{}, err
	}
	var b strings.Builder
	b.WriteString("Fig. 8: a refined HW/SW mapping using only timing attributes\n")
	fmt.Fprintf(&b, "final clusters (%d nodes): %s\n",
		c.G.NumNodes(), strings.Join(c.G.Nodes(), "  "))
	b.WriteString("  (timing-only grouping packs tighter than the criticality-constrained Fig. 7)\n")
	return Fig8Result{Clusters: c.G.Nodes(), Text: b.String()}, nil
}

// V76 and V37 are the expected Fig. 5 values for golden assertions.
const (
	V76 = 0.76
	V37 = 0.37
)

// CheckFig5 validates a Fig5Result against the paper's surviving values.
func CheckFig5(r Fig5Result) error {
	if math.Abs(r.V76-V76) > 1e-9 {
		return fmt.Errorf("experiments: Fig5 v76 = %g, want %g", r.V76, V76)
	}
	if math.Abs(r.V37-V37) > 1e-9 {
		return fmt.Errorf("experiments: Fig5 v37 = %g, want %g", r.V37, V37)
	}
	return nil
}
