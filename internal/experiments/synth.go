package experiments

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/spec"
)

// SynthConfig parameterises the synthetic workload generator used by the
// heuristic-comparison and tradeoff experiments.
type SynthConfig struct {
	// Processes is the number of process FCMs before replication.
	Processes int
	// EdgesPerNode is the mean out-degree of the influence graph.
	EdgesPerNode float64
	// ReplicatedFraction of processes get FT=2 (and 1 in 3 of those FT=3).
	ReplicatedFraction float64
	// Seed drives the deterministic generator.
	Seed uint64
	// HWNodes is the reduction target recorded in the spec.
	HWNodes int
}

// Synthesize generates a random-but-reproducible integration problem. The
// timing triples are drawn loosely (windows about 4x compute time within a
// long frame) so that moderate clustering is feasible but dense clustering
// eventually hits the schedulability wall — the regime where the paper's
// integration-level tradeoff question is interesting.
func Synthesize(cfg SynthConfig) (*spec.System, error) {
	if cfg.Processes < 2 {
		return nil, fmt.Errorf("experiments: need at least 2 processes, got %d", cfg.Processes)
	}
	if cfg.HWNodes < 1 {
		cfg.HWNodes = cfg.Processes / 2
		if cfg.HWNodes < 1 {
			cfg.HWNodes = 1
		}
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xdeadbeefcafef00d))
	sys := &spec.System{
		Name:    fmt.Sprintf("synthetic-n%d-seed%d", cfg.Processes, cfg.Seed),
		HWNodes: cfg.HWNodes,
	}
	frame := 100.0
	for i := 0; i < cfg.Processes; i++ {
		ct := 2 + rng.Float64()*6           // 2..8
		window := ct*3 + rng.Float64()*ct*3 // 3x..6x CT
		est := rng.Float64() * (frame - window)
		ft := 1
		if rng.Float64() < cfg.ReplicatedFraction {
			ft = 2
			if rng.IntN(3) == 0 {
				ft = 3
			}
		}
		sys.Processes = append(sys.Processes, spec.Process{
			Name:        fmt.Sprintf("q%03d", i),
			Criticality: 1 + rng.Float64()*14,
			FT:          ft,
			EST:         est,
			TCD:         est + window,
			CT:          ct,
		})
	}
	// Influence edges: for each node, ~EdgesPerNode random targets.
	want := int(float64(cfg.Processes) * cfg.EdgesPerNode)
	seen := map[[2]int]bool{}
	for len(sys.Influences) < want {
		a, b := rng.IntN(cfg.Processes), rng.IntN(cfg.Processes)
		if a == b || seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		sys.Influences = append(sys.Influences, spec.Influence{
			From:   sys.Processes[a].Name,
			To:     sys.Processes[b].Name,
			Weight: 0.05 + rng.Float64()*0.7,
		})
	}
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: synthesized system invalid: %w", err)
	}
	return sys, nil
}
