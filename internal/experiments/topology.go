package experiments

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"repro/internal/cluster"
	"repro/internal/spec"
)

// Shape selects a synthetic influence-topology family.
type Shape int

// Influence-topology families. Real integrated systems are not uniformly
// random: control suites form pipelines (sensor → filter → control →
// actuator), layered architectures stack services, and star systems
// funnel through a hub (a bus manager or blackboard).
const (
	ShapeRandom Shape = iota + 1
	ShapePipeline
	ShapeLayered
	ShapeStar
)

// String returns the shape name.
func (s Shape) String() string {
	switch s {
	case ShapeRandom:
		return "random"
	case ShapePipeline:
		return "pipeline"
	case ShapeLayered:
		return "layered"
	case ShapeStar:
		return "star"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// SynthesizeShaped generates an n-process system whose influence edges
// follow the given topology family. Timing and criticality are drawn as
// in Synthesize.
func SynthesizeShaped(shape Shape, n int, seed uint64, hwNodes int) (*spec.System, error) {
	if n < 4 {
		return nil, fmt.Errorf("experiments: shaped synthesis needs n >= 4, got %d", n)
	}
	base, err := Synthesize(SynthConfig{
		Processes: n, EdgesPerNode: 0.0001, // edges added below
		ReplicatedFraction: 0.2, Seed: seed, HWNodes: hwNodes,
	})
	if err != nil {
		return nil, err
	}
	base.Name = fmt.Sprintf("synthetic-%s-n%d-seed%d", shape, n, seed)
	base.Influences = nil
	rng := rand.New(rand.NewPCG(seed^0x777, seed+uint64(shape)))
	w := func() float64 { return 0.1 + rng.Float64()*0.6 }
	add := func(from, to int) {
		if from == to {
			return
		}
		base.Influences = append(base.Influences, spec.Influence{
			From: base.Processes[from].Name, To: base.Processes[to].Name, Weight: w(),
		})
	}
	switch shape {
	case ShapeRandom:
		seen := map[[2]int]bool{}
		for len(base.Influences) < 2*n {
			a, b := rng.IntN(n), rng.IntN(n)
			if a == b || seen[[2]int{a, b}] {
				continue
			}
			seen[[2]int{a, b}] = true
			add(a, b)
		}
	case ShapePipeline:
		// Chain with feedback every few stages and occasional skips.
		for i := 0; i+1 < n; i++ {
			add(i, i+1)
			if i%3 == 0 {
				add(i+1, i) // local feedback
			}
			if i+4 < n && rng.IntN(3) == 0 {
				add(i, i+4) // skip connection
			}
		}
	case ShapeLayered:
		// Four layers; edges flow to the next layer only.
		layers := 4
		per := n / layers
		for l := 0; l < layers-1; l++ {
			for i := 0; i < per; i++ {
				src := l*per + i
				// Two targets in the next layer.
				for k := 0; k < 2; k++ {
					dst := (l+1)*per + rng.IntN(per)
					if dst < n {
						add(src, dst)
					}
				}
			}
		}
	case ShapeStar:
		// Hub 0 exchanges with everyone; spokes rarely talk directly.
		for i := 1; i < n; i++ {
			add(0, i)
			add(i, 0)
			if rng.IntN(5) == 0 {
				add(i, 1+rng.IntN(n-1))
			}
		}
	default:
		return nil, fmt.Errorf("experiments: unknown shape %d", int(shape))
	}
	// Deduplicate (ShapeStar's extra spokes can repeat).
	seen := map[string]bool{}
	var dedup []spec.Influence
	for _, e := range base.Influences {
		k := e.From + ">" + e.To
		if e.From == e.To || seen[k] {
			continue
		}
		seen[k] = true
		dedup = append(dedup, e)
	}
	base.Influences = dedup
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: shaped synthesis: %w", err)
	}
	return base, nil
}

// E14Row is one topology-sensitivity measurement.
type E14Row struct {
	Shape       string
	H1Contain   float64
	CritContain float64
	RandContain float64
}

// E14Result carries the topology sweep.
type E14Result struct {
	Rows []E14Row
	Text string
}

// E14 asks whether H1's containment advantage depends on the influence
// topology: the same comparison as E2, run over pipeline, layered, star
// and random topologies. Expected shape: H1 dominates everywhere, with
// the largest margin on modular topologies (pipeline/layered) where good
// cuts exist, and the smallest on stars, where the hub couples everything.
func E14(n int, seed uint64) (E14Result, error) {
	if n <= 0 {
		n = 24
	}
	var res E14Result
	var b strings.Builder
	b.WriteString("E14: topology sensitivity of containment (n=" + fmt.Sprint(n) + ")\n")
	b.WriteString("  shape     H1-contained  criticality-contained  random-contained\n")
	for _, shape := range []Shape{ShapePipeline, ShapeLayered, ShapeStar, ShapeRandom} {
		sys, err := SynthesizeShaped(shape, n, seed, maxInt(2, n/3))
		if err != nil {
			return res, err
		}
		g, err := sys.Graph()
		if err != nil {
			return res, err
		}
		exp, err := cluster.Expand(g, sys.Jobs())
		if err != nil {
			return res, err
		}
		full := exp.Graph
		total := 0.0
		for _, e := range full.Edges() {
			if !e.Replica {
				total += e.Weight
			}
		}
		contain := func(reduce func(c *cluster.Condenser) error) (float64, error) {
			c := cluster.NewCondenser(full.Clone(), exp.Jobs)
			if err := reduce(c); err != nil {
				return 0, err
			}
			if total == 0 {
				return 1, nil
			}
			return 1 - full.CrossWeight(c.Partition())/total, nil
		}
		target := sys.HWNodes
		h1, err := contain(func(c *cluster.Condenser) error { return c.ReduceByInfluence(target) })
		if err != nil {
			return res, fmt.Errorf("experiments: E14 %s H1: %w", shape, err)
		}
		crit, err := contain(func(c *cluster.Condenser) error { return c.ReduceByCriticality(target) })
		if err != nil {
			return res, fmt.Errorf("experiments: E14 %s crit: %w", shape, err)
		}
		rnd, err := contain(func(c *cluster.Condenser) error { return randomReduce(c, target, seed) })
		if err != nil {
			return res, fmt.Errorf("experiments: E14 %s random: %w", shape, err)
		}
		row := E14Row{Shape: shape.String(), H1Contain: h1, CritContain: crit, RandContain: rnd}
		res.Rows = append(res.Rows, row)
		fmt.Fprintf(&b, "  %-8s  %12.3f  %21.3f  %16.3f\n", row.Shape, h1, crit, rnd)
	}
	res.Text = b.String()
	return res, nil
}
