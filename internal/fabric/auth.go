package fabric

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Shared-secret authentication: when both ends are configured with the
// same token, the handshake runs an HMAC-SHA256 challenge-response in
// both directions before any campaign material (fingerprint, spec,
// leases) crosses the wire. The token itself never travels; each side
// proves possession by MACing the peer's fresh nonce. This is an
// application-layer identity check, not transport privacy — pair it with
// the TLS transport (tls.go) on untrusted networks.

// newNonce returns a fresh 128-bit random nonce, hex-encoded.
func newNonce() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("fabric: nonce: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// signNonce computes HMAC-SHA256(token, nonce), hex-encoded.
func signNonce(token, nonce string) string {
	mac := hmac.New(sha256.New, []byte(token))
	mac.Write([]byte(nonce))
	return hex.EncodeToString(mac.Sum(nil))
}

// verifyMAC reports whether mac is a valid signature of nonce under
// token, in constant time.
func verifyMAC(token, nonce, mac string) bool {
	want := signNonce(token, nonce)
	return hmac.Equal([]byte(want), []byte(mac))
}
