package fabric

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/attrs"
	"repro/internal/faultsim"
	"repro/internal/graph"
	"repro/internal/obs"
)

// benchCampaign mirrors testCampaign without a *testing.T so benchmarks
// can build it in setup code.
func benchCampaign(trials int) faultsim.Campaign {
	g := graph.New()
	crits := map[string]float64{"a": 12, "b": 3, "c": 7, "d": 1}
	for _, n := range []string{"a", "b", "c", "d"} {
		if err := g.AddNode(n, attrs.New(map[attrs.Kind]float64{attrs.Criticality: crits[n]})); err != nil {
			panic(err)
		}
	}
	for _, e := range []struct {
		from, to string
		w        float64
	}{
		{"a", "b", 0.6}, {"b", "c", 0.4}, {"c", "d", 0.5}, {"d", "a", 0.3}, {"a", "c", 0.2},
	} {
		if err := g.SetEdge(e.from, e.to, e.w); err != nil {
			panic(err)
		}
	}
	return faultsim.Campaign{
		Graph:             g,
		HWOf:              map[string]string{"a": "h1", "b": "h1", "c": "h2", "d": "h2"},
		Trials:            trials,
		Seed:              1998,
		CriticalThreshold: 10,
		CommFaultFraction: 0.3,
	}
}

// BenchmarkFabricCampaign measures one full distributed campaign over the
// in-process transport at 1, 2 and 4 workers — protocol overhead plus
// compute, the number behind the scaling row in BENCH_fabric.json. The
// merged result is the same at every width; only wall clock moves.
func BenchmarkFabricCampaign(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("%d", workers), func(b *testing.B) {
			c := benchCampaign(6400)
			for i := 0; i < b.N; i++ {
				pl := NewPipeListener()
				done := make(chan error, 1)
				go func() {
					_, _, err := Serve(context.Background(), Config{Campaign: c, Listener: pl})
					done <- err
				}()
				wctx, wcancel := context.WithCancel(context.Background())
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						_ = RunWorker(wctx, WorkerConfig{
							Campaign:       c,
							Dial:           pl.Dial(),
							Name:           fmt.Sprintf("w%d", w),
							HeartbeatEvery: 50 * time.Millisecond,
							BackoffBase:    time.Millisecond,
							MaxReconnects:  100,
							Seed:           uint64(w),
						})
					}(w)
				}
				if err := <-done; err != nil {
					b.Fatal(err)
				}
				wcancel()
				wg.Wait()
			}
		})
	}
}

// BenchmarkFabricTelemetry isolates the federation overhead: the same
// 2-worker campaign with the relay off (no telemetry consumers — nil
// *relay on the workers, zero-valued frame fields) and on (bus +
// observer at the coordinator: trace propagation, span relay, clock
// samples, latency attribution). The delta is the whole cost of
// distributed observability; the merged result is identical either way.
func BenchmarkFabricTelemetry(b *testing.B) {
	run := func(b *testing.B, bus *obs.Bus, observer *obs.Observer) {
		c := benchCampaign(6400)
		for i := 0; i < b.N; i++ {
			pl := NewPipeListener()
			done := make(chan error, 1)
			go func() {
				_, _, err := Serve(context.Background(), Config{
					Campaign: c, Listener: pl, Bus: bus, Observer: observer,
				})
				done <- err
			}()
			wctx, wcancel := context.WithCancel(context.Background())
			var wg sync.WaitGroup
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					_ = RunWorker(wctx, WorkerConfig{
						Campaign:       c,
						Dial:           pl.Dial(),
						Name:           fmt.Sprintf("w%d", w),
						HeartbeatEvery: 50 * time.Millisecond,
						BackoffBase:    time.Millisecond,
						MaxReconnects:  100,
						Seed:           uint64(w),
					})
				}(w)
			}
			if err := <-done; err != nil {
				b.Fatal(err)
			}
			wcancel()
			wg.Wait()
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil, nil) })
	b.Run("relay", func(b *testing.B) {
		bus := obs.NewBus(1 << 12)
		defer bus.Close()
		// A draining subscriber keeps the replay ring realistic without
		// ever applying backpressure (the bus drops, never blocks).
		sub := bus.Subscribe(0, 1<<12)
		defer sub.Close()
		go func() {
			for {
				if _, ok := sub.Next(nil); !ok {
					return
				}
			}
		}()
		run(b, bus, obs.New(obs.WithBus(bus)))
	})
}
