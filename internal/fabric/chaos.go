package fabric

import (
	"context"
	"math/rand/v2"
	"sync"
	"time"
)

// ChaosConfig parameterises a fault-injecting transport wrapper: each
// outbound frame is independently dropped, duplicated, or delayed (which
// also reorders, since delayed frames are re-sent from a timer
// goroutine). Handshake rejections are exempt so a mismatch stays
// deterministic; everything else — hello, welcome, leases, results,
// heartbeats, even done — is fair game, because the protocol must
// converge under exactly these losses.
type ChaosConfig struct {
	// Seed makes the chaos reproducible; each wrapped connection derives
	// its own substream from it.
	Seed uint64
	// Drop is the probability an outbound frame is silently discarded.
	Drop float64
	// Dup is the probability an outbound frame is sent twice.
	Dup float64
	// Delay is the probability an outbound frame is deferred by a random
	// duration up to MaxDelay before sending (reordering it past frames
	// sent meanwhile).
	Delay float64
	// MaxDelay bounds the deferral (default 20ms).
	MaxDelay time.Duration
}

// enabled reports whether the config injects any fault at all.
func (c ChaosConfig) enabled() bool { return c.Drop > 0 || c.Dup > 0 || c.Delay > 0 }

// chaosConn wraps a Conn's Send path with seeded frame chaos. Recv and
// Close pass through: wrapping both endpoints of a connection (as
// ChaosListener and ChaosDialer do for their own side) covers both
// directions.
type chaosConn struct {
	inner Conn
	cfg   ChaosConfig

	mu  sync.Mutex
	rng *rand.Rand
	wg  sync.WaitGroup
}

func newChaosConn(inner Conn, cfg ChaosConfig, streamSeed uint64) *chaosConn {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 20 * time.Millisecond
	}
	return &chaosConn{
		inner: inner,
		cfg:   cfg,
		rng:   rand.New(rand.NewPCG(streamSeed, streamSeed^0x9e3779b97f4a7c15)),
	}
}

func (c *chaosConn) Send(f *Frame) error {
	if f.Type == TypeReject {
		return c.inner.Send(f)
	}
	c.mu.Lock()
	drop := c.rng.Float64() < c.cfg.Drop
	dup := c.rng.Float64() < c.cfg.Dup
	delay := c.rng.Float64() < c.cfg.Delay
	var wait time.Duration
	if delay {
		wait = time.Duration(c.rng.Float64() * float64(c.cfg.MaxDelay))
	}
	c.mu.Unlock()
	if drop {
		return nil
	}
	if delay {
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			time.Sleep(wait)
			// A delayed send racing Close loses the frame — exactly the
			// loss mode the lease machinery already absorbs.
			_ = c.inner.Send(f)
			if dup {
				_ = c.inner.Send(f)
			}
		}()
		return nil
	}
	if err := c.inner.Send(f); err != nil {
		return err
	}
	if dup {
		return c.inner.Send(f)
	}
	return nil
}

func (c *chaosConn) Recv() (*Frame, error) { return c.inner.Recv() }

func (c *chaosConn) Close() error {
	err := c.inner.Close()
	c.wg.Wait()
	return err
}

// ChaosListener wraps every accepted connection's outbound path
// (coordinator→worker frames) in seeded chaos.
func ChaosListener(inner Listener, cfg ChaosConfig) Listener {
	return &chaosListener{inner: inner, cfg: cfg}
}

type chaosListener struct {
	inner Listener
	cfg   ChaosConfig

	mu sync.Mutex
	n  uint64
}

func (l *chaosListener) Accept() (Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	if !l.cfg.enabled() {
		return c, nil
	}
	l.mu.Lock()
	l.n++
	seed := l.cfg.Seed + 2*l.n
	l.mu.Unlock()
	return newChaosConn(c, l.cfg, seed), nil
}

func (l *chaosListener) Close() error { return l.inner.Close() }
func (l *chaosListener) Addr() string { return l.inner.Addr() }

// ChaosDialer wraps every dialed connection's outbound path
// (worker→coordinator frames) in seeded chaos.
func ChaosDialer(inner Dialer, cfg ChaosConfig) Dialer {
	var mu sync.Mutex
	var n uint64
	return func(ctx context.Context) (Conn, error) {
		c, err := inner(ctx)
		if err != nil {
			return nil, err
		}
		if !cfg.enabled() {
			return c, nil
		}
		mu.Lock()
		n++
		seed := cfg.Seed + 2*n + 1
		mu.Unlock()
		return newChaosConn(c, cfg, seed), nil
	}
}
