package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/faultsim"
	"repro/internal/obs"
)

// Config configures a campaign coordinator.
type Config struct {
	// Campaign is the campaign to shard. All merge-side features ride
	// along unchanged: CheckpointPath/Resume give crash-safe coordinator
	// restart on the v2 frontier format, StopHalfWidth gives Wald early
	// stopping, Bus/Span/Metrics/Ledger stream and record as in Run.
	// Used by Serve; ServeSearch runs one campaign per evaluation instead.
	Campaign faultsim.Campaign
	// Listener accepts worker connections; the coordinator owns it and
	// closes it on exit.
	Listener Listener
	// LeaseTTL is how long a granted chunk may go without a result or
	// heartbeat before it is reassigned (default 5s).
	LeaseTTL time.Duration
	// LeasesPerWorker bounds a worker's outstanding chunks (default 2):
	// one computing, one queued to hide the round trip.
	LeasesPerWorker int
	// AuthToken, when non-empty, requires every worker to pass an
	// HMAC-SHA256 challenge-response proving it holds the same token
	// before any campaign material (fingerprint, spec, leases) is sent.
	// The matching worker setting is WorkerConfig.AuthToken.
	AuthToken string
	// SpotCheck is the fraction of returned chunks the coordinator
	// re-evaluates locally and compares byte-for-byte against the
	// worker's answer (0 disables). Selection is a pure function of
	// (SpotSeed, epoch, chunk index) — see SpotChecked — and every
	// worker's first chunk is always audited, so a worker that always
	// lies never contributes a byte to the merge. A divergent worker is
	// quarantined: dropped, its leases reassigned, its name barred from
	// rejoining, and the audited chunk's trusted local bytes merged.
	SpotCheck float64
	// SpotSeed seeds spot-check selection (default Campaign.Seed, or the
	// per-evaluation campaign seed under ServeSearch).
	SpotSeed uint64
	// Bus receives the fabric's own progress events — "fabric_worker"
	// (join/lost/drain), "fabric_lease" (grant/result/expire/duplicate),
	// "fabric_quarantine" (a worker failed a spot-check) and a final
	// "fabric_done" — alongside whatever Campaign.Bus streams.
	// Typically the same bus.
	Bus *obs.Bus
	// Label names the fabric in streamed events (default Campaign.Label,
	// then "campaign").
	Label string
	// Observer, when set, collects the span records workers relay back
	// (decode/evaluate/encode per chunk) into its remote-span store, so
	// its Chrome-trace export renders one merged multi-process timeline —
	// one lane per worker, timestamps rebased onto the coordinator clock.
	// Setting Bus or Observer switches telemetry federation on: campaign
	// frames carry a trace id, grants carry the parent span context, and
	// workers relay spans/events/metrics on the frames they already send.
	Observer *obs.Observer
	// StragglerFactor and StragglerMin tune straggler detection: a worker
	// whose chunk-latency p95 exceeds Factor × the fleet median of
	// per-worker p95s — each worker having delivered at least Min chunks,
	// with at least two workers reporting — is flagged once with a typed
	// fabric_straggler event. Defaults 3 and 8; zero values keep them.
	StragglerFactor float64
	StragglerMin    int
}

// Stats counts the fabric's fault-tolerance activity during one Serve —
// the observable evidence that leases expired, chunks were reassigned and
// duplicates were suppressed rather than double-counted.
type Stats struct {
	// WorkersSeen counts accepted handshakes; WorkersLost counts
	// connections that died while holding state.
	WorkersSeen int
	WorkersLost int
	// Rejected counts refused handshakes (protocol, fingerprint or
	// authentication failure, or a quarantined worker redialling).
	Rejected int
	// LeasesGranted counts every lease handed out, including re-grants of
	// reassigned chunks. LeasesExpired counts TTL expiries.
	LeasesGranted int
	LeasesExpired int
	// Reassigned counts chunks returned to the queue by expiry or worker
	// loss. Duplicates counts completed-chunk results that arrived again
	// (a slow worker finishing a reassigned chunk) and were suppressed.
	Reassigned int
	Duplicates int
	// Quarantined counts workers dropped for failing a spot-check.
	Quarantined int
	// LocalChunks counts chunks the coordinator computed itself after the
	// live worker set emptied (graceful degradation to local execution).
	LocalChunks int
	// Stragglers counts workers flagged by the straggler detector
	// (telemetry federation on only; see Config.StragglerFactor).
	Stragglers int
}

// lease is one granted chunk.
type lease struct {
	id       uint64
	seq      int // grid chunk index
	worker   *workerConn
	deadline time.Time
	// granted timestamps the grant for leased→resulted latency
	// attribution (telemetry only; zero when federation is off).
	granted time.Time
}

// workerConn is the coordinator's view of one connected worker.
type workerConn struct {
	name    string
	conn    Conn
	out     chan *Frame
	joined  time.Time
	helloed bool
	closed  bool
	// Challenge-response state while authentication is in flight.
	authPending bool
	authNonce   string
	leases      map[uint64]*lease
	chunks      int // results delivered over this connection

	// Telemetry federation state, loop-owned like everything else here
	// (see telemetry.go). clockOff/rttBest hold the smallest-RTT clock
	// sample; lat is the chunk-latency ring feeding straggler detection.
	clockSet  bool
	clockSeen bool // first fabric_clock event published
	clockOff  int64
	rttBest   int64
	lat       []float64
	latPos    int
	latN      int
	straggler bool
}

// inbound is one reader-goroutine message into the coordinator loop.
type inbound struct {
	w   *workerConn
	f   *Frame
	err error
}

// localResult is one chunk the coordinator computed itself (fallback).
type localResult struct {
	seq int
	out *faultsim.ChunkOutput
	err error
}

// maxWorkerName bounds the worker-announced name the coordinator stores
// and republishes, so a hostile hello cannot inflate event payloads.
const maxWorkerName = 64

// maxRenewIDs bounds how many lease ids one heartbeat may renew; a
// legitimate worker holds LeasesPerWorker (default 2).
const maxRenewIDs = 1024

// Coordinator is a long-lived fabric coordinator: it owns the listener
// and the connected worker set, and runs campaigns over them one at a
// time. Serve wraps one campaign in one Coordinator; ServeSearch keeps a
// Coordinator alive across every evaluation of an adversarial search,
// bumping the campaign epoch and re-shipping the spec each time.
//
// Concurrency contract: Run and Close are caller-driven and must not
// overlap; all fabric state is owned by the single goroutine inside Run.
type Coordinator struct {
	cfg   Config
	label string

	// Per-epoch campaign state, rebuilt by each Run.
	merger   *faultsim.Merger
	runner   *faultsim.ChunkRunner
	spec     *faultsim.WireCampaign
	fp       string
	trials   int
	epoch    uint64
	spotSeed uint64
	runCtx   context.Context

	traceID string // run-scoped trace id ("" with telemetry off)

	totalChunks int
	mergeSeq    int // next chunk index to merge (frontier / ChunkSize)
	nextSeq     int // next never-granted chunk index
	requeue     []int
	completed   map[int]bool
	pending     map[int]*faultsim.ChunkOutput
	leased      map[int]*lease
	leases      map[uint64]*lease
	leaseID     uint64
	stopped     bool

	workers     map[*workerConn]struct{}
	quarantined map[string]bool
	writers     sync.WaitGroup // per-conn writer goroutines; Close waits for their flush
	stats       Stats

	inbox      chan inbound
	accepted   chan Conn
	localCh    chan localResult
	localBusy  bool
	done       chan struct{}
	acceptDone chan struct{}
	closeOnce  sync.Once
	ttl        time.Duration
	perWork    int
}

// NewCoordinator builds a coordinator over cfg.Listener and starts
// accepting connections. Callers must eventually Close it; Serve and
// ServeSearch do this bookkeeping for the two standard lifecycles.
func NewCoordinator(cfg Config) *Coordinator {
	label := cfg.Label
	if label == "" {
		label = cfg.Campaign.Label
	}
	if label == "" {
		label = "campaign"
	}
	co := &Coordinator{
		cfg:         cfg,
		label:       label,
		completed:   map[int]bool{},
		pending:     map[int]*faultsim.ChunkOutput{},
		leased:      map[int]*lease{},
		leases:      map[uint64]*lease{},
		workers:     map[*workerConn]struct{}{},
		quarantined: map[string]bool{},
		inbox:       make(chan inbound, 64),
		accepted:    make(chan Conn),
		done:        make(chan struct{}),
		acceptDone:  make(chan struct{}),
		ttl:         cfg.LeaseTTL,
		perWork:     cfg.LeasesPerWorker,
	}
	if co.ttl <= 0 {
		co.ttl = 5 * time.Second
	}
	if co.perWork <= 0 {
		co.perWork = 2
	}
	go func() {
		defer close(co.acceptDone)
		for {
			c, err := co.cfg.Listener.Accept()
			if err != nil {
				return
			}
			select {
			case co.accepted <- c:
			case <-co.done:
				c.Close()
				return
			}
		}
	}()
	return co
}

// Stats returns the counters accumulated so far. Call only while no Run
// is in flight (the loop goroutine owns them during a Run).
func (co *Coordinator) Stats() Stats { return co.stats }

// Close shuts the listener and every worker connection and waits for the
// writer goroutines to flush. Call after the final Run returns; it does
// not send any protocol verdict — use broadcast first for a clean
// done/drain.
func (co *Coordinator) Close() error {
	co.closeOnce.Do(func() {
		close(co.done)
		co.cfg.Listener.Close()
		for w := range co.workers {
			co.closeWorker(w)
		}
		// Wait for every writer to flush its queue and close its conn.
		// The caller may exit the process immediately on return; an
		// unflushed writer would strand the final done/drain verdicts in
		// memory, leaving TCP workers redialling a coordinator that no
		// longer exists. Queued frames are small (verdicts, leases), so
		// the flush cannot block on socket buffers in practice.
		co.writers.Wait()
		<-co.acceptDone
	})
	return nil
}

// broadcast sends a terminal verdict frame to every welcomed worker and
// publishes the matching liveness state. Call between Run and Close.
func (co *Coordinator) broadcast(frameType, state string) {
	for w := range co.workers {
		co.send(w, &Frame{Type: frameType})
		co.publishWorker(w, state)
	}
}

// Serve runs the coordinator until the campaign completes, the merge
// fails, or ctx is cancelled (graceful drain: workers get a drain frame,
// the frontier checkpoint is persisted when configured, and the
// cancellation error is returned). The returned Result is DeepEqual-
// identical to faultsim.Run with Workers=1 on the same Campaign, for any
// number of workers, under any transport chaos and with any subset of
// workers lying (given SpotCheck > 0), because chunks merge strictly in
// grid order and a chunk's content is a pure function of
// (campaign, bounds).
func Serve(ctx context.Context, cfg Config) (faultsim.Result, Stats, error) {
	co := NewCoordinator(cfg)
	res, err := co.Run(ctx, cfg.Campaign)
	if err == nil {
		co.broadcast(TypeDone, "done")
	}
	co.Close()
	return res, co.stats, err
}

// Run shards one campaign over the connected worker set and blocks until
// it completes, the merge fails, or ctx is cancelled. Each Run is one
// campaign epoch: the spec is shipped to every connected worker, and
// leases/results from other epochs are ignored. On success the workers
// are left connected and idle, ready for the next Run (ServeSearch's
// loop); the caller broadcasts the final done/drain verdict.
func (co *Coordinator) Run(ctx context.Context, c faultsim.Campaign) (faultsim.Result, error) {
	merger, err := faultsim.NewMerger(c, 0)
	if err != nil {
		return faultsim.Result{}, err
	}
	runner, err := faultsim.NewChunkRunner(c)
	if err != nil {
		return faultsim.Result{}, err
	}
	spec, err := faultsim.NewWireCampaign(c)
	if err != nil {
		return faultsim.Result{}, err
	}
	co.epoch++
	co.merger, co.runner, co.spec = merger, runner, spec
	co.fp = c.Fingerprint()
	co.trials = c.Trials
	co.spotSeed = co.cfg.SpotSeed
	if co.spotSeed == 0 {
		co.spotSeed = c.Seed
	}
	co.traceID = ""
	if co.telemetry() {
		// Deterministic, run-scoped: campaign fingerprint prefix + epoch.
		fp := co.fp
		if len(fp) > 12 {
			fp = fp[:12]
		}
		co.traceID = fmt.Sprintf("%s-e%d", fp, co.epoch)
	}
	co.totalChunks = faultsim.NumChunks(co.trials)
	co.mergeSeq = faultsim.ChunkIndex(merger.Frontier())
	if merger.Frontier() >= co.trials {
		co.mergeSeq = co.totalChunks
	}
	co.nextSeq = co.mergeSeq
	co.requeue = nil
	co.completed = map[int]bool{}
	co.pending = map[int]*faultsim.ChunkOutput{}
	co.leased = map[int]*lease{}
	co.leases = map[uint64]*lease{}
	co.stopped = false
	co.localCh = make(chan localResult, 1)
	co.localBusy = false
	for w := range co.workers {
		w.leases = map[uint64]*lease{}
	}

	// A resumed-complete campaign has nothing to shard.
	if co.mergeSeq >= co.totalChunks {
		res := co.merger.Finish()
		co.publishDone(res)
		return res, nil
	}

	// Ship the new epoch to everyone already connected.
	for w := range co.workers {
		if w.helloed {
			co.sendCampaign(w)
			co.grant(w)
		}
	}
	return co.loop(ctx)
}

// loop is the single-goroutine event loop owning all fabric state for
// one campaign epoch.
func (co *Coordinator) loop(ctx context.Context) (faultsim.Result, error) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	co.runCtx = runCtx
	tick := time.NewTicker(co.tickEvery())
	defer tick.Stop()
	for {
		if co.mergeSeq >= co.totalChunks || co.stopped {
			res := co.merger.Finish()
			co.publishDone(res)
			return res, nil
		}
		co.maybeLocal()
		select {
		case c := <-co.accepted:
			co.admit(c)
		case in := <-co.inbox:
			if _, live := co.workers[in.w]; !live {
				continue // stale message from an already-dropped worker
			}
			if in.err != nil {
				co.dropWorker(in.w, "lost")
				continue
			}
			if fatal := co.handle(in.w, in.f); fatal != nil {
				return faultsim.Result{}, fatal
			}
		case lr := <-co.localCh:
			co.localBusy = false
			if lr.err != nil {
				if runCtx.Err() != nil {
					continue // cancelled mid-chunk; ctx.Done() exits the loop
				}
				return faultsim.Result{}, lr.err
			}
			co.stats.LocalChunks++
			if fatal := co.acceptChunk(nil, 0, lr.seq, lr.out); fatal != nil {
				return faultsim.Result{}, fatal
			}
		case <-tick.C:
			co.expireLeases()
			co.sweepHandshakes()
		case <-ctx.Done():
			// Graceful drain: notify workers, persist the frontier, exit.
			co.broadcast(TypeDrain, "drain")
			return faultsim.Result{}, co.merger.Abort(ctx.Err())
		}
	}
}

// tickEvery is the lease-expiry scan interval: a quarter TTL, floored so
// tiny test TTLs do not busy-spin.
func (co *Coordinator) tickEvery() time.Duration {
	t := co.ttl / 4
	if t < 5*time.Millisecond {
		t = 5 * time.Millisecond
	}
	return t
}

// handshakeWindow is how long an accepted connection may sit without
// completing its handshake before it is cut off — the read deadline that
// keeps a stalled or hostile dialer from holding coordinator state.
func (co *Coordinator) handshakeWindow() time.Duration {
	if co.ttl > time.Second {
		return co.ttl
	}
	return time.Second
}

// admit starts the reader/writer goroutines of a fresh connection. The
// worker holds no state until its handshake passes, its inbound frames
// are size-capped, and sweepHandshakes cuts it off if the handshake
// stalls.
func (co *Coordinator) admit(c Conn) {
	if rl, ok := c.(recvLimiter); ok {
		rl.SetRecvLimit(preAuthFrameSize)
	}
	w := &workerConn{conn: c, out: make(chan *Frame, 64), joined: time.Now(), leases: map[uint64]*lease{}}
	co.workers[w] = struct{}{}
	co.writers.Add(1)
	go func() { // writer: drains out, then closes the conn
		defer co.writers.Done()
		for f := range w.out {
			_ = c.Send(f)
		}
		c.Close()
	}()
	go func() { // reader: pumps frames into the loop until the conn dies
		for {
			f, err := c.Recv()
			select {
			case co.inbox <- inbound{w: w, f: f, err: err}:
			case <-co.done:
				return
			}
			if err != nil {
				return
			}
		}
	}()
}

// sweepHandshakes drops connections that have not completed their
// handshake within the window.
func (co *Coordinator) sweepHandshakes() {
	cutoff := time.Now().Add(-co.handshakeWindow())
	for w := range co.workers {
		if !w.helloed && w.joined.Before(cutoff) {
			co.dropWorker(w, "handshake timeout")
		}
	}
}

// send enqueues one frame for w without ever blocking the loop; a worker
// whose writer queue is jammed is treated as lost.
func (co *Coordinator) send(w *workerConn, f *Frame) {
	select {
	case w.out <- f:
	default:
		co.dropWorker(w, "lost")
	}
}

// closeWorker shuts the worker's writer (flushing queued frames, then
// closing the conn). Idempotent.
func (co *Coordinator) closeWorker(w *workerConn) {
	if !w.closed {
		w.closed = true
		close(w.out)
	}
}

// dropWorker removes w and requeues its leases for reassignment.
func (co *Coordinator) dropWorker(w *workerConn, state string) {
	if _, live := co.workers[w]; !live {
		return
	}
	delete(co.workers, w)
	if w.helloed {
		co.stats.WorkersLost++
		co.publishWorker(w, state)
	}
	for id, l := range w.leases {
		delete(co.leases, id)
		delete(co.leased, l.seq)
		if !co.completed[l.seq] {
			co.requeue = append(co.requeue, l.seq)
			co.stats.Reassigned++
			co.publishLease(l, "reassign")
		}
	}
	co.closeWorker(w)
}

// handle processes one frame; a non-nil return is a fatal merge error.
func (co *Coordinator) handle(w *workerConn, f *Frame) error {
	switch f.Type {
	case TypeHello:
		if w.helloed || w.authPending {
			return nil // duplicated hello frame (chaos): already in progress
		}
		if f.Proto != Proto {
			co.reject(w, fmt.Sprintf("protocol version %d, want %d", f.Proto, Proto))
			return nil
		}
		name := f.Worker
		if len(name) > maxWorkerName {
			name = name[:maxWorkerName]
		}
		if name == "" {
			name = fmt.Sprintf("w%d", co.stats.WorkersSeen+1)
		}
		if co.quarantined[name] {
			co.reject(w, "worker quarantined")
			return nil
		}
		if co.cfg.AuthToken != "" {
			// Authenticated handshake: challenge first; the campaign
			// fingerprint is deferred to the worker's auth frame, so a
			// peer that cannot answer learns nothing about the campaign.
			nonce, err := newNonce()
			if err != nil {
				co.reject(w, "authentication unavailable")
				return nil
			}
			w.authPending = true
			w.authNonce = nonce
			w.name = name
			co.send(w, &Frame{Type: TypeChallenge, Nonce: nonce, MAC: signNonce(co.cfg.AuthToken, f.Nonce)})
			return nil
		}
		if bad, reason := co.fingerprintMismatch(f.Fingerprint); bad {
			co.reject(w, reason)
			return nil
		}
		co.welcome(w, name)
	case TypeAuth:
		if !w.authPending || w.helloed {
			return nil // stray or duplicated auth frame
		}
		if !verifyMAC(co.cfg.AuthToken, w.authNonce, f.MAC) {
			co.reject(w, "authentication failed")
			return nil
		}
		w.authPending = false
		if bad, reason := co.fingerprintMismatch(f.Fingerprint); bad {
			co.reject(w, reason)
			return nil
		}
		co.welcome(w, w.name)
	case TypeNeedCampaign:
		if w.helloed && co.merger != nil {
			co.sendCampaign(w)
		}
	case TypeHeartbeat:
		co.renew(w, f.Leases)
		co.telemetryIn(w, f)
	case TypeResult:
		if !w.helloed {
			return nil
		}
		co.renew(w, f.Leases)
		// Telemetry rides the result frame and is absorbed before the
		// result itself: the spans of an accepted chunk land exactly once,
		// and a duplicate's spans are rejected by the same completed-chunk
		// test that suppresses the duplicate (see absorbSpans).
		co.telemetryIn(w, f)
		if f.Epoch != co.epoch {
			return nil // stale epoch: result of a previous Run
		}
		if err := co.result(w, f); err != nil {
			return err
		}
		co.grant(w)
	}
	return nil
}

// fingerprintMismatch checks a worker-announced campaign fingerprint
// against the current epoch's. An empty announcement is a flagless
// worker — it configures from the shipped spec, nothing to compare.
func (co *Coordinator) fingerprintMismatch(fp string) (bool, string) {
	if fp == "" || co.merger == nil || fp == co.fp {
		return false, ""
	}
	return true, fmt.Sprintf("campaign fingerprint %s, want %s", fp, co.fp)
}

// welcome completes a handshake: the worker becomes eligible for leases
// and, in the same breath, receives the current campaign spec.
func (co *Coordinator) welcome(w *workerConn, name string) {
	w.helloed = true
	w.name = name
	co.stats.WorkersSeen++
	if rl, ok := w.conn.(recvLimiter); ok {
		rl.SetRecvLimit(maxFrameSize)
	}
	co.send(w, &Frame{Type: TypeWelcome, Trials: co.trials, Worker: w.name})
	co.publishWorker(w, "join")
	if co.merger != nil {
		co.sendCampaign(w)
		co.grant(w)
	}
}

// sendCampaign ships the current epoch's encoded campaign spec (plus the
// trace id and a clock stamp when telemetry federation is on).
func (co *Coordinator) sendCampaign(w *workerConn) {
	co.send(w, co.stampTS(&Frame{
		Type:        TypeCampaign,
		Epoch:       co.epoch,
		Fingerprint: co.fp,
		Trials:      co.trials,
		Spec:        co.spec,
		Trace:       co.traceID,
	}))
}

// reject refuses a handshake and discards the connection.
func (co *Coordinator) reject(w *workerConn, reason string) {
	co.stats.Rejected++
	co.send(w, &Frame{Type: TypeReject, Reason: reason})
	delete(co.workers, w)
	co.closeWorker(w)
}

// renew pushes the deadlines of the leases the worker says it holds out
// by one TTL. Leases the worker does not list — its grant frame was lost
// in transit — are left to expire on schedule so they get reassigned;
// renewing blindly on any sign of life would keep a lost grant alive for
// as long as the worker heartbeats. The list is capped: a legitimate
// worker holds LeasesPerWorker leases, so anything past maxRenewIDs is a
// hostile payload, not a renewal.
func (co *Coordinator) renew(w *workerConn, ids []uint64) {
	if len(ids) > maxRenewIDs {
		ids = ids[:maxRenewIDs]
	}
	deadline := time.Now().Add(co.ttl)
	for _, id := range ids {
		if l, ok := w.leases[id]; ok {
			l.deadline = deadline
		}
	}
}

// grant hands w chunks until it holds LeasesPerWorker, preferring
// reassigned chunks over fresh ones.
func (co *Coordinator) grant(w *workerConn) {
	for !co.stopped && w.helloed && !w.closed && len(w.leases) < co.perWork {
		seq, ok := co.nextChunk()
		if !ok {
			return
		}
		co.leaseID++
		now := time.Now()
		l := &lease{id: co.leaseID, seq: seq, worker: w, deadline: now.Add(co.ttl), granted: now}
		co.leases[l.id] = l
		co.leased[seq] = l
		w.leases[l.id] = l
		begin, end := faultsim.ChunkBounds(seq, co.trials)
		co.stats.LeasesGranted++
		co.send(w, co.stampTS(&Frame{Type: TypeLease, Lease: l.id, Epoch: co.epoch, Begin: begin, End: end}))
		co.publishLease(l, "grant")
	}
}

// nextChunk picks the next chunk needing an owner: reassignments first
// (skipping any that completed while queued), then the fresh frontier.
func (co *Coordinator) nextChunk() (int, bool) {
	for len(co.requeue) > 0 {
		seq := co.requeue[0]
		co.requeue = co.requeue[1:]
		if !co.completed[seq] && seq >= co.mergeSeq && co.leased[seq] == nil {
			return seq, true
		}
	}
	if co.nextSeq < co.totalChunks {
		seq := co.nextSeq
		co.nextSeq++
		return seq, true
	}
	return 0, false
}

// liveWorkers counts welcomed, still-connected workers.
func (co *Coordinator) liveWorkers() int {
	n := 0
	for w := range co.workers {
		if w.helloed {
			n++
		}
	}
	return n
}

// maybeLocal starts one local chunk computation when the fabric has
// degraded to zero live workers (all lost or quarantined) while work
// remains — the graceful-degradation path: the campaign completes as a
// plain local run instead of stalling. One chunk at a time keeps the
// loop responsive to workers rejoining.
func (co *Coordinator) maybeLocal() {
	if co.localBusy || co.stopped || co.merger == nil {
		return
	}
	if co.stats.WorkersSeen == 0 || co.liveWorkers() > 0 {
		return
	}
	seq, ok := co.nextChunk()
	if !ok {
		return
	}
	co.localBusy = true
	begin, end := faultsim.ChunkBounds(seq, co.trials)
	co.publishLease(&lease{seq: seq}, "local")
	runner, ctx, ch := co.runner, co.runCtx, co.localCh
	go func() {
		out, err := runner.Run(ctx, begin, end)
		ch <- localResult{seq: seq, out: out, err: err} // buffered; never blocks
	}()
}

// expireLeases reassigns chunks whose lease outlived its TTL. The slow
// worker stays connected — if its result still arrives first it is
// accepted (the content is deterministic), and if it arrives after the
// reassigned copy it is suppressed as a duplicate.
func (co *Coordinator) expireLeases() {
	now := time.Now()
	for id, l := range co.leases {
		if now.Before(l.deadline) {
			continue
		}
		delete(co.leases, id)
		delete(l.worker.leases, id)
		delete(co.leased, l.seq)
		co.stats.LeasesExpired++
		co.publishLease(l, "expire")
		if !co.completed[l.seq] {
			co.requeue = append(co.requeue, l.seq)
			co.stats.Reassigned++
		}
		co.grant(l.worker)
	}
}

// result accepts one chunk result: validates its bounds, suppresses
// duplicates, audits it when spot-check selection says so, then merges
// every contiguous pending chunk in grid order.
func (co *Coordinator) result(w *workerConn, f *Frame) error {
	if f.Chunk == nil {
		return nil
	}
	wantB, wantE := faultsim.ChunkBounds(faultsim.ChunkIndex(f.Begin), co.trials)
	if f.Begin != wantB || f.End != wantE || f.Chunk.Begin != f.Begin || f.Chunk.End != f.End {
		return nil // malformed bounds: ignore; the lease will expire
	}
	seq := faultsim.ChunkIndex(f.Begin)
	if seq < co.mergeSeq || co.completed[seq] {
		co.stats.Duplicates++
		co.publishLease(&lease{seq: seq, worker: w}, "duplicate")
		return nil
	}
	if co.cfg.SpotCheck > 0 && (w.chunks == 0 || SpotChecked(co.spotSeed, co.epoch, seq, co.cfg.SpotCheck)) {
		local, err := co.runner.Run(co.runCtx, wantB, wantE)
		if err != nil {
			if co.runCtx.Err() != nil {
				return nil // cancelled mid-audit; ctx.Done() exits the loop
			}
			return err
		}
		if !chunkEqual(local, f.Chunk) {
			// The worker lied. Quarantine it (dropWorker requeues its
			// leases, including this chunk's) and merge the trusted
			// locally-computed bytes instead — the audit already paid for
			// them.
			co.quarantine(w, wantB, wantE)
			return co.acceptChunk(nil, 0, seq, local)
		}
	}
	w.chunks++
	return co.acceptChunk(w, f.Lease, seq, f.Chunk)
}

// acceptChunk records one trusted chunk (from a worker, a spot-check
// re-evaluation, or the local fallback) and merges every contiguous
// pending chunk in grid order.
func (co *Coordinator) acceptChunk(w *workerConn, leaseID uint64, seq int, out *faultsim.ChunkOutput) error {
	// Leased→resulted latency of the delivering worker's own grant,
	// measured before the release below discards the lease. Feeds the
	// per-worker histograms and the straggler detector (telemetry only).
	latMS := -1.0
	if w != nil && co.telemetry() {
		if l, ok := w.leases[leaseID]; ok && l.seq == seq && !l.granted.IsZero() {
			latMS = float64(time.Since(l.granted)) / float64(time.Millisecond)
		}
	}
	// Release whichever lease covers the chunk — possibly another
	// worker's, when the chunk was reassigned and the first owner won.
	if l := co.leased[seq]; l != nil {
		delete(co.leases, l.id)
		delete(l.worker.leases, l.id)
		delete(co.leased, seq)
	}
	if w != nil {
		if l, ok := w.leases[leaseID]; ok && l.seq == seq {
			delete(co.leases, l.id)
			delete(w.leases, l.id)
		}
	}
	co.completed[seq] = true
	co.pending[seq] = out
	if latMS >= 0 {
		co.publishLease(&lease{id: leaseID, seq: seq, worker: w}, "result", obs.Float("latency_ms", latMS))
		co.observeLatency(w, latMS)
	} else {
		co.publishLease(&lease{id: leaseID, seq: seq, worker: w}, "result")
	}
	for !co.stopped {
		out, ok := co.pending[co.mergeSeq]
		if !ok {
			break
		}
		delete(co.pending, co.mergeSeq)
		stop, err := co.merger.Absorb(out)
		if err != nil {
			return err
		}
		co.mergeSeq++
		// The dup-suppression set only needs entries at or above the merge
		// frontier (anything below is caught by the seq < mergeSeq test);
		// pruning as the frontier advances keeps it bounded by the
		// in-flight window instead of the campaign size.
		delete(co.completed, co.mergeSeq-1)
		if stop {
			// Early stopping: discard speculative chunks beyond the
			// stopping frontier, exactly as the in-process pool does.
			co.stopped = true
			co.pending = map[int]*faultsim.ChunkOutput{}
		}
	}
	return nil
}

// quarantine drops a worker whose chunk bytes diverged from the local
// re-evaluation and bars its name from rejoining this coordinator.
func (co *Coordinator) quarantine(w *workerConn, begin, end int) {
	co.stats.Quarantined++
	co.quarantined[w.name] = true
	if co.cfg.Bus != nil {
		co.cfg.Bus.Publish("fabric_quarantine", w.name,
			obs.String("campaign", co.label),
			obs.Int("begin", begin),
			obs.Int("end", end),
			obs.Int("chunks_done", w.chunks))
	}
	co.dropWorker(w, "quarantined")
}

// chunkEqual compares two chunk outputs byte-for-byte via their
// canonical JSON encoding — the same bytes the merge consumes.
func chunkEqual(a, b *faultsim.ChunkOutput) bool {
	ab, aerr := json.Marshal(a)
	bb, berr := json.Marshal(b)
	return aerr == nil && berr == nil && bytes.Equal(ab, bb)
}

// publishWorker emits a "fabric_worker" liveness event.
func (co *Coordinator) publishWorker(w *workerConn, state string) {
	if co.cfg.Bus == nil {
		return
	}
	co.cfg.Bus.Publish("fabric_worker", w.name,
		obs.String("state", state),
		obs.String("campaign", co.label),
		obs.Int("leases", len(w.leases)),
		obs.Int("chunks_done", w.chunks))
}

// publishLease emits a "fabric_lease" churn event (extra carries
// state-specific attributes, e.g. latency_ms on results).
func (co *Coordinator) publishLease(l *lease, state string, extra ...obs.Attr) {
	if co.cfg.Bus == nil {
		return
	}
	begin, end := faultsim.ChunkBounds(l.seq, co.trials)
	name := ""
	if l.worker != nil {
		name = l.worker.name
	}
	attrs := append([]obs.Attr{
		obs.String("state", state),
		obs.String("worker", name),
		obs.Int("lease", int(l.id)),
		obs.Int("begin", begin),
		obs.Int("end", end),
	}, extra...)
	co.cfg.Bus.Publish("fabric_lease", co.label, attrs...)
}

// publishDone emits the terminal "fabric_done" event.
func (co *Coordinator) publishDone(res faultsim.Result) {
	if co.cfg.Bus == nil {
		return
	}
	co.cfg.Bus.Publish("fabric_done", co.label,
		obs.Int("trials_done", res.Trials),
		obs.Int("workers_seen", co.stats.WorkersSeen),
		obs.Int("workers_lost", co.stats.WorkersLost),
		obs.Int("leases_granted", co.stats.LeasesGranted),
		obs.Int("leases_expired", co.stats.LeasesExpired),
		obs.Int("reassigned", co.stats.Reassigned),
		obs.Int("duplicates", co.stats.Duplicates),
		obs.Int("quarantined", co.stats.Quarantined),
		obs.Int("local_chunks", co.stats.LocalChunks),
		obs.Int("stragglers", co.stats.Stragglers),
		obs.Bool("early_stopped", res.EarlyStopped))
}
