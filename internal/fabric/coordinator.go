package fabric

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/faultsim"
	"repro/internal/obs"
)

// Config configures a campaign coordinator.
type Config struct {
	// Campaign is the campaign to shard. All merge-side features ride
	// along unchanged: CheckpointPath/Resume give crash-safe coordinator
	// restart on the v2 frontier format, StopHalfWidth gives Wald early
	// stopping, Bus/Span/Metrics/Ledger stream and record as in Run.
	Campaign faultsim.Campaign
	// Listener accepts worker connections; the coordinator owns it and
	// closes it on exit.
	Listener Listener
	// LeaseTTL is how long a granted chunk may go without a result or
	// heartbeat before it is reassigned (default 5s).
	LeaseTTL time.Duration
	// LeasesPerWorker bounds a worker's outstanding chunks (default 2):
	// one computing, one queued to hide the round trip.
	LeasesPerWorker int
	// Bus receives the fabric's own progress events — "fabric_worker"
	// (join/lost/drain), "fabric_lease" (grant/result/expire/duplicate)
	// and a final "fabric_done" — alongside whatever Campaign.Bus streams.
	// Typically the same bus.
	Bus *obs.Bus
	// Label names the fabric in streamed events (default Campaign.Label,
	// then "campaign").
	Label string
}

// Stats counts the fabric's fault-tolerance activity during one Serve —
// the observable evidence that leases expired, chunks were reassigned and
// duplicates were suppressed rather than double-counted.
type Stats struct {
	// WorkersSeen counts accepted handshakes; WorkersLost counts
	// connections that died while holding state.
	WorkersSeen int
	WorkersLost int
	// Rejected counts refused handshakes (protocol or fingerprint
	// mismatch).
	Rejected int
	// LeasesGranted counts every lease handed out, including re-grants of
	// reassigned chunks. LeasesExpired counts TTL expiries.
	LeasesGranted int
	LeasesExpired int
	// Reassigned counts chunks returned to the queue by expiry or worker
	// loss. Duplicates counts completed-chunk results that arrived again
	// (a slow worker finishing a reassigned chunk) and were suppressed.
	Reassigned int
	Duplicates int
}

// lease is one granted chunk.
type lease struct {
	id       uint64
	seq      int // grid chunk index
	worker   *workerConn
	deadline time.Time
}

// workerConn is the coordinator's view of one connected worker.
type workerConn struct {
	name    string
	conn    Conn
	out     chan *Frame
	helloed bool
	closed  bool
	leases  map[uint64]*lease
	chunks  int // results delivered
}

// inbound is one reader-goroutine message into the coordinator loop.
type inbound struct {
	w   *workerConn
	f   *Frame
	err error
}

// coordinator is the single-goroutine event loop owning all fabric state.
type coordinator struct {
	cfg    Config
	merger *faultsim.Merger
	label  string
	fp     string
	trials int

	totalChunks int
	mergeSeq    int // next chunk index to merge (frontier / ChunkSize)
	nextSeq     int // next never-granted chunk index
	requeue     []int
	completed   map[int]bool
	pending     map[int]*faultsim.ChunkOutput
	leased      map[int]*lease
	leases      map[uint64]*lease
	leaseID     uint64

	workers map[*workerConn]struct{}
	writers sync.WaitGroup // per-conn writer goroutines; cleanup waits for their flush
	stats   Stats
	stopped bool

	inbox    chan inbound
	accepted chan Conn
	done     chan struct{}
	ttl      time.Duration
	perWork  int
}

// Serve runs the coordinator until the campaign completes, the merge
// fails, or ctx is cancelled (graceful drain: workers get a drain frame,
// the frontier checkpoint is persisted when configured, and the
// cancellation error is returned). The returned Result is DeepEqual-
// identical to faultsim.Run with Workers=1 on the same Campaign, for any
// number of workers, under any transport chaos, because chunks merge
// strictly in grid order and a chunk's content is a pure function of
// (campaign, bounds).
func Serve(ctx context.Context, cfg Config) (faultsim.Result, Stats, error) {
	label := cfg.Label
	if label == "" {
		label = cfg.Campaign.Label
	}
	if label == "" {
		label = "campaign"
	}
	merger, err := faultsim.NewMerger(cfg.Campaign, 0)
	if err != nil {
		return faultsim.Result{}, Stats{}, err
	}
	co := &coordinator{
		cfg:       cfg,
		merger:    merger,
		label:     label,
		fp:        cfg.Campaign.Fingerprint(),
		trials:    cfg.Campaign.Trials,
		completed: map[int]bool{},
		pending:   map[int]*faultsim.ChunkOutput{},
		leased:    map[int]*lease{},
		leases:    map[uint64]*lease{},
		workers:   map[*workerConn]struct{}{},
		inbox:     make(chan inbound, 64),
		accepted:  make(chan Conn),
		done:      make(chan struct{}),
		ttl:       cfg.LeaseTTL,
		perWork:   cfg.LeasesPerWorker,
	}
	if co.ttl <= 0 {
		co.ttl = 5 * time.Second
	}
	if co.perWork <= 0 {
		co.perWork = 2
	}
	co.totalChunks = faultsim.NumChunks(co.trials)
	co.mergeSeq = faultsim.ChunkIndex(merger.Frontier())
	if merger.Frontier() >= co.trials {
		co.mergeSeq = co.totalChunks
	}
	co.nextSeq = co.mergeSeq
	return co.run(ctx)
}

func (co *coordinator) run(ctx context.Context) (faultsim.Result, Stats, error) {
	// The accept goroutine feeds new connections into the loop; it exits
	// when the listener closes.
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			c, err := co.cfg.Listener.Accept()
			if err != nil {
				return
			}
			select {
			case co.accepted <- c:
			case <-co.done:
				c.Close()
				return
			}
		}
	}()
	cleanup := func() {
		close(co.done)
		co.cfg.Listener.Close()
		for w := range co.workers {
			co.closeWorker(w)
		}
		// Wait for every writer to flush its queue and close its conn.
		// Serve's caller may exit the process immediately on return; an
		// unflushed writer would strand the final done/drain verdicts in
		// memory, leaving TCP workers redialling a coordinator that no
		// longer exists. Queued frames are small (verdicts, leases), so
		// the flush cannot block on socket buffers in practice.
		co.writers.Wait()
		<-acceptDone
	}

	// A resumed-complete campaign has nothing to shard.
	if co.mergeSeq >= co.totalChunks {
		cleanup()
		res := co.merger.Finish()
		co.publishDone(res)
		return res, co.stats, nil
	}

	tick := time.NewTicker(co.tickEvery())
	defer tick.Stop()
	for {
		select {
		case c := <-co.accepted:
			co.admit(c)
		case in := <-co.inbox:
			if _, live := co.workers[in.w]; !live {
				continue // stale message from an already-dropped worker
			}
			if in.err != nil {
				co.dropWorker(in.w, "lost")
				continue
			}
			if fatal := co.handle(in.w, in.f); fatal != nil {
				cleanup()
				return faultsim.Result{}, co.stats, fatal
			}
			if co.mergeSeq >= co.totalChunks || co.stopped {
				// Campaign complete: tell every worker, then shut down.
				for w := range co.workers {
					co.send(w, &Frame{Type: TypeDone})
					co.publishWorker(w, "done")
				}
				cleanup()
				res := co.merger.Finish()
				co.publishDone(res)
				return res, co.stats, nil
			}
		case <-tick.C:
			co.expireLeases()
		case <-ctx.Done():
			// Graceful drain: notify workers, persist the frontier, exit.
			for w := range co.workers {
				co.send(w, &Frame{Type: TypeDrain})
				co.publishWorker(w, "drain")
			}
			cleanup()
			return faultsim.Result{}, co.stats, co.merger.Abort(ctx.Err())
		}
	}
}

// tickEvery is the lease-expiry scan interval: a quarter TTL, floored so
// tiny test TTLs do not busy-spin.
func (co *coordinator) tickEvery() time.Duration {
	t := co.ttl / 4
	if t < 5*time.Millisecond {
		t = 5 * time.Millisecond
	}
	return t
}

// admit starts the reader/writer goroutines of a fresh connection. The
// worker holds no state until its hello passes.
func (co *coordinator) admit(c Conn) {
	w := &workerConn{conn: c, out: make(chan *Frame, 64), leases: map[uint64]*lease{}}
	co.workers[w] = struct{}{}
	co.writers.Add(1)
	go func() { // writer: drains out, then closes the conn
		defer co.writers.Done()
		for f := range w.out {
			_ = c.Send(f)
		}
		c.Close()
	}()
	go func() { // reader: pumps frames into the loop until the conn dies
		for {
			f, err := c.Recv()
			select {
			case co.inbox <- inbound{w: w, f: f, err: err}:
			case <-co.done:
				return
			}
			if err != nil {
				return
			}
		}
	}()
}

// send enqueues one frame for w without ever blocking the loop; a worker
// whose writer queue is jammed is treated as lost.
func (co *coordinator) send(w *workerConn, f *Frame) {
	select {
	case w.out <- f:
	default:
		co.dropWorker(w, "lost")
	}
}

// closeWorker shuts the worker's writer (flushing queued frames, then
// closing the conn). Idempotent.
func (co *coordinator) closeWorker(w *workerConn) {
	if !w.closed {
		w.closed = true
		close(w.out)
	}
}

// dropWorker removes w and requeues its leases for reassignment.
func (co *coordinator) dropWorker(w *workerConn, state string) {
	if _, live := co.workers[w]; !live {
		return
	}
	delete(co.workers, w)
	if w.helloed {
		co.stats.WorkersLost++
		co.publishWorker(w, state)
	}
	for id, l := range w.leases {
		delete(co.leases, id)
		delete(co.leased, l.seq)
		if !co.completed[l.seq] {
			co.requeue = append(co.requeue, l.seq)
			co.stats.Reassigned++
			co.publishLease(l, "reassign")
		}
	}
	co.closeWorker(w)
}

// handle processes one frame; a non-nil return is a fatal merge error.
func (co *coordinator) handle(w *workerConn, f *Frame) error {
	switch f.Type {
	case TypeHello:
		if w.helloed {
			return nil // duplicated hello frame (chaos): already welcomed
		}
		if f.Proto != Proto {
			co.reject(w, fmt.Sprintf("protocol version %d, want %d", f.Proto, Proto))
			return nil
		}
		if f.Fingerprint != co.fp {
			co.reject(w, fmt.Sprintf("campaign fingerprint %s, want %s", f.Fingerprint, co.fp))
			return nil
		}
		w.helloed = true
		w.name = f.Worker
		if w.name == "" {
			w.name = fmt.Sprintf("w%d", co.stats.WorkersSeen+1)
		}
		co.stats.WorkersSeen++
		co.send(w, &Frame{Type: TypeWelcome, Trials: co.trials, Worker: w.name})
		co.publishWorker(w, "join")
		co.grant(w)
	case TypeHeartbeat:
		co.renew(w, f.Leases)
	case TypeResult:
		co.renew(w, f.Leases)
		if err := co.result(w, f); err != nil {
			return err
		}
		co.grant(w)
	}
	return nil
}

// reject refuses a handshake and discards the connection.
func (co *coordinator) reject(w *workerConn, reason string) {
	co.stats.Rejected++
	co.send(w, &Frame{Type: TypeReject, Reason: reason})
	delete(co.workers, w)
	co.closeWorker(w)
}

// renew pushes the deadlines of the leases the worker says it holds out
// by one TTL. Leases the worker does not list — its grant frame was lost
// in transit — are left to expire on schedule so they get reassigned;
// renewing blindly on any sign of life would keep a lost grant alive for
// as long as the worker heartbeats.
func (co *coordinator) renew(w *workerConn, ids []uint64) {
	deadline := time.Now().Add(co.ttl)
	for _, id := range ids {
		if l, ok := w.leases[id]; ok {
			l.deadline = deadline
		}
	}
}

// grant hands w chunks until it holds LeasesPerWorker, preferring
// reassigned chunks over fresh ones.
func (co *coordinator) grant(w *workerConn) {
	for !co.stopped && w.helloed && !w.closed && len(w.leases) < co.perWork {
		seq, ok := co.nextChunk()
		if !ok {
			return
		}
		co.leaseID++
		l := &lease{id: co.leaseID, seq: seq, worker: w, deadline: time.Now().Add(co.ttl)}
		co.leases[l.id] = l
		co.leased[seq] = l
		w.leases[l.id] = l
		begin, end := faultsim.ChunkBounds(seq, co.trials)
		co.stats.LeasesGranted++
		co.send(w, &Frame{Type: TypeLease, Lease: l.id, Begin: begin, End: end})
		co.publishLease(l, "grant")
	}
}

// nextChunk picks the next chunk needing an owner: reassignments first
// (skipping any that completed while queued), then the fresh frontier.
func (co *coordinator) nextChunk() (int, bool) {
	for len(co.requeue) > 0 {
		seq := co.requeue[0]
		co.requeue = co.requeue[1:]
		if !co.completed[seq] && co.leased[seq] == nil {
			return seq, true
		}
	}
	if co.nextSeq < co.totalChunks {
		seq := co.nextSeq
		co.nextSeq++
		return seq, true
	}
	return 0, false
}

// expireLeases reassigns chunks whose lease outlived its TTL. The slow
// worker stays connected — if its result still arrives first it is
// accepted (the content is deterministic), and if it arrives after the
// reassigned copy it is suppressed as a duplicate.
func (co *coordinator) expireLeases() {
	now := time.Now()
	for id, l := range co.leases {
		if now.Before(l.deadline) {
			continue
		}
		delete(co.leases, id)
		delete(l.worker.leases, id)
		delete(co.leased, l.seq)
		co.stats.LeasesExpired++
		co.publishLease(l, "expire")
		if !co.completed[l.seq] {
			co.requeue = append(co.requeue, l.seq)
			co.stats.Reassigned++
		}
		co.grant(l.worker)
	}
}

// result accepts one chunk result: validates its bounds, suppresses
// duplicates, then merges every contiguous pending chunk in grid order.
func (co *coordinator) result(w *workerConn, f *Frame) error {
	if f.Chunk == nil {
		return nil
	}
	wantB, wantE := faultsim.ChunkBounds(faultsim.ChunkIndex(f.Begin), co.trials)
	if f.Begin != wantB || f.End != wantE || f.Chunk.Begin != f.Begin || f.Chunk.End != f.End {
		return nil // malformed bounds: ignore; the lease will expire
	}
	seq := faultsim.ChunkIndex(f.Begin)
	if seq < co.mergeSeq || co.completed[seq] {
		co.stats.Duplicates++
		co.publishLease(&lease{seq: seq, worker: w}, "duplicate")
		return nil
	}
	// Release whichever lease covers the chunk — possibly another
	// worker's, when the chunk was reassigned and the first owner won.
	if l := co.leased[seq]; l != nil {
		delete(co.leases, l.id)
		delete(l.worker.leases, l.id)
		delete(co.leased, seq)
	}
	if l, ok := w.leases[f.Lease]; ok && l.seq == seq {
		delete(co.leases, l.id)
		delete(w.leases, l.id)
	}
	co.completed[seq] = true
	co.pending[seq] = f.Chunk
	w.chunks++
	co.publishLease(&lease{id: f.Lease, seq: seq, worker: w}, "result")
	for !co.stopped {
		out, ok := co.pending[co.mergeSeq]
		if !ok {
			break
		}
		delete(co.pending, co.mergeSeq)
		stop, err := co.merger.Absorb(out)
		if err != nil {
			return err
		}
		co.mergeSeq++
		if stop {
			// Early stopping: discard speculative chunks beyond the
			// stopping frontier, exactly as the in-process pool does.
			co.stopped = true
			co.pending = map[int]*faultsim.ChunkOutput{}
		}
	}
	return nil
}

// publishWorker emits a "fabric_worker" liveness event.
func (co *coordinator) publishWorker(w *workerConn, state string) {
	if co.cfg.Bus == nil {
		return
	}
	co.cfg.Bus.Publish("fabric_worker", w.name,
		obs.String("state", state),
		obs.String("campaign", co.label),
		obs.Int("leases", len(w.leases)),
		obs.Int("chunks_done", w.chunks))
}

// publishLease emits a "fabric_lease" churn event.
func (co *coordinator) publishLease(l *lease, state string) {
	if co.cfg.Bus == nil {
		return
	}
	begin, end := faultsim.ChunkBounds(l.seq, co.trials)
	name := ""
	if l.worker != nil {
		name = l.worker.name
	}
	co.cfg.Bus.Publish("fabric_lease", co.label,
		obs.String("state", state),
		obs.String("worker", name),
		obs.Int("lease", int(l.id)),
		obs.Int("begin", begin),
		obs.Int("end", end))
}

// publishDone emits the terminal "fabric_done" event.
func (co *coordinator) publishDone(res faultsim.Result) {
	if co.cfg.Bus == nil {
		return
	}
	co.cfg.Bus.Publish("fabric_done", co.label,
		obs.Int("trials_done", res.Trials),
		obs.Int("workers_seen", co.stats.WorkersSeen),
		obs.Int("workers_lost", co.stats.WorkersLost),
		obs.Int("leases_granted", co.stats.LeasesGranted),
		obs.Int("leases_expired", co.stats.LeasesExpired),
		obs.Int("reassigned", co.stats.Reassigned),
		obs.Int("duplicates", co.stats.Duplicates),
		obs.Bool("early_stopped", res.EarlyStopped))
}
