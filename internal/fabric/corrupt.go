package fabric

import (
	"context"
	"math/rand/v2"
	"sync"

	"repro/internal/faultsim"
)

// CorruptDialer wraps a worker's dialer so a seeded fraction of its
// outbound result frames carry silently corrupted chunk bytes — a lying
// worker. Where ChaosDialer models a hostile *network* (loss modes the
// lease machinery absorbs), CorruptDialer models a hostile *peer*: the
// frames are well-formed, timely and in-protocol, only the payload is
// wrong. Nothing below the coordinator's spot-check defence can catch
// it, which is exactly what the quarantine certification needs to prove.
// Test/certification-only, like the chaos wrappers.
func CorruptDialer(inner Dialer, seed uint64, rate float64) Dialer {
	var mu sync.Mutex
	var n uint64
	return func(ctx context.Context) (Conn, error) {
		c, err := inner(ctx)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		n++
		streamSeed := seed + 2*n + 1
		mu.Unlock()
		return &corruptConn{
			Conn: c,
			rate: rate,
			rng:  rand.New(rand.NewPCG(streamSeed, streamSeed^0x9e3779b97f4a7c15)),
		}, nil
	}
}

type corruptConn struct {
	Conn
	rate float64

	mu  sync.Mutex
	rng *rand.Rand
}

func (c *corruptConn) Send(f *Frame) error {
	if f.Type != TypeResult || f.Chunk == nil {
		return c.Conn.Send(f)
	}
	c.mu.Lock()
	lie := c.rng.Float64() < c.rate
	var pick int
	if lie {
		pick = c.rng.IntN(3)
	}
	c.mu.Unlock()
	if !lie {
		return c.Conn.Send(f)
	}
	// Deep-copy before mutating: on the in-process pipe transport the
	// coordinator would otherwise see the same memory, and a shared-slice
	// write would be a data race rather than a protocol-level lie.
	g := *f
	g.Chunk = corruptChunk(f.Chunk, pick)
	return c.Conn.Send(&g)
}

// corruptChunk clones ch and perturbs one field — small, plausible
// mutations that keep the chunk well-formed so only byte comparison
// against a local re-evaluation can expose them.
func corruptChunk(ch *faultsim.ChunkOutput, pick int) *faultsim.ChunkOutput {
	out := *ch
	out.CritPerTrial = append([]float64(nil), ch.CritPerTrial...)
	out.EscPerTrial = append([]float64(nil), ch.EscPerTrial...)
	out.AffectedCount = cloneCounts(ch.AffectedCount)
	out.TransmissionCount = cloneCounts(ch.TransmissionCount)
	out.EdgeTrials = cloneCounts(ch.EdgeTrials)
	switch pick {
	case 0:
		out.TotalAffected++
	case 1:
		out.TrialsWithEscape = max(0, out.TrialsWithEscape-1)
	default:
		if len(out.CritPerTrial) > 0 {
			out.CritPerTrial[0]++
		} else {
			out.CriticalAffected++
		}
	}
	return &out
}

func cloneCounts(m map[string]int) map[string]int {
	if m == nil {
		return nil
	}
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
