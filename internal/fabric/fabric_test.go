package fabric

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/attrs"
	"repro/internal/faultsim"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/testutil"
)

// testGraph builds the small two-host web used across the suite.
func testGraph(t *testing.T) (*graph.Graph, map[string]string) {
	t.Helper()
	g := graph.New()
	crits := map[string]float64{"a": 12, "b": 3, "c": 7, "d": 1}
	for _, n := range []string{"a", "b", "c", "d"} {
		if err := g.AddNode(n, attrs.New(map[attrs.Kind]float64{attrs.Criticality: crits[n]})); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []struct {
		from, to string
		w        float64
	}{
		{"a", "b", 0.6}, {"b", "c", 0.4}, {"c", "d", 0.5}, {"d", "a", 0.3}, {"a", "c", 0.2},
	} {
		if err := g.SetEdge(e.from, e.to, e.w); err != nil {
			t.Fatal(err)
		}
	}
	return g, map[string]string{"a": "h1", "b": "h1", "c": "h2", "d": "h2"}
}

func testCampaign(t *testing.T, trials int) faultsim.Campaign {
	t.Helper()
	g, hw := testGraph(t)
	return faultsim.Campaign{
		Graph:             g,
		HWOf:              hw,
		Trials:            trials,
		Seed:              1998,
		CriticalThreshold: 10,
		CommFaultFraction: 0.3,
	}
}

// localReference runs the campaign in-process with one worker — the
// ground truth every fabric topology must reproduce bit-for-bit.
func localReference(t *testing.T, c faultsim.Campaign) faultsim.Result {
	t.Helper()
	c.Workers = 1
	res, err := faultsim.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// fabricHarness runs one coordinator and n workers over an in-process
// pipe, optionally under chaos, and returns the merged result and stats.
type fabricHarness struct {
	ln      Listener
	dial    Dialer
	cfg     Config
	workers int
	wcfg    func(i int) WorkerConfig // optional per-worker overrides
	wctx    func(i int) context.Context
}

func (h *fabricHarness) run(t *testing.T, c faultsim.Campaign) (faultsim.Result, Stats) {
	t.Helper()
	if h.ln == nil {
		pl := NewPipeListener()
		h.ln = pl
		h.dial = pl.Dial()
	}
	cfg := h.cfg
	cfg.Campaign = c
	cfg.Listener = h.ln
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = 2 * time.Second
	}

	type serveOut struct {
		res   faultsim.Result
		stats Stats
		err   error
	}
	ch := make(chan serveOut, 1)
	sctx, scancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer scancel()
	go func() {
		res, stats, err := Serve(sctx, cfg)
		ch <- serveOut{res, stats, err}
	}()

	wctx, wcancel := context.WithCancel(context.Background())
	var wwg sync.WaitGroup
	for i := 0; i < h.workers; i++ {
		wc := WorkerConfig{
			Campaign:         c,
			Dial:             h.dial,
			Name:             fmt.Sprintf("w%d", i),
			HeartbeatEvery:   25 * time.Millisecond,
			HandshakeTimeout: 250 * time.Millisecond,
			BackoffBase:      2 * time.Millisecond,
			BackoffMax:       50 * time.Millisecond,
			MaxReconnects:    200,
			Seed:             uint64(i),
		}
		if h.wcfg != nil {
			wc = h.wcfg(i)
		}
		ctx := wctx
		if h.wctx != nil {
			ctx = h.wctx(i)
		}
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			// Worker exit reasons are checked by dedicated tests; the
			// harness only guarantees they all terminate.
			_ = RunWorker(ctx, wc)
		}()
	}

	out := <-ch
	// The campaign is over (or failed): release any worker still
	// redialling a closed listener.
	wcancel()
	wwg.Wait()
	if out.err != nil {
		t.Fatalf("Serve: %v", out.err)
	}
	return out.res, out.stats
}

func TestFabricMatchesLocal(t *testing.T) {
	testutil.CheckGoroutines(t)
	c := testCampaign(t, 1600)
	want := localReference(t, c)
	for _, n := range []int{1, 4} {
		h := &fabricHarness{workers: n}
		got, stats := h.run(t, c)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%d workers: distributed result differs from Workers=1", n)
		}
		if stats.WorkersSeen != n {
			t.Errorf("%d workers: WorkersSeen = %d", n, stats.WorkersSeen)
		}
		if stats.Duplicates != 0 || stats.LeasesExpired != 0 {
			t.Errorf("%d workers: unexpected churn on a clean transport: %+v", n, stats)
		}
	}
}

func TestFabricKilledWorkerReassigns(t *testing.T) {
	testutil.CheckGoroutines(t)
	c := testCampaign(t, 1600)
	want := localReference(t, c)

	// The victim dies the moment it holds a lease; the chunk must be
	// reassigned and the result must not change.
	bus := obs.NewBus(256)
	defer bus.Close()
	victimCtx, killVictim := context.WithCancel(context.Background())
	defer killVictim()
	sub := bus.Subscribe(0, 256)
	var once sync.Once
	go func() {
		defer sub.Close()
		for {
			ev, ok := sub.Next(nil)
			if !ok {
				return
			}
			if ev.Kind == "fabric_lease" && ev.Attrs["worker"] == "victim" && ev.Attrs["state"] == "grant" {
				once.Do(killVictim)
			}
		}
	}()

	h := &fabricHarness{
		workers: 4,
		cfg:     Config{Bus: bus, LeaseTTL: 2 * time.Second},
		wcfg: func(i int) WorkerConfig {
			name := fmt.Sprintf("w%d", i)
			if i == 0 {
				name = "victim"
			}
			return WorkerConfig{
				Campaign: testCampaign(t, 1600), Name: name,
				HeartbeatEvery: 25 * time.Millisecond,
				BackoffBase:    2 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
				MaxReconnects: 200, Seed: uint64(i),
			}
		},
		wctx: func(i int) context.Context {
			if i == 0 {
				return victimCtx
			}
			return context.Background()
		},
	}
	// The harness's wcfg above rebuilds the campaign but the dialer comes
	// from the harness; wire it after construction.
	pl := NewPipeListener()
	h.ln = pl
	h.dial = pl.Dial()
	base := h.wcfg
	h.wcfg = func(i int) WorkerConfig {
		wc := base(i)
		wc.Dial = pl.Dial()
		return wc
	}

	got, stats := h.run(t, c)
	if !reflect.DeepEqual(got, want) {
		t.Error("result with a killed worker differs from Workers=1")
	}
	if stats.WorkersLost == 0 {
		t.Errorf("expected at least one lost worker: %+v", stats)
	}
	if stats.Reassigned == 0 {
		t.Errorf("expected reassigned chunks after the kill: %+v", stats)
	}
}

func TestFabricChaosBitIdentical(t *testing.T) {
	testutil.CheckGoroutines(t)
	c := testCampaign(t, 1280)
	want := localReference(t, c)

	chaos := ChaosConfig{Seed: 7, Drop: 0.05, Dup: 0.08, Delay: 0.15, MaxDelay: 10 * time.Millisecond}
	pl := NewPipeListener()
	h := &fabricHarness{
		ln:      ChaosListener(pl, chaos),
		dial:    ChaosDialer(pl.Dial(), chaos),
		workers: 3,
		cfg:     Config{LeaseTTL: 150 * time.Millisecond},
	}
	got, stats := h.run(t, c)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("result under chaos transport differs from Workers=1 (stats %+v)", stats)
	}
}

func TestFabricDuplicateResultsSuppressed(t *testing.T) {
	testutil.CheckGoroutines(t)
	c := testCampaign(t, 640) // 10 chunks
	want := localReference(t, c)

	pl := NewPipeListener()
	type serveOut struct {
		res   faultsim.Result
		stats Stats
		err   error
	}
	ch := make(chan serveOut, 1)
	go func() {
		res, stats, err := Serve(context.Background(), Config{
			Campaign: c, Listener: pl, LeaseTTL: 5 * time.Second,
		})
		ch <- serveOut{res, stats, err}
	}()

	// A hand-rolled worker that speaks the protocol directly and sends
	// every result twice.
	runner, err := faultsim.NewChunkRunner(c)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := pl.Dial()(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(&Frame{Type: TypeHello, Proto: Proto, Fingerprint: c.Fingerprint(), Worker: "dup"}); err != nil {
		t.Fatal(err)
	}
	for done := false; !done; {
		f, err := conn.Recv()
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		switch f.Type {
		case TypeWelcome:
		case TypeCampaign: // v2 ships the spec; this worker is flag-configured
		case TypeLease:
			out, err := runner.Run(context.Background(), f.Begin, f.End)
			if err != nil {
				t.Fatal(err)
			}
			res := &Frame{Type: TypeResult, Lease: f.Lease, Epoch: f.Epoch, Begin: f.Begin, End: f.End, Chunk: out}
			if err := conn.Send(res); err != nil {
				t.Fatal(err)
			}
			if err := conn.Send(res); err != nil { // the duplicate
				t.Fatal(err)
			}
		case TypeDone:
			done = true
		default:
			t.Fatalf("unexpected frame %q", f.Type)
		}
	}
	out := <-ch
	if out.err != nil {
		t.Fatal(out.err)
	}
	if !reflect.DeepEqual(out.res, want) {
		t.Error("result with duplicated result frames differs from Workers=1")
	}
	// Every chunk was sent twice; the duplicate of the final chunk may
	// arrive after the campaign completed and the coordinator exited.
	if min := faultsim.NumChunks(c.Trials) - 1; out.stats.Duplicates < min {
		t.Errorf("Duplicates = %d, want >= %d (every chunk sent twice)", out.stats.Duplicates, min)
	}
}

func TestFabricRejectsFingerprintMismatch(t *testing.T) {
	testutil.CheckGoroutines(t)
	c := testCampaign(t, 640)

	pl := NewPipeListener()
	type serveOut struct {
		stats Stats
		err   error
	}
	ch := make(chan serveOut, 1)
	go func() {
		_, stats, err := Serve(context.Background(), Config{Campaign: c, Listener: pl})
		ch <- serveOut{stats, err}
	}()

	// A worker whose campaign differs (other seed → other fingerprint)
	// must be refused permanently, not retried.
	bad := testCampaign(t, 640)
	bad.Seed = 999
	err := RunWorker(context.Background(), WorkerConfig{
		Campaign: bad, Dial: pl.Dial(), Name: "bad",
		BackoffBase: time.Millisecond, MaxReconnects: 3,
	})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("mismatched worker err = %v, want ErrRejected", err)
	}

	// A matching worker then completes the campaign.
	if err := RunWorker(context.Background(), WorkerConfig{
		Campaign: c, Dial: pl.Dial(), Name: "good",
		HeartbeatEvery: 25 * time.Millisecond, BackoffBase: time.Millisecond, MaxReconnects: 50,
	}); err != nil {
		t.Fatalf("good worker: %v", err)
	}
	out := <-ch
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.stats.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", out.stats.Rejected)
	}
}

func TestFabricRejectsProtoMismatch(t *testing.T) {
	testutil.CheckGoroutines(t)
	c := testCampaign(t, 640)
	pl := NewPipeListener()
	sctx, scancel := context.WithCancel(context.Background())
	ch := make(chan error, 1)
	go func() {
		_, _, err := Serve(sctx, Config{Campaign: c, Listener: pl})
		ch <- err
	}()
	conn, err := pl.Dial()(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(&Frame{Type: TypeHello, Proto: Proto + 1, Fingerprint: c.Fingerprint()}); err != nil {
		t.Fatal(err)
	}
	f, err := conn.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if f.Type != TypeReject {
		t.Fatalf("frame = %q, want reject", f.Type)
	}
	scancel()
	if err := <-ch; !errors.Is(err, context.Canceled) {
		t.Fatalf("Serve err = %v, want context.Canceled", err)
	}
}

func TestFabricOverTCP(t *testing.T) {
	testutil.CheckGoroutines(t)
	c := testCampaign(t, 1280)
	want := localReference(t, c)

	ln, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h := &fabricHarness{ln: ln, dial: DialTCP(ln.Addr()), workers: 2}
	got, stats := h.run(t, c)
	if !reflect.DeepEqual(got, want) {
		t.Error("TCP result differs from Workers=1")
	}
	if stats.WorkersSeen != 2 {
		t.Errorf("WorkersSeen = %d, want 2", stats.WorkersSeen)
	}
}

func TestFabricEarlyStopMatchesLocal(t *testing.T) {
	testutil.CheckGoroutines(t)
	c := testCampaign(t, 6400)
	c.StopHalfWidth = 0.05 // stops well before 6400 trials
	want := localReference(t, c)
	if !want.EarlyStopped {
		t.Fatal("reference run did not early-stop; widen the test")
	}
	h := &fabricHarness{workers: 4}
	got, _ := h.run(t, c)
	if !reflect.DeepEqual(got, want) {
		t.Error("early-stopped distributed result differs from Workers=1")
	}
}

func TestFabricDrainPersistsAndResumes(t *testing.T) {
	testutil.CheckGoroutines(t)
	base := testCampaign(t, 1600)
	want := localReference(t, base)

	path := filepath.Join(t.TempDir(), "fabric.ckpt")
	ck := base
	ck.CheckpointPath = path
	ck.CheckpointEvery = 64

	// Phase 1: drain the coordinator once a few chunks have merged.
	bus := obs.NewBus(256)
	defer bus.Close()
	sctx, drain := context.WithCancel(context.Background())
	defer drain()
	sub := bus.Subscribe(0, 256)
	var once sync.Once
	go func() {
		defer sub.Close()
		n := 0
		for {
			ev, ok := sub.Next(nil)
			if !ok {
				return
			}
			if ev.Kind == "fabric_lease" && ev.Attrs["state"] == "result" {
				if n++; n >= 5 {
					once.Do(drain)
				}
			}
		}
	}()

	pl := NewPipeListener()
	type serveOut struct {
		stats Stats
		err   error
	}
	ch := make(chan serveOut, 1)
	go func() {
		_, stats, err := Serve(sctx, Config{Campaign: ck, Listener: pl, Bus: bus})
		ch <- serveOut{stats, err}
	}()
	werr := make(chan error, 1)
	go func() {
		werr <- RunWorker(context.Background(), WorkerConfig{
			Campaign: base, Dial: pl.Dial(), Name: "w0",
			HeartbeatEvery: 25 * time.Millisecond, BackoffBase: time.Millisecond, MaxReconnects: 5,
		})
	}()
	out := <-ch
	if !errors.Is(out.err, context.Canceled) {
		t.Fatalf("drained Serve err = %v, want context.Canceled", out.err)
	}
	if err := <-werr; !errors.Is(err, ErrDrained) {
		t.Fatalf("worker err = %v, want ErrDrained", err)
	}

	// Phase 2: a restarted coordinator resumes from the checkpoint and
	// finishes; the final result is still bit-identical, and fewer leases
	// were granted than a fresh run needs.
	rs := ck
	rs.Resume = true
	h := &fabricHarness{workers: 2}
	got, stats := h.run(t, rs)
	if !reflect.DeepEqual(got, want) {
		t.Error("resumed fabric result differs from Workers=1")
	}
	if total := faultsim.NumChunks(base.Trials); stats.LeasesGranted >= total {
		t.Errorf("resumed run granted %d leases, want < %d (frontier was persisted)", stats.LeasesGranted, total)
	}
}

func TestWorkerBackoffGivesUpAndHonoursContext(t *testing.T) {
	testutil.CheckGoroutines(t)
	c := testCampaign(t, 640)
	failDial := func(ctx context.Context) (Conn, error) {
		return nil, errors.New("connection refused")
	}
	err := RunWorker(context.Background(), WorkerConfig{
		Campaign: c, Dial: failDial,
		BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond, MaxReconnects: 3,
	})
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}

	// Cancellation must cut a long backoff short.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(ctx, WorkerConfig{
			Campaign: c, Dial: failDial,
			BackoffBase: time.Minute, BackoffMax: time.Minute, MaxReconnects: 100,
		})
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not honour context cancellation during backoff")
	}
}

func TestCodecRoundTripAndLimits(t *testing.T) {
	testutil.CheckGoroutines(t)
	// The pipe transport skips the codec; exercise it over TCP loopback.
	ln, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan Conn, 2)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	conn, err := DialTCP(ln.Addr())(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	srv := <-accepted
	defer srv.Close()

	in := &Frame{Type: TypeLease, Lease: 42, Begin: 128, End: 192}
	if err := conn.Send(in); err != nil {
		t.Fatal(err)
	}
	got, err := srv.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Errorf("round-trip mismatch: %+v != %+v", got, in)
	}

	// A hostile length prefix is refused before any allocation happens.
	raw, err := net.Dial("tcp", ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	srv2 := <-accepted
	defer srv2.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrameSize+1)
	if _, err := raw.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := srv2.Recv(); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("hostile prefix Recv err = %v, want ErrFrameTooLarge", err)
	}
}
