package fabric

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultsim"
	"repro/internal/obs"
	"repro/internal/testutil"
)

// flaglessWorker is the harness override for a worker with no campaign
// flags: it must self-configure from the shipped spec.
func flaglessWorker(dial Dialer, i int) WorkerConfig {
	return WorkerConfig{
		Dial:             dial,
		Name:             fmt.Sprintf("w%d", i),
		HeartbeatEvery:   25 * time.Millisecond,
		HandshakeTimeout: 250 * time.Millisecond,
		BackoffBase:      2 * time.Millisecond,
		BackoffMax:       50 * time.Millisecond,
		MaxReconnects:    200,
		Seed:             uint64(i),
	}
}

func TestSpotCheckedDeterministicAndDense(t *testing.T) {
	const chunks = 4096
	// Identical inputs always select identically — arrival order, worker
	// identity and wall clock are not inputs.
	for seq := 0; seq < 64; seq++ {
		if SpotChecked(42, 3, seq, 0.25) != SpotChecked(42, 3, seq, 0.25) {
			t.Fatalf("SpotChecked(42, 3, %d, 0.25) is not deterministic", seq)
		}
	}
	// Density tracks the fraction.
	for _, frac := range []float64{0.05, 0.25, 0.75} {
		hits := 0
		for seq := 0; seq < chunks; seq++ {
			if SpotChecked(1998, 1, seq, frac) {
				hits++
			}
		}
		got := float64(hits) / chunks
		if math.Abs(got-frac) > 0.05 {
			t.Errorf("frac %.2f: selected %.3f of %d chunks", frac, got, chunks)
		}
	}
	// Edge fractions.
	if SpotChecked(1, 1, 7, 0) {
		t.Error("frac 0 selected a chunk")
	}
	if !SpotChecked(1, 1, 7, 1) {
		t.Error("frac 1 skipped a chunk")
	}
	// Different seeds and epochs pick different sets.
	same := 0
	for seq := 0; seq < chunks; seq++ {
		if SpotChecked(1, 1, seq, 0.5) == SpotChecked(2, 1, seq, 0.5) {
			same++
		}
	}
	if same == chunks {
		t.Error("seed does not influence spot-check selection")
	}
}

// TestFabricLyingWorkerQuarantined is the satellite coverage for the
// quarantine defence: with 1 of 4 workers corrupting every result, the
// liar is quarantined off its first divergent chunk and the merged
// result stays bit-identical to Workers=1.
func TestFabricLyingWorkerQuarantined(t *testing.T) {
	testutil.CheckGoroutines(t)
	c := testCampaign(t, 1600)
	want := localReference(t, c)

	pl := NewPipeListener()
	h := &fabricHarness{
		ln:      pl,
		dial:    pl.Dial(),
		workers: 4,
		cfg:     Config{SpotCheck: 0.25, LeaseTTL: 2 * time.Second},
		wcfg: func(i int) WorkerConfig {
			wc := flaglessWorker(pl.Dial(), i)
			wc.Campaign = testCampaign(t, 1600)
			if i == 0 {
				wc.Name = "liar"
				wc.Dial = CorruptDialer(pl.Dial(), 7, 1) // corrupts every result
			}
			return wc
		},
	}
	got, stats := h.run(t, c)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("result with a lying worker differs from Workers=1 (stats %+v)", stats)
	}
	if stats.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1 (stats %+v)", stats.Quarantined, stats)
	}
}

// TestFabricAllLiarsFallsBackLocal: when the only worker lies, the
// coordinator quarantines it and finishes the campaign itself —
// graceful degradation to local execution, still bit-identical.
func TestFabricAllLiarsFallsBackLocal(t *testing.T) {
	testutil.CheckGoroutines(t)
	c := testCampaign(t, 640)
	want := localReference(t, c)

	bus := obs.NewBus(256)
	defer bus.Close()
	quarantines := make(chan obs.BusEvent, 16)
	sub := bus.Subscribe(0, 256)
	go func() {
		defer sub.Close()
		for {
			ev, ok := sub.Next(nil)
			if !ok {
				return
			}
			if ev.Kind == "fabric_quarantine" {
				select {
				case quarantines <- ev:
				default:
				}
			}
		}
	}()

	pl := NewPipeListener()
	h := &fabricHarness{
		ln:      pl,
		dial:    pl.Dial(),
		workers: 1,
		cfg:     Config{SpotCheck: 0.25, LeaseTTL: 2 * time.Second, Bus: bus},
		wcfg: func(i int) WorkerConfig {
			wc := flaglessWorker(CorruptDialer(pl.Dial(), 11, 1), i)
			wc.Name = "liar"
			return wc
		},
	}
	got, stats := h.run(t, c)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("local-fallback result differs from Workers=1 (stats %+v)", stats)
	}
	if stats.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1", stats.Quarantined)
	}
	if stats.LocalChunks == 0 {
		t.Errorf("LocalChunks = 0, want > 0 (fallback never engaged; stats %+v)", stats)
	}
	select {
	case ev := <-quarantines:
		if ev.Name != "liar" {
			t.Errorf("fabric_quarantine names %q, want \"liar\"", ev.Name)
		}
	case <-time.After(5 * time.Second):
		t.Error("no fabric_quarantine event observed")
	}
}

// TestFabricFlaglessWorkersSelfConfigure: workers launched with no
// campaign at all adopt the shipped spec (after verifying it against its
// claimed fingerprint) and the result stays bit-identical.
func TestFabricFlaglessWorkersSelfConfigure(t *testing.T) {
	testutil.CheckGoroutines(t)
	c := testCampaign(t, 1600)
	want := localReference(t, c)

	pl := NewPipeListener()
	h := &fabricHarness{
		ln:      pl,
		dial:    pl.Dial(),
		workers: 4,
		wcfg:    func(i int) WorkerConfig { return flaglessWorker(pl.Dial(), i) },
	}
	got, stats := h.run(t, c)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("flagless-worker result differs from Workers=1 (stats %+v)", stats)
	}
	if stats.WorkersSeen != 4 {
		t.Errorf("WorkersSeen = %d, want 4", stats.WorkersSeen)
	}
}

// TestFabricFlaglessUnderChaos drops/duplicates/delays frames in both
// directions with flagless workers: the campaign frame itself can be
// lost, so this exercises the need_campaign recovery path.
func TestFabricFlaglessUnderChaos(t *testing.T) {
	testutil.CheckGoroutines(t)
	c := testCampaign(t, 1600)
	want := localReference(t, c)

	pl := NewPipeListener()
	chaos := ChaosConfig{Seed: 13, Drop: 0.15, Dup: 0.15, Delay: 0.2, MaxDelay: 10 * time.Millisecond}
	h := &fabricHarness{
		ln:      ChaosListener(pl, chaos),
		dial:    pl.Dial(),
		workers: 3,
		cfg:     Config{LeaseTTL: 150 * time.Millisecond},
		wcfg: func(i int) WorkerConfig {
			return flaglessWorker(ChaosDialer(pl.Dial(), chaos), i)
		},
	}
	got, stats := h.run(t, c)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("flagless chaos result differs from Workers=1 (stats %+v)", stats)
	}
}

// TestFabricAuth covers the shared-token handshake: matching tokens
// complete (bit-identical), a wrong token is terminally rejected on the
// worker side (mutual auth fails before the worker sends anything
// campaign-shaped), and a token-less worker refuses a challenging
// coordinator.
func TestFabricAuth(t *testing.T) {
	testutil.CheckGoroutines(t)
	c := testCampaign(t, 640)
	want := localReference(t, c)

	pl := NewPipeListener()
	type serveOut struct {
		res   faultsim.Result
		stats Stats
		err   error
	}
	ch := make(chan serveOut, 1)
	go func() {
		res, stats, err := Serve(context.Background(), Config{
			Campaign: c, Listener: pl, LeaseTTL: 2 * time.Second, AuthToken: "sesame",
		})
		ch <- serveOut{res, stats, err}
	}()

	// Wrong token: the coordinator's challenge MAC does not verify under
	// the worker's key — terminal ErrRejected, no redial storm.
	wc := flaglessWorker(pl.Dial(), 0)
	wc.Name = "intruder"
	wc.AuthToken = "wrong"
	if err := RunWorker(context.Background(), wc); !errors.Is(err, ErrRejected) {
		t.Errorf("wrong token: err = %v, want ErrRejected", err)
	}
	// No token at all against an authenticated coordinator.
	wc = flaglessWorker(pl.Dial(), 1)
	wc.Name = "anon"
	if err := RunWorker(context.Background(), wc); !errors.Is(err, ErrRejected) {
		t.Errorf("missing token: err = %v, want ErrRejected", err)
	}
	// Matching token: completes and stays bit-identical.
	wc = flaglessWorker(pl.Dial(), 2)
	wc.Name = "legit"
	wc.AuthToken = "sesame"
	if err := RunWorker(context.Background(), wc); err != nil {
		t.Errorf("matching token: %v", err)
	}
	out := <-ch
	if out.err != nil {
		t.Fatal(out.err)
	}
	if !reflect.DeepEqual(out.res, want) {
		t.Error("authenticated result differs from Workers=1")
	}
	if out.stats.WorkersSeen != 1 {
		t.Errorf("WorkersSeen = %d, want 1 (only the matching token)", out.stats.WorkersSeen)
	}
}

// TestFabricAuthLeaksNothingPreAuth drives the handshake raw: a dialer
// that cannot answer the challenge must see no fingerprint, no spec, no
// trials and no lease before its rejection — only the challenge itself.
func TestFabricAuthLeaksNothingPreAuth(t *testing.T) {
	testutil.CheckGoroutines(t)
	c := testCampaign(t, 640)

	pl := NewPipeListener()
	sctx, scancel := context.WithCancel(context.Background())
	ch := make(chan error, 1)
	go func() {
		_, _, err := Serve(sctx, Config{Campaign: c, Listener: pl, LeaseTTL: time.Second, AuthToken: "sesame"})
		ch <- err
	}()
	defer func() {
		scancel()
		<-ch
	}()

	conn, err := pl.Dial()(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(&Frame{Type: TypeHello, Proto: Proto, Worker: "spy", Nonce: "00"}); err != nil {
		t.Fatal(err)
	}
	var challenge *Frame
	deadline := time.After(5 * time.Second)
	recvOne := func() *Frame {
		type recvOut struct {
			f   *Frame
			err error
		}
		rc := make(chan recvOut, 1)
		go func() {
			f, err := conn.Recv()
			rc <- recvOut{f, err}
		}()
		select {
		case out := <-rc:
			if out.err != nil {
				t.Fatalf("recv: %v", out.err)
			}
			return out.f
		case <-deadline:
			t.Fatal("no frame from coordinator")
			return nil
		}
	}
	challenge = recvOne()
	if challenge.Type != TypeChallenge {
		t.Fatalf("first frame is %q, want challenge", challenge.Type)
	}
	if challenge.Fingerprint != "" || challenge.Spec != nil || challenge.Trials != 0 || challenge.Lease != 0 {
		t.Fatalf("challenge leaks campaign material: %+v", challenge)
	}
	// Answer with garbage; the rejection must also carry nothing.
	if err := conn.Send(&Frame{Type: TypeAuth, MAC: "deadbeef"}); err != nil {
		t.Fatal(err)
	}
	verdict := recvOne()
	if verdict.Type != TypeReject {
		t.Fatalf("frame after bad auth is %q, want reject", verdict.Type)
	}
	if verdict.Fingerprint != "" || verdict.Spec != nil {
		t.Fatalf("reject leaks campaign material: %+v", verdict)
	}
	if !strings.Contains(verdict.Reason, "authentication") {
		t.Errorf("reject reason %q does not mention authentication", verdict.Reason)
	}
}

// TestFabricOverTLS runs a full campaign over mutual TLS plus the token
// handshake — the trust-domain-crossing configuration end to end.
func TestFabricOverTLS(t *testing.T) {
	testutil.CheckGoroutines(t)
	certs, err := WriteEphemeralCerts(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := testCampaign(t, 640)
	want := localReference(t, c)

	ln, err := ListenTLS("127.0.0.1:0", certs.ServerCertFile, certs.ServerKeyFile, certs.CAFile)
	if err != nil {
		t.Fatal(err)
	}
	dial, err := DialTLS(ln.Addr(), certs.ClientCertFile, certs.ClientKeyFile, certs.CAFile)
	if err != nil {
		t.Fatal(err)
	}
	h := &fabricHarness{
		ln:      ln,
		dial:    dial,
		workers: 2,
		cfg:     Config{LeaseTTL: 2 * time.Second, AuthToken: "sesame"},
		wcfg: func(i int) WorkerConfig {
			wc := flaglessWorker(dial, i)
			wc.AuthToken = "sesame"
			return wc
		},
	}
	got, stats := h.run(t, c)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TLS result differs from Workers=1 (stats %+v)", stats)
	}
	if stats.WorkersSeen != 2 {
		t.Errorf("WorkersSeen = %d, want 2", stats.WorkersSeen)
	}
}

// TestFabricServeSearchMatchesLocal is the fabric-sharded adversarial
// search contract: ServeSearch over 1 and 4 flagless workers returns a
// SearchResult reflect.DeepEqual-identical to the local Search.
func TestFabricServeSearchMatchesLocal(t *testing.T) {
	testutil.CheckGoroutines(t)
	g, hw := testGraph(t)
	scfg := faultsim.SearchConfig{
		Graph:             g,
		HWOf:              hw,
		Trials:            320,
		Seed:              1998,
		MaxEvals:          6,
		CriticalThreshold: 10,
	}
	want, err := faultsim.Search(scfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{1, 4} {
		pl := NewPipeListener()
		type searchOut struct {
			res   faultsim.SearchResult
			stats Stats
			err   error
		}
		ch := make(chan searchOut, 1)
		go func() {
			res, stats, err := ServeSearch(context.Background(), Config{
				Listener: pl, LeaseTTL: 2 * time.Second, SpotCheck: 0.2, Label: "search",
			}, scfg)
			ch <- searchOut{res, stats, err}
		}()
		wctx, wcancel := context.WithCancel(context.Background())
		var wwg sync.WaitGroup
		for i := 0; i < n; i++ {
			wwg.Add(1)
			go func(i int) {
				defer wwg.Done()
				_ = RunWorker(wctx, flaglessWorker(pl.Dial(), i))
			}(i)
		}
		out := <-ch
		wcancel()
		wwg.Wait()
		if out.err != nil {
			t.Fatalf("%d workers: ServeSearch: %v", n, out.err)
		}
		if !reflect.DeepEqual(out.res, want) {
			t.Errorf("%d workers: fabric-sharded search differs from local Search", n)
		}
		if out.stats.WorkersSeen != n {
			t.Errorf("%d workers: WorkersSeen = %d", n, out.stats.WorkersSeen)
		}
	}
}

// TestFabricRelayDeterminism certifies the federation contract: turning
// the telemetry relay on (bus + observer, including a subscriber that
// never drains) must not perturb the merged result by a single bit at
// any worker count, while actually relaying every chunk's phase spans.
func TestFabricRelayDeterminism(t *testing.T) {
	testutil.CheckGoroutines(t)
	c := testCampaign(t, 1600)
	want := localReference(t, c)
	for _, n := range []int{1, 4} {
		bus := obs.NewBus(64)
		observer := obs.New(obs.WithBus(bus))
		// A jammed subscriber: tiny ring, never drained. Backpressure must
		// land on the subscriber's drop counter, never on the protocol.
		stuck := bus.Subscribe(0, 4)
		h := &fabricHarness{workers: n, cfg: Config{Bus: bus, Observer: observer}}
		got, stats := h.run(t, c)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%d workers: relay-on result differs from Workers=1", n)
		}
		if stats.Duplicates != 0 || stats.LeasesExpired != 0 {
			t.Errorf("%d workers: unexpected churn with relay on: %+v", n, stats)
		}
		spans := observer.RemoteSpans()
		if wantSpans := 3 * faultsim.NumChunks(c.Trials); len(spans) != wantSpans {
			t.Errorf("%d workers: %d remote spans relayed, want %d (3 per chunk)", n, len(spans), wantSpans)
		}
		for _, rs := range spans {
			if rs.Worker == "" || rs.Parent == 0 || rs.ID == 0 || rs.DurUS < 0 {
				t.Fatalf("%d workers: malformed remote span %+v", n, rs)
			}
		}
		stuck.Close()
		bus.Close()
	}
}

// TestFabricRelayUnderChaos runs the relay over a dropping, duplicating,
// delaying transport with real lease expiries: the merge must stay
// bit-identical, and relayed evaluate spans may be lost with their
// frames but never duplicated — dup suppression covers telemetry too.
func TestFabricRelayUnderChaos(t *testing.T) {
	testutil.CheckGoroutines(t)
	c := testCampaign(t, 1600)
	want := localReference(t, c)
	chaos := ChaosConfig{Seed: 7, Drop: 0.05, Dup: 0.08, Delay: 0.15, MaxDelay: 10 * time.Millisecond}
	pl := NewPipeListener()
	bus := obs.NewBus(1 << 12)
	defer bus.Close()
	observer := obs.New(obs.WithBus(bus))
	h := &fabricHarness{
		ln:      ChaosListener(pl, chaos),
		dial:    ChaosDialer(pl.Dial(), chaos),
		workers: 3,
		cfg:     Config{Bus: bus, Observer: observer, LeaseTTL: 150 * time.Millisecond},
	}
	got, _ := h.run(t, c)
	if !reflect.DeepEqual(got, want) {
		t.Error("chaos + relay: merged result differs from Workers=1")
	}
	seen := map[int]int{}
	for _, rs := range observer.RemoteSpans() {
		if rs.Name == "evaluate" {
			if seen[rs.Chunk]++; seen[rs.Chunk] > 1 {
				t.Fatalf("chunk %d evaluate span relayed twice", rs.Chunk)
			}
		}
	}
	if len(seen) == 0 {
		t.Error("chaos + relay: no evaluate spans survived")
	}
}

// TestFabricServeSearchRelay certifies that the fabric-sharded search
// stays bit-identical to the local Search with the relay on, across the
// per-evaluation epoch rollovers, and that spans are relayed throughout.
func TestFabricServeSearchRelay(t *testing.T) {
	testutil.CheckGoroutines(t)
	g, hw := testGraph(t)
	scfg := faultsim.SearchConfig{
		Graph:             g,
		HWOf:              hw,
		Trials:            320,
		Seed:              1998,
		MaxEvals:          6,
		CriticalThreshold: 10,
	}
	want, err := faultsim.Search(scfg)
	if err != nil {
		t.Fatal(err)
	}

	bus := obs.NewBus(1 << 12)
	defer bus.Close()
	observer := obs.New(obs.WithBus(bus))
	pl := NewPipeListener()
	type searchOut struct {
		res faultsim.SearchResult
		err error
	}
	ch := make(chan searchOut, 1)
	go func() {
		res, _, err := ServeSearch(context.Background(), Config{
			Listener: pl, LeaseTTL: 2 * time.Second, Label: "search",
			Bus: bus, Observer: observer,
		}, scfg)
		ch <- searchOut{res, err}
	}()
	wctx, wcancel := context.WithCancel(context.Background())
	var wwg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wwg.Add(1)
		go func(i int) {
			defer wwg.Done()
			_ = RunWorker(wctx, flaglessWorker(pl.Dial(), i))
		}(i)
	}
	out := <-ch
	wcancel()
	wwg.Wait()
	if out.err != nil {
		t.Fatalf("ServeSearch: %v", out.err)
	}
	if !reflect.DeepEqual(out.res, want) {
		t.Error("relay-on fabric search differs from local Search")
	}
	if len(observer.RemoteSpans()) == 0 {
		t.Error("search relayed no remote spans")
	}
}
