// Package fabric is the distributed campaign fabric: a coordinator/worker
// protocol that shards fault-injection campaign trial ranges across
// processes or machines while keeping the merged Result bit-identical to
// a single-process run at any topology — ROADMAP item 3.
//
// The protocol is deliberately application-layer (per De Florio's
// application-layer fault-tolerance argument): leases, heartbeats,
// retry/backoff and reassignment live where the trial-frontier semantics
// live, not in the transport. The transport only has to move frames; it
// is allowed to drop, delay, duplicate or sever them (see Chaos), because
// every loss mode maps onto the lease state machine:
//
//   - a lost lease or result frame expires the lease → the chunk is
//     reassigned;
//   - a duplicated result frame hits the completed-chunk set → suppressed;
//   - a severed connection queues the worker's leases for reassignment
//     and the worker redials with bounded exponential backoff.
//
// Determinism is inherited from faultsim's substream contract: a chunk's
// content is a pure function of (campaign, chunk bounds), so it does not
// matter which worker computes it, how often, or in what order results
// arrive — the coordinator merges strictly in grid order through
// faultsim.Merger and the Result is DeepEqual-identical to Workers=1.
// docs/fabric/protocol.md describes the frames, the lease state machine
// and the determinism argument in full.
package fabric

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/faultsim"
	"repro/internal/obs"
)

// Proto is the fabric wire-protocol version. A hello carrying any other
// version is rejected before fingerprints are even compared. v2 added
// campaign shipping (self-configuring workers), HMAC challenge-response
// authentication, per-campaign epochs and quarantine; v1 peers are
// rejected at hello.
const Proto = 2

// Frame types. The zero value of unused fields is elided on the wire.
const (
	// TypeHello is the worker's opening frame: proto version, campaign
	// fingerprint and worker name.
	TypeHello = "hello"
	// TypeWelcome accepts a hello; Trials carries the campaign's total
	// trial count as a sanity echo.
	TypeWelcome = "welcome"
	// TypeReject refuses a hello (protocol or fingerprint mismatch);
	// Reason says why. The connection closes after it.
	TypeReject = "reject"
	// TypeLease grants the worker one grid chunk [Begin, End) under lease
	// Lease; the worker must deliver its result (or keep heartbeating)
	// before the coordinator's lease TTL expires.
	TypeLease = "lease"
	// TypeResult delivers a computed chunk back under its lease.
	TypeResult = "result"
	// TypeHeartbeat renews exactly the leases listed in the frame's
	// Leases field (see Frame.Leases for why never all of them).
	TypeHeartbeat = "heartbeat"
	// TypeDrain tells the worker the coordinator is shutting down without
	// completing the campaign (graceful SIGTERM drain); the worker exits
	// with ErrDrained instead of redialling.
	TypeDrain = "drain"
	// TypeDone tells the worker the campaign completed; the worker exits
	// cleanly.
	TypeDone = "done"
	// TypeChallenge is the coordinator's authentication challenge when a
	// shared token is configured: it carries a fresh nonce the worker must
	// MAC, plus the coordinator's own MAC over the hello nonce (mutual
	// authentication). Sent instead of welcome; nothing campaign-related
	// crosses the wire until the worker's auth frame verifies.
	TypeChallenge = "challenge"
	// TypeAuth answers a challenge: MAC is HMAC-SHA256(token, nonce) over
	// the challenge nonce, and Fingerprint carries the (deferred) campaign
	// fingerprint the hello would otherwise have sent in the clear.
	TypeAuth = "auth"
	// TypeCampaign ships the full encoded campaign spec (self-configuring
	// workers): Spec is the wire campaign, Fingerprint its claimed
	// fingerprint (the worker re-derives and compares), Epoch the
	// coordinator's campaign epoch that scopes every lease and result.
	TypeCampaign = "campaign"
	// TypeNeedCampaign asks the coordinator to (re)send the campaign frame
	// — the worker saw a lease for an epoch it has no spec for (the
	// campaign frame was lost in transit).
	TypeNeedCampaign = "need_campaign"
)

// Frame is one protocol message. All frame types share the struct; the
// Type tag says which fields are meaningful.
type Frame struct {
	Type string `json:"type"`
	// Hello / Welcome / Reject.
	Proto       int    `json:"proto,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Worker      string `json:"worker,omitempty"`
	Reason      string `json:"reason,omitempty"`
	Trials      int    `json:"trials,omitempty"`
	// Hello / Challenge / Auth: authentication material. Nonce is a fresh
	// random hex string from the frame's sender; MAC is HMAC-SHA256 keyed
	// by the shared token over the peer's nonce.
	Nonce string `json:"nonce,omitempty"`
	MAC   string `json:"mac,omitempty"`
	// Campaign / Lease / Result: Epoch scopes leases and results to one
	// campaign run on a long-lived coordinator (the fabric-sharded search
	// runs many campaigns over one worker set). Epochs start at 1; a
	// worker at epoch 0 is unconfigured.
	Epoch uint64 `json:"epoch,omitempty"`
	// Campaign: the full encoded spec a flagless worker configures from.
	Spec *faultsim.WireCampaign `json:"spec,omitempty"`
	// Lease / Result.
	Lease uint64                `json:"lease,omitempty"`
	Begin int                   `json:"begin,omitempty"`
	End   int                   `json:"end,omitempty"`
	Chunk *faultsim.ChunkOutput `json:"chunk,omitempty"`
	// Heartbeat / Result: the lease ids the worker currently holds. The
	// coordinator renews exactly these — a lease missing from the list
	// (its grant frame was lost in transit) is deliberately left to
	// expire, which is what reassigns it. Renewing blindly on any sign of
	// life would keep a lost grant alive forever.
	Leases []uint64 `json:"leases,omitempty"`

	// Telemetry federation (all optional; every field is elided when the
	// coordinator runs with telemetry off, so the relay-disabled wire
	// format is byte-identical to protocol v2 without it).
	//
	// Campaign: Trace is the coordinator-assigned run-scoped trace id.
	// Its presence is what switches a worker's relay on; the per-chunk
	// span context is the lease id itself (grant frames already carry
	// it), so child spans need no extra fields.
	Trace string `json:"trace,omitempty"`
	// Clock normalisation. Coordinator frames (campaign/lease) carry TS,
	// the coordinator clock in unix microseconds at send. A worker frame
	// (heartbeat/result) echoes the most recent TS in EchoTS, along with
	// HoldUS — the worker-measured microseconds between receiving that
	// stamp and replying — and WTS, the worker clock at reply, letting
	// the coordinator estimate the worker's clock offset from the RTT
	// midpoint (obs.EstimateOffset) and rebase relayed timestamps.
	TS     int64 `json:"ts,omitempty"`
	EchoTS int64 `json:"echo_ts,omitempty"`
	HoldUS int64 `json:"hold_us,omitempty"`
	WTS    int64 `json:"wts,omitempty"`
	// Result / Heartbeat: completed remote span records and relayed
	// worker bus events, bounded per frame (maxFrameSpans /
	// maxFrameEvents — the coordinator truncates anything larger) and
	// epoch-tagged; Meter carries a small worker metric snapshot on
	// heartbeats. All of it is best-effort payload: dropped, never
	// blocked on, and never consulted by the merge.
	Spans  []obs.RemoteSpan   `json:"spans,omitempty"`
	Events []obs.BusEvent     `json:"events,omitempty"`
	Meter  map[string]float64 `json:"meter,omitempty"`
}

// maxFrameSpans and maxFrameEvents bound the telemetry payload one frame
// may carry: a result frame needs three spans (decode/evaluate/encode)
// for its own chunk, heartbeats drain a small backlog, and a hostile
// worker cannot balloon coordinator memory past these bounds because the
// coordinator truncates before absorbing.
const (
	maxFrameSpans  = 64
	maxFrameEvents = 16
)

// maxFrameSize bounds one frame on the wire (length prefix included
// payload only). Chunk results over sizeable graphs stay well under this;
// the bound exists so a corrupt or hostile length prefix cannot make the
// codec allocate unboundedly.
const maxFrameSize = 64 << 20

// preAuthFrameSize is the receive bound the coordinator imposes on a
// connection before it completes the handshake: hello and auth frames are
// a few hundred bytes, so an unauthenticated dialer announcing a large
// length prefix is cut off without a large allocation.
const preAuthFrameSize = 1 << 20

// ErrFrameTooLarge is returned by the codec for a frame exceeding
// maxFrameSize in either direction.
var ErrFrameTooLarge = errors.New("fabric: frame exceeds size limit")

// recvLimiter is implemented by codec connections whose inbound frame
// size bound can be tightened (pre-handshake) and restored (post-welcome).
// The in-process pipe transport does not implement it — its frames never
// serialise, so there is nothing to bound.
type recvLimiter interface {
	SetRecvLimit(n int)
}

// codecConn frames JSON documents with a 4-byte big-endian length prefix
// over any io.ReadWriteCloser — the TCP wire format. Sends are serialised
// by a mutex (delayed chaos frames and heartbeats may send concurrently);
// Recv is single-consumer.
type codecConn struct {
	rw io.ReadWriteCloser

	recvLimit atomic.Int64
	sendMu    sync.Mutex
	closed    sync.Once
}

// NewCodecConn wraps rw in the length-prefixed JSON frame codec.
func NewCodecConn(rw io.ReadWriteCloser) Conn {
	c := &codecConn{rw: rw}
	c.recvLimit.Store(maxFrameSize)
	return c
}

// SetRecvLimit bounds the next inbound frames to n bytes. Safe to call
// concurrently with Recv; the new bound applies from the next frame.
func (c *codecConn) SetRecvLimit(n int) { c.recvLimit.Store(int64(n)) }

func (c *codecConn) Send(f *Frame) error {
	payload, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("fabric: encode %s frame: %w", f.Type, err)
	}
	if len(payload) > maxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	_, err = c.rw.Write(buf)
	return err
}

func (c *codecConn) Recv() (*Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.rw, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int64(n) > c.recvLimit.Load() {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.rw, payload); err != nil {
		return nil, err
	}
	var f Frame
	if err := json.Unmarshal(payload, &f); err != nil {
		return nil, fmt.Errorf("fabric: decode frame: %w", err)
	}
	return &f, nil
}

func (c *codecConn) Close() error {
	var err error
	c.closed.Do(func() { err = c.rw.Close() })
	return err
}
