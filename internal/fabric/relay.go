package fabric

// Worker-side telemetry relay. When the coordinator's campaign frame
// carries a trace id, the worker opens child spans for every chunk it
// computes — decode (grant receipt to compute start), evaluate (the
// chunk computation) and encode (result assembly) — and attaches the
// completed records, its liveness bus events and a small metric snapshot
// to the frames it was sending anyway. A nil *relay is the telemetry-off
// state: every method is a pointer comparison and nothing else, so the
// relay-disabled hot path allocates exactly as much as protocol v2 did
// (pinned by TestRelayOffZeroAlloc), and frames carry only zero-valued —
// hence wire-elided — telemetry fields.

import (
	"time"

	"repro/internal/obs"
)

// relaySpanBuf bounds the pending-span backlog between sends; results
// drain three spans per chunk, so the bound only matters to a worker
// whose coordinator stopped granting while frames still flow. Overflow
// is counted and dropped.
const relaySpanBuf = 256

// relayEventBuf bounds buffered liveness events the same way.
const relayEventBuf = 32

// relay holds the per-connection telemetry state of one worker session.
type relay struct {
	trace string

	spans        []obs.RemoteSpan
	spansDropped int

	events        []obs.BusEvent
	eventsDropped int

	// leaseRecv records the worker clock (unix µs) at grant receipt per
	// held lease: the decode span's start.
	leaseRecv map[uint64]int64

	// Clock echo: the most recent coordinator timestamp and the worker
	// clock when it arrived (for the hold-time measurement).
	echoTS int64
	recvAt int64
}

func nowUS() int64 { return time.Now().UnixMicro() }

// reset clears chunk-scoped state (pending spans, lease receipt times,
// the clock echo) at the start of a new connection; spans buffered on a
// dead connection belong to chunks the coordinator will reassign.
// Buffered liveness events survive — a retry storm between sessions is
// exactly what the relay should deliver once reconnected.
func (r *relay) reset() {
	if r == nil {
		return
	}
	r.spans = nil
	r.leaseRecv = map[uint64]int64{}
	r.echoTS, r.recvAt = 0, 0
}

// noteTS remembers a coordinator clock stamp for the next echo.
func (r *relay) noteTS(ts int64) {
	if r == nil || ts == 0 {
		return
	}
	r.echoTS, r.recvAt = ts, nowUS()
}

// leaseSeen records grant receipt time (the decode span start).
func (r *relay) leaseSeen(lease uint64) {
	if r == nil {
		return
	}
	if r.leaseRecv == nil {
		r.leaseRecv = map[uint64]int64{}
	}
	r.leaseRecv[lease] = nowUS()
}

// addSpan buffers one completed record, dropping on overflow.
func (r *relay) addSpan(rs obs.RemoteSpan) {
	if len(r.spans) >= relaySpanBuf {
		r.spansDropped++
		return
	}
	r.spans = append(r.spans, rs)
}

// chunkSpans records the three phase spans of one computed chunk. The
// parent span id is the lease id (the per-chunk context the grant frame
// carried); phase span ids derive from it so they are unique per grant
// without coordination.
func (r *relay) chunkSpans(lease, epoch uint64, chunk int, startUS, endUS int64) {
	if r == nil {
		return
	}
	recv := r.leaseRecv[lease]
	delete(r.leaseRecv, lease)
	if recv == 0 || recv > startUS {
		recv = startUS // grant receipt unseen (chaos reorder): zero-width decode
	}
	now := nowUS()
	r.addSpan(obs.RemoteSpan{
		Name: "decode", ID: lease*4 + 1, Parent: lease, Epoch: epoch,
		Chunk: chunk, StartUS: recv, DurUS: startUS - recv,
	})
	r.addSpan(obs.RemoteSpan{
		Name: "evaluate", ID: lease*4 + 2, Parent: lease, Epoch: epoch,
		Chunk: chunk, StartUS: startUS, DurUS: endUS - startUS,
	})
	r.addSpan(obs.RemoteSpan{
		Name: "encode", ID: lease*4 + 3, Parent: lease, Epoch: epoch,
		Chunk: chunk, StartUS: endUS, DurUS: now - endUS,
	})
}

// event buffers a worker liveness event for relay (drop-oldest).
func (r *relay) event(kind, name string, attrs map[string]any) {
	if r == nil {
		return
	}
	if len(r.events) >= relayEventBuf {
		copy(r.events, r.events[1:])
		r.events = r.events[:len(r.events)-1]
		r.eventsDropped++
	}
	r.events = append(r.events, obs.BusEvent{Kind: kind, Name: name, Attrs: attrs})
}

// stamp attaches the relay payload to an outbound worker frame: the
// clock echo, any pending spans and events (handed over as bounded,
// freshly-owned slices — transports may hold frame pointers past the
// send), and, on heartbeats, the metric snapshot.
func (r *relay) stamp(f *Frame, chunks int, heartbeat bool) {
	if r == nil {
		return
	}
	now := nowUS()
	f.WTS = now
	if r.echoTS != 0 {
		f.EchoTS = r.echoTS
		f.HoldUS = now - r.recvAt
	}
	if n := len(r.spans); n > 0 {
		if n <= maxFrameSpans {
			f.Spans = r.spans
			r.spans = nil
		} else {
			f.Spans = r.spans[:maxFrameSpans:maxFrameSpans]
			r.spans = append([]obs.RemoteSpan(nil), r.spans[maxFrameSpans:]...)
		}
	}
	if n := len(r.events); n > 0 {
		if n <= maxFrameEvents {
			f.Events = r.events
			r.events = nil
		} else {
			f.Events = r.events[:maxFrameEvents:maxFrameEvents]
			r.events = append([]obs.BusEvent(nil), r.events[maxFrameEvents:]...)
		}
	}
	if heartbeat {
		f.Meter = map[string]float64{
			"chunks_done":    float64(chunks),
			"spans_pending":  float64(len(r.spans)),
			"spans_dropped":  float64(r.spansDropped),
			"events_dropped": float64(r.eventsDropped),
		}
	}
}
