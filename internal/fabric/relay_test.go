package fabric

import (
	"fmt"
	"testing"

	"repro/internal/obs"
)

// TestRelayOffZeroAlloc pins the telemetry-off contract: a nil *relay
// absorbs every call without allocating and without touching the frame,
// so workers outside a federated fabric run exactly the protocol-v2 hot
// path and their frames wire-elide every telemetry field.
func TestRelayOffZeroAlloc(t *testing.T) {
	var r *relay
	f := &Frame{Type: TypeResult}
	allocs := testing.AllocsPerRun(100, func() {
		r.reset()
		r.noteTS(123)
		r.leaseSeen(7)
		r.chunkSpans(7, 1, 0, 1, 2)
		r.event("fabric_worker", "w", nil)
		r.stamp(f, 3, false)
		r.stamp(f, 3, true)
	})
	if allocs != 0 {
		t.Fatalf("nil relay allocated %.1f times per run, want 0", allocs)
	}
	if f.WTS != 0 || f.EchoTS != 0 || f.Spans != nil || f.Events != nil || f.Meter != nil {
		t.Fatalf("nil relay stamped telemetry onto a frame: %+v", f)
	}
}

func TestRelayChunkSpansPhases(t *testing.T) {
	r := &relay{}
	r.reset()
	r.leaseSeen(5)
	start := nowUS() - 100 // compute happened just before now
	r.chunkSpans(5, 2, 3, start, start+10)
	if len(r.spans) != 3 {
		t.Fatalf("chunkSpans buffered %d spans, want 3", len(r.spans))
	}
	names := []string{"decode", "evaluate", "encode"}
	for i, rs := range r.spans {
		if rs.Name != names[i] || rs.Parent != 5 || rs.Epoch != 2 || rs.Chunk != 3 ||
			rs.ID != 5*4+uint64(i+1) || rs.DurUS < 0 {
			t.Fatalf("span %d malformed: %+v", i, rs)
		}
	}
	if _, held := r.leaseRecv[5]; held {
		t.Fatal("lease receipt time not cleared after the chunk completed")
	}

	// Grant receipt unseen (reconnect raced the grant): the decode span
	// collapses to zero width anchored at the compute start.
	r2 := &relay{}
	r2.reset()
	r2.chunkSpans(8, 1, 0, 100, 110)
	if r2.spans[0].StartUS != 100 || r2.spans[0].DurUS != 0 {
		t.Fatalf("fallback decode span: %+v", r2.spans[0])
	}
}

// TestRelayStampBoundsAndOwnership pins the slice-handoff contract:
// stamp gives the frame at most maxFrameSpans records in a capacity-
// capped slice and keeps the remainder in fresh storage, so later relay
// appends can never scribble into a frame a transport still holds.
func TestRelayStampBoundsAndOwnership(t *testing.T) {
	r := &relay{}
	r.reset()
	for i := 0; i < maxFrameSpans+3; i++ {
		r.addSpan(obs.RemoteSpan{ID: uint64(i + 1), Chunk: i})
	}
	var f Frame
	r.stamp(&f, 0, false)
	if len(f.Spans) != maxFrameSpans {
		t.Fatalf("frame carries %d spans, want the %d cap", len(f.Spans), maxFrameSpans)
	}
	if len(r.spans) != 3 || r.spans[0].ID != uint64(maxFrameSpans+1) {
		t.Fatalf("relay kept %d spans (first id %d), want the 3-span remainder", len(r.spans), r.spans[0].ID)
	}
	for i := 0; i < maxFrameSpans; i++ {
		r.addSpan(obs.RemoteSpan{ID: uint64(1000 + i)})
	}
	for i, rs := range f.Spans {
		if rs.ID != uint64(i+1) {
			t.Fatalf("relay append mutated a stamped frame: span %d has id %d", i, rs.ID)
		}
	}

	// A fully drained stamp hands over the whole slice and forgets it.
	r2 := &relay{}
	r2.reset()
	r2.addSpan(obs.RemoteSpan{ID: 1})
	var f2 Frame
	r2.stamp(&f2, 0, false)
	if len(f2.Spans) != 1 || r2.spans != nil {
		t.Fatalf("drained stamp: frame %d spans, relay kept %v", len(f2.Spans), r2.spans)
	}
}

func TestRelayEventRingDropsOldest(t *testing.T) {
	r := &relay{}
	for i := 0; i < relayEventBuf+5; i++ {
		r.event("fabric_worker", fmt.Sprintf("e%d", i), nil)
	}
	if len(r.events) != relayEventBuf || r.eventsDropped != 5 {
		t.Fatalf("ring holds %d events with %d dropped, want %d/%d",
			len(r.events), r.eventsDropped, relayEventBuf, 5)
	}
	if r.events[0].Name != "e5" || r.events[len(r.events)-1].Name != fmt.Sprintf("e%d", relayEventBuf+4) {
		t.Fatalf("ring should drop oldest: kept [%s .. %s]",
			r.events[0].Name, r.events[len(r.events)-1].Name)
	}
}

// TestRelayResetKeepsEvents pins the reconnect semantics: pending spans
// belong to chunks the coordinator will reassign and are dropped, while
// buffered liveness events (the retry storm itself) survive to be
// delivered on the next session.
func TestRelayResetKeepsEvents(t *testing.T) {
	r := &relay{}
	r.reset()
	r.noteTS(99)
	r.leaseSeen(1)
	r.addSpan(obs.RemoteSpan{ID: 1})
	r.event("fabric_worker", "retry", nil)
	r.reset()
	if r.spans != nil || len(r.leaseRecv) != 0 || r.echoTS != 0 {
		t.Fatalf("reset kept chunk-scoped state: %+v", r)
	}
	if len(r.events) != 1 || r.events[0].Name != "retry" {
		t.Fatalf("reset dropped buffered liveness events: %+v", r.events)
	}
}
