package fabric

import (
	"context"

	"repro/internal/faultsim"
)

// ServeSearch runs an adversarial scenario search whose candidate
// evaluations are sharded over the fabric: one long-lived Coordinator
// holds the worker set, and every evaluation's campaign becomes one
// campaign epoch — the encoded spec is shipped to the connected workers
// (which must therefore be flagless; a flag-configured worker refuses
// the per-evaluation fingerprints), its chunks leased out, and the
// merged Result handed back to the climb.
//
// Everything the local Search guarantees carries over unchanged: the
// evaluation journal, memoization and kill/resume semantics live in
// faultsim.Search and never see the fabric, and because the
// coordinator's merge is bit-identical to a local run for every
// campaign, the returned SearchResult is reflect.DeepEqual-identical to
// Search with the same SearchConfig at any worker count — including
// zero, via the coordinator's local fallback, once at least one worker
// was seen (or the fabric simply waits for the first worker).
//
// scfg.Runner is overwritten. scfg.Workers is ignored by the fabric
// (sharding is by chunk grid, not the local pool) and, like Runner, is
// excluded from the search fingerprint — a checkpointed local search can
// resume over the fabric and vice versa.
func ServeSearch(ctx context.Context, cfg Config, scfg faultsim.SearchConfig) (faultsim.SearchResult, Stats, error) {
	co := NewCoordinator(cfg)
	scfg.Runner = func(c faultsim.Campaign) (faultsim.Result, error) {
		return co.Run(ctx, c)
	}
	if scfg.Ctx == nil {
		scfg.Ctx = ctx
	}
	res, err := faultsim.Search(scfg)
	if err == nil {
		co.broadcast(TypeDone, "done")
	}
	co.Close()
	return res, co.stats, err
}
