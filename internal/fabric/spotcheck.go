package fabric

// Spot-check selection. The coordinator re-evaluates a deterministic,
// seed-chosen fraction of returned chunks locally and compares bytes; a
// divergent worker is quarantined. Selection must be a pure function of
// (seed, epoch, chunk) — never of arrival order or worker identity — so
// the same campaign always audits the same chunks (reproducible audits)
// and a worker cannot learn or influence which of its results are
// checked by timing its replies.

// spotmix is splitmix64's output permutation: a bijective avalanche over
// 64 bits, the same mixer faultsim uses for its substream derivation.
func spotmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SpotChecked reports whether the coordinator audits grid chunk seq of
// the given epoch under the given seed and check fraction. frac <= 0
// checks nothing, frac >= 1 everything; in between, the hash of
// (seed, epoch, seq) is compared against frac scaled to the full 64-bit
// range, giving an expected frac of all chunks with no pattern a worker
// could predict without the seed.
func SpotChecked(seed, epoch uint64, seq int, frac float64) bool {
	if frac <= 0 {
		return false
	}
	if frac >= 1 {
		return true
	}
	h := spotmix(spotmix(seed^0x5370637465636b21) ^ spotmix(epoch) ^ uint64(seq))
	// Compare in float space: h/2^64 < frac.
	return float64(h>>11)/(1<<53) < frac
}
