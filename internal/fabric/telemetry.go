package fabric

// Coordinator-side telemetry federation: clock-offset estimation, remote
// span absorption, relayed worker events, chunk-latency attribution and
// straggler detection. Everything here is advisory observability riding
// the existing frame flow — it is called from the coordinator's
// single-goroutine loop, owns no locks, and never touches the merge
// path, so the bit-identical-to-Workers=1 contract cannot be perturbed
// by any of it.

import (
	"sort"
	"time"

	"repro/internal/obs"
)

// maxMeterKeys bounds how many relayed metric entries one heartbeat's
// Meter map contributes to the fabric_clock event (hostile-input bound,
// like maxWorkerName).
const maxMeterKeys = 16

// latRingCap bounds the per-worker chunk-latency window the straggler
// detector looks at: recent behaviour, not campaign-lifetime averages.
const latRingCap = 256

// telemetry reports whether federation is on: any telemetry consumer
// (event bus or observer) makes the coordinator assign a trace id, stamp
// its clock on outbound frames, and absorb what workers relay back.
func (co *Coordinator) telemetry() bool {
	return co.cfg.Bus != nil || co.cfg.Observer != nil
}

// stampTS fills the coordinator clock field on an outbound frame when
// federation is on (the relay-off wire format stays byte-identical).
func (co *Coordinator) stampTS(f *Frame) *Frame {
	if co.telemetry() {
		f.TS = time.Now().UnixMicro()
	}
	return f
}

// telemetryIn absorbs the telemetry payload of one worker frame
// (heartbeat or result): a clock sample, relayed span records, relayed
// worker events. Post-auth only; everything is bounded and best-effort.
func (co *Coordinator) telemetryIn(w *workerConn, f *Frame) {
	if !co.telemetry() || !w.helloed {
		return
	}
	if off, rtt, ok := obs.EstimateOffset(f.EchoTS, f.HoldUS, f.WTS, time.Now().UnixMicro()); ok {
		// Keep the smallest-RTT sample: its midpoint assumption has the
		// least room to be wrong (see obs.EstimateOffset).
		if !w.clockSet || rtt <= w.rttBest {
			w.clockSet, w.rttBest, w.clockOff = true, rtt, off
		}
		// fabric_clock streams at heartbeat cadence (~1/s per worker), not
		// per result; the first sample is published immediately so even a
		// campaign shorter than one heartbeat interval gets a reading.
		if f.Type == TypeHeartbeat || !w.clockSeen {
			w.clockSeen = true
			co.publishClock(w, f.Meter)
		}
	}
	co.absorbSpans(w, f.Spans)
	co.relayEvents(w, f.Events)
}

// absorbSpans validates, rebases and stores relayed span records.
// Acceptance mirrors result dup-suppression exactly — current epoch,
// chunk at or above the merge frontier, not already completed — and runs
// before result() completes the carrying frame's chunk, so the spans
// that rode the accepted result are kept and every later duplicate
// (chaos copy, slow pre-reassignment owner) rejects its spans with it:
// each merged chunk's phases appear exactly once in the merged trace.
func (co *Coordinator) absorbSpans(w *workerConn, spans []obs.RemoteSpan) {
	if len(spans) == 0 {
		return
	}
	if len(spans) > maxFrameSpans {
		spans = spans[:maxFrameSpans]
	}
	accepted := make([]obs.RemoteSpan, 0, len(spans))
	for i := range spans {
		rs := spans[i] // copy before rebasing: transports may share the frame
		if rs.Epoch != co.epoch || rs.Chunk < co.mergeSeq || rs.Chunk >= co.totalChunks || co.completed[rs.Chunk] {
			continue
		}
		rs.Worker = w.name // trusted connection identity, not payload
		if w.clockSet {
			rs.StartUS -= w.clockOff
		}
		accepted = append(accepted, rs)
	}
	if len(accepted) == 0 {
		return
	}
	co.cfg.Observer.AddRemoteSpans(accepted...)
	if co.cfg.Bus != nil {
		for _, rs := range accepted {
			co.cfg.Bus.Publish("fabric_span", rs.Name,
				obs.String("campaign", co.label),
				obs.String("worker", rs.Worker),
				obs.Int("chunk", rs.Chunk),
				obs.Int64("span", int64(rs.ID)),
				obs.Int64("parent", int64(rs.Parent)),
				obs.Int64("start_us", rs.StartUS),
				obs.Int64("dur_us", rs.DurUS))
		}
	}
}

// relayEvents republishes worker-side liveness events onto the
// coordinator's bus, tagged with the relaying connection. Only the
// "fabric_worker" kind crosses — a worker cannot inject arbitrary kinds
// into the coordinator's schema-validated stream.
func (co *Coordinator) relayEvents(w *workerConn, evs []obs.BusEvent) {
	if co.cfg.Bus == nil || len(evs) == 0 {
		return
	}
	if len(evs) > maxFrameEvents {
		evs = evs[:maxFrameEvents]
	}
	for _, ev := range evs {
		if ev.Kind != "fabric_worker" {
			continue
		}
		name := ev.Name
		if len(name) > maxWorkerName {
			name = name[:maxWorkerName]
		}
		attrs := make([]obs.Attr, 0, len(ev.Attrs)+1)
		for k, v := range ev.Attrs {
			if len(attrs) == maxMeterKeys {
				break
			}
			attrs = append(attrs, obs.Attr{Key: k, Value: v})
		}
		attrs = append(attrs, obs.String("relay", w.name))
		co.cfg.Bus.Publish("fabric_worker", name, attrs...)
	}
}

// publishClock emits the worker's current clock estimate plus the metric
// snapshot its heartbeat carried.
func (co *Coordinator) publishClock(w *workerConn, meter map[string]float64) {
	if co.cfg.Bus == nil {
		return
	}
	attrs := []obs.Attr{
		obs.String("campaign", co.label),
		obs.Int64("offset_us", w.clockOff),
		obs.Int64("rtt_us", w.rttBest),
	}
	if len(meter) > 0 {
		keys := make([]string, 0, len(meter))
		for k := range meter {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if len(keys) > maxMeterKeys {
			keys = keys[:maxMeterKeys]
		}
		for _, k := range keys {
			attrs = append(attrs, obs.Float(k, meter[k]))
		}
	}
	co.cfg.Bus.Publish("fabric_clock", w.name, attrs...)
}

// observeLatency folds one leased→resulted chunk latency (coordinator
// clock, ms) into the worker's ring and re-evaluates the straggler
// predicate.
func (co *Coordinator) observeLatency(w *workerConn, ms float64) {
	if len(w.lat) < latRingCap {
		w.lat = append(w.lat, ms)
	} else {
		w.lat[w.latPos%latRingCap] = ms
	}
	w.latPos++
	w.latN++
	co.checkStraggler(w)
}

// latP95 is the nearest-rank 95th percentile of a latency window.
func latP95(lat []float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	s := append([]float64(nil), lat...)
	sort.Float64s(s)
	idx := (len(s)*95+99)/100 - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

// checkStraggler flags w when its chunk-latency p95 exceeds
// StragglerFactor × the fleet median of per-worker p95s (each worker
// contributing at least StragglerMin samples, at least two workers
// reporting, and a small absolute floor so equal-speed fleets with
// microsecond jitter never trip it). Sticky per connection: one typed
// fabric_straggler event, then the dashboard badge stays on.
func (co *Coordinator) checkStraggler(w *workerConn) {
	if w.straggler {
		return
	}
	factor := co.cfg.StragglerFactor
	if factor <= 0 {
		factor = 3
	}
	minN := co.cfg.StragglerMin
	if minN <= 0 {
		minN = 8
	}
	if w.latN < minN {
		return
	}
	p95s := make([]float64, 0, len(co.workers))
	for peer := range co.workers {
		if peer.helloed && peer.latN >= minN {
			p95s = append(p95s, latP95(peer.lat))
		}
	}
	if len(p95s) < 2 {
		return
	}
	sort.Float64s(p95s)
	median := p95s[len(p95s)/2]
	mine := latP95(w.lat)
	if mine <= factor*median || mine <= median+5 {
		return
	}
	w.straggler = true
	co.stats.Stragglers++
	if co.cfg.Bus != nil {
		co.cfg.Bus.Publish("fabric_straggler", w.name,
			obs.String("campaign", co.label),
			obs.Float("p95_ms", mine),
			obs.Float("fleet_p95_ms", median),
			obs.Int("chunks", w.latN))
	}
}
