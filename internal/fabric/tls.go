package fabric

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"errors"
	"fmt"
	"net"
	"os"
)

// TLS transport: the same length-prefixed JSON frame codec as the plain
// TCP transport, carried over TLS 1.3. The coordinator presents a server
// certificate; when a CA bundle is configured it additionally demands and
// verifies a client certificate (mutual TLS). TLS gives the wire privacy
// and endpoint identity; the in-protocol HMAC handshake (auth.go) stays
// on top of it, so a peer holding a valid certificate but the wrong token
// is still rejected before any campaign material flows.

// ListenTLS opens a TLS fabric listener on addr with the PEM-encoded
// certificate/key pair. A non-empty caFile turns on mutual TLS: client
// certificates are required and verified against that bundle.
func ListenTLS(addr, certFile, keyFile, caFile string) (Listener, error) {
	cert, err := tls.LoadX509KeyPair(certFile, keyFile)
	if err != nil {
		return nil, fmt.Errorf("fabric: tls listen: load key pair: %w", err)
	}
	cfg := &tls.Config{
		Certificates: []tls.Certificate{cert},
		MinVersion:   tls.VersionTLS13,
	}
	if caFile != "" {
		pool, err := loadCertPool(caFile)
		if err != nil {
			return nil, fmt.Errorf("fabric: tls listen: %w", err)
		}
		cfg.ClientCAs = pool
		cfg.ClientAuth = tls.RequireAndVerifyClientCert
	}
	ln, err := tls.Listen("tcp", addr, cfg)
	if err != nil {
		return nil, fmt.Errorf("fabric: tls listen %s: %w", addr, err)
	}
	return &tcpListener{ln: ln}, nil
}

// DialTLS returns a Dialer connecting to the coordinator at addr over
// TLS. caFile, when non-empty, pins the roots the coordinator's
// certificate must chain to (otherwise the system pool is used); a
// certFile/keyFile pair, when non-empty, is presented for mutual TLS.
func DialTLS(addr, certFile, keyFile, caFile string) (Dialer, error) {
	cfg := &tls.Config{MinVersion: tls.VersionTLS13}
	if caFile != "" {
		pool, err := loadCertPool(caFile)
		if err != nil {
			return nil, fmt.Errorf("fabric: tls dial: %w", err)
		}
		cfg.RootCAs = pool
	}
	if certFile != "" || keyFile != "" {
		cert, err := tls.LoadX509KeyPair(certFile, keyFile)
		if err != nil {
			return nil, fmt.Errorf("fabric: tls dial: load key pair: %w", err)
		}
		cfg.Certificates = []tls.Certificate{cert}
	}
	return func(ctx context.Context) (Conn, error) {
		d := &tls.Dialer{NetDialer: &net.Dialer{}, Config: cfg}
		c, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		return NewCodecConn(c), nil
	}, nil
}

func loadCertPool(caFile string) (*x509.CertPool, error) {
	pem, err := os.ReadFile(caFile)
	if err != nil {
		return nil, fmt.Errorf("read CA bundle: %w", err)
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pem) {
		return nil, errors.New("CA bundle contains no usable certificates")
	}
	return pool, nil
}
