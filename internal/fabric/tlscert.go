package fabric

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"fmt"
	"math/big"
	"net"
	"os"
	"path/filepath"
	"time"
)

// TestCerts names the PEM files of an ephemeral loopback TLS chain:
// a throwaway CA plus server and client leaves for 127.0.0.1/::1/
// localhost. Produced by WriteEphemeralCerts for the test suites, the
// fabriccheck gate and local TLS experiments; production deployments
// bring their own PKI.
type TestCerts struct {
	CAFile         string
	ServerCertFile string
	ServerKeyFile  string
	ClientCertFile string
	ClientKeyFile  string
}

// WriteEphemeralCerts generates a fresh ECDSA P-256 CA and loopback
// server/client certificates (valid ±1h around now) into dir.
func WriteEphemeralCerts(dir string) (TestCerts, error) {
	caKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return TestCerts{}, fmt.Errorf("fabric: ephemeral CA key: %w", err)
	}
	now := time.Now()
	caTmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "fabric ephemeral CA"},
		NotBefore:             now.Add(-time.Hour),
		NotAfter:              now.Add(time.Hour),
		IsCA:                  true,
		BasicConstraintsValid: true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
	}
	caDER, err := x509.CreateCertificate(rand.Reader, caTmpl, caTmpl, &caKey.PublicKey, caKey)
	if err != nil {
		return TestCerts{}, fmt.Errorf("fabric: ephemeral CA cert: %w", err)
	}
	caCert, err := x509.ParseCertificate(caDER)
	if err != nil {
		return TestCerts{}, fmt.Errorf("fabric: ephemeral CA cert: %w", err)
	}

	leaf := func(name string, serial int64, usage x509.ExtKeyUsage) ([]byte, *ecdsa.PrivateKey, error) {
		key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
		if err != nil {
			return nil, nil, err
		}
		tmpl := &x509.Certificate{
			SerialNumber: big.NewInt(serial),
			Subject:      pkix.Name{CommonName: name},
			NotBefore:    now.Add(-time.Hour),
			NotAfter:     now.Add(time.Hour),
			KeyUsage:     x509.KeyUsageDigitalSignature,
			ExtKeyUsage:  []x509.ExtKeyUsage{usage},
			DNSNames:     []string{"localhost"},
			IPAddresses:  []net.IP{net.ParseIP("127.0.0.1"), net.ParseIP("::1")},
		}
		der, err := x509.CreateCertificate(rand.Reader, tmpl, caCert, &key.PublicKey, caKey)
		if err != nil {
			return nil, nil, err
		}
		return der, key, nil
	}
	serverDER, serverKey, err := leaf("fabric coordinator", 2, x509.ExtKeyUsageServerAuth)
	if err != nil {
		return TestCerts{}, fmt.Errorf("fabric: ephemeral server cert: %w", err)
	}
	clientDER, clientKey, err := leaf("fabric worker", 3, x509.ExtKeyUsageClientAuth)
	if err != nil {
		return TestCerts{}, fmt.Errorf("fabric: ephemeral client cert: %w", err)
	}

	tc := TestCerts{
		CAFile:         filepath.Join(dir, "ca.pem"),
		ServerCertFile: filepath.Join(dir, "server.pem"),
		ServerKeyFile:  filepath.Join(dir, "server.key"),
		ClientCertFile: filepath.Join(dir, "client.pem"),
		ClientKeyFile:  filepath.Join(dir, "client.key"),
	}
	writeCert := func(path string, der []byte) error {
		return writePEM(path, "CERTIFICATE", der, 0o644)
	}
	writeKey := func(path string, key *ecdsa.PrivateKey) error {
		der, err := x509.MarshalECPrivateKey(key)
		if err != nil {
			return err
		}
		return writePEM(path, "EC PRIVATE KEY", der, 0o600)
	}
	if err := writeCert(tc.CAFile, caDER); err != nil {
		return TestCerts{}, fmt.Errorf("fabric: write CA: %w", err)
	}
	if err := writeCert(tc.ServerCertFile, serverDER); err != nil {
		return TestCerts{}, fmt.Errorf("fabric: write server cert: %w", err)
	}
	if err := writeKey(tc.ServerKeyFile, serverKey); err != nil {
		return TestCerts{}, fmt.Errorf("fabric: write server key: %w", err)
	}
	if err := writeCert(tc.ClientCertFile, clientDER); err != nil {
		return TestCerts{}, fmt.Errorf("fabric: write client cert: %w", err)
	}
	if err := writeKey(tc.ClientKeyFile, clientKey); err != nil {
		return TestCerts{}, fmt.Errorf("fabric: write client key: %w", err)
	}
	return tc, nil
}

func writePEM(path, blockType string, der []byte, mode os.FileMode) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, mode)
	if err != nil {
		return err
	}
	if err := pem.Encode(f, &pem.Block{Type: blockType, Bytes: der}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
