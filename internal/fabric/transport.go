package fabric

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Conn moves frames between one worker and the coordinator. Send never
// reorders within a call site but the fabric assumes nothing beyond
// best-effort delivery: frames may be lost, delayed or duplicated by a
// chaos wrapper and the protocol must still converge. Close unblocks a
// pending Recv on either side.
type Conn interface {
	Send(*Frame) error
	Recv() (*Frame, error)
	Close() error
}

// Listener accepts worker connections on the coordinator side.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr names the listening endpoint ("127.0.0.1:7000", "pipe").
	Addr() string
}

// Dialer opens a fresh connection to the coordinator. Workers call it on
// every (re)connect attempt.
type Dialer func(ctx context.Context) (Conn, error)

// ErrListenerClosed is returned by Accept after Close.
var ErrListenerClosed = errors.New("fabric: listener closed")

// --- TCP transport -------------------------------------------------------

// tcpListener adapts a net.Listener to the fabric transport, framing each
// accepted connection with the length-prefixed JSON codec.
type tcpListener struct {
	ln net.Listener
}

// ListenTCP opens a TCP fabric listener on addr (":0" picks a free port).
func ListenTCP(addr string) (Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fabric: listen %s: %w", addr, err)
	}
	return &tcpListener{ln: ln}, nil
}

func (l *tcpListener) Accept() (Conn, error) {
	c, err := l.ln.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, ErrListenerClosed
		}
		return nil, err
	}
	return NewCodecConn(c), nil
}

func (l *tcpListener) Close() error { return l.ln.Close() }
func (l *tcpListener) Addr() string { return l.ln.Addr().String() }

// DialTCP returns a Dialer connecting to the coordinator at addr.
func DialTCP(addr string) Dialer {
	return func(ctx context.Context) (Conn, error) {
		var d net.Dialer
		c, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		return NewCodecConn(c), nil
	}
}

// --- In-process pipe transport ------------------------------------------

// PipeListener is the in-process transport for tests and the fabriccheck
// gate: Dial hands the listener one end of a buffered frame pipe. No
// bytes, no sockets — but the same Conn semantics (including close
// unblocking Recv), so chaos wrappers and the protocol state machine are
// exercised identically.
type PipeListener struct {
	mu     sync.Mutex
	queue  chan Conn
	closed bool
}

// NewPipeListener builds an in-process listener.
func NewPipeListener() *PipeListener {
	return &PipeListener{queue: make(chan Conn, 16)}
}

func (l *PipeListener) Accept() (Conn, error) {
	c, ok := <-l.queue
	if !ok {
		return nil, ErrListenerClosed
	}
	return c, nil
}

func (l *PipeListener) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.closed = true
		close(l.queue)
	}
	return nil
}

func (l *PipeListener) Addr() string { return "pipe" }

// Dial returns the worker-side Dialer of this listener.
func (l *PipeListener) Dial() Dialer {
	return func(ctx context.Context) (Conn, error) {
		a, b := newPipePair()
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return nil, fmt.Errorf("fabric: dial: %w", ErrListenerClosed)
		}
		select {
		case l.queue <- b:
			l.mu.Unlock()
			return a, nil
		default:
			l.mu.Unlock()
			return nil, fmt.Errorf("fabric: dial: accept queue full")
		}
	}
}

// pipeConn is one end of an in-process frame pipe: a buffered channel per
// direction, with per-end close signals so Close on either side unblocks
// both directions.
type pipeConn struct {
	in  <-chan *Frame
	out chan<- *Frame

	self *pipeEnd
	peer *pipeEnd
}

type pipeEnd struct {
	once sync.Once
	done chan struct{}
}

func (e *pipeEnd) close() { e.once.Do(func() { close(e.done) }) }

// pipeBuf is the per-direction frame buffer of the in-process transport;
// deep enough that a healthy exchange never blocks, shallow enough that
// backpressure is real.
const pipeBuf = 64

func newPipePair() (Conn, Conn) {
	ab := make(chan *Frame, pipeBuf)
	ba := make(chan *Frame, pipeBuf)
	ea := &pipeEnd{done: make(chan struct{})}
	eb := &pipeEnd{done: make(chan struct{})}
	a := &pipeConn{in: ba, out: ab, self: ea, peer: eb}
	b := &pipeConn{in: ab, out: ba, self: eb, peer: ea}
	return a, b
}

func (c *pipeConn) Send(f *Frame) error {
	select {
	case <-c.self.done:
		return io.ErrClosedPipe
	case <-c.peer.done:
		return io.ErrClosedPipe
	default:
	}
	select {
	case c.out <- f:
		return nil
	case <-c.self.done:
		return io.ErrClosedPipe
	case <-c.peer.done:
		return io.ErrClosedPipe
	}
}

func (c *pipeConn) Recv() (*Frame, error) {
	// Drain buffered frames even after a close: the protocol tolerates
	// losing them, but delivering what is already queued keeps clean
	// shutdowns (done/drain frames) reliable on the in-process path.
	select {
	case f := <-c.in:
		return f, nil
	default:
	}
	select {
	case f := <-c.in:
		return f, nil
	case <-c.self.done:
		return nil, io.EOF
	case <-c.peer.done:
		// One last drain: the peer may have sent and closed.
		select {
		case f := <-c.in:
			return f, nil
		default:
			return nil, io.EOF
		}
	}
}

func (c *pipeConn) Close() error {
	c.self.close()
	return nil
}
