package fabric

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/faultsim"
	"repro/internal/obs"
)

// ErrDrained reports that the coordinator shut down gracefully before the
// campaign completed; the worker should not redial.
var ErrDrained = errors.New("fabric: coordinator draining")

// ErrRejected reports that the coordinator refused the handshake —
// protocol, campaign-fingerprint or authentication mismatch, or a
// quarantine — or that the coordinator itself failed the worker's checks
// (mutual authentication, a spec that does not match its claimed
// fingerprint). Permanent: redialling with the same configuration cannot
// succeed.
var ErrRejected = errors.New("fabric: handshake rejected")

// ErrUnreachable reports that the reconnect budget was exhausted without
// reaching a live coordinator.
var ErrUnreachable = errors.New("fabric: coordinator unreachable")

// WorkerConfig configures one campaign worker.
type WorkerConfig struct {
	// Campaign, when set (Graph non-nil), must be built from the same
	// specification as the coordinator's; the handshake compares
	// fingerprints and rejects any divergence before trials move. When
	// zero, the worker is *flagless*: it announces no fingerprint and
	// self-configures from the campaign spec the coordinator ships,
	// verifying the decoded spec against its claimed fingerprint. A
	// flagless worker also follows epoch switches (the fabric-sharded
	// search runs a new campaign per evaluation); a flag-configured
	// worker refuses any campaign but its own.
	Campaign faultsim.Campaign
	// Dial opens a connection to the coordinator; it is called on every
	// (re)connect attempt.
	Dial Dialer
	// Name identifies the worker in coordinator events (optional; the
	// coordinator assigns "wN" otherwise).
	Name string
	// AuthToken, when non-empty, answers the coordinator's HMAC
	// challenge-response and demands the same proof back (mutual
	// authentication). Must match the coordinator's Config.AuthToken.
	AuthToken string
	// HeartbeatEvery is the lease-renewal interval (default 1s). Keep it
	// well under the coordinator's LeaseTTL.
	HeartbeatEvery time.Duration
	// HandshakeTimeout bounds the wait for a welcome (default 5s); a
	// timeout counts as a failed attempt and triggers a reconnect.
	HandshakeTimeout time.Duration
	// BackoffBase and BackoffMax bound the jittered exponential backoff
	// between connect attempts (defaults 50ms and 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxReconnects is the budget of consecutive failed attempts before
	// the worker gives up with ErrUnreachable (default 8). The counter
	// resets on every accepted handshake, so a long campaign can survive
	// any number of spaced-out disconnects.
	MaxReconnects int
	// Seed seeds the backoff jitter (a fixed default otherwise); it has no
	// effect on trial outcomes.
	Seed uint64
	// Bus, when set, receives worker-side "fabric_worker" liveness events
	// (connected / retry / done / drained) — useful when the worker runs
	// in its own process with its own dashboard.
	Bus *obs.Bus
}

// RunWorker connects to the coordinator and computes leased chunks until
// the campaign completes (nil), the coordinator drains (ErrDrained), the
// handshake is rejected (ErrRejected), the reconnect budget runs out
// (ErrUnreachable), or ctx is cancelled.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	var runner *faultsim.ChunkRunner
	cfgFP := ""
	trials := 0
	if cfg.Campaign.Graph != nil {
		var err error
		runner, err = faultsim.NewChunkRunner(cfg.Campaign)
		if err != nil {
			return err
		}
		cfgFP = cfg.Campaign.Fingerprint()
		trials = cfg.Campaign.Trials
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = time.Second
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 5 * time.Second
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.MaxReconnects <= 0 {
		cfg.MaxReconnects = 8
	}
	w := &worker{
		cfg:    cfg,
		runner: runner,
		fp:     cfgFP,
		cfgFP:  cfgFP,
		trials: trials,
		rng:    rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x6a09e667f3bcc909)),
	}
	attempts := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		conn, err := cfg.Dial(ctx)
		if err == nil {
			var handshaked, terminal bool
			handshaked, terminal, err = w.session(ctx, conn)
			conn.Close()
			if terminal {
				return err
			}
			if handshaked {
				attempts = 0 // a live coordinator resets the budget
			}
		}
		attempts++
		if attempts > cfg.MaxReconnects {
			return fmt.Errorf("%w after %d attempts: %v", ErrUnreachable, attempts, err)
		}
		w.publish("retry", obs.Int("attempt", attempts))
		if err := w.backoff(ctx, attempts); err != nil {
			return err
		}
	}
}

// worker is the per-RunWorker state shared across reconnects. runner,
// fp, trials and epoch are dynamic: a flagless worker fills them from
// the shipped campaign spec and replaces them on every epoch switch.
type worker struct {
	cfg    WorkerConfig
	cfgFP  string // flag-configured fingerprint; "" for a flagless worker
	runner *faultsim.ChunkRunner
	fp     string
	trials int
	epoch  uint64
	rng    *rand.Rand
	chunks int
	// rel is the telemetry relay; nil until a campaign frame announces a
	// trace id (coordinator telemetry on), and nil forever when it never
	// does — the relay-off hot path is a pointer comparison (see relay.go).
	rel *relay
}

// backoff sleeps a jittered exponential delay, honouring ctx: a
// cancellation (SIGINT, -timeout) cuts the wait short immediately
// instead of blocking until the full backoff elapses.
func (w *worker) backoff(ctx context.Context, attempt int) error {
	d := w.cfg.BackoffBase << min(attempt-1, 16)
	if d > w.cfg.BackoffMax {
		d = w.cfg.BackoffMax
	}
	// Full jitter over [d/2, d]: desynchronises a fleet of workers
	// redialling a restarted coordinator.
	d = d/2 + time.Duration(w.rng.Int64N(int64(d/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// computeOut is one finished chunk computation. startUS/endUS bracket
// the evaluate phase on the worker clock (0 when the relay is off).
type computeOut struct {
	lease   uint64
	epoch   uint64
	out     *faultsim.ChunkOutput
	err     error
	startUS int64
	endUS   int64
}

// session runs one connection's lifetime: handshake (with optional
// challenge-response authentication and campaign self-configuration),
// then the lease/compute/heartbeat loop. handshaked reports whether a
// welcome was received (resets the reconnect budget); terminal reports
// that RunWorker should return err instead of redialling.
func (w *worker) session(ctx context.Context, conn Conn) (handshaked, terminal bool, err error) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	w.rel.reset() // spans pending on a dead conn belong to reassigned chunks

	// Reader goroutine: pumps frames until the conn dies. sessDone stops
	// it if the session exits while frames are still arriving; the
	// deferred conn.Close in RunWorker unblocks a pending Recv.
	incoming := make(chan *Frame, 16)
	rerr := make(chan error, 1)
	sessDone := make(chan struct{})
	var rwg sync.WaitGroup
	defer func() {
		close(sessDone)
		conn.Close()
		rwg.Wait()
	}()
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for {
			f, e := conn.Recv()
			if e != nil {
				rerr <- e
				return
			}
			select {
			case incoming <- f:
			case <-sessDone:
				return
			}
		}
	}()

	// The hello nonce is what the coordinator MACs back when a token is
	// configured (mutual authentication). With a token, the campaign
	// fingerprint is withheld until the coordinator proves itself.
	nonce, err := newNonce()
	if err != nil {
		return false, false, err
	}
	helloFP := w.cfgFP
	if w.cfg.AuthToken != "" {
		helloFP = ""
	}
	if err := conn.Send(&Frame{Type: TypeHello, Proto: Proto, Fingerprint: helloFP, Worker: w.cfg.Name, Nonce: nonce}); err != nil {
		return false, false, err
	}

	// Await the welcome. Chaos can reorder a lease (or the campaign
	// frame) ahead of the welcome; stash leases rather than dropping
	// them, and apply the campaign whenever it shows up.
	var leaseQ []*Frame
	seen := map[uint64]bool{}
	// held is the set of leases accepted but not yet answered; heartbeats
	// and results carry it so the coordinator renews exactly these and
	// lets lost-in-transit grants expire.
	held := map[uint64]bool{}
	heldIDs := func() []uint64 {
		ids := make([]uint64, 0, len(held))
		for id := range held {
			ids = append(ids, id)
		}
		return ids
	}

	// applyCampaign adopts a shipped campaign spec: verify it against its
	// claimed fingerprint, build the chunk runner, switch to its epoch and
	// drop lease state from other epochs. A non-nil return is terminal.
	applyCampaign := func(f *Frame) error {
		if f.Spec == nil || f.Epoch == 0 {
			return nil // malformed campaign frame: ignore
		}
		if f.Trace != "" {
			// The coordinator runs with telemetry on: switch the relay on
			// for this and every later epoch of the connection.
			if w.rel == nil {
				w.rel = &relay{}
				w.rel.reset()
			}
			w.rel.trace = f.Trace
			w.rel.noteTS(f.TS)
		}
		if w.cfgFP != "" && f.Fingerprint != w.cfgFP {
			return fmt.Errorf("%w: coordinator runs campaign %s, this worker is configured for %s", ErrRejected, f.Fingerprint, w.cfgFP)
		}
		if w.runner != nil && f.Epoch == w.epoch && f.Fingerprint == w.fp {
			return nil // duplicate (chaos or re-request)
		}
		if w.runner == nil || w.fp != f.Fingerprint {
			c, err := f.Spec.Campaign()
			if err != nil {
				return fmt.Errorf("%w: shipped campaign spec: %v", ErrRejected, err)
			}
			if got := c.Fingerprint(); got != f.Fingerprint {
				return fmt.Errorf("%w: shipped campaign fingerprints %s but claims %s", ErrRejected, got, f.Fingerprint)
			}
			runner, err := faultsim.NewChunkRunner(c)
			if err != nil {
				return fmt.Errorf("%w: shipped campaign invalid: %v", ErrRejected, err)
			}
			w.runner, w.fp, w.trials = runner, f.Fingerprint, c.Trials
		}
		w.epoch = f.Epoch
		var kept []*Frame
		newHeld := map[uint64]bool{}
		for _, lf := range leaseQ {
			if lf.Epoch == w.epoch {
				kept = append(kept, lf)
				newHeld[lf.Lease] = true
			}
		}
		leaseQ = kept
		held = newHeld
		return nil
	}

	// stashLease queues a grant, asking for the campaign spec when the
	// grant's epoch is ahead of what this worker is configured for (the
	// campaign frame was lost in transit; heartbeats retry the request).
	stashLease := func(f *Frame) {
		if seen[f.Lease] || f.Epoch < w.epoch {
			return
		}
		seen[f.Lease] = true
		held[f.Lease] = true
		w.rel.leaseSeen(f.Lease) // decode-span start: grant receipt
		leaseQ = append(leaseQ, f)
		if f.Epoch > w.epoch {
			_ = conn.Send(&Frame{Type: TypeNeedCampaign}) // best-effort; heartbeat retries
		}
	}
	// needSpec reports whether a queued lease is waiting on a campaign
	// spec this worker does not have yet.
	needSpec := func() bool {
		for _, lf := range leaseQ {
			if lf.Epoch > w.epoch {
				return true
			}
		}
		return false
	}

	challenged := false
	hsTimer := time.NewTimer(w.cfg.HandshakeTimeout)
	defer hsTimer.Stop()
handshake:
	for {
		select {
		case f := <-incoming:
			w.rel.noteTS(f.TS)
			switch f.Type {
			case TypeWelcome:
				if w.cfg.AuthToken != "" && !challenged {
					return false, true, fmt.Errorf("%w: coordinator did not authenticate", ErrRejected)
				}
				break handshake
			case TypeChallenge:
				if w.cfg.AuthToken == "" {
					return false, true, fmt.Errorf("%w: coordinator requires an auth token", ErrRejected)
				}
				if !verifyMAC(w.cfg.AuthToken, nonce, f.MAC) {
					return false, true, fmt.Errorf("%w: coordinator failed mutual authentication", ErrRejected)
				}
				challenged = true
				if err := conn.Send(&Frame{Type: TypeAuth, MAC: signNonce(w.cfg.AuthToken, f.Nonce), Fingerprint: w.cfgFP}); err != nil {
					return false, false, err
				}
			case TypeCampaign:
				if err := applyCampaign(f); err != nil {
					return false, true, err
				}
			case TypeReject:
				return false, true, fmt.Errorf("%w: %s", ErrRejected, f.Reason)
			case TypeDrain:
				w.publish("drained")
				return false, true, ErrDrained
			case TypeDone:
				w.publish("done")
				return false, true, nil
			case TypeLease:
				stashLease(f)
			}
		case e := <-rerr:
			// The conn died, but the reader delivers in order before its
			// error, so a terminal verdict that beat the close is already
			// buffered — honour it over the redial loop.
			for {
				select {
				case f := <-incoming:
					switch f.Type {
					case TypeReject:
						return false, true, fmt.Errorf("%w: %s", ErrRejected, f.Reason)
					case TypeDrain:
						w.publish("drained")
						return false, true, ErrDrained
					case TypeDone:
						w.publish("done")
						return false, true, nil
					}
				default:
					return false, false, e
				}
			}
		case <-hsTimer.C:
			return false, false, fmt.Errorf("fabric: handshake timeout after %s", w.cfg.HandshakeTimeout)
		case <-ctx.Done():
			return false, true, ctx.Err()
		}
	}
	w.publish("connected")

	// terminalFrame maps a done/drain frame onto the session's exit.
	terminalFrame := func(f *Frame) (error, bool) {
		switch f.Type {
		case TypeDone:
			w.publish("done")
			return nil, true
		case TypeDrain:
			w.publish("drained")
			return ErrDrained, true
		}
		return nil, false
	}

	// failover handles a dead connection. A failure is often the far side
	// of a clean shutdown — the coordinator queues done/drain, flushes,
	// and closes, so the worker's next send (or the select's random pick
	// of the read-error arm) can race a verdict that was already
	// delivered. Before redialling, wait for the reader to hand over
	// everything the coordinator managed to send and honour any terminal
	// frame in it; HandshakeTimeout bounds the wait on a genuinely dead
	// transport.
	failover := func(cause error, readerExited bool) (bool, bool, error) {
		deadline := time.NewTimer(w.cfg.HandshakeTimeout)
		defer deadline.Stop()
		for {
			if readerExited {
				// The reader is gone: every delivered frame is buffered.
				select {
				case f := <-incoming:
					if err, ok := terminalFrame(f); ok {
						return true, true, err
					}
					continue
				default:
					return true, false, cause
				}
			}
			select {
			case f := <-incoming:
				if err, ok := terminalFrame(f); ok {
					return true, true, err
				}
			case <-rerr:
				readerExited = true
			case <-deadline.C:
				return true, false, cause
			case <-ctx.Done():
				return true, true, ctx.Err()
			}
		}
	}

	// pickLease returns the next computable lease: the first queued grant
	// of the current epoch. Grants from older epochs are dropped (their
	// campaign is gone); grants from future epochs stay queued until the
	// campaign spec arrives.
	pickLease := func() *Frame {
		var rest []*Frame
		var pick *Frame
		for _, lf := range leaseQ {
			switch {
			case pick == nil && lf.Epoch == w.epoch:
				pick = lf
			case lf.Epoch < w.epoch:
				delete(held, lf.Lease)
			default:
				rest = append(rest, lf)
			}
		}
		leaseQ = rest
		return pick
	}

	// Main loop: compute one chunk at a time off the lease queue, send
	// results, heartbeat, and obey done/drain and epoch switches.
	computing := false
	results := make(chan computeOut, 1)
	hb := time.NewTicker(w.cfg.HeartbeatEvery)
	defer hb.Stop()
	for {
		if !computing && w.runner != nil {
			if lf := pickLease(); lf != nil {
				computing = true
				// rel is captured by value: the compute goroutine only nil-tests
				// it, never mutates it, so there is no race with the session
				// goroutine switching the relay on for a later epoch.
				rel := w.rel
				go func(lf *Frame, runner *faultsim.ChunkRunner, epoch uint64) {
					var start, end int64
					if rel != nil {
						start = nowUS()
					}
					out, err := runner.Run(sctx, lf.Begin, lf.End)
					if rel != nil {
						end = nowUS()
					}
					results <- computeOut{lease: lf.Lease, epoch: epoch, out: out, err: err, startUS: start, endUS: end}
				}(lf, w.runner, w.epoch)
			}
		}
		select {
		case f := <-incoming:
			w.rel.noteTS(f.TS)
			if err, ok := terminalFrame(f); ok {
				return true, true, err
			}
			switch f.Type {
			case TypeLease: // chaos-duplicated or next-epoch grants
				stashLease(f)
			case TypeCampaign:
				if err := applyCampaign(f); err != nil {
					return true, true, err
				}
			}
		case r := <-results:
			computing = false
			if r.err != nil {
				if ctx.Err() != nil {
					return true, true, ctx.Err()
				}
				return true, true, r.err
			}
			if r.epoch != w.epoch {
				continue // epoch switched mid-compute: the result is stale
			}
			w.chunks++
			delete(held, r.lease)
			if w.rel != nil && r.startUS != 0 {
				w.rel.chunkSpans(r.lease, r.epoch, faultsim.ChunkIndex(r.out.Begin), r.startUS, r.endUS)
			}
			f := &Frame{
				Type: TypeResult, Lease: r.lease, Epoch: r.epoch,
				Begin: r.out.Begin, End: r.out.End, Chunk: r.out,
				Leases: heldIDs(),
			}
			w.rel.stamp(f, w.chunks, false)
			if err := conn.Send(f); err != nil {
				return failover(err, false)
			}
		case <-hb.C:
			f := &Frame{Type: TypeHeartbeat, Leases: heldIDs()}
			w.rel.stamp(f, w.chunks, true)
			if err := conn.Send(f); err != nil {
				return failover(err, false)
			}
			if needSpec() {
				if err := conn.Send(&Frame{Type: TypeNeedCampaign}); err != nil {
					return failover(err, false)
				}
			}
		case e := <-rerr:
			return failover(e, true)
		case <-ctx.Done():
			return true, true, ctx.Err()
		}
	}
}

// publish emits a worker-side liveness event when a bus is configured,
// and mirrors it into the telemetry relay (if on) so the coordinator's
// stream sees the worker's own view of connects, retries and drains.
func (w *worker) publish(state string, extra ...obs.Attr) {
	if w.cfg.Bus == nil && w.rel == nil {
		return
	}
	name := w.cfg.Name
	if name == "" {
		name = "worker"
	}
	attrs := append([]obs.Attr{
		obs.String("state", state),
		obs.Int("chunks_done", w.chunks),
	}, extra...)
	if w.cfg.Bus != nil {
		w.cfg.Bus.Publish("fabric_worker", name, attrs...)
	}
	if w.rel != nil {
		m := make(map[string]any, len(attrs))
		for _, a := range attrs {
			m[a.Key] = a.Value
		}
		w.rel.event("fabric_worker", name, m)
	}
}
