package faultsim

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// AvailabilityCampaign configures a continuous-time availability
// simulation: each HW node alternates between up (exponential lifetime,
// mean MTTF) and down (exponential repair, mean MTTR). A module is in
// service while enough of its replicas sit on up nodes. This is the
// dynamic counterpart of the analytic metrics.Availability /
// metrics.KOfN computations.
type AvailabilityCampaign struct {
	// HWOf maps replica node names to HW node names.
	HWOf map[string]string
	// ReplicasOf maps each module to its replica node names.
	ReplicasOf map[string][]string
	// MTTF and MTTR are the per-HW-node mean time to failure / repair.
	MTTF, MTTR float64
	// MajorityRequired selects TMR voting semantics (strict majority of
	// replicas needed) over 1-of-n standby.
	MajorityRequired bool
	// Horizon is the simulated duration.
	Horizon float64
	Seed    uint64
}

// AvailabilityResult aggregates an availability simulation.
type AvailabilityResult struct {
	// NodeAvailability is the average fraction of time HW nodes were up.
	NodeAvailability float64
	// ModuleAvailability is the fraction of time each module was in
	// service.
	ModuleAvailability map[string]float64
	// Horizon echoes the simulated duration.
	Horizon float64
}

// ErrBadRates marks invalid MTTF/MTTR/horizon parameters.
var ErrBadRates = errors.New("faultsim: MTTF, MTTR and horizon must be positive")

// RunAvailability executes the continuous-time simulation by event-driven
// state sweeping: node up/down transitions are generated per node, merged
// into a timeline, and module service states integrated over it.
func RunAvailability(c AvailabilityCampaign) (AvailabilityResult, error) {
	if c.MTTF <= 0 || c.MTTR <= 0 || c.Horizon <= 0 {
		return AvailabilityResult{}, ErrBadRates
	}
	if len(c.ReplicasOf) == 0 {
		return AvailabilityResult{}, ErrNoNodes
	}
	rng := rand.New(rand.NewPCG(c.Seed, c.Seed^0x243f6a8885a308d3))

	nodes := map[string]bool{}
	for _, n := range c.HWOf {
		nodes[n] = true
	}
	nodeList := make([]string, 0, len(nodes))
	for n := range nodes {
		nodeList = append(nodeList, n)
	}
	sort.Strings(nodeList)

	// Generate per-node up/down transition times over the horizon.
	type event struct {
		at   float64
		node string
		up   bool
	}
	var events []event
	for _, n := range nodeList {
		t, up := 0.0, true
		for t < c.Horizon {
			var dwell float64
			if up {
				dwell = rng.ExpFloat64() * c.MTTF
			} else {
				dwell = rng.ExpFloat64() * c.MTTR
			}
			t += dwell
			if t >= c.Horizon {
				break
			}
			up = !up
			events = append(events, event{at: t, node: n, up: up})
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].node < events[j].node
	})

	modules := make([]string, 0, len(c.ReplicasOf))
	for m := range c.ReplicasOf {
		modules = append(modules, m)
	}
	sort.Strings(modules)

	up := map[string]bool{}
	for _, n := range nodeList {
		up[n] = true
	}
	inService := func(m string) bool {
		reps := c.ReplicasOf[m]
		alive := 0
		for _, r := range reps {
			if up[c.HWOf[r]] {
				alive++
			}
		}
		need := 1
		if c.MajorityRequired {
			need = len(reps)/2 + 1
		}
		return alive >= need
	}

	res := AvailabilityResult{
		ModuleAvailability: map[string]float64{},
		Horizon:            c.Horizon,
	}
	nodeUpTime := 0.0
	serviceTime := map[string]float64{}
	prev := 0.0
	integrate := func(until float64) {
		dt := until - prev
		if dt <= 0 {
			return
		}
		for _, n := range nodeList {
			if up[n] {
				nodeUpTime += dt
			}
		}
		for _, m := range modules {
			if inService(m) {
				serviceTime[m] += dt
			}
		}
		prev = until
	}
	for _, e := range events {
		integrate(math.Min(e.at, c.Horizon))
		up[e.node] = e.up
	}
	integrate(c.Horizon)

	if len(nodeList) > 0 {
		res.NodeAvailability = nodeUpTime / (c.Horizon * float64(len(nodeList)))
	}
	for _, m := range modules {
		res.ModuleAvailability[m] = serviceTime[m] / c.Horizon
	}
	return res, nil
}

// AnalyticNodeAvailability returns the steady-state MTTF/(MTTF+MTTR)
// value the simulation should converge to.
func AnalyticNodeAvailability(mttf, mttr float64) (float64, error) {
	if mttf <= 0 || mttr <= 0 {
		return 0, fmt.Errorf("%w: mttf=%g mttr=%g", ErrBadRates, mttf, mttr)
	}
	return mttf / (mttf + mttr), nil
}
