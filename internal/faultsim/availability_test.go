package faultsim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/metrics"
)

func TestRunAvailabilityValidation(t *testing.T) {
	base := AvailabilityCampaign{
		HWOf:       map[string]string{"m": "h1"},
		ReplicasOf: map[string][]string{"mod": {"m"}},
		MTTF:       100, MTTR: 10, Horizon: 1000,
	}
	bad := base
	bad.MTTF = 0
	if _, err := RunAvailability(bad); !errors.Is(err, ErrBadRates) {
		t.Errorf("err = %v", err)
	}
	bad = base
	bad.Horizon = 0
	if _, err := RunAvailability(bad); !errors.Is(err, ErrBadRates) {
		t.Errorf("err = %v", err)
	}
	bad = base
	bad.ReplicasOf = nil
	if _, err := RunAvailability(bad); !errors.Is(err, ErrNoNodes) {
		t.Errorf("err = %v", err)
	}
}

func TestAvailabilityMatchesAnalyticSteadyState(t *testing.T) {
	// Single simplex module: availability ~= MTTF/(MTTF+MTTR) = 0.9091.
	c := AvailabilityCampaign{
		HWOf:       map[string]string{"m": "h1"},
		ReplicasOf: map[string][]string{"mod": {"m"}},
		MTTF:       100, MTTR: 10,
		Horizon: 2e6, Seed: 3,
	}
	r, err := RunAvailability(c)
	if err != nil {
		t.Fatal(err)
	}
	want, err := AnalyticNodeAvailability(100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.NodeAvailability-want) > 0.01 {
		t.Errorf("node availability = %g, want ~%g", r.NodeAvailability, want)
	}
	if math.Abs(r.ModuleAvailability["mod"]-want) > 0.01 {
		t.Errorf("module availability = %g, want ~%g", r.ModuleAvailability["mod"], want)
	}
}

func TestAvailabilityTMRBeatsSimplexDynamically(t *testing.T) {
	// TMR on three independent nodes vs simplex: per-node availability a =
	// 10/11; TMR majority availability = KOfN(2,3,a) ≈ 0.9774.
	c := AvailabilityCampaign{
		HWOf: map[string]string{
			"s": "h1", "ta": "h2", "tb": "h3", "tc": "h4",
		},
		ReplicasOf: map[string][]string{
			"simplex": {"s"}, "tmr": {"ta", "tb", "tc"},
		},
		MTTF: 100, MTTR: 10,
		MajorityRequired: true,
		Horizon:          2e6, Seed: 9,
	}
	r, err := RunAvailability(c)
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnalyticNodeAvailability(100, 10)
	if err != nil {
		t.Fatal(err)
	}
	analyticTMR, err := metrics.KOfN(2, 3, a)
	if err != nil {
		t.Fatal(err)
	}
	got := r.ModuleAvailability["tmr"]
	if math.Abs(got-analyticTMR) > 0.01 {
		t.Errorf("TMR availability = %g, analytic %g", got, analyticTMR)
	}
	if got <= r.ModuleAvailability["simplex"] {
		t.Errorf("TMR %g not above simplex %g", got, r.ModuleAvailability["simplex"])
	}
}

func TestAvailabilityColocatedReplicasNoBenefit(t *testing.T) {
	// Both replicas on one node: duplex degenerates to simplex — the
	// dynamic version of the §5.2 constraint.
	c := AvailabilityCampaign{
		HWOf:       map[string]string{"da": "h1", "db": "h1"},
		ReplicasOf: map[string][]string{"duplex": {"da", "db"}},
		MTTF:       100, MTTR: 10,
		Horizon: 2e6, Seed: 5,
	}
	r, err := RunAvailability(c)
	if err != nil {
		t.Fatal(err)
	}
	want, err := AnalyticNodeAvailability(100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.ModuleAvailability["duplex"]-want) > 0.01 {
		t.Errorf("colocated duplex availability = %g, want simplex-equivalent %g",
			r.ModuleAvailability["duplex"], want)
	}
}

func TestAnalyticNodeAvailabilityValidation(t *testing.T) {
	if _, err := AnalyticNodeAvailability(0, 1); !errors.Is(err, ErrBadRates) {
		t.Errorf("err = %v", err)
	}
}
