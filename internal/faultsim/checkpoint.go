package faultsim

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/attrs"
	"repro/internal/stage"
)

// ErrCheckpointMismatch is returned when a checkpoint file exists but was
// written by a campaign with a different identity (graph, seed, fault
// model, …). The trial count is deliberately NOT part of the identity, so
// a finished campaign can be resumed with a larger Trials to extend it.
var ErrCheckpointMismatch = errors.New("faultsim: checkpoint does not match campaign")

// ErrCheckpointCorrupt is returned when a checkpoint or search-journal
// file exists but does not decode — a truncated torn write, a leftover
// temp file renamed into place, byte rot. The error is classified under
// the taxonomy's "resume" stage and names the path and, when the decoder
// can pin one, the byte offset of the damage. Campaign.LaxResume (and
// SearchConfig.LaxResume) downgrade it to a logged restart-from-zero;
// identity mismatches are never downgraded.
var ErrCheckpointCorrupt = errors.New("faultsim: checkpoint corrupt")

// corruptError classifies a decode failure of the file at path as an
// ErrCheckpointCorrupt wrapped in a "resume"-stage taxonomy error. The
// offset of the damage is recovered from the JSON decoder when it reports
// one; a truncated file reports its length (the decoder ran off the end).
func corruptError(rule, path string, data []byte, err error) error {
	offset := int64(len(data))
	var syn *json.SyntaxError
	var typ *json.UnmarshalTypeError
	switch {
	case errors.As(err, &syn):
		offset = syn.Offset
	case errors.As(err, &typ):
		offset = typ.Offset
	}
	return stage.Wrap("resume", rule, "", fmt.Errorf(
		"%w: %s at offset %d of %d: %v", ErrCheckpointCorrupt, path, offset, len(data), err))
}

// Version 2 dropped the serialized PCG state: per-trial substream seeding
// means the completed-trial frontier alone positions a resume exactly, for
// any worker count. Version-1 checkpoints are rejected as mismatches.
const checkpointVersion = 2

// checkpointFile is the on-disk snapshot of a campaign in flight: the
// merged partial Result, the completed-trial frontier, and a fingerprint
// of everything that determines the trial sequence. Writes are atomic
// (temp file in the destination directory, then rename), so a crash
// mid-write leaves the previous checkpoint intact and a resumed run is
// bit-identical to an uninterrupted one.
type checkpointFile struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
	TrialsDone  int    `json:"trials_done"`
	Result      Result `json:"result"`
}

// fingerprint hashes the campaign identity: everything that influences the
// deterministic trial sequence except the trial count. Graph node and edge
// enumerations are sorted, so equal campaigns hash equally.
func (c Campaign) fingerprint() string {
	h := fnv.New64a()
	ws := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	wf := func(f float64) { ws(strconv.FormatUint(math.Float64bits(f), 16)) }
	ws("faultsim-campaign-v2")
	ws(strconv.FormatUint(c.Seed, 16))
	ws(strconv.Itoa(c.MaxHops))
	wf(c.CriticalThreshold)
	wf(c.CommFaultFraction)
	// The fault model is part of the campaign identity: a resume under a
	// different model (or different model parameters) must be rejected.
	c.model().fingerprint(ws, wf)
	for _, n := range c.Graph.Nodes() {
		ws(n)
		ws(c.HWOf[n])
		wf(c.OccurrenceWeights[n])
		wf(c.Graph.Attrs(n).Value(attrs.Criticality))
	}
	for _, e := range c.Graph.Edges() {
		ws(e.From)
		ws(e.To)
		wf(e.Weight)
		ws(strconv.FormatBool(e.Replica))
	}
	return strconv.FormatUint(h.Sum64(), 16)
}

// saveCheckpoint atomically persists the campaign state after done trials.
func saveCheckpoint(path, fp string, done int, res Result) error {
	data, err := json.Marshal(checkpointFile{
		Version:     checkpointVersion,
		Fingerprint: fp,
		TrialsDone:  done,
		Result:      res,
	})
	if err != nil {
		return fmt.Errorf("faultsim: checkpoint encode: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".faultsim-ckpt-*")
	if err != nil {
		return fmt.Errorf("faultsim: checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmpName, path)
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("faultsim: checkpoint write %s: %w", path, err)
	}
	return nil
}

// loadCheckpoint reads a checkpoint if one exists at path. ok is false
// when the file is simply absent; a present-but-foreign checkpoint is an
// error (ErrCheckpointMismatch), never silently ignored.
func loadCheckpoint(path, fp string) (checkpointFile, bool, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return checkpointFile{}, false, nil
	}
	if err != nil {
		return checkpointFile{}, false, fmt.Errorf("faultsim: checkpoint read: %w", err)
	}
	var cf checkpointFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return checkpointFile{}, false, corruptError("checkpoint", path, data, err)
	}
	if cf.Version != checkpointVersion {
		return checkpointFile{}, false, fmt.Errorf("%w: version %d, want %d",
			ErrCheckpointMismatch, cf.Version, checkpointVersion)
	}
	if cf.Fingerprint != fp {
		return checkpointFile{}, false, fmt.Errorf("%w: fingerprint %s, want %s",
			ErrCheckpointMismatch, cf.Fingerprint, fp)
	}
	return cf, true, nil
}

// stopZ converts a two-sided confidence level into the normal quantile used
// by the early-stopping interval (0.95 → 1.96).
func stopZ(confidence float64) float64 {
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	return math.Sqrt2 * math.Erfinv(confidence)
}

// waldHalfWidth is the half-width of the normal-approximation confidence
// interval for a proportion p̂ observed over n trials.
func waldHalfWidth(p float64, n int, z float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	return z * math.Sqrt(p*(1-p)/float64(n))
}
