package faultsim

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/attrs"
	"repro/internal/graph"
)

// web builds a small multi-node graph with HW placement and criticality,
// exercising every Result counter a checkpoint must round-trip.
func web(t *testing.T) (*graph.Graph, map[string]string) {
	t.Helper()
	g := graph.New()
	crits := map[string]float64{"a": 12, "b": 3, "c": 7, "d": 1}
	for _, n := range []string{"a", "b", "c", "d"} {
		if err := g.AddNode(n, attrs.New(map[attrs.Kind]float64{attrs.Criticality: crits[n]})); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []struct {
		from, to string
		w        float64
	}{
		{"a", "b", 0.6}, {"b", "c", 0.4}, {"c", "d", 0.5}, {"d", "a", 0.3}, {"a", "c", 0.2},
	} {
		if err := g.SetEdge(e.from, e.to, e.w); err != nil {
			t.Fatal(err)
		}
	}
	return g, map[string]string{"a": "h1", "b": "h1", "c": "h2", "d": "h2"}
}

// cancelAfter is a context.Context whose Err fires context.Canceled after a
// fixed number of polls — a deterministic stand-in for a kill signal landing
// mid-campaign. The counter is atomic because parallel campaign workers
// poll Err concurrently.
type cancelAfter struct {
	polls atomic.Int64
}

func newCancelAfter(polls int) *cancelAfter {
	c := &cancelAfter{}
	c.polls.Store(int64(polls))
	return c
}

func (c *cancelAfter) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *cancelAfter) Done() <-chan struct{}       { return nil }
func (c *cancelAfter) Value(any) any               { return nil }
func (c *cancelAfter) Err() error {
	if c.polls.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func campaign(g *graph.Graph, hw map[string]string, path string) Campaign {
	return Campaign{
		Graph:             g,
		HWOf:              hw,
		Trials:            2000,
		Seed:              77,
		CriticalThreshold: 10,
		CommFaultFraction: 0.3,
		CheckpointPath:    path,
		CheckpointEvery:   50,
	}
}

func TestCheckpointKillAndResumeBitIdentical(t *testing.T) {
	g, hw := web(t)
	dir := t.TempDir()

	// Reference: the uninterrupted run (no checkpointing at all).
	ref := campaign(g, hw, "")
	want, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: the context dies after ~half the trials; Run must
	// persist the exact boundary and report the cancellation.
	path := filepath.Join(dir, "campaign.ckpt")
	killed := campaign(g, hw, path)
	killed.Ctx = newCancelAfter(killed.Trials / 2)
	if _, err := Run(killed); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run err = %v, want context.Canceled", err)
	}

	// Resume and finish.
	resumed := campaign(g, hw, path)
	resumed.Resume = true
	got, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed result differs from uninterrupted run:\n got: %+v\nwant: %+v", got, want)
	}
}

func TestCheckpointResumeExtendsTrials(t *testing.T) {
	g, hw := web(t)
	path := filepath.Join(t.TempDir(), "campaign.ckpt")

	short := campaign(g, hw, path)
	short.Trials = 600
	if _, err := Run(short); err != nil {
		t.Fatal(err)
	}

	long := campaign(g, hw, path)
	long.Trials = 1500
	long.Resume = true
	got, err := Run(long)
	if err != nil {
		t.Fatal(err)
	}

	ref := campaign(g, hw, "")
	ref.Trials = 1500
	want, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("extended resume differs from a fresh run of the full length")
	}
}

func TestCheckpointMismatchRejected(t *testing.T) {
	g, hw := web(t)
	path := filepath.Join(t.TempDir(), "campaign.ckpt")

	first := campaign(g, hw, path)
	if _, err := Run(first); err != nil {
		t.Fatal(err)
	}

	other := campaign(g, hw, path)
	other.Seed = 78 // different campaign identity
	other.Resume = true
	if _, err := Run(other); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("resume with foreign checkpoint err = %v, want ErrCheckpointMismatch", err)
	}

	// A resumed shrink (fewer trials than already done) is also a mismatch.
	shrunk := campaign(g, hw, path)
	shrunk.Trials = 10
	shrunk.Resume = true
	if _, err := Run(shrunk); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("resume shrinking trials err = %v, want ErrCheckpointMismatch", err)
	}

	// Corrupt checkpoint: surfaced, never silently restarted.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	corrupt := campaign(g, hw, path)
	corrupt.Resume = true
	if _, err := Run(corrupt); err == nil {
		t.Error("resume from corrupt checkpoint succeeded, want error")
	}

	// An absent checkpoint starts cleanly from trial zero.
	fresh := campaign(g, hw, filepath.Join(t.TempDir(), "absent.ckpt"))
	fresh.Resume = true
	if _, err := Run(fresh); err != nil {
		t.Errorf("resume with absent checkpoint err = %v, want nil", err)
	}
}

func TestRunCancelledBeforeStart(t *testing.T) {
	g, hw := web(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := campaign(g, hw, "")
	c.Ctx = ctx
	if _, err := Run(c); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestEarlyStopping(t *testing.T) {
	g, hw := web(t)
	c := campaign(g, hw, "")
	c.Trials = 100000
	c.StopHalfWidth = 0.02
	c.CheckpointEvery = 100
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.EarlyStopped {
		t.Fatal("campaign did not stop early at a ±0.02 interval in 100k trials")
	}
	if res.Trials >= 100000 || res.Trials < 100 {
		t.Errorf("early-stopped trial count = %d", res.Trials)
	}
	// The interval claim must hold at the stopping point.
	if hwid := waldHalfWidth(res.EscapeRate(), res.Trials, stopZ(0)); hwid > 0.02 {
		t.Errorf("half-width at stop = %g, want <= 0.02", hwid)
	}
}

func TestCommFaultFractionBoundaries(t *testing.T) {
	g, hw := web(t)

	// Fraction 0: every fault originates in an FCM.
	zero := campaign(g, hw, "")
	zero.CommFaultFraction = 0
	r, err := Run(zero)
	if err != nil {
		t.Fatal(err)
	}
	if r.CommFaultTrials != 0 {
		t.Errorf("fraction 0: comm fault trials = %d, want 0", r.CommFaultTrials)
	}

	// Fraction 1: every fault originates in a communication edge.
	one := campaign(g, hw, "")
	one.CommFaultFraction = 1
	r, err = Run(one)
	if err != nil {
		t.Fatal(err)
	}
	if r.CommFaultTrials != r.Trials {
		t.Errorf("fraction 1: comm fault trials = %d, want %d", r.CommFaultTrials, r.Trials)
	}

	// Just outside the boundaries: rejected.
	for _, f := range []float64{-0.001, 1.001} {
		bad := campaign(g, hw, "")
		bad.CommFaultFraction = f
		if _, err := Run(bad); err == nil {
			t.Errorf("fraction %g accepted, want error", f)
		}
	}
}
