package faultsim

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/stage"
)

// truncate chops the file to half its bytes — a crash mid-write on a
// filesystem without atomic rename, or a copy that died partway.
func truncate(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCampaignCorruptCheckpointStrict(t *testing.T) {
	g, hw := web(t)
	path := filepath.Join(t.TempDir(), "campaign.ckpt")
	c := campaign(g, hw, path)
	if _, err := Run(c); err != nil {
		t.Fatal(err)
	}
	truncate(t, path)

	rs := campaign(g, hw, path)
	rs.Resume = true
	_, err := Run(rs)
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("resume from truncated checkpoint err = %v, want ErrCheckpointCorrupt", err)
	}
	var serr *stage.Error
	if !errors.As(err, &serr) {
		t.Fatalf("corrupt error is not a stage.Error: %v", err)
	}
	if serr.Stage != "resume" || serr.Rule != "checkpoint" {
		t.Errorf("stage/rule = %s/%s, want resume/checkpoint", serr.Stage, serr.Rule)
	}
	// The message must name the file and the offending offset so the
	// operator can inspect the damage.
	if msg := err.Error(); !strings.Contains(msg, path) || !strings.Contains(msg, "offset") {
		t.Errorf("corrupt error does not name path and offset: %s", msg)
	}
}

func TestCampaignCorruptCheckpointLaxRestartsFresh(t *testing.T) {
	g, hw := web(t)
	dir := t.TempDir()

	want, err := Run(campaign(g, hw, filepath.Join(dir, "fresh.ckpt")))
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "campaign.ckpt")
	c := campaign(g, hw, path)
	if _, err := Run(c); err != nil {
		t.Fatal(err)
	}
	// Not even valid JSON: lax resume must discard it and restart from
	// trial zero, producing the identical fresh result.
	if err := os.WriteFile(path, []byte("{\"version\":2,"), 0o644); err != nil {
		t.Fatal(err)
	}
	rs := campaign(g, hw, path)
	rs.Resume = true
	rs.LaxResume = true
	got, err := Run(rs)
	if err != nil {
		t.Fatalf("lax resume from corrupt checkpoint: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("lax-resumed run differs from a fresh run")
	}

	// Lax resume forgives damage, not identity mismatches: a checkpoint
	// from a different campaign must still be rejected.
	other := campaign(g, hw, path)
	other.Seed++
	if _, err := Run(other); err != nil {
		t.Fatal(err)
	}
	rs2 := campaign(g, hw, path)
	rs2.Resume = true
	rs2.LaxResume = true
	if _, err := Run(rs2); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("lax resume from foreign checkpoint err = %v, want ErrCheckpointMismatch", err)
	}
}

func TestSearchCorruptJournalStrictAndLax(t *testing.T) {
	g, hw := web(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "search.ckpt")

	want, err := Search(searchConfig(g, hw, ""))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Search(searchConfig(g, hw, path)); err != nil {
		t.Fatal(err)
	}
	truncate(t, path)

	// Strict: a typed error naming the journal and offset.
	rs := searchConfig(g, hw, path)
	rs.Resume = true
	_, err = Search(rs)
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("resume from truncated journal err = %v, want ErrCheckpointCorrupt", err)
	}
	var serr *stage.Error
	if !errors.As(err, &serr) {
		t.Fatalf("corrupt error is not a stage.Error: %v", err)
	}
	if serr.Stage != "resume" || serr.Rule != "search" {
		t.Errorf("stage/rule = %s/%s, want resume/search", serr.Stage, serr.Rule)
	}
	if msg := err.Error(); !strings.Contains(msg, path) || !strings.Contains(msg, "offset") {
		t.Errorf("corrupt error does not name path and offset: %s", msg)
	}

	// Lax: the damaged journal is discarded and the climb restarts
	// fresh, landing on the identical result.
	lax := searchConfig(g, hw, path)
	lax.Resume = true
	lax.LaxResume = true
	got, err := Search(lax)
	if err != nil {
		t.Fatalf("lax resume from corrupt journal: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("lax-resumed search differs from a fresh search")
	}
}
