package faultsim

import (
	"context"
	"fmt"
	"math/rand/v2"

	"repro/internal/stage"
)

// This file is the distributed execution surface of the campaign engine:
// the pieces a remote coordinator/worker fabric needs to shard a campaign
// across processes or machines while staying bit-identical to Run.
//
// The contract rests on two properties Run already has. First, every trial
// draws from its own PCG substream derived from (Seed, trial index), so a
// chunk's outcome is a pure function of the campaign configuration and the
// chunk bounds — it does not matter which process computes it. Second,
// chunks live on an absolute grid and merge strictly in grid order, so the
// accumulated Result (including every float addition, telemetry
// checkpoint, persistence point and early-stopping decision) is the same
// no matter how chunk computation was scheduled. A ChunkRunner computes
// chunks anywhere; a Merger folds their outputs in grid order; together
// they reproduce Run exactly.

// ChunkSize is the grain of the absolute trial grid: chunk i covers trials
// [i*ChunkSize, min((i+1)*ChunkSize, Trials)).
const ChunkSize = trialChunkSize

// NumChunks returns how many grid chunks a campaign of the given trial
// count has.
func NumChunks(trials int) int {
	return (trials + ChunkSize - 1) / ChunkSize
}

// ChunkBounds returns the trial bounds [begin, end) of grid chunk i.
func ChunkBounds(i, trials int) (begin, end int) {
	begin = i * ChunkSize
	return begin, chunkEnd(begin, trials)
}

// ChunkIndex returns the grid chunk that begins at trial begin.
func ChunkIndex(begin int) int { return begin / ChunkSize }

// Fingerprint hashes the campaign identity: everything that determines
// the deterministic trial sequence except the trial count and worker
// topology. Two processes that built their campaigns from the same
// specification fingerprint equally; the fabric's handshake compares
// these before any trials move, mirroring the checkpoint fingerprints.
func (c Campaign) Fingerprint() string { return c.fingerprint() }

// ChunkOutput is the serialisable outcome of one grid chunk — an exported
// chunkResult plus its bounds, suitable for a JSON wire. The per-trial
// float slices preserve addition order across the wire: encoding/json
// round-trips float64 exactly (shortest-form rendering), so a merged
// Result built from remote chunks is bit-identical to a local run.
type ChunkOutput struct {
	Begin              int            `json:"begin"`
	End                int            `json:"end"`
	TotalAffected      int            `json:"total_affected"`
	CrossTransmissions int            `json:"cross_transmissions"`
	TrialsWithEscape   int            `json:"trials_with_escape"`
	CommFaultTrials    int            `json:"comm_fault_trials"`
	CriticalAffected   int            `json:"critical_affected"`
	InitialFaults      int            `json:"initial_faults"`
	TransientFaults    int            `json:"transient_faults"`
	CritPerTrial       []float64      `json:"crit_per_trial"`
	EscPerTrial        []float64      `json:"esc_per_trial"`
	AffectedCount      map[string]int `json:"affected_count,omitempty"`
	TransmissionCount  map[string]int `json:"transmission_count,omitempty"`
	EdgeTrials         map[string]int `json:"edge_trials,omitempty"`
}

// output exports a chunkResult.
func (ch *chunkResult) output(begin, end int) *ChunkOutput {
	return &ChunkOutput{
		Begin:              begin,
		End:                end,
		TotalAffected:      ch.totalAffected,
		CrossTransmissions: ch.crossTransmissions,
		TrialsWithEscape:   ch.trialsWithEscape,
		CommFaultTrials:    ch.commFaultTrials,
		CriticalAffected:   ch.criticalAffected,
		InitialFaults:      ch.initialFaults,
		TransientFaults:    ch.transientFaults,
		CritPerTrial:       ch.critPerTrial,
		EscPerTrial:        ch.escPerTrial,
		AffectedCount:      ch.affectedCount,
		TransmissionCount:  ch.transmissionCount,
		EdgeTrials:         ch.edgeTrials,
	}
}

// chunk re-imports a ChunkOutput for merging. Nil maps (elided by
// omitempty on the wire) come back as empty maps.
func (co *ChunkOutput) chunk() *chunkResult {
	ch := &chunkResult{
		totalAffected:      co.TotalAffected,
		crossTransmissions: co.CrossTransmissions,
		trialsWithEscape:   co.TrialsWithEscape,
		commFaultTrials:    co.CommFaultTrials,
		criticalAffected:   co.CriticalAffected,
		initialFaults:      co.InitialFaults,
		transientFaults:    co.TransientFaults,
		critPerTrial:       co.CritPerTrial,
		escPerTrial:        co.EscPerTrial,
		affectedCount:      co.AffectedCount,
		transmissionCount:  co.TransmissionCount,
		edgeTrials:         co.EdgeTrials,
	}
	if ch.affectedCount == nil {
		ch.affectedCount = map[string]int{}
	}
	if ch.transmissionCount == nil {
		ch.transmissionCount = map[string]int{}
	}
	if ch.edgeTrials == nil {
		ch.edgeTrials = map[string]int{}
	}
	return ch
}

// ChunkRunner computes grid chunks of one campaign — the worker side of a
// distributed run. It validates the campaign once and precomputes the
// immutable trial environment; Run then executes any chunk on its own
// substreams. A ChunkRunner is safe for concurrent Run calls.
type ChunkRunner struct {
	env    *campaignEnv
	trials int
}

// NewChunkRunner validates c and builds the runner. Only the fields that
// determine the trial sequence matter; telemetry, checkpointing and
// worker-pool fields are ignored.
func NewChunkRunner(c Campaign) (*ChunkRunner, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	return &ChunkRunner{env: newCampaignEnv(&c), trials: c.Trials}, nil
}

// Trials returns the campaign's configured trial count.
func (r *ChunkRunner) Trials() int { return r.trials }

// Run executes trials [begin, end), which must be exactly one grid chunk.
// The context is polled at every trial boundary; a cancelled chunk is
// all-or-nothing.
func (r *ChunkRunner) Run(ctx context.Context, begin, end int) (*ChunkOutput, error) {
	if begin < 0 || begin%ChunkSize != 0 || end != chunkEnd(begin, r.trials) || begin >= r.trials {
		return nil, stage.Wrap("inject", "chunk", "", fmt.Errorf(
			"faultsim: chunk [%d,%d) is not on the %d-trial grid of %d trials",
			begin, end, ChunkSize, r.trials))
	}
	pcg := rand.NewPCG(0, 0)
	rng := rand.New(pcg)
	ch := newChunkResult()
	if err := r.env.runChunk(ctx, pcg, rng, begin, end, ch); err != nil {
		return nil, err
	}
	return ch.output(begin, end), nil
}

// Merger folds chunk outputs into a campaign Result, strictly in grid
// order — the coordinator side of a distributed run. It owns everything
// Run's merge goroutine owns: the partial Result, the completed-trial
// frontier, telemetry checkpoints, crash-safe persistence
// (Campaign.CheckpointPath, resumable across coordinator restarts via the
// v2 checkpoint format) and Wald early stopping. Callers feed it
// contiguous chunks; out-of-order buffering is the caller's job, exactly
// as in Run's worker pool.
type Merger struct {
	run *campaignRun
}

// NewMerger validates c, restores a checkpoint when c.Resume is set, and
// publishes the "campaign_start" event. workersHint is recorded in that
// event (a distributed fabric may pass 0 for "unknown/dynamic").
func NewMerger(c Campaign, workersHint int) (*Merger, error) {
	run, start, err := newCampaignRun(&c, workersHint)
	if err != nil {
		return nil, err
	}
	_ = start // run.done == start; exposed via Frontier
	return &Merger{run: run}, nil
}

// Frontier returns the completed-trial frontier: every trial below it has
// been merged. A fresh merger starts at 0; a resumed one at the
// checkpoint's frontier.
func (m *Merger) Frontier() int { return m.run.done }

// Trials returns the campaign's configured trial count.
func (m *Merger) Trials() int { return m.run.c.Trials }

// Done reports whether the campaign is complete: the frontier reached the
// trial count, or early stopping ended it.
func (m *Merger) Done() bool {
	return m.run.done >= m.run.c.Trials || m.run.res.EarlyStopped
}

// Absorb folds one chunk into the Result. The chunk must begin exactly at
// the frontier. stop reports that Wald early stopping ended the campaign
// at this chunk's end; the caller must discard any speculative chunks
// beyond it, as Run does.
func (m *Merger) Absorb(co *ChunkOutput) (stop bool, err error) {
	if co.Begin != m.run.done {
		return false, stage.Wrap("inject", "merge", "", fmt.Errorf(
			"faultsim: chunk [%d,%d) absorbed out of order, frontier %d",
			co.Begin, co.End, m.run.done))
	}
	return m.run.merge(co.Begin, co.End, co.chunk())
}

// Abort persists the frontier checkpoint (when configured) and returns
// the campaign's cancellation error wrapping cause — the graceful-drain
// exit of a coordinator.
func (m *Merger) Abort(cause error) error { return m.run.cancelled(cause) }

// Finish publishes the terminal telemetry and returns the merged Result.
// Call once, after Done reports true.
func (m *Merger) Finish() Result { return m.run.finish() }
