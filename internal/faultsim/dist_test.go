package faultsim

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"reflect"
	"testing"
)

// runDistributed replays a campaign through the distributed surface: a
// ChunkRunner computes every grid chunk (optionally after a JSON
// round-trip, as the wire would) and a Merger absorbs them in order.
func runDistributed(t *testing.T, c Campaign, viaJSON bool) Result {
	t.Helper()
	runner, err := NewChunkRunner(c)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMerger(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	for !m.Done() {
		seq := ChunkIndex(m.Frontier())
		begin, end := ChunkBounds(seq, c.Trials)
		out, err := runner.Run(context.Background(), begin, end)
		if err != nil {
			t.Fatal(err)
		}
		if viaJSON {
			raw, err := json.Marshal(out)
			if err != nil {
				t.Fatal(err)
			}
			out = &ChunkOutput{}
			if err := json.Unmarshal(raw, out); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := m.Absorb(out); err != nil {
			t.Fatal(err)
		}
	}
	return m.Finish()
}

func TestDistributedSurfaceMatchesRun(t *testing.T) {
	g, hw := web(t)
	c := Campaign{
		Graph: g, HWOf: hw, Trials: 1000, Seed: 42,
		CriticalThreshold: 10, CommFaultFraction: 0.3,
	}
	ref := c
	ref.Workers = 1
	want, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	// Both the in-memory path and the JSON round-trip must be
	// bit-identical to Run: encoding/json renders float64 in shortest
	// exact form, so per-trial slices survive the wire unchanged.
	if got := runDistributed(t, c, false); !reflect.DeepEqual(got, want) {
		t.Error("in-memory distributed result differs from Run")
	}
	if got := runDistributed(t, c, true); !reflect.DeepEqual(got, want) {
		t.Error("JSON round-tripped distributed result differs from Run")
	}
}

func TestDistributedEarlyStopMatchesRun(t *testing.T) {
	g, hw := web(t)
	c := Campaign{
		Graph: g, HWOf: hw, Trials: 8000, Seed: 42,
		CriticalThreshold: 10, CommFaultFraction: 0.3,
		StopHalfWidth: 0.05,
	}
	ref := c
	ref.Workers = 1
	want, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !want.EarlyStopped {
		t.Fatal("reference run did not early-stop; widen the test")
	}
	got := runDistributed(t, c, true)
	if !reflect.DeepEqual(got, want) {
		t.Error("early-stopped distributed result differs from Run")
	}
	if got.Trials >= c.Trials {
		t.Errorf("early stop merged all %d trials", got.Trials)
	}
}

func TestDistributedResumeFromCheckpoint(t *testing.T) {
	g, hw := web(t)
	path := filepath.Join(t.TempDir(), "dist.ckpt")
	c := Campaign{
		Graph: g, HWOf: hw, Trials: 1000, Seed: 42,
		CriticalThreshold: 10, CommFaultFraction: 0.3,
		CheckpointPath: path, CheckpointEvery: 100,
	}
	ref := c
	ref.CheckpointPath = ""
	ref.Workers = 1
	want, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}

	// Merge half the chunks, abort (persisting the frontier), then build
	// a fresh Merger with Resume: it must pick up where the first left
	// off and finish bit-identically.
	runner, err := NewChunkRunner(c)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := NewMerger(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	half := NumChunks(c.Trials) / 2
	for i := 0; i < half; i++ {
		begin, end := ChunkBounds(i, c.Trials)
		out, err := runner.Run(context.Background(), begin, end)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m1.Absorb(out); err != nil {
			t.Fatal(err)
		}
	}
	if err := m1.Abort(context.Canceled); !errors.Is(err, context.Canceled) {
		t.Fatalf("Abort err = %v, want context.Canceled", err)
	}

	rc := c
	rc.Resume = true
	m2, err := NewMerger(rc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Frontier() == 0 {
		t.Fatal("resumed merger did not restore the frontier")
	}
	for !m2.Done() {
		begin, end := ChunkBounds(ChunkIndex(m2.Frontier()), c.Trials)
		out, err := runner.Run(context.Background(), begin, end)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m2.Absorb(out); err != nil {
			t.Fatal(err)
		}
	}
	if got := m2.Finish(); !reflect.DeepEqual(got, want) {
		t.Error("resumed distributed result differs from uninterrupted Run")
	}
}

func TestChunkRunnerRejectsOffGridBounds(t *testing.T) {
	g, hw := web(t)
	c := Campaign{Graph: g, HWOf: hw, Trials: 1000, Seed: 42}
	runner, err := NewChunkRunner(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range [][2]int{
		{1, 65},      // misaligned begin
		{0, 63},      // short end
		{0, 100},     // long end
		{960, 1001},  // end past trials
		{1024, 1088}, // begin past trials
		{-64, 0},     // negative
	} {
		if _, err := runner.Run(context.Background(), tc[0], tc[1]); err == nil {
			t.Errorf("chunk [%d,%d) accepted, want grid error", tc[0], tc[1])
		}
	}
	if _, err := runner.Run(context.Background(), 960, 1000); err != nil {
		t.Errorf("final partial chunk rejected: %v", err)
	}
}

func TestMergerRejectsOutOfOrderChunks(t *testing.T) {
	g, hw := web(t)
	c := Campaign{Graph: g, HWOf: hw, Trials: 1000, Seed: 42}
	runner, err := NewChunkRunner(c)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMerger(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := runner.Run(context.Background(), 64, 128)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Absorb(out); err == nil {
		t.Fatal("absorbed chunk [64,128) at frontier 0, want order error")
	}
	if m.Frontier() != 0 {
		t.Errorf("failed absorb moved the frontier to %d", m.Frontier())
	}
}

func TestFingerprintSeparatesCampaigns(t *testing.T) {
	g, hw := web(t)
	a := Campaign{Graph: g, HWOf: hw, Trials: 1000, Seed: 42}
	b := a
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical campaigns fingerprint differently")
	}
	b.Seed = 43
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("different seeds share a fingerprint")
	}
	c := a
	c.CommFaultFraction = 0.5
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different comm-fault fractions share a fingerprint")
	}
}

func TestChunkRunnerHonoursContext(t *testing.T) {
	g, hw := web(t)
	c := Campaign{Graph: g, HWOf: hw, Trials: 1000, Seed: 42}
	runner, err := NewChunkRunner(c)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := runner.Run(ctx, 0, 64); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled chunk err = %v, want context.Canceled", err)
	}
}
