// Package faultsim provides a seeded Monte-Carlo fault-injection simulator
// over influence graphs and HW mappings. It supplies the measurement
// machinery the framework calls for: "the value of p_i3 can be determined
// by injecting faults into the target FCM" (§4.2.1), and it quantifies how
// well a mapping contains faults — the paper's own goodness criterion
// ("faults are not propagated across HW nodes", §5.3).
//
// The propagation model follows the paper's fault model (§2): faults occur
// in single FCMs or in communication between a pair of FCMs; transmission
// probabilities are independent of dynamic context; an influence edge of
// weight w transmits a fault from source to target with probability w.
package faultsim

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/attrs"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Errors returned by campaign configuration.
var (
	ErrNoTrials = errors.New("faultsim: trials must be positive")
	ErrNoNodes  = errors.New("faultsim: graph has no nodes")
)

// Campaign configures a fault-injection run.
type Campaign struct {
	// Graph is the influence graph faults propagate over (typically the
	// full replicated graph, pre-condensation).
	Graph *graph.Graph
	// HWOf maps base node names to HW node names; empty means no HW
	// boundary accounting.
	HWOf map[string]string
	// Trials is the number of injection trials.
	Trials int
	// Seed makes runs reproducible.
	Seed uint64
	// OccurrenceWeights optionally biases which node the initial fault is
	// injected into (default: uniform over nodes).
	OccurrenceWeights map[string]float64
	// CriticalThreshold marks nodes whose criticality attribute meets the
	// threshold as critical for loss accounting (0 = none).
	CriticalThreshold float64
	// MaxHops bounds propagation depth (0 = unbounded).
	MaxHops int
	// CommFaultFraction is the fraction of trials whose initial fault is
	// injected into a communication edge rather than an FCM, covering the
	// second half of the paper's fault model ("faults occur in single
	// FCMs, or in communication between a pair of FCMs"). A corrupted
	// communication makes the edge's target faulty directly; propagation
	// continues from there. 0 means all faults originate in FCMs.
	CommFaultFraction float64
	// Span, when set, receives a "checkpoint" event at every 10% of the
	// campaign with the running containment estimates — the convergence
	// trail of the paper's measurement loop. Metrics, when set, counts
	// trials, transmissions and escapes as the campaign runs.
	Span    *obs.Span
	Metrics *obs.Registry
	// Ctx, when non-nil, is polled at every trial boundary: a cancelled or
	// expired context aborts the campaign promptly (after persisting a
	// checkpoint when CheckpointPath is set) with an error wrapping
	// ctx.Err().
	Ctx context.Context
	// CheckpointPath, when non-empty, makes the campaign crash-safe: the
	// partial Result and the exact RNG state are persisted atomically
	// (write to a temp file, then rename) every CheckpointEvery trials and
	// on cancellation. A run resumed from a checkpoint produces a Result
	// bit-identical to an uninterrupted run with the same configuration.
	CheckpointPath string
	// CheckpointEvery is the trial interval between checkpoint writes
	// (default Trials/10, minimum 1).
	CheckpointEvery int
	// Resume restores state from CheckpointPath when a checkpoint written
	// by this same campaign (graph, seed, fault model — everything except
	// the trial count) is present. A checkpoint from a different campaign
	// is ErrCheckpointMismatch; an absent file starts from trial zero.
	Resume bool
	// StopHalfWidth, when positive, enables confidence-interval early
	// stopping: the campaign ends once the normal-approximation interval
	// for the escape rate at StopConfidence is narrower than ±StopHalfWidth
	// (checked every CheckpointEvery trials, after at least StopMinTrials).
	StopHalfWidth float64
	// StopConfidence is the two-sided confidence level of the stopping
	// interval (default 0.95).
	StopConfidence float64
	// StopMinTrials is the minimum number of trials before early stopping
	// may trigger (default 100).
	StopMinTrials int
}

// Result aggregates a campaign.
type Result struct {
	Trials int
	// TotalAffected is the total number of faulty FCMs over all trials
	// (including the injected one).
	TotalAffected int
	// CrossNodeTransmissions counts fault transmissions whose source and
	// target live on different HW nodes — the containment-failure events.
	CrossNodeTransmissions int
	// TrialsWithEscape counts trials in which the fault reached any FCM on
	// a different HW node than the injection site.
	TrialsWithEscape int
	// CommFaultTrials counts trials whose initial fault was injected into
	// a communication edge rather than an FCM.
	CommFaultTrials int
	// CriticalAffected counts affected critical FCMs over all trials.
	CriticalAffected int
	// CriticalityLoss sums the criticality of affected FCMs over trials.
	CriticalityLoss float64
	// AffectedCount[name] counts how often each FCM was affected.
	AffectedCount map[string]int
	// TransmissionCount[from+">"+to] counts per-edge transmissions, the
	// raw material for estimating p_i2·p_i3 empirically.
	TransmissionCount map[string]int
	// EdgeTrials[from+">"+to] counts how often each edge had a faulty
	// source (the denominator of the transmission estimate).
	EdgeTrials map[string]int
	// EarlyStopped reports that confidence-interval early stopping ended
	// the campaign before the configured trial count; Trials holds the
	// number actually executed.
	EarlyStopped bool
}

// MeanAffected returns the average number of FCMs affected per trial.
func (r Result) MeanAffected() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.TotalAffected) / float64(r.Trials)
}

// EscapeRate returns the fraction of trials in which the fault crossed a
// HW node boundary.
func (r Result) EscapeRate() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.TrialsWithEscape) / float64(r.Trials)
}

// MeanCriticalityLoss returns the average criticality affected per trial.
func (r Result) MeanCriticalityLoss() float64 {
	if r.Trials == 0 {
		return 0
	}
	return r.CriticalityLoss / float64(r.Trials)
}

// EstimatedInfluence returns the empirically measured transmission
// probability of the edge from→to (the paper's estimation path), and
// whether the edge ever had a faulty source.
func (r Result) EstimatedInfluence(from, to string) (float64, bool) {
	key := from + ">" + to
	trials := r.EdgeTrials[key]
	if trials == 0 {
		return 0, false
	}
	return float64(r.TransmissionCount[key]) / float64(trials), true
}

// Run executes the campaign.
func Run(c Campaign) (Result, error) {
	if c.Trials <= 0 {
		return Result{}, fmt.Errorf("%w: %d", ErrNoTrials, c.Trials)
	}
	if c.Graph == nil || c.Graph.NumNodes() == 0 {
		return Result{}, ErrNoNodes
	}
	if c.CommFaultFraction < 0 || c.CommFaultFraction > 1 {
		return Result{}, fmt.Errorf("faultsim: comm fault fraction %g out of range", c.CommFaultFraction)
	}
	// The source is kept separate from the Rand so its exact state can be
	// checkpointed; rand.Rand buffers nothing, so marshaling the PCG at a
	// trial boundary captures the full stream position.
	src := rand.NewPCG(c.Seed, c.Seed^0x9e3779b97f4a7c15)
	rng := rand.New(src)
	nodes := c.Graph.Nodes()
	var commEdges []graph.Edge
	if c.CommFaultFraction > 0 {
		for _, e := range c.Graph.Edges() {
			if !e.Replica && e.Weight > 0 {
				commEdges = append(commEdges, e)
			}
		}
	}

	// Injection-site sampler.
	weights := make([]float64, len(nodes))
	total := 0.0
	for i, n := range nodes {
		w := 1.0
		if c.OccurrenceWeights != nil {
			w = c.OccurrenceWeights[n]
		}
		if w < 0 {
			w = 0
		}
		weights[i] = w
		total += w
	}
	if total == 0 {
		for i := range weights {
			weights[i] = 1
		}
		total = float64(len(weights))
	}
	pick := func() string {
		x := rng.Float64() * total
		for i, w := range weights {
			x -= w
			if x < 0 {
				return nodes[i]
			}
		}
		return nodes[len(nodes)-1]
	}

	res := Result{
		Trials:            c.Trials,
		AffectedCount:     map[string]int{},
		TransmissionCount: map[string]int{},
		EdgeTrials:        map[string]int{},
	}
	critOf := func(n string) float64 {
		return c.Graph.Attrs(n).Value(attrs.Criticality)
	}

	// Crash-safe checkpointing: resolve the campaign fingerprint once,
	// restore a prior snapshot when resuming, and persist every
	// persistEvery trials from here on.
	persistEvery := c.CheckpointEvery
	if persistEvery <= 0 {
		persistEvery = c.Trials / 10
	}
	if persistEvery == 0 {
		persistEvery = 1
	}
	var fp string
	if c.CheckpointPath != "" {
		fp = c.fingerprint()
	}
	start := 0
	if c.Resume && c.CheckpointPath != "" {
		cf, ok, err := loadCheckpoint(c.CheckpointPath, fp)
		if err != nil {
			return Result{}, err
		}
		if ok {
			if cf.TrialsDone > c.Trials {
				return Result{}, fmt.Errorf("%w: checkpoint has %d trials done, campaign wants %d",
					ErrCheckpointMismatch, cf.TrialsDone, c.Trials)
			}
			if err := src.UnmarshalBinary(cf.RNG); err != nil {
				return Result{}, fmt.Errorf("faultsim: checkpoint rng state: %w", err)
			}
			res = cf.Result
			res.Trials = c.Trials
			res.EarlyStopped = false
			start = cf.TrialsDone
		}
	}

	// Campaign telemetry: per-10% checkpoint events carrying the running
	// estimators, plus live counters and gauges.
	var trialsCtr, escapesCtr, crossCtr *obs.Counter
	var escapeGauge *obs.Gauge
	if c.Metrics != nil {
		trialsCtr = c.Metrics.Counter("faultsim_trials_total", "injection trials executed")
		escapesCtr = c.Metrics.Counter("faultsim_escape_trials_total", "trials whose fault crossed a HW boundary")
		crossCtr = c.Metrics.Counter("faultsim_cross_transmissions_total", "fault transmissions across HW boundaries")
		escapeGauge = c.Metrics.Gauge("faultsim_escape_rate", "running escape-rate estimate")
	}
	checkpointEvery := c.Trials / 10
	if checkpointEvery == 0 {
		checkpointEvery = 1
	}
	checkpoint := func(done int) {
		rate := float64(res.TrialsWithEscape) / float64(done)
		escapeGauge.Set(rate)
		if c.Span != nil {
			c.Span.Event("checkpoint",
				obs.Int("trials_done", done),
				obs.Int("trials_total", c.Trials),
				obs.Float("escape_rate", rate),
				obs.Float("mean_affected", float64(res.TotalAffected)/float64(done)),
				obs.Int("cross_transmissions", res.CrossNodeTransmissions),
				obs.Float("mean_crit_loss", res.CriticalityLoss/float64(done)))
		}
	}

	minStop := c.StopMinTrials
	if minStop <= 0 {
		minStop = 100
	}
	z := stopZ(c.StopConfidence)

	for trial := start; trial < c.Trials; trial++ {
		if c.Ctx != nil {
			if err := c.Ctx.Err(); err != nil {
				// Persist the exact trial boundary the cancellation landed
				// on, so a resumed run replays nothing and skips nothing.
				if c.CheckpointPath != "" {
					if serr := saveCheckpoint(c.CheckpointPath, fp, trial, src, res); serr != nil {
						return Result{}, errors.Join(serr, err)
					}
				}
				return Result{}, fmt.Errorf("faultsim: cancelled after %d/%d trials: %w",
					trial, c.Trials, err)
			}
		}
		var origin string
		escaped := false
		crossBefore := res.CrossNodeTransmissions
		if len(commEdges) > 0 && rng.Float64() < c.CommFaultFraction {
			// Communication fault: a message between a pair of FCMs is
			// corrupted in transit; the receiving FCM becomes faulty.
			e := commEdges[rng.IntN(len(commEdges))]
			origin = e.To
			res.CommFaultTrials++
			if c.HWOf != nil && c.HWOf[e.From] != c.HWOf[e.To] {
				// The corrupted message itself crossed a HW boundary.
				res.CrossNodeTransmissions++
				escaped = true
			}
		} else {
			origin = pick()
		}
		faulty := map[string]bool{origin: true}
		frontier := []string{origin}
		hops := 0
		for len(frontier) > 0 && (c.MaxHops == 0 || hops < c.MaxHops) {
			hops++
			var next []string
			for _, u := range frontier {
				for _, e := range c.Graph.OutEdges(u) {
					if e.Replica || e.Weight <= 0 {
						continue
					}
					key := u + ">" + e.To
					// The transmission draw happens whether or not the
					// target is already faulty — conditioning the draw on
					// target health would bias the per-edge estimate
					// downward on convergent paths.
					res.EdgeTrials[key]++
					if rng.Float64() >= e.Weight {
						continue
					}
					res.TransmissionCount[key]++
					if faulty[e.To] {
						continue
					}
					faulty[e.To] = true
					next = append(next, e.To)
					if c.HWOf != nil && c.HWOf[u] != c.HWOf[e.To] {
						res.CrossNodeTransmissions++
						escaped = true
					}
				}
			}
			frontier = next
		}
		res.TotalAffected += len(faulty)
		if escaped {
			res.TrialsWithEscape++
		}
		for n := range faulty {
			res.AffectedCount[n]++
			cv := critOf(n)
			res.CriticalityLoss += cv
			if c.CriticalThreshold > 0 && cv >= c.CriticalThreshold {
				res.CriticalAffected++
			}
		}
		if trialsCtr != nil {
			trialsCtr.Inc()
			if escaped {
				escapesCtr.Inc()
			}
			crossCtr.Add(int64(res.CrossNodeTransmissions - crossBefore))
		}
		if (c.Span != nil || c.Metrics != nil) &&
			((trial+1)%checkpointEvery == 0 || trial+1 == c.Trials) {
			checkpoint(trial + 1)
		}
		done := trial + 1
		if c.CheckpointPath != "" && (done%persistEvery == 0 || done == c.Trials) {
			if err := saveCheckpoint(c.CheckpointPath, fp, done, src, res); err != nil {
				return Result{}, err
			}
		}
		if c.StopHalfWidth > 0 && done < c.Trials && done >= minStop && done%persistEvery == 0 {
			rate := float64(res.TrialsWithEscape) / float64(done)
			if waldHalfWidth(rate, done, z) <= c.StopHalfWidth {
				res.Trials = done
				res.EarlyStopped = true
				if c.Span != nil {
					c.Span.Event("early_stop",
						obs.Int("trials_done", done),
						obs.Float("escape_rate", rate),
						obs.Float("half_width", waldHalfWidth(rate, done, z)))
				}
				if c.CheckpointPath != "" {
					if err := saveCheckpoint(c.CheckpointPath, fp, done, src, res); err != nil {
						return Result{}, err
					}
				}
				break
			}
		}
	}
	return res, nil
}

// HWFaultCampaign configures hardware-node failure injection: in each
// trial, each HW node fails independently with FailureProb, taking down
// every hosted FCM; a module survives when enough of its replicas remain.
type HWFaultCampaign struct {
	// HWOf maps replica node names to HW node names.
	HWOf map[string]string
	// ReplicasOf maps each module to its replica node names.
	ReplicasOf map[string][]string
	// Criticality maps modules to criticality for loss accounting.
	Criticality map[string]float64
	// FailureProb is the per-trial, per-HW-node failure probability.
	FailureProb float64
	// MajorityRequired: when true, a module needs a strict majority of its
	// replicas alive (TMR voting semantics); when false, one live replica
	// suffices (standby semantics).
	MajorityRequired bool
	Trials           int
	Seed             uint64
}

// HWResult aggregates a hardware-failure campaign.
type HWResult struct {
	Trials int
	// ModuleFailures counts, per module, the trials in which it lost
	// service.
	ModuleFailures map[string]int
	// TrialsWithAnyLoss counts trials where at least one module failed.
	TrialsWithAnyLoss int
	// CriticalityLoss sums criticality of failed modules over trials.
	CriticalityLoss float64
}

// Unavailability returns the per-trial service-loss probability of a
// module.
func (r HWResult) Unavailability(module string) float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.ModuleFailures[module]) / float64(r.Trials)
}

// RunHW executes the hardware-failure campaign.
func RunHW(c HWFaultCampaign) (HWResult, error) {
	if c.Trials <= 0 {
		return HWResult{}, fmt.Errorf("%w: %d", ErrNoTrials, c.Trials)
	}
	if len(c.ReplicasOf) == 0 {
		return HWResult{}, ErrNoNodes
	}
	if c.FailureProb < 0 || c.FailureProb > 1 {
		return HWResult{}, fmt.Errorf("faultsim: failure probability %g out of range", c.FailureProb)
	}
	rng := rand.New(rand.NewPCG(c.Seed, c.Seed^0x6a09e667f3bcc909))

	hwNodes := map[string]bool{}
	for _, n := range c.HWOf {
		hwNodes[n] = true
	}
	hwList := make([]string, 0, len(hwNodes))
	for n := range hwNodes {
		hwList = append(hwList, n)
	}
	sort.Strings(hwList)

	modules := make([]string, 0, len(c.ReplicasOf))
	for m := range c.ReplicasOf {
		modules = append(modules, m)
	}
	sort.Strings(modules)

	res := HWResult{Trials: c.Trials, ModuleFailures: map[string]int{}}
	for trial := 0; trial < c.Trials; trial++ {
		down := map[string]bool{}
		for _, n := range hwList {
			if rng.Float64() < c.FailureProb {
				down[n] = true
			}
		}
		anyLoss := false
		for _, m := range modules {
			reps := c.ReplicasOf[m]
			alive := 0
			for _, r := range reps {
				if !down[c.HWOf[r]] {
					alive++
				}
			}
			need := 1
			if c.MajorityRequired {
				need = len(reps)/2 + 1
			}
			if alive < need {
				res.ModuleFailures[m]++
				res.CriticalityLoss += c.Criticality[m]
				anyLoss = true
			}
		}
		if anyLoss {
			res.TrialsWithAnyLoss++
		}
	}
	return res, nil
}
