// Package faultsim provides a seeded Monte-Carlo fault-injection simulator
// over influence graphs and HW mappings. It supplies the measurement
// machinery the framework calls for: "the value of p_i3 can be determined
// by injecting faults into the target FCM" (§4.2.1), and it quantifies how
// well a mapping contains faults — the paper's own goodness criterion
// ("faults are not propagated across HW nodes", §5.3).
//
// The propagation model follows the paper's fault model (§2): faults occur
// in single FCMs or in communication between a pair of FCMs; transmission
// probabilities are independent of dynamic context; an influence edge of
// weight w transmits a fault from source to target with probability w.
//
// # Parallel execution and determinism
//
// Campaigns shard their trials across a worker pool (Campaign.Workers).
// Every trial draws from its own PCG substream derived from (Seed,
// trialIndex), so no RNG state is shared between trials and the stream a
// trial sees does not depend on which worker ran it or on where the
// previous checkpoint landed. Trials are processed in fixed chunks on an
// absolute grid and merged strictly in chunk order; the one
// order-sensitive accumulation (the float64 CriticalityLoss sum) is kept
// per-trial until merge so its addition order is always the trial order.
// The Result is therefore bit-identical for every Workers value, and
// checkpoint/resume reproduces an uninterrupted run exactly.
package faultsim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"sort"
	"sync"

	"repro/internal/attrs"
	"repro/internal/graph"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/stage"
)

// Errors returned by campaign configuration.
var (
	ErrNoTrials = errors.New("faultsim: trials must be positive")
	ErrNoNodes  = errors.New("faultsim: graph has no nodes")
)

// Campaign configures a fault-injection run.
type Campaign struct {
	// Graph is the influence graph faults propagate over (typically the
	// full replicated graph, pre-condensation).
	Graph *graph.Graph
	// HWOf maps base node names to HW node names; empty means no HW
	// boundary accounting.
	HWOf map[string]string
	// Trials is the number of injection trials.
	Trials int
	// Seed makes runs reproducible.
	Seed uint64
	// Workers is the number of goroutines trials are sharded across
	// (default GOMAXPROCS). The Result is bit-identical for every value:
	// each trial is seeded from its own PCG substream derived from (Seed,
	// trialIndex), and chunk results merge in a fixed order.
	Workers int
	// OccurrenceWeights optionally biases which node the initial fault is
	// injected into (default: uniform over nodes).
	OccurrenceWeights map[string]float64
	// CriticalThreshold marks nodes whose criticality attribute meets the
	// threshold as critical for loss accounting (0 = none).
	CriticalThreshold float64
	// MaxHops bounds propagation depth (0 = unbounded).
	MaxHops int
	// CommFaultFraction is the fraction of trials whose initial fault is
	// injected into a communication edge rather than an FCM, covering the
	// second half of the paper's fault model ("faults occur in single
	// FCMs, or in communication between a pair of FCMs"). A corrupted
	// communication makes the edge's target faulty directly; propagation
	// continues from there. 0 means all faults originate in FCMs. Only
	// the SingleFault and Transient models honour it.
	CommFaultFraction float64
	// Model selects how the initial fault set of each trial is drawn:
	// SingleFault (the default when nil), Correlated (common-mode — every
	// FCM on one HW node faults together), Burst(k) (k simultaneous
	// independent faults) or Transient(p) (faults recover with
	// probability 1-p before propagating onward). Every model draws from
	// the trial's private substream, so results stay bit-identical across
	// worker counts and checkpoint/resume; the model identity is part of
	// the checkpoint fingerprint.
	Model FaultModel
	// Span, when set, receives a "checkpoint" event at every 10% of the
	// campaign with the running containment estimates — the convergence
	// trail of the paper's measurement loop — plus one child span per
	// worker when the pool is parallel. Metrics, when set, counts trials,
	// transmissions and escapes as the campaign runs and tracks the number
	// of active workers in a gauge.
	Span    *obs.Span
	Metrics *obs.Registry
	// Ledger, when set, receives one "campaign" provenance record with
	// the final containment estimates (trials, escape rate, criticality
	// loss) after a successful run. Nil records nothing.
	Ledger *ledger.Ledger
	// Bus, when set, streams live progress over the observability fabric:
	// one "campaign_start" event, a "campaign_checkpoint" event (with the
	// running escape rate and its Wald CI half-width) at every telemetry
	// checkpoint, and a final "campaign_done" event. Publishing is
	// non-blocking and only ever reads merged state, so the Result stays
	// bit-identical to an unwatched run — slow subscribers drop events,
	// never stall trials.
	Bus *obs.Bus
	// Label names this campaign in streamed events and progress surfaces
	// (default "campaign"); give concurrent campaigns distinct labels.
	Label string
	// Ctx, when non-nil, is polled at every trial boundary: a cancelled or
	// expired context aborts the campaign promptly (after persisting a
	// checkpoint when CheckpointPath is set) with an error wrapping
	// ctx.Err().
	Ctx context.Context
	// CheckpointPath, when non-empty, makes the campaign crash-safe: the
	// merged partial Result and the completed-trial frontier are persisted
	// atomically (write to a temp file, then rename) every CheckpointEvery
	// trials and on cancellation. Because every trial has its own RNG
	// substream, the frontier alone is enough to resume: a run resumed
	// from a checkpoint produces a Result bit-identical to an
	// uninterrupted run with the same configuration, for any Workers.
	CheckpointPath string
	// CheckpointEvery is the trial interval between checkpoint writes
	// (default Trials/10, minimum 1). Writes happen at chunk boundaries,
	// whenever the completed-trial frontier crosses a multiple of the
	// interval.
	CheckpointEvery int
	// Resume restores state from CheckpointPath when a checkpoint written
	// by this same campaign (graph, seed, fault model — everything except
	// the trial count and worker count) is present. A checkpoint from a
	// different campaign is ErrCheckpointMismatch; an absent file starts
	// from trial zero.
	Resume bool
	// LaxResume softens Resume against damaged files only: a checkpoint
	// that fails to decode (truncated torn write, leftover temp content —
	// ErrCheckpointCorrupt) is discarded with a "resume_discarded" span
	// event and the campaign restarts from trial zero. A checkpoint that
	// decodes but belongs to a different campaign is still rejected: lax
	// mode forgives damage, never identity mismatches.
	LaxResume bool
	// StopHalfWidth, when positive, enables confidence-interval early
	// stopping: the campaign ends once the normal-approximation interval
	// for the escape rate at StopConfidence is narrower than ±StopHalfWidth
	// (checked every CheckpointEvery trials, after at least StopMinTrials).
	StopHalfWidth float64
	// StopConfidence is the two-sided confidence level of the stopping
	// interval (default 0.95).
	StopConfidence float64
	// StopMinTrials is the minimum number of trials before early stopping
	// may trigger (default 100).
	StopMinTrials int
}

// Result aggregates a campaign.
type Result struct {
	Trials int
	// TotalAffected is the total number of faulty FCMs over all trials
	// (including the injected one).
	TotalAffected int
	// CrossNodeTransmissions counts fault transmissions whose source and
	// target live on different HW nodes — the containment-failure events.
	CrossNodeTransmissions int
	// TrialsWithEscape counts trials in which the fault reached any FCM on
	// a different HW node than the injection site.
	TrialsWithEscape int
	// CommFaultTrials counts trials whose initial fault was injected into
	// a communication edge rather than an FCM.
	CommFaultTrials int
	// InitialFaults is the total number of initially injected faults over
	// all trials — Trials under the single-fault model, more under
	// Correlated and Burst.
	InitialFaults int
	// TransientFaults counts faults that recovered before propagating
	// (only the Transient model produces them).
	TransientFaults int
	// EscapedCriticalityLoss sums, over all trials, the criticality of
	// FCMs whose infection chain crossed a HW-node boundary at any point
	// — the criticality-weighted containment-failure mass the
	// adversarial search maximises.
	EscapedCriticalityLoss float64
	// CriticalAffected counts affected critical FCMs over all trials.
	CriticalAffected int
	// CriticalityLoss sums the criticality of affected FCMs over trials.
	CriticalityLoss float64
	// AffectedCount[name] counts how often each FCM was affected.
	AffectedCount map[string]int
	// TransmissionCount[from+">"+to] counts per-edge transmissions, the
	// raw material for estimating p_i2·p_i3 empirically.
	TransmissionCount map[string]int
	// EdgeTrials[from+">"+to] counts how often each edge had a faulty
	// source (the denominator of the transmission estimate).
	EdgeTrials map[string]int
	// EarlyStopped reports that confidence-interval early stopping ended
	// the campaign before the configured trial count; Trials holds the
	// number actually executed.
	EarlyStopped bool
}

// MeanAffected returns the average number of FCMs affected per trial.
func (r Result) MeanAffected() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.TotalAffected) / float64(r.Trials)
}

// EscapeRate returns the fraction of trials in which the fault crossed a
// HW node boundary.
func (r Result) EscapeRate() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.TrialsWithEscape) / float64(r.Trials)
}

// MeanCriticalityLoss returns the average criticality affected per trial.
func (r Result) MeanCriticalityLoss() float64 {
	if r.Trials == 0 {
		return 0
	}
	return r.CriticalityLoss / float64(r.Trials)
}

// CriticalityWeightedEscapeRate returns the average per-trial criticality
// mass that escaped its injection HW node — the §5.3 containment
// criterion weighted by what the escape actually endangers. This is the
// objective the adversarial Search maximises.
func (r Result) CriticalityWeightedEscapeRate() float64 {
	if r.Trials == 0 {
		return 0
	}
	return r.EscapedCriticalityLoss / float64(r.Trials)
}

// EstimatedInfluence returns the empirically measured transmission
// probability of the edge from→to (the paper's estimation path), and
// whether the edge ever had a faulty source.
func (r Result) EstimatedInfluence(from, to string) (float64, bool) {
	key := from + ">" + to
	trials := r.EdgeTrials[key]
	if trials == 0 {
		return 0, false
	}
	return float64(r.TransmissionCount[key]) / float64(trials), true
}

// trialChunkSize is the grain of the worker pool: trials are grouped into
// fixed chunks on an absolute grid ([0,64), [64,128), …) so the chunk
// sequence — and with it the merge order and every evaluation point — is
// the same no matter how many workers run or where a resume started.
const trialChunkSize = 64

// substreamSalt decorrelates the two PCG seed words of a trial substream.
const substreamSalt = 0xda942042e4dd58b5

// splitmix64 is the SplitMix64 finalizer, the standard mixer for deriving
// independent seed material from correlated inputs (consecutive trial
// indices). Its output is a bijection of its input, so distinct trials
// never collide on a substream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// chunkResult accumulates the trials of one chunk. All integer counters
// merge exactly regardless of order; the single order-sensitive value —
// the float64 criticality loss — is kept per trial so the merged sum's
// addition order is always the trial order, independent of chunk
// boundaries and worker count.
type chunkResult struct {
	totalAffected      int
	crossTransmissions int
	trialsWithEscape   int
	commFaultTrials    int
	criticalAffected   int
	initialFaults      int
	transientFaults    int
	critPerTrial       []float64
	escPerTrial        []float64
	affectedCount      map[string]int
	transmissionCount  map[string]int
	edgeTrials         map[string]int
}

func newChunkResult() *chunkResult {
	return &chunkResult{
		affectedCount:     map[string]int{},
		transmissionCount: map[string]int{},
		edgeTrials:        map[string]int{},
	}
}

func (ch *chunkResult) reset() {
	*ch = chunkResult{
		critPerTrial:      ch.critPerTrial[:0],
		escPerTrial:       ch.escPerTrial[:0],
		affectedCount:     map[string]int{},
		transmissionCount: map[string]int{},
		edgeTrials:        map[string]int{},
	}
}

// absorb folds a chunk into the running Result, trial floats in order.
func (r *Result) absorb(ch *chunkResult) {
	r.TotalAffected += ch.totalAffected
	r.CrossNodeTransmissions += ch.crossTransmissions
	r.TrialsWithEscape += ch.trialsWithEscape
	r.CommFaultTrials += ch.commFaultTrials
	r.CriticalAffected += ch.criticalAffected
	r.InitialFaults += ch.initialFaults
	r.TransientFaults += ch.transientFaults
	for _, loss := range ch.critPerTrial {
		r.CriticalityLoss += loss
	}
	for _, loss := range ch.escPerTrial {
		r.EscapedCriticalityLoss += loss
	}
	for k, v := range ch.affectedCount {
		r.AffectedCount[k] += v
	}
	for k, v := range ch.transmissionCount {
		r.TransmissionCount[k] += v
	}
	for k, v := range ch.edgeTrials {
		r.EdgeTrials[k] += v
	}
}

// campaignEnv is the immutable, precomputed view of a campaign shared by
// all workers: adjacency, criticality, and the injection-site sampler. It
// is built once so concurrent trials never touch the graph's mutable
// accessors.
type campaignEnv struct {
	nodes         []string
	out           map[string][]graph.Edge // non-replica, weight>0, sorted
	commEdges     []graph.Edge
	weights       []float64
	weightTotal   float64
	crit          map[string]float64
	hwOf          map[string]string
	seedBase      uint64
	maxHops       int
	commFrac      float64
	critThreshold float64
	model         FaultModel
	persist       float64
}

func newCampaignEnv(c *Campaign) *campaignEnv {
	env := &campaignEnv{
		nodes:         c.Graph.Nodes(),
		out:           map[string][]graph.Edge{},
		crit:          map[string]float64{},
		hwOf:          c.HWOf,
		seedBase:      splitmix64(c.Seed),
		maxHops:       c.MaxHops,
		commFrac:      c.CommFaultFraction,
		critThreshold: c.CriticalThreshold,
		model:         c.model(),
	}
	env.persist = env.model.persist()
	for _, n := range env.nodes {
		env.crit[n] = c.Graph.Attrs(n).Value(attrs.Criticality)
		var live []graph.Edge
		for _, e := range c.Graph.OutEdges(n) {
			if e.Replica || e.Weight <= 0 {
				continue
			}
			live = append(live, e)
		}
		env.out[n] = live
	}
	if c.CommFaultFraction > 0 {
		for _, e := range c.Graph.Edges() {
			if !e.Replica && e.Weight > 0 {
				env.commEdges = append(env.commEdges, e)
			}
		}
	}
	// Injection-site sampler weights.
	env.weights = make([]float64, len(env.nodes))
	for i, n := range env.nodes {
		w := 1.0
		if c.OccurrenceWeights != nil {
			w = c.OccurrenceWeights[n]
		}
		if w < 0 {
			w = 0
		}
		env.weights[i] = w
		env.weightTotal += w
	}
	if env.weightTotal == 0 {
		for i := range env.weights {
			env.weights[i] = 1
		}
		env.weightTotal = float64(len(env.weights))
	}
	return env
}

// reseed positions the PCG on the substream of one trial. The substream
// depends only on (Seed, trial), never on execution history, which is what
// makes sharding and resume bit-exact.
func (env *campaignEnv) reseed(pcg *rand.PCG, trial int) {
	base := env.seedBase + uint64(trial)
	pcg.Seed(splitmix64(base), splitmix64(base^substreamSalt))
}

func (env *campaignEnv) pick(rng *rand.Rand) string {
	x := rng.Float64() * env.weightTotal
	for i, w := range env.weights {
		x -= w
		if x < 0 {
			return env.nodes[i]
		}
	}
	return env.nodes[len(env.nodes)-1]
}

// runChunk executes trials [begin, end) on their own substreams,
// accumulating into ch. The context is polled at every trial boundary; a
// cancelled chunk is all-or-nothing and contributes no trials.
func (env *campaignEnv) runChunk(ctx context.Context, pcg *rand.PCG, rng *rand.Rand, begin, end int, ch *chunkResult) error {
	for trial := begin; trial < end; trial++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		env.reseed(pcg, trial)
		env.runTrial(rng, ch)
	}
	return nil
}

func (env *campaignEnv) runTrial(rng *rand.Rand, ch *chunkResult) {
	// The fault model draws the initial fault set; propagation below is
	// shared by every model. All draws come from the trial's private
	// substream in a fixed order, so the trial is a pure function of
	// (Seed, trial index) under every model.
	var t trialState
	env.model.inject(env, rng, &t)
	if t.commFault {
		ch.commFaultTrials++
	}
	escaped := false
	if t.commCrossed {
		// The corrupted message itself crossed a HW boundary.
		ch.crossTransmissions++
		escaped = true
	}
	ch.initialFaults += len(t.origins)

	faulty := make(map[string]bool, len(t.origins))
	// order records affected nodes in discovery order so the criticality
	// sums below never depend on map iteration; viaCross marks nodes
	// whose fault arrived over a HW boundary for escaped-loss accounting.
	var order []string
	var frontier []string
	viaCross := map[string]bool{}
	// admit marks one newly faulty FCM. Under a transient model the
	// permanence draw happens at discovery, in frontier order; a
	// transient fault affects its FCM but never joins the frontier.
	admit := func(n string, crossed bool) {
		faulty[n] = true
		order = append(order, n)
		if crossed {
			viaCross[n] = true
		}
		if env.persist < 1 && rng.Float64() >= env.persist {
			ch.transientFaults++
			return
		}
		frontier = append(frontier, n)
	}
	for _, o := range t.origins {
		if faulty[o.node] {
			continue
		}
		admit(o.node, o.viaCross)
	}
	hops := 0
	for len(frontier) > 0 && (env.maxHops == 0 || hops < env.maxHops) {
		hops++
		boundary := len(frontier)
		for _, u := range frontier[:boundary] {
			for _, e := range env.out[u] {
				key := u + ">" + e.To
				// The transmission draw happens whether or not the
				// target is already faulty — conditioning the draw on
				// target health would bias the per-edge estimate
				// downward on convergent paths.
				ch.edgeTrials[key]++
				if rng.Float64() >= e.Weight {
					continue
				}
				ch.transmissionCount[key]++
				if faulty[e.To] {
					continue
				}
				crossed := env.hwOf != nil && env.hwOf[u] != env.hwOf[e.To]
				if crossed {
					ch.crossTransmissions++
					escaped = true
				}
				// The escape taint is sticky: once an infection chain has
				// crossed a HW boundary, everything it infects downstream
				// is containment-failure damage too.
				admit(e.To, crossed || viaCross[u])
			}
		}
		frontier = frontier[boundary:]
	}
	ch.totalAffected += len(order)
	if escaped {
		ch.trialsWithEscape++
	}
	loss, escLoss := 0.0, 0.0
	for _, n := range order {
		ch.affectedCount[n]++
		cv := env.crit[n]
		loss += cv
		if viaCross[n] {
			escLoss += cv
		}
		if env.critThreshold > 0 && cv >= env.critThreshold {
			ch.criticalAffected++
		}
	}
	ch.critPerTrial = append(ch.critPerTrial, loss)
	ch.escPerTrial = append(ch.escPerTrial, escLoss)
}

// chunkEnd returns the end of the chunk beginning at b: the next absolute
// grid boundary, capped at the trial count.
func chunkEnd(b, trials int) int {
	e := (b/trialChunkSize + 1) * trialChunkSize
	if e > trials {
		e = trials
	}
	return e
}

// campaignRun holds the merge-side state of a running campaign: the
// accumulating Result, the completed-trial frontier, and everything the
// evaluation points (telemetry checkpoints, persistence, early stopping)
// need. Chunks are absorbed strictly in chunk order by a single goroutine.
type campaignRun struct {
	c            *Campaign
	env          *campaignEnv
	res          Result
	done         int // completed-trial frontier (all trials < done merged)
	fp           string
	persistEvery int
	eventEvery   int
	minStop      int
	z            float64
	label        string

	trialsCtr, escapesCtr, crossCtr *obs.Counter
	escapeGauge, workersGauge       *obs.Gauge
}

// checkpointEvent emits the running-estimator telemetry at frontier done.
func (r *campaignRun) checkpointEvent(done int) {
	rate := float64(r.res.TrialsWithEscape) / float64(done)
	r.escapeGauge.Set(rate)
	if r.c.Span != nil {
		r.c.Span.Event("checkpoint",
			obs.Int("trials_done", done),
			obs.Int("trials_total", r.c.Trials),
			obs.Float("escape_rate", rate),
			obs.Float("mean_affected", float64(r.res.TotalAffected)/float64(done)),
			obs.Int("cross_transmissions", r.res.CrossNodeTransmissions),
			obs.Float("mean_crit_loss", r.res.CriticalityLoss/float64(done)))
	}
	if r.c.Bus != nil {
		r.c.Bus.Publish("campaign_checkpoint", r.label,
			obs.Int("trials_done", done),
			obs.Int("trials_total", r.c.Trials),
			obs.Float("escape_rate", rate),
			obs.Float("half_width", waldHalfWidth(rate, done, r.z)))
	}
}

// merge folds chunk [b, e) into the Result and fires every evaluation
// point the frontier crossed: telemetry checkpoint, persistence, and the
// early-stopping test. It reports stop=true when the campaign should end
// at frontier e. Because the chunk sequence is worker-count-independent,
// so is every decision made here.
func (r *campaignRun) merge(b, e int, ch *chunkResult) (stop bool, err error) {
	r.res.absorb(ch)
	r.done = e
	if r.trialsCtr != nil {
		r.trialsCtr.Add(int64(e - b))
		r.escapesCtr.Add(int64(ch.trialsWithEscape))
		r.crossCtr.Add(int64(ch.crossTransmissions))
	}
	if (r.c.Span != nil || r.c.Metrics != nil || r.c.Bus != nil) &&
		(b/r.eventEvery != e/r.eventEvery || e == r.c.Trials) {
		r.checkpointEvent(e)
	}
	crossedPersist := b/r.persistEvery != e/r.persistEvery || e == r.c.Trials
	if r.c.CheckpointPath != "" && crossedPersist {
		if err := saveCheckpoint(r.c.CheckpointPath, r.fp, e, r.res); err != nil {
			return false, err
		}
	}
	if r.c.StopHalfWidth > 0 && e < r.c.Trials && e >= r.minStop && crossedPersist {
		rate := float64(r.res.TrialsWithEscape) / float64(e)
		if waldHalfWidth(rate, e, r.z) <= r.c.StopHalfWidth {
			r.res.Trials = e
			r.res.EarlyStopped = true
			if r.c.Span != nil {
				r.c.Span.Event("early_stop",
					obs.Int("trials_done", e),
					obs.Float("escape_rate", rate),
					obs.Float("half_width", waldHalfWidth(rate, e, r.z)))
			}
			if r.c.CheckpointPath != "" {
				if err := saveCheckpoint(r.c.CheckpointPath, r.fp, e, r.res); err != nil {
					return false, err
				}
			}
			return true, nil
		}
	}
	return false, nil
}

// cancelled persists the completed-trial frontier and wraps the context
// error, mirroring the serial cancellation contract.
func (r *campaignRun) cancelled(cause error) error {
	err := fmt.Errorf("faultsim: cancelled after %d/%d trials: %w",
		r.done, r.c.Trials, cause)
	if r.c.CheckpointPath != "" {
		if serr := saveCheckpoint(r.c.CheckpointPath, r.fp, r.done, r.res); serr != nil {
			return errors.Join(serr, err)
		}
	}
	return err
}

// serial runs the chunk sequence inline — the Workers==1 path pays for no
// goroutines but uses the exact same chunk grid and merge arithmetic as
// the pool, which is what makes the two bit-identical.
func (r *campaignRun) serial(start int) error {
	pcg := rand.NewPCG(0, 0)
	rng := rand.New(pcg)
	ch := newChunkResult()
	for b := start; b < r.c.Trials; {
		e := chunkEnd(b, r.c.Trials)
		ch.reset()
		if err := r.env.runChunk(r.c.Ctx, pcg, rng, b, e, ch); err != nil {
			return r.cancelled(err)
		}
		stop, err := r.merge(b, e, ch)
		if err != nil || stop {
			return err
		}
		b = e
	}
	return nil
}

// parallel shards the chunk sequence over a worker pool. The coordinator
// dispatches chunks in order, buffers out-of-order completions, and merges
// strictly by chunk index, so the accumulated Result — and every
// evaluation point — matches the serial path bit for bit. Cancellation
// makes chunks fail individually; the contiguous completed prefix is what
// gets checkpointed. Early stopping stops dispatch and discards
// speculative chunks beyond the stopping frontier.
func (r *campaignRun) parallel(start, workers int) error {
	type job struct {
		seq, b, e int
	}
	type outcome struct {
		job
		ch  *chunkResult
		err error
	}
	maxInFlight := workers * 2
	jobs := make(chan job)
	out := make(chan outcome, maxInFlight)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var span *obs.Span
			if r.c.Span != nil {
				span = r.c.Span.StartChild("worker", obs.Int("worker", id))
				defer span.End()
			}
			if r.workersGauge != nil {
				r.workersGauge.Add(1)
				defer r.workersGauge.Add(-1)
			}
			pcg := rand.NewPCG(0, 0)
			rng := rand.New(pcg)
			chunks, trials := 0, 0
			for j := range jobs {
				ch := newChunkResult()
				err := r.env.runChunk(r.c.Ctx, pcg, rng, j.b, j.e, ch)
				if err == nil {
					chunks++
					trials += j.e - j.b
				}
				out <- outcome{job: j, ch: ch, err: err}
			}
			if span != nil {
				span.SetAttr(obs.Int("chunks", chunks), obs.Int("trials", trials))
			}
		}(w)
	}

	var (
		nextSeq, inFlight int
		mergeSeq          int
		b                 = start
		pending           = map[int]outcome{}
		cancelCause       error
		fatal             error
		stopped           bool
	)
	dispatchDone := b >= r.c.Trials
	for !dispatchDone || inFlight > 0 {
		var send chan job
		next := job{seq: nextSeq, b: b, e: chunkEnd(b, r.c.Trials)}
		if !dispatchDone && inFlight < maxInFlight {
			send = jobs
		}
		select {
		case send <- next:
			inFlight++
			nextSeq++
			b = next.e
			dispatchDone = b >= r.c.Trials
		case o := <-out:
			inFlight--
			if o.err != nil {
				if cancelCause == nil {
					cancelCause = o.err
				}
				dispatchDone = true
				continue
			}
			pending[o.seq] = o
			for cancelCause == nil && fatal == nil && !stopped {
				p, ok := pending[mergeSeq]
				if !ok {
					break
				}
				delete(pending, mergeSeq)
				mergeSeq++
				stop, err := r.merge(p.b, p.e, p.ch)
				if err != nil {
					fatal = err
					dispatchDone = true
				} else if stop {
					stopped = true
					dispatchDone = true
				}
			}
		}
	}
	close(jobs)
	wg.Wait()
	switch {
	case fatal != nil:
		return fatal
	case cancelCause != nil:
		return r.cancelled(cancelCause)
	}
	return nil
}

// model returns the configured fault model, defaulting to SingleFault.
func (c Campaign) model() FaultModel {
	if c.Model == nil {
		return SingleFault()
	}
	return c.Model
}

// validProb reports whether p is a finite probability.
func validProb(p float64) bool { return p >= 0 && p <= 1 && !math.IsNaN(p) }

// validate checks the campaign configuration — trial count, graph, every
// injected probability (edge weights, occurrence weights, the comm-fault
// fraction) and the fault-model parameters — once at campaign start.
// Failures come back classified under the taxonomy's "inject" stage, so
// callers route them like any other pipeline error. This closes the old
// asymmetry where RunHW range-checked FailureProb but Run silently
// accepted out-of-band per-factor probabilities.
func (c Campaign) validate() error {
	wrap := func(node string, err error) error {
		return stage.Wrap("inject", c.model().Name(), node, err)
	}
	if c.Trials <= 0 {
		return wrap("", fmt.Errorf("%w: %d", ErrNoTrials, c.Trials))
	}
	if c.Graph == nil || c.Graph.NumNodes() == 0 {
		return wrap("", ErrNoNodes)
	}
	if !validProb(c.CommFaultFraction) {
		return wrap("", fmt.Errorf("%w: comm fault fraction %g out of range",
			ErrBadProbability, c.CommFaultFraction))
	}
	for _, e := range c.Graph.Edges() {
		if e.Replica {
			continue
		}
		if !validProb(e.Weight) {
			return wrap(e.From, fmt.Errorf("%w: influence %s>%s has weight %g",
				ErrBadProbability, e.From, e.To, e.Weight))
		}
	}
	if c.OccurrenceWeights != nil {
		for _, n := range c.Graph.Nodes() {
			if w := c.OccurrenceWeights[n]; w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return wrap(n, fmt.Errorf("%w: occurrence weight %g for %q",
					ErrBadProbability, w, n))
			}
		}
	}
	if err := c.model().validate(); err != nil {
		return wrap("", err)
	}
	return nil
}

// Run executes the campaign.
func Run(c Campaign) (Result, error) {
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	run, start, err := newCampaignRun(&c, workers)
	if err != nil {
		return Result{}, err
	}

	if start < c.Trials {
		// Fail fast on a context that is already dead, before spinning up
		// any pool machinery.
		if c.Ctx != nil {
			if err := c.Ctx.Err(); err != nil {
				return Result{}, run.cancelled(err)
			}
		}
		if remaining := (c.Trials - start + trialChunkSize - 1) / trialChunkSize; workers > remaining {
			workers = remaining
		}
		if workers <= 1 {
			err = run.serial(start)
		} else {
			err = run.parallel(start, workers)
		}
		if err != nil {
			return Result{}, err
		}
	}
	return run.finish(), nil
}

// newCampaignRun validates the campaign and builds its merge-side state:
// the precomputed environment, the (possibly resumed) partial Result, the
// telemetry instruments and every evaluation-point interval. It publishes
// the "campaign_start" event and returns the completed-trial frontier the
// execution should start from. Both Run and the distributed Merger build
// on it, which is what keeps the two bit-identical.
func newCampaignRun(c *Campaign, workers int) (*campaignRun, int, error) {
	if err := c.validate(); err != nil {
		return nil, 0, err
	}
	run := &campaignRun{
		c:   c,
		env: newCampaignEnv(c),
		res: Result{
			Trials:            c.Trials,
			AffectedCount:     map[string]int{},
			TransmissionCount: map[string]int{},
			EdgeTrials:        map[string]int{},
		},
	}

	// Crash-safe checkpointing: resolve the campaign fingerprint once,
	// restore a prior snapshot when resuming, and persist whenever the
	// completed-trial frontier crosses a persistEvery multiple.
	run.persistEvery = c.CheckpointEvery
	if run.persistEvery <= 0 {
		run.persistEvery = c.Trials / 10
	}
	if run.persistEvery == 0 {
		run.persistEvery = 1
	}
	if c.CheckpointPath != "" {
		run.fp = c.fingerprint()
	}
	start := 0
	if c.Resume && c.CheckpointPath != "" {
		cf, ok, err := loadCheckpoint(c.CheckpointPath, run.fp)
		if err != nil {
			if !c.LaxResume || !errors.Is(err, ErrCheckpointCorrupt) {
				return nil, 0, err
			}
			// Lax resume: the file is damaged, not foreign. Record the
			// discard and restart from trial zero; the next checkpoint
			// write replaces the damaged file atomically.
			if c.Span != nil {
				c.Span.Event("resume_discarded",
					obs.String("path", c.CheckpointPath),
					obs.String("error", err.Error()))
			}
			ok = false
		}
		if ok {
			if cf.TrialsDone > c.Trials {
				return nil, 0, fmt.Errorf("%w: checkpoint has %d trials done, campaign wants %d",
					ErrCheckpointMismatch, cf.TrialsDone, c.Trials)
			}
			run.res = cf.Result
			run.res.Trials = c.Trials
			run.res.EarlyStopped = false
			if run.res.AffectedCount == nil {
				run.res.AffectedCount = map[string]int{}
			}
			if run.res.TransmissionCount == nil {
				run.res.TransmissionCount = map[string]int{}
			}
			if run.res.EdgeTrials == nil {
				run.res.EdgeTrials = map[string]int{}
			}
			start = cf.TrialsDone
		}
	}
	run.done = start

	// Campaign telemetry: per-10% checkpoint events carrying the running
	// estimators, plus live counters and gauges.
	if c.Metrics != nil {
		run.trialsCtr = c.Metrics.Counter("faultsim_trials_total", "injection trials executed")
		run.escapesCtr = c.Metrics.Counter("faultsim_escape_trials_total", "trials whose fault crossed a HW boundary")
		run.crossCtr = c.Metrics.Counter("faultsim_cross_transmissions_total", "fault transmissions across HW boundaries")
		run.escapeGauge = c.Metrics.Gauge("faultsim_escape_rate", "running escape-rate estimate")
		run.workersGauge = c.Metrics.Gauge("faultsim_active_workers", "campaign worker goroutines currently running")
	}
	run.eventEvery = c.Trials / 10
	if run.eventEvery == 0 {
		run.eventEvery = 1
	}
	run.minStop = c.StopMinTrials
	if run.minStop <= 0 {
		run.minStop = 100
	}
	run.z = stopZ(c.StopConfidence)
	run.label = c.Label
	if run.label == "" {
		run.label = "campaign"
	}
	if c.Bus != nil {
		c.Bus.Publish("campaign_start", run.label,
			obs.Int("trials_total", c.Trials),
			obs.Int("trials_done", start),
			obs.String("model", c.model().Name()),
			obs.Int("workers", workers))
	}
	return run, start, nil
}

// finish publishes the terminal telemetry (the "campaign_done" event and
// the ledger's campaign record) and returns the merged Result.
func (r *campaignRun) finish() Result {
	c := r.c
	if c.Bus != nil {
		c.Bus.Publish("campaign_done", r.label,
			obs.Int("trials_done", r.res.Trials),
			obs.Int("trials_total", c.Trials),
			obs.Float("escape_rate", r.res.EscapeRate()),
			obs.Bool("early_stopped", r.res.EarlyStopped))
	}
	c.Ledger.Append(ledger.Record{
		Kind: ledger.KindCampaign, Stage: "faultsim",
		Detail: fmt.Sprintf("model %s, seed %d", c.model().Name(), c.Seed),
		Values: map[string]float64{
			"trials":                float64(r.res.Trials),
			"escape_rate":           r.res.EscapeRate(),
			"mean_affected":         r.res.MeanAffected(),
			"mean_criticality_loss": r.res.MeanCriticalityLoss(),
			"weighted_escape_rate":  r.res.CriticalityWeightedEscapeRate(),
			"cross_transmissions":   float64(r.res.CrossNodeTransmissions),
			"early_stopped":         b2f(r.res.EarlyStopped),
		},
	})
	return r.res
}

// b2f encodes a flag into a ledger value.
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// HWFaultCampaign configures hardware-node failure injection: in each
// trial, each HW node fails independently with FailureProb, taking down
// every hosted FCM; a module survives when enough of its replicas remain.
type HWFaultCampaign struct {
	// HWOf maps replica node names to HW node names.
	HWOf map[string]string
	// ReplicasOf maps each module to its replica node names.
	ReplicasOf map[string][]string
	// Criticality maps modules to criticality for loss accounting.
	Criticality map[string]float64
	// FailureProb is the per-trial, per-HW-node failure probability.
	FailureProb float64
	// MajorityRequired: when true, a module needs a strict majority of its
	// replicas alive (TMR voting semantics); when false, one live replica
	// suffices (standby semantics).
	MajorityRequired bool
	Trials           int
	Seed             uint64
}

// HWResult aggregates a hardware-failure campaign.
type HWResult struct {
	Trials int
	// ModuleFailures counts, per module, the trials in which it lost
	// service.
	ModuleFailures map[string]int
	// TrialsWithAnyLoss counts trials where at least one module failed.
	TrialsWithAnyLoss int
	// CriticalityLoss sums criticality of failed modules over trials.
	CriticalityLoss float64
}

// Unavailability returns the per-trial service-loss probability of a
// module.
func (r HWResult) Unavailability(module string) float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.ModuleFailures[module]) / float64(r.Trials)
}

// RunHW executes the hardware-failure campaign.
func RunHW(c HWFaultCampaign) (HWResult, error) {
	if c.Trials <= 0 {
		return HWResult{}, fmt.Errorf("%w: %d", ErrNoTrials, c.Trials)
	}
	if len(c.ReplicasOf) == 0 {
		return HWResult{}, ErrNoNodes
	}
	if c.FailureProb < 0 || c.FailureProb > 1 {
		return HWResult{}, fmt.Errorf("faultsim: failure probability %g out of range", c.FailureProb)
	}
	rng := rand.New(rand.NewPCG(c.Seed, c.Seed^0x6a09e667f3bcc909))

	hwNodes := map[string]bool{}
	for _, n := range c.HWOf {
		hwNodes[n] = true
	}
	hwList := make([]string, 0, len(hwNodes))
	for n := range hwNodes {
		hwList = append(hwList, n)
	}
	sort.Strings(hwList)

	modules := make([]string, 0, len(c.ReplicasOf))
	for m := range c.ReplicasOf {
		modules = append(modules, m)
	}
	sort.Strings(modules)

	res := HWResult{Trials: c.Trials, ModuleFailures: map[string]int{}}
	for trial := 0; trial < c.Trials; trial++ {
		down := map[string]bool{}
		for _, n := range hwList {
			if rng.Float64() < c.FailureProb {
				down[n] = true
			}
		}
		anyLoss := false
		for _, m := range modules {
			reps := c.ReplicasOf[m]
			alive := 0
			for _, r := range reps {
				if !down[c.HWOf[r]] {
					alive++
				}
			}
			need := 1
			if c.MajorityRequired {
				need = len(reps)/2 + 1
			}
			if alive < need {
				res.ModuleFailures[m]++
				res.CriticalityLoss += c.Criticality[m]
				anyLoss = true
			}
		}
		if anyLoss {
			res.TrialsWithAnyLoss++
		}
	}
	return res, nil
}
