package faultsim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/attrs"
	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/spec"
)

func chain(t *testing.T, w float64) *graph.Graph {
	t.Helper()
	g := graph.New()
	for _, n := range []string{"a", "b"} {
		if err := g.AddNode(n, attrs.Set{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetEdge("a", "b", w); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunValidation(t *testing.T) {
	g := chain(t, 0.5)
	if _, err := Run(Campaign{Graph: g, Trials: 0}); !errors.Is(err, ErrNoTrials) {
		t.Errorf("err = %v, want ErrNoTrials", err)
	}
	if _, err := Run(Campaign{Graph: graph.New(), Trials: 10}); !errors.Is(err, ErrNoNodes) {
		t.Errorf("err = %v, want ErrNoNodes", err)
	}
}

func TestRunDeterministicUnderSeed(t *testing.T) {
	g := chain(t, 0.5)
	r1, err := Run(Campaign{Graph: g, Trials: 1000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(Campaign{Graph: g, Trials: 1000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalAffected != r2.TotalAffected || r1.TrialsWithEscape != r2.TrialsWithEscape {
		t.Error("same seed produced different results")
	}
	r3, err := Run(Campaign{Graph: g, Trials: 1000, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalAffected == r3.TotalAffected && r1.AffectedCount["b"] == r3.AffectedCount["b"] {
		t.Error("different seeds produced identical results (suspicious)")
	}
}

func TestEstimatedInfluenceRecoversEdgeWeight(t *testing.T) {
	// The estimation path of §4.2.1: injecting faults recovers the edge
	// probability within Monte-Carlo error.
	g := chain(t, 0.3)
	// Force injection at "a" every trial.
	r, err := Run(Campaign{
		Graph: g, Trials: 20000, Seed: 7,
		OccurrenceWeights: map[string]float64{"a": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	est, ok := r.EstimatedInfluence("a", "b")
	if !ok {
		t.Fatal("no estimate for a->b")
	}
	if math.Abs(est-0.3) > 0.02 {
		t.Errorf("estimated influence = %g, want 0.3 ± 0.02", est)
	}
	if _, ok := r.EstimatedInfluence("b", "a"); ok {
		t.Error("estimate for non-existent edge")
	}
}

func TestPropagationIsTransitive(t *testing.T) {
	// a->b->c with certain edges: every trial injected at a affects all 3.
	g := graph.New()
	for _, n := range []string{"a", "b", "c"} {
		if err := g.AddNode(n, attrs.Set{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetEdge("a", "b", 1); err != nil {
		t.Fatal(err)
	}
	if err := g.SetEdge("b", "c", 1); err != nil {
		t.Fatal(err)
	}
	r, err := Run(Campaign{
		Graph: g, Trials: 50, Seed: 1,
		OccurrenceWeights: map[string]float64{"a": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.MeanAffected(); got != 3 {
		t.Errorf("mean affected = %g, want 3", got)
	}
	// MaxHops = 1 stops the second hop.
	r, err = Run(Campaign{
		Graph: g, Trials: 50, Seed: 1, MaxHops: 1,
		OccurrenceWeights: map[string]float64{"a": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.MeanAffected(); got != 2 {
		t.Errorf("hop-limited mean affected = %g, want 2", got)
	}
}

func TestReplicaEdgesDoNotPropagate(t *testing.T) {
	g := graph.New()
	for _, n := range []string{"p1a", "p1b"} {
		if err := g.AddNode(n, attrs.Set{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddReplicaEdge("p1a", "p1b"); err != nil {
		t.Fatal(err)
	}
	r, err := Run(Campaign{Graph: g, Trials: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.MeanAffected(); got != 1 {
		t.Errorf("mean affected = %g, want 1 (replica edges carry no faults)", got)
	}
}

func TestHWBoundaryAccounting(t *testing.T) {
	g := chain(t, 1)
	sameNode := map[string]string{"a": "hw1", "b": "hw1"}
	r, err := Run(Campaign{Graph: g, Trials: 200, Seed: 5, HWOf: sameNode,
		OccurrenceWeights: map[string]float64{"a": 1}})
	if err != nil {
		t.Fatal(err)
	}
	if r.TrialsWithEscape != 0 || r.CrossNodeTransmissions != 0 {
		t.Errorf("colocated: escapes=%d cross=%d, want 0", r.TrialsWithEscape, r.CrossNodeTransmissions)
	}
	apart := map[string]string{"a": "hw1", "b": "hw2"}
	r, err = Run(Campaign{Graph: g, Trials: 200, Seed: 5, HWOf: apart,
		OccurrenceWeights: map[string]float64{"a": 1}})
	if err != nil {
		t.Fatal(err)
	}
	if r.EscapeRate() != 1 {
		t.Errorf("separated, certain edge: escape rate = %g, want 1", r.EscapeRate())
	}
}

func TestCriticalityAccounting(t *testing.T) {
	g := graph.New()
	if err := g.AddNode("lo", attrs.New(map[attrs.Kind]float64{attrs.Criticality: 1})); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode("hi", attrs.New(map[attrs.Kind]float64{attrs.Criticality: 15})); err != nil {
		t.Fatal(err)
	}
	if err := g.SetEdge("lo", "hi", 1); err != nil {
		t.Fatal(err)
	}
	r, err := Run(Campaign{
		Graph: g, Trials: 10, Seed: 2, CriticalThreshold: 10,
		OccurrenceWeights: map[string]float64{"lo": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every trial affects lo (1) and hi (15): loss 16/trial, 1 critical.
	if got := r.MeanCriticalityLoss(); got != 16 {
		t.Errorf("mean loss = %g, want 16", got)
	}
	if r.CriticalAffected != 10 {
		t.Errorf("critical affected = %d, want 10", r.CriticalAffected)
	}
}

func TestContainmentShapeH1VsSplit(t *testing.T) {
	// The paper's central containment claim (§6.1): combining nodes with
	// high mutual influence onto shared HW reduces fault transmission
	// across HW nodes. Compare H1's mapping against a deliberately bad
	// mapping (every replica node on its own processor).
	sys := spec.PaperExample()
	g, err := sys.Graph()
	if err != nil {
		t.Fatal(err)
	}
	exp, err := cluster.Expand(g, sys.Jobs())
	if err != nil {
		t.Fatal(err)
	}
	full := exp.Graph.Clone()
	c := cluster.NewCondenser(exp.Graph, exp.Jobs)
	if err := c.ReduceByInfluence(6); err != nil {
		t.Fatal(err)
	}
	h1HW := map[string]string{}
	for i, clusterID := range c.G.Nodes() {
		for _, m := range graph.Members(clusterID) {
			h1HW[m] = string(rune('A' + i))
		}
	}
	splitHW := map[string]string{}
	for i, n := range full.Nodes() {
		splitHW[n] = string(rune('A' + i))
	}
	run := func(hwOf map[string]string) Result {
		r, err := Run(Campaign{Graph: full, Trials: 20000, Seed: 11, HWOf: hwOf})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	h1 := run(h1HW)
	split := run(splitHW)
	if h1.EscapeRate() >= split.EscapeRate() {
		t.Errorf("H1 escape rate %g not below fully-split %g",
			h1.EscapeRate(), split.EscapeRate())
	}
}

func TestRunHWValidation(t *testing.T) {
	if _, err := RunHW(HWFaultCampaign{Trials: 0, ReplicasOf: map[string][]string{"m": {"m"}}}); !errors.Is(err, ErrNoTrials) {
		t.Errorf("err = %v", err)
	}
	if _, err := RunHW(HWFaultCampaign{Trials: 5}); !errors.Is(err, ErrNoNodes) {
		t.Errorf("err = %v", err)
	}
	if _, err := RunHW(HWFaultCampaign{
		Trials: 5, ReplicasOf: map[string][]string{"m": {"m"}}, FailureProb: 2,
	}); err == nil {
		t.Error("bad probability accepted")
	}
}

func TestRunHWTMRBeatsSimplex(t *testing.T) {
	// E7 shape: with independent HW node failures, TMR (majority of 3)
	// loses service far less often than simplex, and simplex less than
	// TMR-with-double-faults would suggest. Analytically with p=0.1:
	// simplex 0.1; TMR majority: p^3 + 3p^2(1-p) = 0.028.
	hwOf := map[string]string{
		"s":  "h1",
		"ta": "h2", "tb": "h3", "tc": "h4",
	}
	c := HWFaultCampaign{
		HWOf:             hwOf,
		ReplicasOf:       map[string][]string{"simplex": {"s"}, "tmr": {"ta", "tb", "tc"}},
		Criticality:      map[string]float64{"simplex": 1, "tmr": 10},
		FailureProb:      0.1,
		MajorityRequired: true,
		Trials:           50000,
		Seed:             13,
	}
	r, err := RunHW(c)
	if err != nil {
		t.Fatal(err)
	}
	simplex := r.Unavailability("simplex")
	tmr := r.Unavailability("tmr")
	if math.Abs(simplex-0.1) > 0.01 {
		t.Errorf("simplex unavailability = %g, want ~0.1", simplex)
	}
	if math.Abs(tmr-0.028) > 0.01 {
		t.Errorf("TMR unavailability = %g, want ~0.028", tmr)
	}
	if tmr >= simplex {
		t.Error("TMR not better than simplex")
	}
}

func TestRunHWStandbySemantics(t *testing.T) {
	// One-of-two standby: fails only when both HW nodes fail (p² = 0.01).
	c := HWFaultCampaign{
		HWOf:        map[string]string{"da": "h1", "db": "h2"},
		ReplicasOf:  map[string][]string{"duplex": {"da", "db"}},
		FailureProb: 0.1,
		Trials:      50000,
		Seed:        17,
	}
	r, err := RunHW(c)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Unavailability("duplex")
	if math.Abs(got-0.01) > 0.005 {
		t.Errorf("duplex unavailability = %g, want ~0.01", got)
	}
}

func TestRunHWColocatedReplicasCorrelatedFailure(t *testing.T) {
	// The constraint the framework enforces, demonstrated by violating it:
	// replicas on one HW node fail together, so TMR degenerates to
	// simplex.
	c := HWFaultCampaign{
		HWOf:             map[string]string{"ta": "h1", "tb": "h1", "tc": "h1"},
		ReplicasOf:       map[string][]string{"tmr": {"ta", "tb", "tc"}},
		FailureProb:      0.1,
		MajorityRequired: true,
		Trials:           50000,
		Seed:             19,
	}
	r, err := RunHW(c)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Unavailability("tmr")
	if math.Abs(got-0.1) > 0.01 {
		t.Errorf("colocated TMR unavailability = %g, want ~0.1 (simplex-equivalent)", got)
	}
}

func TestMetricsZeroTrials(t *testing.T) {
	var r Result
	if r.MeanAffected() != 0 || r.EscapeRate() != 0 || r.MeanCriticalityLoss() != 0 {
		t.Error("zero-trial metrics should be 0")
	}
	var hr HWResult
	if hr.Unavailability("x") != 0 {
		t.Error("zero-trial unavailability should be 0")
	}
}

func TestUsesMappingPackageAssignments(t *testing.T) {
	// End-to-end: mapping.Assignment feeds the campaign via NodeOf.
	sys := spec.PaperExample()
	g, err := sys.Graph()
	if err != nil {
		t.Fatal(err)
	}
	exp, err := cluster.Expand(g, sys.Jobs())
	if err != nil {
		t.Fatal(err)
	}
	full := exp.Graph.Clone()
	c := cluster.NewCondenser(exp.Graph, exp.Jobs)
	if err := c.ReduceByInfluence(6); err != nil {
		t.Fatal(err)
	}
	// Identity "platform": cluster id is its own HW node.
	asg := mapping.Assignment{}
	for _, id := range c.G.Nodes() {
		asg[id] = id
	}
	hwOf := map[string]string{}
	for _, base := range full.Nodes() {
		hwOf[base] = asg.NodeOf(base)
		if hwOf[base] == "" {
			t.Fatalf("%s unassigned", base)
		}
	}
	if _, err := Run(Campaign{Graph: full, Trials: 100, Seed: 23, HWOf: hwOf}); err != nil {
		t.Fatal(err)
	}
}

func TestCommFaultInjection(t *testing.T) {
	g := chain(t, 0.5) // a -> b, weight 0.5
	// All trials inject on the edge: b becomes faulty directly.
	r, err := Run(Campaign{
		Graph: g, Trials: 1000, Seed: 5, CommFaultFraction: 1,
		HWOf: map[string]string{"a": "hw1", "b": "hw2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.CommFaultTrials != 1000 {
		t.Errorf("comm fault trials = %d, want 1000", r.CommFaultTrials)
	}
	// Every corrupted message crossed the hw1->hw2 boundary.
	if r.EscapeRate() != 1 {
		t.Errorf("escape rate = %g, want 1", r.EscapeRate())
	}
	// b is the origin every time; a is never affected (no b->a edge).
	if r.AffectedCount["b"] != 1000 || r.AffectedCount["a"] != 0 {
		t.Errorf("affected: %v", r.AffectedCount)
	}
}

func TestCommFaultFractionMixes(t *testing.T) {
	g := chain(t, 0.5)
	r, err := Run(Campaign{Graph: g, Trials: 4000, Seed: 9, CommFaultFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(r.CommFaultTrials) / float64(r.Trials)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("comm fault fraction = %g, want ~0.5", frac)
	}
}

func TestCommFaultFractionValidation(t *testing.T) {
	g := chain(t, 0.5)
	if _, err := Run(Campaign{Graph: g, Trials: 10, CommFaultFraction: 1.5}); err == nil {
		t.Error("bad fraction accepted")
	}
	// Fraction > 0 on an edgeless graph degrades to node injection.
	lone := graph.New()
	if err := lone.AddNode("x", attrs.Set{}); err != nil {
		t.Fatal(err)
	}
	r, err := Run(Campaign{Graph: lone, Trials: 10, Seed: 1, CommFaultFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if r.CommFaultTrials != 0 {
		t.Errorf("comm trials on edgeless graph = %d", r.CommFaultTrials)
	}
}
