package faultsim

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/attrs"
	"repro/internal/graph"
)

// FuzzFaultModel throws random model selectors, boundary and non-finite
// probabilities at the campaign entry point. Whatever the inputs, Run
// must either reject them with a classified validation error or return a
// finite, internally consistent, deterministic Result — never panic, and
// never let a NaN leak into the estimators.
func FuzzFaultModel(f *testing.F) {
	f.Add("single", 1, 1.0, 0.0, 1.0, uint64(7))
	f.Add("correlated", 0, 0.5, 0.3, 0.6, uint64(1))
	f.Add("burst", 3, 1.0, 0.0, 0.9, uint64(42))
	f.Add("transient", 2, 0.25, 1.0, 0.0, uint64(99))
	f.Add("burst", -1, math.NaN(), math.Inf(1), math.NaN(), uint64(0))
	f.Add("transient", 0, math.Inf(-1), -0.5, 2.0, uint64(3))
	f.Fuzz(func(t *testing.T, name string, k int, persist, comm, weight float64, seed uint64) {
		model, err := ModelByName(name, k, persist)
		if err != nil {
			if !errors.Is(err, ErrBadModel) {
				t.Fatalf("ModelByName(%q,%d,%g): unclassified error %v", name, k, persist, err)
			}
			return
		}
		g := graph.New()
		crits := map[string]float64{"a": 12, "b": 3, "c": 7, "d": 1}
		for _, n := range []string{"a", "b", "c", "d"} {
			if err := g.AddNode(n, attrs.New(map[attrs.Kind]float64{attrs.Criticality: crits[n]})); err != nil {
				t.Fatal(err)
			}
		}
		for _, e := range []struct {
			from, to string
			w        float64
		}{{"a", "b", 0.6}, {"b", "c", weight}, {"c", "d", 0.5}, {"d", "a", 0.3}} {
			if err := g.SetEdge(e.from, e.to, e.w); err != nil {
				// Out-of-range weights the graph already rejects are fine;
				// what must not happen is a weight both layers accept that
				// then poisons the campaign (NaN slips through SetEdge).
				continue
			}
		}
		c := Campaign{
			Graph:             g,
			HWOf:              map[string]string{"a": "h1", "b": "h1", "c": "h2", "d": "h2"},
			Trials:            64,
			Seed:              seed,
			CommFaultFraction: comm,
			CriticalThreshold: 10,
			Model:             model,
		}
		res, err := Run(c)
		if err != nil {
			if !errors.Is(err, ErrBadProbability) && !errors.Is(err, ErrBadModel) {
				t.Fatalf("unclassified campaign error: %v", err)
			}
			return
		}
		if res.Trials != c.Trials {
			t.Fatalf("Trials = %d, want %d", res.Trials, c.Trials)
		}
		if res.InitialFaults < res.Trials {
			t.Fatalf("InitialFaults = %d < Trials %d", res.InitialFaults, res.Trials)
		}
		if r := res.EscapeRate(); r < 0 || r > 1 || math.IsNaN(r) {
			t.Fatalf("EscapeRate = %g out of range", r)
		}
		for _, v := range []float64{res.CriticalityLoss, res.EscapedCriticalityLoss, res.CriticalityWeightedEscapeRate()} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("non-finite or negative estimator in %+v", res)
			}
		}
		if res.EscapedCriticalityLoss > res.CriticalityLoss {
			t.Fatalf("escaped loss %g exceeds total loss %g",
				res.EscapedCriticalityLoss, res.CriticalityLoss)
		}
		again, err := Run(c)
		if err != nil {
			t.Fatalf("second run errored: %v", err)
		}
		if !reflect.DeepEqual(res, again) {
			t.Fatal("same campaign, different Result — determinism broken")
		}
	})
}
