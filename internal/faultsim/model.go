package faultsim

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"strconv"
)

// ErrBadProbability marks a campaign whose injected probabilities — edge
// weights, occurrence weights, the comm-fault fraction, or a fault-model
// parameter — fall outside [0,1] or are not finite. The paper's Eq. (1)
// factors are probabilities; a campaign silently fed a NaN weight would
// bias every estimator, so Run rejects them up front with a
// stage-taxonomy error instead.
var ErrBadProbability = errors.New("faultsim: probability out of range")

// ErrBadModel marks an invalid fault-model parameterisation (burst size
// below 1, non-probability persistence, …).
var ErrBadModel = errors.New("faultsim: invalid fault model")

// FaultModel selects how the initial fault set of each trial is drawn —
// the paper's single-fault assumption ("faults occur in single FCMs, or
// in communication between a pair of FCMs", §2) generalised to the
// correlated and common-mode failure classes layered architectures face.
//
// The interface is sealed: implementations live in this package and are
// obtained from the constructors SingleFault, Correlated, Burst and
// Transient. Sealing is what keeps the determinism contract enforceable —
// every model draws from the trial's private PCG substream in a fixed
// order, so campaign results stay bit-identical across worker counts and
// checkpoint/resume for every model.
type FaultModel interface {
	// Name identifies the model ("single", "correlated", "burst",
	// "transient"); it participates in the checkpoint fingerprint, so a
	// resume under a different model is rejected as a mismatch.
	Name() string

	// validate checks the model parameters at campaign start.
	validate() error

	// fingerprint appends the model identity (name + parameters) to the
	// campaign fingerprint.
	fingerprint(ws func(string), wf func(float64))

	// persist is the probability a fault is permanent rather than
	// transient (1 = every fault permanent; only Transient lowers it).
	persist() float64

	// inject draws the initial fault set for one trial into t, using only
	// rng and the immutable env.
	inject(env *campaignEnv, rng *rand.Rand, t *trialState)
}

// trialOrigin is one initially faulty FCM of a trial.
type trialOrigin struct {
	node string
	// viaCross marks an origin that became faulty through a corrupted
	// cross-HW communication, so its criticality counts as escaped loss.
	viaCross bool
}

// trialState carries the injection outcome of one trial from the model
// into the shared propagation loop.
type trialState struct {
	origins []trialOrigin
	// commFault marks a trial whose initial fault was a corrupted
	// communication rather than an FCM fault.
	commFault bool
	// commCrossed marks a comm fault whose corrupted message itself
	// crossed a HW boundary.
	commCrossed bool
}

func (t *trialState) reset() { *t = trialState{origins: t.origins[:0]} }

// injectSingle is the paper's original fault model: with probability
// env.commFrac the trial corrupts a communication edge (the receiving FCM
// becomes faulty); otherwise one FCM drawn from the occurrence-weight
// sampler faults. Shared by SingleFault and Transient so both make the
// exact same rng draws as the pre-interface injector.
func injectSingle(env *campaignEnv, rng *rand.Rand, t *trialState) {
	if len(env.commEdges) > 0 && rng.Float64() < env.commFrac {
		e := env.commEdges[rng.IntN(len(env.commEdges))]
		t.commFault = true
		crossed := env.hwOf != nil && env.hwOf[e.From] != env.hwOf[e.To]
		t.commCrossed = crossed
		t.origins = append(t.origins, trialOrigin{node: e.To, viaCross: crossed})
		return
	}
	t.origins = append(t.origins, trialOrigin{node: env.pick(rng)})
}

// singleModel is the default: one initial fault per trial.
type singleModel struct{}

// SingleFault returns the paper's single-fault model (the default when
// Campaign.Model is nil): each trial injects one fault, into an FCM or —
// with probability CommFaultFraction — into a communication edge.
func SingleFault() FaultModel { return singleModel{} }

func (singleModel) Name() string                                 { return "single" }
func (singleModel) validate() error                              { return nil }
func (singleModel) fingerprint(ws func(string), _ func(float64)) { ws("single") }
func (singleModel) persist() float64                             { return 1 }
func (singleModel) inject(env *campaignEnv, rng *rand.Rand, t *trialState) {
	injectSingle(env, rng, t)
}

// correlatedModel faults every FCM colocated with the drawn one.
type correlatedModel struct{}

// Correlated returns the common-mode fault model: the trial draws one FCM
// from the occurrence-weight sampler and then faults *every* FCM hosted
// on the same HW node simultaneously — the correlated failure class a
// shared power supply, clock or hypervisor induces, which the single-fault
// containment argument of Eq. (1)–(4) does not cover. With no HW mapping
// the model degenerates to SingleFault (there is no colocation to share).
func Correlated() FaultModel { return correlatedModel{} }

func (correlatedModel) Name() string                                 { return "correlated" }
func (correlatedModel) validate() error                              { return nil }
func (correlatedModel) fingerprint(ws func(string), _ func(float64)) { ws("correlated") }
func (correlatedModel) persist() float64                             { return 1 }
func (correlatedModel) inject(env *campaignEnv, rng *rand.Rand, t *trialState) {
	seed := env.pick(rng)
	if env.hwOf == nil {
		t.origins = append(t.origins, trialOrigin{node: seed})
		return
	}
	host := env.hwOf[seed]
	// env.nodes is sorted, so the colocated set enumerates in a fixed
	// order — the same order at every worker count and resume point.
	for _, n := range env.nodes {
		if env.hwOf[n] == host {
			t.origins = append(t.origins, trialOrigin{node: n})
		}
	}
}

// burstModel injects K distinct initial faults per trial.
type burstModel struct{ k int }

// Burst returns the k-simultaneous-fault model: each trial draws k
// distinct FCMs (weighted sampling without replacement over the
// occurrence weights; once the remaining weight mass is exhausted the
// residue is drawn uniformly) and faults them all at once. Burst(1) is
// equivalent to SingleFault with CommFaultFraction 0. k is clamped to the
// node count at injection time.
func Burst(k int) FaultModel { return burstModel{k: k} }

func (m burstModel) Name() string { return "burst" }
func (m burstModel) validate() error {
	if m.k < 1 {
		return fmt.Errorf("%w: burst size %d (must be >= 1)", ErrBadModel, m.k)
	}
	return nil
}
func (m burstModel) fingerprint(ws func(string), _ func(float64)) {
	ws("burst")
	ws(strconv.Itoa(m.k))
}
func (m burstModel) persist() float64 { return 1 }
func (m burstModel) inject(env *campaignEnv, rng *rand.Rand, t *trialState) {
	k := m.k
	if k > len(env.nodes) {
		k = len(env.nodes)
	}
	// Weighted sampling without replacement: copy the sampler weights,
	// zero each drawn node. When the remaining mass hits zero (forced
	// seed nodes, zero-weight tails) the rest draws uniformly over the
	// not-yet-faulty nodes, so a burst always reaches its size.
	weights := append([]float64(nil), env.weights...)
	total := env.weightTotal
	taken := make(map[int]bool, k)
	for drawn := 0; drawn < k; drawn++ {
		idx := -1
		if total > 0 {
			x := rng.Float64() * total
			for i, w := range weights {
				x -= w
				if x < 0 {
					idx = i
					break
				}
			}
			if idx < 0 { // float round-off at the tail
				for i := len(weights) - 1; i >= 0; i-- {
					if weights[i] > 0 {
						idx = i
						break
					}
				}
			}
		}
		if idx < 0 {
			// Uniform over the remaining nodes, in sorted-node order.
			nth := rng.IntN(len(env.nodes) - drawn)
			for i := range env.nodes {
				if taken[i] {
					continue
				}
				if nth == 0 {
					idx = i
					break
				}
				nth--
			}
		}
		taken[idx] = true
		total -= weights[idx]
		if total < 0 {
			total = 0
		}
		weights[idx] = 0
		t.origins = append(t.origins, trialOrigin{node: env.nodes[idx]})
	}
}

// transientModel is single-fault injection with per-fault recovery.
type transientModel struct{ persistProb float64 }

// Transient returns the transient-vs-permanent fault model: injection is
// the single-fault model's, but every fault — injected or propagated — is
// permanent only with probability persist. A transient fault still
// affects its FCM (it counts toward AffectedCount, criticality loss and
// escape accounting) but recovers before transmitting onward, so it never
// joins the propagation frontier; Result.TransientFaults counts the
// recoveries. Transient(1) is bit-identical to SingleFault.
func Transient(persist float64) FaultModel { return transientModel{persistProb: persist} }

func (m transientModel) Name() string { return "transient" }
func (m transientModel) validate() error {
	if m.persistProb < 0 || m.persistProb > 1 || math.IsNaN(m.persistProb) {
		return fmt.Errorf("%w: transient persistence %g", ErrBadModel, m.persistProb)
	}
	return nil
}
func (m transientModel) fingerprint(ws func(string), wf func(float64)) {
	ws("transient")
	wf(m.persistProb)
}
func (m transientModel) persist() float64 { return m.persistProb }
func (m transientModel) inject(env *campaignEnv, rng *rand.Rand, t *trialState) {
	injectSingle(env, rng, t)
}

// ModelByName returns the fault model a CLI selector names: "single",
// "correlated", "burst" (size from burst, minimum 2 when unset) or
// "transient" (persistence from persist). Unknown names are an error
// listing the catalogue.
func ModelByName(name string, burst int, persist float64) (FaultModel, error) {
	switch name {
	case "", "single":
		return SingleFault(), nil
	case "correlated":
		return Correlated(), nil
	case "burst":
		if burst < 1 {
			burst = 2
		}
		return Burst(burst), nil
	case "transient":
		return Transient(persist), nil
	default:
		return nil, fmt.Errorf("%w: unknown model %q (have single, correlated, burst, transient)",
			ErrBadModel, name)
	}
}
