package faultsim

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/attrs"
	"repro/internal/graph"
	"repro/internal/stage"
)

// modelCatalogue enumerates every non-default model once for the
// determinism suites.
func modelCatalogue() []FaultModel {
	return []FaultModel{Correlated(), Burst(2), Burst(3), Transient(0.5)}
}

// TestCorrelatedFaultsWholeHWNode: forcing the seed FCM onto node "a"
// (host h1, shared with "b") must fault both colocated FCMs in every
// trial.
func TestCorrelatedFaultsWholeHWNode(t *testing.T) {
	g, hw := web(t)
	c := campaign(g, hw, "")
	c.CommFaultFraction = 0
	c.Model = Correlated()
	c.OccurrenceWeights = map[string]float64{"a": 1}
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.InitialFaults != 2*c.Trials {
		t.Errorf("InitialFaults = %d, want %d (both h1 residents per trial)",
			res.InitialFaults, 2*c.Trials)
	}
	if res.AffectedCount["a"] != c.Trials || res.AffectedCount["b"] != c.Trials {
		t.Errorf("colocated FCMs not faulted every trial: a=%d b=%d (trials %d)",
			res.AffectedCount["a"], res.AffectedCount["b"], c.Trials)
	}
}

// TestCorrelatedWithoutHWDegeneratesToSingle: with no HW mapping there is
// no colocation, so the correlated model must make the same draws as the
// single-fault model.
func TestCorrelatedWithoutHWDegeneratesToSingle(t *testing.T) {
	g, _ := web(t)
	mk := func(m FaultModel) Campaign {
		c := campaign(g, nil, "")
		c.CommFaultFraction = 0
		c.Model = m
		return c
	}
	want, err := Run(mk(SingleFault()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(mk(Correlated()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("correlated without HW mapping differs from single-fault")
	}
}

// TestBurstInjectsDistinctFaults: Burst(2) must fault exactly two
// distinct FCMs per trial; an oversized burst clamps to the node count,
// and with every node initially faulty nothing can propagate or escape.
func TestBurstInjectsDistinctFaults(t *testing.T) {
	g, hw := web(t)
	c := campaign(g, hw, "")
	c.Model = Burst(2)
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.InitialFaults != 2*c.Trials {
		t.Errorf("InitialFaults = %d, want %d", res.InitialFaults, 2*c.Trials)
	}

	c.Model = Burst(10) // clamps to the 4 nodes
	res, err = Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.InitialFaults != 4*c.Trials {
		t.Errorf("clamped InitialFaults = %d, want %d", res.InitialFaults, 4*c.Trials)
	}
	if res.TotalAffected != 4*c.Trials {
		t.Errorf("TotalAffected = %d, want %d", res.TotalAffected, 4*c.Trials)
	}
	if res.EscapeRate() != 0 {
		t.Errorf("EscapeRate = %g, want 0 (no transmission can infect a new node)", res.EscapeRate())
	}
}

// TestBurstRespectsForcedSeed: occurrence weights with all mass on one
// node force it into every burst; the remaining draws fall back to
// uniform over the other nodes.
func TestBurstRespectsForcedSeed(t *testing.T) {
	g, hw := web(t)
	c := campaign(g, hw, "")
	c.Model = Burst(2)
	c.OccurrenceWeights = map[string]float64{"d": 1}
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.AffectedCount["d"] != c.Trials {
		t.Errorf("forced node d affected %d times, want every trial (%d)",
			res.AffectedCount["d"], c.Trials)
	}
	others := res.AffectedCount["a"] + res.AffectedCount["b"] + res.AffectedCount["c"]
	if others < c.Trials {
		t.Errorf("second burst fault missing: a+b+c affected only %d times over %d trials",
			others, c.Trials)
	}
}

// TestTransientZeroNeverPropagates: with persistence 0 every fault
// recovers before transmitting, so trials end at their origin: no
// transmissions, no escapes, one transient per initial fault.
func TestTransientZeroNeverPropagates(t *testing.T) {
	g, hw := web(t)
	c := campaign(g, hw, "")
	c.CommFaultFraction = 0
	c.Model = Transient(0)
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.TransientFaults != res.InitialFaults || res.TransientFaults != c.Trials {
		t.Errorf("TransientFaults = %d, InitialFaults = %d, want both %d",
			res.TransientFaults, res.InitialFaults, c.Trials)
	}
	if res.TotalAffected != c.Trials {
		t.Errorf("TotalAffected = %d, want %d (origins only)", res.TotalAffected, c.Trials)
	}
	if len(res.TransmissionCount) != 0 || res.TrialsWithEscape != 0 {
		t.Errorf("transient-0 campaign propagated: transmissions=%v escapes=%d",
			res.TransmissionCount, res.TrialsWithEscape)
	}
}

// TestTransientFullPersistenceEqualsSingle: Transient(1) must be
// bit-identical to the default single-fault model — the recovery draw is
// skipped entirely, not merely ignored, so the RNG streams line up.
func TestTransientFullPersistenceEqualsSingle(t *testing.T) {
	g, hw := web(t)
	want, err := Run(campaign(g, hw, ""))
	if err != nil {
		t.Fatal(err)
	}
	c := campaign(g, hw, "")
	c.Model = Transient(1)
	got, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("Transient(1) differs from the default single-fault campaign")
	}
}

// TestCriticalityWeightedEscapeRate: with a forced origin on h1 every
// criticality point landing on c or d (h2) is escaped mass.
func TestCriticalityWeightedEscapeRate(t *testing.T) {
	g, hw := web(t)
	c := campaign(g, hw, "")
	c.CommFaultFraction = 0
	c.OccurrenceWeights = map[string]float64{"a": 1}
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	wantLoss := float64(res.AffectedCount["c"])*7 + float64(res.AffectedCount["d"])*1
	if math.Abs(res.EscapedCriticalityLoss-wantLoss) > 1e-9 {
		t.Errorf("EscapedCriticalityLoss = %g, want %g (all h2 infections escaped)",
			res.EscapedCriticalityLoss, wantLoss)
	}
	if got, want := res.CriticalityWeightedEscapeRate(), wantLoss/float64(res.Trials); got != want {
		t.Errorf("CriticalityWeightedEscapeRate = %g, want %g", got, want)
	}
	if (Result{}).CriticalityWeightedEscapeRate() != 0 {
		t.Error("zero-trial rate should be 0")
	}
}

// nanGraph builds a graph with a NaN edge weight. graph.SetEdge's range
// check (w < 0 || w > 1) lets NaN through — both comparisons are false —
// which is exactly the leak the campaign-start validation must catch.
func nanGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New()
	for _, n := range []string{"a", "b"} {
		if err := g.AddNode(n, attrs.New(nil)); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetEdge("a", "b", math.NaN()); err != nil {
		t.Fatalf("expected graph.SetEdge to accept NaN (the documented leak): %v", err)
	}
	return g
}

// TestCampaignValidation: every invalid injected probability must be
// rejected at campaign start with a stage-taxonomy error classified
// under "inject".
func TestCampaignValidation(t *testing.T) {
	g, hw := web(t)
	cases := []struct {
		name string
		mut  func(*Campaign)
		want error
	}{
		{"zero trials", func(c *Campaign) { c.Trials = 0 }, ErrNoTrials},
		{"nil graph", func(c *Campaign) { c.Graph = nil }, ErrNoNodes},
		{"comm fraction above one", func(c *Campaign) { c.CommFaultFraction = 1.5 }, ErrBadProbability},
		{"comm fraction NaN", func(c *Campaign) { c.CommFaultFraction = math.NaN() }, ErrBadProbability},
		{"NaN edge weight", func(c *Campaign) { c.Graph = nanGraph(t) }, ErrBadProbability},
		{"negative occurrence weight", func(c *Campaign) {
			c.OccurrenceWeights = map[string]float64{"a": -1}
		}, ErrBadProbability},
		{"NaN occurrence weight", func(c *Campaign) {
			c.OccurrenceWeights = map[string]float64{"b": math.NaN()}
		}, ErrBadProbability},
		{"burst zero", func(c *Campaign) { c.Model = Burst(0) }, ErrBadModel},
		{"transient NaN", func(c *Campaign) { c.Model = Transient(math.NaN()) }, ErrBadModel},
		{"transient above one", func(c *Campaign) { c.Model = Transient(1.5) }, ErrBadModel},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := campaign(g, hw, "")
			tc.mut(&c)
			_, err := Run(c)
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
			var se *stage.Error
			if !errors.As(err, &se) {
				t.Fatalf("err %v is not a stage.Error", err)
			}
			if se.Stage != "inject" {
				t.Errorf("stage = %q, want \"inject\"", se.Stage)
			}
		})
	}
}

// TestModelByName covers the CLI selector.
func TestModelByName(t *testing.T) {
	for name, want := range map[string]string{
		"": "single", "single": "single", "correlated": "correlated",
		"burst": "burst", "transient": "transient",
	} {
		m, err := ModelByName(name, 0, 0.5)
		if err != nil {
			t.Fatalf("ModelByName(%q): %v", name, err)
		}
		if m.Name() != want {
			t.Errorf("ModelByName(%q).Name() = %q, want %q", name, m.Name(), want)
		}
	}
	if m, _ := ModelByName("burst", 0, 0); m.(burstModel).k != 2 {
		t.Error("burst default size should be 2")
	}
	if _, err := ModelByName("cosmic-ray", 0, 0); !errors.Is(err, ErrBadModel) {
		t.Errorf("unknown model err = %v, want ErrBadModel", err)
	}
}

// TestModelsParallelBitIdentical extends the worker-pool determinism
// contract to every fault model: DeepEqual-identical Results for Workers
// in {1,2,4,7}.
func TestModelsParallelBitIdentical(t *testing.T) {
	g, hw := web(t)
	for _, m := range modelCatalogue() {
		mk := func(workers int) Campaign {
			c := campaign(g, hw, "")
			c.Model = m
			c.Workers = workers
			return c
		}
		want, err := Run(mk(1))
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for _, workers := range []int{2, 4, 7} {
			got, err := Run(mk(workers))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", m.Name(), workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: workers=%d result differs from serial", m.Name(), workers)
			}
		}
	}
}

// TestModelsKillAndResume: every model killed mid-campaign under a
// parallel pool and resumed under a different pool must reproduce the
// uninterrupted serial run bit for bit (v2 frontier-only checkpoints).
func TestModelsKillAndResume(t *testing.T) {
	g, hw := web(t)
	for _, m := range modelCatalogue() {
		ref := campaign(g, hw, "")
		ref.Model = m
		ref.Workers = 1
		want, err := Run(ref)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}

		path := filepath.Join(t.TempDir(), "model.ckpt")
		killed := campaign(g, hw, path)
		killed.Model = m
		killed.Workers = 4
		killed.Ctx = newCancelAfter(killed.Trials / 2)
		if _, err := Run(killed); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: interrupted run err = %v, want context.Canceled", m.Name(), err)
		}

		resumed := campaign(g, hw, path)
		resumed.Model = m
		resumed.Workers = 7
		resumed.Resume = true
		got, err := Run(resumed)
		if err != nil {
			t.Fatalf("%s resume: %v", m.Name(), err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: kill-and-resume differs from uninterrupted serial run", m.Name())
		}
	}
}

// TestModelCheckpointMismatch: the model identity is part of the
// checkpoint fingerprint, so resuming under a different model — or
// different model parameters — must be rejected, not silently blended.
func TestModelCheckpointMismatch(t *testing.T) {
	g, hw := web(t)
	path := filepath.Join(t.TempDir(), "model.ckpt")
	first := campaign(g, hw, path)
	first.Model = Burst(2)
	if _, err := Run(first); err != nil {
		t.Fatal(err)
	}
	for _, m := range []FaultModel{Burst(3), Correlated(), nil} {
		resumed := campaign(g, hw, path)
		resumed.Model = m
		resumed.Resume = true
		if _, err := Run(resumed); !errors.Is(err, ErrCheckpointMismatch) {
			name := "single(default)"
			if m != nil {
				name = m.Name()
			}
			t.Errorf("resume under %s: err = %v, want ErrCheckpointMismatch", name, err)
		}
	}
}
