package faultsim

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"
)

// TestParallelBitIdentical is the core determinism contract of the worker
// pool: the Result of a campaign is DeepEqual-identical for every worker
// count, including the float64 CriticalityLoss accumulator.
func TestParallelBitIdentical(t *testing.T) {
	g, hw := web(t)
	base := campaign(g, hw, "")
	base.Workers = 1
	want, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		c := campaign(g, hw, "")
		c.Workers = workers
		got, err := Run(c)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d result differs from serial:\n got: %+v\nwant: %+v",
				workers, got, want)
		}
	}
}

// TestParallelBitIdenticalWithWeightsAndHops covers the remaining RNG draw
// sites (biased injection sampling, bounded propagation) under sharding.
func TestParallelBitIdenticalWithWeightsAndHops(t *testing.T) {
	g, hw := web(t)
	mk := func(workers int) Campaign {
		c := campaign(g, hw, "")
		c.Workers = workers
		c.MaxHops = 2
		c.OccurrenceWeights = map[string]float64{"a": 3, "b": 0.5, "c": 1, "d": 0}
		return c
	}
	want, err := Run(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		got, err := Run(mk(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d biased campaign differs from serial", workers)
		}
	}
}

// TestParallelEarlyStopDeterministic: the early-stopping decision happens
// at merge points whose sequence is worker-count-independent, so the
// stopping frontier — and the stopped Result — must match serial exactly.
func TestParallelEarlyStopDeterministic(t *testing.T) {
	g, hw := web(t)
	mk := func(workers int) Campaign {
		c := campaign(g, hw, "")
		c.Trials = 100000
		c.StopHalfWidth = 0.02
		c.CheckpointEvery = 100
		c.CheckpointPath = ""
		c.Workers = workers
		return c
	}
	want, err := Run(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	if !want.EarlyStopped {
		t.Fatal("serial reference did not stop early")
	}
	for _, workers := range []int{2, 4, 7} {
		got, err := Run(mk(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d early-stopped result differs from serial (stopped at %d vs %d)",
				workers, got.Trials, want.Trials)
		}
	}
}

// TestParallelKillAndResume: a campaign killed mid-flight under parallel
// workers, then resumed — under a different worker count again — must
// reproduce the uninterrupted serial run bit for bit.
func TestParallelKillAndResume(t *testing.T) {
	g, hw := web(t)

	ref := campaign(g, hw, "")
	ref.Workers = 1
	want, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 4, 7} {
		path := filepath.Join(t.TempDir(), "campaign.ckpt")
		killed := campaign(g, hw, path)
		killed.Workers = workers
		killed.Ctx = newCancelAfter(killed.Trials / 2)
		if _, err := Run(killed); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d interrupted run err = %v, want context.Canceled", workers, err)
		}

		resumed := campaign(g, hw, path)
		resumed.Workers = 7 - workers + 2 // resume under a different pool size
		resumed.Resume = true
		got, err := Run(resumed)
		if err != nil {
			t.Fatalf("workers=%d resume: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d kill-and-resume differs from uninterrupted serial run", workers)
		}
	}
}

// TestParallelResumeExtends: extending a finished campaign's trial count
// on resume must match a fresh full-length run even when the original
// length was not chunk-aligned, for any worker count.
func TestParallelResumeExtends(t *testing.T) {
	g, hw := web(t)
	ref := campaign(g, hw, "")
	ref.Trials = 1500
	ref.Workers = 1
	want, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		path := filepath.Join(t.TempDir(), "campaign.ckpt")
		short := campaign(g, hw, path)
		short.Trials = 600 // not a multiple of the chunk size
		short.Workers = workers
		if _, err := Run(short); err != nil {
			t.Fatal(err)
		}
		long := campaign(g, hw, path)
		long.Trials = 1500
		long.Workers = workers
		long.Resume = true
		got, err := Run(long)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d extended resume differs from fresh serial run", workers)
		}
	}
}

// TestParallelCancelledBeforeStart: a dead context aborts before any pool
// machinery spins up, for parallel worker counts too.
func TestParallelCancelledBeforeStart(t *testing.T) {
	g, hw := web(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := campaign(g, hw, "")
	c.Workers = 4
	c.Ctx = ctx
	if _, err := Run(c); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestSubstreamDistinct guards the seeding scheme itself: neighboring
// trials and neighboring seeds must land on distinct substreams.
func TestSubstreamDistinct(t *testing.T) {
	env1 := &campaignEnv{seedBase: splitmix64(1)}
	env2 := &campaignEnv{seedBase: splitmix64(2)}
	type pair struct{ s1, s2 uint64 }
	seen := map[pair]string{}
	for trial := 0; trial < 1000; trial++ {
		for _, env := range []*campaignEnv{env1, env2} {
			base := env.seedBase + uint64(trial)
			p := pair{splitmix64(base), splitmix64(base ^ substreamSalt)}
			if prev, dup := seen[p]; dup {
				t.Fatalf("substream collision: trial %d repeats %s", trial, prev)
			}
			seen[p] = "seed/trial combination"
		}
	}
}
