package faultsim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"repro/internal/attrs"
	"repro/internal/graph"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/stage"
)

// ErrSearchSpaceEmpty is returned when the search graph has no nodes.
var ErrSearchSpaceEmpty = errors.New("faultsim: adversarial search space is empty")

// Scenario is one point of the adversarial search space: which FCM the
// initial fault is forced into, under which fault model, and — for the
// burst model — how many simultaneous faults strike. Burst is 0 for the
// non-burst models.
type Scenario struct {
	SeedNode string `json:"seed_node"`
	Model    string `json:"model"`
	Burst    int    `json:"burst,omitempty"`
}

// key is the memoization/checkpoint identity of the scenario.
func (s Scenario) key() string {
	return s.Model + "|" + strconv.Itoa(s.Burst) + "|" + s.SeedNode
}

func (s Scenario) String() string {
	if s.Model == "burst" {
		return fmt.Sprintf("%s(k=%d)@%s", s.Model, s.Burst, s.SeedNode)
	}
	return s.Model + "@" + s.SeedNode
}

// model materialises the scenario's FaultModel.
func (s Scenario) model() (FaultModel, error) {
	return ModelByName(s.Model, s.Burst, 1)
}

// Evaluation is the measured outcome of one scenario: its
// criticality-weighted escape rate (the adversarial objective — expected
// criticality mass escaping across HW boundaries per trial), plus the
// plain escape rate and mean criticality loss for context.
type Evaluation struct {
	Scenario            Scenario `json:"scenario"`
	Score               float64  `json:"score"`
	EscapeRate          float64  `json:"escape_rate"`
	MeanCriticalityLoss float64  `json:"mean_criticality_loss"`
}

// SearchResult is the outcome of an adversarial search: the worst-case
// scenario found, every evaluation performed (in evaluation order — the
// greedy trajectory), and whether the evaluation budget stopped the climb
// before it converged to a local optimum.
type SearchResult struct {
	Best        Evaluation   `json:"best"`
	Evaluations []Evaluation `json:"evaluations"`
	// Exhausted is true when MaxEvals ended the search while an
	// unevaluated improving neighbour might remain; false means the climb
	// converged (no neighbour beat the current scenario).
	Exhausted bool `json:"exhausted"`
}

// SearchConfig configures an adversarial scenario search over
// (seed node × fault model × burst size).
type SearchConfig struct {
	// Graph and HWOf are the system under attack, as for Campaign.
	Graph *graph.Graph
	HWOf  map[string]string
	// Trials is the Monte-Carlo budget of each scenario evaluation.
	Trials int
	// Seed makes the whole search reproducible: each scenario is
	// evaluated under a seed derived from (Seed, scenario key), so its
	// score does not depend on when — or whether — other scenarios ran.
	Seed uint64
	// Workers shards each evaluation's trials, exactly as
	// Campaign.Workers; scores are bit-identical for every value.
	Workers int
	// BurstMax bounds the burst size explored (default min(4, nodes),
	// minimum 2 when the graph has at least two nodes).
	BurstMax int
	// MaxEvals bounds the number of distinct scenarios evaluated
	// (default 50). Memoized re-visits are free.
	MaxEvals int
	// CriticalThreshold and MaxHops pass through to each evaluation.
	CriticalThreshold float64
	MaxHops           int
	// Span receives one "search_eval" event per evaluation and a final
	// "search_done" event; Metrics tracks evaluations and the best score.
	Span    *obs.Span
	Metrics *obs.Registry
	// Bus, when set, streams the same evaluation trail live
	// ("search_eval" per scenario, "search_done" at the end) over the
	// observability fabric; publishing never blocks the climb.
	Bus *obs.Bus
	// Ledger, when set, receives one "search_eval" provenance record per
	// evaluation (in evaluation order) and a final "search_best" record
	// after the climb ends. Nil records nothing.
	Ledger *ledger.Ledger
	// Ctx, when non-nil, is polled between evaluations; cancellation
	// persists a checkpoint (when configured) and aborts.
	Ctx context.Context
	// CheckpointPath, when non-empty, persists the evaluation history
	// after every completed evaluation (atomic write-then-rename). With
	// Resume, a killed search replays its recorded evaluations from the
	// checkpoint instead of re-running them; because the climb is
	// deterministic given the scores, the resumed search finishes with a
	// SearchResult bit-identical to an uninterrupted run.
	CheckpointPath string
	Resume         bool
	// LaxResume discards a corrupt (undecodable) evaluation journal with
	// a "resume_discarded" span event and starts the climb fresh, instead
	// of failing with ErrCheckpointCorrupt. Journals from a different
	// search configuration are still rejected.
	LaxResume bool
	// Runner, when non-nil, executes each scenario's campaign in place of
	// Run — the hook the distributed fabric uses to shard evaluations
	// across workers. A Runner MUST be bit-identical to Run for the same
	// campaign (the fabric coordinator is, by its merge contract); like
	// Workers, it is excluded from the search fingerprint, so a resumed
	// search may switch between local and fabric execution freely.
	Runner func(Campaign) (Result, error)
}

// searchCheckpoint is the on-disk evaluation history of a search in
// flight. The greedy trajectory is a pure function of the scores, so the
// history alone positions a resume exactly.
type searchCheckpoint struct {
	Version     int          `json:"version"`
	Fingerprint string       `json:"fingerprint"`
	Evaluations []Evaluation `json:"evaluations"`
}

const searchCheckpointVersion = 1

// fingerprint hashes everything that determines the search trajectory:
// the underlying campaign identity plus the search parameters. MaxEvals
// and Workers are deliberately excluded, so a resume may extend the
// budget or change the pool width.
func (cfg SearchConfig) fingerprint() string {
	base := Campaign{
		Graph:             cfg.Graph,
		HWOf:              cfg.HWOf,
		Seed:              cfg.Seed,
		CriticalThreshold: cfg.CriticalThreshold,
		MaxHops:           cfg.MaxHops,
	}
	h := fnv.New64a()
	h.Write([]byte("faultsim-search-v1\x00"))
	h.Write([]byte(base.fingerprint()))
	h.Write([]byte("\x00" + strconv.Itoa(cfg.Trials)))
	h.Write([]byte("\x00" + strconv.Itoa(cfg.burstMax(len(cfg.Graph.Nodes())))))
	return strconv.FormatUint(h.Sum64(), 16)
}

func (cfg SearchConfig) burstMax(nodes int) int {
	bm := cfg.BurstMax
	if bm <= 0 {
		bm = 4
	}
	if bm > nodes {
		bm = nodes
	}
	if bm < 2 {
		bm = 2
	}
	return bm
}

// searcher carries the memo table and evaluation log through the climb.
type searcher struct {
	cfg   SearchConfig
	nodes []string
	memo  map[string]Evaluation
	log   []Evaluation
	// replay holds checkpointed evaluations not yet re-requested by the
	// climb; scores come from here before any campaign runs.
	replay    map[string]Evaluation
	bestGauge *obs.Gauge
	evalsCtr  *obs.Counter
}

// Search hill-climbs over fault scenarios to find the one maximising the
// criticality-weighted escape rate — the adversary's best shot at pushing
// critical-fault mass across HW boundaries. The climb starts at the
// highest-criticality node under the single-fault model and greedily
// moves to the best improving neighbour (adjacent seed node in sorted
// order, a different fault model, burst size ±1) until no neighbour
// improves or the evaluation budget runs out.
//
// Every scenario is evaluated by a Campaign whose occurrence weights
// force the seed node and whose seed derives from (Seed, scenario), so
// each score is independent of evaluation order: the search is
// deterministic across worker counts and across kill/resume.
func Search(cfg SearchConfig) (SearchResult, error) {
	wrap := func(err error) error { return stage.Wrap("inject", "search", "", err) }
	if cfg.Trials <= 0 {
		return SearchResult{}, wrap(fmt.Errorf("%w: %d", ErrNoTrials, cfg.Trials))
	}
	if cfg.Graph == nil || cfg.Graph.NumNodes() == 0 {
		return SearchResult{}, wrap(ErrSearchSpaceEmpty)
	}
	nodes := append([]string(nil), cfg.Graph.Nodes()...)
	sort.Strings(nodes)

	s := &searcher{
		cfg:    cfg,
		nodes:  nodes,
		memo:   make(map[string]Evaluation),
		replay: make(map[string]Evaluation),
	}
	if cfg.Metrics != nil {
		s.evalsCtr = cfg.Metrics.Counter("faultsim_search_evals_total", "adversarial scenario evaluations")
		s.bestGauge = cfg.Metrics.Gauge("faultsim_search_best_score", "best criticality-weighted escape rate found")
	}
	if cfg.Resume && cfg.CheckpointPath != "" {
		if err := s.loadCheckpoint(); err != nil {
			return SearchResult{}, err
		}
	}

	maxEvals := cfg.MaxEvals
	if maxEvals <= 0 {
		maxEvals = 50
	}

	cur, err := s.evaluate(s.start())
	if err != nil {
		return SearchResult{}, err
	}
	best := cur
	exhausted := false
climb:
	for {
		improved := false
		next := cur
		for _, n := range s.neighbors(cur.Scenario) {
			if _, done := s.memo[n.key()]; !done && len(s.memo) >= maxEvals {
				exhausted = true
				break climb
			}
			ev, err := s.evaluate(n)
			if err != nil {
				return SearchResult{}, err
			}
			if ev.Score > best.Score {
				best = ev
			}
			if ev.Score > next.Score {
				next = ev
				improved = true
			}
		}
		if !improved {
			break
		}
		cur = next
	}

	if cfg.Span != nil {
		cfg.Span.Event("search_done",
			obs.String("best", best.Scenario.String()),
			obs.Float("score", best.Score),
			obs.Int("evaluations", len(s.log)),
			obs.Bool("exhausted", exhausted))
	}
	if cfg.Bus != nil {
		cfg.Bus.Publish("search_done", "search",
			obs.String("scenario", best.Scenario.String()),
			obs.Float("score", best.Score),
			obs.Int("evaluations", len(s.log)),
			obs.Bool("exhausted", exhausted))
	}
	// The evaluation log is deterministic (the climb is a pure function of
	// the scores), so recording it after the fact keeps the ledger
	// byte-identical run to run.
	for _, ev := range s.log {
		cfg.Ledger.Append(ledger.Record{
			Kind: ledger.KindSearchEval, Stage: "faultsim",
			Detail: ev.Scenario.String(), Score: ev.Score,
			Values: map[string]float64{
				"escape_rate":           ev.EscapeRate,
				"mean_criticality_loss": ev.MeanCriticalityLoss,
			},
		})
	}
	cfg.Ledger.Append(ledger.Record{
		Kind: ledger.KindSearchBest, Stage: "faultsim",
		Detail: best.Scenario.String(), Score: best.Score,
		Values: map[string]float64{
			"evaluations": float64(len(s.log)),
			"exhausted":   b2f(exhausted),
		},
	})
	return SearchResult{Best: best, Evaluations: s.log, Exhausted: exhausted}, nil
}

// start is the climb's initial scenario: the single-fault model at the
// highest-criticality node (lexicographically first on ties).
func (s *searcher) start() Scenario {
	seed := s.nodes[0]
	bestCrit := s.cfg.Graph.Attrs(seed).Value(attrs.Criticality)
	for _, n := range s.nodes[1:] {
		if c := s.cfg.Graph.Attrs(n).Value(attrs.Criticality); c > bestCrit {
			seed, bestCrit = n, c
		}
	}
	return Scenario{SeedNode: seed, Model: "single"}
}

// neighbors enumerates the scenarios one move away, in a fixed order:
// adjacent seed nodes (sorted order, wrapping), the other fault models at
// the same seed, and burst size ±1 within [2, BurstMax].
func (s *searcher) neighbors(cur Scenario) []Scenario {
	var out []Scenario
	idx := sort.SearchStrings(s.nodes, cur.SeedNode)
	n := len(s.nodes)
	if n > 1 {
		out = append(out,
			Scenario{SeedNode: s.nodes[(idx+1)%n], Model: cur.Model, Burst: cur.Burst},
			Scenario{SeedNode: s.nodes[(idx+n-1)%n], Model: cur.Model, Burst: cur.Burst})
	}
	bm := s.cfg.burstMax(n)
	for _, m := range []string{"single", "correlated", "burst"} {
		if m == cur.Model {
			continue
		}
		sc := Scenario{SeedNode: cur.SeedNode, Model: m}
		if m == "burst" {
			sc.Burst = 2
		}
		out = append(out, sc)
	}
	if cur.Model == "burst" {
		if cur.Burst+1 <= bm {
			out = append(out, Scenario{SeedNode: cur.SeedNode, Model: "burst", Burst: cur.Burst + 1})
		}
		if cur.Burst-1 >= 2 {
			out = append(out, Scenario{SeedNode: cur.SeedNode, Model: "burst", Burst: cur.Burst - 1})
		}
	}
	return out
}

// evaluate scores a scenario, consulting the memo table and the resume
// replay before spending trials on a campaign.
func (s *searcher) evaluate(sc Scenario) (Evaluation, error) {
	if ev, ok := s.memo[sc.key()]; ok {
		return ev, nil
	}
	if s.cfg.Ctx != nil {
		if err := s.cfg.Ctx.Err(); err != nil {
			return Evaluation{}, stage.Wrap("inject", "search", sc.SeedNode, err)
		}
	}
	ev, replayed := s.replay[sc.key()]
	if !replayed {
		var err error
		ev, err = s.run(sc)
		if err != nil {
			return Evaluation{}, err
		}
	}
	s.memo[sc.key()] = ev
	s.log = append(s.log, ev)
	if s.evalsCtr != nil {
		s.evalsCtr.Inc()
	}
	if s.bestGauge != nil && ev.Score > s.bestGauge.Value() {
		s.bestGauge.Set(ev.Score)
	}
	if s.cfg.Span != nil {
		s.cfg.Span.Event("search_eval",
			obs.String("scenario", sc.String()),
			obs.Float("score", ev.Score),
			obs.Float("escape_rate", ev.EscapeRate),
			obs.Bool("replayed", replayed))
	}
	if s.cfg.Bus != nil {
		s.cfg.Bus.Publish("search_eval", "search",
			obs.String("scenario", sc.String()),
			obs.Float("score", ev.Score),
			obs.Float("escape_rate", ev.EscapeRate),
			obs.Bool("replayed", replayed))
	}
	if s.cfg.CheckpointPath != "" && !replayed {
		if err := s.saveCheckpoint(); err != nil {
			return Evaluation{}, err
		}
	}
	return ev, nil
}

// run executes the scenario's campaign. The occurrence weights put all
// mass on the seed node, so the first injected fault of every trial is
// the scenario's seed (the burst model's remaining draws fall back to
// uniform over the other nodes once the mass is spent). The campaign seed
// mixes the scenario identity into the search seed, giving every scenario
// its own substream family.
func (s *searcher) run(sc Scenario) (Evaluation, error) {
	model, err := sc.model()
	if err != nil {
		return Evaluation{}, stage.Wrap("inject", "search", sc.SeedNode, err)
	}
	h := fnv.New64a()
	h.Write([]byte(sc.key()))
	exec := Run
	if s.cfg.Runner != nil {
		exec = s.cfg.Runner
	}
	res, err := exec(Campaign{
		Graph:             s.cfg.Graph,
		HWOf:              s.cfg.HWOf,
		Trials:            s.cfg.Trials,
		Seed:              splitmix64(s.cfg.Seed ^ h.Sum64()),
		Workers:           s.cfg.Workers,
		OccurrenceWeights: map[string]float64{sc.SeedNode: 1},
		CriticalThreshold: s.cfg.CriticalThreshold,
		MaxHops:           s.cfg.MaxHops,
		Model:             model,
		Ctx:               s.cfg.Ctx,
	})
	if err != nil {
		return Evaluation{}, err
	}
	return Evaluation{
		Scenario:            sc,
		Score:               res.CriticalityWeightedEscapeRate(),
		EscapeRate:          res.EscapeRate(),
		MeanCriticalityLoss: res.CriticalityLoss / float64(res.Trials),
	}, nil
}

// saveCheckpoint atomically persists the evaluation history.
func (s *searcher) saveCheckpoint() error {
	data, err := json.Marshal(searchCheckpoint{
		Version:     searchCheckpointVersion,
		Fingerprint: s.cfg.fingerprint(),
		Evaluations: s.log,
	})
	if err != nil {
		return fmt.Errorf("faultsim: search checkpoint encode: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(s.cfg.CheckpointPath), ".faultsim-search-*")
	if err != nil {
		return fmt.Errorf("faultsim: search checkpoint: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("faultsim: search checkpoint write: %w", errors.Join(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), s.cfg.CheckpointPath); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("faultsim: search checkpoint: %w", err)
	}
	return nil
}

// loadCheckpoint fills the replay table from a prior run's history. An
// absent file starts fresh; a file from a different search is
// ErrCheckpointMismatch.
func (s *searcher) loadCheckpoint() error {
	data, err := os.ReadFile(s.cfg.CheckpointPath)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("faultsim: search checkpoint: %w", err)
	}
	var ck searchCheckpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		cerr := corruptError("search", s.cfg.CheckpointPath, data, err)
		if !s.cfg.LaxResume {
			return cerr
		}
		if s.cfg.Span != nil {
			s.cfg.Span.Event("resume_discarded",
				obs.String("path", s.cfg.CheckpointPath),
				obs.String("error", cerr.Error()))
		}
		return nil
	}
	if ck.Version != searchCheckpointVersion || ck.Fingerprint != s.cfg.fingerprint() {
		return fmt.Errorf("%w: %s", ErrCheckpointMismatch, s.cfg.CheckpointPath)
	}
	for _, ev := range ck.Evaluations {
		s.replay[ev.Scenario.key()] = ev
	}
	return nil
}
