package faultsim

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/graph"
)

func searchConfig(g *graph.Graph, hw map[string]string, path string) SearchConfig {
	return SearchConfig{
		Graph:             g,
		HWOf:              hw,
		Trials:            400,
		Seed:              77,
		CriticalThreshold: 10,
		CheckpointPath:    path,
	}
}

// TestSearchFindsWorstCase: the best evaluation must dominate every other
// evaluation, appear in the log, and — with an ample budget on the tiny
// web graph — the climb must converge rather than exhaust.
func TestSearchFindsWorstCase(t *testing.T) {
	g, hw := web(t)
	res, err := Search(searchConfig(g, hw, ""))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evaluations) == 0 {
		t.Fatal("no evaluations recorded")
	}
	if res.Exhausted {
		t.Error("search exhausted its budget on a 4-node graph")
	}
	found := false
	for _, ev := range res.Evaluations {
		if ev.Score > res.Best.Score {
			t.Errorf("evaluation %s (%.4f) beats reported best %s (%.4f)",
				ev.Scenario, ev.Score, res.Best.Scenario, res.Best.Score)
		}
		if reflect.DeepEqual(ev, res.Best) {
			found = true
		}
	}
	if !found {
		t.Error("best evaluation missing from the evaluation log")
	}
}

// TestSearchDeterministicAcrossWorkers: every scenario is scored under a
// seed derived from the scenario itself, so the whole SearchResult —
// trajectory included — must be DeepEqual-identical for every worker
// count.
func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	g, hw := web(t)
	mk := func(workers int) SearchConfig {
		cfg := searchConfig(g, hw, "")
		cfg.Workers = workers
		return cfg
	}
	want, err := Search(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		got, err := Search(mk(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d search result differs from serial", workers)
		}
	}
}

// TestSearchKillAndResume: a search cancelled between evaluations and
// resumed from its checkpoint must replay the recorded scores and finish
// with a SearchResult bit-identical to an uninterrupted run.
func TestSearchKillAndResume(t *testing.T) {
	g, hw := web(t)
	want, err := Search(searchConfig(g, hw, ""))
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Evaluations) < 3 {
		t.Fatalf("reference search too short (%d evaluations) to interrupt meaningfully",
			len(want.Evaluations))
	}

	path := filepath.Join(t.TempDir(), "search.ckpt")
	killed := searchConfig(g, hw, path)
	// The campaigns poll the context once per chunk, the search once per
	// evaluation; a few hundred polls lands the kill mid-search.
	killed.Ctx = newCancelAfter(3 * killed.Trials / 64)
	if _, err := Search(killed); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted search err = %v, want context.Canceled", err)
	}

	resumed := searchConfig(g, hw, path)
	resumed.Resume = true
	resumed.Workers = 4 // resume under a different pool width too
	got, err := Search(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("kill-and-resume search differs from uninterrupted run:\n got best %s=%.4f (%d evals)\nwant best %s=%.4f (%d evals)",
			got.Best.Scenario, got.Best.Score, len(got.Evaluations),
			want.Best.Scenario, want.Best.Score, len(want.Evaluations))
	}
}

// TestSearchCheckpointMismatch: a checkpoint from a search with a
// different per-evaluation trial budget scores scenarios differently, so
// resuming from it must be rejected.
func TestSearchCheckpointMismatch(t *testing.T) {
	g, hw := web(t)
	path := filepath.Join(t.TempDir(), "search.ckpt")
	first := searchConfig(g, hw, path)
	if _, err := Search(first); err != nil {
		t.Fatal(err)
	}
	second := searchConfig(g, hw, path)
	second.Trials = first.Trials * 2
	second.Resume = true
	if _, err := Search(second); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("resume with different trials err = %v, want ErrCheckpointMismatch", err)
	}
}

// TestSearchBudgetExhaustion: a one-evaluation budget stops the climb
// immediately after the start scenario and reports exhaustion.
func TestSearchBudgetExhaustion(t *testing.T) {
	g, hw := web(t)
	cfg := searchConfig(g, hw, "")
	cfg.MaxEvals = 1
	res, err := Search(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Error("MaxEvals=1 search did not report exhaustion")
	}
	if len(res.Evaluations) != 1 {
		t.Errorf("evaluations = %d, want 1", len(res.Evaluations))
	}
}

// TestSearchValidation mirrors the campaign validation: bad budgets and
// empty graphs are classified errors, not panics.
func TestSearchValidation(t *testing.T) {
	g, hw := web(t)
	cfg := searchConfig(g, hw, "")
	cfg.Trials = 0
	if _, err := Search(cfg); !errors.Is(err, ErrNoTrials) {
		t.Errorf("zero trials err = %v, want ErrNoTrials", err)
	}
	cfg = searchConfig(nil, nil, "")
	if _, err := Search(cfg); !errors.Is(err, ErrSearchSpaceEmpty) {
		t.Errorf("nil graph err = %v, want ErrSearchSpaceEmpty", err)
	}
}
