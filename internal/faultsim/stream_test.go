package faultsim

import (
	"reflect"
	"testing"

	"repro/internal/obs"
)

// TestCampaignBusDeterminism is the streaming half of the determinism
// contract: attaching a bus — even one whose only subscriber is so slow
// it never drains during the run — must not change a single bit of the
// campaign Result, at any worker count. The subscriber's tiny ring
// overflows by design; it must still observe strictly increasing sequence
// numbers, with the overflow recorded in the drop counters.
func TestCampaignBusDeterminism(t *testing.T) {
	g, hw := web(t)
	for _, workers := range []int{1, 4} {
		base := campaign(g, hw, "")
		base.Workers = workers
		want, err := Run(base)
		if err != nil {
			t.Fatalf("workers=%d unwatched: %v", workers, err)
		}

		bus := obs.NewBus(64)
		// A deliberately slow consumer: it reads nothing while the
		// campaign runs, so its 4-slot ring must overflow (the campaign
		// emits campaign_start + ~10 checkpoints + campaign_done).
		sub := bus.Subscribe(0, 4)
		watched := campaign(g, hw, "")
		watched.Workers = workers
		watched.Bus = bus
		watched.Label = "watched"
		got, err := Run(watched)
		if err != nil {
			t.Fatalf("workers=%d watched: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: watched result differs from unwatched:\n got: %+v\nwant: %+v",
				workers, got, want)
		}

		if d := sub.Dropped(); d == 0 {
			t.Errorf("workers=%d: slow subscriber recorded no drops", workers)
		}
		if d := bus.Dropped(); d == 0 {
			t.Errorf("workers=%d: bus recorded no drops", workers)
		}
		var last uint64
		n := 0
		for {
			ev, ok := sub.TryNext()
			if !ok {
				break
			}
			if ev.Seq <= last {
				t.Fatalf("workers=%d: sequence not strictly increasing: %d after %d",
					workers, ev.Seq, last)
			}
			last = ev.Seq
			n++
		}
		if n == 0 {
			t.Errorf("workers=%d: subscriber saw no events at all", workers)
		}
		sub.Close()
		bus.Close()
	}
}

// TestCampaignBusEvents checks the progress-event skeleton: one
// campaign_start, checkpoints carrying a shrinking-capable half_width,
// one campaign_done, all labelled.
func TestCampaignBusEvents(t *testing.T) {
	g, hw := web(t)
	bus := obs.NewBus(256)
	sub := bus.Subscribe(0, 256)
	c := campaign(g, hw, "")
	c.Workers = 2
	c.Bus = bus
	c.Label = "lbl"
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	bus.Close()

	var starts, checkpoints, dones int
	for {
		ev, ok := sub.Next(nil)
		if !ok {
			break
		}
		if ev.Name != "lbl" {
			t.Fatalf("event %q has label %q, want lbl", ev.Kind, ev.Name)
		}
		switch ev.Kind {
		case "campaign_start":
			starts++
			if got, _ := ev.Attrs["trials_total"].(int); got != c.Trials {
				t.Errorf("campaign_start trials_total = %v, want %d", ev.Attrs["trials_total"], c.Trials)
			}
		case "campaign_checkpoint":
			checkpoints++
			width, ok := ev.Attrs["half_width"].(float64)
			if !ok || width <= 0 {
				t.Errorf("campaign_checkpoint half_width = %v, want > 0", ev.Attrs["half_width"])
			}
		case "campaign_done":
			dones++
			if got, _ := ev.Attrs["trials_done"].(int); got != res.Trials {
				t.Errorf("campaign_done trials_done = %v, want %d", ev.Attrs["trials_done"], res.Trials)
			}
		}
	}
	if starts != 1 || dones != 1 {
		t.Errorf("got %d campaign_start / %d campaign_done events, want 1 / 1", starts, dones)
	}
	if checkpoints < 5 {
		t.Errorf("got %d checkpoint events, want at least 5", checkpoints)
	}
}

// TestSearchBusEvents: the adversarial search streams one search_eval per
// scenario and a final search_done.
func TestSearchBusEvents(t *testing.T) {
	g, hw := web(t)
	bus := obs.NewBus(1024)
	sub := bus.Subscribe(0, 1024)
	sr, err := Search(SearchConfig{
		Graph: g, HWOf: hw, Trials: 200, Seed: 5, MaxEvals: 6, Bus: bus,
	})
	if err != nil {
		t.Fatal(err)
	}
	bus.Close()
	evals, dones := 0, 0
	for {
		ev, ok := sub.Next(nil)
		if !ok {
			break
		}
		switch ev.Kind {
		case "search_eval":
			evals++
		case "search_done":
			dones++
			if got, _ := ev.Attrs["score"].(float64); got != sr.Best.Score {
				t.Errorf("search_done score = %v, want %g", ev.Attrs["score"], sr.Best.Score)
			}
		}
	}
	if evals != len(sr.Evaluations) {
		t.Errorf("streamed %d search_eval events, want %d", evals, len(sr.Evaluations))
	}
	if dones != 1 {
		t.Errorf("streamed %d search_done events, want 1", dones)
	}
}
