package faultsim

import (
	"fmt"

	"repro/internal/attrs"
	"repro/internal/graph"
)

// This file is the campaign wire codec: a self-contained, JSON-friendly
// encoding of everything that determines a campaign's deterministic trial
// sequence, so a distributed-fabric coordinator can ship the campaign to
// workers instead of requiring every worker to be launched with matching
// flags. The encoding is deliberately minimal — exactly the fields
// Campaign.Fingerprint() hashes, no more — so a decoded campaign
// fingerprints identically to the original and produces bit-identical
// chunks through ChunkRunner.

// WireNode is one influence-graph node on the wire: its name, criticality
// attribute and HW placement.
type WireNode struct {
	Name        string  `json:"name"`
	Criticality float64 `json:"criticality,omitempty"`
	HW          string  `json:"hw,omitempty"`
}

// WireEdge is one directed influence edge on the wire. Replica edges
// (weight-0 markers) are shipped too: they are excluded from propagation,
// but they participate in the campaign fingerprint.
type WireEdge struct {
	From    string  `json:"from"`
	To      string  `json:"to"`
	Weight  float64 `json:"weight,omitempty"`
	Replica bool    `json:"replica,omitempty"`
}

// WireCampaign is the serialisable identity of a campaign: the influence
// graph, HW mapping, seed, trial budget, fault model and propagation
// parameters. Local-only concerns — worker pools, telemetry, checkpoint
// paths — never cross the wire.
type WireCampaign struct {
	Nodes             []WireNode         `json:"nodes"`
	Edges             []WireEdge         `json:"edges,omitempty"`
	Trials            int                `json:"trials"`
	Seed              uint64             `json:"seed"`
	OccurrenceWeights map[string]float64 `json:"occurrence_weights,omitempty"`
	CriticalThreshold float64            `json:"critical_threshold,omitempty"`
	MaxHops           int                `json:"max_hops,omitempty"`
	CommFaultFraction float64            `json:"comm_fault_fraction,omitempty"`
	// Model identity: name plus the one parameter each model carries.
	Model   string  `json:"model,omitempty"`
	Burst   int     `json:"burst,omitempty"`
	Persist float64 `json:"persist,omitempty"`
	Label   string  `json:"label,omitempty"`
}

// NewWireCampaign encodes c for the wire. The graph is flattened into
// sorted node and edge lists (Graph.Nodes/Edges are already sorted), so
// two equal campaigns encode byte-identically.
func NewWireCampaign(c Campaign) (*WireCampaign, error) {
	if c.Graph == nil {
		return nil, ErrNoNodes
	}
	w := &WireCampaign{
		Trials:            c.Trials,
		Seed:              c.Seed,
		CriticalThreshold: c.CriticalThreshold,
		MaxHops:           c.MaxHops,
		CommFaultFraction: c.CommFaultFraction,
		Label:             c.Label,
	}
	for _, n := range c.Graph.Nodes() {
		w.Nodes = append(w.Nodes, WireNode{
			Name:        n,
			Criticality: c.Graph.Attrs(n).Value(attrs.Criticality),
			HW:          c.HWOf[n],
		})
	}
	for _, e := range c.Graph.Edges() {
		w.Edges = append(w.Edges, WireEdge{From: e.From, To: e.To, Weight: e.Weight, Replica: e.Replica})
	}
	if len(c.OccurrenceWeights) > 0 {
		w.OccurrenceWeights = make(map[string]float64, len(c.OccurrenceWeights))
		for k, v := range c.OccurrenceWeights {
			w.OccurrenceWeights[k] = v
		}
	}
	switch m := c.model().(type) {
	case singleModel:
		w.Model = "single"
	case correlatedModel:
		w.Model = "correlated"
	case burstModel:
		w.Model = "burst"
		w.Burst = m.k
	case transientModel:
		w.Model = "transient"
		w.Persist = m.persistProb
	default:
		return nil, fmt.Errorf("%w: model %q is not wire-encodable", ErrBadModel, c.model().Name())
	}
	return w, nil
}

// Campaign reconstructs the campaign a WireCampaign describes. The rebuilt
// graph enumerates nodes and edges in the same sorted order as the
// original, so the reconstruction fingerprints identically and its
// ChunkRunner produces bit-identical chunk outputs. Validation of the
// probability fields happens where it always does — NewChunkRunner /
// NewMerger — not here.
func (w *WireCampaign) Campaign() (Campaign, error) {
	g := graph.New()
	hwOf := map[string]string{}
	for _, n := range w.Nodes {
		if err := g.AddNode(n.Name, attrs.New(map[attrs.Kind]float64{attrs.Criticality: n.Criticality})); err != nil {
			return Campaign{}, fmt.Errorf("faultsim: wire campaign node %q: %w", n.Name, err)
		}
		if n.HW != "" {
			hwOf[n.Name] = n.HW
		}
	}
	for _, e := range w.Edges {
		if e.Replica {
			// AddReplicaEdge installs both directions; the wire carries
			// both, so the reverse insert is an idempotent re-add.
			if err := g.AddReplicaEdge(e.From, e.To); err != nil {
				return Campaign{}, fmt.Errorf("faultsim: wire campaign replica edge %s->%s: %w", e.From, e.To, err)
			}
			continue
		}
		if err := g.SetEdge(e.From, e.To, e.Weight); err != nil {
			return Campaign{}, fmt.Errorf("faultsim: wire campaign edge %s->%s: %w", e.From, e.To, err)
		}
	}
	model, err := ModelByName(w.Model, w.Burst, w.Persist)
	if err != nil {
		return Campaign{}, err
	}
	if len(hwOf) == 0 {
		hwOf = nil
	}
	var occ map[string]float64
	if len(w.OccurrenceWeights) > 0 {
		occ = make(map[string]float64, len(w.OccurrenceWeights))
		for k, v := range w.OccurrenceWeights {
			occ[k] = v
		}
	}
	return Campaign{
		Graph:             g,
		HWOf:              hwOf,
		Trials:            w.Trials,
		Seed:              w.Seed,
		OccurrenceWeights: occ,
		CriticalThreshold: w.CriticalThreshold,
		MaxHops:           w.MaxHops,
		CommFaultFraction: w.CommFaultFraction,
		Model:             model,
		Label:             w.Label,
	}, nil
}
