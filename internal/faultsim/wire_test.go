package faultsim

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/attrs"
	"repro/internal/graph"
)

func wireTestCampaign(t *testing.T, model FaultModel) Campaign {
	t.Helper()
	g := graph.New()
	for _, n := range []struct {
		name string
		crit float64
	}{{"a", 12}, {"b", 3}, {"c", 7}, {"d", 1}} {
		if err := g.AddNode(n.name, attrs.New(map[attrs.Kind]float64{attrs.Criticality: n.crit})); err != nil {
			t.Fatalf("AddNode(%s): %v", n.name, err)
		}
	}
	for _, e := range []struct {
		from, to string
		w        float64
	}{{"a", "b", 0.9}, {"b", "c", 0.5}, {"c", "d", 0.7}, {"a", "c", 0.2}} {
		if err := g.SetEdge(e.from, e.to, e.w); err != nil {
			t.Fatalf("SetEdge(%s->%s): %v", e.from, e.to, err)
		}
	}
	if err := g.AddReplicaEdge("b", "d"); err != nil {
		t.Fatalf("AddReplicaEdge: %v", err)
	}
	return Campaign{
		Graph:             g,
		HWOf:              map[string]string{"a": "h1", "b": "h1", "c": "h2", "d": "h2"},
		Trials:            192,
		Seed:              1998,
		OccurrenceWeights: map[string]float64{"a": 2, "c": 1},
		CriticalThreshold: 10,
		MaxHops:           3,
		CommFaultFraction: 0.3,
		Model:             model,
		Label:             "wire-test",
	}
}

// TestWireCampaignRoundTrip is the self-configuration contract: a campaign
// encoded for the wire, serialised through JSON (as the fabric frames do),
// and decoded on the far side must fingerprint identically to the original
// and produce bit-identical results — that is what lets a flagless worker
// trust a shipped spec after checking only the fingerprint.
func TestWireCampaignRoundTrip(t *testing.T) {
	models := map[string]FaultModel{
		"single":     nil, // default model
		"correlated": Correlated(),
		"burst":      Burst(3),
		"transient":  Transient(0.4),
	}
	for name, model := range models {
		t.Run(name, func(t *testing.T) {
			c := wireTestCampaign(t, model)
			w, err := NewWireCampaign(c)
			if err != nil {
				t.Fatalf("NewWireCampaign: %v", err)
			}
			data, err := json.Marshal(w)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			var back WireCampaign
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			dec, err := back.Campaign()
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if got, want := dec.Fingerprint(), c.Fingerprint(); got != want {
				t.Fatalf("decoded fingerprint %s != original %s", got, want)
			}
			want, err := Run(c)
			if err != nil {
				t.Fatalf("Run(original): %v", err)
			}
			got, err := Run(dec)
			if err != nil {
				t.Fatalf("Run(decoded): %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("decoded campaign result diverged:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestWireCampaignRejectsBadSpec pins the decode-side validation: a spec
// whose graph cannot be rebuilt (hostile weight) or whose model name is
// unknown fails loudly instead of silently running something else.
func TestWireCampaignRejectsBadSpec(t *testing.T) {
	c := wireTestCampaign(t, nil)
	w, err := NewWireCampaign(c)
	if err != nil {
		t.Fatalf("NewWireCampaign: %v", err)
	}
	bad := *w
	bad.Edges = append([]WireEdge(nil), w.Edges...)
	bad.Edges[0].Weight = 7 // outside [0,1]
	if _, err := bad.Campaign(); err == nil {
		t.Fatal("hostile edge weight decoded without error")
	}
	bad = *w
	bad.Model = "definitely-not-a-model"
	if _, err := bad.Campaign(); err == nil {
		t.Fatal("unknown model decoded without error")
	}
}

// TestSearchRunnerHook pins the dispatch seam the fabric uses: a Runner
// that delegates to Run must yield a SearchResult bit-identical to the
// local search, and must have been consulted for every evaluation.
func TestSearchRunnerHook(t *testing.T) {
	c := wireTestCampaign(t, nil)
	base := SearchConfig{
		Graph:             c.Graph,
		HWOf:              c.HWOf,
		Trials:            64,
		Seed:              7,
		MaxEvals:          6,
		CriticalThreshold: 10,
	}
	want, err := Search(base)
	if err != nil {
		t.Fatalf("Search(local): %v", err)
	}
	hooked := base
	calls := 0
	hooked.Runner = func(cc Campaign) (Result, error) {
		calls++
		return Run(cc)
	}
	got, err := Search(hooked)
	if err != nil {
		t.Fatalf("Search(runner): %v", err)
	}
	if calls == 0 {
		t.Fatal("Runner was never consulted")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Runner-dispatched search diverged from local search")
	}
}
