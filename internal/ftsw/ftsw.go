// Package ftsw provides executable software fault-tolerance mechanisms —
// the task-level containment techniques the framework names in §3.2:
// "Well-known SW techniques such as N-version programming, or Recovery
// Blocks to contain faults, can be used at this level."
//
// These mechanisms reduce the transmission probability p_i2 of Eq. (1):
// a fault occurring inside a variant is caught by an acceptance test or
// outvoted before it can propagate to another FCM.
package ftsw

import (
	"errors"
	"fmt"
)

// Errors returned by the mechanisms.
var (
	// ErrAllVariantsFailed means every alternate/variant produced an
	// unacceptable result.
	ErrAllVariantsFailed = errors.New("ftsw: all variants failed")
	// ErrNoMajority means voting found no value agreed by a majority.
	ErrNoMajority = errors.New("ftsw: no majority among versions")
	// ErrNoVariants marks construction without any variant.
	ErrNoVariants = errors.New("ftsw: at least one variant is required")
)

// Variant is one implementation alternative: it maps an input to an output
// or an error.
type Variant[I, O any] func(I) (O, error)

// AcceptanceTest decides whether a result is acceptable for the given
// input (the recovery-block acceptance test of Randell's scheme, which the
// paper cites).
type AcceptanceTest[I, O any] func(input I, output O) bool

// RecoveryBlock executes alternates in order until one passes the
// acceptance test ("ensure by acceptance test, else by alternate …").
type RecoveryBlock[I, O any] struct {
	alternates []Variant[I, O]
	accept     AcceptanceTest[I, O]
	// Attempts counts variant executions across calls (observability for
	// the containment experiments).
	Attempts int
	// Recoveries counts calls saved by a non-primary alternate.
	Recoveries int
}

// NewRecoveryBlock builds a recovery block from a primary, alternates and
// an acceptance test.
func NewRecoveryBlock[I, O any](accept AcceptanceTest[I, O], alternates ...Variant[I, O]) (*RecoveryBlock[I, O], error) {
	if len(alternates) == 0 {
		return nil, ErrNoVariants
	}
	if accept == nil {
		return nil, fmt.Errorf("ftsw: nil acceptance test")
	}
	return &RecoveryBlock[I, O]{alternates: alternates, accept: accept}, nil
}

// Execute runs the block: each alternate in turn (with checkpoint/rollback
// semantics implied by passing the same input), returning the first
// accepted result.
func (rb *RecoveryBlock[I, O]) Execute(input I) (O, error) {
	var zero O
	for i, alt := range rb.alternates {
		rb.Attempts++
		out, err := alt(input)
		if err != nil {
			continue
		}
		if rb.accept(input, out) {
			if i > 0 {
				rb.Recoveries++
			}
			return out, nil
		}
	}
	return zero, ErrAllVariantsFailed
}

// NVersion executes all versions and votes on the result (N-version
// programming). The key function projects outputs to a comparable value
// for voting; use the identity for comparable outputs.
type NVersion[I any, O any, K comparable] struct {
	versions []Variant[I, O]
	key      func(O) K
	// Outvoted counts minority results discarded by voting.
	Outvoted int
}

// NewNVersion builds an N-version executor. A strict majority
// (> len(versions)/2) is required to accept a result.
func NewNVersion[I any, O any, K comparable](key func(O) K, versions ...Variant[I, O]) (*NVersion[I, O, K], error) {
	if len(versions) == 0 {
		return nil, ErrNoVariants
	}
	if key == nil {
		return nil, fmt.Errorf("ftsw: nil key function")
	}
	return &NVersion[I, O, K]{versions: versions, key: key}, nil
}

// Execute runs every version and returns the majority result.
func (nv *NVersion[I, O, K]) Execute(input I) (O, error) {
	var zero O
	type res struct {
		out O
		ok  bool
	}
	results := make([]res, 0, len(nv.versions))
	counts := map[K]int{}
	for _, v := range nv.versions {
		out, err := v(input)
		if err != nil {
			results = append(results, res{ok: false})
			continue
		}
		results = append(results, res{out: out, ok: true})
		counts[nv.key(out)]++
	}
	need := len(nv.versions)/2 + 1
	for _, r := range results {
		if r.ok && counts[nv.key(r.out)] >= need {
			nv.Outvoted += len(nv.versions) - counts[nv.key(r.out)]
			return r.out, nil
		}
	}
	return zero, ErrNoMajority
}

// TMR is triple modular redundancy: a 2-of-3 N-version special case, the
// mode required for process p1 in the worked example ("has to be
// replicated three times to be run in a TMR mode").
func TMR[I any, O comparable](v1, v2, v3 Variant[I, O]) (*NVersion[I, O, O], error) {
	return NewNVersion(func(o O) O { return o }, v1, v2, v3)
}

// Stats summarises mechanism effectiveness for the containment
// experiments.
type Stats struct {
	Calls     int
	Contained int // faults stopped by the mechanism
	Escaped   int // faulty results delivered
	Failed    int // calls with no deliverable result
}

// ContainmentRate returns Contained / (Contained + Escaped); 1 when no
// fault was presented.
func (s Stats) ContainmentRate() float64 {
	total := s.Contained + s.Escaped
	if total == 0 {
		return 1
	}
	return float64(s.Contained) / float64(total)
}

// MeasureRecoveryBlock drives a recovery block n times with a fault
// injector: inject(i) prepares the i-th input and reports whether the
// primary will misbehave; check(out) reports whether the delivered output
// is correct. It returns containment statistics — the empirical measure of
// how much recovery blocks reduce p_i2 (experiment E8).
func MeasureRecoveryBlock[I any, O any](
	rb *RecoveryBlock[I, O],
	n int,
	inject func(i int) (I, bool),
	check func(I, O) bool,
) Stats {
	var s Stats
	for i := 0; i < n; i++ {
		in, faulty := inject(i)
		s.Calls++
		out, err := rb.Execute(in)
		switch {
		case err != nil:
			s.Failed++
		case check(in, out):
			if faulty {
				s.Contained++
			}
		default:
			s.Escaped++
		}
	}
	return s
}
