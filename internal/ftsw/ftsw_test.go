package ftsw

import (
	"errors"
	"fmt"
	"testing"
)

func accept(in int, out int) bool { return out == in*2 }

func good(in int) (int, error)  { return in * 2, nil }
func bad(in int) (int, error)   { return in*2 + 1, nil }
func fails(in int) (int, error) { return 0, fmt.Errorf("variant error") }

func TestRecoveryBlockPrimarySucceeds(t *testing.T) {
	rb, err := NewRecoveryBlock(accept, good, bad)
	if err != nil {
		t.Fatal(err)
	}
	out, err := rb.Execute(21)
	if err != nil || out != 42 {
		t.Errorf("Execute = %d, %v", out, err)
	}
	if rb.Recoveries != 0 || rb.Attempts != 1 {
		t.Errorf("stats: attempts=%d recoveries=%d", rb.Attempts, rb.Recoveries)
	}
}

func TestRecoveryBlockFallsBackToAlternate(t *testing.T) {
	rb, err := NewRecoveryBlock(accept, bad, good)
	if err != nil {
		t.Fatal(err)
	}
	out, err := rb.Execute(10)
	if err != nil || out != 20 {
		t.Errorf("Execute = %d, %v", out, err)
	}
	if rb.Recoveries != 1 {
		t.Errorf("recoveries = %d, want 1", rb.Recoveries)
	}
}

func TestRecoveryBlockErroringPrimary(t *testing.T) {
	rb, err := NewRecoveryBlock(accept, fails, good)
	if err != nil {
		t.Fatal(err)
	}
	out, err := rb.Execute(5)
	if err != nil || out != 10 {
		t.Errorf("Execute = %d, %v", out, err)
	}
}

func TestRecoveryBlockAllFail(t *testing.T) {
	rb, err := NewRecoveryBlock(accept, bad, fails)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rb.Execute(5); !errors.Is(err, ErrAllVariantsFailed) {
		t.Errorf("err = %v, want ErrAllVariantsFailed", err)
	}
}

func TestRecoveryBlockConstructionErrors(t *testing.T) {
	if _, err := NewRecoveryBlock[int, int](accept); !errors.Is(err, ErrNoVariants) {
		t.Errorf("err = %v, want ErrNoVariants", err)
	}
	if _, err := NewRecoveryBlock[int, int](nil, good); err == nil {
		t.Error("nil acceptance test accepted")
	}
}

func TestNVersionMajority(t *testing.T) {
	nv, err := NewNVersion(func(o int) int { return o }, good, good, bad)
	if err != nil {
		t.Fatal(err)
	}
	out, err := nv.Execute(7)
	if err != nil || out != 14 {
		t.Errorf("Execute = %d, %v", out, err)
	}
	if nv.Outvoted != 1 {
		t.Errorf("outvoted = %d, want 1", nv.Outvoted)
	}
}

func TestNVersionNoMajority(t *testing.T) {
	third := func(in int) (int, error) { return in * 3, nil }
	nv, err := NewNVersion(func(o int) int { return o }, good, bad, third)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nv.Execute(7); !errors.Is(err, ErrNoMajority) {
		t.Errorf("err = %v, want ErrNoMajority", err)
	}
}

func TestNVersionMajorityDespiteErrors(t *testing.T) {
	nv, err := NewNVersion(func(o int) int { return o }, good, fails, good)
	if err != nil {
		t.Fatal(err)
	}
	out, err := nv.Execute(4)
	if err != nil || out != 8 {
		t.Errorf("Execute = %d, %v", out, err)
	}
}

func TestNVersionConstructionErrors(t *testing.T) {
	if _, err := NewNVersion[int, int, int](func(o int) int { return o }); !errors.Is(err, ErrNoVariants) {
		t.Errorf("err = %v", err)
	}
	if _, err := NewNVersion[int, int, int](nil, good); err == nil {
		t.Error("nil key accepted")
	}
}

func TestTMROutvotesSingleFault(t *testing.T) {
	tmr, err := TMR(good, bad, good)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tmr.Execute(50)
	if err != nil || out != 100 {
		t.Errorf("TMR = %d, %v", out, err)
	}
}

func TestTMRDoubleFaultDetected(t *testing.T) {
	// Two matching faulty versions outvote the good one: TMR masks single
	// faults only. The mechanism still yields the (wrong) majority — the
	// classic 2-of-3 limitation.
	tmr, err := TMR(good, bad, bad)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tmr.Execute(5)
	if err != nil {
		t.Fatal(err)
	}
	if out != 11 {
		t.Errorf("TMR double fault = %d, want the faulty majority 11", out)
	}
}

func TestStatsContainmentRate(t *testing.T) {
	s := Stats{Contained: 3, Escaped: 1}
	if got := s.ContainmentRate(); got != 0.75 {
		t.Errorf("rate = %g, want 0.75", got)
	}
	if got := (Stats{}).ContainmentRate(); got != 1 {
		t.Errorf("empty rate = %g, want 1", got)
	}
}

func TestMeasureRecoveryBlockContainsInjectedFaults(t *testing.T) {
	// Primary fails on every third input; the alternate is always right.
	i := 0
	primary := func(in int) (int, error) {
		if in%3 == 0 {
			return in*2 + 1, nil
		}
		return in * 2, nil
	}
	rb, err := NewRecoveryBlock(accept, primary, good)
	if err != nil {
		t.Fatal(err)
	}
	stats := MeasureRecoveryBlock(rb, 99,
		func(n int) (int, bool) { i = n; return n, n%3 == 0 },
		func(in, out int) bool { return out == in*2 })
	_ = i
	if stats.Calls != 99 {
		t.Errorf("calls = %d", stats.Calls)
	}
	if stats.Escaped != 0 || stats.Failed != 0 {
		t.Errorf("escaped=%d failed=%d, want 0/0", stats.Escaped, stats.Failed)
	}
	if stats.Contained != 33 {
		t.Errorf("contained = %d, want 33", stats.Contained)
	}
	if rate := stats.ContainmentRate(); rate != 1 {
		t.Errorf("containment rate = %g, want 1", rate)
	}
}

func TestMeasureRecoveryBlockWithoutAlternateEscapes(t *testing.T) {
	// Single faulty variant and a vacuous acceptance test: faults escape —
	// the baseline against which recovery blocks are measured (E8).
	primary := func(in int) (int, error) {
		if in%3 == 0 {
			return in*2 + 1, nil
		}
		return in * 2, nil
	}
	always := func(in, out int) bool { return true }
	rb, err := NewRecoveryBlock(always, primary)
	if err != nil {
		t.Fatal(err)
	}
	stats := MeasureRecoveryBlock(rb, 99,
		func(n int) (int, bool) { return n, n%3 == 0 },
		func(in, out int) bool { return out == in*2 })
	if stats.Escaped != 33 {
		t.Errorf("escaped = %d, want 33", stats.Escaped)
	}
	if rate := stats.ContainmentRate(); rate != 0 {
		t.Errorf("containment rate = %g, want 0", rate)
	}
}
