package graph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/attrs"
)

// CombineWeights is the function used to merge several parallel influence
// values into one when nodes are contracted. The framework's Eq. (4) —
// 1 − ∏(1 − p_i) — is the canonical choice; see package influence.
type CombineWeights func(weights []float64) float64

// ClusterID builds the canonical id of a contracted node from its member
// ids, e.g. "{p1a,p2a}". Members are sorted so the id is deterministic.
func ClusterID(members []string) string {
	ms := append([]string(nil), members...)
	sort.Strings(ms)
	return "{" + strings.Join(ms, ",") + "}"
}

// Contract merges the given member nodes into a single cluster node and
// returns the id of the new node. Per §5.2:
//
//   - internal influences disappear;
//   - if several cluster members had individual influences on a common
//     neighbour, those values are combined (with combine — Eq. (4));
//   - if any component node had a replica (weight-0) edge to a neighbour,
//     the resulting edge is also a replica edge ("the final value is
//     also 0") — the constraint is absorbing;
//   - node attributes combine per the standard attribute policies.
//
// Contract fails if the member set includes two replicas of one module
// (they must be mapped to different HW nodes) or references unknown nodes.
func (g *Graph) Contract(members []string, combine CombineWeights) (string, error) {
	if len(members) == 0 {
		return "", fmt.Errorf("%w: empty member set", ErrNoSuchNode)
	}
	set := make(map[string]bool, len(members))
	for _, m := range members {
		if !g.HasNode(m) {
			return "", fmt.Errorf("%w: %q", ErrNoSuchNode, m)
		}
		if set[m] {
			return "", fmt.Errorf("graph: duplicate member %q", m)
		}
		set[m] = true
	}
	for i, a := range members {
		for _, b := range members[i+1:] {
			if g.AreReplicas(a, b) {
				return "", fmt.Errorf("graph: %w: %q and %q", ErrReplicaConflict, a, b)
			}
		}
	}

	// Combined attributes.
	sets := make([]attrs.Set, 0, len(members))
	for _, m := range members {
		sets = append(sets, g.Attrs(m))
	}
	clusterAttrs := attrs.CombineAll(sets...)

	// Collect external influences in both directions, keyed by neighbour.
	type agg struct {
		weights []float64
		factors map[string]bool
		replica bool
	}
	outAgg := map[string]*agg{}
	inAgg := map[string]*agg{}
	accumulate := func(m map[string]*agg, nbr string, e Edge) {
		a := m[nbr]
		if a == nil {
			a = &agg{factors: map[string]bool{}}
			m[nbr] = a
		}
		if e.Replica {
			a.replica = true
			return
		}
		a.weights = append(a.weights, e.Weight)
		for _, f := range e.Factors {
			a.factors[f] = true
		}
	}
	for _, m := range members {
		for to, e := range g.out[m] {
			if !set[to] {
				accumulate(outAgg, to, e)
			}
		}
		for from, e := range g.in[m] {
			if !set[from] {
				accumulate(inAgg, from, e)
			}
		}
	}

	id := ClusterID(flattenMembers(g, members))
	for _, m := range members {
		if err := g.RemoveNode(m); err != nil {
			return "", err
		}
	}
	if err := g.AddNode(id, clusterAttrs); err != nil {
		return "", err
	}
	apply := func(m map[string]*agg, makeEdge func(nbr string, w float64, factors []string) error, replicate func(nbr string) error) error {
		nbrs := make([]string, 0, len(m))
		for n := range m {
			nbrs = append(nbrs, n)
		}
		sort.Strings(nbrs)
		for _, nbr := range nbrs {
			a := m[nbr]
			if a.replica {
				if err := replicate(nbr); err != nil {
					return err
				}
				continue
			}
			fs := make([]string, 0, len(a.factors))
			for f := range a.factors {
				fs = append(fs, f)
			}
			sort.Strings(fs)
			if err := makeEdge(nbr, combine(a.weights), fs); err != nil {
				return err
			}
		}
		return nil
	}
	err := apply(outAgg,
		func(nbr string, w float64, fs []string) error { return g.SetEdge(id, nbr, w, fs...) },
		func(nbr string) error { return g.AddReplicaEdge(id, nbr) })
	if err != nil {
		return "", err
	}
	err = apply(inAgg,
		func(nbr string, w float64, fs []string) error {
			// A replica edge set while processing outAgg is symmetric;
			// do not overwrite it with a weighted edge.
			if g.AreReplicas(nbr, id) {
				return nil
			}
			return g.SetEdge(nbr, id, w, fs...)
		},
		func(nbr string) error { return g.AddReplicaEdge(nbr, id) })
	if err != nil {
		return "", err
	}
	return id, nil
}

// ErrReplicaConflict marks an attempt to place two replicas of one module
// in the same cluster or on the same HW node.
var ErrReplicaConflict = errReplicaConflict{}

type errReplicaConflict struct{}

func (errReplicaConflict) Error() string {
	return "replicas of one module cannot be combined"
}

// Members parses a cluster id produced by ClusterID back into its member
// ids. A plain (non-cluster) id yields itself.
func Members(id string) []string {
	if !strings.HasPrefix(id, "{") || !strings.HasSuffix(id, "}") {
		return []string{id}
	}
	inner := id[1 : len(id)-1]
	if inner == "" {
		return nil
	}
	return strings.Split(inner, ",")
}

// flattenMembers expands any cluster members into their base ids so that
// repeated contraction produces flat "{a,b,c}" ids rather than nested ones.
func flattenMembers(g *Graph, members []string) []string {
	var out []string
	for _, m := range members {
		out = append(out, Members(m)...)
	}
	return out
}
