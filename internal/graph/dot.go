package graph

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/attrs"
)

// WriteDOT renders the influence graph in Graphviz DOT format: weighted
// influence edges as solid arrows labelled with their value, replica links
// as dashed undirected-style pairs, criticality shading on nodes. The
// output is deterministic (sorted nodes and edges).
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	if name == "" {
		name = "influence"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n  node [shape=box, style=filled];\n")
	// Criticality range for shading.
	maxCrit := 0.0
	for _, id := range g.Nodes() {
		if c := g.Attrs(id).Value(attrs.Criticality); c > maxCrit {
			maxCrit = c
		}
	}
	for _, id := range g.Nodes() {
		c := g.Attrs(id).Value(attrs.Criticality)
		shade := 0
		if maxCrit > 0 {
			shade = int(c / maxCrit * 80)
		}
		fmt.Fprintf(&b, "  %q [fillcolor=\"gray%d\", label=\"%s\\nC=%g\"];\n",
			id, 100-shade, id, c)
	}
	seenReplica := map[string]bool{}
	for _, e := range g.Edges() {
		if e.Replica {
			a, bnode := e.From, e.To
			if bnode < a {
				a, bnode = bnode, a
			}
			key := a + "|" + bnode
			if seenReplica[key] {
				continue
			}
			seenReplica[key] = true
			fmt.Fprintf(&b, "  %q -> %q [dir=none, style=dashed, label=\"replica\"];\n", a, bnode)
			continue
		}
		fmt.Fprintf(&b, "  %q -> %q [label=\"%.2g\"];\n", e.From, e.To, e.Weight)
	}
	b.WriteString("}\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("graph: write dot: %w", err)
	}
	return nil
}
