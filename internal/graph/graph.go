// Package graph provides the weighted directed influence-graph substrate of
// the integration framework (ICDCS 1998 §3.4.4, §5.1).
//
// Nodes represent FCMs at one hierarchy level; a labelled unidirectional
// edge from node i to node j carries the influence of FCM_i on FCM_j — the
// probability that a fault in i causes a fault in j when no third FCM is
// considered. Edge labels record the contributing fault factors.
//
// Replica nodes (copies of one module created to satisfy a fault-tolerance
// requirement) are linked by special weight-0 edges; per §5.2, a pair joined
// by such an edge "cannot be combined, as the nodes contain replicas of the
// same module, which must be mapped onto different HW nodes". Absence of an
// edge means no influence.
package graph

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/attrs"
)

// Sentinel errors returned by graph mutations and queries.
var (
	ErrDuplicateNode = errors.New("graph: node already exists")
	ErrNoSuchNode    = errors.New("graph: no such node")
	ErrSelfEdge      = errors.New("graph: self edges are not allowed")
	ErrBadWeight     = errors.New("graph: influence weight must be in [0,1]")
)

// Edge is one directed influence edge. Weight is the influence value of
// Eq. (2) in [0,1]. Factors lists the fault-factor names contributing to
// the influence (e.g. "shared-memory", "message", "timing"). Replica marks
// the weight-0 link between replicas of one module.
type Edge struct {
	From    string
	To      string
	Weight  float64
	Factors []string
	Replica bool
}

// Label renders the edge's factor tuple, e.g. "(shared-memory,timing)".
func (e Edge) Label() string {
	if len(e.Factors) == 0 {
		return ""
	}
	return "(" + strings.Join(e.Factors, ",") + ")"
}

// Graph is a directed, edge-weighted graph with attributed nodes. The zero
// value is not usable; call New.
type Graph struct {
	nodes map[string]attrs.Set
	// out[from][to] = Edge. At most one edge per ordered pair: influence is
	// already a combination over factors.
	out map[string]map[string]Edge
	in  map[string]map[string]Edge
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[string]attrs.Set),
		out:   make(map[string]map[string]Edge),
		in:    make(map[string]map[string]Edge),
	}
}

// AddNode inserts a node with the given attribute set.
func (g *Graph) AddNode(id string, a attrs.Set) error {
	if id == "" {
		return fmt.Errorf("%w: empty id", ErrNoSuchNode)
	}
	if _, ok := g.nodes[id]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateNode, id)
	}
	g.nodes[id] = a
	g.out[id] = make(map[string]Edge)
	g.in[id] = make(map[string]Edge)
	return nil
}

// RemoveNode deletes a node and all incident edges.
func (g *Graph) RemoveNode(id string) error {
	if _, ok := g.nodes[id]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchNode, id)
	}
	for to := range g.out[id] {
		delete(g.in[to], id)
	}
	for from := range g.in[id] {
		delete(g.out[from], id)
	}
	delete(g.nodes, id)
	delete(g.out, id)
	delete(g.in, id)
	return nil
}

// HasNode reports whether id exists.
func (g *Graph) HasNode(id string) bool {
	_, ok := g.nodes[id]
	return ok
}

// Attrs returns the attribute set of node id (zero Set if absent).
func (g *Graph) Attrs(id string) attrs.Set { return g.nodes[id] }

// SetAttrs replaces the attribute set of node id.
func (g *Graph) SetAttrs(id string, a attrs.Set) error {
	if _, ok := g.nodes[id]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchNode, id)
	}
	g.nodes[id] = a
	return nil
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the directed edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, m := range g.out {
		n += len(m)
	}
	return n
}

// Nodes returns all node ids in sorted order (deterministic iteration).
func (g *Graph) Nodes() []string {
	ids := make([]string, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// SetEdge inserts or replaces the directed influence edge from→to.
// Replica edges must use AddReplicaEdge.
func (g *Graph) SetEdge(from, to string, weight float64, factors ...string) error {
	if err := g.checkPair(from, to); err != nil {
		return err
	}
	if weight < 0 || weight > 1 {
		return fmt.Errorf("%w: %g", ErrBadWeight, weight)
	}
	e := Edge{From: from, To: to, Weight: weight, Factors: append([]string(nil), factors...)}
	g.out[from][to] = e
	g.in[to][from] = e
	return nil
}

// AddReplicaEdge links two replicas of one module with the paper's
// weight-0 marker, in both directions (the relation is symmetric).
func (g *Graph) AddReplicaEdge(a, b string) error {
	if err := g.checkPair(a, b); err != nil {
		return err
	}
	for _, p := range [][2]string{{a, b}, {b, a}} {
		e := Edge{From: p[0], To: p[1], Weight: 0, Replica: true}
		g.out[p[0]][p[1]] = e
		g.in[p[1]][p[0]] = e
	}
	return nil
}

func (g *Graph) checkPair(from, to string) error {
	if from == to {
		return fmt.Errorf("%w: %q", ErrSelfEdge, from)
	}
	if _, ok := g.nodes[from]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchNode, from)
	}
	if _, ok := g.nodes[to]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchNode, to)
	}
	return nil
}

// RemoveEdge deletes the directed edge from→to if present.
func (g *Graph) RemoveEdge(from, to string) {
	if m, ok := g.out[from]; ok {
		delete(m, to)
	}
	if m, ok := g.in[to]; ok {
		delete(m, from)
	}
}

// EdgeBetween returns the directed edge from→to and whether it exists.
func (g *Graph) EdgeBetween(from, to string) (Edge, bool) {
	e, ok := g.out[from][to]
	return e, ok
}

// Influence returns the influence weight FCM_from → FCM_to; 0 when no edge.
func (g *Graph) Influence(from, to string) float64 {
	return g.out[from][to].Weight
}

// AreReplicas reports whether a and b are joined by a replica edge.
func (g *Graph) AreReplicas(a, b string) bool {
	e, ok := g.out[a][b]
	return ok && e.Replica
}

// OutEdges returns the out-edges of id sorted by target (deterministic).
func (g *Graph) OutEdges(id string) []Edge {
	return sortEdges(g.out[id], func(e Edge) string { return e.To })
}

// InEdges returns the in-edges of id sorted by source.
func (g *Graph) InEdges(id string) []Edge {
	return sortEdges(g.in[id], func(e Edge) string { return e.From })
}

func sortEdges(m map[string]Edge, key func(Edge) string) []Edge {
	es := make([]Edge, 0, len(m))
	for _, e := range m {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool { return key(es[i]) < key(es[j]) })
	return es
}

// Edges returns every directed edge, sorted by (From, To).
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.NumEdges())
	for _, id := range g.Nodes() {
		es = append(es, g.OutEdges(id)...)
	}
	return es
}

// MutualInfluence is the sum of the influences in both directions between
// a and b (§6.1: "combining nodes with high values of mutual influence —
// the sum of influences in each direction").
func (g *Graph) MutualInfluence(a, b string) float64 {
	return g.Influence(a, b) + g.Influence(b, a)
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New()
	for id, a := range g.nodes {
		c.nodes[id] = a.Clone()
		c.out[id] = make(map[string]Edge, len(g.out[id]))
		c.in[id] = make(map[string]Edge, len(g.in[id]))
	}
	for from, m := range g.out {
		for to, e := range m {
			e.Factors = append([]string(nil), e.Factors...)
			c.out[from][to] = e
			c.in[to][from] = e
		}
	}
	return c
}

// Matrix returns the influence matrix P (P[i][j] = influence of node i on
// node j) together with the sorted node-id index it is expressed in.
// Replica edges contribute 0, matching their weight.
func (g *Graph) Matrix() ([][]float64, []string) {
	ids := g.Nodes()
	idx := make(map[string]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	p := make([][]float64, len(ids))
	backing := make([]float64, len(ids)*len(ids))
	for i := range p {
		p[i] = backing[i*len(ids) : (i+1)*len(ids)]
	}
	for from, m := range g.out {
		for to, e := range m {
			if !e.Replica {
				p[idx[from]][idx[to]] = e.Weight
			}
		}
	}
	return p, ids
}

// Reachable returns the set of nodes reachable from start along edges with
// positive weight (replica edges do not transmit influence).
func (g *Graph) Reachable(start string) map[string]bool {
	seen := map[string]bool{}
	if _, ok := g.nodes[start]; !ok {
		return seen
	}
	queue := []string{start}
	seen[start] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for to, e := range g.out[cur] {
			if e.Replica || e.Weight <= 0 || seen[to] {
				continue
			}
			seen[to] = true
			queue = append(queue, to)
		}
	}
	return seen
}

// String renders the graph compactly for traces and golden tests.
func (g *Graph) String() string {
	var b strings.Builder
	for _, id := range g.Nodes() {
		fmt.Fprintf(&b, "%s [%s]\n", id, g.nodes[id])
		for _, e := range g.OutEdges(id) {
			if e.Replica {
				fmt.Fprintf(&b, "  -> %s replica\n", e.To)
			} else {
				fmt.Fprintf(&b, "  -> %s %.3g%s\n", e.To, e.Weight, e.Label())
			}
		}
	}
	return b.String()
}
