package graph

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/attrs"
)

func mustAdd(t *testing.T, g *Graph, ids ...string) {
	t.Helper()
	for _, id := range ids {
		if err := g.AddNode(id, attrs.Set{}); err != nil {
			t.Fatalf("AddNode(%q): %v", id, err)
		}
	}
}

func mustEdge(t *testing.T, g *Graph, from, to string, w float64, factors ...string) {
	t.Helper()
	if err := g.SetEdge(from, to, w, factors...); err != nil {
		t.Fatalf("SetEdge(%q,%q,%g): %v", from, to, w, err)
	}
}

func TestAddNodeDuplicate(t *testing.T) {
	g := New()
	mustAdd(t, g, "a")
	err := g.AddNode("a", attrs.Set{})
	if !errors.Is(err, ErrDuplicateNode) {
		t.Errorf("duplicate add: err = %v, want ErrDuplicateNode", err)
	}
}

func TestAddNodeEmptyID(t *testing.T) {
	g := New()
	if err := g.AddNode("", attrs.Set{}); err == nil {
		t.Error("AddNode(\"\") succeeded, want error")
	}
}

func TestRemoveNodeCleansEdges(t *testing.T) {
	g := New()
	mustAdd(t, g, "a", "b", "c")
	mustEdge(t, g, "a", "b", 0.5)
	mustEdge(t, g, "c", "a", 0.2)
	if err := g.RemoveNode("a"); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 0 {
		t.Errorf("after remove: nodes=%d edges=%d, want 2, 0", g.NumNodes(), g.NumEdges())
	}
	if err := g.RemoveNode("a"); !errors.Is(err, ErrNoSuchNode) {
		t.Errorf("second remove err = %v, want ErrNoSuchNode", err)
	}
}

func TestSetEdgeValidation(t *testing.T) {
	g := New()
	mustAdd(t, g, "a", "b")
	tests := []struct {
		name     string
		from, to string
		w        float64
		wantErr  error
	}{
		{"self edge", "a", "a", 0.5, ErrSelfEdge},
		{"missing from", "x", "b", 0.5, ErrNoSuchNode},
		{"missing to", "a", "x", 0.5, ErrNoSuchNode},
		{"weight above 1", "a", "b", 1.5, ErrBadWeight},
		{"negative weight", "a", "b", -0.1, ErrBadWeight},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := g.SetEdge(tt.from, tt.to, tt.w); !errors.Is(err, tt.wantErr) {
				t.Errorf("err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestInfluenceAndMutual(t *testing.T) {
	g := New()
	mustAdd(t, g, "p1", "p2")
	mustEdge(t, g, "p1", "p2", 0.7)
	mustEdge(t, g, "p2", "p1", 0.5)
	if got := g.Influence("p1", "p2"); got != 0.7 {
		t.Errorf("Influence(p1,p2) = %g, want 0.7", got)
	}
	if got := g.MutualInfluence("p1", "p2"); math.Abs(got-1.2) > 1e-12 {
		t.Errorf("MutualInfluence = %g, want 1.2", got)
	}
	// Asymmetry: influence need not be symmetric (§3.4.1).
	if g.Influence("p1", "p2") == g.Influence("p2", "p1") {
		t.Error("test fixture should be asymmetric")
	}
	if got := g.Influence("p1", "missing"); got != 0 {
		t.Errorf("Influence to missing node = %g, want 0", got)
	}
}

func TestReplicaEdges(t *testing.T) {
	g := New()
	mustAdd(t, g, "p1a", "p1b", "p2")
	if err := g.AddReplicaEdge("p1a", "p1b"); err != nil {
		t.Fatal(err)
	}
	if !g.AreReplicas("p1a", "p1b") || !g.AreReplicas("p1b", "p1a") {
		t.Error("replica edge not symmetric")
	}
	if g.AreReplicas("p1a", "p2") {
		t.Error("non-replica pair reported as replicas")
	}
	if w := g.Influence("p1a", "p1b"); w != 0 {
		t.Errorf("replica edge weight = %g, want 0", w)
	}
}

func TestEdgeLabel(t *testing.T) {
	e := Edge{Factors: []string{"shared-memory", "timing"}}
	if got := e.Label(); got != "(shared-memory,timing)" {
		t.Errorf("Label = %q", got)
	}
	if got := (Edge{}).Label(); got != "" {
		t.Errorf("empty Label = %q", got)
	}
}

func TestNodesSortedDeterministic(t *testing.T) {
	g := New()
	mustAdd(t, g, "p3", "p1", "p2")
	got := g.Nodes()
	want := []string{"p1", "p2", "p3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nodes() = %v, want %v", got, want)
		}
	}
}

func TestOutInEdgesSorted(t *testing.T) {
	g := New()
	mustAdd(t, g, "a", "b", "c", "d")
	mustEdge(t, g, "a", "d", 0.1)
	mustEdge(t, g, "a", "b", 0.2)
	mustEdge(t, g, "a", "c", 0.3)
	mustEdge(t, g, "b", "d", 0.4)
	out := g.OutEdges("a")
	if len(out) != 3 || out[0].To != "b" || out[1].To != "c" || out[2].To != "d" {
		t.Errorf("OutEdges order wrong: %+v", out)
	}
	in := g.InEdges("d")
	if len(in) != 2 || in[0].From != "a" || in[1].From != "b" {
		t.Errorf("InEdges order wrong: %+v", in)
	}
	if n := g.NumEdges(); n != 4 {
		t.Errorf("NumEdges = %d, want 4", n)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := New()
	mustAdd(t, g, "a", "b")
	mustEdge(t, g, "a", "b", 0.5, "globals")
	c := g.Clone()
	c.RemoveEdge("a", "b")
	if _, ok := g.EdgeBetween("a", "b"); !ok {
		t.Error("Clone shares edge storage")
	}
	if err := c.AddNode("z", attrs.Set{}); err != nil {
		t.Fatal(err)
	}
	if g.HasNode("z") {
		t.Error("Clone shares node storage")
	}
}

func TestMatrix(t *testing.T) {
	g := New()
	mustAdd(t, g, "a", "b", "c")
	mustEdge(t, g, "a", "b", 0.5)
	mustEdge(t, g, "b", "c", 0.3)
	if err := g.AddReplicaEdge("a", "c"); err != nil {
		t.Fatal(err)
	}
	p, ids := g.Matrix()
	if len(ids) != 3 || ids[0] != "a" {
		t.Fatalf("ids = %v", ids)
	}
	if p[0][1] != 0.5 || p[1][2] != 0.3 {
		t.Errorf("matrix values wrong: %v", p)
	}
	if p[0][2] != 0 {
		t.Errorf("replica edge leaked into matrix: %g", p[0][2])
	}
}

func TestReachable(t *testing.T) {
	g := New()
	mustAdd(t, g, "a", "b", "c", "d", "e")
	mustEdge(t, g, "a", "b", 0.5)
	mustEdge(t, g, "b", "c", 0.3)
	mustEdge(t, g, "d", "e", 0.2)
	if err := g.AddReplicaEdge("c", "d"); err != nil {
		t.Fatal(err)
	}
	r := g.Reachable("a")
	for _, want := range []string{"a", "b", "c"} {
		if !r[want] {
			t.Errorf("%s not reachable", want)
		}
	}
	// Replica edges do not transmit influence.
	if r["d"] || r["e"] {
		t.Error("reachability crossed a replica edge")
	}
	if len(g.Reachable("missing")) != 0 {
		t.Error("Reachable from missing node should be empty")
	}
}

func TestStringRendering(t *testing.T) {
	g := New()
	if err := g.AddNode("a", attrs.New(map[attrs.Kind]float64{attrs.Criticality: 5})); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, g, "b")
	mustEdge(t, g, "a", "b", 0.5, "globals")
	s := g.String()
	want := "a [C=5]\n  -> b 0.5(globals)\nb []\n"
	if s != want {
		t.Errorf("String() = %q, want %q", s, want)
	}
}

// --- Contract ---

func eq4(ws []float64) float64 {
	prod := 1.0
	for _, w := range ws {
		prod *= 1 - w
	}
	return 1 - prod
}

func fig2Graph(t *testing.T) *Graph {
	// Fig. 2 of the paper: nodes 1..7; nodes 1-4 are combined; the
	// influences of nodes 2 and 4 on node 6 must be combined.
	t.Helper()
	g := New()
	mustAdd(t, g, "n1", "n2", "n3", "n4", "n5", "n6", "n7")
	mustEdge(t, g, "n1", "n2", 0.4)
	mustEdge(t, g, "n2", "n3", 0.3)
	mustEdge(t, g, "n3", "n4", 0.2)
	mustEdge(t, g, "n2", "n6", 0.3)
	mustEdge(t, g, "n4", "n6", 0.1)
	mustEdge(t, g, "n4", "n5", 0.25)
	mustEdge(t, g, "n7", "n1", 0.15)
	return g
}

func TestContractFig2(t *testing.T) {
	g := fig2Graph(t)
	id, err := g.Contract([]string{"n1", "n2", "n3", "n4"}, eq4)
	if err != nil {
		t.Fatal(err)
	}
	if id != "{n1,n2,n3,n4}" {
		t.Errorf("cluster id = %q", id)
	}
	if g.NumNodes() != 4 {
		t.Errorf("nodes after contract = %d, want 4", g.NumNodes())
	}
	// Internal influences disappear; combined influence on n6 per Eq. (4):
	// 1-(1-0.3)(1-0.1) = 0.37. This is the exact value surviving in Fig. 5.
	got := g.Influence(id, "n6")
	if math.Abs(got-0.37) > 1e-12 {
		t.Errorf("cluster->n6 = %g, want 0.37", got)
	}
	if got := g.Influence(id, "n5"); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("cluster->n5 = %g, want 0.25", got)
	}
	if got := g.Influence("n7", id); math.Abs(got-0.15) > 1e-12 {
		t.Errorf("n7->cluster = %g, want 0.15", got)
	}
}

func TestContractMergesFactors(t *testing.T) {
	g := New()
	mustAdd(t, g, "a", "b", "t")
	mustEdge(t, g, "a", "t", 0.3, "globals")
	mustEdge(t, g, "b", "t", 0.1, "timing")
	id, err := g.Contract([]string{"a", "b"}, eq4)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := g.EdgeBetween(id, "t")
	if !ok {
		t.Fatal("no combined edge")
	}
	if e.Label() != "(globals,timing)" {
		t.Errorf("combined label = %q", e.Label())
	}
}

func TestContractRejectsReplicaPair(t *testing.T) {
	g := New()
	mustAdd(t, g, "p1a", "p1b")
	if err := g.AddReplicaEdge("p1a", "p1b"); err != nil {
		t.Fatal(err)
	}
	_, err := g.Contract([]string{"p1a", "p1b"}, eq4)
	if !errors.Is(err, ErrReplicaConflict) {
		t.Errorf("err = %v, want ErrReplicaConflict", err)
	}
}

func TestContractReplicaEdgeAbsorbing(t *testing.T) {
	// §5.2: "if any of the component nodes had an influence of 0 [replica
	// edge] on the neighbor, then the final value is also 0".
	g := New()
	mustAdd(t, g, "p1a", "p1b", "x")
	if err := g.AddReplicaEdge("p1a", "p1b"); err != nil {
		t.Fatal(err)
	}
	mustEdge(t, g, "x", "p1b", 0.9)
	id, err := g.Contract([]string{"p1a", "x"}, eq4)
	if err != nil {
		t.Fatal(err)
	}
	if !g.AreReplicas(id, "p1b") {
		t.Error("cluster should inherit the replica constraint against p1b")
	}
	// The weighted x->p1b edge must not override the replica marker.
	if w := g.Influence(id, "p1b"); w != 0 {
		t.Errorf("influence across inherited replica edge = %g, want 0", w)
	}
}

func TestContractAttributesCombined(t *testing.T) {
	g := New()
	if err := g.AddNode("a", attrs.Timing(15, 3, 0, 20, 5)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode("b", attrs.Timing(10, 2, 8, 16, 5)); err != nil {
		t.Fatal(err)
	}
	id, err := g.Contract([]string{"a", "b"}, eq4)
	if err != nil {
		t.Fatal(err)
	}
	a := g.Attrs(id)
	if a.Value(attrs.Criticality) != 15 || a.Value(attrs.Deadline) != 16 ||
		a.Value(attrs.ComputeTime) != 10 {
		t.Errorf("cluster attrs = %s", a)
	}
}

func TestContractErrors(t *testing.T) {
	g := New()
	mustAdd(t, g, "a")
	if _, err := g.Contract(nil, eq4); err == nil {
		t.Error("empty contract succeeded")
	}
	if _, err := g.Contract([]string{"a", "a"}, eq4); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := g.Contract([]string{"zz"}, eq4); !errors.Is(err, ErrNoSuchNode) {
		t.Errorf("unknown member err = %v", err)
	}
}

func TestContractFlattensNestedClusters(t *testing.T) {
	g := New()
	mustAdd(t, g, "a", "b", "c")
	id1, err := g.Contract([]string{"a", "b"}, eq4)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := g.Contract([]string{id1, "c"}, eq4)
	if err != nil {
		t.Fatal(err)
	}
	if id2 != "{a,b,c}" {
		t.Errorf("nested cluster id = %q, want {a,b,c}", id2)
	}
}

func TestMembersRoundTrip(t *testing.T) {
	tests := []struct {
		id   string
		want []string
	}{
		{"p1", []string{"p1"}},
		{"{a,b}", []string{"a", "b"}},
		{"{}", nil},
	}
	for _, tt := range tests {
		got := Members(tt.id)
		if len(got) != len(tt.want) {
			t.Errorf("Members(%q) = %v, want %v", tt.id, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("Members(%q) = %v, want %v", tt.id, got, tt.want)
			}
		}
	}
}

func TestClusterIDSorted(t *testing.T) {
	if id := ClusterID([]string{"b", "a"}); id != "{a,b}" {
		t.Errorf("ClusterID = %q, want {a,b}", id)
	}
}

// --- Cuts ---

func TestGlobalMinCutTwoClusters(t *testing.T) {
	g := New()
	mustAdd(t, g, "a1", "a2", "b1", "b2")
	mustEdge(t, g, "a1", "a2", 0.9)
	mustEdge(t, g, "a2", "a1", 0.9)
	mustEdge(t, g, "b1", "b2", 0.8)
	mustEdge(t, g, "b2", "b1", 0.8)
	mustEdge(t, g, "a1", "b1", 0.05)
	cut, err := g.GlobalMinCut()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cut.Weight-0.05) > 1e-12 {
		t.Errorf("cut weight = %g, want 0.05", cut.Weight)
	}
	sides := map[string]int{}
	for _, id := range cut.S {
		sides[id] = 1
	}
	for _, id := range cut.T {
		sides[id] = 2
	}
	if sides["a1"] != sides["a2"] || sides["b1"] != sides["b2"] || sides["a1"] == sides["b1"] {
		t.Errorf("cut sides wrong: S=%v T=%v", cut.S, cut.T)
	}
}

func TestGlobalMinCutTooSmall(t *testing.T) {
	g := New()
	mustAdd(t, g, "only")
	if _, err := g.GlobalMinCut(); !errors.Is(err, ErrTooSmall) {
		t.Errorf("err = %v, want ErrTooSmall", err)
	}
}

func TestGlobalMinCutDisconnected(t *testing.T) {
	g := New()
	mustAdd(t, g, "a", "b")
	cut, err := g.GlobalMinCut()
	if err != nil {
		t.Fatal(err)
	}
	if cut.Weight != 0 {
		t.Errorf("disconnected cut weight = %g, want 0", cut.Weight)
	}
}

func TestMinCutSTMatchesBottleneck(t *testing.T) {
	// Path a - b - c with a weak middle link: min s-t cut is the weak link.
	g := New()
	mustAdd(t, g, "a", "b", "c")
	mustEdge(t, g, "a", "b", 0.9)
	mustEdge(t, g, "b", "c", 0.1)
	cut, err := g.MinCutST("a", "c")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cut.Weight-0.1) > 1e-9 {
		t.Errorf("s-t cut weight = %g, want 0.1", cut.Weight)
	}
	inS := map[string]bool{}
	for _, id := range cut.S {
		inS[id] = true
	}
	if !inS["a"] || !inS["b"] || inS["c"] {
		t.Errorf("cut sides: S=%v T=%v", cut.S, cut.T)
	}
}

func TestMinCutSTErrors(t *testing.T) {
	g := New()
	mustAdd(t, g, "a", "b")
	if _, err := g.MinCutST("a", "a"); !errors.Is(err, ErrSelfEdge) {
		t.Errorf("self cut err = %v", err)
	}
	if _, err := g.MinCutST("a", "zz"); !errors.Is(err, ErrNoSuchNode) {
		t.Errorf("missing node err = %v", err)
	}
}

func TestCrossAndInternalWeight(t *testing.T) {
	g := New()
	mustAdd(t, g, "a", "b", "c", "d")
	mustEdge(t, g, "a", "b", 0.5)
	mustEdge(t, g, "c", "d", 0.4)
	mustEdge(t, g, "a", "c", 0.3)
	mustEdge(t, g, "d", "b", 0.2)
	part := [][]string{{"a", "b"}, {"c", "d"}}
	if got := g.CrossWeight(part); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CrossWeight = %g, want 0.5", got)
	}
	if got := g.InternalWeight(part); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("InternalWeight = %g, want 0.9", got)
	}
}

func TestCrossPlusInternalIsTotal(t *testing.T) {
	// Property: for any bipartition covering all nodes, cross + internal
	// equals the total edge weight.
	f := func(seed uint8) bool {
		g := New()
		ids := []string{"a", "b", "c", "d", "e"}
		for _, id := range ids {
			if err := g.AddNode(id, attrs.Set{}); err != nil {
				return false
			}
		}
		// Deterministic pseudo-random edges from the seed.
		s := uint32(seed) + 1
		next := func() float64 {
			s = s*1664525 + 1013904223
			return float64(s%1000) / 1000
		}
		total := 0.0
		for i, from := range ids {
			for j, to := range ids {
				if i == j {
					continue
				}
				w := next()
				if w > 0.5 {
					continue
				}
				if err := g.SetEdge(from, to, w); err != nil {
					return false
				}
				total += w
			}
		}
		part := [][]string{{"a", "b"}, {"c", "d", "e"}}
		sum := g.CrossWeight(part) + g.InternalWeight(part)
		return math.Abs(sum-total) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGlobalMinCutSeparatesReplicas(t *testing.T) {
	// Replica edges have weight zero, so a min cut will happily split them.
	g := New()
	mustAdd(t, g, "p1a", "p1b")
	if err := g.AddReplicaEdge("p1a", "p1b"); err != nil {
		t.Fatal(err)
	}
	cut, err := g.GlobalMinCut()
	if err != nil {
		t.Fatal(err)
	}
	if cut.Weight != 0 {
		t.Errorf("replica pair cut weight = %g, want 0", cut.Weight)
	}
	if len(cut.S) != 1 || len(cut.T) != 1 {
		t.Errorf("cut sides: %v | %v", cut.S, cut.T)
	}
}
