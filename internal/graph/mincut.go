package graph

import (
	"errors"
	"math"
	"sort"
)

// ErrTooSmall is returned by cut algorithms on graphs with < 2 nodes.
var ErrTooSmall = errors.New("graph: cut requires at least two nodes")

// Cut is the result of a minimum-cut computation: a bipartition of the
// node set and the total symmetrized influence weight crossing it.
type Cut struct {
	// S and T are the two sides, each sorted.
	S, T []string
	// Weight is the sum of mutual influence across the cut.
	Weight float64
}

// GlobalMinCut computes a global minimum cut of the graph's *symmetrized*
// influence (mutual influence between each pair), using the Stoer–Wagner
// algorithm. This implements heuristic H2's primitive: "Find the min-cut of
// the graph. Divide the graph into two parts along the cut." (§5.4)
//
// Replica edges carry weight 0 and therefore never hold a cut together —
// replicas naturally fall on opposite sides, as the paper requires.
func (g *Graph) GlobalMinCut() (Cut, error) {
	ids := g.Nodes()
	n := len(ids)
	if n < 2 {
		return Cut{}, ErrTooSmall
	}
	// Symmetric weight matrix of mutual influence.
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	idx := make(map[string]int, n)
	for i, id := range ids {
		idx[id] = i
	}
	for from, m := range g.out {
		for to, e := range m {
			if e.Replica {
				continue
			}
			w[idx[from]][idx[to]] += e.Weight
			w[idx[to]][idx[from]] += e.Weight
		}
	}

	// Stoer–Wagner with supernode tracking. members[i] lists the original
	// node indices currently merged into supernode i.
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	members := make([][]int, n)
	for i := range members {
		members[i] = []int{i}
	}

	best := Cut{Weight: math.Inf(1)}
	for len(active) > 1 {
		// Minimum cut phase: maximum adjacency ordering.
		a := active[0]
		inA := map[int]bool{a: true}
		order := []int{a}
		weightTo := map[int]float64{}
		for _, v := range active {
			if v != a {
				weightTo[v] = w[a][v]
			}
		}
		for len(order) < len(active) {
			// pick most tightly connected vertex; break ties by index for
			// determinism.
			bestV, bestW := -1, math.Inf(-1)
			for _, v := range active {
				if inA[v] {
					continue
				}
				if weightTo[v] > bestW || (weightTo[v] == bestW && (bestV == -1 || v < bestV)) {
					bestV, bestW = v, weightTo[v]
				}
			}
			inA[bestV] = true
			order = append(order, bestV)
			for _, v := range active {
				if !inA[v] {
					weightTo[v] += w[bestV][v]
				}
			}
		}
		s, t := order[len(order)-2], order[len(order)-1]
		cutOfPhase := 0.0
		for _, v := range active {
			if v != t {
				cutOfPhase += w[t][v]
			}
		}
		if cutOfPhase < best.Weight {
			tSide := make([]string, 0, len(members[t]))
			for _, m := range members[t] {
				tSide = append(tSide, ids[m])
			}
			inT := map[string]bool{}
			for _, id := range tSide {
				inT[id] = true
			}
			sSide := make([]string, 0, n-len(tSide))
			for _, id := range ids {
				if !inT[id] {
					sSide = append(sSide, id)
				}
			}
			sort.Strings(sSide)
			sort.Strings(tSide)
			best = Cut{S: sSide, T: tSide, Weight: cutOfPhase}
		}
		// Merge t into s.
		members[s] = append(members[s], members[t]...)
		for _, v := range active {
			if v != s && v != t {
				w[s][v] += w[t][v]
				w[v][s] = w[s][v]
			}
		}
		next := active[:0]
		for _, v := range active {
			if v != t {
				next = append(next, v)
			}
		}
		active = next
	}
	return best, nil
}

// MinCutST computes a minimum s–t cut of the symmetrized influence using
// Edmonds–Karp max-flow (H2 variant: "cut the graph using source and target
// nodes"). The returned cut places s in S and t in T.
func (g *Graph) MinCutST(s, t string) (Cut, error) {
	if !g.HasNode(s) || !g.HasNode(t) {
		return Cut{}, ErrNoSuchNode
	}
	if s == t {
		return Cut{}, ErrSelfEdge
	}
	ids := g.Nodes()
	idx := make(map[string]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	n := len(ids)
	capM := make([][]float64, n)
	for i := range capM {
		capM[i] = make([]float64, n)
	}
	for from, m := range g.out {
		for to, e := range m {
			if e.Replica {
				continue
			}
			capM[idx[from]][idx[to]] += e.Weight
			capM[idx[to]][idx[from]] += e.Weight
		}
	}
	si, ti := idx[s], idx[t]
	flowTotal := 0.0
	const eps = 1e-12
	for {
		// BFS for an augmenting path in the residual graph.
		parent := make([]int, n)
		for i := range parent {
			parent[i] = -1
		}
		parent[si] = si
		queue := []int{si}
		for len(queue) > 0 && parent[ti] == -1 {
			u := queue[0]
			queue = queue[1:]
			for v := 0; v < n; v++ {
				if parent[v] == -1 && capM[u][v] > eps {
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		if parent[ti] == -1 {
			break
		}
		// Bottleneck.
		bottleneck := math.Inf(1)
		for v := ti; v != si; v = parent[v] {
			bottleneck = math.Min(bottleneck, capM[parent[v]][v])
		}
		for v := ti; v != si; v = parent[v] {
			capM[parent[v]][v] -= bottleneck
			capM[v][parent[v]] += bottleneck
		}
		flowTotal += bottleneck
	}
	// S side = reachable in residual graph.
	inS := make([]bool, n)
	inS[si] = true
	queue := []int{si}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := 0; v < n; v++ {
			if !inS[v] && capM[u][v] > eps {
				inS[v] = true
				queue = append(queue, v)
			}
		}
	}
	var sSide, tSide []string
	for i, id := range ids {
		if inS[i] {
			sSide = append(sSide, id)
		} else {
			tSide = append(tSide, id)
		}
	}
	return Cut{S: sSide, T: tSide, Weight: flowTotal}, nil
}

// CrossWeight sums the directed influence of every edge whose endpoints lie
// in different groups of the given partition. It is the containment metric
// of §5.3: the residual influence not contained within any one HW node.
func (g *Graph) CrossWeight(partition [][]string) float64 {
	groupOf := map[string]int{}
	for gi, grp := range partition {
		for _, id := range grp {
			groupOf[id] = gi
		}
	}
	total := 0.0
	for from, m := range g.out {
		for to, e := range m {
			if e.Replica {
				continue
			}
			gf, okF := groupOf[from]
			gt, okT := groupOf[to]
			if okF && okT && gf != gt {
				total += e.Weight
			}
		}
	}
	return total
}

// InternalWeight sums the directed influence contained inside the groups of
// the partition (the complement of CrossWeight over covered nodes).
func (g *Graph) InternalWeight(partition [][]string) float64 {
	groupOf := map[string]int{}
	for gi, grp := range partition {
		for _, id := range grp {
			groupOf[id] = gi
		}
	}
	total := 0.0
	for from, m := range g.out {
		for to, e := range m {
			if e.Replica {
				continue
			}
			gf, okF := groupOf[from]
			gt, okT := groupOf[to]
			if okF && okT && gf == gt {
				total += e.Weight
			}
		}
	}
	return total
}
