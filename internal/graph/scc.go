package graph

import "sort"

// StronglyConnectedComponents returns the strongly connected components of
// the influence graph (replica edges excluded — they carry no influence),
// using Tarjan's algorithm. Components are returned as sorted member
// lists, ordered by their smallest member.
//
// Influence cycles matter to the framework: the Eq. (3) separation series
// sums path products over all walks, and a component whose cycle products
// are large makes high-order terms significant (experiment E4's
// oscillation) — worth surfacing to the designer.
func (g *Graph) StronglyConnectedComponents() [][]string {
	ids := g.Nodes()
	index := map[string]int{}
	lowlink := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	counter := 0
	var comps [][]string

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = counter
		lowlink[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, e := range g.OutEdges(v) {
			if e.Replica || e.Weight <= 0 {
				continue
			}
			w := e.To
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if lowlink[w] < lowlink[v] {
					lowlink[v] = lowlink[w]
				}
			} else if onStack[w] && index[w] < lowlink[v] {
				lowlink[v] = index[w]
			}
		}
		if lowlink[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			comps = append(comps, comp)
		}
	}
	for _, v := range ids {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// InfluenceCycles returns the non-trivial strongly connected components
// (size ≥ 2) together with the maximum single-cycle feedback observed on a
// simple two-hop loop inside each (the product w(a→b)·w(b→a) maximised
// over member pairs — a cheap lower bound on the component's feedback
// strength).
type CycleReport struct {
	Members []string
	// TwoHopFeedback is max over member pairs of w(a→b)·w(b→a).
	TwoHopFeedback float64
}

// InfluenceCycles reports the graph's influence cycles.
func (g *Graph) InfluenceCycles() []CycleReport {
	var out []CycleReport
	for _, comp := range g.StronglyConnectedComponents() {
		if len(comp) < 2 {
			continue
		}
		rep := CycleReport{Members: comp}
		for i, a := range comp {
			for _, b := range comp[i+1:] {
				fb := g.Influence(a, b) * g.Influence(b, a)
				if fb > rep.TwoHopFeedback {
					rep.TwoHopFeedback = fb
				}
			}
		}
		out = append(out, rep)
	}
	return out
}
