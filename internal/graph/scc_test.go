package graph

import (
	"math"
	"strings"
	"testing"

	"repro/internal/attrs"
)

func TestSCCBasic(t *testing.T) {
	g := New()
	mustAdd(t, g, "a", "b", "c", "d")
	// Cycle a<->b; chain to c; isolated d.
	mustEdge(t, g, "a", "b", 0.5)
	mustEdge(t, g, "b", "a", 0.4)
	mustEdge(t, g, "b", "c", 0.3)
	comps := g.StronglyConnectedComponents()
	var rendered []string
	for _, c := range comps {
		rendered = append(rendered, strings.Join(c, ","))
	}
	got := strings.Join(rendered, " | ")
	if got != "a,b | c | d" {
		t.Errorf("SCCs = %s", got)
	}
}

func TestSCCIgnoresReplicaEdges(t *testing.T) {
	g := New()
	mustAdd(t, g, "p1a", "p1b")
	if err := g.AddReplicaEdge("p1a", "p1b"); err != nil {
		t.Fatal(err)
	}
	comps := g.StronglyConnectedComponents()
	if len(comps) != 2 {
		t.Errorf("replica pair fused into one SCC: %v", comps)
	}
}

func TestSCCLargeCycle(t *testing.T) {
	g := New()
	names := []string{"a", "b", "c", "d", "e"}
	for _, n := range names {
		if err := g.AddNode(n, attrs.Set{}); err != nil {
			t.Fatal(err)
		}
	}
	for i := range names {
		mustEdge(t, g, names[i], names[(i+1)%len(names)], 0.5)
	}
	comps := g.StronglyConnectedComponents()
	if len(comps) != 1 || len(comps[0]) != 5 {
		t.Errorf("five-cycle SCCs = %v", comps)
	}
}

func TestInfluenceCyclesPaperExample(t *testing.T) {
	// The worked example contains the 2-cycles (p1,p2), (p3,p4), (p7,p8)
	// all fused into one big SCC via p5/p6/p8 links.
	g := New()
	for _, n := range []string{"p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8"} {
		if err := g.AddNode(n, attrs.Set{}); err != nil {
			t.Fatal(err)
		}
	}
	edges := []struct {
		from, to string
		w        float64
	}{
		{"p1", "p2", 0.7}, {"p2", "p1", 0.5}, {"p3", "p4", 0.6}, {"p4", "p3", 0.3},
		{"p3", "p5", 0.7}, {"p4", "p5", 0.2}, {"p2", "p3", 0.2}, {"p7", "p8", 0.3},
		{"p8", "p7", 0.2}, {"p5", "p7", 0.2}, {"p5", "p6", 0.1}, {"p8", "p6", 0.3},
		{"p6", "p1", 0.1},
	}
	for _, e := range edges {
		mustEdge(t, g, e.from, e.to, e.w)
	}
	cycles := g.InfluenceCycles()
	if len(cycles) != 1 {
		t.Fatalf("cycles = %+v", cycles)
	}
	if len(cycles[0].Members) != 8 {
		t.Errorf("SCC members = %v", cycles[0].Members)
	}
	// Strongest two-hop feedback: p1<->p2 = 0.7*0.5 = 0.35.
	if math.Abs(cycles[0].TwoHopFeedback-0.35) > 1e-12 {
		t.Errorf("feedback = %g, want 0.35", cycles[0].TwoHopFeedback)
	}
}

func TestInfluenceCyclesNoneOnDAG(t *testing.T) {
	g := New()
	mustAdd(t, g, "a", "b", "c")
	mustEdge(t, g, "a", "b", 0.5)
	mustEdge(t, g, "b", "c", 0.5)
	if cycles := g.InfluenceCycles(); len(cycles) != 0 {
		t.Errorf("DAG reported cycles: %v", cycles)
	}
}

func TestWriteDOT(t *testing.T) {
	g := New()
	if err := g.AddNode("p1", attrs.New(map[attrs.Kind]float64{attrs.Criticality: 15})); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode("p1b", attrs.New(map[attrs.Kind]float64{attrs.Criticality: 15})); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode("p2", attrs.New(map[attrs.Kind]float64{attrs.Criticality: 5})); err != nil {
		t.Fatal(err)
	}
	mustEdge(t, g, "p1", "p2", 0.7)
	if err := g.AddReplicaEdge("p1", "p1b"); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := g.WriteDOT(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`digraph "test"`,
		`"p1" -> "p2" [label="0.7"]`,
		`style=dashed, label="replica"`,
		`C=15`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Replica pair rendered once, not twice.
	if strings.Count(out, "replica") != 1 {
		t.Errorf("replica edge rendered %d times", strings.Count(out, "replica"))
	}
}
