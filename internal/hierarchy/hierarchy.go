// Package hierarchy generalises the fixed three-level FCM hierarchy of
// package core to arbitrary level chains. The paper chooses three levels
// deliberately, "illustrating the conceptual approach while minimizing
// model complexity", but notes that "once such a framework is established,
// it is possible to add/delete levels (or elements of the hierarchy) as
// desired" — its own example being object-oriented implementation, which
// "introduces objects/classes as another natural level in the hierarchy,
// with its own kinds of faults" (§3 footnote).
//
// A Scheme names the levels from lowest to highest (e.g. procedure →
// object → task → process); a Tree holds FCMs under the generalised rules:
//
//	R1'  a child sits exactly one level below its parent;
//	R2'  the composition DAG is a tree (one parent per FCM);
//	R3'  merging only between siblings;
//	R5'  a modification retests the FCM, its parent, and the interfaces
//	     with its siblings — independent of the scheme's depth.
//
// The depth ablation (experiment E12) uses this package to quantify the
// paper's three-level choice: deeper schemes localise retests further but
// carry more structural overhead.
package hierarchy

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/stage"
)

// Errors returned by scheme and tree operations.
var (
	ErrBadScheme     = errors.New("hierarchy: scheme needs at least two distinct levels")
	ErrUnknownLevel  = errors.New("hierarchy: unknown level")
	ErrUnknownFCM    = errors.New("hierarchy: unknown FCM")
	ErrDuplicateName = errors.New("hierarchy: duplicate FCM name")
	ErrRuleR1        = errors.New("hierarchy: R1 violation: child must sit one level below parent")
	ErrRuleR2        = errors.New("hierarchy: R2 violation: FCM already has a parent")
	ErrRuleR3        = errors.New("hierarchy: R3 violation: merging requires siblings")
)

// Scheme is an ordered list of level names, lowest first.
type Scheme struct {
	levels []string
	index  map[string]int
}

// NewScheme validates and builds a scheme.
func NewScheme(levels ...string) (Scheme, error) {
	if len(levels) < 2 {
		return Scheme{}, ErrBadScheme
	}
	s := Scheme{levels: append([]string(nil), levels...), index: map[string]int{}}
	for i, l := range levels {
		if l == "" {
			return Scheme{}, fmt.Errorf("%w: empty level name", ErrBadScheme)
		}
		if _, dup := s.index[l]; dup {
			return Scheme{}, fmt.Errorf("%w: level %q repeated", ErrBadScheme, l)
		}
		s.index[l] = i
	}
	return s, nil
}

// ThreeLevel is the paper's canonical scheme. The error path is
// unreachable for the literal levels but reported through the stage
// taxonomy rather than panicking, so hardened callers stay panic-free.
func ThreeLevel() (Scheme, error) {
	s, err := NewScheme("procedure", "task", "process")
	if err != nil {
		return Scheme{}, stage.Wrap("partition", "three-level", "", err)
	}
	return s, nil
}

// WithObjects is the OO extension the paper's footnote describes.
func WithObjects() (Scheme, error) {
	s, err := NewScheme("procedure", "object", "task", "process")
	if err != nil {
		return Scheme{}, stage.Wrap("partition", "with-objects", "", err)
	}
	return s, nil
}

// Levels returns the level names, lowest first.
func (s Scheme) Levels() []string { return append([]string(nil), s.levels...) }

// Depth returns the number of levels.
func (s Scheme) Depth() int { return len(s.levels) }

// LevelIndex returns the index of a level name.
func (s Scheme) LevelIndex(level string) (int, error) {
	i, ok := s.index[level]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownLevel, level)
	}
	return i, nil
}

// Node is one FCM in a generalised tree.
type Node struct {
	name     string
	level    int // index into the scheme
	parent   *Node
	children map[string]*Node
	modified bool
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Parent returns the node's parent (nil for roots).
func (n *Node) Parent() *Node { return n.parent }

// Modified reports the node's modification mark.
func (n *Node) Modified() bool { return n.modified }

// Children returns the node's children sorted by name.
func (n *Node) Children() []*Node {
	out := make([]*Node, 0, len(n.children))
	for _, c := range n.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Tree is a forest of FCMs under a scheme. The zero value is unusable;
// call New.
type Tree struct {
	scheme Scheme
	index  map[string]*Node
}

// New builds an empty tree over the scheme.
func New(scheme Scheme) *Tree {
	return &Tree{scheme: scheme, index: map[string]*Node{}}
}

// Scheme returns the tree's scheme.
func (t *Tree) Scheme() Scheme { return t.scheme }

// Len returns the FCM count.
func (t *Tree) Len() int { return len(t.index) }

// Lookup returns the named node.
func (t *Tree) Lookup(name string) (*Node, error) {
	n, ok := t.index[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownFCM, name)
	}
	return n, nil
}

// LevelName returns the level name of a node.
func (t *Tree) LevelName(n *Node) string { return t.scheme.levels[n.level] }

// Add inserts an FCM at the given level under the named parent; parent ""
// creates a root, which is only allowed at the top level (R1' closes the
// chain downward from the top).
func (t *Tree) Add(name, level, parent string) (*Node, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: empty name", ErrUnknownFCM)
	}
	li, err := t.scheme.LevelIndex(level)
	if err != nil {
		return nil, err
	}
	if _, dup := t.index[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateName, name)
	}
	var p *Node
	if parent == "" {
		if li != t.scheme.Depth()-1 {
			return nil, fmt.Errorf("%w: %q at level %q needs a parent", ErrRuleR1, name, level)
		}
	} else {
		p, err = t.Lookup(parent)
		if err != nil {
			return nil, err
		}
		if p.level != li+1 {
			return nil, fmt.Errorf("%w: %q (%s) under %q (%s)",
				ErrRuleR1, name, level, parent, t.LevelName(p))
		}
	}
	n := &Node{name: name, level: li, parent: p, children: map[string]*Node{}}
	t.index[name] = n
	if p != nil {
		p.children[name] = n
	}
	return n, nil
}

// Reparent is rejected: R2' (one parent forever). Exposed to make the
// rule's presence explicit in the API.
func (t *Tree) Reparent(name, newParent string) error {
	if _, err := t.Lookup(name); err != nil {
		return err
	}
	if _, err := t.Lookup(newParent); err != nil {
		return err
	}
	return fmt.Errorf("%w: %q (clone instead)", ErrRuleR2, name)
}

// MergeSiblings merges the named sibling FCMs into one (R3'); the merged
// node adopts the union of children and marks the parent modified (R5').
func (t *Tree) MergeSiblings(mergedName string, names []string) (*Node, error) {
	if len(names) < 2 {
		return nil, fmt.Errorf("%w: merging needs two members", ErrUnknownFCM)
	}
	members := make([]*Node, 0, len(names))
	for _, n := range names {
		m, err := t.Lookup(n)
		if err != nil {
			return nil, err
		}
		members = append(members, m)
	}
	first := members[0]
	for _, m := range members[1:] {
		if m.level != first.level || m.parent != first.parent {
			return nil, fmt.Errorf("%w: %q and %q", ErrRuleR3, first.name, m.name)
		}
	}
	if _, dup := t.index[mergedName]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateName, mergedName)
	}
	merged := &Node{
		name:     mergedName,
		level:    first.level,
		parent:   first.parent,
		children: map[string]*Node{},
		modified: true,
	}
	for _, m := range members {
		for cn, c := range m.children {
			merged.children[cn] = c
			c.parent = merged
		}
		if m.parent != nil {
			delete(m.parent.children, m.name)
		}
		delete(t.index, m.name)
	}
	t.index[mergedName] = merged
	if merged.parent != nil {
		merged.parent.children[mergedName] = merged
		merged.parent.modified = true
	}
	return merged, nil
}

// RetestSet implements R5' for any depth: the modified FCM, its parent,
// and the interfaces with its siblings. It returns (FCM names, interface
// labels); the node is also marked modified along with its parent.
func (t *Tree) RetestSet(name string) (fcms, interfaces []string, err error) {
	n, err := t.Lookup(name)
	if err != nil {
		return nil, nil, err
	}
	n.modified = true
	fcms = []string{n.name}
	if n.parent != nil {
		n.parent.modified = true
		fcms = append(fcms, n.parent.name)
		for _, s := range n.parent.Children() {
			if s == n {
				continue
			}
			a, b := n.name, s.name
			if b < a {
				a, b = b, a
			}
			interfaces = append(interfaces, a+"<->"+b)
		}
	}
	sort.Strings(fcms)
	sort.Strings(interfaces)
	return fcms, interfaces, nil
}

// ClearModified resets all modification marks.
func (t *Tree) ClearModified() {
	for _, n := range t.index {
		n.modified = false
	}
}

// Validate checks the generalised structural invariants.
func (t *Tree) Validate() error {
	for name, n := range t.index {
		if n.name != name {
			return fmt.Errorf("hierarchy: index corruption at %q", name)
		}
		if n.parent == nil {
			if n.level != t.scheme.Depth()-1 {
				return fmt.Errorf("%w: root %q at level %q",
					ErrRuleR1, name, t.LevelName(n))
			}
			continue
		}
		if n.parent.level != n.level+1 {
			return fmt.Errorf("%w: %q under %q", ErrRuleR1, name, n.parent.name)
		}
		if got, ok := n.parent.children[name]; !ok || got != n {
			return fmt.Errorf("%w: %q not registered under %q", ErrRuleR2, name, n.parent.name)
		}
	}
	return nil
}

// BuildUniform builds a complete tree with the given branching factor per
// level (branching[i] children per node at level i+1), returning the tree
// and the names of its leaves. Names encode the path, e.g. "P0.T1.f2".
func BuildUniform(scheme Scheme, branching []int) (*Tree, []string, error) {
	if len(branching) != scheme.Depth()-1 {
		return nil, nil, fmt.Errorf("%w: need %d branching factors, got %d",
			ErrBadScheme, scheme.Depth()-1, len(branching))
	}
	t := New(scheme)
	var leaves []string
	var build func(parent string, level int) error
	build = func(parent string, level int) error {
		if level < 0 {
			leaves = append(leaves, parent)
			return nil
		}
		count := branching[level]
		for i := 0; i < count; i++ {
			name := fmt.Sprintf("%s.%s%d", parent, scheme.levels[level][:1], i)
			if parent == "" {
				name = fmt.Sprintf("%s%d", scheme.levels[level][:1], i)
			}
			if _, err := t.Add(name, scheme.levels[level], parent); err != nil {
				return err
			}
			if err := build(name, level-1); err != nil {
				return err
			}
		}
		return nil
	}
	// Top level: roots.
	top := scheme.Depth() - 1
	rootCount := 1
	for i := 0; i < rootCount; i++ {
		name := fmt.Sprintf("%s%d", scheme.levels[top][:1], i)
		if _, err := t.Add(name, scheme.levels[top], ""); err != nil {
			return nil, nil, err
		}
		if err := build(name, top-1); err != nil {
			return nil, nil, err
		}
	}
	return t, leaves, nil
}
