package hierarchy

import (
	"errors"
	"strings"
	"testing"
)

func TestNewSchemeValidation(t *testing.T) {
	if _, err := NewScheme("only"); !errors.Is(err, ErrBadScheme) {
		t.Errorf("err = %v", err)
	}
	if _, err := NewScheme("a", "a"); !errors.Is(err, ErrBadScheme) {
		t.Errorf("duplicate level err = %v", err)
	}
	if _, err := NewScheme("a", ""); !errors.Is(err, ErrBadScheme) {
		t.Errorf("empty level err = %v", err)
	}
	s, err := NewScheme("procedure", "task", "process")
	if err != nil {
		t.Fatal(err)
	}
	if s.Depth() != 3 {
		t.Errorf("depth = %d", s.Depth())
	}
	if i, err := s.LevelIndex("task"); err != nil || i != 1 {
		t.Errorf("LevelIndex(task) = %d, %v", i, err)
	}
	if _, err := s.LevelIndex("object"); !errors.Is(err, ErrUnknownLevel) {
		t.Errorf("err = %v", err)
	}
}

func TestCanonicalSchemes(t *testing.T) {
	if got := strings.Join(threeLevel(t).Levels(), ","); got != "procedure,task,process" {
		t.Errorf("ThreeLevel = %s", got)
	}
	if got := strings.Join(withObjects(t).Levels(), ","); got != "procedure,object,task,process" {
		t.Errorf("WithObjects = %s", got)
	}
}

func buildOO(t *testing.T) *Tree {
	t.Helper()
	tr := New(withObjects(t))
	adds := [][3]string{
		{"P0", "process", ""},
		{"T0", "task", "P0"},
		{"O0", "object", "T0"},
		{"O1", "object", "T0"},
		{"f0", "procedure", "O0"},
		{"f1", "procedure", "O0"},
		{"f2", "procedure", "O1"},
	}
	for _, a := range adds {
		if _, err := tr.Add(a[0], a[1], a[2]); err != nil {
			t.Fatalf("Add(%v): %v", a, err)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestOOSchemeTree(t *testing.T) {
	tr := buildOO(t)
	if tr.Len() != 7 {
		t.Errorf("len = %d", tr.Len())
	}
	o0, err := tr.Lookup("O0")
	if err != nil {
		t.Fatal(err)
	}
	if tr.LevelName(o0) != "object" || o0.Parent().Name() != "T0" {
		t.Errorf("O0: level=%s parent=%s", tr.LevelName(o0), o0.Parent().Name())
	}
	kids := o0.Children()
	if len(kids) != 2 || kids[0].Name() != "f0" {
		t.Errorf("O0 children: %v", kids)
	}
}

func TestAddRuleViolations(t *testing.T) {
	tr := buildOO(t)
	// Procedure directly under a task skips the object level: R1'.
	if _, err := tr.Add("fx", "procedure", "T0"); !errors.Is(err, ErrRuleR1) {
		t.Errorf("err = %v", err)
	}
	// Root below top level: R1'.
	if _, err := tr.Add("Tfree", "task", ""); !errors.Is(err, ErrRuleR1) {
		t.Errorf("err = %v", err)
	}
	// Duplicates and unknowns.
	if _, err := tr.Add("f0", "procedure", "O1"); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("err = %v", err)
	}
	if _, err := tr.Add("fy", "procedure", "nope"); !errors.Is(err, ErrUnknownFCM) {
		t.Errorf("err = %v", err)
	}
	if _, err := tr.Add("fz", "nope", "O0"); !errors.Is(err, ErrUnknownLevel) {
		t.Errorf("err = %v", err)
	}
	if _, err := tr.Add("", "procedure", "O0"); err == nil {
		t.Error("empty name accepted")
	}
}

func TestReparentAlwaysRejected(t *testing.T) {
	tr := buildOO(t)
	if err := tr.Reparent("f0", "O1"); !errors.Is(err, ErrRuleR2) {
		t.Errorf("err = %v", err)
	}
	if err := tr.Reparent("ghost", "O1"); !errors.Is(err, ErrUnknownFCM) {
		t.Errorf("err = %v", err)
	}
}

func TestMergeSiblingsGeneralised(t *testing.T) {
	tr := buildOO(t)
	merged, err := tr.MergeSiblings("O01", []string{"O0", "O1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Children()) != 3 {
		t.Errorf("merged children = %d", len(merged.Children()))
	}
	t0, err := tr.Lookup("T0")
	if err != nil {
		t.Fatal(err)
	}
	if !t0.Modified() {
		t.Error("parent not marked modified (R5')")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
	// Non-siblings rejected.
	tr2 := buildOO(t)
	if _, err := tr2.MergeSiblings("x", []string{"f0", "f2"}); !errors.Is(err, ErrRuleR3) {
		t.Errorf("err = %v", err)
	}
	if _, err := tr2.MergeSiblings("x", []string{"f0"}); err == nil {
		t.Error("single-member merge accepted")
	}
	if _, err := tr2.MergeSiblings("T0", []string{"f0", "f1"}); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("err = %v", err)
	}
}

func TestRetestSetDepthIndependent(t *testing.T) {
	tr := buildOO(t)
	fcms, interfaces, err := tr.RetestSet("f0")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(fcms, ",") != "O0,f0" {
		t.Errorf("fcms = %v", fcms)
	}
	if strings.Join(interfaces, ",") != "f0<->f1" {
		t.Errorf("interfaces = %v", interfaces)
	}
	// The grandparent (T0) is NOT retested — R5' localises to one level
	// regardless of depth.
	tnode, err := tr.Lookup("T0")
	if err != nil {
		t.Fatal(err)
	}
	if tnode.Modified() {
		t.Error("grandparent marked modified")
	}
	tr.ClearModified()
	f0, err := tr.Lookup("f0")
	if err != nil {
		t.Fatal(err)
	}
	if f0.Modified() {
		t.Error("ClearModified missed f0")
	}
	if _, _, err := tr.RetestSet("nope"); !errors.Is(err, ErrUnknownFCM) {
		t.Errorf("err = %v", err)
	}
	// Root retest: no parent, no interfaces.
	fcms, interfaces, err = tr.RetestSet("P0")
	if err != nil {
		t.Fatal(err)
	}
	if len(fcms) != 1 || len(interfaces) != 0 {
		t.Errorf("root retest: %v / %v", fcms, interfaces)
	}
}

func TestBuildUniformShapes(t *testing.T) {
	// 3-level: 4 tasks x 4 procedures = 16 leaves, 1+4+16 = 21 FCMs.
	tr, leaves, err := BuildUniform(threeLevel(t), []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) != 16 {
		t.Errorf("leaves = %d, want 16", len(leaves))
	}
	if tr.Len() != 21 {
		t.Errorf("FCMs = %d, want 21", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
	// 4-level: 2 tasks x 2 objects x 4 procedures = 16 leaves.
	tr4, leaves4, err := BuildUniform(withObjects(t), []int{4, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves4) != 16 {
		t.Errorf("leaves = %d, want 16", len(leaves4))
	}
	if tr4.Len() != 1+2+4+16 {
		t.Errorf("FCMs = %d, want 23", tr4.Len())
	}
	// Wrong branching length.
	if _, _, err := BuildUniform(threeLevel(t), []int{4}); !errors.Is(err, ErrBadScheme) {
		t.Errorf("err = %v", err)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	tr := buildOO(t)
	n, err := tr.Lookup("f0")
	if err != nil {
		t.Fatal(err)
	}
	n.level = 3 // pretend it's a process
	if err := tr.Validate(); !errors.Is(err, ErrRuleR1) {
		t.Errorf("err = %v", err)
	}
}

func threeLevel(t *testing.T) Scheme {
	t.Helper()
	s, err := ThreeLevel()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func withObjects(t *testing.T) Scheme {
	t.Helper()
	s, err := WithObjects()
	if err != nil {
		t.Fatal(err)
	}
	return s
}
