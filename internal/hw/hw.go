// Package hw models the hardware platform of the integration framework
// (ICDCS 1998 §2, §5.1): a fixed topology of homogeneous processors "with
// access to equivalent sets of resources", structured using a hardware
// fault-containment-region (FCR) model.
//
// The worked example uses "a strongly connected network with 6 HW nodes";
// other topologies are provided for the heuristic-comparison experiments.
package hw

import (
	"errors"
	"fmt"
	"sort"
)

// Errors returned by platform constructors and queries.
var (
	ErrNoSuchNode   = errors.New("hw: no such node")
	ErrBadTopology  = errors.New("hw: invalid topology parameters")
	ErrDuplicateTag = errors.New("hw: duplicate node name")
)

// Node is one processor in the platform.
type Node struct {
	// Name identifies the node, e.g. "hw1".
	Name string
	// FCR is the hardware fault containment region the node belongs to.
	// Nodes in one FCR fail together under a region-level fault.
	FCR string
	// Resources lists named resources available at this node (e.g. an I/O
	// channel present on only one processor — one of the paper's mapping
	// complications).
	Resources map[string]bool
	// Capacity is a relative processing capacity; homogeneous platforms
	// use 1 everywhere.
	Capacity float64
}

// HasResource reports whether the node offers the named resource.
func (n Node) HasResource(r string) bool { return n.Resources[r] }

// Platform is a set of processors and a symmetric communication topology
// with per-link costs.
type Platform struct {
	nodes map[string]*Node
	// links[a][b] = communication cost between a and b (0 = no link).
	links map[string]map[string]float64
}

// NewPlatform returns an empty platform.
func NewPlatform() *Platform {
	return &Platform{
		nodes: make(map[string]*Node),
		links: make(map[string]map[string]float64),
	}
}

// AddNode inserts a processor.
func (p *Platform) AddNode(n Node) error {
	if n.Name == "" {
		return fmt.Errorf("%w: empty name", ErrNoSuchNode)
	}
	if _, ok := p.nodes[n.Name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateTag, n.Name)
	}
	if n.Capacity <= 0 {
		n.Capacity = 1
	}
	if n.Resources == nil {
		n.Resources = map[string]bool{}
	}
	cp := n
	p.nodes[n.Name] = &cp
	p.links[n.Name] = make(map[string]float64)
	return nil
}

// Link creates a symmetric communication link with the given cost.
func (p *Platform) Link(a, b string, cost float64) error {
	if a == b {
		return fmt.Errorf("%w: self link %q", ErrBadTopology, a)
	}
	if _, ok := p.nodes[a]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchNode, a)
	}
	if _, ok := p.nodes[b]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchNode, b)
	}
	if cost <= 0 {
		return fmt.Errorf("%w: cost %g", ErrBadTopology, cost)
	}
	p.links[a][b] = cost
	p.links[b][a] = cost
	return nil
}

// Node returns the named node.
func (p *Platform) Node(name string) (*Node, error) {
	n, ok := p.nodes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchNode, name)
	}
	return n, nil
}

// Nodes returns all node names, sorted.
func (p *Platform) Nodes() []string {
	out := make([]string, 0, len(p.nodes))
	for n := range p.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NumNodes returns the processor count.
func (p *Platform) NumNodes() int { return len(p.nodes) }

// Linked reports whether a and b share a direct link.
func (p *Platform) Linked(a, b string) bool { return p.links[a][b] > 0 }

// LinkCost returns the direct link cost (0 when unlinked).
func (p *Platform) LinkCost(a, b string) float64 { return p.links[a][b] }

// Distance returns the cheapest communication cost between two nodes
// (Dijkstra over link costs) and whether they are connected at all.
// Distance(a, a) is 0.
func (p *Platform) Distance(a, b string) (float64, bool) {
	if _, ok := p.nodes[a]; !ok {
		return 0, false
	}
	if _, ok := p.nodes[b]; !ok {
		return 0, false
	}
	if a == b {
		return 0, true
	}
	const unvisited = -1.0
	dist := map[string]float64{a: 0}
	done := map[string]bool{}
	for {
		// Pick the unfinished node with smallest distance (name-ordered
		// tie-break for determinism).
		cur, curD := "", unvisited
		for n, d := range dist {
			if done[n] {
				continue
			}
			if curD == unvisited || d < curD || (d == curD && n < cur) {
				cur, curD = n, d
			}
		}
		if cur == "" {
			return 0, false
		}
		if cur == b {
			return curD, true
		}
		done[cur] = true
		for nbr, cost := range p.links[cur] {
			nd := curD + cost
			if old, ok := dist[nbr]; !ok || nd < old {
				dist[nbr] = nd
			}
		}
	}
}

// StronglyConnected reports whether every pair of nodes is connected.
func (p *Platform) StronglyConnected() bool {
	names := p.Nodes()
	if len(names) <= 1 {
		return true
	}
	for _, b := range names[1:] {
		if _, ok := p.Distance(names[0], b); !ok {
			return false
		}
	}
	return true
}

// FCRs returns the distinct FCR labels and their member nodes, sorted.
func (p *Platform) FCRs() map[string][]string {
	out := map[string][]string{}
	for _, n := range p.nodes {
		out[n.FCR] = append(out[n.FCR], n.Name)
	}
	for k := range out {
		sort.Strings(out[k])
	}
	return out
}

// Complete builds the paper's "strongly connected network with n HW
// nodes": every pair linked at unit cost, each node its own FCR, names
// hw1..hwN.
func Complete(n int) (*Platform, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadTopology, n)
	}
	p := NewPlatform()
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("hw%d", i)
		if err := p.AddNode(Node{Name: name, FCR: name}); err != nil {
			return nil, err
		}
	}
	names := p.Nodes()
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			if err := p.Link(names[i], names[j], 1); err != nil {
				return nil, err
			}
		}
	}
	return p, nil
}

// Ring builds a ring of n nodes (dilation matters on rings, exercising the
// paper's communication-cost discussion in §6).
func Ring(n int) (*Platform, error) {
	if n < 3 {
		return nil, fmt.Errorf("%w: ring needs n>=3, got %d", ErrBadTopology, n)
	}
	p := NewPlatform()
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("hw%d", i)
		if err := p.AddNode(Node{Name: name, FCR: name}); err != nil {
			return nil, err
		}
	}
	for i := 1; i <= n; i++ {
		a := fmt.Sprintf("hw%d", i)
		b := fmt.Sprintf("hw%d", i%n+1)
		if err := p.Link(a, b, 1); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Star builds a hub-and-spoke platform: hw1 is the hub, hw2..hwN the
// spokes. All spoke-to-spoke traffic transits the hub (distance 2).
func Star(n int) (*Platform, error) {
	if n < 3 {
		return nil, fmt.Errorf("%w: star needs n>=3, got %d", ErrBadTopology, n)
	}
	p := NewPlatform()
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("hw%d", i)
		if err := p.AddNode(Node{Name: name, FCR: name}); err != nil {
			return nil, err
		}
	}
	for i := 2; i <= n; i++ {
		if err := p.Link("hw1", fmt.Sprintf("hw%d", i), 1); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Mesh builds a rows×cols grid.
func Mesh(rows, cols int) (*Platform, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return nil, fmt.Errorf("%w: mesh %dx%d", ErrBadTopology, rows, cols)
	}
	p := NewPlatform()
	name := func(r, c int) string { return fmt.Sprintf("hw%d_%d", r, c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if err := p.AddNode(Node{Name: name(r, c), FCR: name(r, c)}); err != nil {
				return nil, err
			}
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				if err := p.Link(name(r, c), name(r, c+1), 1); err != nil {
					return nil, err
				}
			}
			if r+1 < rows {
				if err := p.Link(name(r, c), name(r+1, c), 1); err != nil {
					return nil, err
				}
			}
		}
	}
	return p, nil
}
