package hw

import (
	"errors"
	"testing"
)

func TestAddNodeDefaults(t *testing.T) {
	p := NewPlatform()
	if err := p.AddNode(Node{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	n, err := p.Node("a")
	if err != nil {
		t.Fatal(err)
	}
	if n.Capacity != 1 {
		t.Errorf("default capacity = %g, want 1", n.Capacity)
	}
	if n.Resources == nil {
		t.Error("nil resources map")
	}
}

func TestAddNodeErrors(t *testing.T) {
	p := NewPlatform()
	if err := p.AddNode(Node{Name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	if err := p.AddNode(Node{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddNode(Node{Name: "a"}); !errors.Is(err, ErrDuplicateTag) {
		t.Errorf("err = %v, want ErrDuplicateTag", err)
	}
}

func TestAddNodeCopiesValue(t *testing.T) {
	p := NewPlatform()
	n := Node{Name: "a", Resources: map[string]bool{"io": true}}
	if err := p.AddNode(n); err != nil {
		t.Fatal(err)
	}
	n.Name = "changed"
	got, err := p.Node("a")
	if err != nil || got.Name != "a" {
		t.Errorf("stored node aliased caller's struct: %+v, %v", got, err)
	}
}

func TestLinkValidation(t *testing.T) {
	p := NewPlatform()
	if err := p.AddNode(Node{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddNode(Node{Name: "b"}); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name    string
		a, b    string
		cost    float64
		wantErr error
	}{
		{"self", "a", "a", 1, ErrBadTopology},
		{"missing", "a", "z", 1, ErrNoSuchNode},
		{"zero cost", "a", "b", 0, ErrBadTopology},
		{"negative", "a", "b", -1, ErrBadTopology},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := p.Link(tt.a, tt.b, tt.cost); !errors.Is(err, tt.wantErr) {
				t.Errorf("err = %v, want %v", err, tt.wantErr)
			}
		})
	}
	if err := p.Link("a", "b", 2.5); err != nil {
		t.Fatal(err)
	}
	if !p.Linked("b", "a") || p.LinkCost("b", "a") != 2.5 {
		t.Error("link not symmetric")
	}
}

func TestCompleteTopology(t *testing.T) {
	p, err := Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumNodes() != 6 {
		t.Errorf("nodes = %d, want 6", p.NumNodes())
	}
	if !p.StronglyConnected() {
		t.Error("complete graph not strongly connected")
	}
	names := p.Nodes()
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			if !p.Linked(names[i], names[j]) {
				t.Errorf("%s and %s not linked", names[i], names[j])
			}
		}
	}
	// Each node is its own FCR.
	if got := len(p.FCRs()); got != 6 {
		t.Errorf("FCR count = %d, want 6", got)
	}
	if _, err := Complete(0); !errors.Is(err, ErrBadTopology) {
		t.Errorf("Complete(0) err = %v", err)
	}
}

func TestRingTopologyAndDistance(t *testing.T) {
	p, err := Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := p.Distance("hw1", "hw4")
	if !ok || d != 3 {
		t.Errorf("Distance(hw1,hw4) = %g,%v, want 3", d, ok)
	}
	d, ok = p.Distance("hw1", "hw6")
	if !ok || d != 1 {
		t.Errorf("Distance(hw1,hw6) = %g,%v, want 1 (wraparound)", d, ok)
	}
	if _, err := Ring(2); !errors.Is(err, ErrBadTopology) {
		t.Errorf("Ring(2) err = %v", err)
	}
}

func TestMeshTopology(t *testing.T) {
	p, err := Mesh(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumNodes() != 6 {
		t.Errorf("nodes = %d, want 6", p.NumNodes())
	}
	d, ok := p.Distance("hw0_0", "hw1_2")
	if !ok || d != 3 {
		t.Errorf("manhattan distance = %g,%v, want 3", d, ok)
	}
	if !p.StronglyConnected() {
		t.Error("mesh not connected")
	}
	if _, err := Mesh(1, 1); !errors.Is(err, ErrBadTopology) {
		t.Errorf("Mesh(1,1) err = %v", err)
	}
}

func TestDistanceEdgeCases(t *testing.T) {
	p := NewPlatform()
	if err := p.AddNode(Node{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddNode(Node{Name: "b"}); err != nil {
		t.Fatal(err)
	}
	if d, ok := p.Distance("a", "a"); !ok || d != 0 {
		t.Errorf("self distance = %g,%v", d, ok)
	}
	if _, ok := p.Distance("a", "b"); ok {
		t.Error("disconnected nodes reported connected")
	}
	if _, ok := p.Distance("a", "zzz"); ok {
		t.Error("missing node reported connected")
	}
	if p.StronglyConnected() {
		t.Error("disconnected platform reported strongly connected")
	}
}

func TestDistancePrefersCheapPath(t *testing.T) {
	p := NewPlatform()
	for _, n := range []string{"a", "b", "c"} {
		if err := p.AddNode(Node{Name: n}); err != nil {
			t.Fatal(err)
		}
	}
	// Direct expensive link vs cheap two-hop path.
	if err := p.Link("a", "c", 10); err != nil {
		t.Fatal(err)
	}
	if err := p.Link("a", "b", 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Link("b", "c", 1); err != nil {
		t.Fatal(err)
	}
	d, ok := p.Distance("a", "c")
	if !ok || d != 2 {
		t.Errorf("Distance = %g,%v, want 2", d, ok)
	}
}

func TestResourcesAndFCRs(t *testing.T) {
	p := NewPlatform()
	if err := p.AddNode(Node{Name: "a", FCR: "cab1", Resources: map[string]bool{"adc": true}}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddNode(Node{Name: "b", FCR: "cab1"}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddNode(Node{Name: "c", FCR: "cab2"}); err != nil {
		t.Fatal(err)
	}
	n, err := p.Node("a")
	if err != nil {
		t.Fatal(err)
	}
	if !n.HasResource("adc") || n.HasResource("dac") {
		t.Error("resource lookup wrong")
	}
	fcrs := p.FCRs()
	if len(fcrs) != 2 || len(fcrs["cab1"]) != 2 || fcrs["cab1"][0] != "a" {
		t.Errorf("FCRs = %v", fcrs)
	}
}

func TestNodeMissing(t *testing.T) {
	p := NewPlatform()
	if _, err := p.Node("ghost"); !errors.Is(err, ErrNoSuchNode) {
		t.Errorf("err = %v, want ErrNoSuchNode", err)
	}
}

func TestStarTopology(t *testing.T) {
	p, err := Star(5)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumNodes() != 5 || !p.StronglyConnected() {
		t.Errorf("nodes=%d connected=%v", p.NumNodes(), p.StronglyConnected())
	}
	// Spoke to spoke transits the hub.
	d, ok := p.Distance("hw2", "hw3")
	if !ok || d != 2 {
		t.Errorf("spoke distance = %g, want 2", d)
	}
	d, ok = p.Distance("hw1", "hw4")
	if !ok || d != 1 {
		t.Errorf("hub distance = %g, want 1", d)
	}
	if _, err := Star(2); !errors.Is(err, ErrBadTopology) {
		t.Errorf("Star(2) err = %v", err)
	}
}
