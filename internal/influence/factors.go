package influence

import (
	"fmt"
	"sort"
)

// Level identifies an FCM hierarchy level for factor catalogues.
type Level int

// FCM hierarchy levels (Fig. 1).
const (
	// ProcedureLevel is the lowest level: named callable modules.
	ProcedureLevel Level = iota + 1
	// TaskLevel is the middle level: lightweight threads.
	TaskLevel
	// ProcessLevel is the top level: heavyweight processes.
	ProcessLevel
)

// String returns the level name.
func (l Level) String() string {
	switch l {
	case ProcedureLevel:
		return "procedure"
	case TaskLevel:
		return "task"
	case ProcessLevel:
		return "process"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Valid reports whether l is a defined level.
func (l Level) Valid() bool { return l >= ProcedureLevel && l <= ProcessLevel }

// Canonical factor names per level, as enumerated in §4.2.2–4.2.3. The f_i
// numbering follows the paper.
const (
	// FactorParams (f1): parameter passing between procedures. "The
	// probability of f1 can be made relatively low by OO design and
	// redundancy techniques."
	FactorParams = "parameter-passing"
	// FactorGlobals (f2): global variables. "It is difficult to control
	// the spread of erroneous data through global variables; thus the
	// probability of f2 is higher."
	FactorGlobals = "global-variables"
	// FactorSharedMemory (f3): shared memory between tasks; "depends on
	// how much memory is shared and how often".
	FactorSharedMemory = "shared-memory"
	// FactorMessages (f4): errors in message passing; "depends on how good
	// the recovery blocks are".
	FactorMessages = "message-passing"
	// FactorTiming (f5): timing faults; "depends on the scheduling policy
	// used".
	FactorTiming = "timing"
	// FactorResources: overuse/sharing of HW resources (process level).
	FactorResources = "resource-sharing"
	// FactorMemoryFootprint: memory space overlapping between processes.
	FactorMemoryFootprint = "memory-footprint"
)

// FactorsForLevel returns the canonical factor names that can transmit
// faults between FCMs at the given level, sorted for determinism.
func FactorsForLevel(l Level) []string {
	var out []string
	switch l {
	case ProcedureLevel:
		out = []string{FactorParams, FactorGlobals}
	case TaskLevel:
		out = []string{FactorSharedMemory, FactorMessages, FactorTiming, FactorMemoryFootprint}
	case ProcessLevel:
		// "Most of the techniques used at the task level are also
		// applicable at the process level"; process-level faults arise
		// from sharing of HW resources.
		out = []string{FactorResources, FactorMemoryFootprint, FactorTiming, FactorMessages}
	}
	sort.Strings(out)
	return out
}

// Mitigation scales a factor's transmission probability (p_i2) to model
// the containment techniques the paper names: information hiding at
// procedure level, recovery blocks / N-version programming at task level,
// memory separation at process level, preemptive scheduling for timing.
type Mitigation struct {
	// Name of the technique, e.g. "information-hiding".
	Name string
	// Factor it applies to.
	Factor string
	// TransmitScale multiplies p_i2; must be in [0,1] (a mitigation can
	// only reduce transmission).
	TransmitScale float64
}

// Validate checks the mitigation is well-formed.
func (m Mitigation) Validate() error {
	if m.TransmitScale < 0 || m.TransmitScale > 1 {
		return fmt.Errorf("%w: mitigation %q scale %g", ErrProbRange, m.Name, m.TransmitScale)
	}
	return nil
}

// Canonical mitigations (§3.1–3.3, §4.2.2–4.2.3).
var (
	// InformationHiding reduces procedure-level data faults via OO
	// encapsulation (§3.3).
	InformationHiding = Mitigation{Name: "information-hiding", Factor: FactorGlobals, TransmitScale: 0.2}
	// RecoveryBlocks reduce message-passing fault transmission (§4.2.3).
	RecoveryBlocks = Mitigation{Name: "recovery-blocks", Factor: FactorMessages, TransmitScale: 0.25}
	// PreemptiveScheduling minimizes transmission of timing faults
	// (§4.2.3).
	PreemptiveScheduling = Mitigation{Name: "preemptive-scheduling", Factor: FactorTiming, TransmitScale: 0.1}
	// MemorySeparation shields processes by separating memory blocks
	// (§3.1).
	MemorySeparation = Mitigation{Name: "memory-separation", Factor: FactorMemoryFootprint, TransmitScale: 0.1}
)

// Apply returns a copy of f with the mitigation applied when the factor
// names match; otherwise f unchanged.
func (m Mitigation) Apply(f Factor) Factor {
	if f.Name != m.Factor {
		return f
	}
	f.PTransmit *= m.TransmitScale
	return f
}

// ApplyAll folds a list of mitigations over a factor list, returning the
// mitigated copy.
func ApplyAll(factors []Factor, ms []Mitigation) []Factor {
	out := make([]Factor, len(factors))
	copy(out, factors)
	for i := range out {
		for _, m := range ms {
			out[i] = m.Apply(out[i])
		}
	}
	return out
}

// Estimate recovers an empirical probability from trial counts, the
// framework's measurement path ("If the FCM has not been used previously,
// an equivalent probability can be derived by extensive testing").
// It returns successes/trials with a Wilson-style guard against 0 trials.
func Estimate(successes, trials int) (float64, error) {
	if trials <= 0 {
		return 0, fmt.Errorf("influence: cannot estimate from %d trials", trials)
	}
	if successes < 0 || successes > trials {
		return 0, fmt.Errorf("influence: %d successes out of %d trials", successes, trials)
	}
	return float64(successes) / float64(trials), nil
}
