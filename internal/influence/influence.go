// Package influence implements the interaction metrics of the integration
// framework (ICDCS 1998 §4.2): per-factor fault probabilities, the
// influence of one FCM on another, the separation between FCMs, and the
// combination rule for clusters.
//
// Definitions (paper §4.2):
//
//   - Influence of FCM_i on FCM_j is the probability of FCM_i affecting
//     FCM_j at the same level if no third FCM at that level is considered.
//   - Separation of FCM_i and FCM_j is the probability of FCM_i NOT
//     affecting FCM_j when all other FCMs at the same level are considered.
//
// Equations:
//
//	(1)  p_i = p_i1 · p_i2 · p_i3
//	     (fault occurrence · transmission · manifestation)
//	(2)  FCM_i → FCM_j = 1 − (1−p_1)(1−p_2)···(1−p_n)
//	(3)  FCM_i ≁ FCM_j = 1 − [P_ij + Σ_k P_ik·P_kj + Σ_l Σ_k P_ik·P_kl·P_lj + …]
//	(4)  FCM_C → FCM_t = 1 − ∏_{i∈C} (1 − FCM_i → FCM_t)
package influence

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrProbRange marks a probability outside [0,1].
var ErrProbRange = errors.New("influence: probability must be in [0,1]")

// Factor is one fault-transmission mechanism between two FCMs, with the
// three probability components of Eq. (1).
type Factor struct {
	// Name identifies the mechanism, e.g. "global-variables".
	Name string
	// POccur (p_i1) is the probability of a fault occurring in the source
	// FCM via this mechanism. The paper: "it can be measured from previous
	// usage of that FCM [or] derived by extensive testing".
	POccur float64
	// PTransmit (p_i2) is the probability of transmission to the target
	// FCM, depending on communication medium and data volume.
	PTransmit float64
	// PManifest (p_i3) is the probability of a resulting fault in the
	// target, determined "by injecting faults into the target FCM".
	PManifest float64
}

// Validate checks all three components are probabilities.
func (f Factor) Validate() error {
	for _, p := range []float64{f.POccur, f.PTransmit, f.PManifest} {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return fmt.Errorf("%w: factor %q has component %g", ErrProbRange, f.Name, p)
		}
	}
	return nil
}

// P computes Eq. (1): the joint probability of this factor causing a fault
// in the target.
func (f Factor) P() float64 {
	return f.POccur * f.PTransmit * f.PManifest
}

// Combine computes Eq. (2): the influence of one FCM on another given the
// per-factor probabilities, assuming the factors act jointly and
// independently.
func Combine(ps []float64) (float64, error) {
	prod := 1.0
	for _, p := range ps {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return 0, fmt.Errorf("%w: %g", ErrProbRange, p)
		}
		prod *= 1 - p
	}
	return 1 - prod, nil
}

// MustCombine is Combine for inputs already known to be valid (e.g. edge
// weights read back out of a validated graph). Out-of-range inputs are
// clamped rather than rejected, so it is safe as a graph.CombineWeights.
func MustCombine(ps []float64) float64 {
	prod := 1.0
	for _, p := range ps {
		prod *= 1 - clamp01(p)
	}
	return 1 - prod
}

func clamp01(p float64) float64 {
	switch {
	case math.IsNaN(p), p < 0:
		return 0
	case p > 1:
		return 1
	}
	return p
}

// FromFactors computes the influence FCM_i → FCM_j from its contributing
// factors (Eqs. (1) and (2) composed).
func FromFactors(factors []Factor) (float64, error) {
	ps := make([]float64, 0, len(factors))
	for _, f := range factors {
		if err := f.Validate(); err != nil {
			return 0, err
		}
		ps = append(ps, f.P())
	}
	return Combine(ps)
}

// ClusterInfluence computes Eq. (4): the influence of a cluster C on a
// target, from the individual member influences on that target. Matches
// MustCombine; kept as a named entry point mirroring the paper.
func ClusterInfluence(memberInfluences []float64) (float64, error) {
	return Combine(memberInfluences)
}

// DefaultMaxOrder is the default truncation order for the separation
// series of Eq. (3): paths of up to this many hops are accumulated. The
// paper: "At some point, higher-order terms are likely to be small enough
// to be neglected."
const DefaultMaxOrder = 8

// Separation computes Eq. (3) for the ordered pair (i, j) over the
// influence matrix p (p[a][b] = influence of a on b): one minus the sum of
// the direct influence plus all transitive path products up to maxOrder
// hops. Intermediate nodes range over the whole matrix, including i and j,
// exactly as the paper's double sums do. The result is clamped to [0,1]
// (the raw series can exceed 1 for strongly coupled systems, where
// separation is simply zero).
//
// maxOrder < 1 uses DefaultMaxOrder.
func Separation(p [][]float64, i, j, maxOrder int) (float64, error) {
	n := len(p)
	if i < 0 || i >= n || j < 0 || j >= n {
		return 0, fmt.Errorf("influence: separation index out of range: (%d,%d) for n=%d", i, j, n)
	}
	if i == j {
		return 0, nil // an FCM is never separated from itself
	}
	if maxOrder < 1 {
		maxOrder = DefaultMaxOrder
	}
	// reach[v] = sum over all paths of the current length from i to v of
	// the product of edge probabilities.
	reach := make([]float64, n)
	next := make([]float64, n)
	for v := 0; v < n; v++ {
		reach[v] = p[i][v]
	}
	total := reach[j]
	for order := 2; order <= maxOrder; order++ {
		for v := range next {
			next[v] = 0
		}
		for k := 0; k < n; k++ {
			if reach[k] == 0 {
				continue
			}
			for v := 0; v < n; v++ {
				next[v] += reach[k] * p[k][v]
			}
		}
		reach, next = next, reach
		total += reach[j]
	}
	return clamp01(1 - total), nil
}

// separationRow computes Eq. (3) for source row i against every target in
// a single power-series sweep, writing the separations into out. The reach
// recurrence of Separation depends only on the source row, so amortizing
// it over all n targets is an O(n) algorithmic win per row; the per-target
// accumulation order (order 1, then 2, …) matches Separation operation for
// operation, so the results are bit-identical to the per-pair function.
// reach and next are caller-provided scratch of length n.
func separationRow(p [][]float64, i, maxOrder int, out, reach, next []float64) {
	n := len(p)
	copy(reach, p[i])
	copy(out, reach)
	for order := 2; order <= maxOrder; order++ {
		for v := range next {
			next[v] = 0
		}
		for k := 0; k < n; k++ {
			if reach[k] == 0 {
				continue
			}
			for v := 0; v < n; v++ {
				next[v] += reach[k] * p[k][v]
			}
		}
		reach, next = next, reach
		for v := 0; v < n; v++ {
			out[v] += reach[v]
		}
	}
	for v := 0; v < n; v++ {
		out[v] = clamp01(1 - out[v])
	}
	out[i] = 0 // an FCM is never separated from itself
}

// SeparationMatrix computes the separation of every ordered pair over the
// influence matrix, at the given truncation order.
func SeparationMatrix(p [][]float64, maxOrder int) ([][]float64, error) {
	return SeparationMatrixCtx(nil, p, maxOrder)
}

// SeparationMatrixCtx is SeparationMatrix with cooperative cancellation,
// sharding rows over GOMAXPROCS goroutines. The output is bit-identical
// for every worker count (rows are independent; each is a deterministic
// sweep). Use SeparationMatrixWorkers to pick the pool size explicitly.
func SeparationMatrixCtx(ctx context.Context, p [][]float64, maxOrder int) ([][]float64, error) {
	return SeparationMatrixWorkers(ctx, p, maxOrder, 0)
}

func sepRowErr(i, n int, err error) error {
	return fmt.Errorf("influence: separation matrix row %d/%d: %w", i, n, err)
}

// SeparationMatrixWorkers computes the separation matrix with its
// O(n³·maxOrder) power-series sweep chunked by row over a pool of workers
// (0 = GOMAXPROCS). Every worker polls ctx once per row and the first
// cancellation aborts the sweep with an error wrapping ctx.Err(). Row
// outputs are disjoint and each row's arithmetic is independent of the
// pool size, so the matrix is bit-identical for every worker count.
func SeparationMatrixWorkers(ctx context.Context, p [][]float64, maxOrder, workers int) ([][]float64, error) {
	n := len(p)
	if maxOrder < 1 {
		maxOrder = DefaultMaxOrder
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([][]float64, n)
	backing := make([]float64, n*n)
	for i := range out {
		out[i] = backing[i*n : (i+1)*n]
	}
	if workers <= 1 {
		reach := make([]float64, n)
		next := make([]float64, n)
		for i := 0; i < n; i++ {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return nil, sepRowErr(i, n, err)
				}
			}
			separationRow(p, i, maxOrder, out[i], reach, next)
		}
		return out, nil
	}
	var (
		nextRow atomic.Int64
		failed  atomic.Bool
		wg      sync.WaitGroup
		errs    = make([]error, workers)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			reach := make([]float64, n)
			next := make([]float64, n)
			for {
				i := int(nextRow.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if ctx != nil {
					if err := ctx.Err(); err != nil {
						errs[w] = sepRowErr(i, n, err)
						failed.Store(true)
						return
					}
				}
				separationRow(p, i, maxOrder, out[i], reach, next)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Separator answers repeated Eq. (3) queries against one influence matrix,
// memoizing the power-series sweep per source row: the first query for any
// (i, ·) pair computes and caches the whole separation row, so q queries
// touching r distinct sources cost O(r·n²·maxOrder) instead of
// O(q·n²·maxOrder). Safe for concurrent use.
type Separator struct {
	p        [][]float64
	maxOrder int

	mu   sync.Mutex
	rows map[int][]float64
}

// NewSeparator prepares a memoizing separation oracle over p at the given
// truncation order (maxOrder < 1 uses DefaultMaxOrder).
func NewSeparator(p [][]float64, maxOrder int) *Separator {
	if maxOrder < 1 {
		maxOrder = DefaultMaxOrder
	}
	return &Separator{p: p, maxOrder: maxOrder, rows: map[int][]float64{}}
}

// Separation returns Eq. (3) for the ordered pair (i, j), bit-identical to
// the package-level Separation at the same order.
func (s *Separator) Separation(i, j int) (float64, error) {
	n := len(s.p)
	if i < 0 || i >= n || j < 0 || j >= n {
		return 0, fmt.Errorf("influence: separation index out of range: (%d,%d) for n=%d", i, j, n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	row, ok := s.rows[i]
	if !ok {
		row = make([]float64, n)
		separationRow(s.p, i, s.maxOrder, row, make([]float64, n), make([]float64, n))
		s.rows[i] = row
	}
	return row[j], nil
}

// SpectralRadius estimates the spectral radius of the influence matrix by
// power iteration on |P| (entries are non-negative already). The Eq. (3)
// series converges iff the radius is below 1; callers can use this to
// decide whether a truncation order is trustworthy — the guard the paper's
// "higher-order terms are likely to be small enough to be neglected"
// implicitly assumes.
func SpectralRadius(p [][]float64, iters int) float64 {
	n := len(p)
	if n == 0 {
		return 0
	}
	if iters < 1 {
		iters = 50
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	radius := 0.0
	for it := 0; it < iters; it++ {
		next := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				next[j] += v[i] * p[i][j]
			}
		}
		norm := 0.0
		for _, x := range next {
			if x > norm {
				norm = x
			}
		}
		if norm == 0 {
			return 0
		}
		for i := range next {
			next[i] /= norm
		}
		v = next
		radius = norm
	}
	return radius
}

// SeriesConverges reports whether the Eq. (3) series converges for the
// influence matrix (spectral radius strictly below 1), together with the
// estimated radius.
func SeriesConverges(p [][]float64) (bool, float64) {
	r := SpectralRadius(p, 100)
	return r < 1, r
}

// SeriesTerm returns the order-k term of the Eq. (3) series for (i,j):
// the total probability mass of exactly-k-hop paths from i to j. Useful
// for convergence analysis (experiment E4).
func SeriesTerm(p [][]float64, i, j, k int) float64 {
	n := len(p)
	if k < 1 || i < 0 || j < 0 || i >= n || j >= n {
		return 0
	}
	reach := make([]float64, n)
	next := make([]float64, n)
	for v := 0; v < n; v++ {
		reach[v] = p[i][v]
	}
	for order := 2; order <= k; order++ {
		for v := range next {
			next[v] = 0
		}
		for a := 0; a < n; a++ {
			if reach[a] == 0 {
				continue
			}
			for v := 0; v < n; v++ {
				next[v] += reach[a] * p[a][v]
			}
		}
		reach, next = next, reach
	}
	return reach[j]
}
