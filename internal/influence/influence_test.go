package influence

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestFactorP(t *testing.T) {
	f := Factor{Name: "globals", POccur: 0.5, PTransmit: 0.4, PManifest: 0.25}
	if got := f.P(); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("P = %g, want 0.05", got)
	}
}

func TestFactorValidate(t *testing.T) {
	tests := []struct {
		name    string
		f       Factor
		wantErr bool
	}{
		{"ok", Factor{POccur: 0.1, PTransmit: 0.2, PManifest: 0.3}, false},
		{"bounds", Factor{POccur: 0, PTransmit: 1, PManifest: 0.5}, false},
		{"negative", Factor{POccur: -0.1, PTransmit: 0.2, PManifest: 0.3}, true},
		{"above one", Factor{POccur: 0.1, PTransmit: 1.2, PManifest: 0.3}, true},
		{"nan", Factor{POccur: math.NaN(), PTransmit: 0.2, PManifest: 0.3}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.f.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil && !errors.Is(err, ErrProbRange) {
				t.Errorf("error not wrapping ErrProbRange: %v", err)
			}
		})
	}
}

func TestCombineEq2(t *testing.T) {
	tests := []struct {
		name string
		ps   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{0.3}, 0.3},
		{"fig5 value 0.76", []float64{0.7, 0.2}, 0.76},
		{"fig5 value 0.37", []float64{0.3, 0.1}, 0.37},
		{"certain", []float64{1, 0.5}, 1},
		{"three", []float64{0.5, 0.5, 0.5}, 0.875},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Combine(tt.ps)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Combine(%v) = %g, want %g", tt.ps, got, tt.want)
			}
		})
	}
}

func TestCombineRejectsBadProbability(t *testing.T) {
	if _, err := Combine([]float64{0.5, 1.2}); !errors.Is(err, ErrProbRange) {
		t.Errorf("err = %v, want ErrProbRange", err)
	}
	if _, err := Combine([]float64{-0.1}); !errors.Is(err, ErrProbRange) {
		t.Errorf("err = %v, want ErrProbRange", err)
	}
}

func TestMustCombineClamps(t *testing.T) {
	if got := MustCombine([]float64{2.0}); got != 1 {
		t.Errorf("MustCombine clamp high = %g, want 1", got)
	}
	if got := MustCombine([]float64{-1, math.NaN()}); got != 0 {
		t.Errorf("MustCombine clamp low = %g, want 0", got)
	}
}

func TestCombineProperties(t *testing.T) {
	norm := func(xs []uint8) []float64 {
		ps := make([]float64, len(xs))
		for i, x := range xs {
			ps[i] = float64(x) / 255
		}
		return ps
	}
	// Result is a probability, at least the max input, and monotone in
	// each input.
	f := func(xs []uint8) bool {
		ps := norm(xs)
		got, err := Combine(ps)
		if err != nil {
			return false
		}
		if got < 0 || got > 1 {
			return false
		}
		maxP := 0.0
		for _, p := range ps {
			if p > maxP {
				maxP = p
			}
		}
		return got >= maxP-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Order independence.
	g := func(a, b, c uint8) bool {
		p1, err1 := Combine(norm([]uint8{a, b, c}))
		p2, err2 := Combine(norm([]uint8{c, a, b}))
		return err1 == nil && err2 == nil && math.Abs(p1-p2) < 1e-12
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestFromFactors(t *testing.T) {
	fs := []Factor{
		{Name: FactorParams, POccur: 1, PTransmit: 0.7, PManifest: 1},
		{Name: FactorGlobals, POccur: 1, PTransmit: 0.2, PManifest: 1},
	}
	got, err := FromFactors(fs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.76) > 1e-12 {
		t.Errorf("FromFactors = %g, want 0.76", got)
	}
	_, err = FromFactors([]Factor{{POccur: 2}})
	if !errors.Is(err, ErrProbRange) {
		t.Errorf("invalid factor err = %v", err)
	}
}

func TestClusterInfluenceMatchesEq4(t *testing.T) {
	got, err := ClusterInfluence([]float64{0.3, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.37) > 1e-12 {
		t.Errorf("ClusterInfluence = %g, want 0.37 (Fig. 5)", got)
	}
}

// chainMatrix builds p for a path a->b->c with the given weights.
func chainMatrix(ab, bc float64) [][]float64 {
	return [][]float64{
		{0, ab, 0},
		{0, 0, bc},
		{0, 0, 0},
	}
}

func TestSeparationDirectOnly(t *testing.T) {
	p := chainMatrix(0.4, 0)
	s, err := Separation(p, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-0.6) > 1e-12 {
		t.Errorf("separation = %g, want 0.6", s)
	}
}

func TestSeparationTransitive(t *testing.T) {
	// a->b 0.4, b->c 0.5: a affects c only via b with probability 0.2, so
	// separation(a,c) = 0.8 even though there is no direct edge.
	p := chainMatrix(0.4, 0.5)
	s, err := Separation(p, 0, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-0.8) > 1e-12 {
		t.Errorf("separation = %g, want 0.8", s)
	}
}

func TestSeparationSelf(t *testing.T) {
	p := chainMatrix(0.4, 0.5)
	s, err := Separation(p, 1, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Errorf("self separation = %g, want 0", s)
	}
}

func TestSeparationIndexError(t *testing.T) {
	p := chainMatrix(0.4, 0.5)
	if _, err := Separation(p, 0, 9, 4); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestSeparationClampsStrongCoupling(t *testing.T) {
	// A dense strongly coupled pair: the raw series exceeds 1, so
	// separation clamps at 0.
	p := [][]float64{
		{0, 0.9},
		{0.9, 0},
	}
	s, err := Separation(p, 0, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Errorf("separation = %g, want 0 (clamped)", s)
	}
}

func TestSeparationSeriesConverges(t *testing.T) {
	// With max influence < 1/n the series converges; higher orders change
	// the value less and less.
	p := [][]float64{
		{0, 0.2, 0.1, 0},
		{0.1, 0, 0.2, 0.1},
		{0, 0.1, 0, 0.2},
		{0.1, 0, 0.1, 0},
	}
	prev := math.Inf(1)
	var deltas []float64
	last := 0.0
	for order := 1; order <= 8; order++ {
		s, err := Separation(p, 0, 3, order)
		if err != nil {
			t.Fatal(err)
		}
		if !math.IsInf(prev, 1) {
			deltas = append(deltas, math.Abs(s-prev))
		}
		prev = s
		last = s
	}
	for i := 1; i < len(deltas); i++ {
		if deltas[i] > deltas[i-1]+1e-15 {
			t.Errorf("series deltas not shrinking: %v", deltas)
			break
		}
	}
	if last <= 0 || last >= 1 {
		t.Errorf("converged separation = %g, want in (0,1)", last)
	}
}

func TestSeparationMoreInfluenceLessSeparation(t *testing.T) {
	f := func(a8, b8 uint8) bool {
		a := float64(a8) / 255 * 0.45
		b := float64(b8) / 255 * 0.45
		lo, hi := math.Min(a, b), math.Max(a, b)
		pLo := chainMatrix(lo, 0.3)
		pHi := chainMatrix(hi, 0.3)
		sLo, err1 := Separation(pLo, 0, 2, 6)
		sHi, err2 := Separation(pHi, 0, 2, 6)
		return err1 == nil && err2 == nil && sLo >= sHi-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeparationMatrix(t *testing.T) {
	p := chainMatrix(0.4, 0.5)
	m, err := SeparationMatrix(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m[0][0] != 0 || math.Abs(m[0][1]-0.6) > 1e-12 || math.Abs(m[0][2]-0.8) > 1e-12 {
		t.Errorf("matrix row 0 = %v", m[0])
	}
	// c influences nothing: fully separated from a and b.
	if m[2][0] != 1 || m[2][1] != 1 {
		t.Errorf("matrix row 2 = %v", m[2])
	}
}

func TestSeriesTerm(t *testing.T) {
	p := chainMatrix(0.4, 0.5)
	if got := SeriesTerm(p, 0, 2, 1); got != 0 {
		t.Errorf("order-1 term = %g, want 0 (no direct edge)", got)
	}
	if got := SeriesTerm(p, 0, 2, 2); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("order-2 term = %g, want 0.2", got)
	}
	if got := SeriesTerm(p, 0, 2, 3); got != 0 {
		t.Errorf("order-3 term = %g, want 0 (DAG)", got)
	}
	if got := SeriesTerm(p, -1, 2, 1); got != 0 {
		t.Errorf("bad index term = %g, want 0", got)
	}
}

func TestSeriesTermsSumToSeparationComplement(t *testing.T) {
	p := [][]float64{
		{0, 0.2, 0.1},
		{0.1, 0, 0.2},
		{0.05, 0.1, 0},
	}
	const order = 6
	sum := 0.0
	for k := 1; k <= order; k++ {
		sum += SeriesTerm(p, 0, 2, k)
	}
	s, err := Separation(p, 0, 2, order)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((1-s)-sum) > 1e-12 {
		t.Errorf("1-separation = %g, term sum = %g", 1-s, sum)
	}
}

func TestLevelStringAndValid(t *testing.T) {
	if ProcedureLevel.String() != "procedure" || TaskLevel.String() != "task" ||
		ProcessLevel.String() != "process" {
		t.Error("level names wrong")
	}
	if Level(0).Valid() || Level(4).Valid() {
		t.Error("invalid levels reported valid")
	}
	if Level(7).String() != "Level(7)" {
		t.Error("unknown level string wrong")
	}
}

func TestFactorsForLevel(t *testing.T) {
	proc := FactorsForLevel(ProcedureLevel)
	if len(proc) != 2 {
		t.Errorf("procedure factors = %v", proc)
	}
	task := FactorsForLevel(TaskLevel)
	found := map[string]bool{}
	for _, f := range task {
		found[f] = true
	}
	for _, want := range []string{FactorSharedMemory, FactorMessages, FactorTiming} {
		if !found[want] {
			t.Errorf("task level missing factor %s", want)
		}
	}
	if got := FactorsForLevel(Level(99)); got != nil {
		t.Errorf("unknown level factors = %v, want nil", got)
	}
	// Sorted.
	for i := 1; i < len(task); i++ {
		if task[i-1] >= task[i] {
			t.Errorf("factors not sorted: %v", task)
		}
	}
}

func TestMitigationApply(t *testing.T) {
	f := Factor{Name: FactorTiming, POccur: 0.2, PTransmit: 0.8, PManifest: 0.5}
	got := PreemptiveScheduling.Apply(f)
	if math.Abs(got.PTransmit-0.08) > 1e-12 {
		t.Errorf("mitigated PTransmit = %g, want 0.08", got.PTransmit)
	}
	// Occurrence and manifestation untouched.
	if got.POccur != 0.2 || got.PManifest != 0.5 {
		t.Error("mitigation touched wrong components")
	}
	// Wrong factor: unchanged.
	other := Factor{Name: FactorGlobals, PTransmit: 0.8}
	if PreemptiveScheduling.Apply(other).PTransmit != 0.8 {
		t.Error("mitigation applied to wrong factor")
	}
}

func TestMitigationValidate(t *testing.T) {
	bad := Mitigation{Name: "x", Factor: FactorTiming, TransmitScale: 1.5}
	if err := bad.Validate(); !errors.Is(err, ErrProbRange) {
		t.Errorf("err = %v, want ErrProbRange", err)
	}
	for _, m := range []Mitigation{InformationHiding, RecoveryBlocks, PreemptiveScheduling, MemorySeparation} {
		if err := m.Validate(); err != nil {
			t.Errorf("canonical mitigation %s invalid: %v", m.Name, err)
		}
	}
}

func TestApplyAllReducesInfluence(t *testing.T) {
	fs := []Factor{
		{Name: FactorTiming, POccur: 0.3, PTransmit: 0.9, PManifest: 0.8},
		{Name: FactorMessages, POccur: 0.2, PTransmit: 0.7, PManifest: 0.6},
	}
	before, err := FromFactors(fs)
	if err != nil {
		t.Fatal(err)
	}
	mitigated := ApplyAll(fs, []Mitigation{PreemptiveScheduling, RecoveryBlocks})
	after, err := FromFactors(mitigated)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("mitigations did not reduce influence: %g -> %g", before, after)
	}
	// Original slice unmodified.
	if fs[0].PTransmit != 0.9 {
		t.Error("ApplyAll mutated its input")
	}
}

func TestEstimate(t *testing.T) {
	got, err := Estimate(37, 100)
	if err != nil || math.Abs(got-0.37) > 1e-12 {
		t.Errorf("Estimate = %g, %v", got, err)
	}
	if _, err := Estimate(1, 0); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := Estimate(5, 3); err == nil {
		t.Error("successes > trials accepted")
	}
	if _, err := Estimate(-1, 3); err == nil {
		t.Error("negative successes accepted")
	}
}

func TestSpectralRadiusKnownValues(t *testing.T) {
	// Diagonalizable 2x2: [[0, 0.5], [0.5, 0]] has radius 0.5.
	p := [][]float64{{0, 0.5}, {0.5, 0}}
	if got := SpectralRadius(p, 100); math.Abs(got-0.5) > 1e-6 {
		t.Errorf("radius = %g, want 0.5", got)
	}
	// Nilpotent (DAG): radius 0.
	dag := [][]float64{{0, 0.9}, {0, 0}}
	if got := SpectralRadius(dag, 100); got != 0 {
		t.Errorf("DAG radius = %g, want 0", got)
	}
	if got := SpectralRadius(nil, 10); got != 0 {
		t.Errorf("empty radius = %g", got)
	}
}

func TestSeriesConvergesGuard(t *testing.T) {
	ok, r := SeriesConverges([][]float64{{0, 0.3}, {0.3, 0}})
	if !ok || r >= 1 {
		t.Errorf("weak coupling: ok=%v r=%g", ok, r)
	}
	ok, r = SeriesConverges([][]float64{{0, 1}, {1, 0}})
	if ok || r < 1-1e-6 {
		t.Errorf("certain 2-cycle: ok=%v r=%g, want divergent", ok, r)
	}
}

func TestPaperExampleSeriesConverges(t *testing.T) {
	// The worked example's influence matrix must have radius < 1, or the
	// separation values of E4 would be meaningless.
	p := [][]float64{
		//        p1   p2   p3   p4   p5   p6   p7   p8
		/*p1*/ {0, 0.7, 0, 0, 0, 0, 0, 0},
		/*p2*/ {0.5, 0, 0.2, 0, 0, 0, 0, 0},
		/*p3*/ {0, 0, 0, 0.6, 0.7, 0, 0, 0},
		/*p4*/ {0, 0, 0.3, 0, 0.2, 0, 0, 0},
		/*p5*/ {0, 0, 0, 0, 0, 0.1, 0.2, 0},
		/*p6*/ {0.1, 0, 0, 0, 0, 0, 0, 0},
		/*p7*/ {0, 0, 0, 0, 0, 0, 0, 0.3},
		/*p8*/ {0, 0, 0, 0, 0, 0.3, 0.2, 0},
	}
	ok, r := SeriesConverges(p)
	if !ok {
		t.Errorf("worked example diverges: radius %g", r)
	}
	if r < 0.3 || r > 0.9 {
		t.Errorf("radius %g outside plausible band", r)
	}
}
