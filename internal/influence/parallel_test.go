package influence

import (
	"context"
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"
)

// testMatrix builds a deterministic dense-ish influence matrix: weights
// derived from index arithmetic, with a sprinkle of exact zeros to
// exercise the reach-vector skip.
func testMatrix(n int) [][]float64 {
	p := make([][]float64, n)
	for i := range p {
		p[i] = make([]float64, n)
		for j := range p[i] {
			if i == j || (i+2*j)%5 == 0 {
				continue
			}
			p[i][j] = math.Mod(0.13*float64(i+1)+0.29*float64(j+1), 0.9)
		}
	}
	return p
}

// TestSeparationMatrixWorkersBitIdentical: the row-parallel sweep must be
// DeepEqual-identical for every worker count, and identical to the
// per-pair Separation function it amortizes.
func TestSeparationMatrixWorkersBitIdentical(t *testing.T) {
	for _, n := range []int{1, 3, 17} {
		p := testMatrix(n)
		want, err := SeparationMatrixWorkers(nil, p, 6, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 7} {
			got, err := SeparationMatrixWorkers(nil, p, 6, workers)
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("n=%d workers=%d matrix differs from serial", n, workers)
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s, err := Separation(p, i, j, 6)
				if err != nil {
					t.Fatal(err)
				}
				if s != want[i][j] {
					t.Errorf("row kernel (%d,%d) = %v, per-pair Separation = %v", i, j, want[i][j], s)
				}
			}
		}
	}
}

// TestSeparationMatrixCtxDefaultsParallel: the ctx entry point shards over
// GOMAXPROCS but must still match the explicit serial sweep.
func TestSeparationMatrixCtxDefaultsParallel(t *testing.T) {
	p := testMatrix(9)
	want, err := SeparationMatrixWorkers(nil, p, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SeparationMatrixCtx(context.Background(), p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("SeparationMatrixCtx differs from serial sweep")
	}
}

// TestSeparationMatrixWorkersCancelled: a dead context aborts the sweep
// from every worker with the row-tagged error wrapping ctx.Err().
func TestSeparationMatrixWorkersCancelled(t *testing.T) {
	p := testMatrix(12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		if _, err := SeparationMatrixWorkers(ctx, p, 0, workers); !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestSeparatorMemoizedMatchesDirect: cached rows answer exactly like the
// uncached functions, including under concurrent queries.
func TestSeparatorMemoizedMatchesDirect(t *testing.T) {
	p := testMatrix(11)
	sep := NewSeparator(p, 0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range p {
				for j := range p {
					got, err := sep.Separation(i, j)
					if err != nil {
						t.Error(err)
						return
					}
					want, err := Separation(p, i, j, DefaultMaxOrder)
					if err != nil {
						t.Error(err)
						return
					}
					if got != want {
						t.Errorf("memoized (%d,%d) = %v, direct = %v", i, j, got, want)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if _, err := sep.Separation(-1, 0); err == nil {
		t.Error("out-of-range query accepted")
	}
}

// TestSeparatorFirstTouchContention hammers the row cache at its weakest
// point: many goroutines querying the same never-cached row at once, so
// every one of them races to fill the cache entry. Without the
// Separator's mutex this is a guaranteed -race report (concurrent map
// write) and a possible torn read; with it, every caller must see the
// same bit-identical value. One extra goroutine interleaves queries to
// other rows to keep the map mutating while the hot row is read.
func TestSeparatorFirstTouchContention(t *testing.T) {
	p := testMatrix(9)
	for round := 0; round < 5; round++ {
		sep := NewSeparator(p, 0) // fresh cache: every row is a first touch
		hot := round % len(p)
		want, err := Separation(p, hot, (hot+1)%len(p), DefaultMaxOrder)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				got, err := sep.Separation(hot, (hot+1)%len(p))
				if err != nil {
					t.Error(err)
					return
				}
				if got != want {
					t.Errorf("contended first touch (%d): got %v, want %v", hot, got, want)
				}
			}()
		}
		wg.Add(1)
		go func() { // churn the map while the hot row is being filled
			defer wg.Done()
			<-start
			for i := range p {
				if _, err := sep.Separation(i, hot); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		close(start)
		wg.Wait()
	}
}
