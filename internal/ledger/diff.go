package ledger

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
)

// DiffConfig tunes run comparison. The zero value applies
// DefaultMetricThreshold to every measured value.
type DiffConfig struct {
	// MetricThreshold is the absolute change a measured value may move
	// by before it counts as a regression (decisions always compare
	// exactly). <= 0 means DefaultMetricThreshold.
	MetricThreshold float64
}

// DefaultMetricThreshold tolerates Monte-Carlo noise in campaign
// estimates while still catching real metric movement.
const DefaultMetricThreshold = 0.01

// Divergence is the first decision two runs disagree on. Old or New is
// nil when one run simply has fewer decisions.
type Divergence struct {
	Index    int // position in the decision-record sequence
	Old, New *Record
}

// PlacementDelta is one cluster placed differently between two runs.
// OldNode or NewNode is empty when the cluster exists in only one run.
type PlacementDelta struct {
	Cluster string
	OldNode string
	NewNode string
	OldCost float64
	NewCost float64
}

// MetricDelta is one measured value that moved between two runs.
type MetricDelta struct {
	Name     string
	Old, New float64
	Delta    float64
	// Worse reports the movement was in the bad direction for this
	// metric (higher escape rate, lower containment, …). Metrics with
	// no known direction count any movement as worse.
	Worse bool
	// Beyond reports |Delta| exceeded the configured threshold.
	Beyond bool
}

// DiffResult is the comparison of two run ledgers.
type DiffResult struct {
	// FingerprintMatch reports the two runs shared a config/spec
	// fingerprint — i.e. they *should* be decision-identical.
	FingerprintMatch bool
	// FirstDivergence is the earliest decision the runs disagree on,
	// nil when every decision matches.
	FirstDivergence *Divergence
	// DecisionCount is the number of decision records compared on each
	// side (old, new).
	DecisionCount [2]int
	// PlacementDeltas lists clusters that moved between processors.
	PlacementDeltas []PlacementDelta
	// MetricDeltas lists every measured value present in either run,
	// with its movement.
	MetricDeltas []MetricDelta
}

// Divergent reports whether the new run regressed: any decision
// diverged, or any measured value moved in the worse direction beyond
// the threshold.
func (d *DiffResult) Divergent() bool {
	if d.FirstDivergence != nil {
		return true
	}
	for _, m := range d.MetricDeltas {
		if m.Beyond && m.Worse {
			return true
		}
	}
	return false
}

// Diff compares two run ledgers: decisions byte-for-byte in order
// (finding the first divergence point), placements cluster-by-cluster,
// and measured values through the configured threshold.
func Diff(old, new *Ledger, cfg DiffConfig) (*DiffResult, error) {
	if old == nil || new == nil {
		return nil, fmt.Errorf("ledger: Diff requires two ledgers")
	}
	threshold := cfg.MetricThreshold
	if threshold <= 0 {
		threshold = DefaultMetricThreshold
	}
	res := &DiffResult{
		FingerprintMatch: old.Header().Fingerprint == new.Header().Fingerprint,
	}

	oldDec := decisionRecords(old.Records())
	newDec := decisionRecords(new.Records())
	res.DecisionCount = [2]int{len(oldDec), len(newDec)}
	for i := 0; i < len(oldDec) || i < len(newDec); i++ {
		switch {
		case i >= len(oldDec):
			r := newDec[i]
			res.FirstDivergence = &Divergence{Index: i, New: &r}
		case i >= len(newDec):
			r := oldDec[i]
			res.FirstDivergence = &Divergence{Index: i, Old: &r}
		case !recordsEqual(oldDec[i], newDec[i]):
			o, n := oldDec[i], newDec[i]
			res.FirstDivergence = &Divergence{Index: i, Old: &o, New: &n}
		default:
			continue
		}
		break
	}

	res.PlacementDeltas = placementDeltas(old.Records(), new.Records())
	res.MetricDeltas = metricDeltas(old.Records(), new.Records(), threshold)
	return res, nil
}

// decisionRecords filters a record stream down to decisions: measured
// values (metrics snapshots, campaign estimates) are compared through
// thresholds instead — Monte-Carlo noise is not a decision change.
func decisionRecords(recs []Record) []Record {
	out := recs[:0:0]
	for _, r := range recs {
		if !measurementKind(r.Kind) {
			out = append(out, r)
		}
	}
	return out
}

// recordsEqual compares two records ignoring their sequence numbers
// (the filtered decision streams re-index).
func recordsEqual(a, b Record) bool {
	a.Seq, b.Seq = 0, 0
	return reflect.DeepEqual(a, b)
}

func placementDeltas(old, new []Record) []PlacementDelta {
	type placed struct {
		node string
		cost float64
	}
	collect := func(recs []Record) map[string]placed {
		m := map[string]placed{}
		attempt := winningAttempt(recs)
		for _, r := range recs {
			if r.Kind == KindPlace && r.Attempt == attempt {
				m[r.A] = placed{r.Node, r.Cost}
			}
		}
		return m
	}
	om, nm := collect(old), collect(new)
	clusters := map[string]bool{}
	for c := range om {
		clusters[c] = true
	}
	for c := range nm {
		clusters[c] = true
	}
	var deltas []PlacementDelta
	for c := range clusters {
		o, n := om[c], nm[c]
		if o.node == n.node {
			continue
		}
		deltas = append(deltas, PlacementDelta{
			Cluster: c, OldNode: o.node, NewNode: n.node,
			OldCost: o.cost, NewCost: n.cost,
		})
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Cluster < deltas[j].Cluster })
	return deltas
}

// Metric direction tables: which way is worse. Names match by their
// last dot-separated component so campaign-prefixed values share the
// table.
var higherIsWorse = map[string]bool{
	"cross_influence":          true,
	"comm_cost":                true,
	"escape_rate":              true,
	"escaped_criticality":      true,
	"weighted_escape_rate":     true,
	"max_node_criticality":     true,
	"critical_pairs_colocated": true,
	"mean_criticality_loss":    true,
	"refinement_moves":         false, // informational, neither direction
}

var lowerIsWorse = map[string]bool{
	"containment":               true,
	"stable_fraction":           true,
	"system_reliability":        true,
	"constraints_ok":            true,
	"critical_pairs_shared_fcr": true,
}

func worseDirection(name string, delta float64) bool {
	base := name
	if i := strings.LastIndex(name, "."); i >= 0 {
		base = name[i+1:]
	}
	if higherIsWorse[base] {
		return delta > 0
	}
	if lowerIsWorse[base] {
		return delta < 0
	}
	if _, known := higherIsWorse[base]; known {
		return false // explicitly direction-free
	}
	// Unknown metric: any movement is suspicious.
	return delta != 0
}

// metricDeltas flattens every measured value of both runs into one
// namespace (metrics values keep their names; other measurement kinds
// prefix theirs) and compares.
func metricDeltas(old, new []Record, threshold float64) []MetricDelta {
	collect := func(recs []Record) map[string]float64 {
		m := map[string]float64{}
		seen := map[string]int{}
		for _, r := range recs {
			if !measurementKind(r.Kind) || len(r.Values) == 0 {
				continue
			}
			prefix := ""
			if r.Kind != KindMetrics {
				prefix = r.Kind + "."
			}
			for k, v := range r.Values {
				name := prefix + k
				// Repeated measurement records (several campaigns in
				// one run) get an occurrence suffix to stay distinct.
				if n := seen[name]; n > 0 {
					m[fmt.Sprintf("%s#%d", name, n)] = v
				} else {
					m[name] = v
				}
				seen[name]++
			}
		}
		return m
	}
	om, nm := collect(old), collect(new)
	names := map[string]bool{}
	for k := range om {
		names[k] = true
	}
	for k := range nm {
		names[k] = true
	}
	var deltas []MetricDelta
	for name := range names {
		o, n := om[name], nm[name]
		d := n - o
		if d == 0 {
			continue
		}
		deltas = append(deltas, MetricDelta{
			Name: name, Old: o, New: n, Delta: d,
			Worse:  worseDirection(name, d),
			Beyond: d > threshold || d < -threshold,
		})
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas
}

// String renders the diff for CLI output.
func (d *DiffResult) String() string {
	var sb strings.Builder
	if !d.FingerprintMatch {
		sb.WriteString("config fingerprints differ (runs are not expected to match decision-for-decision)\n")
	}
	if d.FirstDivergence == nil {
		fmt.Fprintf(&sb, "decisions: identical (%d records)\n", d.DecisionCount[0])
	} else {
		fd := d.FirstDivergence
		fmt.Fprintf(&sb, "first divergent decision at index %d:\n", fd.Index)
		describe := func(label string, r *Record) {
			if r == nil {
				fmt.Fprintf(&sb, "  %s: (run ended)\n", label)
				return
			}
			fmt.Fprintf(&sb, "  %s: %s\n", label, describeRecord(*r))
		}
		describe("old", fd.Old)
		describe("new", fd.New)
	}
	for _, p := range d.PlacementDeltas {
		fmt.Fprintf(&sb, "placement: %s moved %s (cost %.4g) -> %s (cost %.4g)\n",
			p.Cluster, orNone(p.OldNode), p.OldCost, orNone(p.NewNode), p.NewCost)
	}
	for _, m := range d.MetricDeltas {
		mark := "ok"
		if m.Beyond && m.Worse {
			mark = "REGRESSION"
		} else if m.Beyond {
			mark = "changed"
		}
		fmt.Fprintf(&sb, "metric %-32s %.6g -> %.6g (Δ %+.6g) [%s]\n",
			m.Name, m.Old, m.New, m.Delta, mark)
	}
	if d.Divergent() {
		sb.WriteString("verdict: DIVERGENT\n")
	} else {
		sb.WriteString("verdict: no divergence\n")
	}
	return sb.String()
}

func orNone(s string) string {
	if s == "" {
		return "(absent)"
	}
	return s
}

// describeRecord renders a record compactly for divergence output.
func describeRecord(r Record) string {
	var parts []string
	parts = append(parts, r.Kind)
	if r.Stage != "" {
		parts = append(parts, "stage="+r.Stage)
	}
	if r.Rule != "" {
		parts = append(parts, "rule="+r.Rule)
	}
	if r.A != "" {
		parts = append(parts, "a="+r.A)
	}
	if r.B != "" {
		parts = append(parts, "b="+r.B)
	}
	if r.Score != 0 {
		parts = append(parts, fmt.Sprintf("score=%.4g", r.Score))
	}
	if r.Result != "" {
		parts = append(parts, "result="+r.Result)
	}
	if r.Node != "" {
		parts = append(parts, fmt.Sprintf("node=%s cost=%.4g", r.Node, r.Cost))
	}
	if r.Detail != "" {
		parts = append(parts, "detail="+r.Detail)
	}
	return strings.Join(parts, " ")
}
