package ledger

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
)

// Explanation answers "why are A and B placed the way they are?" for a
// pair of FCMs: which replicas each resolves to, which Eq. (4) merges
// pulled them together (or kept them apart), and which placement
// decision — at what cost, beating which alternatives — put each on its
// processor. One PairLineage per replica pair.
type Explanation struct {
	A, B  string
	Pairs []PairLineage
}

// PairLineage is the causal chain for one concrete replica pair.
type PairLineage struct {
	A, B string
	// Colocated reports whether the pair ended on the same processor;
	// Node is that processor when they did.
	Colocated bool
	Node      string
	// Separated reports a replica-separation edge between the pair: the
	// pipeline was *forbidden* from colocating them.
	Separated bool
	// Join is the condensation step that first united the pair in one
	// cluster, nil if no merge ever did.
	Join *Record
	// ChainA and ChainB are the merge steps each side went through, in
	// decision order, up to and including the join (or to the end when
	// the pair never joined).
	ChainA, ChainB []Record
	// PlaceA and PlaceB are the placement decisions that fixed each
	// side's final cluster to a processor. When the pair is colocated
	// both point at the same decision.
	PlaceA, PlaceB *Record
}

// Explain reconstructs the merge/placement lineage of the pair (a, b)
// from a run ledger. Base process names resolve to their replicas (p3 →
// p3a, p3b); replica or cluster-member names are used as-is. Only the
// decisions of the winning fallback attempt are consulted, so a ledger
// that records failed attempts before a fallback succeeded still
// explains the run that actually shipped.
func Explain(l *Ledger, a, b string) (*Explanation, error) {
	if l == nil {
		return nil, fmt.Errorf("ledger: Explain on nil ledger")
	}
	recs := l.Records()

	winning := winningAttempt(recs)

	replicas := map[string][]string{}
	known := map[string]bool{}
	for _, r := range recs {
		switch r.Kind {
		case KindReplicate:
			replicas[r.A] = r.Members
			for _, m := range r.Members {
				known[m] = true
			}
		case KindPartition:
			known[r.A] = true
		case KindPlace:
			for _, m := range graph.Members(r.A) {
				known[m] = true
			}
		}
	}

	resolve := func(name string) ([]string, error) {
		if reps, ok := replicas[name]; ok && len(reps) > 0 {
			return reps, nil
		}
		if known[name] {
			return []string{name}, nil
		}
		return nil, fmt.Errorf("ledger: %q appears in no partition, replication or placement record", name)
	}
	as, err := resolve(a)
	if err != nil {
		return nil, err
	}
	bs, err := resolve(b)
	if err != nil {
		return nil, err
	}

	exp := &Explanation{A: a, B: b}
	for _, ra := range as {
		for _, rb := range bs {
			if ra == rb {
				continue
			}
			exp.Pairs = append(exp.Pairs, pairLineage(recs, winning, ra, rb))
		}
	}
	sort.Slice(exp.Pairs, func(i, j int) bool {
		if exp.Pairs[i].A != exp.Pairs[j].A {
			return exp.Pairs[i].A < exp.Pairs[j].A
		}
		return exp.Pairs[i].B < exp.Pairs[j].B
	})
	if len(exp.Pairs) == 0 {
		return nil, fmt.Errorf("ledger: no distinct replica pairs for (%s, %s)", a, b)
	}
	return exp, nil
}

// winningAttempt finds the fallback attempt the shipped result came
// from: the attempt stamped on the placement decisions (all placements
// belong to the attempt that succeeded). A ledger without placements
// (campaign-only runs) explains nothing placement-wise; 0 matches only
// records without an attempt stamp.
func winningAttempt(recs []Record) int {
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].Kind == KindPlace {
			return recs[i].Attempt
		}
	}
	return 0
}

func pairLineage(recs []Record, attempt int, a, b string) PairLineage {
	pl := PairLineage{A: a, B: b}
	for _, r := range recs {
		switch r.Kind {
		case KindReplicaEdge:
			if (r.A == a && r.B == b) || (r.A == b && r.B == a) {
				pl.Separated = true
			}
		case KindMerge:
			if r.Attempt != attempt {
				continue
			}
			members := graph.Members(r.Result)
			hasA := contains(members, a)
			hasB := contains(members, b)
			if pl.Join != nil {
				continue
			}
			if hasA && hasB {
				join := r
				pl.Join = &join
				continue
			}
			if hasA {
				pl.ChainA = append(pl.ChainA, r)
			}
			if hasB {
				pl.ChainB = append(pl.ChainB, r)
			}
		case KindPlace:
			if r.Attempt != attempt {
				continue
			}
			members := graph.Members(r.A)
			if contains(members, a) {
				place := r
				pl.PlaceA = &place
			}
			if contains(members, b) {
				place := r
				pl.PlaceB = &place
			}
		}
	}
	if pl.PlaceA != nil && pl.PlaceB != nil && pl.PlaceA.Node == pl.PlaceB.Node {
		pl.Colocated = true
		pl.Node = pl.PlaceA.Node
	}
	return pl
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// String renders the explanation as a human-readable causal chain.
func (e *Explanation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "why %s and %s are placed the way they are:\n", e.A, e.B)
	for _, p := range e.Pairs {
		fmt.Fprintf(&sb, "\n%s vs %s:\n", p.A, p.B)
		if p.Separated {
			fmt.Fprintf(&sb, "  replica-separation edge %s—%s forbids colocation\n", p.A, p.B)
		}
		writeChain := func(who string, chain []Record) {
			for _, m := range chain {
				fmt.Fprintf(&sb, "  [%s] merge %s: %s + %s (Eq.4 mutual %.4g) -> %s\n",
					who, m.Rule, m.A, m.B, m.Score, m.Result)
			}
		}
		writeChain(p.A, p.ChainA)
		writeChain(p.B, p.ChainB)
		if p.Join != nil {
			fmt.Fprintf(&sb, "  joined by merge %s: %s + %s (Eq.4 mutual %.4g) -> %s\n",
				p.Join.Rule, p.Join.A, p.Join.B, p.Join.Score, p.Join.Result)
		} else {
			fmt.Fprintf(&sb, "  never merged into one cluster\n")
		}
		writePlace := func(who string, pr *Record) {
			if pr == nil {
				fmt.Fprintf(&sb, "  %s: no placement recorded\n", who)
				return
			}
			fmt.Fprintf(&sb, "  %s placed: cluster %s -> %s (cost %.4g", who, pr.A, pr.Node, pr.Cost)
			if len(pr.Alternatives) > 0 {
				alts := make([]string, len(pr.Alternatives))
				for i, alt := range pr.Alternatives {
					alts[i] = fmt.Sprintf("%s %.4g", alt.Node, alt.Cost)
				}
				fmt.Fprintf(&sb, "; beat %s", strings.Join(alts, ", "))
			}
			fmt.Fprintf(&sb, ")\n")
		}
		if p.Colocated {
			fmt.Fprintf(&sb, "  colocated on %s\n", p.Node)
			writePlace(p.A+"+"+p.B, p.PlaceA)
		} else {
			writePlace(p.A, p.PlaceA)
			writePlace(p.B, p.PlaceB)
		}
	}
	return sb.String()
}
