package ledger

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// workedLedger builds a ledger shaped like the paper's worked example
// run: p1..p8 partitioned, FT-expanded, condensed under H1 and placed on
// hw1..hw6 — including the 0.76 merge that pulls p5 into {p3a,p4}.
func workedLedger() *Ledger {
	l := New(Header{Tool: "fcmtool", System: "paper", Strategy: "H1",
		Approach: "importance", HWNodes: 6, Fingerprint: "f00d"})
	l.Append(Record{Kind: KindReplicate, Stage: "replicate", A: "p1", Members: []string{"p1a", "p1b", "p1c"}})
	l.Append(Record{Kind: KindReplicate, Stage: "replicate", A: "p2", Members: []string{"p2a", "p2b"}})
	l.Append(Record{Kind: KindReplicate, Stage: "replicate", A: "p3", Members: []string{"p3a", "p3b"}})
	l.Append(Record{Kind: KindReplicaEdge, Stage: "replicate", A: "p3a", B: "p3b"})
	l.Append(Record{Kind: KindMerge, Stage: "condense", Rule: "H1", A: "p1a", B: "p2a", Score: 1.2, Result: "{p1a,p2a}", Attempt: 1})
	l.Append(Record{Kind: KindMerge, Stage: "condense", Rule: "H1", A: "p3a", B: "p4", Score: 0.9, Result: "{p3a,p4}", Attempt: 1})
	l.Append(Record{Kind: KindMerge, Stage: "condense", Rule: "H1", A: "p5", B: "{p3a,p4}", Score: 0.76, Result: "{p3a,p4,p5}", Attempt: 1})
	l.Append(Record{Kind: KindMerge, Stage: "condense", Rule: "H1", A: "p7", B: "p8", Score: 0.5, Result: "{p7,p8}", Attempt: 1})
	l.Append(Record{Kind: KindPlace, Stage: "map", Rule: "importance", A: "{p3a,p4,p5}", Node: "hw5", Cost: 1.25,
		Alternatives: []Alternative{{Node: "hw4", Cost: 2.5}}, Attempt: 1})
	l.Append(Record{Kind: KindPlace, Stage: "map", Rule: "importance", A: "p3b", Node: "hw4", Cost: 0.5, Attempt: 1})
	l.Append(Record{Kind: KindPlace, Stage: "map", Rule: "importance", A: "{p7,p8}", Node: "hw6", Cost: 0, Attempt: 1})
	l.Append(Record{Kind: KindMetrics, Stage: "evaluate",
		Values: map[string]float64{"containment": 0.391, "cross_influence": 7.8}})
	return l
}

func TestExplainColocatedPair(t *testing.T) {
	l := workedLedger()
	exp, err := Explain(l, "p3", "p5")
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if exp.A != "p3" || exp.B != "p5" {
		t.Errorf("query echoed as (%s, %s)", exp.A, exp.B)
	}
	// p3 resolves to p3a and p3b; p5 to itself -> two pairs.
	if len(exp.Pairs) != 2 {
		t.Fatalf("pairs = %d, want 2", len(exp.Pairs))
	}
	// Sorted: p3a first.
	pa := exp.Pairs[0]
	if pa.A != "p3a" || pa.B != "p5" {
		t.Fatalf("first pair (%s, %s)", pa.A, pa.B)
	}
	if !pa.Colocated || pa.Node != "hw5" {
		t.Errorf("p3a/p5: colocated=%v node=%q, want true/hw5", pa.Colocated, pa.Node)
	}
	if pa.Join == nil {
		t.Fatal("p3a/p5: no join merge found")
	}
	if pa.Join.Score != 0.76 || pa.Join.Rule != "H1" {
		t.Errorf("join = rule %s score %v, want H1 0.76", pa.Join.Rule, pa.Join.Score)
	}
	if pa.PlaceA == nil || pa.PlaceA.Cost != 1.25 {
		t.Errorf("placement cost not recovered: %+v", pa.PlaceA)
	}
	// p3a reached the join through the earlier 0.9 merge.
	if len(pa.ChainA) != 1 || pa.ChainA[0].Score != 0.9 {
		t.Errorf("p3a chain = %+v, want the 0.9 merge", pa.ChainA)
	}

	pb := exp.Pairs[1]
	if pb.A != "p3b" || pb.B != "p5" {
		t.Fatalf("second pair (%s, %s)", pb.A, pb.B)
	}
	if pb.Colocated || pb.Join != nil {
		t.Errorf("p3b/p5 should never join: colocated=%v join=%v", pb.Colocated, pb.Join)
	}
	if pb.PlaceA == nil || pb.PlaceA.Node != "hw4" {
		t.Errorf("p3b placement = %+v, want hw4", pb.PlaceA)
	}

	text := exp.String()
	for _, want := range []string{"0.76", "H1", "hw5", "hw4", "{p3a,p4,p5}"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered explanation missing %q:\n%s", want, text)
		}
	}
}

func TestExplainSeparatedReplicas(t *testing.T) {
	exp, err := Explain(workedLedger(), "p3a", "p3b")
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if len(exp.Pairs) != 1 {
		t.Fatalf("pairs = %d, want 1", len(exp.Pairs))
	}
	p := exp.Pairs[0]
	if !p.Separated {
		t.Error("replica-separation edge not surfaced")
	}
	if p.Colocated {
		t.Error("separated replicas reported colocated")
	}
	if !strings.Contains(exp.String(), "forbids colocation") {
		t.Errorf("rendered text misses separation note:\n%s", exp.String())
	}
}

func TestExplainUnknownEntity(t *testing.T) {
	if _, err := Explain(workedLedger(), "p3", "nosuch"); err == nil {
		t.Fatal("unknown entity accepted")
	}
	if _, err := Explain(nil, "a", "b"); err == nil {
		t.Fatal("nil ledger accepted")
	}
}

func TestExplainIgnoresLosingAttempts(t *testing.T) {
	l := New(Header{})
	// Attempt 1 failed after one merge; attempt 2 shipped.
	l.Append(Record{Kind: KindMerge, Rule: "H2", A: "x", B: "y", Score: 9.9, Result: "{x,y}", Attempt: 1})
	l.Append(Record{Kind: KindDegrade, Rule: "H2", Detail: "timeout"})
	l.Append(Record{Kind: KindMerge, Rule: "H1", A: "x", B: "y", Score: 0.3, Result: "{x,y}", Attempt: 2})
	l.Append(Record{Kind: KindPlace, A: "{x,y}", Node: "hw1", Cost: 1, Attempt: 2})
	exp, err := Explain(l, "x", "y")
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	j := exp.Pairs[0].Join
	if j == nil || j.Rule != "H1" || j.Score != 0.3 {
		t.Fatalf("join came from losing attempt: %+v", j)
	}
}

func TestDiffIdenticalRuns(t *testing.T) {
	d, err := Diff(workedLedger(), workedLedger(), DiffConfig{})
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if d.Divergent() {
		t.Fatalf("identical runs diverge: %s", d.String())
	}
	if !d.FingerprintMatch {
		t.Error("fingerprints should match")
	}
	if d.FirstDivergence != nil || len(d.PlacementDeltas) != 0 || len(d.MetricDeltas) != 0 {
		t.Errorf("identical runs produced deltas: %+v", d)
	}
	if !strings.Contains(d.String(), "no divergence") {
		t.Errorf("rendered diff: %s", d.String())
	}
}

func TestDiffFindsFirstDivergentDecision(t *testing.T) {
	old := workedLedger()
	perturbed := New(old.Header())
	for _, r := range old.Records() {
		if r.Kind == KindMerge && r.Score == 0.76 {
			// The perturbed run merged p5 with p6 instead.
			r.B, r.Result, r.Score = "p6", "{p5,p6}", 0.41
		}
		r.Seq = 0
		perturbed.Append(r)
	}
	d, err := Diff(old, perturbed, DiffConfig{})
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if !d.Divergent() {
		t.Fatal("perturbed run not flagged divergent")
	}
	fd := d.FirstDivergence
	if fd == nil {
		t.Fatal("no first divergence")
	}
	if fd.Old == nil || fd.Old.Score != 0.76 {
		t.Errorf("divergence anchored at %+v, want the 0.76 merge", fd.Old)
	}
	if fd.New == nil || fd.New.Result != "{p5,p6}" {
		t.Errorf("new side = %+v", fd.New)
	}
	if !strings.Contains(d.String(), "first divergent decision") {
		t.Errorf("rendered diff misses divergence: %s", d.String())
	}
}

func TestDiffMetricThresholds(t *testing.T) {
	mk := func(cross float64) *Ledger {
		l := New(Header{Fingerprint: "same"})
		l.Append(Record{Kind: KindMetrics, Stage: "evaluate",
			Values: map[string]float64{"cross_influence": cross, "containment": 0.4}})
		return l
	}
	// Within threshold: not divergent.
	d, err := Diff(mk(7.8), mk(7.805), DiffConfig{MetricThreshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if d.Divergent() {
		t.Errorf("sub-threshold movement flagged: %s", d.String())
	}
	// Beyond threshold in the worse direction: divergent.
	d, err = Diff(mk(7.8), mk(8.5), DiffConfig{MetricThreshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Divergent() {
		t.Error("regression not flagged")
	}
	// Beyond threshold but improving: changed, not a regression.
	d, err = Diff(mk(7.8), mk(7.0), DiffConfig{MetricThreshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if d.Divergent() {
		t.Errorf("improvement flagged as regression: %s", d.String())
	}
}

func TestDiffPlacementDeltas(t *testing.T) {
	old := workedLedger()
	moved := New(old.Header())
	for _, r := range old.Records() {
		if r.Kind == KindPlace && r.A == "p3b" {
			r.Node, r.Cost = "hw1", 0.75
		}
		r.Seq = 0
		moved.Append(r)
	}
	d, err := Diff(old, moved, DiffConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.PlacementDeltas) != 1 {
		t.Fatalf("placement deltas = %+v, want exactly p3b", d.PlacementDeltas)
	}
	pd := d.PlacementDeltas[0]
	if pd.Cluster != "p3b" || pd.OldNode != "hw4" || pd.NewNode != "hw1" {
		t.Errorf("delta = %+v", pd)
	}
}

func TestMarkdownReport(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, workedLedger()); err != nil {
		t.Fatalf("WriteMarkdown: %v", err)
	}
	md := buf.String()
	for _, want := range []string{
		"# Integration run report", "| p3a | p4 | 0.9 |", "0.76",
		"{p3a,p4,p5}", "hw5", "containment", "fingerprint",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown report missing %q", want)
		}
	}
}

func TestHTMLReportSelfContained(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHTML(&buf, workedLedger()); err != nil {
		t.Fatalf("WriteHTML: %v", err)
	}
	html := buf.String()
	for _, want := range []string{"<!DOCTYPE html>", "0.76", "hw5", "{p3a,p4,p5}"} {
		if !strings.Contains(html, want) {
			t.Errorf("html report missing %q", want)
		}
	}
	for _, forbid := range []string{"<script src", "<link rel", "http://", "https://"} {
		if strings.Contains(html, forbid) {
			t.Errorf("html report not self-contained: found %q", forbid)
		}
	}
}

func TestReportDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteMarkdown(&a, workedLedger()); err != nil {
		t.Fatal(err)
	}
	if err := WriteMarkdown(&b, workedLedger()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("markdown rendering not deterministic")
	}
}

func TestLedgerJSONLValidLines(t *testing.T) {
	var buf bytes.Buffer
	if err := workedLedger().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if !json.Valid([]byte(line)) {
			t.Errorf("line %d is not valid JSON: %s", i+1, line)
		}
	}
}
