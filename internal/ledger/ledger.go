// Package ledger is the framework's decision-provenance layer: an
// append-only, schema-versioned record of every decision an integration
// run makes — which FCMs were merged under which rule and Eq. (4) score,
// where each cluster was placed and which alternatives the placement
// beat, which strategies degraded or lost a race, what the fault-injection
// campaign measured — plus the config/spec fingerprint that identifies the
// run and a final metrics snapshot.
//
// Where package obs answers "where did the time go", ledger answers "why
// is p3 colocated with p5, and what would have happened otherwise" — and
// keeps answering after the process exits, because the ledger serialises
// to a JSONL file (one header line, one record per line).
//
// Records carry no wall-clock timestamps: a ledger is a pure function of
// the specification and the configuration, so two runs of the same system
// produce byte-identical ledgers. That determinism is what makes
// Diff usable as a CI regression gate (see diff.go) and Explain usable as
// a post-hoc query API (see explain.go).
//
// The zero value of the subsystem is "off": a nil *Ledger absorbs every
// call, so instrumented code pays one pointer comparison when no ledger
// is installed — the same contract as package obs.
package ledger

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// SchemaVersion is the on-disk ledger schema. Readers reject ledgers
// written under a different major schema rather than misinterpret them.
const SchemaVersion = 1

// Record kinds. One constant per decision class the pipeline records.
const (
	// KindPartition records stage 1: the process-level FCMs named by the
	// specification (Members) and the HW target (Detail).
	KindPartition = "partition"
	// KindInfluence records stage 2: the influence-graph construction and
	// Eq. (3) separation analysis (Detail holds the graph size).
	KindInfluence = "influence"
	// KindReplicate records one fault-tolerance expansion: A is the base
	// FCM, Members its replica ids.
	KindReplicate = "replicate"
	// KindReplicaEdge records one weight-0 replica-separation edge
	// inserted between A and B — the constraint that forbids colocation.
	KindReplicaEdge = "replica_edge"
	// KindMerge records one condensation step: Rule (H1, min-cut,
	// criticality-pair, …), operands A and B, the Eq. (4) mutual
	// influence in Score, and the resulting cluster id in Result.
	KindMerge = "merge"
	// KindBacktrack records one undone pairing decision of the §6.2
	// criticality search (A = high-criticality node, B = partner).
	KindBacktrack = "backtrack"
	// KindDegrade records one abandoned strategy of a fallback chain:
	// Rule is the strategy given up on, Detail the failure.
	KindDegrade = "degrade"
	// KindRace records the outcome of a strategy portfolio race: Rule is
	// the winning strategy.
	KindRace = "race"
	// KindPlace records one cluster-to-processor decision: A is the
	// cluster id, Node the chosen processor, Cost the influence-weighted
	// communication cost it was chosen at, and Alternatives the feasible
	// processors it beat.
	KindPlace = "place"
	// KindRefine records the post-assignment dilation-refinement pass.
	KindRefine = "refine"
	// KindMetrics is the final §5.3 goodness snapshot of a run (Values).
	KindMetrics = "metrics"
	// KindCampaign summarises one fault-injection campaign (Values).
	KindCampaign = "campaign"
	// KindSearchEval records one adversarial-search scenario evaluation
	// (Detail = scenario, Score = criticality-weighted escape rate).
	KindSearchEval = "search_eval"
	// KindSearchBest records the worst-case scenario a search found.
	KindSearchBest = "search_best"
	// KindCertify summarises a robustness certification (Values).
	KindCertify = "certify"
	// KindCertifyLevel records one ε row of a robustness certificate.
	KindCertifyLevel = "certify_level"
	// KindArtifact records a derived artifact (a regenerated table or
	// figure) by content hash, for run-to-run regression diffing.
	KindArtifact = "artifact"
	// KindScenario identifies a generated scenario under test (Detail =
	// family:processes:seed). A decision record: any change to the
	// generator that alters what a corpus entry denotes must surface as
	// a byte diff.
	KindScenario = "scenario"
)

// measurementKind reports whether a kind carries measured values rather
// than a decision: Diff compares measurement records through thresholds
// instead of byte equality (Monte-Carlo noise is not a decision change).
func measurementKind(kind string) bool {
	switch kind {
	case KindMetrics, KindCampaign, KindSearchEval, KindSearchBest,
		KindCertify, KindCertifyLevel:
		return true
	}
	return false
}

// Header identifies a run: what was integrated, under which
// configuration, by which tool, and the fingerprint that must match for
// two ledgers to be comparable decision-for-decision.
type Header struct {
	Schema      int    `json:"schema"`
	Tool        string `json:"tool,omitempty"`
	System      string `json:"system,omitempty"`
	Strategy    string `json:"strategy,omitempty"`
	Approach    string `json:"approach,omitempty"`
	HWNodes     int    `json:"hw_nodes,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
}

// Alternative is one feasible-but-not-chosen processor of a placement
// decision, with the cost the chosen node beat.
type Alternative struct {
	Node string  `json:"node"`
	Cost float64 `json:"cost"`
}

// Record is one ledger line. The struct is deliberately flat — every
// decision class uses the subset of fields it needs — so records diff,
// grep and render uniformly. No field carries wall-clock time.
type Record struct {
	// Seq is the append order, assigned by the ledger.
	Seq int `json:"seq"`
	// Kind classifies the decision (see the Kind constants).
	Kind string `json:"kind"`
	// Stage is the pipeline stage the decision was made in.
	Stage string `json:"stage,omitempty"`
	// Rule names the heuristic or rule that made the decision (H1,
	// criticality-pair, importance, …).
	Rule string `json:"rule,omitempty"`
	// A and B are the decision operands (nodes, clusters, parameters).
	A string `json:"a,omitempty"`
	B string `json:"b,omitempty"`
	// Score is the quantity the decision was taken on: the Eq. (4)
	// mutual influence of a merge, the objective of a search evaluation.
	Score float64 `json:"score,omitempty"`
	// Result is the entity the decision produced (a cluster id, a
	// winning scenario).
	Result string `json:"result,omitempty"`
	// Node and Cost describe a placement: the chosen processor and the
	// influence-weighted communication cost it was chosen at.
	Node string  `json:"node,omitempty"`
	Cost float64 `json:"cost,omitempty"`
	// Alternatives lists the feasible placements the decision beat.
	Alternatives []Alternative `json:"alternatives,omitempty"`
	// Members lists member entities (partition processes, replica ids).
	Members []string `json:"members,omitempty"`
	// Attempt is the fallback-chain attempt the decision belongs to.
	Attempt int `json:"attempt,omitempty"`
	// Detail is the human-readable remainder of the decision.
	Detail string `json:"detail,omitempty"`
	// Values holds the measured quantities of measurement records
	// (metrics snapshots, campaign summaries). JSON encoding sorts the
	// keys, keeping the serialised form deterministic.
	Values map[string]float64 `json:"values,omitempty"`
}

// Ledger is an append-only decision log. All methods are safe on a nil
// receiver (they do nothing or return zero values) and safe for
// concurrent use.
type Ledger struct {
	mu      sync.Mutex
	header  Header
	records []Record
}

// New builds a ledger with the given header. The schema version is
// stamped in unconditionally.
func New(h Header) *Ledger {
	h.Schema = SchemaVersion
	return &Ledger{header: h}
}

// Header returns the ledger's header (zero value on nil).
func (l *Ledger) Header() Header {
	if l == nil {
		return Header{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.header
}

// MergeHeader fills empty header fields from h, leaving fields the ledger
// already has untouched — the CLI names the tool, the pipeline fills in
// system, strategy, approach and fingerprint.
func (l *Ledger) MergeHeader(h Header) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.header.Schema == 0 {
		l.header.Schema = SchemaVersion
	}
	if l.header.Tool == "" {
		l.header.Tool = h.Tool
	}
	if l.header.System == "" {
		l.header.System = h.System
	}
	if l.header.Strategy == "" {
		l.header.Strategy = h.Strategy
	}
	if l.header.Approach == "" {
		l.header.Approach = h.Approach
	}
	if l.header.HWNodes == 0 {
		l.header.HWNodes = h.HWNodes
	}
	if l.header.Fingerprint == "" {
		l.header.Fingerprint = h.Fingerprint
	}
}

// Append adds one record, assigns its sequence number, and returns it.
// Appending to a nil ledger returns -1 and does nothing.
func (l *Ledger) Append(r Record) int {
	if l == nil {
		return -1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	r.Seq = len(l.records)
	l.records = append(l.records, r)
	return r.Seq
}

// AppendAll splices a batch of records (e.g. a race winner's scratch
// ledger) into the ledger, re-assigning sequence numbers.
func (l *Ledger) AppendAll(rs []Record) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, r := range rs {
		r.Seq = len(l.records)
		l.records = append(l.records, r)
	}
}

// Len returns the number of records (0 on nil).
func (l *Ledger) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Records returns a copy of the record list in append order.
func (l *Ledger) Records() []Record {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Record(nil), l.records...)
}

// Errors returned by the serialisation layer.
var (
	// ErrSchema marks a ledger written under an incompatible schema.
	ErrSchema = errors.New("ledger: unsupported schema version")
	// ErrEmpty marks a file with no header line.
	ErrEmpty = errors.New("ledger: empty ledger file")
)

// WriteJSONL serialises the ledger: the header on the first line, then
// one record per line, in append order.
func (l *Ledger) WriteJSONL(w io.Writer) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	header := l.header
	records := append([]Record(nil), l.records...)
	l.mu.Unlock()

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header); err != nil {
		return fmt.Errorf("ledger: write header: %w", err)
	}
	for _, r := range records {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("ledger: write record %d: %w", r.Seq, err)
		}
	}
	return bw.Flush()
}

// WriteFile writes the JSONL serialisation to path (atomically enough
// for a run artifact: create truncates, a failed write returns an error).
func (l *Ledger) WriteFile(path string) error {
	if l == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := l.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadJSONL parses a ledger serialised by WriteJSONL.
func ReadJSONL(r io.Reader) (*Ledger, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, ErrEmpty
	}
	var h Header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("ledger: parse header: %w", err)
	}
	if h.Schema != SchemaVersion {
		return nil, fmt.Errorf("%w: file has %d, reader understands %d",
			ErrSchema, h.Schema, SchemaVersion)
	}
	l := &Ledger{header: h}
	line := 1
	for sc.Scan() {
		line++
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("ledger: parse line %d: %w", line, err)
		}
		l.records = append(l.records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return l, nil
}

// ReadFile parses the ledger file at path.
func ReadFile(path string) (*Ledger, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	l, err := ReadJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return l, nil
}

// Fingerprint hashes an arbitrary configuration value (via its canonical
// JSON form) into a short hex digest — the identity two ledgers must
// share to be decision-comparable.
func Fingerprint(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		// A non-marshalable config still deserves a stable identity.
		b = []byte(fmt.Sprintf("%+v", v))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}
