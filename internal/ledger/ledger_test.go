package ledger

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestNilLedgerIsInert(t *testing.T) {
	var l *Ledger
	if got := l.Append(Record{Kind: KindMerge}); got != -1 {
		t.Errorf("nil Append = %d, want -1", got)
	}
	l.AppendAll([]Record{{Kind: KindPlace}})
	l.MergeHeader(Header{Tool: "x"})
	if l.Len() != 0 {
		t.Errorf("nil Len = %d, want 0", l.Len())
	}
	if l.Records() != nil {
		t.Errorf("nil Records = %v, want nil", l.Records())
	}
	if h := l.Header(); h != (Header{}) {
		t.Errorf("nil Header = %+v, want zero", h)
	}
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Errorf("nil WriteJSONL: %v", err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil WriteJSONL wrote %q", buf.String())
	}
}

func TestAppendAssignsSequence(t *testing.T) {
	l := New(Header{Tool: "test"})
	for i := 0; i < 5; i++ {
		if seq := l.Append(Record{Kind: KindMerge}); seq != i {
			t.Fatalf("Append %d assigned seq %d", i, seq)
		}
	}
	l.AppendAll([]Record{{Kind: KindPlace, Seq: 99}, {Kind: KindPlace, Seq: 99}})
	recs := l.Records()
	if len(recs) != 7 {
		t.Fatalf("Len = %d, want 7", len(recs))
	}
	for i, r := range recs {
		if r.Seq != i {
			t.Errorf("record %d has seq %d", i, r.Seq)
		}
	}
}

func TestMergeHeaderFillsOnlyEmptyFields(t *testing.T) {
	l := New(Header{Tool: "fcmtool"})
	l.MergeHeader(Header{Tool: "other", System: "paper", HWNodes: 6, Fingerprint: "abc"})
	h := l.Header()
	if h.Tool != "fcmtool" {
		t.Errorf("Tool overwritten to %q", h.Tool)
	}
	if h.System != "paper" || h.HWNodes != 6 || h.Fingerprint != "abc" {
		t.Errorf("empty fields not filled: %+v", h)
	}
	if h.Schema != SchemaVersion {
		t.Errorf("Schema = %d, want %d", h.Schema, SchemaVersion)
	}
}

func TestRoundTrip(t *testing.T) {
	l := New(Header{
		Tool: "fcmtool", System: "paper", Strategy: "H1",
		Approach: "importance", HWNodes: 6, Fingerprint: "deadbeef",
	})
	l.Append(Record{Kind: KindPartition, Stage: "partition",
		A: "p1", Members: []string{"p1"}, Detail: "hw1"})
	l.Append(Record{Kind: KindMerge, Stage: "condense", Rule: "H1",
		A: "p3a", B: "p4", Score: 0.9, Result: "{p3a,p4}", Attempt: 1})
	l.Append(Record{Kind: KindPlace, Stage: "map", A: "{p3a,p4}",
		Node: "hw5", Cost: 1.5,
		Alternatives: []Alternative{{Node: "hw6", Cost: 2.25}}})
	l.Append(Record{Kind: KindMetrics, Stage: "evaluate",
		Values: map[string]float64{"containment": 0.391, "comm_cost": 7.8}})

	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if got.Header() != l.Header() {
		t.Errorf("header round-trip: got %+v want %+v", got.Header(), l.Header())
	}
	if !reflect.DeepEqual(got.Records(), l.Records()) {
		t.Errorf("records round-trip:\ngot  %+v\nwant %+v", got.Records(), l.Records())
	}
}

func TestWriteIsDeterministic(t *testing.T) {
	build := func() *Ledger {
		l := New(Header{Tool: "t", System: "s"})
		l.Append(Record{Kind: KindMetrics,
			Values: map[string]float64{"b": 2, "a": 1, "c": 3, "d": 4}})
		l.Append(Record{Kind: KindMerge, A: "x", B: "y", Score: 0.5})
		return l
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteJSONL(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSONL(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Errorf("serialisation not deterministic:\n%s\nvs\n%s", b1.String(), b2.String())
	}
}

func TestReadRejectsWrongSchema(t *testing.T) {
	in := `{"schema":999,"tool":"x"}` + "\n"
	if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

func TestReadRejectsEmpty(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("")); err != ErrEmpty {
		t.Fatalf("empty input: err = %v, want ErrEmpty", err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/run.jsonl"
	l := New(Header{Tool: "t"})
	l.Append(Record{Kind: KindMerge, A: "a", B: "b"})
	if err := l.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(got.Records(), l.Records()) {
		t.Errorf("file round-trip mismatch")
	}
}

func TestFingerprintStableAndDistinct(t *testing.T) {
	type cfg struct {
		Name  string
		Knobs []int
	}
	a := Fingerprint(cfg{"x", []int{1, 2}})
	b := Fingerprint(cfg{"x", []int{1, 2}})
	c := Fingerprint(cfg{"x", []int{1, 3}})
	if a != b {
		t.Errorf("fingerprint unstable: %s vs %s", a, b)
	}
	if a == c {
		t.Errorf("distinct configs share fingerprint %s", a)
	}
	if len(a) != 16 {
		t.Errorf("fingerprint length %d, want 16 hex chars", len(a))
	}
}

func TestConcurrentAppend(t *testing.T) {
	l := New(Header{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Append(Record{Kind: KindMerge})
			}
		}()
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Fatalf("Len = %d, want 800", l.Len())
	}
	for i, r := range l.Records() {
		if r.Seq != i {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
}

func TestMeasurementKind(t *testing.T) {
	for _, k := range []string{KindMetrics, KindCampaign, KindCertify,
		KindCertifyLevel, KindSearchEval, KindSearchBest} {
		if !measurementKind(k) {
			t.Errorf("measurementKind(%s) = false", k)
		}
	}
	for _, k := range []string{KindMerge, KindPlace, KindPartition,
		KindDegrade, KindRace, KindArtifact} {
		if measurementKind(k) {
			t.Errorf("measurementKind(%s) = true", k)
		}
	}
}
