package ledger

import (
	"fmt"
	"html/template"
	"io"
	"sort"
	"strings"
)

// reportData is the view model shared by the Markdown and HTML
// renderers: the ledger regrouped by decision class, in decision order.
type reportData struct {
	Header     Header
	Partitions []Record
	Replicas   []Record
	Edges      int
	Merges     []Record
	Backtracks []Record
	Degrades   []Record
	Races      []Record
	Places     []Record
	Refines    []Record
	Metrics    []metricRow
	Campaigns  []valueBlock
	Certifies  []valueBlock
	Searches   []Record
	Artifacts  []Record
	Total      int
}

type metricRow struct {
	Name  string
	Value float64
}

type valueBlock struct {
	Title  string
	Values []metricRow
}

func buildReport(l *Ledger) reportData {
	d := reportData{Header: l.Header()}
	recs := l.Records()
	d.Total = len(recs)
	attempt := winningAttempt(recs)
	sortedValues := func(vals map[string]float64) []metricRow {
		rows := make([]metricRow, 0, len(vals))
		for k, v := range vals {
			rows = append(rows, metricRow{k, v})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
		return rows
	}
	for _, r := range recs {
		switch r.Kind {
		case KindPartition:
			d.Partitions = append(d.Partitions, r)
		case KindReplicate:
			d.Replicas = append(d.Replicas, r)
		case KindReplicaEdge:
			d.Edges++
		case KindMerge:
			if r.Attempt == attempt {
				d.Merges = append(d.Merges, r)
			}
		case KindBacktrack:
			d.Backtracks = append(d.Backtracks, r)
		case KindDegrade:
			d.Degrades = append(d.Degrades, r)
		case KindRace:
			d.Races = append(d.Races, r)
		case KindPlace:
			if r.Attempt == attempt {
				d.Places = append(d.Places, r)
			}
		case KindRefine:
			d.Refines = append(d.Refines, r)
		case KindMetrics:
			d.Metrics = append(d.Metrics, sortedValues(r.Values)...)
		case KindCampaign:
			d.Campaigns = append(d.Campaigns, valueBlock{
				Title: strings.TrimSpace("campaign " + r.Detail), Values: sortedValues(r.Values)})
		case KindCertify, KindCertifyLevel:
			title := "certificate"
			if r.Kind == KindCertifyLevel {
				title = "certificate level " + r.A
			}
			d.Certifies = append(d.Certifies, valueBlock{Title: title, Values: sortedValues(r.Values)})
		case KindSearchEval, KindSearchBest:
			d.Searches = append(d.Searches, r)
		case KindArtifact:
			d.Artifacts = append(d.Artifacts, r)
		}
	}
	return d
}

// memberList renders a record's Members column.
func memberList(ms []string) string { return strings.Join(ms, ", ") }

// altList renders the beaten alternatives of a placement.
func altList(alts []Alternative) string {
	if len(alts) == 0 {
		return "—"
	}
	parts := make([]string, len(alts))
	for i, a := range alts {
		parts[i] = fmt.Sprintf("%s %.4g", a.Node, a.Cost)
	}
	return strings.Join(parts, ", ")
}

func num(f float64) string { return fmt.Sprintf("%.4g", f) }

// WriteMarkdown renders the run ledger as a Markdown report: run
// identity, the winning-attempt decision chain (merges with Eq. (4)
// scores, placements with beaten alternatives), and every measurement.
func WriteMarkdown(w io.Writer, l *Ledger) error {
	if l == nil {
		return fmt.Errorf("ledger: report on nil ledger")
	}
	d := buildReport(l)
	var sb strings.Builder

	fmt.Fprintf(&sb, "# Integration run report\n\n")
	fmt.Fprintf(&sb, "| | |\n|---|---|\n")
	fmt.Fprintf(&sb, "| schema | %d |\n", d.Header.Schema)
	if d.Header.Tool != "" {
		fmt.Fprintf(&sb, "| tool | %s |\n", d.Header.Tool)
	}
	if d.Header.System != "" {
		fmt.Fprintf(&sb, "| system | %s |\n", d.Header.System)
	}
	if d.Header.Strategy != "" {
		fmt.Fprintf(&sb, "| strategy | %s |\n", d.Header.Strategy)
	}
	if d.Header.Approach != "" {
		fmt.Fprintf(&sb, "| approach | %s |\n", d.Header.Approach)
	}
	if d.Header.HWNodes != 0 {
		fmt.Fprintf(&sb, "| HW nodes | %d |\n", d.Header.HWNodes)
	}
	if d.Header.Fingerprint != "" {
		fmt.Fprintf(&sb, "| fingerprint | `%s` |\n", d.Header.Fingerprint)
	}
	fmt.Fprintf(&sb, "| records | %d |\n", d.Total)

	if len(d.Partitions) > 0 {
		fmt.Fprintf(&sb, "\n## Partition\n\n| FCM | criticality | attributes |\n|---|---|---|\n")
		for _, r := range d.Partitions {
			fmt.Fprintf(&sb, "| %s | %s | %s |\n", r.A, num(r.Score), r.Detail)
		}
	}
	if len(d.Replicas) > 0 {
		fmt.Fprintf(&sb, "\n## Fault-tolerance expansion\n\n| base | replicas |\n|---|---|\n")
		for _, r := range d.Replicas {
			fmt.Fprintf(&sb, "| %s | %s |\n", r.A, memberList(r.Members))
		}
		if d.Edges > 0 {
			fmt.Fprintf(&sb, "\n%d replica-separation edges inserted.\n", d.Edges)
		}
	}
	if len(d.Degrades) > 0 || len(d.Races) > 0 {
		fmt.Fprintf(&sb, "\n## Strategy selection\n\n")
		for _, r := range d.Races {
			fmt.Fprintf(&sb, "- race won by `%s`\n", r.Rule)
		}
		for _, r := range d.Degrades {
			fmt.Fprintf(&sb, "- degraded from `%s`: %s\n", r.Rule, r.Detail)
		}
	}
	if len(d.Merges) > 0 {
		fmt.Fprintf(&sb, "\n## Condensation (winning attempt)\n\n| rule | A | B | Eq.4 mutual | result |\n|---|---|---|---|---|\n")
		for _, r := range d.Merges {
			fmt.Fprintf(&sb, "| %s | %s | %s | %s | %s |\n", r.Rule, r.A, r.B, num(r.Score), r.Result)
		}
	}
	if len(d.Backtracks) > 0 {
		fmt.Fprintf(&sb, "\n%d backtracked pairings: ", len(d.Backtracks))
		var parts []string
		for _, r := range d.Backtracks {
			parts = append(parts, fmt.Sprintf("%s/%s", r.A, r.B))
		}
		fmt.Fprintf(&sb, "%s.\n", strings.Join(parts, ", "))
	}
	if len(d.Places) > 0 {
		fmt.Fprintf(&sb, "\n## Placement\n\n| cluster | node | cost | beat |\n|---|---|---|---|\n")
		for _, r := range d.Places {
			fmt.Fprintf(&sb, "| %s | %s | %s | %s |\n", r.A, r.Node, num(r.Cost), altList(r.Alternatives))
		}
	}
	for _, r := range d.Refines {
		fmt.Fprintf(&sb, "\nRefinement: %s\n", r.Detail)
	}
	if len(d.Metrics) > 0 {
		fmt.Fprintf(&sb, "\n## Final metrics\n\n| metric | value |\n|---|---|\n")
		for _, m := range d.Metrics {
			fmt.Fprintf(&sb, "| %s | %s |\n", m.Name, num(m.Value))
		}
	}
	for _, blk := range d.Campaigns {
		fmt.Fprintf(&sb, "\n## Fault-injection %s\n\n| estimate | value |\n|---|---|\n", blk.Title)
		for _, m := range blk.Values {
			fmt.Fprintf(&sb, "| %s | %s |\n", m.Name, num(m.Value))
		}
	}
	for _, blk := range d.Certifies {
		fmt.Fprintf(&sb, "\n## Robustness %s\n\n| quantity | value |\n|---|---|\n", blk.Title)
		for _, m := range blk.Values {
			fmt.Fprintf(&sb, "| %s | %s |\n", m.Name, num(m.Value))
		}
	}
	if len(d.Searches) > 0 {
		fmt.Fprintf(&sb, "\n## Adversarial search\n\n| kind | scenario | objective |\n|---|---|---|\n")
		for _, r := range d.Searches {
			fmt.Fprintf(&sb, "| %s | %s | %s |\n", r.Kind, r.Detail, num(r.Score))
		}
	}
	if len(d.Artifacts) > 0 {
		fmt.Fprintf(&sb, "\n## Artifacts\n\n| artifact | content hash |\n|---|---|\n")
		for _, r := range d.Artifacts {
			fmt.Fprintf(&sb, "| %s | `%s` |\n", r.A, r.Detail)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// htmlReport is self-contained: inline CSS, no external assets, so the
// file opens anywhere (CI artifact browsers included).
var htmlReport = template.Must(template.New("report").Funcs(template.FuncMap{
	"members": memberList,
	"alts":    altList,
	"num":     num,
}).Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Integration run report{{with .Header.System}} — {{.}}{{end}}</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 60rem; color: #1a1a1a; }
h1 { border-bottom: 2px solid #444; padding-bottom: .3rem; }
h2 { margin-top: 2rem; color: #333; }
table { border-collapse: collapse; margin: .5rem 0; }
th, td { border: 1px solid #bbb; padding: .25rem .6rem; text-align: left; }
th { background: #f0f0f0; }
code { background: #f5f5f5; padding: 0 .2rem; }
.score { text-align: right; font-variant-numeric: tabular-nums; }
</style>
</head>
<body>
<h1>Integration run report</h1>
<table>
<tr><th>schema</th><td>{{.Header.Schema}}</td></tr>
{{with .Header.Tool}}<tr><th>tool</th><td>{{.}}</td></tr>{{end}}
{{with .Header.System}}<tr><th>system</th><td>{{.}}</td></tr>{{end}}
{{with .Header.Strategy}}<tr><th>strategy</th><td>{{.}}</td></tr>{{end}}
{{with .Header.Approach}}<tr><th>approach</th><td>{{.}}</td></tr>{{end}}
{{with .Header.HWNodes}}<tr><th>HW nodes</th><td>{{.}}</td></tr>{{end}}
{{with .Header.Fingerprint}}<tr><th>fingerprint</th><td><code>{{.}}</code></td></tr>{{end}}
<tr><th>records</th><td>{{.Total}}</td></tr>
</table>
{{if .Partitions}}
<h2>Partition</h2>
<table><tr><th>FCM</th><th>criticality</th><th>attributes</th></tr>
{{range .Partitions}}<tr><td>{{.A}}</td><td>{{num .Score}}</td><td>{{.Detail}}</td></tr>
{{end}}</table>
{{end}}
{{if .Replicas}}
<h2>Fault-tolerance expansion</h2>
<table><tr><th>base</th><th>replicas</th></tr>
{{range .Replicas}}<tr><td>{{.A}}</td><td>{{members .Members}}</td></tr>
{{end}}</table>
{{if .Edges}}<p>{{.Edges}} replica-separation edges inserted.</p>{{end}}
{{end}}
{{if or .Degrades .Races}}
<h2>Strategy selection</h2>
<ul>
{{range .Races}}<li>race won by <code>{{.Rule}}</code></li>
{{end}}{{range .Degrades}}<li>degraded from <code>{{.Rule}}</code>: {{.Detail}}</li>
{{end}}</ul>
{{end}}
{{if .Merges}}
<h2>Condensation (winning attempt)</h2>
<table><tr><th>rule</th><th>A</th><th>B</th><th>Eq.4 mutual</th><th>result</th></tr>
{{range .Merges}}<tr><td>{{.Rule}}</td><td>{{.A}}</td><td>{{.B}}</td><td class="score">{{num .Score}}</td><td>{{.Result}}</td></tr>
{{end}}</table>
{{end}}
{{if .Places}}
<h2>Placement</h2>
<table><tr><th>cluster</th><th>node</th><th>cost</th><th>beat</th></tr>
{{range .Places}}<tr><td>{{.A}}</td><td>{{.Node}}</td><td class="score">{{num .Cost}}</td><td>{{alts .Alternatives}}</td></tr>
{{end}}</table>
{{end}}
{{if .Metrics}}
<h2>Final metrics</h2>
<table><tr><th>metric</th><th>value</th></tr>
{{range .Metrics}}<tr><td>{{.Name}}</td><td class="score">{{num .Value}}</td></tr>
{{end}}</table>
{{end}}
{{range .Campaigns}}
<h2>Fault-injection {{.Title}}</h2>
<table><tr><th>estimate</th><th>value</th></tr>
{{range .Values}}<tr><td>{{.Name}}</td><td class="score">{{num .Value}}</td></tr>
{{end}}</table>
{{end}}
{{range .Certifies}}
<h2>Robustness {{.Title}}</h2>
<table><tr><th>quantity</th><th>value</th></tr>
{{range .Values}}<tr><td>{{.Name}}</td><td class="score">{{num .Value}}</td></tr>
{{end}}</table>
{{end}}
{{if .Searches}}
<h2>Adversarial search</h2>
<table><tr><th>kind</th><th>scenario</th><th>objective</th></tr>
{{range .Searches}}<tr><td>{{.Kind}}</td><td>{{.Detail}}</td><td class="score">{{num .Score}}</td></tr>
{{end}}</table>
{{end}}
{{if .Artifacts}}
<h2>Artifacts</h2>
<table><tr><th>artifact</th><th>content hash</th></tr>
{{range .Artifacts}}<tr><td>{{.A}}</td><td><code>{{.Detail}}</code></td></tr>
{{end}}</table>
{{end}}
</body>
</html>
`))

// WriteHTML renders the run ledger as a self-contained HTML report.
func WriteHTML(w io.Writer, l *Ledger) error {
	if l == nil {
		return fmt.Errorf("ledger: report on nil ledger")
	}
	return htmlReport.Execute(w, buildReport(l))
}
