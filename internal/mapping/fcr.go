package mapping

import (
	"fmt"
	"sort"

	"repro/internal/attrs"
	"repro/internal/graph"
	"repro/internal/hw"
)

// AssignCriticalityAware places clusters with FCR awareness, the §5.3
// criticality criterion taken to the hardware fault-containment-region
// level: "the selected critical processes should be assigned to distinct
// HW nodes … This ensures that critical processes do not affect each
// other when faults occur." On platforms where several processors share
// an FCR (a cabinet, a power domain), distinct nodes are not enough —
// critical clusters should also sit in distinct FCRs, so a region-level
// HW fault cannot take out two critical functions at once.
//
// Clusters are ordered by descending criticality; a cluster at or above
// threshold prefers (a) nodes in FCRs hosting no other critical cluster,
// then (b) lowest communication cost, as in the standard placement.
func AssignCriticalityAware(g *graph.Graph, p *hw.Platform, req Requirements, threshold float64) (Assignment, error) {
	asg, _, err := AssignCriticalityAwareDetailed(g, p, req, threshold)
	return asg, err
}

// AssignCriticalityAwareDetailed is AssignCriticalityAware plus the
// per-cluster decision trail.
func AssignCriticalityAwareDetailed(g *graph.Graph, p *hw.Platform, req Requirements, threshold float64) (Assignment, []Decision, error) {
	order := g.Nodes()
	sort.SliceStable(order, func(i, j int) bool {
		ci := g.Attrs(order[i]).Value(attrs.Criticality)
		cj := g.Attrs(order[j]).Value(attrs.Criticality)
		if ci != cj {
			return ci > cj
		}
		return order[i] < order[j]
	})
	if len(order) > p.NumNodes() {
		return nil, nil, fmt.Errorf("%w: %d clusters, %d nodes", ErrTooManyClusters, len(order), p.NumNodes())
	}

	asg := make(Assignment, len(order))
	used := map[string]bool{}
	criticalFCRs := map[string]bool{}
	decisions := make([]Decision, 0, len(order))
	for _, cluster := range order {
		critical := g.Attrs(cluster).Value(attrs.Criticality) >= threshold
		needs := req.forCluster(cluster)
		// Sum the cost over the sorted placed clusters, not the assignment
		// map: map iteration would perturb the float accumulation order
		// and could flip equal-cost tie-breaks between runs (the same fix
		// placementDecisions carries).
		placed := asg.Clusters()
		bestNode := ""
		bestFresh := false
		bestCost := 0.0
		var feasible []Alternative
		for _, nodeName := range p.Nodes() {
			if used[nodeName] {
				continue
			}
			node, err := p.Node(nodeName)
			if err != nil {
				return nil, nil, err
			}
			ok := true
			for _, res := range needs {
				if !node.HasResource(res) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			fresh := !criticalFCRs[node.FCR]
			cost := 0.0
			for _, pc := range placed {
				m := g.MutualInfluence(cluster, pc)
				if m <= 0 {
					continue
				}
				d, conn := p.Distance(nodeName, asg[pc])
				if !conn {
					d = float64(p.NumNodes())
				}
				cost += m * d
			}
			feasible = append(feasible, Alternative{Node: nodeName, Cost: cost})
			better := false
			switch {
			case bestNode == "":
				better = true
			case critical && fresh != bestFresh:
				better = fresh // fresh FCR dominates for critical clusters
			case cost < bestCost:
				better = true
			}
			if better {
				bestNode, bestFresh, bestCost = nodeName, fresh, cost
			}
		}
		if bestNode == "" {
			return nil, nil, fmt.Errorf("%w: cluster %s needs %v", ErrNoFeasibleNode, cluster, needs)
		}
		asg[cluster] = bestNode
		used[bestNode] = true
		decisions = append(decisions, Decision{
			Cluster:      cluster,
			Node:         bestNode,
			Cost:         bestCost,
			Alternatives: beaten(feasible, bestNode),
		})
		if critical {
			node, err := p.Node(bestNode)
			if err != nil {
				return nil, nil, err
			}
			criticalFCRs[node.FCR] = true
		}
	}
	return asg, decisions, nil
}

// CriticalPairsSharedFCR counts pairs of critical base modules (at or
// above threshold, criticality read from full's node attributes) whose HW
// nodes share a fault containment region — the region-level analogue of
// Report.CriticalPairsColocated.
func CriticalPairsSharedFCR(full *graph.Graph, asg Assignment, p *hw.Platform, threshold float64) (int, error) {
	fcrOf := map[string]string{}
	for _, nodeName := range p.Nodes() {
		node, err := p.Node(nodeName)
		if err != nil {
			return 0, err
		}
		fcrOf[nodeName] = node.FCR
	}
	perFCR := map[string]int{}
	for clusterID, nodeName := range asg {
		fcr, ok := fcrOf[nodeName]
		if !ok {
			return 0, fmt.Errorf("mapping: assignment references unknown node %q", nodeName)
		}
		for _, m := range graph.Members(clusterID) {
			if full.Attrs(m).Value(attrs.Criticality) >= threshold {
				perFCR[fcr]++
			}
		}
	}
	pairs := 0
	for _, k := range perFCR {
		pairs += k * (k - 1) / 2
	}
	return pairs, nil
}
